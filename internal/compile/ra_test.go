package compile

// Compilation of the §10 release-acquire extension: ldar/stlr on ARM,
// plain movs on x86 (TSO loads are acquires and stores are releases
// already), checked sound by outcome inclusion like everything else.

import (
	"errors"
	"testing"

	"localdrf/internal/explore"
	"localdrf/internal/hw"
	"localdrf/internal/hw/arm"
	"localdrf/internal/hw/x86"
	"localdrf/internal/prog"
	"localdrf/internal/progsynth"
)

func mpRA() *prog.Program {
	return prog.NewProgram("MP+ra").
		Vars("x").
		RAs("F").
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").Load("r0", "F").Load("r1", "x").Done().
		MustBuild()
}

func sbRA() *prog.Program {
	return prog.NewProgram("SB+ra").
		RAs("X", "Y").
		Thread("P0").StoreI("X", 1).Load("r0", "Y").Done().
		Thread("P1").StoreI("Y", 1).Load("r1", "X").Done().
		MustBuild()
}

func TestRASoundnessAllSchemes(t *testing.T) {
	progs := []*prog.Program{mpRA(), sbRA()}
	for _, p := range progs {
		for _, s := range []Scheme{X86, ARMBal, ARMFbs, ARMSra} {
			if err := CheckSoundness(p, s, consistentFor(s)); err != nil {
				t.Errorf("%s under %s: %v", p.Name, s, err)
			}
		}
	}
}

func TestRALoweringShapes(t *testing.T) {
	p := mpRA()
	hp, err := Lower(p, ARMBal)
	if err != nil {
		t.Fatal(err)
	}
	// P0's RA store lowers to a single stlr (no exclusive pair, no dmb).
	code := hp.Threads[0].Code
	last := code[len(code)-1]
	if last.Op != hw.OpSt || last.Ord != hw.Release {
		t.Errorf("RA store lowered to %v, want stlr", last)
	}
	// P1's RA load lowers to a single ldar (no leading dmb ld).
	first := hp.Threads[1].Code[0]
	if first.Op != hw.OpLd || first.Ord != hw.Acquire {
		t.Errorf("RA load lowered to %v, want ldar", first)
	}
	// x86: both plain.
	hp, err = Lower(p, X86)
	if err != nil {
		t.Fatal(err)
	}
	if hp.Threads[0].Code[1].Ord != hw.Plain || hp.Threads[1].Code[0].Ord != hw.Plain {
		t.Error("x86 RA accesses should be plain movs")
	}
}

// Plain loads/stores for RA locations on ARM leak the MP violation.
func TestRAPlainLoweringUnsound(t *testing.T) {
	err := CheckSoundness(mpRA(), ARMNaiveAtomics, arm.Consistent)
	var se *SoundnessError
	if !errors.As(err, &se) {
		t.Fatalf("plain lowering of RA should be unsound on MP+ra, got %v", err)
	}
}

// The ARM lowering is *stronger* than RA (ldar/stlr are the C++ SC
// instructions): SB+ra's relaxed outcome is forbidden on hardware even
// though the software model allows it. Soundness only requires hw ⊆ sw,
// and this is the expected direction of slack.
func TestRAHardwareStrongerThanModel(t *testing.T) {
	p := sbRA()
	sw, err := explore.Outcomes(p, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	relaxed := func(o explore.Outcome) bool {
		return o.Reg(0, "r0") == 0 && o.Reg(1, "r1") == 0
	}
	if !sw.Exists(relaxed) {
		t.Fatal("software model should allow SB+ra relaxation")
	}
	hp, err := Lower(p, ARMBal)
	if err != nil {
		t.Fatal(err)
	}
	hwSet, err := Outcomes(hp, arm.Consistent)
	if err != nil {
		t.Fatal(err)
	}
	if hwSet.Exists(relaxed) {
		t.Error("ldar/stlr order Rel×Acq pairs; the relaxation should vanish on hardware")
	}
	// On x86 the plain-mov lowering keeps it (TSO allows store
	// buffering), showing why x86 is the cheap target for RA.
	hp, err = Lower(p, X86)
	if err != nil {
		t.Fatal(err)
	}
	hwSet, err = Outcomes(hp, x86.Consistent)
	if err != nil {
		t.Fatal(err)
	}
	if !hwSet.Exists(relaxed) {
		t.Error("x86 TSO should exhibit the SB+ra relaxation with plain movs")
	}
}

// Random programs mixing nonatomic and RA locations stay sound under
// every production scheme.
func TestRandomRASoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive soundness sweep skipped in -short mode")
	}
	cfg := progsynth.Config{
		MaxThreads:     2,
		MaxOps:         2,
		AtomicLocs:     []prog.Loc{"R"},
		NonAtomicLocs:  []prog.Loc{"x"},
		MaxConst:       2,
		AllowBranches:  true,
		AllowRegStores: true,
	}
	for seed := int64(2000); seed < 2050; seed++ {
		p := progsynth.Random(seed, cfg)
		p.Locs["R"] = prog.ReleaseAcquire
		for _, s := range []Scheme{X86, ARMBal, ARMFbs, ARMSra} {
			if err := CheckSoundness(p, s, consistentFor(s)); err != nil {
				t.Fatalf("seed %d under %s: %v\nprogram:\n%s", seed, s, err, p)
			}
		}
	}
}
