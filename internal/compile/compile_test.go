package compile

import (
	"errors"
	"testing"

	"localdrf/internal/explore"
	"localdrf/internal/hw"
	"localdrf/internal/hw/arm"
	"localdrf/internal/hw/x86"
	"localdrf/internal/prog"
	"localdrf/internal/progsynth"
)

func consistentFor(s Scheme) func(*hw.Execution) bool {
	if s.IsARM() {
		return arm.Consistent
	}
	return x86.Consistent
}

// The core litmus programs used throughout the compilation tests.
func sbNA() *prog.Program {
	return prog.NewProgram("SB-na").
		Vars("x", "y").
		Thread("P0").StoreI("x", 1).Load("r0", "y").Done().
		Thread("P1").StoreI("y", 1).Load("r1", "x").Done().
		MustBuild()
}

func sbAT() *prog.Program {
	return prog.NewProgram("SB-at").
		Atomics("X", "Y").
		Thread("P0").StoreI("X", 1).Load("r0", "Y").Done().
		Thread("P1").StoreI("Y", 1).Load("r1", "X").Done().
		MustBuild()
}

func mp() *prog.Program {
	return prog.NewProgram("MP").
		Vars("x").
		Atomics("F").
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").Load("r0", "F").Load("r1", "x").Done().
		MustBuild()
}

func lb() *prog.Program {
	return prog.NewProgram("LB").
		Vars("x", "y").
		Thread("P0").Load("r0", "x").StoreI("y", 1).Done().
		Thread("P1").Load("r1", "y").StoreI("x", 1).Done().
		MustBuild()
}

func lbCtrl() *prog.Program {
	return prog.NewProgram("LB+ctrl").
		Vars("x", "y").
		Thread("P0").Load("r0", "x").StoreI("y", 1).Done().
		Thread("P1").
		Load("r1", "y").
		JmpZ("r1", "skip").
		StoreI("x", 1).
		Label("skip").
		Done().
		MustBuild()
}

func corr() *prog.Program {
	return prog.NewProgram("CoRR").
		Vars("x").
		Thread("P0").StoreI("x", 1).StoreI("x", 2).Done().
		Thread("P1").Load("r0", "x").Load("r1", "x").Done().
		MustBuild()
}

func suite() []*prog.Program {
	return []*prog.Program{sbNA(), sbAT(), mp(), lb(), lbCtrl(), corr()}
}

// Thm. 19: the table-1 scheme is sound on the litmus suite.
func TestX86Soundness(t *testing.T) {
	for _, p := range suite() {
		if err := CheckSoundness(p, X86, x86.Consistent); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// Thm. 20: both table-2 schemes (and the stronger SRA) are sound.
func TestARMSoundness(t *testing.T) {
	for _, s := range []Scheme{ARMBal, ARMFbs, ARMSra} {
		for _, p := range suite() {
			if err := CheckSoundness(p, s, arm.Consistent); err != nil {
				t.Errorf("%s under %s: %v", p.Name, s, err)
			}
		}
	}
}

// Ablation: dropping the BAL branch / FBS fence admits load buffering,
// which the software model forbids (§9.1). This shows the protection
// against poRW reordering is necessary, not decorative.
func TestARMNaiveUnsoundOnLB(t *testing.T) {
	err := CheckSoundness(lb(), ARMNaive, arm.Consistent)
	var se *SoundnessError
	if !errors.As(err, &se) {
		t.Fatalf("naive ARM scheme should be unsound on LB, got %v", err)
	}
	// The leaked outcome is exactly the load-buffering result.
	found := false
	for _, o := range se.Extra {
		if o.Reg(0, "r0") == 1 && o.Reg(1, "r1") == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected r0=r1=1 among leaked outcomes, got %v", se.Extra)
	}
}

// With a control dependency guarding the store, even the naive scheme
// cannot produce the cycle (dob = ctrl ∩ (M×W) orders the read before the
// dependent store) — the paper's out-of-thin-air discussion in §9.1.
func TestARMNaiveSoundOnLBCtrlBothSides(t *testing.T) {
	p := prog.NewProgram("LB+2ctrl").
		Vars("x", "y").
		Thread("P0").
		Load("r0", "x").
		JmpZ("r0", "s0").
		StoreI("y", 1).
		Label("s0").
		Done().
		Thread("P1").
		Load("r1", "y").
		JmpZ("r1", "s1").
		StoreI("x", 1).
		Label("s1").
		Done().
		MustBuild()
	if err := CheckSoundness(p, ARMNaive, arm.Consistent); err != nil {
		t.Errorf("control-dependent LB should be sound even naively: %v", err)
	}
}

// Ablation: compiling atomics as plain ldr/str breaks message passing on
// ARM.
func TestARMNaiveAtomicsUnsoundOnMP(t *testing.T) {
	err := CheckSoundness(mp(), ARMNaiveAtomics, arm.Consistent)
	var se *SoundnessError
	if !errors.As(err, &se) {
		t.Fatalf("fully naive ARM scheme should be unsound on MP, got %v", err)
	}
}

// Ablation: compiling atomic stores as plain movs breaks SB on x86 — this
// is why table 1 uses xchg.
func TestX86PlainAtomicStoreUnsound(t *testing.T) {
	err := CheckSoundness(sbAT(), X86PlainAtomicStore, x86.Consistent)
	var se *SoundnessError
	if !errors.As(err, &se) {
		t.Fatalf("plain atomic stores should be unsound on x86 SB, got %v", err)
	}
	found := false
	for _, o := range se.Extra {
		if o.Reg(0, "r0") == 0 && o.Reg(1, "r1") == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected r0=r1=0 among leaked outcomes, got %v", se.Extra)
	}
}

// Nonatomics really are free on x86: the TSO relaxation (SB on
// nonatomics) is already allowed by the software model.
func TestX86NonatomicRelaxationVisible(t *testing.T) {
	hp, err := Lower(sbNA(), X86)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Outcomes(hp, x86.Consistent)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Exists(func(o explore.Outcome) bool { return o.Reg(0, "r0") == 0 && o.Reg(1, "r1") == 0 }) {
		t.Error("x86 should exhibit SB relaxation on nonatomics")
	}
}

// The naive ARM scheme admits plain LB at the hardware level (sanity
// check that the abridged ARM model really is weak enough to show it).
func TestARMModelExhibitsLB(t *testing.T) {
	hp, err := Lower(lb(), ARMNaive)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Outcomes(hp, arm.Consistent)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Exists(func(o explore.Outcome) bool { return o.Reg(0, "r0") == 1 && o.Reg(1, "r1") == 1 }) {
		t.Error("abridged ARM model should allow load buffering without dependencies")
	}
}

// The BAL branch kills it.
func TestARMBALForbidsLB(t *testing.T) {
	hp, err := Lower(lb(), ARMBal)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Outcomes(hp, arm.Consistent)
	if err != nil {
		t.Fatal(err)
	}
	if set.Exists(func(o explore.Outcome) bool { return o.Reg(0, "r0") == 1 && o.Reg(1, "r1") == 1 }) {
		t.Error("BAL must forbid load buffering")
	}
}

// Lowering shape tests: the emitted sequences match the paper's tables.
func TestLoweringShapes(t *testing.T) {
	p := prog.NewProgram("shapes").
		Vars("x").
		Atomics("A").
		Thread("P0").Load("r0", "x").StoreI("x", 1).Load("r1", "A").StoreI("A", 1).Done().
		MustBuild()

	type shape []hw.Op
	cases := []struct {
		scheme Scheme
		want   shape
	}{
		{X86, shape{
			hw.OpLd, hw.OpSt, hw.OpLd, // plain na read/write, plain atomic read
			hw.OpLd, hw.OpSt, // xchg pair
		}},
		{ARMBal, shape{
			hw.OpLd, hw.OpBranchDep, // ldr; cbz
			hw.OpSt,             // str
			hw.OpFence, hw.OpLd, // dmb ld; ldar
			hw.OpLd, hw.OpSt, hw.OpFence, // ldaxr; stlxr; dmb st
		}},
		{ARMFbs, shape{
			hw.OpLd,             // ldr
			hw.OpFence, hw.OpSt, // dmb ld; str
			hw.OpFence, hw.OpLd, // dmb ld; ldar
			hw.OpLd, hw.OpSt, hw.OpFence,
		}},
		{ARMSra, shape{
			hw.OpLd,             // ldar
			hw.OpSt,             // stlr
			hw.OpFence, hw.OpLd, // dmb ld; ldar
			hw.OpLd, hw.OpSt, hw.OpFence,
		}},
	}
	for _, c := range cases {
		hp, err := Lower(p, c.scheme)
		if err != nil {
			t.Fatal(err)
		}
		code := hp.Threads[0].Code
		if len(code) != len(c.want) {
			t.Errorf("%s: %d instrs, want %d: %v", c.scheme, len(code), len(c.want), code)
			continue
		}
		for i, op := range c.want {
			if code[i].Op != op {
				t.Errorf("%s: instr %d = %v, want op %v", c.scheme, i, code[i], op)
			}
		}
	}
	// Spot-check the orderings.
	hp, _ := Lower(p, ARMSra)
	if hp.Threads[0].Code[0].Ord != hw.Acquire {
		t.Error("SRA nonatomic load should be ldar")
	}
	if hp.Threads[0].Code[1].Ord != hw.Release {
		t.Error("SRA nonatomic store should be stlr")
	}
	hp, _ = Lower(p, ARMBal)
	if !hp.Threads[0].Code[6].RMWPair {
		t.Error("atomic store stlxr should be rmw-paired")
	}
}

// Jump targets survive lowering (instruction counts change).
func TestJumpRemapping(t *testing.T) {
	p := prog.NewProgram("jumps").
		Vars("x", "f").
		Thread("P0").
		Load("r0", "f").
		JmpZ("r0", "skip").
		StoreI("x", 7).
		Label("skip").
		Load("r1", "x").
		Done().
		MustBuild()
	hp, err := Lower(p, ARMBal)
	if err != nil {
		t.Fatal(err)
	}
	// Find the JmpZ and verify its target points at the lowering of the
	// labelled load, not into the middle of the store sequence.
	code := hp.Threads[0].Code
	var jz *hw.Instr
	for i := range code {
		if code[i].Op == hw.OpJmpZ {
			jz = &code[i]
		}
	}
	if jz == nil {
		t.Fatal("no JmpZ in lowered code")
	}
	if code[jz.Target].Op != hw.OpLd || code[jz.Target].Loc != "x" {
		t.Errorf("jump target %d lands on %v, want the load of x", jz.Target, code[jz.Target])
	}
	// And behaviourally: soundness holds.
	if err := CheckSoundness(p, ARMBal, arm.Consistent); err != nil {
		t.Error(err)
	}
}

// Property test: schemes are sound on random small programs.
func TestRandomSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive soundness sweep skipped in -short mode")
	}
	cfg := progsynth.Config{
		MaxThreads:     2,
		MaxOps:         2,
		AtomicLocs:     []prog.Loc{"A"},
		NonAtomicLocs:  []prog.Loc{"x", "y"},
		MaxConst:       2,
		AllowBranches:  true,
		AllowRegStores: true,
	}
	for seed := int64(1000); seed < 1070; seed++ {
		p := progsynth.Random(seed, cfg)
		for _, s := range []Scheme{X86, ARMBal, ARMFbs, ARMSra} {
			if err := CheckSoundness(p, s, consistentFor(s)); err != nil {
				t.Fatalf("seed %d under %s: %v\nprogram:\n%s", seed, s, err, p)
			}
		}
	}
}
