// Package compile implements the paper's compilation schemes (§7.2–7.3)
// from the software memory model to the x86-TSO and ARMv8 hardware
// models, plus deliberately broken ablation schemes used to demonstrate
// that each ingredient of the sound schemes is necessary.
//
//	Table 1 (x86):      nonatomic read/write and atomic read are plain movs;
//	                    atomic write is a (locked) xchg — an rmw pair.
//	Table 2a (ARM BAL): nonatomic read is ldr followed by a dependent
//	                    branch (cbz); nonatomic write is str; atomic read
//	                    is dmb ld; ldar; atomic write is an exclusive
//	                    ldaxr/stlxr pair followed by dmb st.
//	Table 2b (ARM FBS): nonatomic read is a bare ldr; nonatomic write is
//	                    dmb ld; str; atomics as in 2a.
//	SRA (§8.2):         nonatomic read is ldar, nonatomic write is stlr —
//	                    strictly stronger, used as a performance baseline.
//
// Soundness (thms. 19/20) is checked empirically: every outcome the
// hardware model allows of the compiled program must be an outcome the
// software model allows of the source.
package compile

import (
	"fmt"
	"runtime"

	"localdrf/internal/explore"
	"localdrf/internal/hw"
	"localdrf/internal/prog"
)

// Scheme selects a compilation strategy.
type Scheme int

const (
	// X86 is the table-1 scheme.
	X86 Scheme = iota
	// ARMBal is table 2a: branch after (nonatomic) load.
	ARMBal
	// ARMFbs is table 2b: dmb ld fence before (nonatomic) store.
	ARMFbs
	// ARMSra compiles nonatomic accesses as ldar/stlr (strong
	// release/acquire, §8.2) — sound and strictly stronger.
	ARMSra
	// ARMNaive drops the BAL branch / FBS fence from nonatomic accesses
	// (atomics keep the table-2 sequences). Unsound: admits load
	// buffering (§9.1); exists to show the protection is necessary.
	ARMNaive
	// ARMNaiveAtomics additionally compiles atomics as plain ldr/str.
	// Unsound even for message passing.
	ARMNaiveAtomics
	// X86PlainAtomicStore compiles atomic stores as plain movs instead of
	// xchg. Unsound: TSO store buffering leaks into the atomics.
	X86PlainAtomicStore
)

// String names the scheme as in the paper.
func (s Scheme) String() string {
	switch s {
	case X86:
		return "x86 (table 1)"
	case ARMBal:
		return "ARM BAL (table 2a)"
	case ARMFbs:
		return "ARM FBS (table 2b)"
	case ARMSra:
		return "ARM SRA"
	case ARMNaive:
		return "ARM naive (no BAL/FBS, ablation)"
	case ARMNaiveAtomics:
		return "ARM fully naive (ablation)"
	case X86PlainAtomicStore:
		return "x86 plain atomic store (ablation)"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// IsARM reports whether the scheme targets the ARMv8 model.
func (s Scheme) IsARM() bool {
	switch s {
	case ARMBal, ARMFbs, ARMSra, ARMNaive, ARMNaiveAtomics:
		return true
	}
	return false
}

// Lower compiles a software program under the given scheme.
func Lower(p *prog.Program, s Scheme) (*hw.Program, error) {
	out := &hw.Program{
		Name: fmt.Sprintf("%s/%s", p.Name, s),
		Locs: map[prog.Loc]prog.LocKind{},
	}
	for l, k := range p.Locs {
		out.Locs[l] = k
	}
	for ti, t := range p.Threads {
		code, obs, err := lowerThread(p, t, s, ti)
		if err != nil {
			return nil, fmt.Errorf("compile: thread %s: %w", t.Name, err)
		}
		out.Threads = append(out.Threads, hw.Thread{Name: t.Name, Code: code})
		out.ObsRegs = append(out.ObsRegs, obs)
	}
	return out, nil
}

func lowerThread(p *prog.Program, t prog.Thread, s Scheme, ti int) ([]hw.Instr, map[prog.Reg]bool, error) {
	obs := map[prog.Reg]bool{}
	// First pass: lower each source instruction, remembering where each
	// source pc begins in the hardware code so jump targets can be
	// remapped. jumpFixups maps hardware pc -> source target.
	var code []hw.Instr
	start := make([]int, len(t.Code)+1)
	jumpFixups := map[int]int{}
	for pc, in := range t.Code {
		start[pc] = len(code)
		seq, err := lowerInstr(p, in, s, ti, pc, obs, jumpFixups, len(code))
		if err != nil {
			return nil, nil, err
		}
		code = append(code, seq...)
	}
	start[len(t.Code)] = len(code)
	for hwPC, srcTarget := range jumpFixups {
		code[hwPC].Target = start[srcTarget]
	}
	return code, obs, nil
}

func lowerInstr(p *prog.Program, in prog.Instr, s Scheme, ti, pc int,
	obs map[prog.Reg]bool, jumpFixups map[int]int, at int) ([]hw.Instr, error) {

	scratch := prog.Reg(fmt.Sprintf("xzr%d_%d", ti, pc))
	switch i := in.(type) {
	case prog.Load:
		obs[i.Dst] = true
		if p.IsRA(i.Src) {
			// Release-acquire loads (§10 extension): ldar on ARM (no
			// leading dmb — RA needs less than the paper's SC atomics),
			// plain mov on x86 (TSO loads are acquire already).
			switch {
			case !s.IsARM() || s == ARMNaiveAtomics:
				return []hw.Instr{{Op: hw.OpLd, Ord: hw.Plain, Loc: i.Src, Dst: i.Dst}}, nil
			default:
				return []hw.Instr{{Op: hw.OpLd, Ord: hw.Acquire, Loc: i.Src, Dst: i.Dst}}, nil
			}
		}
		if p.IsAtomic(i.Src) {
			switch {
			case !s.IsARM():
				// Table 1: plain mov.
				return []hw.Instr{{Op: hw.OpLd, Ord: hw.Plain, Loc: i.Src, Dst: i.Dst}}, nil
			case s == ARMNaiveAtomics:
				return []hw.Instr{{Op: hw.OpLd, Ord: hw.Plain, Loc: i.Src, Dst: i.Dst}}, nil
			default:
				// Table 2: dmb ld; ldar.
				return []hw.Instr{
					{Op: hw.OpFence, Fence: hw.DmbLd},
					{Op: hw.OpLd, Ord: hw.Acquire, Loc: i.Src, Dst: i.Dst},
				}, nil
			}
		}
		switch s {
		case ARMBal:
			return []hw.Instr{
				{Op: hw.OpLd, Ord: hw.Plain, Loc: i.Src, Dst: i.Dst},
				{Op: hw.OpBranchDep, Cond: i.Dst},
			}, nil
		case ARMSra:
			return []hw.Instr{{Op: hw.OpLd, Ord: hw.Acquire, Loc: i.Src, Dst: i.Dst}}, nil
		default: // X86, X86PlainAtomicStore, ARMFbs, ARMNaive*
			return []hw.Instr{{Op: hw.OpLd, Ord: hw.Plain, Loc: i.Src, Dst: i.Dst}}, nil
		}
	case prog.Store:
		if p.IsRA(i.Dst) {
			// Release-acquire stores: stlr on ARM, plain mov on x86
			// (TSO stores are release already).
			switch {
			case !s.IsARM() || s == ARMNaiveAtomics:
				return []hw.Instr{{Op: hw.OpSt, Ord: hw.Plain, Loc: i.Dst, A: i.Src}}, nil
			default:
				return []hw.Instr{{Op: hw.OpSt, Ord: hw.Release, Loc: i.Dst, A: i.Src}}, nil
			}
		}
		if p.IsAtomic(i.Dst) {
			switch s {
			case X86:
				// Table 1: (lock) xchg = read/write rmw pair.
				return []hw.Instr{
					{Op: hw.OpLd, Ord: hw.Plain, Loc: i.Dst, Dst: scratch},
					{Op: hw.OpSt, Ord: hw.Plain, Loc: i.Dst, A: i.Src, RMWPair: true},
				}, nil
			case X86PlainAtomicStore, ARMNaiveAtomics:
				return []hw.Instr{{Op: hw.OpSt, Ord: hw.Plain, Loc: i.Dst, A: i.Src}}, nil
			default:
				// Table 2: L: ldaxr; stlxr; cbnz L; dmb st — the retry
				// loop is modelled as an always-succeeding exclusive
				// pair; the rmw axiom supplies its atomicity.
				return []hw.Instr{
					{Op: hw.OpLd, Ord: hw.AcquireX, Loc: i.Dst, Dst: scratch},
					{Op: hw.OpSt, Ord: hw.ReleaseX, Loc: i.Dst, A: i.Src, RMWPair: true},
					{Op: hw.OpFence, Fence: hw.DmbSt},
				}, nil
			}
		}
		switch s {
		case ARMFbs:
			return []hw.Instr{
				{Op: hw.OpFence, Fence: hw.DmbLd},
				{Op: hw.OpSt, Ord: hw.Plain, Loc: i.Dst, A: i.Src},
			}, nil
		case ARMSra:
			return []hw.Instr{{Op: hw.OpSt, Ord: hw.Release, Loc: i.Dst, A: i.Src}}, nil
		default:
			return []hw.Instr{{Op: hw.OpSt, Ord: hw.Plain, Loc: i.Dst, A: i.Src}}, nil
		}
	case prog.Mov:
		obs[i.Dst] = true
		return []hw.Instr{{Op: hw.OpMov, Dst: i.Dst, A: i.Src}}, nil
	case prog.Add:
		obs[i.Dst] = true
		return []hw.Instr{{Op: hw.OpAdd, Dst: i.Dst, A: i.A, B: i.B}}, nil
	case prog.Mul:
		obs[i.Dst] = true
		return []hw.Instr{{Op: hw.OpMul, Dst: i.Dst, A: i.A, B: i.B}}, nil
	case prog.CmpEq:
		obs[i.Dst] = true
		return []hw.Instr{{Op: hw.OpCmpEq, Dst: i.Dst, A: i.A, B: i.B}}, nil
	case prog.Jmp:
		jumpFixups[at] = i.Target
		return []hw.Instr{{Op: hw.OpJmp}}, nil
	case prog.JmpZ:
		jumpFixups[at] = i.Target
		return []hw.Instr{{Op: hw.OpJmpZ, Cond: i.Cond}}, nil
	case prog.JmpNZ:
		jumpFixups[at] = i.Target
		return []hw.Instr{{Op: hw.OpJmpNZ, Cond: i.Cond}}, nil
	case prog.Nop:
		return []hw.Instr{{Op: hw.OpNop}}, nil
	default:
		return nil, fmt.Errorf("compile: unknown instruction %T", in)
	}
}

// Outcomes enumerates the outcomes the architecture model admits for a
// compiled program, projected onto the source program's observables
// (source registers and final memory). The candidate space is explored in
// parallel on the engine's task runner; the merged outcome set is
// deterministic.
func Outcomes(hp *hw.Program, consistent func(*hw.Execution) bool) (*explore.Set, error) {
	return OutcomesParallel(hp, consistent, 0)
}

// OutcomesParallel is Outcomes with explicit worker parallelism (0 means
// GOMAXPROCS; 1 is the sequential reference path).
func OutcomesParallel(hp *hw.Program, consistent func(*hw.Execution) bool, parallelism int) (*explore.Set, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	sinks := make([]*explore.Set, parallelism)
	for i := range sinks {
		sinks[i] = explore.NewSet()
	}
	err := hw.EnumerateParallel(hp, consistent, parallelism, func(worker int, x *hw.Execution) bool {
		o := explore.Outcome{Mem: x.FinalMem()}
		for ti, regs := range x.Regs {
			m := map[prog.Reg]prog.Val{}
			for r, v := range regs {
				if hp.ObsRegs[ti][r] {
					m[r] = v
				}
			}
			o.Regs = append(o.Regs, m)
		}
		sinks[worker].Add(o)
		return true
	})
	if err != nil {
		return nil, err
	}
	set := sinks[0]
	for _, s := range sinks[1:] {
		set.Union(s)
	}
	return set, nil
}

// SoundnessError reports a compilation-soundness violation: outcomes the
// hardware admits that the software model forbids.
type SoundnessError struct {
	Scheme Scheme
	Prog   string
	Extra  []explore.Outcome
}

func (e *SoundnessError) Error() string {
	return fmt.Sprintf("compile: %s unsound for %s: hardware admits %d outcome(s) the software model forbids, e.g. %s",
		e.Scheme, e.Prog, len(e.Extra), e.Extra[0].Key())
}

// CheckSoundness verifies thm. 19/20 empirically on one program: the
// hardware-model outcomes of the compiled program are included in the
// software-model outcomes of the source. It also sanity-checks the
// reverse inclusion for the SC outcomes (hardware can always execute the
// program as an interleaving).
func CheckSoundness(p *prog.Program, s Scheme, consistent func(*hw.Execution) bool) error {
	hp, err := Lower(p, s)
	if err != nil {
		return err
	}
	hwSet, err := Outcomes(hp, consistent)
	if err != nil {
		return err
	}
	swSet, err := explore.Outcomes(p, explore.Options{})
	if err != nil {
		return err
	}
	if !hwSet.SubsetOf(swSet) {
		return &SoundnessError{Scheme: s, Prog: p.Name, Extra: hwSet.Minus(swSet)}
	}
	scSet, err := explore.Outcomes(p, explore.Options{SCOnly: true})
	if err != nil {
		return err
	}
	if !scSet.SubsetOf(hwSet) {
		return fmt.Errorf("compile: %s for %s lost SC outcomes %v (compiled program cannot produce them)",
			s, p.Name, scSet.Minus(hwSet))
	}
	return nil
}
