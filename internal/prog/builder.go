package prog

import "fmt"

// Builder assembles programs with named labels, so litmus tests read
// naturally in Go code. Errors are collected and reported by Build.
type Builder struct {
	p   Program
	err error
}

// NewProgram starts a program builder.
func NewProgram(name string) *Builder {
	return &Builder{p: Program{Name: name, Locs: map[Loc]LocKind{}}}
}

// Declare registers locations with the given kind.
func (b *Builder) Declare(kind LocKind, locs ...Loc) *Builder {
	for _, l := range locs {
		if k, ok := b.p.Locs[l]; ok && k != kind {
			b.fail("location %q declared both atomic and nonatomic", l)
		}
		b.p.Locs[l] = kind
	}
	return b
}

// Vars declares nonatomic locations.
func (b *Builder) Vars(locs ...Loc) *Builder { return b.Declare(NonAtomic, locs...) }

// Atomics declares atomic locations.
func (b *Builder) Atomics(locs ...Loc) *Builder { return b.Declare(Atomic, locs...) }

// RAs declares release-acquire locations (§10 extension).
func (b *Builder) RAs(locs ...Loc) *Builder { return b.Declare(ReleaseAcquire, locs...) }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("prog: "+format, args...)
	}
}

// ThreadBuilder assembles one thread's code.
type ThreadBuilder struct {
	b      *Builder
	name   string
	code   []Instr
	labels map[string]int
	// fixups maps code indices of jumps to the label they reference.
	fixups map[int]string
}

// Thread starts a new thread. Instructions are appended via the returned
// builder; the thread is added to the program when Done (or the parent's
// Build) is called.
func (b *Builder) Thread(name string) *ThreadBuilder {
	return &ThreadBuilder{b: b, name: name, labels: map[string]int{}, fixups: map[int]string{}}
}

// Load appends dst = src.
func (t *ThreadBuilder) Load(dst Reg, src Loc) *ThreadBuilder {
	t.code = append(t.code, Load{Dst: dst, Src: src})
	return t
}

// Store appends dst = src.
func (t *ThreadBuilder) Store(dst Loc, src Operand) *ThreadBuilder {
	t.code = append(t.code, Store{Dst: dst, Src: src})
	return t
}

// StoreI appends dst = imm.
func (t *ThreadBuilder) StoreI(dst Loc, v Val) *ThreadBuilder { return t.Store(dst, I(v)) }

// StoreR appends dst = reg.
func (t *ThreadBuilder) StoreR(dst Loc, r Reg) *ThreadBuilder { return t.Store(dst, R(r)) }

// Mov appends dst := src.
func (t *ThreadBuilder) Mov(dst Reg, src Operand) *ThreadBuilder {
	t.code = append(t.code, Mov{Dst: dst, Src: src})
	return t
}

// Add appends dst := a + b.
func (t *ThreadBuilder) Add(dst Reg, a, b Operand) *ThreadBuilder {
	t.code = append(t.code, Add{Dst: dst, A: a, B: b})
	return t
}

// Mul appends dst := a * b.
func (t *ThreadBuilder) Mul(dst Reg, a, b Operand) *ThreadBuilder {
	t.code = append(t.code, Mul{Dst: dst, A: a, B: b})
	return t
}

// CmpEq appends dst := (a == b).
func (t *ThreadBuilder) CmpEq(dst Reg, a, b Operand) *ThreadBuilder {
	t.code = append(t.code, CmpEq{Dst: dst, A: a, B: b})
	return t
}

// Nop appends a nop.
func (t *ThreadBuilder) Nop() *ThreadBuilder {
	t.code = append(t.code, Nop{})
	return t
}

// Label binds a name to the next instruction's index.
func (t *ThreadBuilder) Label(name string) *ThreadBuilder {
	if _, dup := t.labels[name]; dup {
		t.b.fail("thread %s: duplicate label %q", t.name, name)
	}
	t.labels[name] = len(t.code)
	return t
}

// Jmp appends an unconditional jump to a label.
func (t *ThreadBuilder) Jmp(label string) *ThreadBuilder {
	t.fixups[len(t.code)] = label
	t.code = append(t.code, Jmp{})
	return t
}

// JmpNZ appends a jump-if-nonzero to a label.
func (t *ThreadBuilder) JmpNZ(cond Reg, label string) *ThreadBuilder {
	t.fixups[len(t.code)] = label
	t.code = append(t.code, JmpNZ{Cond: cond})
	return t
}

// JmpZ appends a jump-if-zero to a label.
func (t *ThreadBuilder) JmpZ(cond Reg, label string) *ThreadBuilder {
	t.fixups[len(t.code)] = label
	t.code = append(t.code, JmpZ{Cond: cond})
	return t
}

// Done resolves labels and appends the thread to the program.
func (t *ThreadBuilder) Done() *Builder {
	for pc, label := range t.fixups {
		target, ok := t.labels[label]
		if !ok {
			t.b.fail("thread %s: undefined label %q", t.name, label)
			continue
		}
		switch in := t.code[pc].(type) {
		case Jmp:
			in.Target = target
			t.code[pc] = in
		case JmpNZ:
			in.Target = target
			t.code[pc] = in
		case JmpZ:
			in.Target = target
			t.code[pc] = in
		}
	}
	t.b.p.Threads = append(t.b.p.Threads, Thread{Name: t.name, Code: t.code})
	return t.b
}

// Build validates and returns the program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	p := b.p
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// MustBuild is Build for tests and fixed litmus definitions; it panics on
// error, which for statically-known programs indicates a typo.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
