// Package prog defines the program language over which the memory model is
// interpreted.
//
// The paper (§3) is agnostic about expressions e, e′: it only requires a
// small-step relation that either performs a silent transition or a memory
// action ℓ:ϕ, and that reads are "not picky" about the value read
// (proposition 4). This package provides a concrete such language — a
// small register machine with loads, stores, ALU operations and
// conditional branches — that is convenient for writing litmus tests and
// for exhaustive exploration. Locations are declared atomic or nonatomic
// up front, matching the paper's partition of L.
package prog

import (
	"fmt"
	"sort"
	"strings"
)

// Val is the value domain V. The paper assumes an arbitrary value set with
// an initial value v0; we use small integers with v0 = 0.
type Val int64

// V0 is the initial value of every location (§3.1).
const V0 Val = 0

// Loc names a memory location ℓ ∈ L.
type Loc string

// Reg names a thread-local register. Registers are not memory: they exist
// only so threads can compute with values they have read.
type Reg string

// LocKind says whether a location is atomic, release-acquire or
// nonatomic; the partition is fixed for the whole program, as in the
// paper. ReleaseAcquire is the extension the paper's §10 proposes
// ("release-acquire atomics would be a useful extension … by extending
// our operational model with release-acquire primitives in the style of
// Kang et al."), implemented here as timestamped messages that carry the
// writer's frontier.
type LocKind int

const (
	// NonAtomic locations hold histories in the operational model.
	NonAtomic LocKind = iota
	// Atomic locations hold a (frontier, value) pair and behave
	// sequentially consistently.
	Atomic
	// ReleaseAcquire locations hold histories of messages, each carrying
	// the frontier its writer published (§10 extension).
	ReleaseAcquire
)

func (k LocKind) String() string {
	switch k {
	case Atomic:
		return "atomic"
	case ReleaseAcquire:
		return "ra"
	default:
		return "nonatomic"
	}
}

// Operand is a register or an immediate value.
type Operand struct {
	IsReg bool
	Reg   Reg
	Imm   Val
}

// R makes a register operand.
func R(r Reg) Operand { return Operand{IsReg: true, Reg: r} }

// I makes an immediate operand.
func I(v Val) Operand { return Operand{Imm: v} }

func (o Operand) String() string {
	if o.IsReg {
		return string(o.Reg)
	}
	return fmt.Sprintf("%d", o.Imm)
}

// Instr is one instruction of the flat per-thread code. Control flow uses
// absolute targets into the thread's code slice; the Builder resolves
// labels to targets.
type Instr interface {
	isInstr()
	String() string
}

// Load reads location Src into register Dst. Whether the access is atomic
// is a property of the location, not the instruction.
type Load struct {
	Dst Reg
	Src Loc
}

// Store writes the value of Src to location Dst.
type Store struct {
	Dst Loc
	Src Operand
}

// Mov copies an operand into a register (silent).
type Mov struct {
	Dst Reg
	Src Operand
}

// Add computes Dst = A + B (silent).
type Add struct {
	Dst  Reg
	A, B Operand
}

// Mul computes Dst = A * B (silent). Included so the paper's CSE example
// (r = a*2) can be written directly.
type Mul struct {
	Dst  Reg
	A, B Operand
}

// CmpEq sets Dst to 1 if A == B and 0 otherwise (silent).
type CmpEq struct {
	Dst  Reg
	A, B Operand
}

// Jmp jumps unconditionally to Target (silent).
type Jmp struct {
	Target int
}

// JmpNZ jumps to Target when Cond is nonzero (silent).
type JmpNZ struct {
	Cond   Reg
	Target int
}

// JmpZ jumps to Target when Cond is zero (silent).
type JmpZ struct {
	Cond   Reg
	Target int
}

// Nop does nothing (silent).
type Nop struct{}

func (Load) isInstr()  {}
func (Store) isInstr() {}
func (Mov) isInstr()   {}
func (Add) isInstr()   {}
func (Mul) isInstr()   {}
func (CmpEq) isInstr() {}
func (Jmp) isInstr()   {}
func (JmpNZ) isInstr() {}
func (JmpZ) isInstr()  {}
func (Nop) isInstr()   {}

func (i Load) String() string  { return fmt.Sprintf("%s = %s", i.Dst, i.Src) }
func (i Store) String() string { return fmt.Sprintf("%s = %s", i.Dst, i.Src) }
func (i Mov) String() string   { return fmt.Sprintf("%s := %s", i.Dst, i.Src) }
func (i Add) String() string   { return fmt.Sprintf("%s := %s + %s", i.Dst, i.A, i.B) }
func (i Mul) String() string   { return fmt.Sprintf("%s := %s * %s", i.Dst, i.A, i.B) }
func (i CmpEq) String() string { return fmt.Sprintf("%s := %s == %s", i.Dst, i.A, i.B) }
func (i Jmp) String() string   { return fmt.Sprintf("goto %d", i.Target) }
func (i JmpNZ) String() string { return fmt.Sprintf("if %s goto %d", i.Cond, i.Target) }
func (i JmpZ) String() string  { return fmt.Sprintf("ifz %s goto %d", i.Cond, i.Target) }
func (Nop) String() string     { return "nop" }

// Thread is one thread's code.
type Thread struct {
	Name string
	Code []Instr
}

// Program is a complete multi-threaded program together with the
// atomicity declaration of every location it touches. All locations start
// holding V0 (§3.1).
type Program struct {
	Name    string
	Locs    map[Loc]LocKind
	Threads []Thread
}

// Kind returns the declared kind of a location; undeclared locations are
// nonatomic.
func (p *Program) Kind(l Loc) LocKind { return p.Locs[l] }

// IsAtomic reports whether l is a (sequentially consistent) atomic
// location.
func (p *Program) IsAtomic(l Loc) bool { return p.Locs[l] == Atomic }

// IsRA reports whether l is a release-acquire location (§10 extension).
func (p *Program) IsRA(l Loc) bool { return p.Locs[l] == ReleaseAcquire }

// IsSync reports whether accesses to l synchronise (atomic or RA) —
// i.e. they are never involved in data races (def. 9 concerns nonatomic
// locations only).
func (p *Program) IsSync(l Loc) bool { return p.Locs[l] != NonAtomic }

// SortedLocs returns the program's locations in a deterministic order.
func (p *Program) SortedLocs() []Loc {
	out := make([]Loc, 0, len(p.Locs))
	for l := range p.Locs {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NonAtomicLocs returns the nonatomic locations in deterministic order.
func (p *Program) NonAtomicLocs() []Loc {
	var out []Loc
	for _, l := range p.SortedLocs() {
		if !p.IsAtomic(l) {
			out = append(out, l)
		}
	}
	return out
}

// AtomicLocs returns the atomic locations in deterministic order.
func (p *Program) AtomicLocs() []Loc {
	var out []Loc
	for _, l := range p.SortedLocs() {
		if p.IsAtomic(l) {
			out = append(out, l)
		}
	}
	return out
}

// RALocs returns the release-acquire locations in deterministic order.
func (p *Program) RALocs() []Loc {
	var out []Loc
	for _, l := range p.SortedLocs() {
		if p.IsRA(l) {
			out = append(out, l)
		}
	}
	return out
}

// Constants returns every immediate value appearing in the program plus
// V0. This seeds the value domain used by axiomatic enumeration.
func (p *Program) Constants() []Val {
	seen := map[Val]bool{V0: true}
	add := func(o Operand) {
		if !o.IsReg {
			seen[o.Imm] = true
		}
	}
	for _, t := range p.Threads {
		for _, in := range t.Code {
			switch i := in.(type) {
			case Store:
				add(i.Src)
			case Mov:
				add(i.Src)
			case Add:
				add(i.A)
				add(i.B)
			case Mul:
				add(i.A)
				add(i.B)
			case CmpEq:
				add(i.A)
				add(i.B)
			}
		}
	}
	out := make([]Val, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks structural well-formedness: jump targets in range
// (len(code) is allowed and means halt), all touched locations declared.
func (p *Program) Validate() error {
	if len(p.Threads) == 0 {
		return fmt.Errorf("prog: program %q has no threads", p.Name)
	}
	for ti, t := range p.Threads {
		for pc, in := range t.Code {
			switch i := in.(type) {
			case Jmp:
				if i.Target < 0 || i.Target > len(t.Code) {
					return fmt.Errorf("prog: thread %d pc %d: jump target %d out of range", ti, pc, i.Target)
				}
			case JmpNZ:
				if i.Target < 0 || i.Target > len(t.Code) {
					return fmt.Errorf("prog: thread %d pc %d: jump target %d out of range", ti, pc, i.Target)
				}
			case JmpZ:
				if i.Target < 0 || i.Target > len(t.Code) {
					return fmt.Errorf("prog: thread %d pc %d: jump target %d out of range", ti, pc, i.Target)
				}
			case Load:
				if _, ok := p.Locs[i.Src]; !ok {
					return fmt.Errorf("prog: thread %d pc %d: undeclared location %q", ti, pc, i.Src)
				}
			case Store:
				if _, ok := p.Locs[i.Dst]; !ok {
					return fmt.Errorf("prog: thread %d pc %d: undeclared location %q", ti, pc, i.Dst)
				}
			}
		}
	}
	return nil
}

// String renders the program in (roughly) the litmus source format.
func (p *Program) String() string {
	var b strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&b, "// %s\n", p.Name)
	}
	var na, at, ra []string
	for _, l := range p.SortedLocs() {
		switch p.Locs[l] {
		case Atomic:
			at = append(at, string(l))
		case ReleaseAcquire:
			ra = append(ra, string(l))
		default:
			na = append(na, string(l))
		}
	}
	if len(na) > 0 {
		fmt.Fprintf(&b, "var %s\n", strings.Join(na, " "))
	}
	if len(at) > 0 {
		fmt.Fprintf(&b, "atomic %s\n", strings.Join(at, " "))
	}
	if len(ra) > 0 {
		fmt.Fprintf(&b, "ra %s\n", strings.Join(ra, " "))
	}
	for _, t := range p.Threads {
		fmt.Fprintf(&b, "thread %s\n", t.Name)
		for pc, in := range t.Code {
			fmt.Fprintf(&b, "  %2d: %s\n", pc, in)
		}
		b.WriteString("end\n")
	}
	return b.String()
}
