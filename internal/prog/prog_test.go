package prog

import (
	"strings"
	"testing"
)

func TestBuilderMP(t *testing.T) {
	p := NewProgram("MP").
		Vars("x").
		Atomics("F").
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").Load("r0", "F").Load("r1", "x").Done().
		MustBuild()
	if len(p.Threads) != 2 {
		t.Fatalf("threads = %d, want 2", len(p.Threads))
	}
	if !p.IsAtomic("F") || p.IsAtomic("x") {
		t.Fatal("atomicity declarations wrong")
	}
	if got := len(p.Threads[0].Code); got != 2 {
		t.Fatalf("P0 code length = %d, want 2", got)
	}
}

func TestBuilderLabels(t *testing.T) {
	p := NewProgram("branch").
		Vars("x").
		Thread("P0").
		Load("r0", "x").
		JmpNZ("r0", "skip").
		StoreI("x", 1).
		Label("skip").
		Nop().
		Done().
		MustBuild()
	j, ok := p.Threads[0].Code[1].(JmpNZ)
	if !ok {
		t.Fatalf("instr 1 = %T, want JmpNZ", p.Threads[0].Code[1])
	}
	if j.Target != 3 {
		t.Fatalf("jump target = %d, want 3", j.Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	_, err := NewProgram("bad").
		Vars("x").
		Thread("P0").Jmp("nowhere").Done().
		Build()
	if err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("err = %v, want undefined label", err)
	}
}

func TestBuilderConflictingKind(t *testing.T) {
	_, err := NewProgram("bad").
		Vars("x").
		Atomics("x").
		Thread("P0").Nop().Done().
		Build()
	if err == nil {
		t.Fatal("conflicting declaration accepted")
	}
}

func TestValidateUndeclaredLocation(t *testing.T) {
	p := Program{
		Name:    "bad",
		Locs:    map[Loc]LocKind{},
		Threads: []Thread{{Name: "P0", Code: []Instr{Load{Dst: "r0", Src: "x"}}}},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("undeclared location accepted")
	}
}

func TestStepSilentThroughALU(t *testing.T) {
	p := NewProgram("alu").
		Vars("x").
		Thread("P0").
		Mov("r0", I(5)).
		Add("r1", R("r0"), I(2)).
		Mul("r2", R("r1"), I(3)).
		CmpEq("r3", R("r2"), I(21)).
		StoreR("x", "r2").
		Done().
		MustBuild()
	st, pend, err := StepSilent(p.Threads[0].Code, NewThreadState(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if pend.Kind != OpWrite || pend.Loc != "x" || pend.Val != 21 {
		t.Fatalf("pending = %+v, want write x 21", pend)
	}
	if st.Reg("r3") != 1 {
		t.Fatalf("r3 = %d, want 1", st.Reg("r3"))
	}
}

func TestStepSilentBranchTaken(t *testing.T) {
	p := NewProgram("br").
		Vars("x").
		Thread("P0").
		Mov("r0", I(1)).
		JmpNZ("r0", "store2").
		StoreI("x", 1).
		Jmp("done").
		Label("store2").
		StoreI("x", 2).
		Label("done").
		Done().
		MustBuild()
	_, pend, err := StepSilent(p.Threads[0].Code, NewThreadState(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if pend.Kind != OpWrite || pend.Val != 2 {
		t.Fatalf("pending = %+v, want write 2 (branch taken)", pend)
	}
}

func TestStepSilentHalts(t *testing.T) {
	p := NewProgram("empty").Vars("x").Thread("P0").Nop().Done().MustBuild()
	_, pend, err := StepSilent(p.Threads[0].Code, NewThreadState(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if pend.Kind != OpHalted {
		t.Fatalf("pending = %+v, want halted", pend)
	}
}

func TestStepSilentDivergenceGuard(t *testing.T) {
	p := NewProgram("loop").
		Vars("x").
		Thread("P0").Label("L").Jmp("L").Done().
		MustBuild()
	_, _, err := StepSilent(p.Threads[0].Code, NewThreadState(), 50)
	if err == nil {
		t.Fatal("divergent loop not detected")
	}
}

func TestApplyReadWrite(t *testing.T) {
	p := NewProgram("rw").
		Vars("x", "y").
		Thread("P0").Load("r0", "x").StoreR("y", "r0").Done().
		MustBuild()
	st, pend, err := StepSilent(p.Threads[0].Code, NewThreadState(), 100)
	if err != nil || pend.Kind != OpRead {
		t.Fatalf("pend=%+v err=%v", pend, err)
	}
	st = ApplyRead(st, pend, 7)
	st2, pend2, err := StepSilent(p.Threads[0].Code, st, 100)
	if err != nil || pend2.Kind != OpWrite || pend2.Val != 7 {
		t.Fatalf("pend2=%+v err=%v", pend2, err)
	}
	st3 := ApplyWrite(st2)
	if !st3.Halted(p.Threads[0].Code) {
		t.Fatal("thread not halted after final write")
	}
}

// Proposition 4: if a read can step with one value, it can step with any.
func TestProposition4(t *testing.T) {
	p := NewProgram("prop4").
		Vars("x").
		Thread("P0").Load("r0", "x").Done().
		MustBuild()
	st, pend, err := StepSilent(p.Threads[0].Code, NewThreadState(), 100)
	if err != nil || pend.Kind != OpRead {
		t.Fatal("expected read")
	}
	for _, v := range []Val{0, 1, -3, 42} {
		got := ApplyRead(st, pend, v)
		if got.Reg("r0") != v {
			t.Fatalf("ApplyRead(%d): r0 = %d", v, got.Reg("r0"))
		}
	}
}

func TestConstants(t *testing.T) {
	p := NewProgram("c").
		Vars("x").
		Thread("P0").StoreI("x", 3).Mov("r0", I(5)).Add("r1", R("r0"), I(7)).Done().
		MustBuild()
	got := p.Constants()
	want := []Val{0, 3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("constants = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("constants = %v, want %v", got, want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `
name MP-na
var x y
thread P0
  x = 1
  y = 1
end
thread P1
  r0 = y
  r1 = x
end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "MP-na" {
		t.Errorf("name = %q", p.Name)
	}
	if len(p.Threads) != 2 {
		t.Fatalf("threads = %d", len(p.Threads))
	}
	if _, ok := p.Threads[1].Code[0].(Load); !ok {
		t.Fatalf("P1[0] = %T, want Load", p.Threads[1].Code[0])
	}
	if _, ok := p.Threads[0].Code[0].(Store); !ok {
		t.Fatalf("P0[0] = %T, want Store", p.Threads[0].Code[0])
	}
}

func TestParseBranchesAndALU(t *testing.T) {
	src := `
name branchy
var x
atomic F
thread P0
  r0 = F
  r1 := r0 == 1
  if r1 goto W
  goto E
W:
  x = 2
E:
  nop
end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsAtomic("F") {
		t.Error("F should be atomic")
	}
	code := p.Threads[0].Code
	if _, ok := code[2].(JmpNZ); !ok {
		t.Fatalf("code[2] = %T, want JmpNZ", code[2])
	}
}

func TestParseReleaseAcquire(t *testing.T) {
	src := `
name ra-prog
var x
ra G
thread P0
  x = 1
  G = 1
end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsRA("G") || p.IsAtomic("G") || p.IsRA("x") {
		t.Errorf("kinds wrong: G=%v x=%v", p.Locs["G"], p.Locs["x"])
	}
	if !p.IsSync("G") || p.IsSync("x") {
		t.Error("IsSync classification wrong")
	}
	if got := p.RALocs(); len(got) != 1 || got[0] != "G" {
		t.Errorf("RALocs = %v", got)
	}
}

func TestBuilderRAs(t *testing.T) {
	p := NewProgram("ra").
		RAs("G").
		Thread("P0").StoreI("G", 1).Done().
		MustBuild()
	if p.Kind("G") != ReleaseAcquire {
		t.Errorf("kind = %v", p.Kind("G"))
	}
	if want := "ra G"; !containsLine(p.String(), want) {
		t.Errorf("String() missing %q:\n%s", want, p.String())
	}
}

func containsLine(s, want string) bool {
	return strings.Contains(s, want)
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"thread P0\nthread P1\nend\nend",   // nested thread
		"x = 1",                            // instruction outside thread
		"var x\nthread P0\n???\nend",       // unparseable
		"var x\nthread P0\n  y = 1\nend",   // undeclared store loc
		"thread P0",                        // unterminated
		"var x y\nthread P0\n  x = y\nend", // loc-to-loc move
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestProgramString(t *testing.T) {
	p := NewProgram("show").
		Vars("x").Atomics("F").
		Thread("P0").StoreI("x", 1).Done().
		MustBuild()
	s := p.String()
	for _, want := range []string{"var x", "atomic F", "thread P0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestThreadStateKeyDeterministic(t *testing.T) {
	s := NewThreadState()
	s.Regs["b"] = 2
	s.Regs["a"] = 1
	s.Regs["z"] = 0 // zero registers don't affect the key
	k1 := s.Key()
	s2 := NewThreadState()
	s2.Regs["a"] = 1
	s2.Regs["b"] = 2
	if k1 != s2.Key() {
		t.Errorf("keys differ: %q vs %q", k1, s2.Key())
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewThreadState()
	s.Regs["r"] = 1
	c := s.Clone()
	c.Regs["r"] = 2
	if s.Regs["r"] != 1 {
		t.Fatal("Clone shares register map")
	}
}
