package prog

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a program from the litmus text format:
//
//	// comment
//	name MP
//	var x y          // nonatomic locations
//	atomic F         // atomic locations
//	thread P0
//	  x = 1          // store (LHS is a declared location)
//	  F = 1
//	end
//	thread P1
//	  r0 = F         // load  (RHS is a declared location)
//	  r1 = x
//	  r2 := r0 + 1   // register ops use :=
//	  r3 := r0 * 2
//	  r4 := r0 == r1
//	  if r4 goto L
//	  goto E
//	L:
//	  nop
//	E:
//	end
//
// Lines are trimmed; `//` starts a comment. Identifiers are alphanumeric
// with underscores and dots.
func Parse(src string) (*Program, error) {
	b := NewProgram("")
	var tb *ThreadBuilder
	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := raw
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		// Inside a thread block every line except "end" is an
		// instruction; the declaration keywords (var/atomic/ra/name) are
		// only recognised at the top level, so they remain usable as
		// register names.
		switch {
		case tb != nil && fields[0] == "thread":
			return nil, parseErr(lineNo, "nested thread (missing end?)")
		case tb != nil && fields[0] == "end":
			tb.Done()
			tb = nil
		case tb != nil:
			if err := parseInstr(b, tb, line); err != nil {
				return nil, parseErr(lineNo, "%v", err)
			}
		case fields[0] == "name":
			if len(fields) < 2 {
				return nil, parseErr(lineNo, "name requires an argument")
			}
			b.p.Name = strings.Join(fields[1:], " ")
		case fields[0] == "var":
			for _, f := range fields[1:] {
				b.Vars(Loc(f))
			}
		case fields[0] == "atomic":
			for _, f := range fields[1:] {
				b.Atomics(Loc(f))
			}
		case fields[0] == "ra":
			for _, f := range fields[1:] {
				b.RAs(Loc(f))
			}
		case fields[0] == "thread":
			if len(fields) != 2 {
				return nil, parseErr(lineNo, "thread requires a name")
			}
			tb = b.Thread(fields[1])
		case fields[0] == "end":
			return nil, parseErr(lineNo, "end outside thread")
		default:
			return nil, parseErr(lineNo, "instruction outside thread: %q", line)
		}
	}
	if tb != nil {
		return nil, fmt.Errorf("prog: unterminated thread at end of input")
	}
	return b.Build()
}

func parseErr(line int, format string, args ...any) error {
	return fmt.Errorf("prog: line %d: "+format, append([]any{line}, args...)...)
}

func parseInstr(b *Builder, tb *ThreadBuilder, line string) error {
	fields := strings.Fields(line)
	// Label: "NAME:"
	if len(fields) == 1 && strings.HasSuffix(fields[0], ":") {
		tb.Label(strings.TrimSuffix(fields[0], ":"))
		return nil
	}
	switch fields[0] {
	case "nop":
		tb.Nop()
		return nil
	case "goto":
		if len(fields) != 2 {
			return fmt.Errorf("goto requires a label")
		}
		tb.Jmp(fields[1])
		return nil
	case "if", "ifz":
		if len(fields) != 4 || fields[2] != "goto" {
			return fmt.Errorf("expected %q COND goto LABEL", fields[0])
		}
		if fields[0] == "if" {
			tb.JmpNZ(Reg(fields[1]), fields[3])
		} else {
			tb.JmpZ(Reg(fields[1]), fields[3])
		}
		return nil
	}
	// Register ops: "dst := ..."
	if len(fields) >= 3 && fields[1] == ":=" {
		dst := Reg(fields[0])
		rhs := fields[2:]
		switch len(rhs) {
		case 1:
			tb.Mov(dst, parseOperand(rhs[0]))
			return nil
		case 3:
			a, op, c := parseOperand(rhs[0]), rhs[1], parseOperand(rhs[2])
			switch op {
			case "+":
				tb.Add(dst, a, c)
			case "*":
				tb.Mul(dst, a, c)
			case "==":
				tb.CmpEq(dst, a, c)
			default:
				return fmt.Errorf("unknown operator %q", op)
			}
			return nil
		default:
			return fmt.Errorf("malformed register operation %q", line)
		}
	}
	// Memory ops: "lhs = rhs". A load if rhs is a declared location,
	// otherwise a store (lhs must then be a declared location).
	if len(fields) == 3 && fields[1] == "=" {
		lhs, rhs := fields[0], fields[2]
		if _, isLoc := b.p.Locs[Loc(rhs)]; isLoc {
			if _, lhsIsLoc := b.p.Locs[Loc(lhs)]; lhsIsLoc {
				return fmt.Errorf("location-to-location move %q: load into a register first", line)
			}
			tb.Load(Reg(lhs), Loc(rhs))
			return nil
		}
		if _, isLoc := b.p.Locs[Loc(lhs)]; !isLoc {
			return fmt.Errorf("%q: neither side is a declared location", line)
		}
		tb.Store(Loc(lhs), parseOperand(rhs))
		return nil
	}
	return fmt.Errorf("cannot parse %q", line)
}

func parseOperand(s string) Operand {
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return I(Val(v))
	}
	return R(Reg(s))
}
