package prog

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// ThreadState is the expression part of a thread's configuration: a
// program counter into the thread's code and the register file. The
// frontier lives with the machine, not here (fig. 1a keeps them paired but
// the memory model packages own the frontier representation).
type ThreadState struct {
	PC   int
	Regs map[Reg]Val
}

// NewThreadState returns the initial state (pc 0, all registers 0).
func NewThreadState() ThreadState {
	return ThreadState{Regs: map[Reg]Val{}}
}

// Clone returns an independent copy.
func (s ThreadState) Clone() ThreadState {
	regs := make(map[Reg]Val, len(s.Regs))
	for k, v := range s.Regs {
		regs[k] = v
	}
	return ThreadState{PC: s.PC, Regs: regs}
}

// Reg returns the value of a register; unwritten registers read as 0.
func (s ThreadState) Reg(r Reg) Val { return s.Regs[r] }

// Eval evaluates an operand in this state.
func (s ThreadState) Eval(o Operand) Val {
	if o.IsReg {
		return s.Regs[o.Reg]
	}
	return o.Imm
}

// Halted reports whether the thread has run off the end of its code.
func (s ThreadState) Halted(code []Instr) bool {
	return s.PC < 0 || s.PC >= len(code)
}

// Key renders the state deterministically for hashing.
func (s ThreadState) Key() string {
	regs := make([]string, 0, len(s.Regs))
	for r, v := range s.Regs {
		if v != 0 {
			regs = append(regs, fmt.Sprintf("%s=%d", r, v))
		}
	}
	sort.Strings(regs)
	return fmt.Sprintf("pc%d[%s]", s.PC, strings.Join(regs, ","))
}

// AppendCanonical appends a compact binary encoding of the state (pc,
// then the nonzero registers in name order) to dst. Zero registers are
// elided, as in Key: "never written" and "written zero" are
// observationally identical. Equal encodings iff equal states. This is
// the engine's per-state hot path, so the register names are gathered
// into a stack buffer and insertion-sorted (register files are tiny)
// rather than allocated and sort.Strings'd.
func (s ThreadState) AppendCanonical(dst []byte) []byte {
	dst = binary.AppendVarint(dst, int64(s.PC))
	var stack [8]Reg
	names := stack[:0]
	for r, v := range s.Regs {
		if v != 0 {
			names = append(names, r)
		}
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, r := range names {
		dst = binary.AppendUvarint(dst, uint64(len(r)))
		dst = append(dst, r...)
		dst = binary.AppendVarint(dst, int64(s.Regs[r]))
	}
	return dst
}

// OpKind classifies the pending operation of a thread.
type OpKind int

const (
	// OpHalted: the thread has no more instructions.
	OpHalted OpKind = iota
	// OpRead: the next instruction is a load (an ℓ:read x action; the
	// value is chosen by the memory, per proposition 4).
	OpRead
	// OpWrite: the next instruction is a store (an ℓ:write x action).
	OpWrite
)

// Pending describes the next memory action of a thread whose silent steps
// have been exhausted.
type Pending struct {
	Kind OpKind
	Loc  Loc
	// Val is the value to be written (writes only).
	Val Val
	// Dst is the register a read will populate (reads only).
	Dst Reg
}

// MaxSilentStepsHint is a generous default budget for StepSilent; litmus
// programs finish their silent runs in a handful of steps, so exceeding it
// indicates a divergent silent loop.
const MaxSilentStepsHint = 10_000

// StepSilent advances the thread through consecutive silent transitions
// (e —ϵ→ e′) until it reaches a load, a store, or halts, returning the
// resulting state and the pending action. maxSteps guards against
// divergent silent loops (e.g. `L: goto L`); exceeding it returns an
// error rather than spinning. The input state is not modified.
func StepSilent(code []Instr, st ThreadState, maxSteps int) (ThreadState, Pending, error) {
	s := st.Clone()
	pend, err := StepSilentInPlace(code, &s, maxSteps)
	return s, pend, err
}

// StepSilentInPlace is StepSilent without the defensive clone: it mutates
// the caller's state directly. The exhaustive explorers always clone (a
// machine state is expanded many ways), but the streaming schedule
// generator (internal/schedgen) executes exactly one schedule over
// millions of events, where a clone per transition would dominate the
// run.
func StepSilentInPlace(code []Instr, s *ThreadState, maxSteps int) (Pending, error) {
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			return Pending{}, fmt.Errorf("prog: silent step budget exceeded (divergent loop?)")
		}
		if s.Halted(code) {
			return Pending{Kind: OpHalted}, nil
		}
		switch in := code[s.PC].(type) {
		case Load:
			return Pending{Kind: OpRead, Loc: in.Src, Dst: in.Dst}, nil
		case Store:
			return Pending{Kind: OpWrite, Loc: in.Dst, Val: s.Eval(in.Src)}, nil
		case Mov:
			s.Regs[in.Dst] = s.Eval(in.Src)
			s.PC++
		case Add:
			s.Regs[in.Dst] = s.Eval(in.A) + s.Eval(in.B)
			s.PC++
		case Mul:
			s.Regs[in.Dst] = s.Eval(in.A) * s.Eval(in.B)
			s.PC++
		case CmpEq:
			if s.Eval(in.A) == s.Eval(in.B) {
				s.Regs[in.Dst] = 1
			} else {
				s.Regs[in.Dst] = 0
			}
			s.PC++
		case Jmp:
			s.PC = in.Target
		case JmpNZ:
			if s.Regs[in.Cond] != 0 {
				s.PC = in.Target
			} else {
				s.PC++
			}
		case JmpZ:
			if s.Regs[in.Cond] == 0 {
				s.PC = in.Target
			} else {
				s.PC++
			}
		case Nop:
			s.PC++
		default:
			return Pending{}, fmt.Errorf("prog: unknown instruction %T", in)
		}
	}
}

// ApplyRead completes a pending read with the value supplied by memory.
// This is where proposition 4 holds: any value is accepted.
func ApplyRead(st ThreadState, p Pending, v Val) ThreadState {
	s := st.Clone()
	s.Regs[p.Dst] = v
	s.PC++
	return s
}

// ApplyWrite completes a pending write (the memory consumed the value).
func ApplyWrite(st ThreadState) ThreadState {
	s := st.Clone()
	s.PC++
	return s
}
