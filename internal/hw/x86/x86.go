// Package x86 implements the axiomatic x86-TSO model of fig. 3 of the
// paper (after Alglave et al.), used to validate the table-1 compilation
// scheme (thm. 19).
//
//	poloc   = po ∩ same-location
//	poghb   = po ∩ ((W × W) ∪ (R × M))
//	implied = po ∩ ((W × WA) ∪ (WA × R))   where WA = writes with an rmw-predecessor
//	ghb     = implied ∪ poghb ∪ rfe ∪ fr ∪ co
//
// Conditions: acyclic(poloc ∪ rf ∪ fr ∪ co), acyclic(ghb),
// rmw ∩ (fre; coe) = ∅.
//
// The model captures exactly TSO's one relaxation: a write followed by a
// program-order-later read (of a different location) is not globally
// ordered — the read may complete while the write sits in the store
// buffer — except around the read/write halves of a locked instruction.
package x86

import (
	"localdrf/internal/hw"
	"localdrf/internal/rel"
)

// GHB computes the global-happens-before relation of fig. 3.
func GHB(x *hw.Execution) rel.Rel {
	isWA := func(i int) bool { return x.IsWA(i) }
	poghb := x.PO.Restrict(x.IsWriteEv, x.IsWriteEv).
		Union(x.PO.Restrict(x.IsReadEv, x.Any))
	implied := x.PO.Restrict(x.IsWriteEv, isWA).
		Union(x.PO.Restrict(isWA, x.IsReadEv))
	return implied.Union(poghb, x.External(x.RF), x.FR(), x.CO)
}

// Consistent reports whether the execution satisfies the x86-TSO axioms.
func Consistent(x *hw.Execution) bool {
	if !x.SCPerLocation() {
		return false
	}
	if !GHB(x).Acyclic() {
		return false
	}
	return x.RMWAtomic()
}
