package x86

import (
	"testing"

	"localdrf/internal/hw"
	"localdrf/internal/prog"
)

// sb builds the classic store-buffering shape with the given store kind
// for the two writes (Plain for mov, with rmw pairs when xchg is true).
func sb(xchg bool) *hw.Program {
	mkWriter := func(loc prog.Loc, dst prog.Loc, reg prog.Reg) []hw.Instr {
		var code []hw.Instr
		if xchg {
			code = append(code,
				hw.Instr{Op: hw.OpLd, Ord: hw.Plain, Loc: loc, Dst: "scratch"},
				hw.Instr{Op: hw.OpSt, Ord: hw.Plain, Loc: loc, A: prog.I(1), RMWPair: true},
			)
		} else {
			code = append(code, hw.Instr{Op: hw.OpSt, Ord: hw.Plain, Loc: loc, A: prog.I(1)})
		}
		code = append(code, hw.Instr{Op: hw.OpLd, Ord: hw.Plain, Loc: dst, Dst: reg})
		return code
	}
	return &hw.Program{
		Name: "SB",
		Locs: map[prog.Loc]prog.LocKind{"x": prog.NonAtomic, "y": prog.NonAtomic},
		Threads: []hw.Thread{
			{Name: "P0", Code: mkWriter("x", "y", "r0")},
			{Name: "P1", Code: mkWriter("y", "x", "r1")},
		},
		ObsRegs: []map[prog.Reg]bool{{"r0": true}, {"r1": true}},
	}
}

func outcomes(t *testing.T, p *hw.Program) map[[2]prog.Val]bool {
	t.Helper()
	seen := map[[2]prog.Val]bool{}
	err := hw.Enumerate(p, Consistent, func(x *hw.Execution) bool {
		seen[[2]prog.Val{x.Regs[0]["r0"], x.Regs[1]["r1"]}] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return seen
}

// TSO's defining relaxation: with plain movs, SB allows r0 = r1 = 0.
func TestTSOAllowsStoreBuffering(t *testing.T) {
	seen := outcomes(t, sb(false))
	if !seen[[2]prog.Val{0, 0}] {
		t.Error("plain-mov SB should allow r0=r1=0 under TSO")
	}
	// SC outcomes remain available.
	if !seen[[2]prog.Val{1, 1}] || !seen[[2]prog.Val{0, 1}] || !seen[[2]prog.Val{1, 0}] {
		t.Errorf("missing SC outcomes: %v", seen)
	}
}

// With xchg writes, the implied edges (WA×R) forbid the relaxation.
func TestXchgForbidsStoreBuffering(t *testing.T) {
	seen := outcomes(t, sb(true))
	if seen[[2]prog.Val{0, 0}] {
		t.Error("xchg SB must forbid r0=r1=0 (implied ordering)")
	}
}

// TSO never reorders two stores: message passing with plain movs works.
func TestTSOKeepsStoreOrder(t *testing.T) {
	p := &hw.Program{
		Name: "MP",
		Locs: map[prog.Loc]prog.LocKind{"x": prog.NonAtomic, "f": prog.NonAtomic},
		Threads: []hw.Thread{
			{Name: "P0", Code: []hw.Instr{
				{Op: hw.OpSt, Ord: hw.Plain, Loc: "x", A: prog.I(1)},
				{Op: hw.OpSt, Ord: hw.Plain, Loc: "f", A: prog.I(1)},
			}},
			{Name: "P1", Code: []hw.Instr{
				{Op: hw.OpLd, Ord: hw.Plain, Loc: "f", Dst: "r0"},
				{Op: hw.OpLd, Ord: hw.Plain, Loc: "x", Dst: "r1"},
			}},
		},
		ObsRegs: []map[prog.Reg]bool{{}, {"r0": true, "r1": true}},
	}
	err := hw.Enumerate(p, Consistent, func(x *hw.Execution) bool {
		if x.Regs[1]["r0"] == 1 && x.Regs[1]["r1"] == 0 {
			t.Error("TSO leaked the MP violation (stores or loads reordered)")
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TSO forbids load buffering: poghb includes all R×M pairs.
func TestTSOForbidsLoadBuffering(t *testing.T) {
	p := &hw.Program{
		Name: "LB",
		Locs: map[prog.Loc]prog.LocKind{"x": prog.NonAtomic, "y": prog.NonAtomic},
		Threads: []hw.Thread{
			{Name: "P0", Code: []hw.Instr{
				{Op: hw.OpLd, Ord: hw.Plain, Loc: "x", Dst: "r0"},
				{Op: hw.OpSt, Ord: hw.Plain, Loc: "y", A: prog.I(1)},
			}},
			{Name: "P1", Code: []hw.Instr{
				{Op: hw.OpLd, Ord: hw.Plain, Loc: "y", Dst: "r1"},
				{Op: hw.OpSt, Ord: hw.Plain, Loc: "x", A: prog.I(1)},
			}},
		},
		ObsRegs: []map[prog.Reg]bool{{"r0": true}, {"r1": true}},
	}
	err := hw.Enumerate(p, Consistent, func(x *hw.Execution) bool {
		if x.Regs[0]["r0"] == 1 && x.Regs[1]["r1"] == 1 {
			t.Error("TSO must forbid load buffering")
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// GHB's components: a write followed by a read of a different location is
// NOT in poghb (the store-buffer hole), everything else is.
func TestGHBHole(t *testing.T) {
	p := sb(false)
	err := hw.Enumerate(p, func(*hw.Execution) bool { return true }, func(x *hw.Execution) bool {
		ghb := GHB(x)
		for i, e1 := range x.Events {
			for j, e2 := range x.Events {
				if !x.PO.Has(i, j) {
					continue
				}
				wr := e1.IsWrite && !e2.IsWrite
				if wr && e1.Loc != e2.Loc && ghb.Has(i, j) && !x.RF.Has(i, j) {
					// The only way a W→R po pair enters ghb is via
					// implied (xchg) or some derived relation; with
					// plain movs it must be absent.
					t.Errorf("W→R pair (%v, %v) leaked into ghb", e1, e2)
				}
				if !e1.IsWrite && !ghb.Has(i, j) {
					t.Errorf("R→M po pair (%v, %v) missing from ghb", e1, e2)
				}
			}
		}
		return false // one candidate suffices
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Coherence: per-location SC holds even under TSO.
func TestSCPerLocationEnforced(t *testing.T) {
	p := &hw.Program{
		Name: "CoRR",
		Locs: map[prog.Loc]prog.LocKind{"x": prog.NonAtomic},
		Threads: []hw.Thread{
			{Name: "P0", Code: []hw.Instr{
				{Op: hw.OpSt, Ord: hw.Plain, Loc: "x", A: prog.I(1)},
				{Op: hw.OpSt, Ord: hw.Plain, Loc: "x", A: prog.I(2)},
			}},
			{Name: "P1", Code: []hw.Instr{
				{Op: hw.OpLd, Ord: hw.Plain, Loc: "x", Dst: "r0"},
				{Op: hw.OpLd, Ord: hw.Plain, Loc: "x", Dst: "r1"},
			}},
		},
		ObsRegs: []map[prog.Reg]bool{{}, {"r0": true, "r1": true}},
	}
	err := hw.Enumerate(p, Consistent, func(x *hw.Execution) bool {
		r0, r1 := x.Regs[1]["r0"], x.Regs[1]["r1"]
		if r0 == 2 && r1 == 1 {
			t.Error("x86 hardware must not reorder same-location reads (unlike the software model)")
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}
