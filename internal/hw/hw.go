// Package hw defines the hardware-level programs and candidate executions
// over which the x86-TSO (fig. 3) and ARMv8 (fig. 4) axiomatic models are
// checked.
//
// Hardware programs are produced by package compile from software
// programs; instructions carry the annotations the hardware models care
// about: load/store ordering flavours (plain, acquire ldar/ldaxr, release
// stlr/stlxr), fences (dmb ld / dmb st / full), dependency-only branches
// (the cbz of the paper's BAL scheme), and read-modify-write pairing for
// exclusives and x86 xchg.
//
// Candidate executions follow §7: they are software candidate executions
// extended with an rmw relation (the Wickerson et al. encoding of RMWs as
// read/write pairs) and, for ARM, the annotations and dependency
// relations (ctrl, dmbld, dmbst) of fig. 4. Enumeration mirrors package
// axiomatic: per-thread local executions with read values drawn from a
// per-location fixpoint domain, then rf/co enumeration; the architecture
// model supplies the consistency predicate.
package hw

import (
	"fmt"

	"localdrf/internal/prog"
	"localdrf/internal/rel"
)

// Op is the kind of a hardware instruction.
type Op int

const (
	// OpLd is a load; Ord selects ldr / ldar / ldaxr.
	OpLd Op = iota
	// OpSt is a store; Ord selects str / stlr / stlxr.
	OpSt
	// OpFence is a memory barrier; Fence selects dmb ld / dmb st / dmb ish.
	OpFence
	// OpBranchDep is the dependency-only conditional branch of the BAL
	// scheme (cbz R, L; L:): both outcomes fall through, but a control
	// dependency is induced from the reads feeding R to every later event.
	OpBranchDep
	// Register computation and real control flow, mirroring package prog.
	OpMov
	OpAdd
	OpMul
	OpCmpEq
	OpJmp
	OpJmpZ
	OpJmpNZ
	OpNop
)

// Ordering is the flavour of a load or store.
type Ordering int

const (
	// Plain is ldr / str (or x86 mov).
	Plain Ordering = iota
	// Acquire is ldar.
	Acquire
	// AcquireX is ldaxr (exclusive acquire, the read half of an RMW).
	AcquireX
	// Release is stlr.
	Release
	// ReleaseX is stlxr (exclusive release, the write half of an RMW).
	ReleaseX
)

// FenceKind is the flavour of a barrier.
type FenceKind int

const (
	// DmbLd is dmb ld: orders prior reads before subsequent accesses.
	DmbLd FenceKind = iota
	// DmbSt is dmb st: orders prior writes before subsequent writes.
	DmbSt
	// DmbFull is dmb ish: both.
	DmbFull
)

// Instr is one hardware instruction.
type Instr struct {
	Op     Op
	Ord    Ordering
	Fence  FenceKind
	Loc    prog.Loc
	Dst    prog.Reg
	A, B   prog.Operand
	Cond   prog.Reg
	Target int
	// RMWPair marks a store that forms a read-modify-write pair with the
	// immediately preceding load event of the same thread (ldaxr/stlxr,
	// or the two halves of an x86 xchg).
	RMWPair bool
}

func (i Instr) String() string {
	switch i.Op {
	case OpLd:
		name := map[Ordering]string{Plain: "ldr", Acquire: "ldar", AcquireX: "ldaxr"}[i.Ord]
		return fmt.Sprintf("%s %s, [%s]", name, i.Dst, i.Loc)
	case OpSt:
		name := map[Ordering]string{Plain: "str", Release: "stlr", ReleaseX: "stlxr"}[i.Ord]
		return fmt.Sprintf("%s %s, [%s]", name, i.A, i.Loc)
	case OpFence:
		return map[FenceKind]string{DmbLd: "dmb ld", DmbSt: "dmb st", DmbFull: "dmb ish"}[i.Fence]
	case OpBranchDep:
		return fmt.Sprintf("cbz %s, .+1", i.Cond)
	case OpMov:
		return fmt.Sprintf("mov %s, %s", i.Dst, i.A)
	case OpAdd:
		return fmt.Sprintf("add %s, %s, %s", i.Dst, i.A, i.B)
	case OpMul:
		return fmt.Sprintf("mul %s, %s, %s", i.Dst, i.A, i.B)
	case OpCmpEq:
		return fmt.Sprintf("cmpeq %s, %s, %s", i.Dst, i.A, i.B)
	case OpJmp:
		return fmt.Sprintf("b %d", i.Target)
	case OpJmpZ:
		return fmt.Sprintf("cbz %s, %d", i.Cond, i.Target)
	case OpJmpNZ:
		return fmt.Sprintf("cbnz %s, %d", i.Cond, i.Target)
	default:
		return "nop"
	}
}

// Thread is one hardware thread.
type Thread struct {
	Name string
	Code []Instr
}

// Program is a compiled hardware program. Locs carries the original
// atomicity declaration (used only to size value domains and report
// outcomes; the hardware itself has no notion of atomic locations —
// ordering comes from the instruction annotations).
type Program struct {
	Name    string
	Locs    map[prog.Loc]prog.LocKind
	Threads []Thread
	// ObsRegs lists, per thread, the registers whose final values are
	// observable (the registers of the source program); scratch registers
	// introduced by lowering are excluded from outcomes.
	ObsRegs []map[prog.Reg]bool
}

// Event is a node of the hardware event graph.
type Event struct {
	Thread  int
	Seq     int
	Loc     prog.Loc
	IsWrite bool
	Val     prog.Val
	// Acq marks ldar/ldaxr events; Rel marks stlr/stlxr events.
	Acq bool
	Rel bool
	// ldFences / stFences count the dmb ld (resp. dmb st), including dmb
	// ish, instructions executed by this thread before this event; a
	// fence lies between two same-thread events iff the counts differ.
	ldFences int
	stFences int
	// ctrl is the set of same-thread read-event sequence numbers this
	// event is control-dependent on.
	ctrl map[int]bool
	// rmwWithPrev marks write events paired with the preceding read.
	rmwWithPrev bool
}

// IsInit reports whether this is an initial write.
func (e Event) IsInit() bool { return e.Thread < 0 }

func (e Event) String() string {
	k := "R"
	if e.IsWrite {
		k = "W"
	}
	if e.IsInit() {
		return fmt.Sprintf("IW%s=%d", e.Loc, e.Val)
	}
	ann := ""
	if e.Acq {
		ann = "acq"
	}
	if e.Rel {
		ann = "rel"
	}
	return fmt.Sprintf("%s%s%s=%d@%d.%d", k, ann, e.Loc, e.Val, e.Thread, e.Seq)
}

// Execution is a hardware candidate execution.
type Execution struct {
	Prog   *Program
	Events []Event
	PO     rel.Rel
	RF     rel.Rel
	CO     rel.Rel
	RMW    rel.Rel
	Regs   []map[prog.Reg]prog.Val
}

func (x *Execution) n() int { return len(x.Events) }

// FR returns fr = rf⁻¹ ; co.
func (x *Execution) FR() rel.Rel { return x.RF.Inverse().Compose(x.CO) }

// External returns r \ po.
func (x *Execution) External(r rel.Rel) rel.Rel { return r.Minus(x.PO) }

// POLoc returns po restricted to same-location pairs.
func (x *Execution) POLoc() rel.Rel {
	return x.PO.Filter(func(i, j int) bool { return x.Events[i].Loc == x.Events[j].Loc })
}

// Ctrl returns the control-dependency relation: read E1 to event E2 when
// E2 is program-order after a branch whose condition depends on E1.
func (x *Execution) Ctrl() rel.Rel {
	r := rel.New(x.n())
	for j, e := range x.Events {
		for seq := range e.ctrl {
			for i, f := range x.Events {
				if f.Thread == e.Thread && f.Seq == seq {
					r.Set(i, j)
				}
			}
		}
	}
	return r
}

// DmbLdRel returns the pairs of same-thread events separated by a dmb ld
// (or dmb ish).
func (x *Execution) DmbLdRel() rel.Rel {
	return x.PO.Filter(func(i, j int) bool { return x.Events[i].ldFences < x.Events[j].ldFences })
}

// DmbStRel returns the pairs of same-thread events separated by a dmb st
// (or dmb ish).
func (x *Execution) DmbStRel() rel.Rel {
	return x.PO.Filter(func(i, j int) bool { return x.Events[i].stFences < x.Events[j].stFences })
}

// Sets of events used by the architecture models.
func (x *Execution) IsWriteEv(i int) bool { return x.Events[i].IsWrite }
func (x *Execution) IsReadEv(i int) bool  { return !x.Events[i].IsWrite }
func (x *Execution) IsAcqEv(i int) bool   { return x.Events[i].Acq }
func (x *Execution) IsRelEv(i int) bool   { return x.Events[i].Rel }
func (x *Execution) Any(int) bool         { return true }

// IsWA reports whether event i is an "atomic write" in the x86 sense: a
// write with an rmw-predecessor.
func (x *Execution) IsWA(i int) bool {
	for k := 0; k < x.n(); k++ {
		if x.RMW.Has(k, i) {
			return true
		}
	}
	return false
}

// SCPerLocation checks acyclic(poloc ∪ rf ∪ fr ∪ co), the per-location
// coherence condition shared by both hardware models.
func (x *Execution) SCPerLocation() bool {
	return x.POLoc().Union(x.RF, x.FR(), x.CO).Acyclic()
}

// RMWAtomic checks rmw ∩ (fre; coe) = ∅: no external write intervenes
// between the read and write halves of an RMW.
func (x *Execution) RMWAtomic() bool {
	fre := x.External(x.FR())
	coe := x.External(x.CO)
	return x.RMW.Intersect(fre.Compose(coe)).Empty()
}

// FinalMem returns the co-maximal write value per location.
func (x *Execution) FinalMem() map[prog.Loc]prog.Val {
	out := map[prog.Loc]prog.Val{}
	for l := range x.Prog.Locs {
		best := -1
		for i, e := range x.Events {
			if e.Loc != l || !e.IsWrite {
				continue
			}
			if best == -1 || x.CO.Has(best, i) {
				best = i
			}
		}
		if best >= 0 {
			out[l] = x.Events[best].Val
		}
	}
	return out
}

// Describe renders the execution for diagnostics.
func (x *Execution) Describe() string {
	var b []byte
	for i, e := range x.Events {
		b = append(b, fmt.Sprintf("%2d: %s\n", i, e)...)
	}
	b = append(b, fmt.Sprintf("po=%v\nrf=%v\nco=%v\nrmw=%v\n", x.PO, x.RF, x.CO, x.RMW)...)
	return string(b)
}
