package hw

import (
	"testing"

	"localdrf/internal/prog"
)

// handProgram builds a two-thread hardware program directly (bypassing
// compile) so the enumeration internals can be unit-tested.
func handMP() *Program {
	return &Program{
		Name: "hand-MP",
		Locs: map[prog.Loc]prog.LocKind{"x": prog.NonAtomic, "f": prog.NonAtomic},
		Threads: []Thread{
			{Name: "P0", Code: []Instr{
				{Op: OpSt, Ord: Plain, Loc: "x", A: prog.I(1)},
				{Op: OpFence, Fence: DmbFull},
				{Op: OpSt, Ord: Plain, Loc: "f", A: prog.I(1)},
			}},
			{Name: "P1", Code: []Instr{
				{Op: OpLd, Ord: Plain, Loc: "f", Dst: "r0"},
				{Op: OpFence, Fence: DmbFull},
				{Op: OpLd, Ord: Plain, Loc: "x", Dst: "r1"},
			}},
		},
		ObsRegs: []map[prog.Reg]bool{{}, {"r0": true, "r1": true}},
	}
}

func collect(t *testing.T, p *Program, consistent func(*Execution) bool) []*Execution {
	t.Helper()
	var out []*Execution
	err := Enumerate(p, consistent, func(x *Execution) bool {
		// Copy nothing: executions are fresh per visit in this
		// implementation; keep the pointer.
		out = append(out, x)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEnumerateProducesCandidates(t *testing.T) {
	execs := collect(t, handMP(), func(*Execution) bool { return true })
	if len(execs) == 0 {
		t.Fatal("no candidate executions")
	}
	// Every execution has 2 initial writes + 2 writes + 2 reads.
	for _, x := range execs {
		if len(x.Events) != 6 {
			t.Fatalf("event count = %d, want 6", len(x.Events))
		}
	}
}

func TestPOConstruction(t *testing.T) {
	execs := collect(t, handMP(), func(*Execution) bool { return true })
	x := execs[0]
	// Find P0's two stores; they must be po-ordered.
	var wx, wf = -1, -1
	for i, e := range x.Events {
		if e.Thread == 0 && e.Loc == "x" {
			wx = i
		}
		if e.Thread == 0 && e.Loc == "f" {
			wf = i
		}
	}
	if !x.PO.Has(wx, wf) || x.PO.Has(wf, wx) {
		t.Error("program order not constructed correctly")
	}
	// Initial writes participate in no po edges.
	for i, e := range x.Events {
		if !e.IsInit() {
			continue
		}
		for j := range x.Events {
			if x.PO.Has(i, j) || x.PO.Has(j, i) {
				t.Error("initial write in po")
			}
		}
	}
}

func TestDmbRelations(t *testing.T) {
	execs := collect(t, handMP(), func(*Execution) bool { return true })
	x := execs[0]
	dmbLd := x.DmbLdRel()
	dmbSt := x.DmbStRel()
	var wx, wf = -1, -1
	for i, e := range x.Events {
		if e.Thread == 0 && e.Loc == "x" {
			wx = i
		}
		if e.Thread == 0 && e.Loc == "f" {
			wf = i
		}
	}
	// The dmb ish between the stores shows up in both relations.
	if !dmbLd.Has(wx, wf) || !dmbSt.Has(wx, wf) {
		t.Error("full fence missing from dmbld/dmbst relations")
	}
}

func TestCtrlTracking(t *testing.T) {
	p := &Program{
		Name: "ctrl",
		Locs: map[prog.Loc]prog.LocKind{"x": prog.NonAtomic, "y": prog.NonAtomic},
		Threads: []Thread{
			{Name: "P0", Code: []Instr{
				{Op: OpLd, Ord: Plain, Loc: "x", Dst: "r"},
				{Op: OpBranchDep, Cond: "r"},
				{Op: OpSt, Ord: Plain, Loc: "y", A: prog.I(1)},
			}},
		},
		ObsRegs: []map[prog.Reg]bool{{"r": true}},
	}
	execs := collect(t, p, func(*Execution) bool { return true })
	for _, x := range execs {
		ctrl := x.Ctrl()
		var rd, wr = -1, -1
		for i, e := range x.Events {
			if e.Thread == 0 && !e.IsWrite {
				rd = i
			}
			if e.Thread == 0 && e.IsWrite {
				wr = i
			}
		}
		if !ctrl.Has(rd, wr) {
			t.Fatal("BranchDep did not induce a ctrl edge from the load to the store")
		}
	}
}

func TestCtrlThroughALU(t *testing.T) {
	// The dependency survives register computation: r2 := r + 1, branch
	// on r2.
	p := &Program{
		Name: "ctrl-alu",
		Locs: map[prog.Loc]prog.LocKind{"x": prog.NonAtomic, "y": prog.NonAtomic},
		Threads: []Thread{
			{Name: "P0", Code: []Instr{
				{Op: OpLd, Ord: Plain, Loc: "x", Dst: "r"},
				{Op: OpAdd, Dst: "r2", A: prog.R("r"), B: prog.I(1)},
				{Op: OpBranchDep, Cond: "r2"},
				{Op: OpSt, Ord: Plain, Loc: "y", A: prog.I(1)},
			}},
		},
		ObsRegs: []map[prog.Reg]bool{{"r": true}},
	}
	execs := collect(t, p, func(*Execution) bool { return true })
	for _, x := range execs {
		var rd, wr = -1, -1
		for i, e := range x.Events {
			if e.Thread == 0 && !e.IsWrite {
				rd = i
			}
			if e.Thread == 0 && e.IsWrite {
				wr = i
			}
		}
		if !x.Ctrl().Has(rd, wr) {
			t.Fatal("taint lost through ALU op")
		}
	}
}

func TestMovBreaksNothingOverwritesTaint(t *testing.T) {
	// mov r, #0 after the load overwrites the register: branching on r
	// afterwards is NOT a dependency on the load.
	p := &Program{
		Name: "taint-kill",
		Locs: map[prog.Loc]prog.LocKind{"x": prog.NonAtomic, "y": prog.NonAtomic},
		Threads: []Thread{
			{Name: "P0", Code: []Instr{
				{Op: OpLd, Ord: Plain, Loc: "x", Dst: "r"},
				{Op: OpMov, Dst: "r", A: prog.I(0)},
				{Op: OpBranchDep, Cond: "r"},
				{Op: OpSt, Ord: Plain, Loc: "y", A: prog.I(1)},
			}},
		},
		ObsRegs: []map[prog.Reg]bool{{}},
	}
	execs := collect(t, p, func(*Execution) bool { return true })
	for _, x := range execs {
		var rd, wr = -1, -1
		for i, e := range x.Events {
			if e.Thread == 0 && !e.IsWrite {
				rd = i
			}
			if e.Thread == 0 && e.IsWrite {
				wr = i
			}
		}
		if x.Ctrl().Has(rd, wr) {
			t.Fatal("ctrl edge survived a constant mov that killed the taint")
		}
	}
}

func TestRMWPairing(t *testing.T) {
	p := &Program{
		Name: "rmw",
		Locs: map[prog.Loc]prog.LocKind{"a": prog.Atomic},
		Threads: []Thread{
			{Name: "P0", Code: []Instr{
				{Op: OpLd, Ord: AcquireX, Loc: "a", Dst: "scratch"},
				{Op: OpSt, Ord: ReleaseX, Loc: "a", A: prog.I(1), RMWPair: true},
			}},
		},
		ObsRegs: []map[prog.Reg]bool{{}},
	}
	execs := collect(t, p, func(*Execution) bool { return true })
	for _, x := range execs {
		pairs := x.RMW.Pairs()
		if len(pairs) != 1 {
			t.Fatalf("rmw pairs = %v, want exactly one", pairs)
		}
		rd, wr := pairs[0][0], pairs[0][1]
		if x.Events[rd].IsWrite || !x.Events[wr].IsWrite {
			t.Fatal("rmw pair has wrong event kinds")
		}
		if !x.Events[rd].Acq || !x.Events[wr].Rel {
			t.Fatal("exclusive pair not acquire/release annotated")
		}
		if !x.IsWA(wr) {
			t.Fatal("IsWA should identify the paired write")
		}
	}
}

func TestRMWAtomicityAxiom(t *testing.T) {
	// Two RMW increments of the same cell plus a plain write: the axiom
	// rmw ∩ (fre; coe) = ∅ must reject executions where the plain write
	// slips between a pair's read and write.
	p := &Program{
		Name: "rmw-atomicity",
		Locs: map[prog.Loc]prog.LocKind{"a": prog.Atomic},
		Threads: []Thread{
			{Name: "P0", Code: []Instr{
				{Op: OpLd, Ord: AcquireX, Loc: "a", Dst: "s0"},
				{Op: OpSt, Ord: ReleaseX, Loc: "a", A: prog.I(1), RMWPair: true},
			}},
			{Name: "P1", Code: []Instr{
				{Op: OpSt, Ord: Plain, Loc: "a", A: prog.I(2)},
			}},
		},
		ObsRegs: []map[prog.Reg]bool{{"s0": true}, {}},
	}
	sawIntervening := false
	err := Enumerate(p, func(*Execution) bool { return true }, func(x *Execution) bool {
		// The intervening shape: pair reads from the initial write but
		// the plain write is co-between initial and the pair's write.
		if !x.RMWAtomic() {
			sawIntervening = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawIntervening {
		t.Fatal("enumeration never produced the intervening-write candidate")
	}
}

func TestPOLocAndExternal(t *testing.T) {
	execs := collect(t, handMP(), func(*Execution) bool { return true })
	x := execs[0]
	// poloc relates same-location same-thread accesses only; in hand-MP
	// each thread touches two distinct locations, so poloc is empty.
	if !x.POLoc().Empty() {
		t.Errorf("poloc = %v, want empty", x.POLoc())
	}
	// rf edges to another thread are external.
	rfe := x.External(x.RF)
	for _, pr := range rfe.Pairs() {
		if x.Events[pr[0]].Thread == x.Events[pr[1]].Thread && !x.Events[pr[0]].IsInit() {
			t.Error("external rf within a thread")
		}
	}
}

func TestValueDomainPerLocation(t *testing.T) {
	p := handMP()
	dom, err := valueDomain(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []prog.Loc{"x", "f"} {
		vals := dom.vals(l)
		if len(vals) != 2 || vals[0] != 0 || vals[1] != 1 {
			t.Errorf("dom[%s] = %v, want [0 1]", l, vals)
		}
	}
}

func TestDivergentLoopDetected(t *testing.T) {
	p := &Program{
		Name: "loop",
		Locs: map[prog.Loc]prog.LocKind{"x": prog.NonAtomic},
		Threads: []Thread{
			{Name: "P0", Code: []Instr{{Op: OpJmp, Target: 0}}},
		},
		ObsRegs: []map[prog.Reg]bool{{}},
	}
	err := Enumerate(p, func(*Execution) bool { return true }, func(*Execution) bool { return true })
	if err == nil {
		t.Fatal("divergent loop not detected")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpLd, Ord: Acquire, Loc: "x", Dst: "r"}, "ldar r, [x]"},
		{Instr{Op: OpSt, Ord: ReleaseX, Loc: "x", A: prog.I(1)}, "stlxr 1, [x]"},
		{Instr{Op: OpFence, Fence: DmbLd}, "dmb ld"},
		{Instr{Op: OpFence, Fence: DmbSt}, "dmb st"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
