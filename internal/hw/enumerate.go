package hw

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"localdrf/internal/engine"
	"localdrf/internal/prog"
	"localdrf/internal/rel"
)

// levent is a thread-local event before global numbering.
type levent struct {
	loc         prog.Loc
	isWrite     bool
	val         prog.Val
	acq, rel    bool
	ldF, stF    int
	ctrl        map[int]bool
	rmwWithPrev bool
}

// localExec is one execution of a hardware thread.
type localExec struct {
	events []levent
	regs   map[prog.Reg]prog.Val
}

const maxEventsPerThread = 96

// maxLocalSteps bounds a single local execution; hardware code is
// loop-free apart from (modelled-away) exclusive retries.
const maxLocalSteps = 4096

type domain map[prog.Loc]map[prog.Val]bool

func (d domain) vals(l prog.Loc) []prog.Val {
	out := make([]prog.Val, 0, len(d[l]))
	for v := range d[l] {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// threadExecs enumerates the local executions of one hardware thread,
// tracking register taint (which read events a register's value depends
// on), control dependencies and fence counts.
func threadExecs(code []Instr, dom domain) ([]localExec, error) {
	var out []localExec
	type state struct {
		pc       int
		regs     map[prog.Reg]prog.Val
		taint    map[prog.Reg]map[int]bool
		ctrl     map[int]bool
		ldF, stF int
		reads    int // read events so far (their local sequence numbers)
		lastLd   int // event index of most recent load, for RMW pairing
		steps    int
	}
	cloneSet := func(s map[int]bool) map[int]bool {
		c := make(map[int]bool, len(s))
		for k := range s {
			c[k] = true
		}
		return c
	}
	var walk func(st state, events []levent) error
	eval := func(st state, o prog.Operand) prog.Val {
		if o.IsReg {
			return st.regs[o.Reg]
		}
		return o.Imm
	}
	taintOf := func(st state, o prog.Operand) map[int]bool {
		if o.IsReg {
			return st.taint[o.Reg]
		}
		return nil
	}
	walk = func(st state, events []levent) error {
		st.steps++
		if st.steps > maxLocalSteps || len(events) > maxEventsPerThread {
			return fmt.Errorf("hw: local execution too long (divergent loop?)")
		}
		if st.pc < 0 || st.pc >= len(code) {
			cp := make([]levent, len(events))
			copy(cp, events)
			out = append(out, localExec{events: cp, regs: st.regs})
			return nil
		}
		in := code[st.pc]
		next := st
		next.pc++
		switch in.Op {
		case OpLd:
			seq := len(events)
			for _, v := range dom.vals(in.Loc) {
				ns := next
				ns.regs = cloneMap(st.regs)
				ns.taint = cloneTaint(st.taint)
				ns.regs[in.Dst] = v
				ns.taint[in.Dst] = map[int]bool{seq: true}
				ns.reads = st.reads + 1
				ns.lastLd = seq
				ev := levent{
					loc: in.Loc, isWrite: false, val: v,
					acq: in.Ord == Acquire || in.Ord == AcquireX,
					ldF: st.ldF, stF: st.stF, ctrl: cloneSet(st.ctrl),
				}
				if err := walk(ns, append(events, ev)); err != nil {
					return err
				}
			}
			return nil
		case OpSt:
			ev := levent{
				loc: in.Loc, isWrite: true, val: eval(st, in.A),
				rel: in.Ord == Release || in.Ord == ReleaseX,
				ldF: st.ldF, stF: st.stF, ctrl: cloneSet(st.ctrl),
				rmwWithPrev: in.RMWPair,
			}
			return walk(next, append(events, ev))
		case OpFence:
			switch in.Fence {
			case DmbLd:
				next.ldF++
			case DmbSt:
				next.stF++
			case DmbFull:
				next.ldF++
				next.stF++
			}
			return walk(next, events)
		case OpBranchDep:
			next.ctrl = cloneSet(st.ctrl)
			for k := range st.taint[in.Cond] {
				next.ctrl[k] = true
			}
			return walk(next, events)
		case OpMov:
			next.regs = cloneMap(st.regs)
			next.taint = cloneTaint(st.taint)
			next.regs[in.Dst] = eval(st, in.A)
			next.taint[in.Dst] = cloneSet(taintOf(st, in.A))
			return walk(next, events)
		case OpAdd, OpMul, OpCmpEq:
			next.regs = cloneMap(st.regs)
			next.taint = cloneTaint(st.taint)
			a, bv := eval(st, in.A), eval(st, in.B)
			var v prog.Val
			switch in.Op {
			case OpAdd:
				v = a + bv
			case OpMul:
				v = a * bv
			default:
				if a == bv {
					v = 1
				}
			}
			next.regs[in.Dst] = v
			t := cloneSet(taintOf(st, in.A))
			for k := range taintOf(st, in.B) {
				t[k] = true
			}
			next.taint[in.Dst] = t
			return walk(next, events)
		case OpJmp:
			next.pc = in.Target
			return walk(next, events)
		case OpJmpZ, OpJmpNZ:
			// A real conditional branch: control flow follows the
			// register value, and everything after the branch becomes
			// control-dependent on the reads feeding the condition.
			next.ctrl = cloneSet(st.ctrl)
			for k := range st.taint[in.Cond] {
				next.ctrl[k] = true
			}
			taken := st.regs[in.Cond] == 0
			if in.Op == OpJmpNZ {
				taken = !taken
			}
			if taken {
				next.pc = in.Target
			}
			return walk(next, events)
		case OpNop:
			return walk(next, events)
		}
		return fmt.Errorf("hw: unknown op %v", in.Op)
	}
	init := state{
		regs:   map[prog.Reg]prog.Val{},
		taint:  map[prog.Reg]map[int]bool{},
		ctrl:   map[int]bool{},
		lastLd: -1,
	}
	if err := walk(init, nil); err != nil {
		return nil, err
	}
	return out, nil
}

func cloneMap(m map[prog.Reg]prog.Val) map[prog.Reg]prog.Val {
	c := make(map[prog.Reg]prog.Val, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func cloneTaint(m map[prog.Reg]map[int]bool) map[prog.Reg]map[int]bool {
	c := make(map[prog.Reg]map[int]bool, len(m))
	for k, v := range m {
		s := make(map[int]bool, len(v))
		for i := range v {
			s[i] = true
		}
		c[k] = s
	}
	return c
}

// valueDomain is the per-location read-value fixpoint, as in package
// axiomatic.
func valueDomain(p *Program) (domain, error) {
	dom := domain{}
	for l := range p.Locs {
		dom[l] = map[prog.Val]bool{prog.V0: true}
	}
	for round := 0; round < 16; round++ {
		grew := false
		for _, t := range p.Threads {
			execs, err := threadExecs(t.Code, dom)
			if err != nil {
				return nil, err
			}
			for _, le := range execs {
				for _, ev := range le.events {
					if ev.isWrite && !dom[ev.loc][ev.val] {
						dom[ev.loc][ev.val] = true
						grew = true
					}
				}
			}
		}
		if !grew {
			return dom, nil
		}
	}
	return nil, fmt.Errorf("hw: value domain did not converge")
}

// Enumerate yields every candidate execution of the hardware program that
// the architecture model (consistent) accepts, in a deterministic order
// on the calling goroutine.
func Enumerate(p *Program, consistent func(*Execution) bool, visit func(*Execution) bool) error {
	return EnumerateParallel(p, consistent, 1, func(_ int, x *Execution) bool { return visit(x) })
}

// EnumerateParallel is Enumerate with the candidate space partitioned by
// the per-thread local-execution choice (the outer axis of the
// enumeration) and the partitions explored by parallel workers on the
// engine's task runner (parallelism 0 means GOMAXPROCS). visit may be
// called concurrently from different workers; the worker index lets
// callers keep lock-free per-worker accumulators. Returning false from
// any visit cancels the whole enumeration.
func EnumerateParallel(p *Program, consistent func(*Execution) bool, parallelism int, visit func(worker int, x *Execution) bool) error {
	dom, err := valueDomain(p)
	if err != nil {
		return err
	}
	perThread := make([][]localExec, len(p.Threads))
	combos := 1
	for i, t := range p.Threads {
		execs, err := threadExecs(t.Code, dom)
		if err != nil {
			return fmt.Errorf("hw: thread %s: %w", t.Name, err)
		}
		if len(execs) == 0 {
			return nil
		}
		perThread[i] = execs
		if combos > math.MaxInt/len(execs) {
			return fmt.Errorf("hw: candidate space overflows the partition index (local-execution combinations exceed the int range)")
		}
		combos *= len(execs)
	}
	var stopped atomic.Bool
	return engine.ForEach(parallelism, combos, func(worker, idx int) error {
		if stopped.Load() {
			return nil
		}
		choice := make([]int, len(perThread))
		for t := range perThread {
			choice[t] = idx % len(perThread[t])
			idx /= len(perThread[t])
		}
		_, err := enumerateGraphs(p, perThread, choice, consistent, func(x *Execution) bool {
			// Re-check the cancellation flag per execution so partitions
			// already in flight on other workers stop visiting too.
			if stopped.Load() {
				return false
			}
			if !visit(worker, x) {
				stopped.Store(true)
				return false
			}
			return true
		})
		return err
	})
}

func enumerateGraphs(p *Program, perThread [][]localExec, choice []int,
	consistent func(*Execution) bool, visit func(*Execution) bool) (bool, error) {

	var events []Event
	var locs []prog.Loc
	for l := range p.Locs {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	for _, l := range locs {
		events = append(events, Event{Thread: -1, Loc: l, IsWrite: true, Val: prog.V0})
	}
	var regs []map[prog.Reg]prog.Val
	for t := range perThread {
		le := perThread[t][choice[t]]
		for n, ev := range le.events {
			events = append(events, Event{
				Thread: t, Seq: n, Loc: ev.loc, IsWrite: ev.isWrite, Val: ev.val,
				Acq: ev.acq, Rel: ev.rel,
				ldFences: ev.ldF, stFences: ev.stF,
				ctrl: ev.ctrl, rmwWithPrev: ev.rmwWithPrev,
			})
		}
		regs = append(regs, le.regs)
	}
	n := len(events)
	po := rel.New(n)
	rmw := rel.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if events[i].Thread >= 0 && events[i].Thread == events[j].Thread && events[i].Seq < events[j].Seq {
				po.Set(i, j)
				if events[j].rmwWithPrev && events[j].Seq == events[i].Seq+1 {
					rmw.Set(i, j)
				}
			}
		}
	}

	var reads []int
	rfCands := map[int][]int{}
	for i, e := range events {
		if e.IsWrite {
			continue
		}
		reads = append(reads, i)
		for j, w := range events {
			if w.IsWrite && w.Loc == e.Loc && w.Val == e.Val {
				rfCands[i] = append(rfCands[i], j)
			}
		}
		if len(rfCands[i]) == 0 {
			return false, nil
		}
	}
	writesByLoc := map[prog.Loc][]int{}
	initByLoc := map[prog.Loc]int{}
	for i, e := range events {
		if !e.IsWrite {
			continue
		}
		if e.IsInit() {
			initByLoc[e.Loc] = i
		} else {
			writesByLoc[e.Loc] = append(writesByLoc[e.Loc], i)
		}
	}

	rfChoice := make([]int, len(reads))
	for {
		rf := rel.New(n)
		for k, r := range reads {
			rf.Set(rfCands[r][rfChoice[k]], r)
		}
		stop, err := enumerateCO(p, events, locs, writesByLoc, initByLoc, po, rf, rmw, regs, consistent, visit)
		if err != nil || stop {
			return stop, err
		}
		i := 0
		for ; i < len(rfChoice); i++ {
			rfChoice[i]++
			if rfChoice[i] < len(rfCands[reads[i]]) {
				break
			}
			rfChoice[i] = 0
		}
		if i == len(rfChoice) {
			return false, nil
		}
	}
}

func enumerateCO(p *Program, events []Event, locs []prog.Loc,
	writesByLoc map[prog.Loc][]int, initByLoc map[prog.Loc]int,
	po, rf, rmw rel.Rel, regs []map[prog.Reg]prog.Val,
	consistent func(*Execution) bool, visit func(*Execution) bool) (bool, error) {

	n := len(events)
	perLocOrders := make([][][]int, 0, len(locs))
	for _, l := range locs {
		perLocOrders = append(perLocOrders, permutations(writesByLoc[l]))
	}
	choice := make([]int, len(locs))
	for {
		co := rel.New(n)
		for li, l := range locs {
			order := perLocOrders[li][choice[li]]
			chain := append([]int{initByLoc[l]}, order...)
			for a := 0; a < len(chain); a++ {
				for b := a + 1; b < len(chain); b++ {
					co.Set(chain[a], chain[b])
				}
			}
		}
		x := &Execution{Prog: p, Events: events, PO: po, RF: rf, CO: co, RMW: rmw, Regs: regs}
		if consistent(x) {
			if !visit(x) {
				return true, nil
			}
		}
		i := 0
		for ; i < len(choice); i++ {
			choice[i]++
			if choice[i] < len(perLocOrders[i]) {
				break
			}
			choice[i] = 0
		}
		if i == len(choice) {
			return false, nil
		}
	}
}

func permutations(xs []int) [][]int {
	if len(xs) == 0 {
		return [][]int{{}}
	}
	var out [][]int
	var recur func(cur []int, rest []int)
	recur = func(cur, rest []int) {
		if len(rest) == 0 {
			cp := make([]int, len(cur))
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		for i := range rest {
			next := make([]int, 0, len(rest)-1)
			next = append(next, rest[:i]...)
			next = append(next, rest[i+1:]...)
			recur(append(cur, rest[i]), next)
		}
	}
	recur(nil, xs)
	return out
}
