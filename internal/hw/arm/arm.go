// Package arm implements the abridged axiomatic ARMv8 (AArch64) model of
// fig. 4 of the paper (after Pulte et al.'s multicopy-atomic model), used
// to validate the table-2 compilation schemes (thm. 20).
//
//	obs = rfe ∪ fre ∪ coe
//	dob = addr ∪ (ctrl ∩ (M × W))
//	aob = rmw
//	bob = (po ∩ (Acq × M)) ∪ (po ∩ (M × Rel)) ∪ (dmbld ∩ (R × M))
//	    ∪ (dmbst ∩ (W × W)) ∪ (po ∩ (Rel × Acq))
//	ob  = obs ∪ dob ∪ aob ∪ bob
//
// Conditions: acyclic(poloc ∪ rf ∪ fr ∪ co), acyclic(ob),
// rmw ∩ (fre; coe) = ∅.
//
// The [...] elisions of fig. 4 (data dependencies, pick dependencies,
// further aob/bob cases) are *omitted orderings*: the model here is
// weaker than real ARMv8, which is the safe direction for validating
// compilation — any scheme sound against this model is sound against the
// stronger hardware. It is also exactly what makes the "naive" scheme's
// load-buffering counterexamples visible (§9.1): with no dependency or
// barrier between a load and a later store, nothing orders them.
package arm

import (
	"localdrf/internal/hw"
	"localdrf/internal/rel"
)

// OB computes the ordered-before relation of fig. 4. addr is empty in our
// programs (no computed addresses), so dob reduces to the ctrl component.
func OB(x *hw.Execution) rel.Rel {
	obs := x.External(x.RF).Union(x.External(x.FR()), x.External(x.CO))
	dob := x.Ctrl().Restrict(x.Any, x.IsWriteEv)
	aob := x.RMW
	bob := x.PO.Restrict(x.IsAcqEv, x.Any).
		Union(
			x.PO.Restrict(x.Any, x.IsRelEv),
			x.DmbLdRel().Restrict(x.IsReadEv, x.Any),
			x.DmbStRel().Restrict(x.IsWriteEv, x.IsWriteEv),
			x.PO.Restrict(x.IsRelEv, x.IsAcqEv),
		)
	return obs.Union(dob, aob, bob)
}

// Consistent reports whether the execution satisfies the abridged ARMv8
// axioms.
func Consistent(x *hw.Execution) bool {
	if !x.SCPerLocation() {
		return false
	}
	if !OB(x).Acyclic() {
		return false
	}
	return x.RMWAtomic()
}
