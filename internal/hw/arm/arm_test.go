package arm

import (
	"testing"

	"localdrf/internal/hw"
	"localdrf/internal/prog"
)

// lb builds load buffering with optional protections on each thread:
// "none", "branch" (BAL's cbz) or "fence" (FBS's dmb ld before the store).
func lb(protect0, protect1 string) *hw.Program {
	mk := func(from, to prog.Loc, reg prog.Reg, protect string) []hw.Instr {
		code := []hw.Instr{{Op: hw.OpLd, Ord: hw.Plain, Loc: from, Dst: reg}}
		switch protect {
		case "branch":
			code = append(code, hw.Instr{Op: hw.OpBranchDep, Cond: reg})
		case "fence":
			code = append(code, hw.Instr{Op: hw.OpFence, Fence: hw.DmbLd})
		}
		code = append(code, hw.Instr{Op: hw.OpSt, Ord: hw.Plain, Loc: to, A: prog.I(1)})
		return code
	}
	return &hw.Program{
		Name: "LB",
		Locs: map[prog.Loc]prog.LocKind{"x": prog.NonAtomic, "y": prog.NonAtomic},
		Threads: []hw.Thread{
			{Name: "P0", Code: mk("x", "y", "r0", protect0)},
			{Name: "P1", Code: mk("y", "x", "r1", protect1)},
		},
		ObsRegs: []map[prog.Reg]bool{{"r0": true}, {"r1": true}},
	}
}

func lbAllowed(t *testing.T, p *hw.Program) bool {
	t.Helper()
	allowed := false
	err := hw.Enumerate(p, Consistent, func(x *hw.Execution) bool {
		if x.Regs[0]["r0"] == 1 && x.Regs[1]["r1"] == 1 {
			allowed = true
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return allowed
}

// The classic §7.3 example: bare ARMv8 allows both processors to read
// each other's (program-order-later) writes.
func TestBareARMAllowsLoadBuffering(t *testing.T) {
	if !lbAllowed(t, lb("none", "none")) {
		t.Error("abridged ARMv8 should allow bare load buffering")
	}
}

// Protecting only one thread is NOT enough: the unprotected side may
// still hoist its store above its load and feed the protected side.
// (Real ARMv8 behaves the same way — both legs of the cycle must be
// ordered — which is why the compilation schemes decorate *every*
// nonatomic access.)
func TestSingleProtectionInsufficient(t *testing.T) {
	for _, protect := range []string{"branch", "fence"} {
		if !lbAllowed(t, lb(protect, "none")) {
			t.Errorf("protection %q on one thread only should still allow LB", protect)
		}
	}
}

// Table 2a vs 2b: both protections forbid the outcome.
func TestBothProtectionsForbidLB(t *testing.T) {
	if lbAllowed(t, lb("branch", "branch")) {
		t.Error("BAL must forbid LB")
	}
	if lbAllowed(t, lb("fence", "fence")) {
		t.Error("FBS must forbid LB")
	}
}

// bob: acquire loads order everything after them; release stores order
// everything before them. Check MP built from ldar/stlr.
func TestAcquireReleaseMP(t *testing.T) {
	p := &hw.Program{
		Name: "MP-acqrel",
		Locs: map[prog.Loc]prog.LocKind{"x": prog.NonAtomic, "f": prog.NonAtomic},
		Threads: []hw.Thread{
			{Name: "P0", Code: []hw.Instr{
				{Op: hw.OpSt, Ord: hw.Plain, Loc: "x", A: prog.I(1)},
				{Op: hw.OpSt, Ord: hw.Release, Loc: "f", A: prog.I(1)},
			}},
			{Name: "P1", Code: []hw.Instr{
				{Op: hw.OpLd, Ord: hw.Acquire, Loc: "f", Dst: "r0"},
				{Op: hw.OpLd, Ord: hw.Plain, Loc: "x", Dst: "r1"},
			}},
		},
		ObsRegs: []map[prog.Reg]bool{{}, {"r0": true, "r1": true}},
	}
	err := hw.Enumerate(p, Consistent, func(x *hw.Execution) bool {
		if x.Regs[1]["r0"] == 1 && x.Regs[1]["r1"] == 0 {
			t.Error("acquire/release MP violated")
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Without the release annotation the data store may pass the flag store.
func TestPlainStoresLeakMP(t *testing.T) {
	p := &hw.Program{
		Name: "MP-plain",
		Locs: map[prog.Loc]prog.LocKind{"x": prog.NonAtomic, "f": prog.NonAtomic},
		Threads: []hw.Thread{
			{Name: "P0", Code: []hw.Instr{
				{Op: hw.OpSt, Ord: hw.Plain, Loc: "x", A: prog.I(1)},
				{Op: hw.OpSt, Ord: hw.Plain, Loc: "f", A: prog.I(1)},
			}},
			{Name: "P1", Code: []hw.Instr{
				{Op: hw.OpLd, Ord: hw.Plain, Loc: "f", Dst: "r0"},
				{Op: hw.OpLd, Ord: hw.Plain, Loc: "x", Dst: "r1"},
			}},
		},
		ObsRegs: []map[prog.Reg]bool{{}, {"r0": true, "r1": true}},
	}
	leaked := false
	err := hw.Enumerate(p, Consistent, func(x *hw.Execution) bool {
		if x.Regs[1]["r0"] == 1 && x.Regs[1]["r1"] == 0 {
			leaked = true
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !leaked {
		t.Error("bare ARM should exhibit the MP violation (no ordering at all)")
	}
}

// dmb st orders writes with writes (W×W only): it fixes MP's writer but
// a reader without ordering can still see stale data via read
// reordering... which the abridged model permits via unordered reads.
func TestDmbStOrdersWriterOnly(t *testing.T) {
	p := &hw.Program{
		Name: "MP-dmbst",
		Locs: map[prog.Loc]prog.LocKind{"x": prog.NonAtomic, "f": prog.NonAtomic},
		Threads: []hw.Thread{
			{Name: "P0", Code: []hw.Instr{
				{Op: hw.OpSt, Ord: hw.Plain, Loc: "x", A: prog.I(1)},
				{Op: hw.OpFence, Fence: hw.DmbSt},
				{Op: hw.OpSt, Ord: hw.Plain, Loc: "f", A: prog.I(1)},
			}},
			{Name: "P1", Code: []hw.Instr{
				{Op: hw.OpLd, Ord: hw.Plain, Loc: "f", Dst: "r0"},
				{Op: hw.OpLd, Ord: hw.Plain, Loc: "x", Dst: "r1"},
			}},
		},
		ObsRegs: []map[prog.Reg]bool{{}, {"r0": true, "r1": true}},
	}
	leaked := false
	err := hw.Enumerate(p, Consistent, func(x *hw.Execution) bool {
		if x.Regs[1]["r0"] == 1 && x.Regs[1]["r1"] == 0 {
			leaked = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !leaked {
		t.Error("dmb st alone cannot repair MP: the reader's loads are still unordered")
	}
}

// The exclusive pair's atomicity: two competing RMW writers to one cell
// never interleave between each other's read and write.
func TestExclusivePairAtomicity(t *testing.T) {
	p := &hw.Program{
		Name: "2rmw",
		Locs: map[prog.Loc]prog.LocKind{"a": prog.Atomic},
		Threads: []hw.Thread{
			{Name: "P0", Code: []hw.Instr{
				{Op: hw.OpLd, Ord: hw.AcquireX, Loc: "a", Dst: "s0"},
				{Op: hw.OpSt, Ord: hw.ReleaseX, Loc: "a", A: prog.I(1), RMWPair: true},
			}},
			{Name: "P1", Code: []hw.Instr{
				{Op: hw.OpLd, Ord: hw.AcquireX, Loc: "a", Dst: "s1"},
				{Op: hw.OpSt, Ord: hw.ReleaseX, Loc: "a", A: prog.I(2), RMWPair: true},
			}},
		},
		ObsRegs: []map[prog.Reg]bool{{"s0": true}, {"s1": true}},
	}
	err := hw.Enumerate(p, Consistent, func(x *hw.Execution) bool {
		// If both pairs read 0, both were "first": impossible for a
		// consistent execution (one write must co-precede the other,
		// making the later pair's read see it or violate atomicity).
		if x.Regs[0]["s0"] == 0 && x.Regs[1]["s1"] == 0 {
			t.Errorf("both exclusive pairs read the initial value:\n%s", x.Describe())
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// OB is built from the documented components; spot-check that a ctrl
// edge to a read does NOT order (dob is ctrl ∩ (M×W)).
func TestCtrlToReadNotOrdering(t *testing.T) {
	p := &hw.Program{
		Name: "ctrl-read",
		Locs: map[prog.Loc]prog.LocKind{"x": prog.NonAtomic, "y": prog.NonAtomic},
		Threads: []hw.Thread{
			{Name: "P0", Code: []hw.Instr{
				{Op: hw.OpLd, Ord: hw.Plain, Loc: "x", Dst: "r"},
				{Op: hw.OpBranchDep, Cond: "r"},
				{Op: hw.OpLd, Ord: hw.Plain, Loc: "y", Dst: "r2"},
			}},
		},
		ObsRegs: []map[prog.Reg]bool{{"r": true, "r2": true}},
	}
	err := hw.Enumerate(p, func(*hw.Execution) bool { return true }, func(x *hw.Execution) bool {
		ob := OB(x)
		var rd1, rd2 = -1, -1
		for i, e := range x.Events {
			if e.Thread != 0 {
				continue
			}
			if e.Loc == "x" {
				rd1 = i
			}
			if e.Loc == "y" {
				rd2 = i
			}
		}
		if ob.Has(rd1, rd2) {
			t.Error("ctrl to a read must not be in ob (ctrl ∩ (M×W) only)")
		}
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
}
