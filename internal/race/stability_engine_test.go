package race

// Differential tests of the engine-ported trace walks: LStable and
// CheckLocalDRFFrom (parallel, path-carrying states on engine.Run) must
// produce byte-identical outputs to the retained sequential reference
// implementations on every probed state, both on litmus programs and on
// random ones — including non-initial (mid-race) states, where LStable
// actually returns false.

import (
	"testing"

	"localdrf/internal/core"
	"localdrf/internal/litmus"
	"localdrf/internal/prog"
	"localdrf/internal/progsynth"
)

const stabBudget = 8_000_000

// probeStates collects the initial state plus a sample of distinct
// reachable states of p (breadth-first, capped).
func probeStates(t *testing.T, p *prog.Program, cap int) []*core.Machine {
	t.Helper()
	var states []*core.Machine
	seen := map[string]bool{}
	frontier := []*core.Machine{core.NewMachine(p)}
	for len(frontier) > 0 && len(states) < cap {
		m := frontier[0]
		frontier = frontier[1:]
		k := m.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		states = append(states, m)
		steps, err := m.Steps()
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range steps {
			frontier = append(frontier, tr.After)
		}
	}
	return states
}

// errString renders an error for byte-identical comparison (nil ⇒ "").
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func diffOnProgram(t *testing.T, p *prog.Program, L LocSet, statesCap int) {
	t.Helper()
	for si, m := range probeStates(t, p, statesCap) {
		gotStable, gotErr := LStable(p, m, L, stabBudget)
		wantStable, wantErr := LStableSequential(p, m, L, stabBudget)
		if gotStable != wantStable || errString(gotErr) != errString(wantErr) {
			t.Fatalf("%s state %d: LStable engine=(%v,%v) sequential=(%v,%v)",
				p.Name, si, gotStable, gotErr, wantStable, wantErr)
		}
		gotDRF := CheckLocalDRFFrom(m, L, stabBudget)
		wantDRF := CheckLocalDRFFromSequential(m, L, stabBudget)
		if errString(gotDRF) != errString(wantDRF) {
			t.Fatalf("%s state %d: CheckLocalDRFFrom engine=%v sequential=%v",
				p.Name, si, gotDRF, wantDRF)
		}
	}
}

// TestEngineWalksMatchSequentialOnLitmus sweeps representative litmus
// programs (racy and race-free, with mid-execution states).
func TestEngineWalksMatchSequentialOnLitmus(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive differential skipped in -short mode")
	}
	cases := []struct {
		name string
		L    []prog.Loc
		cap  int
	}{
		{"MP+na", []prog.Loc{"x", "f"}, 12},
		{"MP", []prog.Loc{"x"}, 12},
		{"Example1", []prog.Loc{"a", "b"}, 8},
		{"Example3", []prog.Loc{"cx", "g"}, 8},
		{"CoRR", []prog.Loc{"x"}, 12},
	}
	for _, c := range cases {
		tc, ok := litmus.Get(c.name)
		if !ok {
			t.Fatalf("missing litmus test %s", c.name)
		}
		diffOnProgram(t, tc.Prog, NewLocSet(c.L...), c.cap)
	}
}

// TestEngineWalksMatchSequentialOnRandom does the same on random
// programs, with both singleton and full location sets.
func TestEngineWalksMatchSequentialOnRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive differential skipped in -short mode")
	}
	cfg := progsynth.Config{
		MaxThreads:    2,
		MaxOps:        2,
		AtomicLocs:    []prog.Loc{"A"},
		NonAtomicLocs: []prog.Loc{"x", "y"},
		MaxConst:      2,
	}
	for seed := int64(0); seed < 12; seed++ {
		p := progsynth.Random(seed, cfg)
		diffOnProgram(t, p, NewLocSet("x"), 6)
		diffOnProgram(t, p, AllLocs(p), 6)
	}
}

// TestEngineWalksMatchSequentialUnderTightBudgets pins the budget
// contract: even when the step budget is exhausted mid-walk (where
// parallel scheduling order would otherwise leak into the result), the
// engine-backed walks defer to the sequential accounting and stay
// byte-identical — across budgets that land before, inside, and after
// the walk.
func TestEngineWalksMatchSequentialUnderTightBudgets(t *testing.T) {
	tc, ok := litmus.Get("MP+na")
	if !ok {
		t.Fatal("missing MP+na")
	}
	p := tc.Prog
	L := AllLocs(p)
	m := core.NewMachine(p)
	for _, budget := range []int{1, 3, 10, 50, 500, 50_000, stabBudget} {
		gotStable, gotErr := LStable(p, m, L, budget)
		wantStable, wantErr := LStableSequential(p, m, L, budget)
		if gotStable != wantStable || errString(gotErr) != errString(wantErr) {
			t.Fatalf("budget %d: LStable engine=(%v,%v) sequential=(%v,%v)",
				budget, gotStable, gotErr, wantStable, wantErr)
		}
		gotDRF := CheckLocalDRFFrom(m, L, budget)
		wantDRF := CheckLocalDRFFromSequential(m, L, budget)
		if errString(gotDRF) != errString(wantDRF) {
			t.Fatalf("budget %d: CheckLocalDRFFrom engine=%v sequential=%v",
				budget, gotDRF, wantDRF)
		}
	}
}

// TestEngineWalkFindsInstability pins a state where stability genuinely
// fails (a race in progress), so the differential above is known to cover
// the violated branch.
func TestEngineWalkFindsInstability(t *testing.T) {
	tc, ok := litmus.Get("MP+na")
	if !ok {
		t.Fatal("missing MP+na")
	}
	p := tc.Prog
	L := AllLocs(p)
	found := false
	for _, m := range probeStates(t, p, 20) {
		stable, err := LStable(p, m, L, stabBudget)
		if err != nil {
			t.Fatal(err)
		}
		if !stable {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no unstable state found in MP+na; the violated path is untested")
	}
}
