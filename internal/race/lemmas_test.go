package race

// Executable forms of the appendix-A lemmas the local DRF proof rests
// on, checked over every trace of small programs (litmus-shaped and
// random). These are the load-bearing invariants of the operational
// model; if one broke, thm. 13 would silently rot.

import (
	"testing"

	"localdrf/internal/explore"
	"localdrf/internal/prog"
	"localdrf/internal/progsynth"
	"localdrf/internal/ts"
)

func sweepTraces(t *testing.T, progs []*prog.Program, visit func(*prog.Program, explore.Trace)) {
	t.Helper()
	for _, p := range progs {
		err := explore.Traces(p, explore.Options{}, 100_000, func(tr explore.Trace) bool {
			visit(p, tr)
			return true
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
}

func lemmaPrograms() []*prog.Program {
	progs := []*prog.Program{
		prog.NewProgram("MP").
			Vars("x").
			Atomics("F").
			Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
			Thread("P1").Load("r0", "F").Load("r1", "x").Done().
			MustBuild(),
		prog.NewProgram("WW+RA").
			Vars("x").
			RAs("G").
			Thread("P0").StoreI("x", 1).StoreI("G", 1).Done().
			Thread("P1").Load("r0", "G").StoreI("x", 2).Done().
			MustBuild(),
	}
	for seed := int64(40); seed < 52; seed++ {
		progs = append(progs, progsynth.Random(seed, progsynth.Config{
			MaxThreads:    2,
			MaxOps:        2,
			AtomicLocs:    []prog.Loc{"A"},
			NonAtomicLocs: []prog.Loc{"x", "y"},
			MaxConst:      2,
		}))
	}
	return progs
}

// Lemma 21: F(T) ≤ F′(T) for every transition.
func TestLemma21FrontiersGrow(t *testing.T) {
	sweepTraces(t, lemmaPrograms(), func(p *prog.Program, tr explore.Trace) {
		for _, step := range tr {
			if !step.FrontierAfter.AtLeast(step.FrontierBefore) {
				t.Fatalf("%s: frontier shrank on %v", p.Name, step)
			}
		}
	})
}

// Lemma 22: Ti happens-before Tj implies F′(Ti) ≤ F′(Tj).
func TestLemma22HBOrdersFrontiers(t *testing.T) {
	sweepTraces(t, lemmaPrograms(), func(p *prog.Program, tr explore.Trace) {
		hb := HappensBefore(tr)
		for i := range tr {
			for j := range tr {
				if !hb.Has(i, j) {
					continue
				}
				if !tr[j].FrontierAfter.AtLeast(tr[i].FrontierAfter) {
					t.Fatalf("%s: %v hb %v but frontiers disagree", p.Name, tr[i], tr[j])
				}
			}
		}
	})
}

// Lemma 23 (contrapositive form): if a thread's frontier knows timestamp
// t > 0 for nonatomic location a, some earlier write to a at t
// happens-before that transition.
func TestLemma23FrontierEntriesAreInherited(t *testing.T) {
	sweepTraces(t, lemmaPrograms(), func(p *prog.Program, tr explore.Trace) {
		hb := HappensBefore(tr)
		for j, step := range tr {
			for loc, tstamp := range step.FrontierAfter {
				if p.IsAtomic(loc) || tstamp.Equal(ts.Zero) {
					continue
				}
				// The writer of (loc, tstamp) must exist at or before j
				// and happen-before (or be) Tj.
				found := false
				for i := 0; i <= j; i++ {
					if tr[i].IsWrite && tr[i].Loc == loc && tr[i].Time.Equal(tstamp) {
						if i == j || hb.Has(i, j) {
							found = true
						}
						break
					}
				}
				if !found {
					t.Fatalf("%s: T%d knows %s@%v without an hb-prior write\ntrace: %v",
						p.Name, step.Thread, loc, tstamp, tr)
				}
			}
		}
	})
}

// Release-acquire hb edges: a racy write published through an RA flag is
// hb-ordered with the guarded access; without reading the flag there is
// no edge.
func TestHappensBeforeRAEdges(t *testing.T) {
	p := prog.NewProgram("ra-hb").
		Vars("x").
		RAs("G").
		Thread("P0").StoreI("x", 1).StoreI("G", 1).Done().
		Thread("P1").Load("r0", "G").Load("r1", "x").Done().
		MustBuild()
	err := explore.Traces(p, explore.Options{}, 0, func(tr explore.Trace) bool {
		hb := HappensBefore(tr)
		var wg, rg = -1, -1
		for i, s := range tr {
			if s.Loc == "G" && s.IsWrite {
				wg = i
			}
			if s.Loc == "G" && !s.IsWrite {
				rg = i
			}
		}
		if wg < 0 || rg < 0 || wg > rg {
			return true
		}
		readFrom := tr[rg].Time.Equal(tr[wg].Time)
		if readFrom && !hb.Has(wg, rg) {
			t.Errorf("RA reads-from edge missing in %v", tr)
		}
		if !readFrom && hb.Has(wg, rg) {
			t.Errorf("spurious RA hb edge (read did not read from the write) in %v", tr)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// RA accesses never race (def. 9 concerns nonatomic locations).
func TestRADoesNotRace(t *testing.T) {
	p := prog.NewProgram("ra-norace").
		RAs("G").
		Thread("P0").StoreI("G", 1).Done().
		Thread("P1").StoreI("G", 2).Load("r0", "G").Done().
		MustBuild()
	reports, err := FindRaces(p, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("RA accesses reported racing: %v", reports)
	}
}

// And the guarded-by-RA data write is ordered: a reader that saw the
// flag does not race with the writer.
func TestRASynchronisationPreventsDataRace(t *testing.T) {
	p := prog.NewProgram("ra-guard").
		Vars("x").
		RAs("G").
		Thread("P0").StoreI("x", 1).StoreI("G", 1).Done().
		Thread("P1").
		Load("r0", "G").
		JmpZ("r0", "skip").
		Load("r1", "x").
		Label("skip").
		Done().
		MustBuild()
	free, err := IsSCRaceFree(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !free {
		t.Error("RA-guarded message passing should be race-free")
	}
}
