package race

import (
	"fmt"

	"localdrf/internal/core"
	"localdrf/internal/engine"
	"localdrf/internal/explore"
	"localdrf/internal/prog"
)

// fingerprint is the canonical identity of a machine state, shared with
// the exploration engine (128-bit hash of the binary encoding).
func fingerprint(m *core.Machine, buf []byte) (engine.Fingerprint, []byte) {
	buf = m.AppendCanonical(buf[:0])
	return engine.Hash(buf), buf
}

// LStable decides def. 12 for a machine state M of program p: M is
// L-stable if for every trace of the program that passes through M and
// whose suffix after M consists of L-sequential transitions, no race *on a
// location in L* relates a prefix transition to a suffix transition.
//
// Note on fidelity: def. 12 as printed says "no data race between Ti and
// T'j" without restricting the location. Read literally, that would make
// the §5 example-1 reasoning unsound (an in-progress race on c ∉ L would
// destroy {a,b}-stability, yet the paper concludes the fragment is
// covered), and the appendix proof of thm. 13 only ever invokes stability
// for a race on the location a ∈ L of the offending weak transition. We
// therefore implement the L-restricted reading, which is the weakest
// hypothesis the proof needs and the one §5's applications require.
//
// The decision procedure is exhaustive: it enumerates every path from the
// initial state, and at each point where the canonical state equals M's,
// explores every L-sequential continuation, checking races across the
// split. Intended for litmus-scale programs (the state spaces involved
// are tiny); maxSteps bounds the total number of transitions explored.
func LStable(p *prog.Program, m *core.Machine, L LocSet, maxSteps int) (bool, error) {
	target, buf := fingerprint(m, nil)
	budget := maxSteps
	var firstViolation error

	// checkSuffix explores L-sequential continuations from state cur,
	// where full = prefix ++ suffix (suffix has suffixLen transitions).
	// It reports a cross-split race via firstViolation.
	var checkSuffix func(cur *core.Machine, full explore.Trace, prefixLen int) (bool, error)
	checkSuffix = func(cur *core.Machine, full explore.Trace, prefixLen int) (bool, error) {
		if budget <= 0 {
			return false, fmt.Errorf("race: LStable step budget exceeded")
		}
		budget--
		steps, err := cur.Steps()
		if err != nil {
			return false, err
		}
		for _, tr := range steps {
			if !LSequential(tr, L) {
				continue
			}
			ext := append(full, tr)
			j := len(ext) - 1
			hb := HappensBefore(ext)
			for i := 0; i < prefixLen; i++ {
				// Conflicting transitions share a location, so testing
				// membership of the suffix transition's location suffices.
				if !L[ext[j].Loc] {
					break
				}
				if ext[i].Conflicts(ext[j]) && !hb.Has(i, j) {
					firstViolation = fmt.Errorf(
						"race between prefix %v and L-sequential suffix %v", ext[i], ext[j])
					return false, nil
				}
			}
			ok, err := checkSuffix(tr.After, ext, prefixLen)
			if err != nil || !ok {
				return ok, err
			}
		}
		return true, nil
	}

	// walk explores all paths from the initial state, triggering suffix
	// checks whenever the canonical state matches M.
	var walk func(cur *core.Machine, acc explore.Trace) (bool, error)
	walk = func(cur *core.Machine, acc explore.Trace) (bool, error) {
		if budget <= 0 {
			return false, fmt.Errorf("race: LStable step budget exceeded")
		}
		budget--
		var fp engine.Fingerprint
		fp, buf = fingerprint(cur, buf)
		if fp == target {
			ok, err := checkSuffix(cur, acc, len(acc))
			if err != nil || !ok {
				return ok, err
			}
		}
		steps, err := cur.Steps()
		if err != nil {
			return false, err
		}
		for _, tr := range steps {
			ok, err := walk(tr.After, append(acc, tr))
			if err != nil || !ok {
				return ok, err
			}
		}
		return true, nil
	}

	ok, err := walk(core.NewMachine(p), nil)
	if err != nil {
		return false, err
	}
	if !ok && firstViolation != nil {
		return false, nil
	}
	return ok, nil
}

// LocalDRFViolation describes a counterexample to thm. 13 (which, the
// theorem being a theorem, indicates a bug in the implementation if ever
// produced).
type LocalDRFViolation struct {
	// Suffix is the L-sequential sequence from the stable state.
	Suffix explore.Trace
	// NonSeq is the non-L-sequential transition available at the end.
	NonSeq core.Transition
}

func (v *LocalDRFViolation) Error() string {
	return fmt.Sprintf("race: local DRF violated: after L-sequential %v, non-L-sequential %v with no racing witness",
		v.Suffix, v.NonSeq)
}

// CheckLocalDRFFrom verifies the conclusion of thm. 13 from the machine
// state m (which the caller asserts, or has checked, to be L-stable): for
// every sequence of L-sequential transitions from m, either every next
// transition is L-sequential, or some non-weak transition accessing a
// location in L races with a transition of the sequence. Returns nil when
// the theorem holds on this state space, a *LocalDRFViolation otherwise.
func CheckLocalDRFFrom(m *core.Machine, L LocSet, maxSteps int) error {
	budget := maxSteps
	var walk func(cur *core.Machine, suffix explore.Trace) error
	walk = func(cur *core.Machine, suffix explore.Trace) error {
		if budget <= 0 {
			return fmt.Errorf("race: CheckLocalDRFFrom step budget exceeded")
		}
		budget--
		steps, err := cur.Steps()
		if err != nil {
			return err
		}
		// Partition the available transitions.
		var nonSeq []core.Transition
		for _, tr := range steps {
			if !LSequential(tr, L) {
				nonSeq = append(nonSeq, tr)
			}
		}
		// If some transition is not L-sequential, the theorem demands a
		// non-weak racing witness on L.
		if len(nonSeq) > 0 {
			if !hasRacingWitness(steps, suffix, L) {
				return &LocalDRFViolation{Suffix: suffix, NonSeq: nonSeq[0]}
			}
		}
		// Continue along L-sequential transitions only (the theorem
		// quantifies over L-sequential sequences).
		for _, tr := range steps {
			if !LSequential(tr, L) {
				continue
			}
			if err := walk(tr.After, append(suffix, tr)); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(m, nil)
}

// hasRacingWitness checks the second disjunct of thm. 13: among the
// available transitions, a non-weak one accessing a location in L that
// races with some element of the suffix. Happens-before is computed over
// suffix ++ [candidate]; hb paths between suffix elements and the
// candidate can only pass through later suffix elements, so the suffix is
// self-contained for this purpose.
func hasRacingWitness(steps []core.Transition, suffix explore.Trace, L LocSet) bool {
	for _, cand := range steps {
		if cand.Weak || !L[cand.Loc] {
			continue
		}
		ext := append(append(explore.Trace{}, suffix...), cand)
		hb := HappensBefore(ext)
		j := len(ext) - 1
		for i := 0; i < j; i++ {
			if ext[i].Conflicts(ext[j]) && !hb.Has(i, j) {
				return true
			}
		}
	}
	return false
}

// CheckLocalDRF verifies thm. 13 across an entire program: every reachable
// L-stable state satisfies the local DRF conclusion. This is the
// executable form of the theorem used in property tests; it is exhaustive
// and therefore only suitable for small programs.
func CheckLocalDRF(p *prog.Program, L LocSet, maxSteps int) error {
	seen := map[engine.Fingerprint]bool{}
	var states []*core.Machine
	var collect func(cur *core.Machine) error
	budget := maxSteps
	var buf []byte
	collect = func(cur *core.Machine) error {
		if budget <= 0 {
			return fmt.Errorf("race: CheckLocalDRF step budget exceeded")
		}
		budget--
		var k engine.Fingerprint
		k, buf = fingerprint(cur, buf)
		if seen[k] {
			return nil
		}
		seen[k] = true
		states = append(states, cur)
		steps, err := cur.Steps()
		if err != nil {
			return err
		}
		for _, tr := range steps {
			if err := collect(tr.After); err != nil {
				return err
			}
		}
		return nil
	}
	if err := collect(core.NewMachine(p)); err != nil {
		return err
	}
	for _, m := range states {
		stable, err := LStable(p, m, L, maxSteps)
		if err != nil {
			return err
		}
		if !stable {
			continue
		}
		if err := CheckLocalDRFFrom(m, L, maxSteps); err != nil {
			return err
		}
	}
	return nil
}
