package race

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"localdrf/internal/core"
	"localdrf/internal/engine"
	"localdrf/internal/explore"
	"localdrf/internal/prog"
)

// fingerprint is the canonical identity of a machine state, shared with
// the exploration engine (128-bit hash of the binary encoding).
func fingerprint(m *core.Machine, buf []byte) (engine.Fingerprint, []byte) {
	buf = m.AppendCanonical(buf[:0])
	return engine.Hash(buf), buf
}

// The trace walks of LStable and CheckLocalDRFFrom run on engine.Run with
// *path-carrying* states: unlike the outcome searches, these analyses
// need the identity of every transition along the way, so a state is a
// (machine, trace-so-far) pair and its canonical encoding is the DFS
// child-index path — unique per state, which makes the engine's interner
// a pure frontier scheduler (no two states merge) and lets the walk fan
// out across the work-stealing workers. Results stay byte-identical to
// the sequential reference implementations (retained below as
// LStableSequential / CheckLocalDRFFromSequential and cross-checked in
// the tests): the decided booleans count no differently, and the
// violation reported by CheckLocalDRFFrom is selected as the
// lexicographically least child-index path — exactly the first violation
// the sequential depth-first walk encounters. Budget exhaustion is the
// one place parallel scheduling order could leak into the result (which
// worker burns the shared budget first, and what was explored before it
// did, are nondeterministic), so whenever the parallel walk runs out of
// budget it discards its partial verdict and falls back to the
// sequential reference, whose budget accounting is exact — the
// observable outputs are byte-identical in every case.

// pathState is one node of a path-carrying walk.
type pathState struct {
	m     *core.Machine
	trace explore.Trace
	// prefixLen is -1 while walking to occurrences of the target state
	// (LStable's outer phase) and the prefix length once inside an
	// L-sequential suffix.
	prefixLen int
	// path is the DFS child-index path from the root, the state identity.
	path []int32
}

// encodePath is the engine Encode hook: states are identified by their
// child-index path (unique per node of the walk tree).
func encodePath(s *pathState, buf []byte) []byte {
	buf = binary.AppendVarint(buf, int64(s.prefixLen))
	for _, i := range s.path {
		buf = binary.AppendVarint(buf, int64(i))
	}
	return buf
}

// child extends a state by one transition under child index i.
func (s *pathState) child(tr core.Transition, i int32, prefixLen int) *pathState {
	trace := make(explore.Trace, len(s.trace)+1)
	copy(trace, s.trace)
	trace[len(s.trace)] = tr
	path := make([]int32, len(s.path)+1)
	copy(path, s.path)
	path[len(s.path)] = i
	return &pathState{m: tr.After, trace: trace, prefixLen: prefixLen, path: path}
}

// lexLess orders child-index paths depth-first: a proper prefix precedes
// its extensions, otherwise the first differing index decides.
func lexLess(a, b []int32) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// suffixRace reports whether the last transition of ext (the newest
// suffix transition, on a location in L) races with any of the first
// prefixLen transitions — the cross-split race of def. 12.
func suffixRace(ext explore.Trace, prefixLen int, L LocSet) bool {
	j := len(ext) - 1
	if prefixLen == 0 || !L[ext[j].Loc] {
		return false
	}
	hb := HappensBefore(ext)
	for i := 0; i < prefixLen; i++ {
		if ext[i].Conflicts(ext[j]) && !hb.Has(i, j) {
			return true
		}
	}
	return false
}

// LStable decides def. 12 for a machine state M of program p: M is
// L-stable if for every trace of the program that passes through M and
// whose suffix after M consists of L-sequential transitions, no race *on a
// location in L* relates a prefix transition to a suffix transition.
//
// Note on fidelity: def. 12 as printed says "no data race between Ti and
// T'j" without restricting the location. Read literally, that would make
// the §5 example-1 reasoning unsound (an in-progress race on c ∉ L would
// destroy {a,b}-stability, yet the paper concludes the fragment is
// covered), and the appendix proof of thm. 13 only ever invokes stability
// for a race on the location a ∈ L of the offending weak transition. We
// therefore implement the L-restricted reading, which is the weakest
// hypothesis the proof needs and the one §5's applications require.
//
// The decision procedure is exhaustive: it enumerates every path from the
// initial state on the parallel engine, and at each node whose canonical
// state equals M's, explores every L-sequential continuation, checking
// races across the split. Intended for litmus-scale programs; maxSteps
// bounds the total number of nodes explored.
func LStable(p *prog.Program, m *core.Machine, L LocSet, maxSteps int) (bool, error) {
	target, _ := fingerprint(m, nil)
	var budget atomic.Int64
	budget.Store(int64(maxSteps))
	var violated atomic.Bool

	cfg := engine.Config[*pathState]{
		Options: engine.Options{MaxStates: 2*maxSteps + 16},
		Encode:  encodePath,
		// No early exit on violation: the walk always expands the full
		// tree (or dies on budget), so its budget consumption is a fixed
		// upper bound on the sequential walk's — whenever the sequential
		// reference would exhaust its budget, this walk does too and the
		// fallback below reproduces the sequential outcome exactly.
		Expand: func(_ int, s *pathState, emit func(*pathState)) error {
			if budget.Add(-1) < 0 {
				return fmt.Errorf("race: LStable step budget exceeded")
			}
			steps, err := s.m.Steps()
			if err != nil {
				return err
			}
			if s.prefixLen >= 0 {
				// Suffix phase: L-sequential continuations only, checking
				// each new transition against the prefix before descending.
				next := int32(0)
				for _, tr := range steps {
					if !LSequential(tr, L) {
						continue
					}
					c := s.child(tr, next, s.prefixLen)
					next++
					if suffixRace(c.trace, s.prefixLen, L) {
						violated.Store(true)
						continue
					}
					emit(c)
				}
				return nil
			}
			// Outer phase: on a match, branch into the suffix walk (child
			// index 0, before the outer children — the sequential DFS
			// checks suffixes first), then continue the outer walk.
			fp, _ := fingerprint(s.m, nil)
			if fp == target {
				root := &pathState{
					m: s.m, trace: s.trace,
					prefixLen: len(s.trace),
					path:      append(append([]int32{}, s.path...), 0),
				}
				emit(root)
			}
			for i, tr := range steps {
				emit(s.child(tr, int32(i+1), -1))
			}
			return nil
		},
	}
	_, err := engine.Run(cfg, &pathState{m: core.NewMachine(p), prefixLen: -1})
	if err != nil {
		// Out of budget: which worker exhausted the shared budget (and
		// what was explored before it did) is scheduling-dependent, while
		// the sequential walk's accounting is exact — defer to it for a
		// deterministic answer.
		return LStableSequential(p, m, L, maxSteps)
	}
	if violated.Load() {
		return false, nil
	}
	return true, nil
}

// LStableSequential is the seed's recursive single-threaded
// implementation of LStable, retained as the reference the engine-based
// walk is differentially tested against (outputs must be byte-identical).
func LStableSequential(p *prog.Program, m *core.Machine, L LocSet, maxSteps int) (bool, error) {
	target, buf := fingerprint(m, nil)
	budget := maxSteps
	var firstViolation error

	// checkSuffix explores L-sequential continuations from state cur,
	// where full = prefix ++ suffix (suffix has suffixLen transitions).
	// It reports a cross-split race via firstViolation.
	var checkSuffix func(cur *core.Machine, full explore.Trace, prefixLen int) (bool, error)
	checkSuffix = func(cur *core.Machine, full explore.Trace, prefixLen int) (bool, error) {
		if budget <= 0 {
			return false, fmt.Errorf("race: LStable step budget exceeded")
		}
		budget--
		steps, err := cur.Steps()
		if err != nil {
			return false, err
		}
		for _, tr := range steps {
			if !LSequential(tr, L) {
				continue
			}
			ext := append(full, tr)
			j := len(ext) - 1
			hb := HappensBefore(ext)
			for i := 0; i < prefixLen; i++ {
				// Conflicting transitions share a location, so testing
				// membership of the suffix transition's location suffices.
				if !L[ext[j].Loc] {
					break
				}
				if ext[i].Conflicts(ext[j]) && !hb.Has(i, j) {
					firstViolation = fmt.Errorf(
						"race between prefix %v and L-sequential suffix %v", ext[i], ext[j])
					return false, nil
				}
			}
			ok, err := checkSuffix(tr.After, ext, prefixLen)
			if err != nil || !ok {
				return ok, err
			}
		}
		return true, nil
	}

	// walk explores all paths from the initial state, triggering suffix
	// checks whenever the canonical state matches M.
	var walk func(cur *core.Machine, acc explore.Trace) (bool, error)
	walk = func(cur *core.Machine, acc explore.Trace) (bool, error) {
		if budget <= 0 {
			return false, fmt.Errorf("race: LStable step budget exceeded")
		}
		budget--
		var fp engine.Fingerprint
		fp, buf = fingerprint(cur, buf)
		if fp == target {
			ok, err := checkSuffix(cur, acc, len(acc))
			if err != nil || !ok {
				return ok, err
			}
		}
		steps, err := cur.Steps()
		if err != nil {
			return false, err
		}
		for _, tr := range steps {
			ok, err := walk(tr.After, append(acc, tr))
			if err != nil || !ok {
				return ok, err
			}
		}
		return true, nil
	}

	ok, err := walk(core.NewMachine(p), nil)
	if err != nil {
		return false, err
	}
	if !ok && firstViolation != nil {
		return false, nil
	}
	return ok, nil
}

// LocalDRFViolation describes a counterexample to thm. 13 (which, the
// theorem being a theorem, indicates a bug in the implementation if ever
// produced).
type LocalDRFViolation struct {
	// Suffix is the L-sequential sequence from the stable state.
	Suffix explore.Trace
	// NonSeq is the non-L-sequential transition available at the end.
	NonSeq core.Transition
}

func (v *LocalDRFViolation) Error() string {
	return fmt.Sprintf("race: local DRF violated: after L-sequential %v, non-L-sequential %v with no racing witness",
		v.Suffix, v.NonSeq)
}

// CheckLocalDRFFrom verifies the conclusion of thm. 13 from the machine
// state m (which the caller asserts, or has checked, to be L-stable): for
// every sequence of L-sequential transitions from m, either every next
// transition is L-sequential, or some non-weak transition accessing a
// location in L races with a transition of the sequence. Returns nil when
// the theorem holds on this state space, a *LocalDRFViolation otherwise —
// the violation the sequential depth-first walk would find first.
func CheckLocalDRFFrom(m *core.Machine, L LocSet, maxSteps int) error {
	var budget atomic.Int64
	budget.Store(int64(maxSteps))
	var mu sync.Mutex
	var haveBest atomic.Bool // lock-free "any violation yet?" fast path
	var bestPath []int32
	var best *LocalDRFViolation

	// pruned reports whether a state cannot improve on the best violation
	// (its path is not lexicographically before the best's); once a
	// violation is found, only earlier-in-DFS-order branches stay live.
	// In the common case (the theorem holds, no violation ever recorded)
	// this is a single relaxed atomic load, not a lock.
	pruned := func(path []int32) bool {
		if !haveBest.Load() {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		return best != nil && !lexLess(path, bestPath)
	}

	cfg := engine.Config[*pathState]{
		Options: engine.Options{MaxStates: 2*maxSteps + 16},
		Encode:  encodePath,
		Expand: func(_ int, s *pathState, emit func(*pathState)) error {
			if pruned(s.path) {
				return nil
			}
			if budget.Add(-1) < 0 {
				return fmt.Errorf("race: CheckLocalDRFFrom step budget exceeded")
			}
			steps, err := s.m.Steps()
			if err != nil {
				return err
			}
			var nonSeq []core.Transition
			for _, tr := range steps {
				if !LSequential(tr, L) {
					nonSeq = append(nonSeq, tr)
				}
			}
			// If some transition is not L-sequential, the theorem demands
			// a non-weak racing witness on L.
			if len(nonSeq) > 0 && !hasRacingWitness(steps, s.trace, L) {
				mu.Lock()
				if best == nil || lexLess(s.path, bestPath) {
					best = &LocalDRFViolation{Suffix: s.trace, NonSeq: nonSeq[0]}
					bestPath = s.path
				}
				mu.Unlock()
				haveBest.Store(true)
				return nil
			}
			// Continue along L-sequential transitions only (the theorem
			// quantifies over L-sequential sequences).
			next := int32(0)
			for _, tr := range steps {
				if !LSequential(tr, L) {
					continue
				}
				emit(s.child(tr, next, 0))
				next++
			}
			return nil
		},
	}
	_, err := engine.Run(cfg, &pathState{m: m, prefixLen: 0})
	if err != nil {
		// Out of budget: the interrupted walk may hold no violation, or a
		// violation that is not the DFS-first one — defer wholly to the
		// exact sequential accounting (see the package comment above).
		return CheckLocalDRFFromSequential(m, L, maxSteps)
	}
	mu.Lock()
	defer mu.Unlock()
	if best != nil {
		return best
	}
	return nil
}

// CheckLocalDRFFromSequential is the seed's recursive single-threaded
// implementation of CheckLocalDRFFrom, retained as the differential
// reference for the engine-based walk.
func CheckLocalDRFFromSequential(m *core.Machine, L LocSet, maxSteps int) error {
	budget := maxSteps
	var walk func(cur *core.Machine, suffix explore.Trace) error
	walk = func(cur *core.Machine, suffix explore.Trace) error {
		if budget <= 0 {
			return fmt.Errorf("race: CheckLocalDRFFrom step budget exceeded")
		}
		budget--
		steps, err := cur.Steps()
		if err != nil {
			return err
		}
		// Partition the available transitions.
		var nonSeq []core.Transition
		for _, tr := range steps {
			if !LSequential(tr, L) {
				nonSeq = append(nonSeq, tr)
			}
		}
		// If some transition is not L-sequential, the theorem demands a
		// non-weak racing witness on L.
		if len(nonSeq) > 0 {
			if !hasRacingWitness(steps, suffix, L) {
				return &LocalDRFViolation{Suffix: suffix, NonSeq: nonSeq[0]}
			}
		}
		// Continue along L-sequential transitions only (the theorem
		// quantifies over L-sequential sequences).
		for _, tr := range steps {
			if !LSequential(tr, L) {
				continue
			}
			if err := walk(tr.After, append(suffix, tr)); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(m, nil)
}

// hasRacingWitness checks the second disjunct of thm. 13: among the
// available transitions, a non-weak one accessing a location in L that
// races with some element of the suffix. Happens-before is computed over
// suffix ++ [candidate]; hb paths between suffix elements and the
// candidate can only pass through later suffix elements, so the suffix is
// self-contained for this purpose.
func hasRacingWitness(steps []core.Transition, suffix explore.Trace, L LocSet) bool {
	for _, cand := range steps {
		if cand.Weak || !L[cand.Loc] {
			continue
		}
		ext := append(append(explore.Trace{}, suffix...), cand)
		hb := HappensBefore(ext)
		j := len(ext) - 1
		for i := 0; i < j; i++ {
			if ext[i].Conflicts(ext[j]) && !hb.Has(i, j) {
				return true
			}
		}
	}
	return false
}

// CheckLocalDRF verifies thm. 13 across an entire program: every reachable
// L-stable state satisfies the local DRF conclusion. This is the
// executable form of the theorem used in property tests; it is exhaustive
// and therefore only suitable for small programs.
func CheckLocalDRF(p *prog.Program, L LocSet, maxSteps int) error {
	seen := map[engine.Fingerprint]bool{}
	var states []*core.Machine
	var collect func(cur *core.Machine) error
	budget := maxSteps
	var buf []byte
	collect = func(cur *core.Machine) error {
		if budget <= 0 {
			return fmt.Errorf("race: CheckLocalDRF step budget exceeded")
		}
		budget--
		var k engine.Fingerprint
		k, buf = fingerprint(cur, buf)
		if seen[k] {
			return nil
		}
		seen[k] = true
		states = append(states, cur)
		steps, err := cur.Steps()
		if err != nil {
			return err
		}
		for _, tr := range steps {
			if err := collect(tr.After); err != nil {
				return err
			}
		}
		return nil
	}
	if err := collect(core.NewMachine(p)); err != nil {
		return err
	}
	for _, m := range states {
		stable, err := LStable(p, m, L, maxSteps)
		if err != nil {
			return err
		}
		if !stable {
			continue
		}
		if err := CheckLocalDRFFrom(m, L, maxSteps); err != nil {
			return err
		}
	}
	return nil
}
