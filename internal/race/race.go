// Package race implements the data-race and local-DRF machinery of §4 of
// the paper: happens-before over traces (def. 8), conflicting transitions
// (def. 9), data races (def. 10), L-sequential transitions (def. 11),
// L-stability (def. 12), and executable checks of the local DRF theorem
// (thm. 13) and the derived global DRF theorem (thm. 14).
package race

import (
	"fmt"
	"runtime"
	"slices"
	"sort"

	"localdrf/internal/core"
	"localdrf/internal/explore"
	"localdrf/internal/prog"
	"localdrf/internal/rel"
)

// LocSet is a set L of locations, the parameter of local DRF.
type LocSet map[prog.Loc]bool

// NewLocSet builds a LocSet.
func NewLocSet(locs ...prog.Loc) LocSet {
	s := LocSet{}
	for _, l := range locs {
		s[l] = true
	}
	return s
}

// AllLocs returns the set of every location of a program; with this L,
// L-sequential = sequentially consistent and local DRF specialises to
// global DRF (§5).
func AllLocs(p *prog.Program) LocSet {
	s := LocSet{}
	for l := range p.Locs {
		s[l] = true
	}
	return s
}

// HappensBefore computes the happens-before relation of a trace (def. 8):
// the smallest transitive relation relating Ti to Tj (i < j) when they are
// on the same thread, or when Ti writes and Tj reads or writes the same
// atomic location. For the §10 release-acquire extension the
// synchronisation edge is narrower, matching the operational frontier
// flow: an RA write happens-before exactly the RA reads that read from it
// (same location, same timestamp) — not later RA writes or other readers.
func HappensBefore(tr explore.Trace) rel.Rel {
	n := len(tr)
	r := rel.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if tr[i].Thread == tr[j].Thread {
				r.Set(i, j)
			}
			if tr[i].Loc != tr[j].Loc || !tr[i].IsWrite {
				continue
			}
			switch {
			case tr[i].RA && tr[j].RA:
				if !tr[j].IsWrite && tr[i].Time.Equal(tr[j].Time) {
					r.Set(i, j) // release/acquire reads-from edge
				}
			case tr[i].Atomic && tr[j].Atomic:
				r.Set(i, j)
			}
		}
	}
	return r.TransitiveClosure()
}

// Race identifies a racing pair of transition indices in a trace.
type Race struct {
	I, J int
}

// RacingPairs returns every data race in a trace (def. 10): conflicting
// transitions Ti, Tj with i < j where Ti does not happen-before Tj.
func RacingPairs(tr explore.Trace) []Race {
	hb := HappensBefore(tr)
	var out []Race
	for i := 0; i < len(tr); i++ {
		for j := i + 1; j < len(tr); j++ {
			if tr[i].Conflicts(tr[j]) && !hb.Has(i, j) {
				out = append(out, Race{I: i, J: j})
			}
		}
	}
	return out
}

// HasRace reports whether the trace contains any data race.
func HasRace(tr explore.Trace) bool { return len(RacingPairs(tr)) > 0 }

// Races returns the distinct data races of a single trace, deduplicated
// by location, thread pair and access kinds and sorted canonically — the
// per-trace analogue of FindRaces' program-wide report set. It is the
// exhaustive oracle the streaming monitor (internal/monitor) is
// differentially tested against: on any trace, monitor.Reports must equal
// Races exactly.
func Races(tr explore.Trace) []Report {
	set := map[Report]bool{}
	for _, rc := range RacingPairs(tr) {
		set[Report{
			Loc:     tr[rc.I].Loc,
			ThreadI: tr[rc.I].Thread,
			ThreadJ: tr[rc.J].Thread,
			WriteI:  tr[rc.I].IsWrite,
			WriteJ:  tr[rc.J].IsWrite,
		}] = true
	}
	return sortedReports(set)
}

// IsSC reports whether a trace is sequentially consistent (def. 7): it
// contains no weak transitions.
func IsSC(tr explore.Trace) bool {
	for _, t := range tr {
		if t.Weak {
			return false
		}
	}
	return true
}

// LSequential reports whether a transition is L-sequential (def. 11): not
// weak, or weak on a location outside L.
func LSequential(t core.Transition, L LocSet) bool {
	return !t.Weak || !L[t.Loc]
}

// Report describes one race found in some trace of a program.
type Report struct {
	Loc     prog.Loc
	ThreadI int
	ThreadJ int
	WriteI  bool
	WriteJ  bool
}

func (r Report) String() string {
	op := func(w bool) string {
		if w {
			return "write"
		}
		return "read"
	}
	return fmt.Sprintf("race on %s: T%d %s vs T%d %s",
		r.Loc, r.ThreadI, op(r.WriteI), r.ThreadJ, op(r.WriteJ))
}

// FindRaces explores traces of p and returns the distinct races found
// (deduplicated by location, threads and access kinds). scOnly restricts
// the search to SC traces — the premise of the global DRF theorem talks
// about races in sequentially consistent traces. The trace scan is
// partitioned across parallel workers; reports are merged and returned in
// a deterministic order.
func FindRaces(p *prog.Program, scOnly bool, maxTraces int) ([]Report, error) {
	par := runtime.GOMAXPROCS(0)
	sinks := make([]map[Report]bool, par)
	for i := range sinks {
		sinks[i] = map[Report]bool{}
	}
	err := explore.ScanTraces(p, explore.Options{SCOnly: scOnly}, maxTraces, par,
		func(worker int, tr explore.Trace) bool {
			for _, rc := range RacingPairs(tr) {
				sinks[worker][Report{
					Loc:     tr[rc.I].Loc,
					ThreadI: tr[rc.I].Thread,
					ThreadJ: tr[rc.J].Thread,
					WriteI:  tr[rc.I].IsWrite,
					WriteJ:  tr[rc.J].IsWrite,
				}] = true
			}
			return true
		})
	if err != nil {
		return nil, err
	}
	merged := map[Report]bool{}
	for _, s := range sinks {
		for rep := range s {
			merged[rep] = true
		}
	}
	return sortedReports(merged), nil
}

// sortedReports flattens a report set into the canonical order.
func sortedReports(set map[Report]bool) []Report {
	out := make([]Report, 0, len(set))
	for rep := range set {
		out = append(out, rep)
	}
	SortReports(out)
	return out
}

// ReportsEqual reports whether two canonical report slices (both in
// SortReports order) are identical — the comparison every differential
// test of the race machinery uses.
func ReportsEqual(a, b []Report) bool { return slices.Equal(a, b) }

// SortReports sorts reports into the canonical order (by location, thread
// pair, then access kinds with reads first). Every producer of report
// slices — FindRaces, Races, the streaming monitor — uses this order, so
// slices are directly comparable.
func SortReports(out []Report) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Loc != b.Loc:
			return a.Loc < b.Loc
		case a.ThreadI != b.ThreadI:
			return a.ThreadI < b.ThreadI
		case a.ThreadJ != b.ThreadJ:
			return a.ThreadJ < b.ThreadJ
		case a.WriteI != b.WriteI:
			return !a.WriteI
		default:
			return !a.WriteJ && b.WriteJ
		}
	})
}

// IsSCRaceFree reports whether every sequentially consistent trace of p is
// race-free — the hypothesis of thm. 14. The standard DRF discipline can
// be checked without ever reasoning about weak behaviours.
func IsSCRaceFree(p *prog.Program, maxTraces int) (bool, error) {
	races, err := FindRaces(p, true, maxTraces)
	if err != nil {
		return false, err
	}
	return len(races) == 0, nil
}

// CheckGlobalDRF verifies the conclusion of thm. 14 on p: if p is
// race-free in all SC traces, then *every* trace of p is sequentially
// consistent, which we witness by the full outcome set coinciding with the
// SC outcome set and every trace being weak-transition-free. Returns an
// error describing the counterexample if the theorem were to fail (it
// never should; this is the executable statement of the theorem).
func CheckGlobalDRF(p *prog.Program, maxTraces int) error {
	free, err := IsSCRaceFree(p, maxTraces)
	if err != nil {
		return err
	}
	if !free {
		return fmt.Errorf("race: program %q is not SC-race-free; theorem premise not met", p.Name)
	}
	// All traces must be SC.
	var bad explore.Trace
	err = explore.Traces(p, explore.Options{}, maxTraces, func(tr explore.Trace) bool {
		if !IsSC(tr) {
			bad = tr
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if bad != nil {
		return fmt.Errorf("race: DRF program %q has a non-SC trace: %v", p.Name, bad)
	}
	// Consequently the outcome sets agree.
	full, err := explore.Outcomes(p, explore.Options{})
	if err != nil {
		return err
	}
	sc, err := explore.Outcomes(p, explore.Options{SCOnly: true})
	if err != nil {
		return err
	}
	if !full.Equal(sc) {
		return fmt.Errorf("race: DRF program %q: full outcomes %v != SC outcomes %v",
			p.Name, full.Keys(), sc.Keys())
	}
	return nil
}
