package race

import (
	"strings"
	"testing"

	"localdrf/internal/core"
	"localdrf/internal/explore"
	"localdrf/internal/prog"
)

// mpGuarded is the properly-synchronised message-passing program: the
// reader only touches x after observing the flag.
func mpGuarded() *prog.Program {
	return prog.NewProgram("MP-guarded").
		Vars("x").
		Atomics("F").
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").
		Load("r0", "F").
		JmpZ("r0", "skip").
		Load("r1", "x").
		Label("skip").
		Done().
		MustBuild()
}

// mpUnguarded reads x unconditionally, racing when the flag was not seen.
func mpUnguarded() *prog.Program {
	return prog.NewProgram("MP-unguarded").
		Vars("x").
		Atomics("F").
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").Load("r0", "F").Load("r1", "x").Done().
		MustBuild()
}

func TestHappensBeforeProgramOrder(t *testing.T) {
	p := prog.NewProgram("po").
		Vars("x", "y").
		Thread("P0").StoreI("x", 1).StoreI("y", 1).Done().
		MustBuild()
	err := explore.Traces(p, explore.Options{}, 0, func(tr explore.Trace) bool {
		hb := HappensBefore(tr)
		if !hb.Has(0, 1) {
			t.Errorf("program order not in hb for trace %v", tr)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHappensBeforeAtomicSync(t *testing.T) {
	// In any trace of MP-guarded where the write to F precedes the read of
	// F, the write of x must happen-before the read of x (transitively).
	err := explore.Traces(mpGuarded(), explore.Options{}, 0, func(tr explore.Trace) bool {
		hb := HappensBefore(tr)
		var wx, rx, wf, rf = -1, -1, -1, -1
		for i, s := range tr {
			switch {
			case s.Loc == "x" && s.IsWrite:
				wx = i
			case s.Loc == "x" && !s.IsWrite:
				rx = i
			case s.Loc == "F" && s.IsWrite:
				wf = i
			case s.Loc == "F" && !s.IsWrite:
				rf = i
			}
		}
		if wx >= 0 && rx >= 0 && wf < rf && tr[rf].Val == 1 {
			if !hb.Has(wx, rx) {
				t.Errorf("wx !hb rx despite flag sync in %v", tr)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRacingPairsDetectsRace(t *testing.T) {
	p := prog.NewProgram("racy").
		Vars("x").
		Thread("P0").StoreI("x", 1).Done().
		Thread("P1").Load("r0", "x").Done().
		MustBuild()
	found := false
	err := explore.Traces(p, explore.Options{}, 0, func(tr explore.Trace) bool {
		if HasRace(tr) {
			found = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("unsynchronised write/read should race")
	}
}

func TestReadsDoNotRace(t *testing.T) {
	p := prog.NewProgram("rr").
		Vars("x").
		Thread("P0").Load("r0", "x").Done().
		Thread("P1").Load("r1", "x").Done().
		MustBuild()
	err := explore.Traces(p, explore.Options{}, 0, func(tr explore.Trace) bool {
		if HasRace(tr) {
			t.Errorf("concurrent reads reported racing in %v", tr)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAtomicsNeverRace(t *testing.T) {
	p := prog.NewProgram("at").
		Atomics("X").
		Thread("P0").StoreI("X", 1).Done().
		Thread("P1").StoreI("X", 2).Done().
		MustBuild()
	err := explore.Traces(p, explore.Options{}, 0, func(tr explore.Trace) bool {
		if HasRace(tr) {
			t.Errorf("atomic accesses reported racing in %v", tr)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsSCRaceFree(t *testing.T) {
	free, err := IsSCRaceFree(mpGuarded(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !free {
		t.Error("MP-guarded should be SC-race-free")
	}
	free, err = IsSCRaceFree(mpUnguarded(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if free {
		t.Error("MP-unguarded should race (unconditional read of x)")
	}
}

func TestFindRacesReportsLocation(t *testing.T) {
	reports, err := FindRaces(mpUnguarded(), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no races reported")
	}
	for _, r := range reports {
		if r.Loc != "x" {
			t.Errorf("race on %s, want x", r.Loc)
		}
		if !strings.Contains(r.String(), "race on x") {
			t.Errorf("report string %q", r.String())
		}
	}
}

// Thm. 14 (global DRF): race-free programs have only SC behaviour.
func TestGlobalDRFTheorem(t *testing.T) {
	progs := []*prog.Program{
		mpGuarded(),
		prog.NewProgram("SB-at").
			Atomics("X", "Y").
			Thread("P0").StoreI("X", 1).Load("r0", "Y").Done().
			Thread("P1").StoreI("Y", 1).Load("r1", "X").Done().
			MustBuild(),
		prog.NewProgram("seq").
			Vars("x", "y").
			Thread("P0").StoreI("x", 1).Load("r0", "x").StoreI("y", 2).Done().
			MustBuild(),
	}
	for _, p := range progs {
		if err := CheckGlobalDRF(p, 0); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestGlobalDRFPremiseRejected(t *testing.T) {
	err := CheckGlobalDRF(mpUnguarded(), 0)
	if err == nil || !strings.Contains(err.Error(), "not SC-race-free") {
		t.Errorf("racy program should fail the premise, got %v", err)
	}
}

// The initial state is always L-stable: there are no transitions before it
// to race with.
func TestInitialStateAlwaysLStable(t *testing.T) {
	for _, p := range []*prog.Program{mpGuarded(), mpUnguarded()} {
		stable, err := LStable(p, core.NewMachine(p), AllLocs(p), 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !stable {
			t.Errorf("%s: initial state must be L-stable", p.Name)
		}
	}
}

// A state in the middle of a race is not stable for the raced location.
func TestMidRaceStateNotStable(t *testing.T) {
	p := prog.NewProgram("midrace").
		Vars("x").
		Thread("P0").StoreI("x", 1).Done().
		Thread("P1").Load("r0", "x").Done().
		MustBuild()
	m := core.NewMachine(p)
	steps, err := m.StepsOf(0)
	if err != nil {
		t.Fatal(err)
	}
	mid := steps[0].After // after the write, before the read
	stable, err := LStable(p, mid, NewLocSet("x"), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if stable {
		t.Error("state between racing write and read should not be x-stable")
	}
}

// The same mid-write state is stable for a location not involved in the
// race: races are bounded in space.
func TestMidRaceStateStableForOtherLocation(t *testing.T) {
	p := prog.NewProgram("midrace2").
		Vars("x", "y").
		Thread("P0").StoreI("x", 1).Done().
		Thread("P1").Load("r0", "x").Done().
		MustBuild()
	m := core.NewMachine(p)
	steps, err := m.StepsOf(0)
	if err != nil {
		t.Fatal(err)
	}
	mid := steps[0].After
	stable, err := LStable(p, mid, NewLocSet("y"), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Error("race on x must not destroy y-stability")
	}
}

// Thm. 13 holds from the initial state of every small program we throw at
// it, for several choices of L.
func TestLocalDRFTheoremFromInitial(t *testing.T) {
	progs := []*prog.Program{
		mpGuarded(),
		mpUnguarded(),
		prog.NewProgram("WW").
			Vars("x", "y").
			Thread("P0").StoreI("x", 1).StoreI("y", 1).Done().
			Thread("P1").StoreI("y", 2).Load("r0", "x").Done().
			MustBuild(),
	}
	for _, p := range progs {
		for _, L := range []LocSet{AllLocs(p), NewLocSet("x"), NewLocSet("y"), {}} {
			m := core.NewMachine(p)
			stable, err := LStable(p, m, L, 4_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !stable {
				t.Fatalf("%s: initial state not L-stable", p.Name)
			}
			if err := CheckLocalDRFFrom(m, L, 4_000_000); err != nil {
				t.Errorf("%s, L=%v: %v", p.Name, L, err)
			}
		}
	}
}

// Full sweep of thm. 13 over all reachable L-stable states of a tiny racy
// program.
func TestLocalDRFTheoremAllStates(t *testing.T) {
	p := prog.NewProgram("sweep").
		Vars("x", "y").
		Thread("P0").StoreI("x", 1).Done().
		Thread("P1").Load("r0", "x").StoreI("y", 1).Done().
		MustBuild()
	for _, L := range []LocSet{AllLocs(p), NewLocSet("x"), NewLocSet("y")} {
		if err := CheckLocalDRF(p, L, 6_000_000); err != nil {
			t.Errorf("L=%v: %v", L, err)
		}
	}
}

// The §2.3 intuitive property, as a consequence of local DRF: when the
// reads of a location are properly ordered after all writes to it, two
// reads by one thread agree — even though an unrelated location races.
func TestTwoReadsAgreeDespiteUnrelatedRace(t *testing.T) {
	p := prog.NewProgram("agree").
		Vars("a", "b").
		Atomics("F").
		Thread("P0").StoreI("a", 5).StoreI("F", 1).StoreI("b", 1).Done().
		Thread("P1").
		Load("rF", "F").
		JmpZ("rF", "skip").
		Load("r0", "a").
		Load("r1", "a").
		Label("skip").
		StoreI("b", 2). // races with P0's write to b
		Done().
		MustBuild()
	set, err := explore.Outcomes(p, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok := set.Forall(func(o explore.Outcome) bool {
		if o.Reg(1, "rF") != 1 {
			return true
		}
		return o.Reg(1, "r0") == 5 && o.Reg(1, "r1") == 5
	})
	if !ok {
		t.Error("two ordered reads of a must both return 5 despite the race on b")
	}
}

func TestLSequentialClassification(t *testing.T) {
	weakX := core.Transition{Loc: "x", Weak: true}
	strongX := core.Transition{Loc: "x", Weak: false}
	L := NewLocSet("x")
	if LSequential(weakX, L) {
		t.Error("weak transition on L-location classified L-sequential")
	}
	if !LSequential(strongX, L) {
		t.Error("strong transition classified non-L-sequential")
	}
	if !LSequential(weakX, NewLocSet("y")) {
		t.Error("weak transition outside L should be L-sequential")
	}
}

func TestIsSC(t *testing.T) {
	if !IsSC(explore.Trace{{Weak: false}, {Weak: false}}) {
		t.Error("weak-free trace not SC")
	}
	if IsSC(explore.Trace{{Weak: false}, {Weak: true}}) {
		t.Error("trace with weak transition reported SC")
	}
}
