// Package core implements the operational memory model of Dolan,
// Sivaramakrishnan and Madhavapeddy, "Bounding Data Races in Space and
// Time" (PLDI 2018), fig. 1.
//
// A store S maps each nonatomic location a to a history H (a finite map
// from rational timestamps to values) and each atomic location A to a pair
// (F, x) of a frontier and a single value. Every thread carries a frontier
// F mapping nonatomic locations to timestamps — the latest write to each
// location that the thread is guaranteed to see. The four memory operation
// rules are:
//
//	Read-NA:  H; F --a: read H(t)-->  H; F            if F(a) ≤ t, t ∈ dom(H)
//	Write-NA: H; F --a: write x -->  H[t ↦ x]; F[a↦t] if F(a) < t, t ∉ dom(H)
//	Read-AT:  (FA,x); F --A: read x--> (FA,x); FA ⊔ F
//	Write-AT: (FA,y); F --A: write x--> (FA ⊔ F, x); FA ⊔ F
//
// Note the asymmetry that gives the model its character: nonatomic reads
// do not move the reading thread's frontier (so reads are not
// side-effecting, enabling CSE — §9.2), while nonatomic writes advance it,
// and atomic operations merge frontiers (which is how message passing
// publishes nonatomic writes).
package core

import (
	"fmt"
	"sort"
	"strings"

	"localdrf/internal/prog"
	"localdrf/internal/ts"
)

// HEntry is one entry of a history: a write of Val at Time.
type HEntry struct {
	Time ts.Time
	Val  prog.Val
}

// History is the per-nonatomic-location write history H, kept sorted by
// ascending timestamp. Timestamps are unique within a history (Write-NA
// requires t ∉ dom(H)).
type History struct {
	entries []HEntry
}

// NewHistory returns the initial history {0 ↦ v0} (§3.1).
func NewHistory() History {
	return History{entries: []HEntry{{Time: ts.Zero, Val: prog.V0}}}
}

// Len returns the number of writes in the history.
func (h History) Len() int { return len(h.entries) }

// At returns the i-th entry in timestamp order.
func (h History) At(i int) HEntry { return h.entries[i] }

// Last returns the entry with the largest timestamp.
func (h History) Last() HEntry { return h.entries[len(h.entries)-1] }

// search returns the index of the first entry with timestamp ≥ t.
// Entries are sorted by ascending timestamp, so this is a binary search —
// histories sit on the hot path of every enumeration step.
func (h History) search(t ts.Time) int {
	return sort.Search(len(h.entries), func(i int) bool { return !h.entries[i].Time.Less(t) })
}

// Lookup returns the value at timestamp t.
func (h History) Lookup(t ts.Time) (prog.Val, bool) {
	i := h.search(t)
	if i < len(h.entries) && h.entries[i].Time.Equal(t) {
		return h.entries[i].Val, true
	}
	return 0, false
}

// Insert returns a copy of the history with a new entry. It panics if the
// timestamp is already present, which would violate Write-NA's side
// condition; callers pick fresh timestamps via gap enumeration.
func (h History) Insert(t ts.Time, v prog.Val) History {
	i := h.search(t)
	if i < len(h.entries) && h.entries[i].Time.Equal(t) {
		panic(fmt.Sprintf("core: duplicate timestamp %v in history", t))
	}
	out := make([]HEntry, len(h.entries)+1)
	copy(out, h.entries[:i])
	out[i] = HEntry{Time: t, Val: v}
	copy(out[i+1:], h.entries[i:])
	return History{entries: out}
}

// ReadableFrom returns the entries visible to a thread whose frontier for
// this location is f: all entries with timestamp ≥ f (Read-NA). The
// returned slice aliases the history's internal storage, which is shared
// across cloned machines — callers must treat it as read-only.
func (h History) ReadableFrom(f ts.Time) []HEntry {
	return h.entries[h.search(f):]
}

// Gaps enumerates candidate timestamps for a new write by a thread whose
// frontier for this location is f: one timestamp strictly inside every gap
// between consecutive existing entries above f, plus one beyond the last
// entry. This is a finite, faithful enumeration of Write-NA's choices — Q
// is dense, so only the *position* of the new timestamp relative to
// existing entries matters.
func (h History) Gaps(f ts.Time) []ts.Time {
	// Entries strictly greater than f start at the search index (plus one
	// if the entry there is exactly f).
	i := h.search(f)
	if i < len(h.entries) && h.entries[i].Time.Equal(f) {
		i++
	}
	above := h.entries[i:]
	out := make([]ts.Time, 0, len(above)+1)
	lo := f
	for _, e := range above {
		out = append(out, ts.Between(lo, e.Time))
		lo = e.Time
	}
	out = append(out, ts.After(lo))
	return out
}

// Frontier maps nonatomic locations to timestamps. The zero timestamp is
// the default (all frontiers start at the initial writes, §3.1), so absent
// keys read as ts.Zero.
type Frontier map[prog.Loc]ts.Time

// Get returns the frontier timestamp for a location.
func (f Frontier) Get(l prog.Loc) ts.Time {
	if t, ok := f[l]; ok {
		return t
	}
	return ts.Zero
}

// Clone returns an independent copy.
func (f Frontier) Clone() Frontier {
	out := make(Frontier, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// Join returns F1 ⊔ F2, the pointwise-later frontier (fig. 1).
func (f Frontier) Join(g Frontier) Frontier {
	out := f.Clone()
	for k, v := range g {
		out[k] = out.Get(k).Max(v)
	}
	return out
}

// AtLeast reports whether f(l) ≥ g(l) for every location (pointwise ≥ on
// the locations present in either). Used by tests of lemmas 21/22.
func (f Frontier) AtLeast(g Frontier) bool {
	for k, v := range g {
		if f.Get(k).Less(v) {
			return false
		}
	}
	return true
}

// AtomicCell is the store contents of an atomic location: (FA, x).
type AtomicCell struct {
	F Frontier
	V prog.Val
}

// Clone returns an independent copy.
func (c AtomicCell) Clone() AtomicCell {
	return AtomicCell{F: c.F.Clone(), V: c.V}
}

// ThreadCtx pairs a thread's frontier with its expression state (fig. 1a's
// P ::= i ↦ (F, e)).
type ThreadCtx struct {
	Frontier Frontier
	State    prog.ThreadState
}

// Clone returns an independent copy.
func (t ThreadCtx) Clone() ThreadCtx {
	return ThreadCtx{Frontier: t.Frontier.Clone(), State: t.State.Clone()}
}

// Machine is a machine configuration M = ⟨S, P⟩. The RA component is the
// §10 release-acquire extension (see ra.go).
type Machine struct {
	Prog    *prog.Program
	NA      map[prog.Loc]History
	AT      map[prog.Loc]AtomicCell
	RA      map[prog.Loc]RAHistory
	Threads []ThreadCtx
}

// NewMachine returns the initial machine state M0 for a program: every
// nonatomic location has the single initial write at timestamp 0, every
// atomic location holds (F0, v0), and every thread starts with the zero
// frontier (§3.1).
func NewMachine(p *prog.Program) *Machine {
	m := &Machine{
		Prog: p,
		NA:   map[prog.Loc]History{},
		AT:   map[prog.Loc]AtomicCell{},
		RA:   map[prog.Loc]RAHistory{},
	}
	for l, k := range p.Locs {
		switch k {
		case prog.Atomic:
			m.AT[l] = AtomicCell{F: Frontier{}, V: prog.V0}
		case prog.ReleaseAcquire:
			m.RA[l] = NewRAHistory()
		default:
			m.NA[l] = NewHistory()
		}
	}
	for range p.Threads {
		m.Threads = append(m.Threads, ThreadCtx{Frontier: Frontier{}, State: prog.NewThreadState()})
	}
	return m
}

// Clone returns a deep copy of the machine. Histories are immutable
// (Insert copies), so the entry slices may be shared.
func (m *Machine) Clone() *Machine {
	out := &Machine{
		Prog: m.Prog,
		NA:   make(map[prog.Loc]History, len(m.NA)),
		AT:   make(map[prog.Loc]AtomicCell, len(m.AT)),
		RA:   make(map[prog.Loc]RAHistory, len(m.RA)),
	}
	for k, v := range m.NA {
		out.NA[k] = v
	}
	for k, v := range m.AT {
		out.AT[k] = v.Clone()
	}
	for k, v := range m.RA {
		out.RA[k] = v
	}
	out.Threads = make([]ThreadCtx, len(m.Threads))
	for i, t := range m.Threads {
		out.Threads[i] = t.Clone()
	}
	return out
}

// Halted reports whether every thread has run to completion.
func (m *Machine) Halted() (bool, error) {
	for i := range m.Threads {
		_, pend, err := prog.StepSilent(m.Prog.Threads[i].Code, m.Threads[i].State, MaxSilentSteps)
		if err != nil {
			return false, err
		}
		if pend.Kind != prog.OpHalted {
			return false, nil
		}
	}
	return true, nil
}

// MaxSilentSteps bounds silent stepping per transition; litmus programs
// are tiny, so hitting this means a divergent silent loop.
const MaxSilentSteps = 10_000

// Key returns a canonical string for the machine state. Timestamps are
// ordinal-renamed per location (timestamps of distinct locations never
// interact in the semantics), which lets exploration treat states that
// differ only in the concrete rationals as identical. Timestamped
// locations are the nonatomic and release-acquire ones; their
// timestamps appear in histories, thread frontiers, atomic-cell
// frontiers, and RA messages' published frontiers.
func (m *Machine) Key() string {
	timestamped := append(m.Prog.NonAtomicLocs(), m.Prog.RALocs()...)
	rename := map[prog.Loc]map[string]int{}
	for _, l := range timestamped {
		var all []ts.Time
		if h, ok := m.NA[l]; ok {
			for i := 0; i < h.Len(); i++ {
				all = append(all, h.At(i).Time)
			}
		}
		if h, ok := m.RA[l]; ok {
			for i := 0; i < h.Len(); i++ {
				all = append(all, h.At(i).Time)
			}
		}
		for _, t := range m.Threads {
			all = append(all, t.Frontier.Get(l))
		}
		for _, c := range m.AT {
			all = append(all, c.F.Get(l))
		}
		for _, h := range m.RA {
			for i := 0; i < h.Len(); i++ {
				all = append(all, h.At(i).F.Get(l))
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
		idx := map[string]int{}
		n := 0
		for _, t := range all {
			s := t.String()
			if _, ok := idx[s]; !ok {
				idx[s] = n
				n++
			}
		}
		rename[l] = idx
	}
	ord := func(l prog.Loc, t ts.Time) int { return rename[l][t.String()] }
	frontierKey := func(b *strings.Builder, f Frontier) {
		for _, fl := range timestamped {
			fmt.Fprintf(b, "%d,", ord(fl, f.Get(fl)))
		}
	}

	var b strings.Builder
	for _, l := range m.Prog.NonAtomicLocs() {
		h := m.NA[l]
		fmt.Fprintf(&b, "%s:[", l)
		for i := 0; i < h.Len(); i++ {
			e := h.At(i)
			fmt.Fprintf(&b, "%d=%d,", ord(l, e.Time), e.Val)
		}
		b.WriteString("];")
	}
	for _, l := range m.Prog.RALocs() {
		h := m.RA[l]
		fmt.Fprintf(&b, "%s:ra[", l)
		for i := 0; i < h.Len(); i++ {
			e := h.At(i)
			fmt.Fprintf(&b, "%d=%d<", ord(l, e.Time), e.Val)
			frontierKey(&b, e.F)
			b.WriteString(">,")
		}
		b.WriteString("];")
	}
	for _, l := range m.Prog.AtomicLocs() {
		c := m.AT[l]
		fmt.Fprintf(&b, "%s:(%d|", l, c.V)
		frontierKey(&b, c.F)
		b.WriteString(");")
	}
	for i, t := range m.Threads {
		fmt.Fprintf(&b, "T%d:%s<", i, t.State.Key())
		frontierKey(&b, t.Frontier)
		b.WriteString(">;")
	}
	return b.String()
}

// FinalValue returns the "latest" value of a location: the entry with the
// largest timestamp for nonatomic and release-acquire locations, the cell
// value for atomic ones. This is the observable final memory used in
// outcomes, and it agrees with the axiomatic model's co-maximal write
// (coΣ orders timestamped writes by timestamp, §6.1).
func (m *Machine) FinalValue(l prog.Loc) prog.Val {
	switch {
	case m.Prog.IsAtomic(l):
		return m.AT[l].V
	case m.Prog.IsRA(l):
		return m.RA[l].Last().Val
	default:
		return m.NA[l].Last().Val
	}
}
