package core

import (
	"fmt"

	"localdrf/internal/prog"
	"localdrf/internal/ts"
)

// Transition is one Memory machine step (fig. 1b) together with the
// metadata the local-DRF machinery needs: which thread moved, what action
// it performed, the timestamp involved (nonatomic operations only) and
// whether the transition was weak (def. 6).
type Transition struct {
	Thread  int
	IsWrite bool
	Loc     prog.Loc
	Val     prog.Val
	Atomic  bool
	// RA marks release-acquire operations (§10 extension); these also
	// set Atomic (they are synchronisation accesses and never race).
	RA bool
	// Time is the history timestamp read from / written to (nonatomic
	// and release-acquire operations).
	Time ts.Time
	// Weak marks weak transitions per def. 6: a nonatomic read that does
	// not witness the latest write, or a nonatomic write that is not the
	// latest write.
	Weak bool
	// FrontierBefore and FrontierAfter snapshot the acting thread's
	// frontier around the step (F(T) and F′(T) in the appendix proofs).
	FrontierBefore Frontier
	FrontierAfter  Frontier
	// After is the machine state the transition leads to.
	After *Machine
}

func (t Transition) String() string {
	op := "read"
	if t.IsWrite {
		op = "write"
	}
	kind := "na"
	if t.Atomic {
		kind = "at"
	}
	if t.RA {
		kind = "ra"
	}
	w := ""
	if t.Weak {
		w = " (weak)"
	}
	return fmt.Sprintf("T%d %s[%s] %s=%d @%v%s", t.Thread, op, kind, t.Loc, t.Val, t.Time, w)
}

// Conflicts reports whether two transitions conflict (def. 9): same
// nonatomic location and at least one is a write.
func (t Transition) Conflicts(u Transition) bool {
	return !t.Atomic && !u.Atomic && t.Loc == u.Loc && (t.IsWrite || u.IsWrite)
}

// Steps enumerates every Memory transition available from m: for each
// non-halted thread, the silent prefix is applied (Silent steps commute
// with everything and touch no memory), and then each choice the relevant
// memory-operation rule offers becomes one Transition.
func (m *Machine) Steps() ([]Transition, error) {
	var out []Transition
	for i := range m.Threads {
		ts, err := m.StepsOf(i)
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	return out, nil
}

// StepsOf enumerates the Memory transitions available to thread i.
func (m *Machine) StepsOf(i int) ([]Transition, error) {
	code := m.Prog.Threads[i].Code
	tc := m.Threads[i]
	st, pend, err := prog.StepSilent(code, tc.State, MaxSilentSteps)
	if err != nil {
		return nil, err
	}
	switch pend.Kind {
	case prog.OpHalted:
		return nil, nil
	case prog.OpRead:
		switch {
		case m.Prog.IsAtomic(pend.Loc):
			return []Transition{m.readAT(i, st, pend)}, nil
		case m.Prog.IsRA(pend.Loc):
			return m.readRA(i, st, pend), nil
		default:
			return m.readNA(i, st, pend), nil
		}
	case prog.OpWrite:
		switch {
		case m.Prog.IsAtomic(pend.Loc):
			return []Transition{m.writeAT(i, st, pend)}, nil
		case m.Prog.IsRA(pend.Loc):
			return m.writeRA(i, st, pend), nil
		default:
			return m.writeNA(i, st, pend), nil
		}
	}
	return nil, fmt.Errorf("core: unknown pending kind %v", pend.Kind)
}

// readNA implements Read-NA: the thread may read any history entry not
// older than its frontier. One Transition per eligible entry.
func (m *Machine) readNA(i int, st prog.ThreadState, pend prog.Pending) []Transition {
	h := m.NA[pend.Loc]
	f := m.Threads[i].Frontier
	last := h.Last().Time
	var out []Transition
	for _, e := range h.ReadableFrom(f.Get(pend.Loc)) {
		next := m.Clone()
		next.Threads[i].State = prog.ApplyRead(st, pend, e.Val)
		// Frontier unchanged: Read-NA is H;F → H;F.
		out = append(out, Transition{
			Thread:         i,
			IsWrite:        false,
			Loc:            pend.Loc,
			Val:            e.Val,
			Time:           e.Time,
			Weak:           !e.Time.Equal(last),
			FrontierBefore: f.Clone(),
			FrontierAfter:  f.Clone(),
			After:          next,
		})
	}
	return out
}

// writeNA implements Write-NA: the new timestamp must be fresh and
// strictly later than the thread's frontier — but not necessarily later
// than everything in the history. One Transition per gap.
func (m *Machine) writeNA(i int, st prog.ThreadState, pend prog.Pending) []Transition {
	h := m.NA[pend.Loc]
	f := m.Threads[i].Frontier
	last := h.Last().Time
	var out []Transition
	for _, t := range h.Gaps(f.Get(pend.Loc)) {
		next := m.Clone()
		next.NA[pend.Loc] = h.Insert(t, pend.Val)
		nf := f.Clone()
		nf[pend.Loc] = t
		next.Threads[i].Frontier = nf
		next.Threads[i].State = prog.ApplyWrite(st)
		out = append(out, Transition{
			Thread:         i,
			IsWrite:        true,
			Loc:            pend.Loc,
			Val:            pend.Val,
			Time:           t,
			Weak:           !last.Less(t),
			FrontierBefore: f.Clone(),
			FrontierAfter:  nf.Clone(),
			After:          next,
		})
	}
	return out
}

// readAT implements Read-AT: deterministic; the location's frontier is
// merged into the thread's.
func (m *Machine) readAT(i int, st prog.ThreadState, pend prog.Pending) Transition {
	cell := m.AT[pend.Loc]
	f := m.Threads[i].Frontier
	nf := f.Join(cell.F)
	next := m.Clone()
	next.Threads[i].Frontier = nf
	next.Threads[i].State = prog.ApplyRead(st, pend, cell.V)
	return Transition{
		Thread:         i,
		IsWrite:        false,
		Loc:            pend.Loc,
		Val:            cell.V,
		Atomic:         true,
		FrontierBefore: f.Clone(),
		FrontierAfter:  nf.Clone(),
		After:          next,
	}
}

// writeAT implements Write-AT: deterministic; frontiers of thread and
// location are merged and both updated.
func (m *Machine) writeAT(i int, st prog.ThreadState, pend prog.Pending) Transition {
	cell := m.AT[pend.Loc]
	f := m.Threads[i].Frontier
	nf := f.Join(cell.F)
	next := m.Clone()
	next.AT[pend.Loc] = AtomicCell{F: nf.Clone(), V: pend.Val}
	next.Threads[i].Frontier = nf
	next.Threads[i].State = prog.ApplyWrite(st)
	return Transition{
		Thread:         i,
		IsWrite:        true,
		Loc:            pend.Loc,
		Val:            pend.Val,
		Atomic:         true,
		FrontierBefore: f.Clone(),
		FrontierAfter:  nf.Clone(),
		After:          next,
	}
}

// StrongStepsOf enumerates only the non-weak transitions of thread i;
// lemma 24 guarantees this is nonempty whenever StepsOf is.
func (m *Machine) StrongStepsOf(i int) ([]Transition, error) {
	all, err := m.StepsOf(i)
	if err != nil {
		return nil, err
	}
	var out []Transition
	for _, t := range all {
		if !t.Weak {
			out = append(out, t)
		}
	}
	return out, nil
}
