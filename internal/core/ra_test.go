package core

import (
	"testing"

	"localdrf/internal/prog"
	"localdrf/internal/ts"
)

func TestRAHistoryBasics(t *testing.T) {
	h := NewRAHistory()
	if h.Len() != 1 || h.Last().Val != 0 || !h.Last().Time.Equal(ts.Zero) {
		t.Fatalf("initial RA history = %+v", h)
	}
	h = h.Insert(RAEntry{Time: ts.FromInt(2), Val: 20, F: Frontier{}})
	h = h.Insert(RAEntry{Time: ts.FromInt(1), Val: 10, F: Frontier{}})
	if h.Len() != 3 || h.At(1).Val != 10 || h.At(2).Val != 20 {
		t.Fatalf("RA history not sorted: %+v", h)
	}
	if got := len(h.ReadableFrom(ts.FromInt(1))); got != 2 {
		t.Fatalf("ReadableFrom(1) = %d entries, want 2", got)
	}
	if got := len(h.Gaps(ts.Zero)); got != 3 {
		t.Fatalf("Gaps(0) = %d, want 3", got)
	}
}

func TestRAHistoryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate RA timestamp did not panic")
		}
	}()
	NewRAHistory().Insert(RAEntry{Time: ts.Zero, Val: 1})
}

// Message passing through an RA flag: the acquire read joins the
// publisher's frontier, so the data write becomes visible.
func TestRAMessagePassing(t *testing.T) {
	p := prog.NewProgram("MP-ra").
		Vars("x").
		RAs("F").
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").Load("r0", "F").Load("r1", "x").Done().
		MustBuild()
	m := NewMachine(p)
	// P0: x=1; F=1.
	s, _ := m.StepsOf(0)
	m = s[0].After
	s, _ = m.StepsOf(0)
	if len(s) != 1 {
		t.Fatalf("single gap expected for first RA write, got %d", len(s))
	}
	if !s[0].RA || !s[0].Atomic {
		t.Fatalf("RA write not flagged: %+v", s[0])
	}
	m = s[0].After
	// P1: read F → two messages visible (init 0 and the new 1).
	s, _ = m.StepsOf(1)
	if len(s) != 2 {
		t.Fatalf("reader should see 2 messages, got %d", len(s))
	}
	var sawOne bool
	for _, tr := range s {
		if tr.Val == 1 {
			sawOne = true
			// After acquiring the message, only x=1 is visible.
			s2, _ := tr.After.StepsOf(1)
			if len(s2) != 1 || s2[0].Val != 1 {
				t.Fatalf("after acquiring F=1, reads of x = %v", s2)
			}
		}
		if tr.Val == 0 && !tr.Weak {
			t.Error("reading the stale initial message should be weak")
		}
	}
	if !sawOne {
		t.Fatal("message F=1 not offered")
	}
}

// The RA write does not acquire: writing to an RA location must not pull
// the previous message's frontier into the writer.
func TestRAWriteDoesNotAcquire(t *testing.T) {
	p := prog.NewProgram("ra-release-only").
		Vars("x").
		RAs("F").
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").StoreI("F", 2).Load("r1", "x").Done().
		MustBuild()
	m := NewMachine(p)
	// P0 runs fully.
	s, _ := m.StepsOf(0)
	m = s[0].After
	s, _ = m.StepsOf(0)
	m = s[0].After
	// P1 writes F (any gap): its frontier for x must stay 0…
	s, _ = m.StepsOf(1)
	for _, wr := range s {
		if !wr.FrontierAfter.Get("x").Equal(ts.Zero) {
			t.Fatal("RA write acquired the location's previous message frontier")
		}
		// …so the stale read of x remains possible.
		reads, _ := wr.After.StepsOf(1)
		vals := map[prog.Val]bool{}
		for _, r := range reads {
			vals[r.Val] = true
		}
		if !vals[0] {
			t.Fatal("stale read of x should still be possible after an RA write")
		}
	}
}

// RA reads advance the reader's frontier for the location itself
// (per-location coherence): after reading a message, earlier messages
// are no longer visible.
func TestRAReadCoherence(t *testing.T) {
	p := prog.NewProgram("ra-corr").
		RAs("X").
		Thread("W").StoreI("X", 1).StoreI("X", 2).Done().
		Thread("R").Load("r0", "X").Load("r1", "X").Done().
		MustBuild()
	m := NewMachine(p)
	// W writes 1 then 2 (same thread: timestamps ordered).
	s, _ := m.StepsOf(0)
	m = s[0].After
	s, _ = m.StepsOf(0)
	var latest *Machine
	for _, tr := range s {
		if !tr.Weak {
			latest = tr.After
		}
	}
	m = latest
	// R reads 2 first…
	s, _ = m.StepsOf(1)
	for _, tr := range s {
		if tr.Val != 2 {
			continue
		}
		// …then may only read 2 again.
		s2, _ := tr.After.StepsOf(1)
		if len(s2) != 1 || s2[0].Val != 2 {
			t.Fatalf("after reading X=2, visible reads = %v (coherence broken)", s2)
		}
	}
}

func TestRAKeyCanonicalisation(t *testing.T) {
	p := prog.NewProgram("ra-key").
		RAs("F").
		Thread("P0").StoreI("F", 1).Done().
		MustBuild()
	m1 := NewMachine(p)
	m2 := NewMachine(p)
	e1 := RAEntry{Time: ts.New(1, 3), Val: 1, F: Frontier{"F": ts.New(1, 3)}}
	e2 := RAEntry{Time: ts.FromInt(5), Val: 1, F: Frontier{"F": ts.FromInt(5)}}
	m1.RA["F"] = m1.RA["F"].Insert(e1)
	m2.RA["F"] = m2.RA["F"].Insert(e2)
	m1.Threads[0].Frontier["F"] = e1.Time
	m2.Threads[0].Frontier["F"] = e2.Time
	m1.Threads[0].State.PC = 1
	m2.Threads[0].State.PC = 1
	if m1.Key() != m2.Key() {
		t.Fatalf("order-isomorphic RA states hash differently:\n%s\n%s", m1.Key(), m2.Key())
	}
}

func TestRAFinalValue(t *testing.T) {
	p := prog.NewProgram("ra-final").
		RAs("F").
		Thread("P0").StoreI("F", 7).Done().
		MustBuild()
	m := NewMachine(p)
	s, _ := m.StepsOf(0)
	if got := s[0].After.FinalValue("F"); got != 7 {
		t.Fatalf("FinalValue = %d, want 7", got)
	}
}
