package core

import (
	"sort"

	"encoding/binary"

	"localdrf/internal/prog"
	"localdrf/internal/ts"
)

// This file is the binary counterpart of Machine.Key: a compact canonical
// encoding of a machine state for hash interning by the exploration
// engine. Two states of the same program encode equal iff they are
// identical up to per-location renaming of the concrete rational
// timestamps — the same equivalence Key computes, at a fraction of the
// cost (no fmt, no per-timestamp string allocation).
//
// Layout (all integers varint/uvarint; field counts are fixed by the
// program, so the encoding is self-delimiting):
//
//	for each nonatomic location (sorted):      len, then (time-ordinal, value) per entry
//	for each release-acquire location (sorted): len, then (time-ordinal, value, frontier) per entry
//	for each atomic location (sorted):          value, frontier
//	for each thread:                            thread state (pc, nonzero regs), frontier
//
// where a frontier is one time-ordinal per timestamped location, and a
// time-ordinal is the rank of the timestamp among all timestamps of that
// location occurring anywhere in the state (histories, thread frontiers,
// atomic-cell frontiers, RA published frontiers).

// timeTable is one location's ordinal renaming: the sorted, deduplicated
// timestamps occurring for that location.
type timeTable struct {
	times []ts.Time
}

func (tt *timeTable) add(t ts.Time) { tt.times = append(tt.times, t) }

func (tt *timeTable) seal() {
	sort.Slice(tt.times, func(i, j int) bool { return tt.times[i].Less(tt.times[j]) })
	out := tt.times[:0]
	for i, t := range tt.times {
		if i == 0 || !out[len(out)-1].Equal(t) {
			out = append(out, t)
		}
	}
	tt.times = out
}

func (tt *timeTable) ord(t ts.Time) uint64 {
	return uint64(sort.Search(len(tt.times), func(i int) bool { return !tt.times[i].Less(t) }))
}

// AppendCanonical appends the canonical binary encoding of the machine
// state to dst and returns the extended slice. dst may be a reused
// buffer; pass nil to allocate.
func (m *Machine) AppendCanonical(dst []byte) []byte {
	// NonAtomicLocs returns every non-SC-atomic location, including the
	// release-acquire ones; filter to the truly nonatomic locations so
	// each RA location gets exactly one ordinal table and one frontier
	// slot (this is the per-state hot path).
	raLocs := m.Prog.RALocs()
	atLocs := m.Prog.AtomicLocs()
	naLocs := make([]prog.Loc, 0, len(m.Prog.Locs))
	for _, l := range m.Prog.NonAtomicLocs() {
		if !m.Prog.IsRA(l) {
			naLocs = append(naLocs, l)
		}
	}
	timestamped := make([]prog.Loc, 0, len(naLocs)+len(raLocs))
	timestamped = append(append(timestamped, naLocs...), raLocs...)

	tables := make([]timeTable, len(timestamped))
	for i, l := range timestamped {
		tt := &tables[i]
		if h, ok := m.NA[l]; ok {
			for k := 0; k < h.Len(); k++ {
				tt.add(h.At(k).Time)
			}
		}
		if h, ok := m.RA[l]; ok {
			for k := 0; k < h.Len(); k++ {
				tt.add(h.At(k).Time)
			}
		}
		for _, t := range m.Threads {
			tt.add(t.Frontier.Get(l))
		}
		for _, c := range m.AT {
			tt.add(c.F.Get(l))
		}
		for _, h := range m.RA {
			for k := 0; k < h.Len(); k++ {
				tt.add(h.At(k).F.Get(l))
			}
		}
		tt.seal()
	}
	appendFrontier := func(dst []byte, f Frontier) []byte {
		for i, l := range timestamped {
			dst = binary.AppendUvarint(dst, tables[i].ord(f.Get(l)))
		}
		return dst
	}

	for i, l := range naLocs {
		h := m.NA[l]
		dst = binary.AppendUvarint(dst, uint64(h.Len()))
		for k := 0; k < h.Len(); k++ {
			e := h.At(k)
			dst = binary.AppendUvarint(dst, tables[i].ord(e.Time))
			dst = binary.AppendVarint(dst, int64(e.Val))
		}
	}
	for i, l := range raLocs {
		h := m.RA[l]
		tt := &tables[len(naLocs)+i]
		dst = binary.AppendUvarint(dst, uint64(h.Len()))
		for k := 0; k < h.Len(); k++ {
			e := h.At(k)
			dst = binary.AppendUvarint(dst, tt.ord(e.Time))
			dst = binary.AppendVarint(dst, int64(e.Val))
			dst = appendFrontier(dst, e.F)
		}
	}
	for _, l := range atLocs {
		c := m.AT[l]
		dst = binary.AppendVarint(dst, int64(c.V))
		dst = appendFrontier(dst, c.F)
	}
	for _, t := range m.Threads {
		dst = t.State.AppendCanonical(dst)
		dst = appendFrontier(dst, t.Frontier)
	}
	return dst
}
