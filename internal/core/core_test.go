package core

import (
	"testing"
	"testing/quick"

	"localdrf/internal/prog"
	"localdrf/internal/ts"
)

func mp() *prog.Program {
	return prog.NewProgram("MP").
		Vars("x").
		Atomics("F").
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").Load("r0", "F").Load("r1", "x").Done().
		MustBuild()
}

func TestInitialMachine(t *testing.T) {
	m := NewMachine(mp())
	h := m.NA["x"]
	if h.Len() != 1 {
		t.Fatalf("initial history length = %d, want 1", h.Len())
	}
	if e := h.At(0); !e.Time.Equal(ts.Zero) || e.Val != prog.V0 {
		t.Fatalf("initial entry = %+v, want (0, v0)", e)
	}
	cell := m.AT["F"]
	if cell.V != prog.V0 {
		t.Fatalf("initial atomic value = %d, want v0", cell.V)
	}
	if halted, _ := m.Halted(); halted {
		t.Fatal("fresh machine reported halted")
	}
}

func TestHistoryInsertSorted(t *testing.T) {
	h := NewHistory()
	h = h.Insert(ts.FromInt(2), 20)
	h = h.Insert(ts.FromInt(1), 10)
	h = h.Insert(ts.New(3, 2), 15)
	want := []prog.Val{0, 10, 15, 20}
	if h.Len() != len(want) {
		t.Fatalf("len = %d", h.Len())
	}
	for i, v := range want {
		if h.At(i).Val != v {
			t.Fatalf("entry %d = %d, want %d", i, h.At(i).Val, v)
		}
	}
}

func TestHistoryInsertDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate timestamp insert did not panic")
		}
	}()
	NewHistory().Insert(ts.Zero, 1)
}

func TestReadableFrom(t *testing.T) {
	h := NewHistory().Insert(ts.FromInt(1), 10).Insert(ts.FromInt(2), 20)
	if got := h.ReadableFrom(ts.Zero); len(got) != 3 {
		t.Fatalf("ReadableFrom(0) = %d entries, want 3", len(got))
	}
	if got := h.ReadableFrom(ts.FromInt(1)); len(got) != 2 {
		t.Fatalf("ReadableFrom(1) = %d entries, want 2", len(got))
	}
	if got := h.ReadableFrom(ts.FromInt(2)); len(got) != 1 || got[0].Val != 20 {
		t.Fatalf("ReadableFrom(2) = %v", got)
	}
}

func TestGaps(t *testing.T) {
	h := NewHistory().Insert(ts.FromInt(2), 20).Insert(ts.FromInt(4), 40)
	// Frontier 0: gaps are (0,2), (2,4), (4,∞) → 3 candidates.
	gaps := h.Gaps(ts.Zero)
	if len(gaps) != 3 {
		t.Fatalf("gaps = %v, want 3 candidates", gaps)
	}
	if !ts.Zero.Less(gaps[0]) || !gaps[0].Less(ts.FromInt(2)) {
		t.Errorf("gap 0 = %v, want in (0,2)", gaps[0])
	}
	if !ts.FromInt(2).Less(gaps[1]) || !gaps[1].Less(ts.FromInt(4)) {
		t.Errorf("gap 1 = %v, want in (2,4)", gaps[1])
	}
	if !ts.FromInt(4).Less(gaps[2]) {
		t.Errorf("gap 2 = %v, want > 4", gaps[2])
	}
	// Frontier 4: only the beyond-last gap remains.
	if gaps := h.Gaps(ts.FromInt(4)); len(gaps) != 1 {
		t.Fatalf("gaps above frontier 4 = %v, want 1", gaps)
	}
	// Frontier strictly between entries: gap below next entry plus beyond.
	if gaps := h.Gaps(ts.FromInt(3)); len(gaps) != 2 {
		t.Fatalf("gaps above frontier 3 = %v, want 2", gaps)
	}
}

func TestReadNAChoicesAndWeakness(t *testing.T) {
	p := prog.NewProgram("r").
		Vars("x").
		Thread("W").StoreI("x", 1).Done().
		Thread("R").Load("r0", "x").Done().
		MustBuild()
	m := NewMachine(p)
	// Let W write first.
	steps, err := m.StepsOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 {
		t.Fatalf("writer steps = %d, want 1 (single gap above initial)", len(steps))
	}
	m = steps[0].After
	// Reader may now read initial 0 (weak) or the new 1 (strong).
	reads, err := m.StepsOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 2 {
		t.Fatalf("reader steps = %d, want 2", len(reads))
	}
	byVal := map[prog.Val]Transition{}
	for _, r := range reads {
		byVal[r.Val] = r
	}
	if tr, ok := byVal[0]; !ok || !tr.Weak {
		t.Errorf("read of stale 0 should exist and be weak: %+v", byVal)
	}
	if tr, ok := byVal[1]; !ok || tr.Weak {
		t.Errorf("read of latest 1 should exist and be strong: %+v", byVal)
	}
}

func TestWriteNAWeakness(t *testing.T) {
	p := prog.NewProgram("ww").
		Vars("x").
		Thread("A").StoreI("x", 1).Done().
		Thread("B").StoreI("x", 2).Done().
		MustBuild()
	m := NewMachine(p)
	steps, err := m.StepsOf(0)
	if err != nil {
		t.Fatal(err)
	}
	m = steps[0].After
	// B's frontier is still 0, so it may write before A's entry (weak) or
	// after it (strong).
	writes, err := m.StepsOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(writes) != 2 {
		t.Fatalf("writer B steps = %d, want 2", len(writes))
	}
	weak, strong := 0, 0
	for _, w := range writes {
		if w.Weak {
			weak++
		} else {
			strong++
		}
	}
	if weak != 1 || strong != 1 {
		t.Fatalf("weak=%d strong=%d, want 1/1", weak, strong)
	}
}

func TestWriteNAAdvancesFrontierOnly(t *testing.T) {
	p := prog.NewProgram("w").
		Vars("x", "y").
		Thread("A").StoreI("x", 1).Done().
		MustBuild()
	m := NewMachine(p)
	steps, _ := m.StepsOf(0)
	tr := steps[0]
	if tr.FrontierAfter.Get("x").LessEq(ts.Zero) {
		t.Error("write did not advance frontier for x")
	}
	if !tr.FrontierAfter.Get("y").Equal(ts.Zero) {
		t.Error("write moved frontier of unrelated location y")
	}
}

// Message passing through an atomic location: after reading F=1, the
// reader's frontier includes the writer's x entry, so the stale read of x
// is no longer permitted. This is the Read-AT/Write-AT frontier merge in
// action, and is the semantic content of example MP.
func TestAtomicFrontierTransfer(t *testing.T) {
	m := NewMachine(mp())
	// P0: x=1 (strong gap), F=1.
	s, _ := m.StepsOf(0)
	m = s[0].After
	s, _ = m.StepsOf(0)
	m = s[0].After
	// P1: read F → must see 1 and inherit frontier.
	s, _ = m.StepsOf(1)
	if len(s) != 1 || s[0].Val != 1 || !s[0].Atomic {
		t.Fatalf("atomic read = %+v", s)
	}
	m = s[0].After
	// P1: read x → only the value 1 is visible now.
	s, _ = m.StepsOf(1)
	if len(s) != 1 {
		t.Fatalf("reads of x after sync = %d, want 1", len(s))
	}
	if s[0].Val != 1 {
		t.Fatalf("read x = %d, want 1", s[0].Val)
	}
}

// Without the atomic read, the stale read remains possible.
func TestNoSyncAllowsStaleRead(t *testing.T) {
	p := prog.NewProgram("stale").
		Vars("x").
		Thread("W").StoreI("x", 1).Done().
		Thread("R").Load("r1", "x").Done().
		MustBuild()
	m := NewMachine(p)
	s, _ := m.StepsOf(0)
	m = s[0].After
	s, _ = m.StepsOf(1)
	vals := map[prog.Val]bool{}
	for _, tr := range s {
		vals[tr.Val] = true
	}
	if !vals[0] || !vals[1] {
		t.Fatalf("visible values = %v, want both 0 and 1", vals)
	}
}

func TestAtomicWriteMergesIntoCell(t *testing.T) {
	m := NewMachine(mp())
	s, _ := m.StepsOf(0) // x=1
	m = s[0].After
	xTime := m.Threads[0].Frontier.Get("x")
	s, _ = m.StepsOf(0) // F=1
	m = s[0].After
	cell := m.AT["F"]
	if cell.V != 1 {
		t.Fatalf("cell value = %d", cell.V)
	}
	if !cell.F.Get("x").Equal(xTime) {
		t.Fatalf("cell frontier x = %v, want %v", cell.F.Get("x"), xTime)
	}
}

// Lemma 21: frontiers grow monotonically along any transition.
func TestFrontierMonotone(t *testing.T) {
	m := NewMachine(mp())
	var walk func(m *Machine, depth int)
	walk = func(m *Machine, depth int) {
		if depth > 6 {
			return
		}
		steps, err := m.Steps()
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range steps {
			if !tr.FrontierAfter.AtLeast(tr.FrontierBefore) {
				t.Fatalf("frontier shrank on %v", tr)
			}
			walk(tr.After, depth+1)
		}
	}
	walk(m, 0)
}

func TestStrongStepsNeverEmpty(t *testing.T) {
	// Lemma 24: whenever any step exists, a non-weak one does too.
	m := NewMachine(mp())
	var walk func(m *Machine, depth int)
	walk = func(m *Machine, depth int) {
		if depth > 6 {
			return
		}
		for i := range m.Threads {
			all, err := m.StepsOf(i)
			if err != nil {
				t.Fatal(err)
			}
			strong, err := m.StrongStepsOf(i)
			if err != nil {
				t.Fatal(err)
			}
			if len(all) > 0 && len(strong) == 0 {
				t.Fatalf("thread %d has steps but no strong steps", i)
			}
			for _, tr := range all {
				walk(tr.After, depth+1)
			}
		}
	}
	walk(m, 0)
}

func TestKeyCanonicalisesTimestamps(t *testing.T) {
	p := prog.NewProgram("canon").Vars("x").
		Thread("A").StoreI("x", 1).Done().
		MustBuild()
	m1 := NewMachine(p)
	m2 := NewMachine(p)
	// Manually insert the same value at different rationals, same order.
	h1 := m1.NA["x"].Insert(ts.New(1, 2), 1)
	h2 := m2.NA["x"].Insert(ts.FromInt(7), 1)
	m1.NA["x"] = h1
	m2.NA["x"] = h2
	m1.Threads[0].Frontier["x"] = ts.New(1, 2)
	m2.Threads[0].Frontier["x"] = ts.FromInt(7)
	m1.Threads[0].State.PC = 1
	m2.Threads[0].State.PC = 1
	if m1.Key() != m2.Key() {
		t.Fatalf("keys differ for order-isomorphic states:\n%s\n%s", m1.Key(), m2.Key())
	}
}

func TestKeyDistinguishesOrder(t *testing.T) {
	p := prog.NewProgram("canon2").Vars("x").
		Thread("A").Nop().Done().
		MustBuild()
	m1 := NewMachine(p)
	m2 := NewMachine(p)
	m1.NA["x"] = m1.NA["x"].Insert(ts.FromInt(1), 5).Insert(ts.FromInt(2), 6)
	m2.NA["x"] = m2.NA["x"].Insert(ts.FromInt(1), 6).Insert(ts.FromInt(2), 5)
	if m1.Key() == m2.Key() {
		t.Fatal("keys collide for differently-ordered histories")
	}
}

func TestConflicts(t *testing.T) {
	w := Transition{Loc: "x", IsWrite: true}
	r := Transition{Loc: "x", IsWrite: false}
	r2 := Transition{Loc: "y", IsWrite: false}
	at := Transition{Loc: "x", IsWrite: true, Atomic: true}
	if !w.Conflicts(r) || !r.Conflicts(w) {
		t.Error("write/read same loc should conflict")
	}
	if r.Conflicts(r) {
		t.Error("read/read should not conflict")
	}
	if w.Conflicts(r2) {
		t.Error("different locations should not conflict")
	}
	if at.Conflicts(r) {
		t.Error("atomic accesses never race")
	}
}

func TestFrontierJoinProperties(t *testing.T) {
	mk := func(a, b int64) Frontier {
		return Frontier{"x": ts.FromInt(a), "y": ts.FromInt(b)}
	}
	f := func(a1, b1, a2, b2 int8) bool {
		f1, f2 := mk(int64(a1), int64(b1)), mk(int64(a2), int64(b2))
		j := f1.Join(f2)
		// Join is an upper bound, commutative and idempotent.
		if !j.AtLeast(f1) || !j.AtLeast(f2) {
			return false
		}
		j2 := f2.Join(f1)
		return j.Get("x").Equal(j2.Get("x")) && j.Get("y").Equal(j2.Get("y")) &&
			f1.Join(f1).Get("x").Equal(f1.Get("x"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMachine(mp())
	c := m.Clone()
	c.Threads[0].Frontier["x"] = ts.FromInt(9)
	c.AT["F"] = AtomicCell{F: Frontier{"x": ts.FromInt(3)}, V: 5}
	if !m.Threads[0].Frontier.Get("x").Equal(ts.Zero) {
		t.Fatal("clone shares thread frontier")
	}
	if m.AT["F"].V != 0 {
		t.Fatal("clone shares atomic cells")
	}
}

func TestFinalValue(t *testing.T) {
	m := NewMachine(mp())
	m.NA["x"] = m.NA["x"].Insert(ts.FromInt(2), 7).Insert(ts.FromInt(1), 3)
	if got := m.FinalValue("x"); got != 7 {
		t.Fatalf("FinalValue(x) = %d, want 7 (largest timestamp)", got)
	}
	if got := m.FinalValue("F"); got != 0 {
		t.Fatalf("FinalValue(F) = %d, want 0", got)
	}
}
