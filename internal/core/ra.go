package core

// Release-acquire atomics — the extension §10 of the paper proposes
// ("release-acquire atomics would be a useful extension: they are strong
// enough to describe many parallel programming idioms, yet weak enough to
// be relatively cheaply implementable. Two routes … by extending our
// operational model with release-acquire primitives in the style of Kang
// et al."). This file takes the first route.
//
// A release-acquire location holds a history of *messages*: timestamped
// values, each carrying the frontier its writer published. The rules:
//
//	Read-RA:  a thread may read any message with timestamp ≥ its
//	          frontier for the location; its frontier is joined with the
//	          message's published frontier (acquire).
//	Write-RA: the new message's timestamp must exceed the thread's
//	          frontier for the location (fresh, as in Write-NA); the
//	          message carries the writer's updated frontier (release).
//
// Unlike the paper's SC atomics (which funnel every thread through one
// cell-wide frontier, yielding a total order), RA messages only
// synchronise writer→reader along reads-from edges. Consequently store
// buffering and IRIW relaxations are visible on RA locations while
// message passing still works — the expected release/acquire semantics.
//
// Race bookkeeping: RA accesses are synchronisation operations, so they
// never participate in data races (def. 9 concerns nonatomic locations),
// but a non-latest RA access is still recorded as weak in the def. 6
// sense so that the SC restriction (def. 7) keeps meaning "interleaving
// semantics". The DRF theorems are consequently *not* expected to extend
// verbatim to programs whose synchronisation is RA-only — see the tests
// for the precise boundary (race-free SB-over-RA exhibits non-SC
// behaviour; this is the same trade C++ makes for non-SC atomics).

import (
	"fmt"
	"sort"

	"localdrf/internal/prog"
	"localdrf/internal/ts"
)

// RAEntry is one message of a release-acquire location's history.
type RAEntry struct {
	Time ts.Time
	Val  prog.Val
	// F is the frontier published by the writing thread (including the
	// message's own timestamp for its location).
	F Frontier
}

// RAHistory is the message history of a release-acquire location, sorted
// by ascending timestamp.
type RAHistory struct {
	entries []RAEntry
}

// NewRAHistory returns the initial history: the initial write of v0 at
// timestamp 0 publishing the empty frontier (§3.1 adapted).
func NewRAHistory() RAHistory {
	return RAHistory{entries: []RAEntry{{Time: ts.Zero, Val: prog.V0, F: Frontier{}}}}
}

// Len returns the number of messages.
func (h RAHistory) Len() int { return len(h.entries) }

// At returns the i-th message in timestamp order.
func (h RAHistory) At(i int) RAEntry { return h.entries[i] }

// Last returns the message with the largest timestamp.
func (h RAHistory) Last() RAEntry { return h.entries[len(h.entries)-1] }

// search returns the index of the first message with timestamp ≥ t
// (binary search; messages are sorted by ascending timestamp).
func (h RAHistory) search(t ts.Time) int {
	return sort.Search(len(h.entries), func(i int) bool { return !h.entries[i].Time.Less(t) })
}

// Insert returns a copy with a new message, panicking on duplicate
// timestamps (Write-RA side condition).
func (h RAHistory) Insert(e RAEntry) RAHistory {
	i := h.search(e.Time)
	if i < len(h.entries) && h.entries[i].Time.Equal(e.Time) {
		panic(fmt.Sprintf("core: duplicate RA timestamp %v", e.Time))
	}
	out := make([]RAEntry, len(h.entries)+1)
	copy(out, h.entries[:i])
	out[i] = e
	copy(out[i+1:], h.entries[i:])
	return RAHistory{entries: out}
}

// ReadableFrom returns the messages visible to a thread whose frontier
// for this location is f. The returned slice aliases the history's
// internal storage, which is shared across cloned machines — callers
// must treat it as read-only.
func (h RAHistory) ReadableFrom(f ts.Time) []RAEntry {
	return h.entries[h.search(f):]
}

// Gaps enumerates candidate timestamps for a new message, exactly as for
// nonatomic histories.
func (h RAHistory) Gaps(f ts.Time) []ts.Time {
	i := h.search(f)
	if i < len(h.entries) && h.entries[i].Time.Equal(f) {
		i++
	}
	above := h.entries[i:]
	out := make([]ts.Time, 0, len(above)+1)
	lo := f
	for _, e := range above {
		out = append(out, ts.Between(lo, e.Time))
		lo = e.Time
	}
	out = append(out, ts.After(lo))
	return out
}

// readRA implements Read-RA. One transition per visible message.
func (m *Machine) readRA(i int, st prog.ThreadState, pend prog.Pending) []Transition {
	h := m.RA[pend.Loc]
	f := m.Threads[i].Frontier
	last := h.Last().Time
	var out []Transition
	for _, e := range h.ReadableFrom(f.Get(pend.Loc)) {
		nf := f.Join(e.F)
		// The message's own timestamp joins too (its writer's frontier
		// already contains it, except for the initial message).
		nf[pend.Loc] = nf.Get(pend.Loc).Max(e.Time)
		next := m.Clone()
		next.Threads[i].Frontier = nf
		next.Threads[i].State = prog.ApplyRead(st, pend, e.Val)
		out = append(out, Transition{
			Thread:         i,
			IsWrite:        false,
			Loc:            pend.Loc,
			Val:            e.Val,
			Atomic:         true,
			RA:             true,
			Time:           e.Time,
			Weak:           !e.Time.Equal(last),
			FrontierBefore: f.Clone(),
			FrontierAfter:  nf.Clone(),
			After:          next,
		})
	}
	return out
}

// writeRA implements Write-RA. One transition per gap.
func (m *Machine) writeRA(i int, st prog.ThreadState, pend prog.Pending) []Transition {
	h := m.RA[pend.Loc]
	f := m.Threads[i].Frontier
	last := h.Last().Time
	var out []Transition
	for _, t := range h.Gaps(f.Get(pend.Loc)) {
		nf := f.Clone()
		nf[pend.Loc] = t
		next := m.Clone()
		next.RA[pend.Loc] = h.Insert(RAEntry{Time: t, Val: pend.Val, F: nf.Clone()})
		next.Threads[i].Frontier = nf
		next.Threads[i].State = prog.ApplyWrite(st)
		out = append(out, Transition{
			Thread:         i,
			IsWrite:        true,
			Loc:            pend.Loc,
			Val:            pend.Val,
			Atomic:         true,
			RA:             true,
			Time:           t,
			Weak:           !last.Less(t),
			FrontierBefore: f.Clone(),
			FrontierAfter:  nf.Clone(),
			After:          next,
		})
	}
	return out
}
