package engine

// BatchQueue is a bounded FIFO hand-off queue between one producer and
// one consumer, designed for *batch* granularity: the items are meant to
// be whole buffers of work (slices of events, records, results), so the
// per-item synchronisation cost is amortised across everything inside
// the batch. The streaming monitor's parallel pipeline moves its
// per-shard event batches and clock-delta side channel through these —
// one queue per back-end, plus one in the reverse direction recycling
// spent buffers — so the hot path never performs a per-event send.
//
// The queue is a fixed-capacity ring protected by a mutex with two
// condition variables. At batch granularity (thousands of events per
// Put) the lock is touched a few hundred times per million events, which
// is noise; in exchange the queue blocks cleanly instead of spinning,
// which matters on machines with fewer cores than pipeline stages.
//
// Semantics:
//
//   - Put blocks while the queue is full (bounded memory, natural
//     backpressure) and returns false if the queue was closed.
//   - Get blocks while the queue is empty and returns ok=false only
//     after Close once every queued item has been drained.
//   - Close is called by the producer to signal end of stream; it is
//     idempotent.
//
// The zero value is not usable; create queues with NewBatchQueue.

import "sync"

// BatchQueue is a bounded single-producer single-consumer batch queue.
type BatchQueue[T any] struct {
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond
	buf      []T
	head     int // index of the oldest item
	n        int // live items
	closed   bool
	// stalls / idles count the Puts that found the ring full and the
	// Gets that found it empty — the pipeline's backpressure and underrun
	// telemetry. Counted only on the blocking path (which already takes
	// the mutex and waits), so the uncontended fast path pays nothing.
	stalls uint64
	idles  uint64
}

// NewBatchQueue returns a queue holding at most capacity items
// (capacity < 1 is treated as 1).
func NewBatchQueue[T any](capacity int) *BatchQueue[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &BatchQueue[T]{buf: make([]T, capacity)}
	q.notFull.L = &q.mu
	q.notEmpty.L = &q.mu
	return q
}

// Put appends v, blocking while the queue is full. It returns false (and
// drops v) if the queue is closed.
func (q *BatchQueue[T]) Put(v T) bool {
	q.mu.Lock()
	if q.n == len(q.buf) && !q.closed {
		q.stalls++
		for q.n == len(q.buf) && !q.closed {
			q.notFull.Wait()
		}
	}
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	q.mu.Unlock()
	q.notEmpty.Signal()
	return true
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. After Close it keeps returning queued items until the queue is
// drained, then returns ok=false.
func (q *BatchQueue[T]) Get() (T, bool) {
	q.mu.Lock()
	if q.n == 0 && !q.closed {
		q.idles++
		for q.n == 0 && !q.closed {
			q.notEmpty.Wait()
		}
	}
	var zero T
	if q.n == 0 {
		q.mu.Unlock()
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.mu.Unlock()
	q.notFull.Signal()
	return v, true
}

// Len returns the number of items currently queued. Safe from any
// goroutine; the value is a point-in-time sample (occupancy telemetry).
func (q *BatchQueue[T]) Len() int {
	q.mu.Lock()
	n := q.n
	q.mu.Unlock()
	return n
}

// Stats returns how often a Put found the ring full (producer stalled)
// and a Get found it empty (consumer idled) since creation. Safe from
// any goroutine.
func (q *BatchQueue[T]) Stats() (stalls, idles uint64) {
	q.mu.Lock()
	stalls, idles = q.stalls, q.idles
	q.mu.Unlock()
	return stalls, idles
}

// Close marks the end of the stream: subsequent Puts fail, and Gets
// drain the remaining items before reporting ok=false. Idempotent.
func (q *BatchQueue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}
