// Package engine is the shared parallel exploration engine behind every
// exhaustive search in this repository: the operational outcome
// enumeration (internal/explore), the trace scans of the race/local-DRF
// machinery (internal/race), and the hardware candidate-execution
// enumeration (internal/hw, internal/compile). It owns the three concerns
// those searches used to duplicate:
//
//   - Canonical-state identity: states are identified by a 128-bit hash
//     of a compact binary encoding (Hash, Interner), replacing the
//     fmt.Sprintf-style string keys of the seed implementation.
//
//   - Memoisation and budgets: the interner doubles as the visited set
//     and enforces MaxStates, so a runaway state space fails fast with
//     ErrStateBudget instead of exhausting memory.
//
//   - Scheduling: Run is a work-stealing frontier search over the state
//     graph — each worker owns a deque, steals when idle, and results are
//     accumulated in per-worker sinks that the caller merges after the
//     barrier. Because the visited set makes each distinct state expand
//     exactly once and outcome accumulation is a set union, the merged
//     result is deterministic at any parallelism. ForEach is the flat
//     counterpart for embarrassingly parallel sweeps (litmus corpus runs,
//     hardware choice-space partitions).
//
// A new semantics plugs in by providing two functions: Encode (append a
// canonical binary encoding of a state — equal encodings iff the states
// are semantically identical) and Expand (enumerate successor states,
// recording any terminal result in a per-worker sink).
package engine

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"localdrf/internal/obs"
)

// Obs is the engine's process-wide search telemetry: how many distinct
// canonical states searches have interned, how many frontier tasks were
// stolen versus popped locally, and how many searches ran. Workers count
// in plain locals and publish once at exit, so the telemetry costs
// nothing per state. Snapshot it before and after a search (or use
// obs.Snapshot.Delta) to attribute counts to one run.
var Obs = obs.NewRegistry()

var (
	obsSearches   = Obs.Counter("engine.searches")
	obsStates     = Obs.Counter("engine.states_interned")
	obsExpansions = Obs.Counter("engine.expansions")
	obsSteals     = Obs.Counter("engine.steals")
)

// DefaultMaxStates bounds exploration; litmus-scale programs stay far
// below it.
const DefaultMaxStates = 2_000_000

// ErrStateBudget is returned when a search exceeds its distinct-state
// budget.
var ErrStateBudget = errors.New("engine: state budget exceeded")

// Options configures a frontier search.
type Options struct {
	// Parallelism is the number of worker goroutines (0 means
	// GOMAXPROCS). Results are independent of the setting.
	Parallelism int
	// MaxStates bounds the number of distinct canonical states visited
	// (0 means DefaultMaxStates).
	MaxStates int
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) maxStates() int {
	if o.MaxStates > 0 {
		return o.MaxStates
	}
	return DefaultMaxStates
}

// Config describes one search over states of type S.
type Config[S any] struct {
	Options
	// Encode appends the canonical binary encoding of s to buf (which may
	// be reused across calls) and returns the extended slice. Two states
	// must encode equal iff they are semantically identical.
	Encode func(s S, buf []byte) []byte
	// Expand enumerates the successors of s via emit and records any
	// terminal result of s into the caller's sink for the given worker
	// index (0 ≤ worker < Parallelism). Expand is called exactly once per
	// distinct state; calls for different states may run concurrently on
	// different workers.
	Expand func(worker int, s S, emit func(S)) error
}

// queue is one worker's deque of pending states. The owner pushes and
// pops at the tail; idle workers steal from the head (an index bump, so
// stealing is O(1) however long the queue grows). A plain mutex is
// enough here: expansion cost (machine cloning, history copies) dwarfs
// queue traffic by orders of magnitude.
type queue[S any] struct {
	mu   sync.Mutex
	head int // buf[:head] has been stolen; live items are buf[head:]
	buf  []S
}

func (q *queue[S]) push(s S) {
	q.mu.Lock()
	if q.head == len(q.buf) {
		q.head = 0
		q.buf = q.buf[:0]
	}
	q.buf = append(q.buf, s)
	q.mu.Unlock()
}

func (q *queue[S]) pop() (S, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero S
	if q.head == len(q.buf) {
		return zero, false
	}
	s := q.buf[len(q.buf)-1]
	q.buf[len(q.buf)-1] = zero
	q.buf = q.buf[:len(q.buf)-1]
	return s, true
}

func (q *queue[S]) steal() (S, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero S
	if q.head == len(q.buf) {
		return zero, false
	}
	s := q.buf[q.head]
	q.buf[q.head] = zero
	q.head++
	return s, true
}

// Run explores the state graph reachable from roots: every distinct state
// (by canonical encoding) is expanded exactly once, across cfg.Parallelism
// work-stealing workers. It returns the number of distinct states visited
// and the first error any expansion produced (ErrStateBudget when the
// state budget is exceeded).
func Run[S any](cfg Config[S], roots ...S) (int, error) {
	par := cfg.parallelism()
	in := NewInterner(cfg.maxStates())

	queues := make([]*queue[S], par)
	for i := range queues {
		queues[i] = &queue[S]{}
	}

	var pending atomic.Int64 // states queued or mid-expansion
	var stop atomic.Bool
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}

	var buf []byte
	for i, s := range roots {
		buf = cfg.Encode(s, buf[:0])
		fresh, err := in.Intern(Hash(buf))
		if err != nil {
			return in.Size(), err
		}
		if !fresh {
			continue
		}
		pending.Add(1)
		queues[i%par].push(s)
	}

	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var steals, expansions uint64
			defer func() {
				// One atomic publish per worker per search — the whole
				// telemetry cost of the frontier loop.
				obsSteals.Add(steals)
				obsExpansions.Add(expansions)
			}()
			self := queues[w]
			var buf []byte
			emit := func(s S) {
				if stop.Load() {
					return
				}
				buf = cfg.Encode(s, buf[:0])
				fresh, err := in.Intern(Hash(buf))
				if err != nil {
					fail(err)
					return
				}
				if !fresh {
					return
				}
				pending.Add(1)
				self.push(s)
			}
			idle := 0
			for {
				if stop.Load() {
					for {
						if _, ok := self.pop(); !ok {
							return
						}
						pending.Add(-1)
					}
				}
				s, ok := self.pop()
				for off := 1; !ok && off < par; off++ {
					if s, ok = queues[(w+off)%par].steal(); ok {
						steals++
					}
				}
				if !ok {
					if pending.Load() == 0 {
						return
					}
					// Another worker is mid-expansion and may still emit;
					// back off briefly rather than hammering the queues.
					if idle++; idle > 64 {
						time.Sleep(20 * time.Microsecond)
					} else {
						runtime.Gosched()
					}
					continue
				}
				idle = 0
				expansions++
				if err := cfg.Expand(w, s, emit); err != nil {
					fail(err)
				}
				pending.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	obsSearches.Add(1)
	obsStates.Add(uint64(in.Size()))
	return in.Size(), firstErr
}

// ForEach runs fn(worker, i) for every i in [0, n), distributing the
// indices across parallelism workers (0 means GOMAXPROCS). On error the
// remaining indices are abandoned and the error of the lowest-indexed
// failing task observed is returned. It is the engine primitive for
// corpus sweeps and partitioned enumerations.
func ForEach(parallelism, n int, fn func(worker, i int) error) error {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if n <= 0 {
		return nil
	}
	var next atomic.Int64
	var stop atomic.Bool
	var errMu sync.Mutex
	errIdx := n
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(w, i); err != nil {
					errMu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					errMu.Unlock()
					stop.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}
