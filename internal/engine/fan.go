package engine

// FanRing is an order-preserving fan-out/fan-in over per-worker
// BatchQueues: one dispatcher hands items to N workers round-robin, each
// worker ring is SPSC FIFO, and one collector reads the rings in the
// same round-robin order — so the k-th item collected is the k-th item
// dispatched, with no sequence numbers and no reorder buffer. The
// streaming monitor's parallel trace parser rides on a pair of these
// (raw frames out to the parse workers, decoded frames back in to the
// ordering sequencer).
//
// The ordering guarantee needs the access discipline it is named for:
// item k lives in ring k%N from Dispatch to Collect, worker i must
// consume its ring (Worker(i)) in FIFO order and produce exactly one
// output per input in the paired FanRing, and only one goroutine may
// call Dispatch (and one Collect). Collect returns ok=false as soon as
// the ring the next item would occupy is closed and drained — for a
// collector that means the stream ended cleanly one item earlier.
type FanRing[T any] struct {
	rings []*BatchQueue[T]
	put   int // ring the next Dispatch goes to
	get   int // ring the next Collect reads from
}

// NewFanRing returns a fan over `workers` rings of the given depth each.
// workers and depth are clamped to ≥ 1.
func NewFanRing[T any](workers, depth int) *FanRing[T] {
	if workers < 1 {
		workers = 1
	}
	f := &FanRing[T]{rings: make([]*BatchQueue[T], workers)}
	for i := range f.rings {
		f.rings[i] = NewBatchQueue[T](depth)
	}
	return f
}

// Workers returns the number of rings.
func (f *FanRing[T]) Workers() int { return len(f.rings) }

// Worker returns worker i's ring — the queue that worker Gets its items
// from (or Puts its results to, for a result-direction fan).
func (f *FanRing[T]) Worker(i int) *BatchQueue[T] { return f.rings[i] }

// Dispatch hands v to the next ring in round-robin order, blocking on
// backpressure. It returns false if that ring is closed.
func (f *FanRing[T]) Dispatch(v T) bool {
	ok := f.rings[f.put].Put(v)
	f.put = (f.put + 1) % len(f.rings)
	return ok
}

// Collect returns the next item in dispatch order, blocking until it is
// available. ok=false means the ring the item would have come from is
// closed and drained — the end of an in-order stream.
func (f *FanRing[T]) Collect() (T, bool) {
	v, ok := f.rings[f.get].Get()
	f.get = (f.get + 1) % len(f.rings)
	return v, ok
}

// Close closes every ring (idempotent).
func (f *FanRing[T]) Close() {
	for _, q := range f.rings {
		q.Close()
	}
}
