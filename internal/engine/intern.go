package engine

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Fingerprint is the 128-bit identity of a canonical state encoding.
// States are deduplicated by fingerprint alone (hash-compact interning, in
// the tradition of explicit-state model checkers): at the state-space
// sizes this engine bounds (DefaultMaxStates), the collision probability
// of a 128-bit hash is far below any practical concern, and not keeping
// the encodings themselves is what makes the visited set compact.
type Fingerprint struct {
	Hi, Lo uint64
}

// The two seeds give two independent 64-bit hashes of the encoding, fixed
// for the lifetime of the process. Fingerprints are never persisted or
// compared across processes, so per-process seeding is sound (and defends
// against accidental dependence on concrete hash values).
var (
	seedHi = maphash.MakeSeed()
	seedLo = maphash.MakeSeed()
)

// Hash fingerprints a canonical encoding.
func Hash(b []byte) Fingerprint {
	return Fingerprint{Hi: maphash.Bytes(seedHi, b), Lo: maphash.Bytes(seedLo, b)}
}

const internShards = 64

// Interner is a concurrency-safe visited set over state fingerprints with
// a hard budget on distinct states. It is sharded so that parallel search
// workers do not serialise on a single lock.
type Interner struct {
	limit  int64
	count  atomic.Int64
	shards [internShards]internShard
}

type internShard struct {
	mu sync.Mutex
	m  map[Fingerprint]struct{}
}

// NewInterner returns an empty interner that admits at most limit
// distinct fingerprints.
func NewInterner(limit int) *Interner {
	it := &Interner{limit: int64(limit)}
	for i := range it.shards {
		it.shards[i].m = make(map[Fingerprint]struct{})
	}
	return it
}

// Intern records a fingerprint, reporting whether it was new. The first
// insertion past the budget returns ErrStateBudget (the fingerprint is
// still recorded, so the error is returned exactly once per overflowing
// state).
func (it *Interner) Intern(fp Fingerprint) (bool, error) {
	s := &it.shards[fp.Lo%internShards]
	s.mu.Lock()
	_, seen := s.m[fp]
	if !seen {
		s.m[fp] = struct{}{}
	}
	s.mu.Unlock()
	if seen {
		return false, nil
	}
	if it.count.Add(1) > it.limit {
		return true, ErrStateBudget
	}
	return true, nil
}

// Size returns the number of distinct fingerprints interned.
func (it *Interner) Size() int { return int(it.count.Load()) }
