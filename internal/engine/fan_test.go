package engine

import (
	"sync"
	"testing"
)

// TestFanRingPreservesOrder: items dispatched round-robin to concurrent
// workers and collected round-robin come back in dispatch order, even
// though the workers run at different speeds.
func TestFanRingPreservesOrder(t *testing.T) {
	const workers, items = 4, 1000
	in := NewFanRing[int](workers, 2)
	out := NewFanRing[int](workers, 2)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer out.Worker(w).Close()
			for {
				v, ok := in.Worker(w).Get()
				if !ok {
					return
				}
				// Skew the workers: make some do more work per item so
				// completion order differs from dispatch order.
				for i := 0; i < w*1000; i++ {
					v += 0
				}
				if !out.Worker(w).Put(v * 2) {
					return
				}
			}
		}(w)
	}
	go func() {
		for i := 0; i < items; i++ {
			if !in.Dispatch(i) {
				t.Error("Dispatch returned false on open ring")
				break
			}
		}
		in.Close()
	}()
	for i := 0; i < items; i++ {
		v, ok := out.Collect()
		if !ok {
			t.Fatalf("Collect: stream ended at item %d, want %d items", i, items)
		}
		if v != i*2 {
			t.Fatalf("Collect item %d: got %d, want %d (order violated)", i, v, i*2)
		}
	}
	if _, ok := out.Collect(); ok {
		t.Fatal("Collect returned ok after all items were consumed")
	}
	wg.Wait()
}

// TestFanRingCloseUnblocks: closing the input side lets blocked workers
// exit, and the collector sees a clean end once every ring drains.
func TestFanRingCloseUnblocks(t *testing.T) {
	in := NewFanRing[int](3, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for w := 0; w < in.Workers(); w++ {
			if _, ok := in.Worker(w).Get(); ok {
				t.Error("Get returned ok on closed empty ring")
			}
		}
	}()
	in.Close()
	<-done
}
