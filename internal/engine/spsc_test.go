package engine

import (
	"runtime"
	"sync"
	"testing"
)

// TestBatchQueueFIFO: items come out in insertion order across the ring
// wrap-around boundary.
func TestBatchQueueFIFO(t *testing.T) {
	q := NewBatchQueue[int](3)
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			if !q.Put(round*10 + i) {
				t.Fatal("Put failed on open queue")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := q.Get()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: got (%d,%v), want (%d,true)", round, v, ok, round*10+i)
			}
		}
	}
}

// TestBatchQueueClose: Close lets the consumer drain what was queued and
// then reports end of stream; producers are rejected.
func TestBatchQueueClose(t *testing.T) {
	q := NewBatchQueue[int](4)
	q.Put(1)
	q.Put(2)
	q.Close()
	q.Close() // idempotent
	if q.Put(3) {
		t.Fatal("Put succeeded on a closed queue")
	}
	for want := 1; want <= 2; want++ {
		v, ok := q.Get()
		if !ok || v != want {
			t.Fatalf("drain: got (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if _, ok := q.Get(); ok {
		t.Fatal("Get returned an item after the closed queue drained")
	}
}

// TestBatchQueueBlockingHandoff: a slow consumer backpressures the
// producer through the bounded ring; every item arrives exactly once and
// in order. Run under -race this is also the memory-visibility test.
func TestBatchQueueBlockingHandoff(t *testing.T) {
	const n = 10_000
	q := NewBatchQueue[int](2) // tiny capacity: forces Put to block often
	var wg sync.WaitGroup
	wg.Add(1)
	var got []int
	go func() {
		defer wg.Done()
		for {
			v, ok := q.Get()
			if !ok {
				return
			}
			got = append(got, v)
		}
	}()
	for i := 0; i < n; i++ {
		if !q.Put(i) {
			t.Fatal("Put failed mid-stream")
		}
	}
	q.Close()
	wg.Wait()
	if len(got) != n {
		t.Fatalf("consumer saw %d items, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("item %d out of order: got %d", i, v)
		}
	}
}

// TestBatchQueueCloseDrainStress models the monitor pipeline's two-ring
// structure — a work queue forward, a free ring recycling spent buffers
// backward — and slams a mid-stream Close into it from a third
// goroutine while the producer is recycling: the producer may be parked
// in free.Get or q.Put at the instant of the Close and must unblock and
// terminate, the consumer must observe a clean drain (every batch it
// gets is one the producer actually sent), and under -race the whole
// dance is memory-checked. Exercised across many timing offsets.
func TestBatchQueueCloseDrainStress(t *testing.T) {
	for round := 0; round < 200; round++ {
		q := NewBatchQueue[[]int](2)
		free := NewBatchQueue[[]int](4)
		for i := 0; i < 4; i++ {
			free.Put(make([]int, 0, 8))
		}
		var wg sync.WaitGroup
		wg.Add(2)
		// Producer: recycle-get, fill, put — the pipeline lane's loop.
		go func() {
			defer wg.Done()
			seq := 0
			for {
				buf, ok := free.Get()
				if !ok {
					buf = make([]int, 0, 8) // free ring closed mid-recycle
				}
				buf = buf[:0]
				for i := 0; i < 8; i++ {
					buf = append(buf, seq)
					seq++
				}
				if !q.Put(buf) {
					return // work queue closed: terminate
				}
			}
		}()
		// Consumer: drain and recycle until the queue reports end.
		go func() {
			defer wg.Done()
			next := 0
			for {
				batch, ok := q.Get()
				if !ok {
					return
				}
				for _, v := range batch {
					if v != next {
						t.Errorf("round %d: batch out of order: got %d, want %d", round, v, next)
						return
					}
					next++
				}
				free.Put(batch)
			}
		}()
		// Closer: cut both rings mid-stream at a sliding offset.
		for i := 0; i < round%17; i++ {
			runtime.Gosched()
		}
		q.Close()
		free.Close()
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestBatchQueueUnblocksOnClose: a consumer parked in Get wakes up when
// the producer closes an empty queue.
func TestBatchQueueUnblocksOnClose(t *testing.T) {
	q := NewBatchQueue[int](1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := q.Get(); ok {
			t.Error("Get returned an item from an empty closed queue")
		}
	}()
	q.Close()
	<-done
}
