package engine

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// binTree is a synthetic state space: node i has children 2i+1 and 2i+2
// below n; nodes are also reachable along redundant edges (i → i+1) to
// exercise deduplication.
func binTreeConfig(n int, par int, visited *atomic.Int64) Config[int] {
	return Config[int]{
		Options: Options{Parallelism: par},
		Encode: func(s int, buf []byte) []byte {
			return binary.AppendUvarint(buf, uint64(s))
		},
		Expand: func(_ int, s int, emit func(int)) error {
			visited.Add(1)
			for _, c := range []int{2*s + 1, 2*s + 2, s + 1} {
				if c < n {
					emit(c)
				}
			}
			return nil
		},
	}
}

func TestRunVisitsEachStateExactlyOnce(t *testing.T) {
	const n = 1000
	for _, par := range []int{1, 2, 8} {
		var visited atomic.Int64
		size, err := Run(binTreeConfig(n, par, &visited), 0)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if size != n || visited.Load() != n {
			t.Errorf("par=%d: size=%d visited=%d, want %d", par, size, visited.Load(), n)
		}
	}
}

func TestRunDeduplicatesRoots(t *testing.T) {
	var visited atomic.Int64
	size, err := Run(binTreeConfig(50, 4, &visited), 0, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if size != 50 || visited.Load() != 50 {
		t.Errorf("size=%d visited=%d, want 50", size, visited.Load())
	}
}

func TestRunStateBudget(t *testing.T) {
	var visited atomic.Int64
	cfg := binTreeConfig(100_000, 4, &visited)
	cfg.MaxStates = 10
	_, err := Run(cfg, 0)
	if !errors.Is(err, ErrStateBudget) {
		t.Fatalf("err = %v, want ErrStateBudget", err)
	}
}

func TestRunPropagatesExpandError(t *testing.T) {
	boom := errors.New("boom")
	cfg := Config[int]{
		Options: Options{Parallelism: 4},
		Encode: func(s int, buf []byte) []byte {
			return binary.AppendUvarint(buf, uint64(s))
		},
		Expand: func(_ int, s int, emit func(int)) error {
			if s == 7 {
				return boom
			}
			if s+1 < 100 {
				emit(s + 1)
			}
			return nil
		},
	}
	if _, err := Run(cfg, 0); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// The per-worker sink pattern must produce the same merged result at any
// parallelism; here the "result" is the set of terminal states.
func TestRunSinkMergeDeterministic(t *testing.T) {
	const n = 513
	collect := func(par int) map[int]bool {
		sinks := make([]map[int]bool, par)
		for i := range sinks {
			sinks[i] = map[int]bool{}
		}
		cfg := Config[int]{
			Options: Options{Parallelism: par},
			Encode: func(s int, buf []byte) []byte {
				return binary.AppendUvarint(buf, uint64(s))
			},
			Expand: func(w int, s int, emit func(int)) error {
				if 2*s+1 >= n {
					sinks[w][s] = true // leaf
					return nil
				}
				emit(2*s + 1)
				emit(2*s + 2)
				return nil
			},
		}
		if _, err := Run(cfg, 0); err != nil {
			t.Fatal(err)
		}
		out := map[int]bool{}
		for _, s := range sinks {
			for k := range s {
				out[k] = true
			}
		}
		return out
	}
	seq := collect(1)
	for _, par := range []int{2, 8} {
		got := collect(par)
		if len(got) != len(seq) {
			t.Fatalf("par=%d: %d leaves, want %d", par, len(got), len(seq))
		}
		for k := range seq {
			if !got[k] {
				t.Fatalf("par=%d: leaf %d missing", par, k)
			}
		}
	}
}

func TestInternerDedupAndSize(t *testing.T) {
	in := NewInterner(100)
	fp := Hash([]byte("hello"))
	fresh, err := in.Intern(fp)
	if err != nil || !fresh {
		t.Fatalf("first intern: fresh=%v err=%v", fresh, err)
	}
	fresh, err = in.Intern(fp)
	if err != nil || fresh {
		t.Fatalf("second intern: fresh=%v err=%v", fresh, err)
	}
	if in.Size() != 1 {
		t.Fatalf("size = %d, want 1", in.Size())
	}
	if Hash([]byte("hello")) != fp {
		t.Error("hash not stable within process")
	}
	if Hash([]byte("hellp")) == fp {
		t.Error("distinct inputs should not collide")
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	const n = 100
	var mu sync.Mutex
	seen := map[int]int{}
	err := ForEach(8, n, func(_, i int) error {
		mu.Lock()
		seen[i]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("covered %d indices, want %d", len(seen), n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(4, 100, func(_, i int) error {
		if i == 42 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
