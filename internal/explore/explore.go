// Package explore exhaustively enumerates behaviours of programs under
// the operational model.
//
// Two views are provided: outcome sets (the observable results of all
// complete executions, computed as a deduplicated frontier search over
// canonical machine states on the shared exploration engine) and full
// traces (every sequence of transitions, used by the race/local-DRF
// machinery where the identity of intermediate transitions matters). The
// definition of sequential consistency follows def. 7: a trace is
// sequentially consistent iff it contains no weak transitions, so
// restricting the search to non-weak transitions yields exactly the
// SC semantics.
//
// Outcome enumeration runs on internal/engine: states are identified by a
// 128-bit hash of the compact binary encoding (core.Machine.AppendCanonical)
// and expanded once each by work-stealing parallel workers; halted states
// contribute their outcome to a per-worker sink and the sinks are merged
// into one canonical set, so the result is identical at any parallelism.
// OutcomesSequential retains the seed's memoised recursive search as the
// single-threaded reference implementation for differential testing.
package explore

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"

	"localdrf/internal/core"
	"localdrf/internal/engine"
	"localdrf/internal/prog"
)

// Outcome is the observable result of a complete execution: the final
// registers of every thread and the final (latest) value of every
// location.
type Outcome struct {
	Regs []map[prog.Reg]prog.Val
	Mem  map[prog.Loc]prog.Val
}

// Key renders the outcome canonically. Registers holding zero are elided
// (registers default to zero, so "never written" and "written zero" are
// observationally identical).
func (o Outcome) Key() string {
	var b strings.Builder
	for i, regs := range o.Regs {
		names := make([]string, 0, len(regs))
		for r, v := range regs {
			if v != 0 {
				names = append(names, fmt.Sprintf("%s=%d", r, v))
			}
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "%d:{%s} ", i, strings.Join(names, ","))
	}
	locs := make([]string, 0, len(o.Mem))
	for l, v := range o.Mem {
		if v != 0 {
			locs = append(locs, fmt.Sprintf("%s=%d", l, v))
		}
	}
	sort.Strings(locs)
	fmt.Fprintf(&b, "[%s]", strings.Join(locs, ","))
	return b.String()
}

// Reg returns thread t's register r in this outcome.
func (o Outcome) Reg(t int, r prog.Reg) prog.Val { return o.Regs[t][r] }

// Set is a set of outcomes keyed canonically.
type Set struct {
	m map[string]Outcome
}

// NewSet returns an empty outcome set.
func NewSet() *Set { return &Set{m: map[string]Outcome{}} }

// Add inserts an outcome.
func (s *Set) Add(o Outcome) { s.m[o.Key()] = o }

// Len returns the number of distinct outcomes.
func (s *Set) Len() int { return len(s.m) }

// Contains reports whether the set holds an outcome with the given key.
func (s *Set) Contains(key string) bool {
	_, ok := s.m[key]
	return ok
}

// Union merges another set into this one.
func (s *Set) Union(t *Set) {
	for k, v := range t.m {
		s.m[k] = v
	}
}

// SubsetOf reports whether every outcome of s appears in t.
func (s *Set) SubsetOf(t *Set) bool {
	for k := range s.m {
		if _, ok := t.m[k]; !ok {
			return false
		}
	}
	return true
}

// Equal reports whether both sets hold exactly the same outcomes.
func (s *Set) Equal(t *Set) bool { return s.SubsetOf(t) && t.SubsetOf(s) }

// Minus returns the outcomes of s not present in t.
func (s *Set) Minus(t *Set) []Outcome {
	var out []Outcome
	for k, v := range s.m {
		if _, ok := t.m[k]; !ok {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Exists reports whether some outcome satisfies the predicate.
func (s *Set) Exists(pred func(Outcome) bool) bool {
	for _, o := range s.m {
		if pred(o) {
			return true
		}
	}
	return false
}

// Forall reports whether every outcome satisfies the predicate.
func (s *Set) Forall(pred func(Outcome) bool) bool {
	for _, o := range s.m {
		if !pred(o) {
			return false
		}
	}
	return true
}

// Keys returns the sorted outcome keys.
func (s *Set) Keys() []string {
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Outcomes returns the outcomes sorted by key.
func (s *Set) Outcomes() []Outcome {
	var out []Outcome
	for _, k := range s.Keys() {
		out = append(out, s.m[k])
	}
	return out
}

// Options configures exploration.
type Options struct {
	// SCOnly restricts the search to non-weak transitions, yielding the
	// sequentially consistent semantics (def. 7).
	SCOnly bool
	// MaxStates bounds the number of distinct canonical states visited
	// (0 means the default).
	MaxStates int
	// Parallelism is the number of engine workers for the outcome search
	// (0 means GOMAXPROCS). The outcome set does not depend on it.
	Parallelism int
}

// DefaultMaxStates bounds exploration; litmus-scale programs stay far
// below it.
const DefaultMaxStates = engine.DefaultMaxStates

// ErrStateBudget is returned when exploration exceeds its state budget.
var ErrStateBudget = engine.ErrStateBudget

// ErrCyclicStateSpace is returned by OutcomesSequential when the memoised
// outcome search re-enters a state currently being expanded. The outcome
// semantics of cyclic programs would require SCC analysis; litmus programs
// are loop-free, so this indicates a mis-written test rather than a
// supported case. (The engine-based Outcomes deduplicates revisited
// states instead, so it terminates on cyclic state spaces and returns the
// outcomes of the reachable halted states.)
var ErrCyclicStateSpace = fmt.Errorf("explore: cyclic state space")

// Outcomes returns the set of observable results of all complete
// executions of p (all traces if opt.SCOnly is false; only sequentially
// consistent traces otherwise), enumerated on the parallel engine.
func Outcomes(p *prog.Program, opt Options) (*Set, error) {
	return OutcomesFrom(core.NewMachine(p), opt)
}

// OutcomesFrom is Outcomes starting from an arbitrary machine state, used
// by the local-DRF machinery which reasons about non-initial states.
func OutcomesFrom(m *core.Machine, opt Options) (*Set, error) {
	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sinks := make([]*Set, par)
	for i := range sinks {
		sinks[i] = NewSet()
	}
	cfg := engine.Config[*core.Machine]{
		Options: engine.Options{Parallelism: par, MaxStates: opt.MaxStates},
		Encode: func(m *core.Machine, buf []byte) []byte {
			return m.AppendCanonical(buf)
		},
		Expand: func(worker int, m *core.Machine, emit func(*core.Machine)) error {
			halted, err := m.Halted()
			if err != nil {
				return err
			}
			if halted {
				sinks[worker].Add(outcomeOf(m))
				return nil
			}
			steps, err := m.Steps()
			if err != nil {
				return err
			}
			for _, tr := range steps {
				if opt.SCOnly && tr.Weak {
					continue
				}
				emit(tr.After)
			}
			return nil
		},
	}
	if _, err := engine.Run(cfg, m); err != nil {
		return nil, err
	}
	out := sinks[0]
	for _, s := range sinks[1:] {
		out.Union(s)
	}
	return out, nil
}

type outcomeSearch struct {
	opt     Options
	cache   map[string]*Set
	onPath  map[string]bool
	visited int
}

// OutcomesSequential is the single-threaded memoised reference search —
// the seed implementation, still keyed by the string canonicalisation
// Machine.Key. It is retained for differential testing of the
// engine-based Outcomes: the two must produce byte-identical outcome
// sets on every program, and because this path does not share the binary
// encoding the engine dedups on, it is an independent oracle for
// encoding bugs, not just scheduling bugs.
func OutcomesSequential(p *prog.Program, opt Options) (*Set, error) {
	if opt.MaxStates == 0 {
		opt.MaxStates = DefaultMaxStates
	}
	s := &outcomeSearch{opt: opt, cache: map[string]*Set{}, onPath: map[string]bool{}}
	return s.run(core.NewMachine(p))
}

func (s *outcomeSearch) run(m *core.Machine) (*Set, error) {
	key := m.Key()
	if cached, ok := s.cache[key]; ok {
		return cached, nil
	}
	if s.onPath[key] {
		return nil, ErrCyclicStateSpace
	}
	s.visited++
	if s.visited > s.opt.MaxStates {
		return nil, ErrStateBudget
	}
	halted, err := m.Halted()
	if err != nil {
		return nil, err
	}
	out := NewSet()
	if halted {
		out.Add(outcomeOf(m))
		s.cache[key] = out
		return out, nil
	}
	s.onPath[key] = true
	defer delete(s.onPath, key)
	steps, err := m.Steps()
	if err != nil {
		return nil, err
	}
	for _, tr := range steps {
		if s.opt.SCOnly && tr.Weak {
			continue
		}
		sub, err := s.run(tr.After)
		if err != nil {
			return nil, err
		}
		out.Union(sub)
	}
	s.cache[key] = out
	return out, nil
}

func outcomeOf(m *core.Machine) Outcome {
	o := Outcome{Mem: map[prog.Loc]prog.Val{}}
	for _, t := range m.Threads {
		regs := map[prog.Reg]prog.Val{}
		for r, v := range t.State.Regs {
			regs[r] = v
		}
		o.Regs = append(o.Regs, regs)
	}
	for _, l := range m.Prog.SortedLocs() {
		o.Mem[l] = m.FinalValue(l)
	}
	return o
}

// Trace is a finite sequence of transitions from the initial state
// (def. 5). Element i is the transition T_{i+1}.
type Trace []core.Transition

// Traces enumerates every complete trace (ending in a halted machine) of
// p and feeds each to visit; exploration stops early if visit returns
// false. maxTraces bounds the enumeration (0 means no bound). Unlike
// Outcomes, this walk cannot be memoised — race analysis needs the
// identity of every transition along the way.
func Traces(p *prog.Program, opt Options, maxTraces int, visit func(Trace) bool) error {
	return TracesFrom(core.NewMachine(p), opt, maxTraces, visit)
}

// ScanTraces enumerates every complete trace of p, like Traces, but
// partitions the search by the first transition and explores the
// partitions on parallel workers (parallelism 0 means GOMAXPROCS). visit
// receives the worker index (0 ≤ worker < parallelism) so callers can
// keep lock-free per-worker accumulators; traces arrive in an unspecified
// order and visits on different workers may be concurrent. Returning
// false from any visit cancels the scan. Intended for analyses where only
// the *set* of traces matters (race detection); use Traces when the
// deterministic enumeration order does.
func ScanTraces(p *prog.Program, opt Options, maxTraces, parallelism int, visit func(worker int, tr Trace) bool) error {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	m := core.NewMachine(p)
	first, err := m.Steps()
	if err != nil {
		return err
	}
	var roots []core.Transition
	for _, tr := range first {
		if opt.SCOnly && tr.Weak {
			continue
		}
		roots = append(roots, tr)
	}
	if len(roots) == 0 {
		halted, err := m.Halted()
		if err != nil {
			return err
		}
		if halted {
			visit(0, Trace{})
		}
		return nil
	}
	var count atomic.Int64
	var stopped atomic.Bool
	return engine.ForEach(parallelism, len(roots), func(worker, i int) error {
		var walk func(m *core.Machine, acc Trace) (bool, error)
		walk = func(m *core.Machine, acc Trace) (bool, error) {
			if stopped.Load() {
				return false, nil
			}
			halted, err := m.Halted()
			if err != nil {
				return false, err
			}
			if halted {
				if maxTraces > 0 && count.Add(1) > int64(maxTraces) {
					return false, fmt.Errorf("explore: trace budget (%d) exceeded", maxTraces)
				}
				cp := make(Trace, len(acc))
				copy(cp, acc)
				if !visit(worker, cp) {
					stopped.Store(true)
					return false, nil
				}
				return true, nil
			}
			steps, err := m.Steps()
			if err != nil {
				return false, err
			}
			for _, tr := range steps {
				if opt.SCOnly && tr.Weak {
					continue
				}
				cont, err := walk(tr.After, append(acc, tr))
				if err != nil || !cont {
					return cont, err
				}
			}
			return true, nil
		}
		_, err := walk(roots[i].After, Trace{roots[i]})
		return err
	})
}

// TracesFrom is Traces starting from an arbitrary machine state.
func TracesFrom(m *core.Machine, opt Options, maxTraces int, visit func(Trace) bool) error {
	count := 0
	var walk func(m *core.Machine, acc Trace) (bool, error)
	walk = func(m *core.Machine, acc Trace) (bool, error) {
		halted, err := m.Halted()
		if err != nil {
			return false, err
		}
		if halted {
			count++
			if maxTraces > 0 && count > maxTraces {
				return false, fmt.Errorf("explore: trace budget (%d) exceeded", maxTraces)
			}
			cp := make(Trace, len(acc))
			copy(cp, acc)
			return visit(cp), nil
		}
		steps, err := m.Steps()
		if err != nil {
			return false, err
		}
		for _, tr := range steps {
			if opt.SCOnly && tr.Weak {
				continue
			}
			cont, err := walk(tr.After, append(acc, tr))
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := walk(m, nil)
	return err
}
