package explore

import (
	"testing"

	"localdrf/internal/core"
	"localdrf/internal/prog"
)

func outcomes(t *testing.T, p *prog.Program, sc bool) *Set {
	t.Helper()
	s, err := Outcomes(p, Options{SCOnly: sc})
	if err != nil {
		t.Fatalf("Outcomes(%s): %v", p.Name, err)
	}
	return s
}

// Store buffering with nonatomic locations: the relaxed outcome
// r0 = r1 = 0 is allowed (stale reads), unlike under SC.
func TestSBNonatomic(t *testing.T) {
	p := prog.NewProgram("SB-na").
		Vars("x", "y").
		Thread("P0").StoreI("x", 1).Load("r0", "y").Done().
		Thread("P1").StoreI("y", 1).Load("r1", "x").Done().
		MustBuild()
	full := outcomes(t, p, false)
	both0 := func(o Outcome) bool { return o.Reg(0, "r0") == 0 && o.Reg(1, "r1") == 0 }
	if !full.Exists(both0) {
		t.Error("relaxed SB outcome r0=r1=0 should be allowed (weak reads)")
	}
	sc := outcomes(t, p, true)
	if sc.Exists(both0) {
		t.Error("SC forbids r0=r1=0 in SB")
	}
	if !sc.SubsetOf(full) {
		t.Error("SC outcomes must be a subset of all outcomes")
	}
}

// Store buffering with atomic locations: atomics are sequentially
// consistent in this model, so r0 = r1 = 0 is forbidden even in the full
// semantics.
func TestSBAtomic(t *testing.T) {
	p := prog.NewProgram("SB-at").
		Atomics("X", "Y").
		Thread("P0").StoreI("X", 1).Load("r0", "Y").Done().
		Thread("P1").StoreI("Y", 1).Load("r1", "X").Done().
		MustBuild()
	full := outcomes(t, p, false)
	if full.Exists(func(o Outcome) bool { return o.Reg(0, "r0") == 0 && o.Reg(1, "r1") == 0 }) {
		t.Error("atomic SB relaxation should be forbidden")
	}
}

// Message passing with an atomic flag: seeing the flag implies seeing the
// data (frontier transfer).
func TestMPAtomicFlag(t *testing.T) {
	p := prog.NewProgram("MP").
		Vars("x").
		Atomics("F").
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").Load("r0", "F").Load("r1", "x").Done().
		MustBuild()
	full := outcomes(t, p, false)
	if full.Exists(func(o Outcome) bool { return o.Reg(1, "r0") == 1 && o.Reg(1, "r1") == 0 }) {
		t.Error("MP violation r0=1, r1=0 must be forbidden")
	}
	// The stale-data outcome without the flag is allowed.
	if !full.Exists(func(o Outcome) bool { return o.Reg(1, "r0") == 0 && o.Reg(1, "r1") == 0 }) {
		t.Error("r0=0, r1=0 should be allowed")
	}
}

// Message passing with a nonatomic flag is racy: the violation is
// observable.
func TestMPNonatomicFlagRacy(t *testing.T) {
	p := prog.NewProgram("MP-na").
		Vars("x", "f").
		Thread("P0").StoreI("x", 1).StoreI("f", 1).Done().
		Thread("P1").Load("r0", "f").Load("r1", "x").Done().
		MustBuild()
	full := outcomes(t, p, false)
	if !full.Exists(func(o Outcome) bool { return o.Reg(1, "r0") == 1 && o.Reg(1, "r1") == 0 }) {
		t.Error("nonatomic MP should admit the violation (no synchronisation)")
	}
}

// Load buffering: reads never see writes that have not happened yet, so
// r0 = r1 = 1 is impossible (§9.1) — this is exactly what distinguishes
// the model from ARM/Java.
func TestLBForbidden(t *testing.T) {
	p := prog.NewProgram("LB").
		Vars("x", "y").
		Thread("P0").Load("r0", "x").StoreI("y", 1).Done().
		Thread("P1").Load("r1", "y").StoreI("x", 1).Done().
		MustBuild()
	full := outcomes(t, p, false)
	if full.Exists(func(o Outcome) bool { return o.Reg(0, "r0") == 1 && o.Reg(1, "r1") == 1 }) {
		t.Error("load buffering outcome must be forbidden")
	}
}

// Coherence is deliberately weak for nonatomics: two reads with no
// intervening sync may see writes "out of order" when racing (the paper's
// §9.2 CSE discussion); this is what example 2 turns off via the flag.
func TestWeakCoherenceCoRR(t *testing.T) {
	p := prog.NewProgram("CoRR").
		Vars("x").
		Thread("P0").StoreI("x", 1).StoreI("x", 2).Done().
		Thread("P1").Load("r0", "x").Load("r1", "x").Done().
		MustBuild()
	full := outcomes(t, p, false)
	// Reading 2 then 1 is allowed: reads don't advance the frontier.
	if !full.Exists(func(o Outcome) bool { return o.Reg(1, "r0") == 2 && o.Reg(1, "r1") == 1 }) {
		t.Error("weak coherence: r0=2, r1=1 should be allowed under racing reads")
	}
	sc := outcomes(t, p, true)
	if sc.Exists(func(o Outcome) bool { return o.Reg(1, "r0") == 2 && o.Reg(1, "r1") == 1 }) {
		t.Error("SC forbids inverted reads")
	}
}

// Same-thread reads after the thread's own write see only that write
// (frontier advanced by the write).
func TestReadOwnWrite(t *testing.T) {
	p := prog.NewProgram("own").
		Vars("x").
		Thread("P0").StoreI("x", 5).Load("r0", "x").Done().
		MustBuild()
	full := outcomes(t, p, false)
	if !full.Forall(func(o Outcome) bool { return o.Reg(0, "r0") == 5 }) {
		t.Error("a thread must see its own latest write")
	}
}

// IRIW with atomics: both readers must agree on the order of the two
// writes (atomics are SC).
func TestIRIWAtomic(t *testing.T) {
	p := prog.NewProgram("IRIW").
		Atomics("X", "Y").
		Thread("P0").StoreI("X", 1).Done().
		Thread("P1").StoreI("Y", 1).Done().
		Thread("P2").Load("r0", "X").Load("r1", "Y").Done().
		Thread("P3").Load("r2", "Y").Load("r3", "X").Done().
		MustBuild()
	full := outcomes(t, p, false)
	bad := func(o Outcome) bool {
		return o.Reg(2, "r0") == 1 && o.Reg(2, "r1") == 0 &&
			o.Reg(3, "r2") == 1 && o.Reg(3, "r3") == 0
	}
	if full.Exists(bad) {
		t.Error("IRIW disagreement must be forbidden for atomics")
	}
}

func TestFinalMemoryOutcome(t *testing.T) {
	p := prog.NewProgram("mem").
		Vars("x").
		Thread("P0").StoreI("x", 1).Done().
		Thread("P1").StoreI("x", 2).Done().
		MustBuild()
	full := outcomes(t, p, false)
	// Final value is whichever write has the later timestamp: both orders
	// possible.
	if !full.Exists(func(o Outcome) bool { return o.Mem["x"] == 1 }) ||
		!full.Exists(func(o Outcome) bool { return o.Mem["x"] == 2 }) {
		t.Errorf("both final values should be possible, got %v", full.Keys())
	}
}

func TestBranchingControlFlow(t *testing.T) {
	// Reader branches on the flag; only the branch consistent with the
	// read value executes.
	p := prog.NewProgram("branch").
		Vars("x", "f").
		Thread("P0").StoreI("f", 1).Done().
		Thread("P1").
		Load("r0", "f").
		JmpZ("r0", "skip").
		StoreI("x", 7).
		Label("skip").
		Done().
		MustBuild()
	full := outcomes(t, p, false)
	if !full.Exists(func(o Outcome) bool { return o.Mem["x"] == 7 }) {
		t.Error("taken branch outcome missing")
	}
	if !full.Exists(func(o Outcome) bool { return o.Mem["x"] == 0 }) {
		t.Error("not-taken branch outcome missing")
	}
	// x=7 implies r0=1 was read.
	if !full.Forall(func(o Outcome) bool { return o.Mem["x"] != 7 || o.Reg(1, "r0") == 1 }) {
		t.Error("store executed without the flag being read")
	}
}

func TestSetOperations(t *testing.T) {
	a, b := NewSet(), NewSet()
	o1 := Outcome{Regs: []map[prog.Reg]prog.Val{{"r0": 1}}, Mem: map[prog.Loc]prog.Val{}}
	o2 := Outcome{Regs: []map[prog.Reg]prog.Val{{"r0": 2}}, Mem: map[prog.Loc]prog.Val{}}
	a.Add(o1)
	b.Add(o1)
	b.Add(o2)
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("subset logic wrong")
	}
	if a.Equal(b) {
		t.Error("unequal sets reported equal")
	}
	if d := b.Minus(a); len(d) != 1 || d[0].Reg(0, "r0") != 2 {
		t.Errorf("Minus = %v", d)
	}
	a.Union(b)
	if !a.Equal(b) {
		t.Error("union failed")
	}
}

func TestOutcomeKeyElidesZeros(t *testing.T) {
	o1 := Outcome{Regs: []map[prog.Reg]prog.Val{{"r0": 0}}, Mem: map[prog.Loc]prog.Val{"x": 0}}
	o2 := Outcome{Regs: []map[prog.Reg]prog.Val{{}}, Mem: map[prog.Loc]prog.Val{}}
	if o1.Key() != o2.Key() {
		t.Errorf("keys differ: %q vs %q", o1.Key(), o2.Key())
	}
}

func TestTracesEnumeratesCompleteExecutions(t *testing.T) {
	p := prog.NewProgram("two").
		Vars("x").
		Thread("P0").StoreI("x", 1).Done().
		Thread("P1").StoreI("x", 2).Done().
		MustBuild()
	n := 0
	err := Traces(p, Options{}, 0, func(tr Trace) bool {
		if len(tr) != 2 {
			t.Fatalf("trace length = %d, want 2", len(tr))
		}
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two interleavings; the second writer has 2 gap choices (before or
	// after the first write); first writer always has 1 gap.
	if n != 4 {
		t.Fatalf("trace count = %d, want 4", n)
	}
}

func TestTracesSCOnly(t *testing.T) {
	p := prog.NewProgram("two").
		Vars("x").
		Thread("P0").StoreI("x", 1).Done().
		Thread("P1").StoreI("x", 2).Done().
		MustBuild()
	n := 0
	err := Traces(p, Options{SCOnly: true}, 0, func(tr Trace) bool {
		for _, step := range tr {
			if step.Weak {
				t.Fatal("weak transition in SC-only trace")
			}
		}
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("SC trace count = %d, want 2 (one per interleaving)", n)
	}
}

func TestTraceBudget(t *testing.T) {
	p := prog.NewProgram("two").
		Vars("x").
		Thread("P0").StoreI("x", 1).Done().
		Thread("P1").StoreI("x", 2).Done().
		MustBuild()
	err := Traces(p, Options{}, 2, func(Trace) bool { return true })
	if err == nil {
		t.Fatal("trace budget not enforced")
	}
}

func TestOutcomesFromInitialMatchesOutcomes(t *testing.T) {
	p := prog.NewProgram("from").
		Vars("x").
		Atomics("F").
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").Load("r0", "F").Load("r1", "x").Done().
		MustBuild()
	whole := outcomes(t, p, false)
	from, err := OutcomesFrom(core.NewMachine(p), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !whole.Equal(from) {
		t.Error("OutcomesFrom(M0) disagrees with Outcomes")
	}
}

func TestOutcomesFromMidState(t *testing.T) {
	// Advancing the writer once and exploring from there yields exactly
	// the outcomes of the traces through that state: here the write of x
	// has committed, so the final memory always holds x=1.
	p := prog.NewProgram("mid").
		Vars("x").
		Thread("P0").StoreI("x", 1).Done().
		Thread("P1").Load("r0", "x").Done().
		MustBuild()
	m := core.NewMachine(p)
	steps, err := m.StepsOf(0)
	if err != nil {
		t.Fatal(err)
	}
	from, err := OutcomesFrom(steps[0].After, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !from.Forall(func(o Outcome) bool { return o.Mem["x"] == 1 }) {
		t.Error("mid-state exploration lost the committed write")
	}
	// Both read values remain reachable from the mid-state.
	for _, v := range []prog.Val{0, 1} {
		v := v
		if !from.Exists(func(o Outcome) bool { return o.Reg(1, "r0") == v }) {
			t.Errorf("read value %d unreachable from mid-state", v)
		}
	}
}

func TestStateBudget(t *testing.T) {
	p := prog.NewProgram("big").
		Vars("x").
		Thread("P0").StoreI("x", 1).StoreI("x", 2).Done().
		Thread("P1").StoreI("x", 3).StoreI("x", 4).Done().
		MustBuild()
	_, err := Outcomes(p, Options{MaxStates: 3})
	if err != ErrStateBudget {
		t.Fatalf("err = %v, want ErrStateBudget", err)
	}
}
