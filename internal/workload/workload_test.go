package workload

import (
	"math"
	"testing"
)

func TestSuiteHas29Benchmarks(t *testing.T) {
	// Fig. 5a lists 29 programs.
	if got := len(Suite()); got != 29 {
		t.Fatalf("suite size = %d, want 29", got)
	}
}

func TestSuitePaperRates(t *testing.T) {
	// Spot-check access rates against the figure's parenthesised values.
	want := map[string]float64{
		"almabench":   29.4,
		"rnd_access":  106.2,
		"minilight":   156.1,
		"sequence":    163.09,
		"menhir-sql":  122.68,
		"lexifi-g2pp": 65.67,
	}
	for name, rate := range want {
		b, ok := Get(name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		if b.RateM != rate {
			t.Errorf("%s rate = %v, want %v", name, b.RateM, rate)
		}
	}
}

func TestMixesSumToOne(t *testing.T) {
	for _, b := range Suite() {
		sum := b.ImmLoad + b.InitStore + b.MutLoad + b.Assign
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: mix sums to %v", b.Name, sum)
		}
		for _, f := range []float64{b.ImmLoad, b.InitStore, b.MutLoad, b.Assign, b.FPShare} {
			if f < 0 || f > 1 {
				t.Errorf("%s: fraction %v out of range", b.Name, f)
			}
		}
	}
}

// The paper orders fig. 5a by increasing functionalness: the imperative
// share (mutable loads + assignments) must be non-increasing overall.
// Allow small local wiggle (the figure itself is not perfectly monotone)
// but require the endpoints to differ markedly.
func TestFunctionalnessGradient(t *testing.T) {
	s := Suite()
	first := s[0].MutLoad + s[0].Assign
	last := s[len(s)-1].MutLoad + s[len(s)-1].Assign
	if first <= last {
		t.Errorf("imperative share should fall across the suite: first=%v last=%v", first, last)
	}
	if first < 0.4 || last > 0.15 {
		t.Errorf("gradient endpoints implausible: first=%v last=%v", first, last)
	}
}

func TestNumericBenchmarksCarryFP(t *testing.T) {
	for _, name := range []string{"almabench", "minilight", "fft", "qr-decomposition", "lexifi-g2pp"} {
		b, ok := Get(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if b.FPShare < 0.5 {
			t.Errorf("%s: FP share %v, expected numeric benchmark to be FP-heavy", name, b.FPShare)
		}
	}
	for _, name := range []string{"menhir-standard", "bdd", "kb"} {
		b, _ := Get(name)
		if b.FPShare > 0.1 {
			t.Errorf("%s: FP share %v, expected symbolic benchmark to be integer-heavy", name, b.FPShare)
		}
	}
}

func TestBodyDeterministic(t *testing.T) {
	b, _ := Get("minilight")
	b1, b2 := b.Body(), b.Body()
	if len(b1) != AccessesPerIteration || len(b2) != AccessesPerIteration {
		t.Fatalf("body length = %d/%d", len(b1), len(b2))
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("body generation not deterministic")
		}
	}
}

func TestBodyRealisesMix(t *testing.T) {
	// Across the whole suite the generated class frequencies should track
	// the declared mixes within sampling error of 32-access bodies.
	for _, b := range Suite() {
		counts := map[Class]int{}
		for _, a := range b.Body() {
			counts[a.Class]++
		}
		got := float64(counts[MutLoad]) / AccessesPerIteration
		if math.Abs(got-b.MutLoad) > 0.25 {
			t.Errorf("%s: generated mutable-load share %v too far from %v", b.Name, got, b.MutLoad)
		}
	}
}

func TestAluGapScalesWithRate(t *testing.T) {
	slow, _ := Get("almabench") // 29.4 M/s
	fast, _ := Get("sequence")  // 163 M/s
	if slow.AluGap(2.5) <= fast.AluGap(2.5) {
		t.Errorf("slower access rate should give larger gap: %d vs %d",
			slow.AluGap(2.5), fast.AluGap(2.5))
	}
	if fast.AluGap(2.5) < 1 {
		t.Error("gap must be at least 1")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("no-such-benchmark"); ok {
		t.Error("Get on unknown name succeeded")
	}
}

func TestMixString(t *testing.T) {
	b, _ := Get("almabench")
	s := b.MixString()
	if s == "" {
		t.Error("empty mix string")
	}
}
