// Package workload defines the benchmark suite of §8 / fig. 5a.
//
// The paper evaluates 29 OCaml programs whose memory accesses fall into
// four classes — loads of immutable fields, initialising stores, loads of
// mutable fields, and assignments — because the compilation schemes
// decorate only the last two (§8.1: initialising stores and immutable
// loads compile to plain accesses). The benchmark *names and access
// rates* (millions of accesses per second, in parentheses in fig. 5a) are
// taken from the paper. The per-benchmark class mix and floating-point
// share are synthesised: fig. 5a is a bar chart without a data table, so
// we reconstruct the distribution along the paper's stated gradient (the
// benchmarks are ordered by "increasing functionalness" — later
// benchmarks perform fewer mutable loads and assignments) and give the
// numerical benchmarks a high FP share, which §8.3 identifies as the
// cause of SRA's collapse on AArch64. This preserves what the experiment
// measures: overhead as a function of the decorated-access mix and rate.
package workload

import (
	"fmt"
	"math/rand"
)

// Class is a memory-access class of fig. 5a.
type Class int

const (
	// ImmLoad is a load of an immutable field (plain in every scheme).
	ImmLoad Class = iota
	// InitStore is an initialising store (plain in every scheme; §8.1).
	InitStore
	// MutLoad is a load of a mutable field (decorated by BAL/SRA).
	MutLoad
	// Assign is a store to a mutable field (decorated by FBS/SRA).
	Assign
)

func (c Class) String() string {
	switch c {
	case ImmLoad:
		return "load immutable"
	case InitStore:
		return "initialising store"
	case MutLoad:
		return "load mutable"
	default:
		return "assignment"
	}
}

// Access is one memory access of a benchmark's working loop.
type Access struct {
	Class Class
	// FP marks floating-point accesses, which SRA compiles differently
	// on AArch64 (no FP ldar/stlr; dmb-pairs instead, §8.3).
	FP bool
}

// Benchmark describes one fig. 5a workload.
type Benchmark struct {
	Name string
	// RateM is the paper's access rate in millions per second.
	RateM float64
	// Mix fractions over memory accesses; they sum to 1.
	ImmLoad, InitStore, MutLoad, Assign float64
	// FPShare is the fraction of accesses that are floating-point.
	FPShare float64
	// HotLoopPad biases the hot loop's instruction count, exercising the
	// §8.3 fetch-alignment effect (some baselines are unluckily aligned
	// and *speed up* when BAL/FBS/nop padding grows the loop).
	HotLoopPad int
}

// Suite returns the 29 benchmarks of fig. 5a in the paper's order
// (increasing functionalness). Rates are the figure's; mixes follow the
// gradient with hand-tuned exceptions: rnd_access/simple_access are
// synthetic mutable-access loops, cpdf/menhir/frama-c are pointer-chasing
// symbolic code, and the numerical kernels carry the FP share.
func Suite() []Benchmark {
	type row struct {
		name    string
		rate    float64
		mut     float64 // mutable-load fraction
		asn     float64 // assignment fraction
		init    float64 // initialising-store fraction
		fp      float64
		loopPad int
	}
	rows := []row{
		{"almabench", 29.4, 0.34, 0.18, 0.10, 0.85, 0},
		{"rnd_access", 106.2, 0.55, 0.25, 0.05, 0.00, 0},
		{"setrip", 119.63, 0.40, 0.22, 0.08, 0.00, 0},
		{"setrip-smallbuf", 119.36, 0.40, 0.22, 0.08, 0.00, 0},
		{"levinson-durbin", 154.8, 0.36, 0.18, 0.09, 0.80, 0},
		{"cpdf-transform", 37.46, 0.33, 0.16, 0.12, 0.10, 0},
		{"jsontrip-sample", 145.49, 0.30, 0.15, 0.14, 0.05, 0},
		{"minilight", 156.1, 0.32, 0.16, 0.12, 0.90, 0},
		{"cpdf-squeeze", 59.38, 0.28, 0.14, 0.14, 0.10, 0},
		{"cpdf-reformat", 77.58, 0.27, 0.13, 0.15, 0.10, 0},
		{"cpdf-merge", 62.16, 0.26, 0.12, 0.15, 0.10, 0},
		{"simple_access", 39.38, 0.45, 0.20, 0.08, 0.00, 0},
		{"lu-decomposition", 144.24, 0.28, 0.12, 0.12, 0.85, 0},
		{"frama-c-idct", 57.67, 0.24, 0.11, 0.16, 0.60, 0},
		{"naive-multilayer", 146.33, 0.24, 0.10, 0.14, 0.75, 0},
		{"lexifi-g2pp", 65.67, 0.22, 0.10, 0.15, 0.85, 0},
		{"qr-decomposition", 146.62, 0.22, 0.09, 0.14, 0.85, 0},
		{"bdd", 126.03, 0.18, 0.08, 0.18, 0.00, 0},
		{"fft", 73.25, 0.18, 0.08, 0.16, 0.90, 0},
		{"menhir-standard", 70.6, 0.16, 0.07, 0.20, 0.00, 1},
		{"frama-c-deflate", 51.14, 0.15, 0.07, 0.20, 0.05, 0},
		{"menhir-fancy", 77.16, 0.14, 0.06, 0.21, 0.00, 0},
		{"menhir-sql", 122.68, 0.13, 0.06, 0.22, 0.00, 0},
		{"kb", 118.91, 0.11, 0.05, 0.24, 0.00, 0},
		{"kb-no-exc", 119.83, 0.11, 0.05, 0.24, 0.00, 0},
		{"k-means", 145.41, 0.12, 0.05, 0.20, 0.70, 0},
		{"durand-kerner-aberth", 138.78, 0.10, 0.04, 0.22, 0.80, 0},
		{"sequence", 163.09, 0.06, 0.03, 0.30, 0.00, 1},
		{"sequence-cps", 144.82, 0.05, 0.02, 0.32, 0.00, 0},
	}
	out := make([]Benchmark, 0, len(rows))
	for _, r := range rows {
		out = append(out, Benchmark{
			Name:       r.name,
			RateM:      r.rate,
			MutLoad:    r.mut,
			Assign:     r.asn,
			InitStore:  r.init,
			ImmLoad:    1 - r.mut - r.asn - r.init,
			FPShare:    r.fp,
			HotLoopPad: r.loopPad,
		})
	}
	return out
}

// Get returns a benchmark by name.
func Get(name string) (Benchmark, bool) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// AccessesPerIteration is the number of memory accesses in one iteration
// of the synthetic hot loop.
const AccessesPerIteration = 32

// Body generates the benchmark's hot-loop access sequence, deterministic
// in the benchmark name. The sequence realises the class mix and FP
// share of the benchmark.
func (b Benchmark) Body() []Access {
	r := rand.New(rand.NewSource(seedOf(b.Name)))
	body := make([]Access, 0, AccessesPerIteration)
	for i := 0; i < AccessesPerIteration; i++ {
		u := r.Float64()
		var c Class
		switch {
		case u < b.MutLoad:
			c = MutLoad
		case u < b.MutLoad+b.Assign:
			c = Assign
		case u < b.MutLoad+b.Assign+b.InitStore:
			c = InitStore
		default:
			c = ImmLoad
		}
		body = append(body, Access{Class: c, FP: r.Float64() < b.FPShare})
	}
	return body
}

// AluGap is the number of plain (non-memory) instructions between
// consecutive memory accesses, derived from the benchmark's measured
// access rate assuming the clock of the machine being modelled: a
// benchmark doing RateM million accesses per second on a freqGHz machine
// has freqGHz*1000/RateM cycles per access to spend.
func (b Benchmark) AluGap(freqGHz float64) int {
	cyclesPerAccess := freqGHz * 1000 / b.RateM
	gap := int(cyclesPerAccess) - 2 // the access itself costs ~2 cycles
	if gap < 1 {
		gap = 1
	}
	return gap
}

func seedOf(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}

// MixString renders the access distribution as percentages (the fig. 5a
// bar for this benchmark).
func (b Benchmark) MixString() string {
	return fmt.Sprintf("imm %4.1f%% | init %4.1f%% | mut %4.1f%% | assign %4.1f%%",
		100*b.ImmLoad, 100*b.InitStore, 100*b.MutLoad, 100*b.Assign)
}
