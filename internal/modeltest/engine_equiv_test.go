package modeltest

// Corpus-wide differential tests of the parallel exploration engine: on
// every litmus test of the catalogue, the engine-based parallel searches
// must produce byte-identical outcome sets to the single-threaded
// reference paths, in every mode (operational, SC-only, axiomatic and
// hardware). Run with -race to also certify the engine's internal
// synchronisation.

import (
	"errors"
	"fmt"
	"testing"

	"localdrf/internal/axiomatic"
	"localdrf/internal/compile"
	"localdrf/internal/explore"
	"localdrf/internal/hw"
	"localdrf/internal/hw/arm"
	"localdrf/internal/hw/x86"
	"localdrf/internal/litmus"
	"localdrf/internal/progsynth"
	"localdrf/internal/race"
)

// keysEqual reports whether two outcome sets render to byte-identical
// canonical key sequences.
func keysEqual(a, b *explore.Set) bool {
	ka, kb := a.Keys(), b.Keys()
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func TestCorpusParallelMatchesSequentialOperational(t *testing.T) {
	for _, tc := range litmus.Suite() {
		for _, sc := range []bool{false, true} {
			seq, err := explore.OutcomesSequential(tc.Prog, explore.Options{SCOnly: sc})
			if err != nil {
				t.Fatalf("%s (sc=%v): sequential: %v", tc.Name, sc, err)
			}
			par, err := explore.Outcomes(tc.Prog, explore.Options{SCOnly: sc, Parallelism: 8})
			if err != nil {
				t.Fatalf("%s (sc=%v): parallel: %v", tc.Name, sc, err)
			}
			if !keysEqual(seq, par) {
				t.Errorf("%s (sc=%v): outcome sets differ\nseq: %v\npar: %v",
					tc.Name, sc, seq.Keys(), par.Keys())
			}
		}
	}
}

func TestCorpusParallelMatchesAxiomatic(t *testing.T) {
	for _, tc := range litmus.Suite() {
		op, err := explore.Outcomes(tc.Prog, explore.Options{Parallelism: 8})
		if err != nil {
			t.Fatalf("%s: operational: %v", tc.Name, err)
		}
		ax, err := axiomatic.Outcomes(tc.Prog)
		if err != nil {
			t.Fatalf("%s: axiomatic: %v", tc.Name, err)
		}
		if !keysEqual(op, ax) {
			t.Errorf("%s: parallel operational disagrees with axiomatic\nop: %v\nax: %v",
				tc.Name, op.Keys(), ax.Keys())
		}
	}
}

func TestCorpusParallelMatchesSequentialHardware(t *testing.T) {
	if testing.Short() {
		t.Skip("hardware enumeration sweep skipped in -short mode")
	}
	schemes := []struct {
		s          compile.Scheme
		consistent func(*hw.Execution) bool
	}{
		{compile.X86, x86.Consistent},
		{compile.ARMFbs, arm.Consistent},
	}
	for _, sch := range schemes {
		for _, tc := range litmus.Suite() {
			hp, err := compile.Lower(tc.Prog, sch.s)
			if err != nil {
				t.Fatalf("%s/%v: lower: %v", tc.Name, sch.s, err)
			}
			seq, err := compile.OutcomesParallel(hp, sch.consistent, 1)
			if err != nil {
				t.Fatalf("%s/%v: sequential: %v", tc.Name, sch.s, err)
			}
			par, err := compile.OutcomesParallel(hp, sch.consistent, 8)
			if err != nil {
				t.Fatalf("%s/%v: parallel: %v", tc.Name, sch.s, err)
			}
			if !keysEqual(seq, par) {
				t.Errorf("%s/%v: hardware outcome sets differ\nseq: %v\npar: %v",
					tc.Name, sch.s, seq.Keys(), par.Keys())
			}
		}
	}
}

func TestRandomProgramsParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("random differential sweep skipped in -short mode")
	}
	for seed := int64(0); seed < 60; seed++ {
		p := progsynth.Random(seed, progsynth.Config{})
		seq, err := explore.OutcomesSequential(p, explore.Options{})
		if err != nil {
			t.Fatalf("seed %d: sequential: %v", seed, err)
		}
		par, err := explore.Outcomes(p, explore.Options{Parallelism: 8})
		if err != nil {
			t.Fatalf("seed %d: parallel: %v", seed, err)
		}
		if !keysEqual(seq, par) {
			t.Errorf("seed %d: outcome sets differ\nprogram:\n%s\nseq: %v\npar: %v",
				seed, p, seq.Keys(), par.Keys())
		}
	}
}

func TestParallelStateBudgetExhaustion(t *testing.T) {
	tc, ok := litmus.Get("SB")
	if !ok {
		t.Fatal("SB missing from the catalogue")
	}
	for _, par := range []int{1, 8} {
		_, err := explore.Outcomes(tc.Prog, explore.Options{MaxStates: 3, Parallelism: par})
		if !errors.Is(err, explore.ErrStateBudget) {
			t.Errorf("par=%d: err = %v, want ErrStateBudget", par, err)
		}
	}
}

func TestCorpusVerifyAllParallel(t *testing.T) {
	if err := litmus.VerifyAll(8); err != nil {
		t.Fatal(err)
	}
}

func findRaceStrings(tc litmus.Test) ([]string, error) {
	reports, err := race.FindRaces(tc.Prog, false, 0)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(reports))
	for i, r := range reports {
		out[i] = fmt.Sprint(r)
	}
	return out, nil
}

func TestFindRacesDeterministicUnderParallelism(t *testing.T) {
	for _, name := range []string{"MP+na", "Example1", "CoRR"} {
		tc, ok := litmus.Get(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		var prev []string
		for run := 0; run < 3; run++ {
			reports, err := findRaceStrings(tc)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if run > 0 {
				if len(reports) != len(prev) {
					t.Fatalf("%s: run %d returned %d reports, previous %d", name, run, len(reports), len(prev))
				}
				for i := range reports {
					if reports[i] != prev[i] {
						t.Fatalf("%s: nondeterministic report order: %v vs %v", name, reports, prev)
					}
				}
			}
			prev = reports
		}
		if len(prev) == 0 {
			t.Errorf("%s: expected races", name)
		}
	}
}
