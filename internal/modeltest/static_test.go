package modeltest

// The soundness and report-identity obligations of the static may-race
// analysis (internal/staticrace), proven differentially:
//
//   - Soundness: on the full litmus corpus plus 220 random progsynth
//     programs, every race the exhaustive dynamic oracle observes in any
//     interleaving is covered by the static may-race set — at location
//     level and at thread/kind pair level. Precision (static may-race
//     vs dynamically racy location counts) is logged, not asserted: a
//     loss of precision is a regression to review (the staticrace golden
//     pins it per-program), a loss of soundness is a bug.
//
//   - Prefilter identity: monitoring a schedgen stream with the
//     statically-certified locations filtered out of the checker
//     produces byte-identical reports and RAStats to the unfiltered
//     run — sequentially and through the pipeline at every shard count —
//     and a filtered sequential monitor and a filtered pipeline snapshot
//     byte-identically at the same stream position.

import (
	"bytes"
	"testing"

	"localdrf/internal/explore"
	"localdrf/internal/litmus"
	"localdrf/internal/monitor"
	"localdrf/internal/prog"
	"localdrf/internal/progsynth"
	"localdrf/internal/race"
	"localdrf/internal/schedgen"
	"localdrf/internal/staticrace"
)

// staticOracleCap bounds the dynamic oracle per program. Capping only
// shrinks the dynamic race set — the safe direction for a soundness
// check (race.FindRaces would error past its budget instead).
const staticOracleCap = 1500

// dynRaceSet is the deduplicated union of race.Races over up to cap
// traces of p.
func dynRaceSet(t *testing.T, p *prog.Program, cap int) []race.Report {
	t.Helper()
	set := map[race.Report]bool{}
	count := 0
	err := explore.Traces(p, explore.Options{}, 0, func(tr explore.Trace) bool {
		count++
		for _, r := range race.Races(tr) {
			set[r] = true
		}
		return count < cap
	})
	if err != nil {
		t.Fatalf("%s: explore: %v", p.Name, err)
	}
	out := make([]race.Report, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	race.SortReports(out)
	return out
}

// staticPairCovers reports whether the unordered static pair matches the
// dynamic report's thread set and access kinds.
func staticPairCovers(pr staticrace.Pair, d race.Report) bool {
	if pr.A.Thread == d.ThreadI && pr.B.Thread == d.ThreadJ &&
		pr.A.Write == d.WriteI && pr.B.Write == d.WriteJ {
		return true
	}
	return pr.A.Thread == d.ThreadJ && pr.B.Thread == d.ThreadI &&
		pr.A.Write == d.WriteJ && pr.B.Write == d.WriteI
}

// checkStaticSound asserts static ⊇ dynamic for one program and returns
// (dynamically racy, statically may-race) location counts.
func checkStaticSound(t *testing.T, p *prog.Program) (int, int) {
	t.Helper()
	rep := staticrace.Analyze(p)
	mayRace := map[prog.Loc]bool{}
	for _, l := range rep.MayRace {
		mayRace[l] = true
	}
	dynLocs := map[prog.Loc]bool{}
	for _, d := range dynRaceSet(t, p, staticOracleCap) {
		dynLocs[d.Loc] = true
		if !mayRace[d.Loc] {
			t.Errorf("%s: SOUNDNESS MISS: dynamic race %v on statically certified location\nprogram:\n%s",
				p.Name, d, p)
			continue
		}
		covered := false
		for _, pr := range rep.Pairs {
			if !pr.Certified && pr.A.Loc == d.Loc && staticPairCovers(pr, d) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("%s: SOUNDNESS MISS: dynamic race %v has no uncertified static pair", p.Name, d)
		}
	}
	return len(dynLocs), len(rep.MayRace)
}

// TestStaticSoundnessCorpus is the headline proof obligation: the static
// may-race set over-approximates the exhaustive dynamic oracle on every
// litmus program and 220 random progsynth programs.
func TestStaticSoundnessCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive soundness corpus skipped in -short mode")
	}
	programs := 0
	dyn, static := 0, 0
	run := func(p *prog.Program) {
		d, s := checkStaticSound(t, p)
		dyn += d
		static += s
		programs++
	}
	for _, lt := range litmus.Suite() {
		run(lt.Prog)
	}
	for seed := int64(0); seed < 160; seed++ {
		run(progsynth.Random(seed, progsynth.Config{}))
	}
	deep := deepConfig()
	for seed := int64(5000); seed < 5060; seed++ {
		run(progsynth.Random(seed, deep))
	}
	if static < dyn {
		t.Fatalf("static may-race locations (%d) < dynamically racy locations (%d)", static, dyn)
	}
	t.Logf("soundness corpus: %d programs, %d dynamically racy / %d static may-race locations",
		programs, dyn, static)
}

// prefilterConfig is the parity workload: shared contended locations
// plus per-thread private pools, so the certificate has real traffic to
// discharge (the privates certify single-thread) while the racy shared
// locations exercise the unfiltered half of the checker.
func prefilterConfig() progsynth.ScaledConfig {
	return progsynth.ScaledConfig{
		Threads: 6, Iters: 40, OpsPerIter: 5,
		NonAtomic: 8, Atomics: 2, RAs: 2,
		WritePct: 45, SyncPct: 30, MaxConst: 3,
		PrivateLocs: 2, PrivatePct: 60,
	}
}

// TestStaticPrefilterParity: for every stream in a seeds × policies × GC
// grid, the filtered monitor's reports, RAStats and event count equal
// the unfiltered monitor's, sequentially and through the pipeline at
// shards {1,2,4}; and the filtered sequential monitor and filtered
// pipeline produce byte-identical snapshots mid-stream.
func TestStaticPrefilterParity(t *testing.T) {
	if testing.Short() {
		t.Skip("prefilter parity matrix skipped in -short mode")
	}
	cfg := prefilterConfig()
	streams := 0
	for seed := int64(0); seed < 12; seed++ {
		p := progsynth.Scaled(seed, cfg)
		rep := staticrace.Analyze(p)
		tb := monitor.NewTable(p)
		mask := monitor.StaticFilter(tb.Decls(), rep.RaceFree)
		if mask == nil {
			t.Fatalf("seed %d: certificate filtered nothing", seed)
		}
		if got, want := monitor.FilteredLocs(mask), cfg.Threads*cfg.PrivateLocs; got < want {
			t.Fatalf("seed %d: filter covers %d locations, want ≥ %d (the private pools)", seed, got, want)
		}
		for _, pol := range []schedgen.Policy{schedgen.Fair, schedgen.Unfair, schedgen.Bursty} {
			events, _, err := schedgen.Generate(p, tb, schedgen.Options{
				Policy: pol, Seed: seed*31 + 5, MaxEvents: 2_000, StaleReadPct: 20,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			streams++
			for _, g := range []gcMode{{name: "gc64", interval: 64}, {name: "default"}} {
				want := runSeq(tb.Threads(), tb.Decls(), events, g)

				fm := monitor.New(tb.Threads(), tb.Decls())
				g.applyMonitor(fm)
				fm.SetStaticFilter(mask)
				fm.StepBatch(events)
				got := outcome{reports: fm.Reports(), stats: fm.RAStats(), events: fm.Events()}
				if !got.equal(want) {
					t.Fatalf("seed %d %v %s: filtered sequential run diverged\ngot  %+v\nwant %+v",
						seed, pol, g.name, got, want)
				}

				for _, shards := range []int{1, 2, 4} {
					pcfg := g.pipelineConfig(shards)
					pcfg.StaticFilter = mask
					pl := monitor.NewPipeline(tb.Threads(), tb.Decls(), pcfg)
					pl.StepBatch(events)
					got := outcome{reports: pl.Finish(), stats: pl.RAStats(), events: pl.Events()}
					if !got.equal(want) {
						t.Fatalf("seed %d %v %s shards=%d: filtered pipeline diverged\ngot  %+v\nwant %+v",
							seed, pol, g.name, shards, got, want)
					}
				}

				// Snapshot byte parity at mid-stream: filtered sequential vs
				// filtered pipeline. The filter keeps skipped locations' checker
				// state empty identically on both paths.
				k := len(events) / 2
				sm := monitor.New(tb.Threads(), tb.Decls())
				g.applyMonitor(sm)
				sm.SetStaticFilter(mask)
				sm.StepBatch(events[:k])
				var seqBuf bytes.Buffer
				if err := sm.Snapshot(&seqBuf); err != nil {
					t.Fatal(err)
				}
				pcfg := g.pipelineConfig(2)
				pcfg.StaticFilter = mask
				pl := monitor.NewPipeline(tb.Threads(), tb.Decls(), pcfg)
				pl.StepBatch(events[:k])
				var pipeBuf bytes.Buffer
				if err := pl.Snapshot(&pipeBuf); err != nil {
					t.Fatal(err)
				}
				pl.Abort()
				if !bytes.Equal(seqBuf.Bytes(), pipeBuf.Bytes()) {
					t.Fatalf("seed %d %v %s: filtered snapshot bytes diverge between monitor and pipeline",
						seed, pol, g.name)
				}
			}
		}
	}
	t.Logf("prefilter parity: %d streams × 2 GC modes × {seq,1,2,4 shards} identical", streams)
}
