package modeltest

// Cross-validation of the predictive predicates (monitor.PredSyncP,
// monitor.PredShort) against two independent oracles:
//
//   - the brute-force feasible-reordering oracle on litmus-sized
//     programs: every sync-preserving report must be a race some
//     actually-explorable trace of the program exhibits (soundness), and
//     must include every plain happens-before race of the observed trace
//     (prediction only adds);
//   - the all-pairs reference decider in internal/predict, differentially
//     on the schedgen corpus, across the pipeline shard matrix and the
//     split/resume checkpoint grid.

import (
	"bytes"
	"os"
	"testing"

	"localdrf/internal/explore"
	"localdrf/internal/litmus"
	"localdrf/internal/monitor"
	"localdrf/internal/predict"
	"localdrf/internal/progsynth"
	"localdrf/internal/race"
	"localdrf/internal/schedgen"
)

// pairKey is a race report with the thread orientation erased: a
// predicted race (u earlier, t later) may be witnessed by a feasible
// trace that runs the pair in the other order, which FindRaces records
// with the threads and access kinds swapped.
type pairKey struct {
	loc    string
	tA, tB int
	wA, wB bool
}

func normPair(r race.Report) pairKey {
	if r.ThreadI <= r.ThreadJ {
		return pairKey{string(r.Loc), r.ThreadI, r.ThreadJ, r.WriteI, r.WriteJ}
	}
	return pairKey{string(r.Loc), r.ThreadJ, r.ThreadI, r.WriteJ, r.WriteI}
}

// TestPredictSoundOnLitmus is the feasibility oracle: on every litmus
// program small enough to enumerate exhaustively, the sync-preserving
// reports of each observed trace lie within the union of the races of
// ALL traces of the program (every prediction is realisable), contain
// the trace's plain HB reports (prediction only adds), and bound the
// distance-k reports (the window only removes candidates).
func TestPredictSoundOnLitmus(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cross-validation skipped in -short mode")
	}
	const maxTracesExact = 20_000 // full-enumeration budget per program
	const diffTraces = 800        // observed traces checked per program
	programs, traces := 0, 0
	for _, tc := range litmus.Suite() {
		// The oracle needs the COMPLETE feasible race set, so programs
		// whose trace space exceeds the enumeration budget are skipped
		// (a truncated union would flag sound predictions as unsound).
		count := 0
		if err := explore.Traces(tc.Prog, explore.Options{}, 0, func(explore.Trace) bool {
			count++
			return count < maxTracesExact
		}); err != nil {
			t.Fatalf("%s: %v", tc.Prog.Name, err)
		}
		if count >= maxTracesExact {
			continue
		}
		feasibleReports, err := race.FindRaces(tc.Prog, false, 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.Prog.Name, err)
		}
		feasible := make(map[pairKey]bool, len(feasibleReports))
		for _, r := range feasibleReports {
			feasible[normPair(r)] = true
		}
		programs++
		tb := monitor.NewTable(tc.Prog)
		var buf []monitor.Event
		n := 0
		err = explore.Traces(tc.Prog, explore.Options{}, 0, func(tr explore.Trace) bool {
			n++
			buf, err = tb.Events(tr, buf[:0])
			if err != nil {
				t.Fatal(err)
			}
			hb := race.Races(tr)
			sp := predictReports(tb, predict.Spec{Pred: monitor.PredSyncP}, buf)
			if !subsetReports(hb, sp) {
				t.Fatalf("%s trace %v: syncp lost an HB race\nhb    %v\nsyncp %v",
					tc.Prog.Name, tr, hb, sp)
			}
			for _, r := range sp {
				if !feasible[normPair(r)] {
					t.Fatalf("%s trace %v: syncp report %v matches no feasible trace (feasible %v)",
						tc.Prog.Name, tr, r, feasibleReports)
				}
			}
			for _, k := range []int{1, 4} {
				short := predictReports(tb, predict.Spec{Pred: monitor.PredShort, K: k}, buf)
				if !subsetReports(short, sp) {
					t.Fatalf("%s trace %v: short:%d ⊄ syncp", tc.Prog.Name, tr, k)
				}
			}
			return n < diffTraces
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.Prog.Name, err)
		}
		traces += n
	}
	if programs == 0 {
		t.Fatal("no litmus program fit the enumeration budget")
	}
	t.Logf("syncp sound (⊆ feasible, ⊇ hb) on %d traces of %d litmus programs", traces, programs)
}

func predictReports(tb *monitor.Table, spec predict.Spec, events []monitor.Event) []race.Report {
	m := monitor.New(tb.Threads(), tb.Decls())
	spec.Apply(m)
	m.StepBatch(events)
	return m.Reports()
}

func subsetReports(a, b []race.Report) bool {
	in := make(map[race.Report]bool, len(b))
	for _, r := range b {
		in[r] = true
	}
	for _, r := range a {
		if !in[r] {
			return false
		}
	}
	return true
}

// TestPredictPipelineParity runs the predictive predicates over the full
// 210-stream schedgen corpus: the streaming monitor must match the
// all-pairs reference decider exactly, and the pipeline must match the
// sequential monitor at every shard count — including the short-race
// window telemetry, whose prune schedule is stream-deterministic.
func TestPredictPipelineParity(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cross-validation skipped in -short mode")
	}
	cfg := progsynth.ScaledConfig{
		Threads: 6, Iters: 40, OpsPerIter: 5,
		NonAtomic: 8, Atomics: 2, RAs: 2,
		WritePct: 45, SyncPct: 30, MaxConst: 3,
	}
	specs := []predict.Spec{
		{Pred: monitor.PredSyncP},
		{Pred: monitor.PredShort, K: 64},
	}
	streams := 0
	for seed := int64(0); seed < 70; seed++ {
		p := progsynth.Scaled(seed, cfg)
		tb := monitor.NewTable(p)
		var skew float64
		if seed%10 == 0 {
			skew = 1.3
		}
		for _, pol := range []schedgen.Policy{schedgen.Fair, schedgen.Unfair, schedgen.Bursty} {
			events, _, err := schedgen.Generate(p, tb, schedgen.Options{
				Policy: pol, Seed: seed * 17, MaxEvents: 260, StaleReadPct: 30,
				LocSkew: skew, EmitHalts: seed%3 == 0,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			streams++
			for _, spec := range specs {
				want := predict.Races(spec, tb.Threads(), tb.Decls(), events)
				m := monitor.New(tb.Threads(), tb.Decls())
				m.SetGCInterval(16)
				spec.Apply(m)
				m.StepBatch(events)
				if got := m.Reports(); !race.ReportsEqual(got, want) {
					t.Fatalf("seed %d %v %v: monitor diverged from reference\ngot  %v\nwant %v",
						seed, pol, spec, got, want)
				}
				ws := m.WindowStats()
				for _, shards := range []int{1, 2, 4, 8} {
					pl := monitor.NewPipeline(tb.Threads(), tb.Decls(), monitor.PipelineConfig{
						Shards: shards, GCInterval: 16,
						Predicate: spec.Pred, WindowK: spec.K,
					})
					pl.StepBatch(events)
					if got := pl.Finish(); !race.ReportsEqual(got, want) {
						t.Fatalf("seed %d %v %v shards=%d: pipeline diverged\ngot  %v\nwant %v",
							seed, pol, spec, shards, got, want)
					}
					if pws := pl.WindowStats(); pws != ws {
						t.Fatalf("seed %d %v %v shards=%d: pipeline window stats %+v, sequential %+v",
							seed, pol, spec, shards, pws, ws)
					}
				}
			}
		}
	}
	t.Logf("predictive monitor == reference on %d schedgen streams × {syncp, short:64} × shards {1,2,4,8}", streams)
}

// predOutcome extends the checkpoint outcome with the short-race window
// telemetry a split must also preserve exactly.
type predOutcome struct {
	outcome
	win monitor.WindowStats
}

// TestPredictSplitResumeParity extends the checkpoint metamorphic
// harness to the predictive predicates: a snapshot taken under
// -predicate syncp or short:k (the window state rides the snapshot's
// predict section) must resume — sequentially and into pipelines at
// every shard count, which need no predicate configuration because the
// checkpointed predicate is authoritative — to the exact unsplit
// outcome, including window telemetry; and a snapshot of a restored
// monitor stays byte-identical to the unsplit snapshot at the same
// position.
func TestPredictSplitResumeParity(t *testing.T) {
	if testing.Short() {
		t.Skip("split-resume sweep skipped in -short mode")
	}
	cfg := progsynth.ScaledConfig{
		Threads: 6, Iters: 40, OpsPerIter: 5,
		NonAtomic: 8, Atomics: 2, RAs: 2,
		WritePct: 45, SyncPct: 30, MaxConst: 3,
	}
	specs := []predict.Spec{
		{Pred: monitor.PredSyncP},
		{Pred: monitor.PredShort, K: 7},
		{Pred: monitor.PredShort, K: 64},
	}
	checks := 0
	for seed := int64(0); seed < 24; seed++ {
		p := progsynth.Scaled(seed, cfg)
		tb := monitor.NewTable(p)
		for _, pol := range []schedgen.Policy{schedgen.Fair, schedgen.Unfair, schedgen.Bursty} {
			events, _, err := schedgen.Generate(p, tb, schedgen.Options{
				Policy: pol, Seed: seed * 17, MaxEvents: 260, StaleReadPct: 30,
				EmitHalts: seed%3 == 0,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range specs {
				for _, g := range []gcMode{gcModes[0], gcModes[1]} {
					newMon := func() *monitor.Monitor {
						m := monitor.New(tb.Threads(), tb.Decls())
						g.applyMonitor(m)
						spec.Apply(m)
						return m
					}
					m := newMon()
					m.StepBatch(events)
					want := predOutcome{
						outcome: outcome{reports: m.Reports(), stats: m.RAStats(), events: m.Events()},
						win:     m.WindowStats(),
					}
					for _, k := range splitGrid(len(events)) {
						ms := newMon()
						ms.StepBatch(events[:k])
						var snap bytes.Buffer
						if err := ms.Snapshot(&snap); err != nil {
							t.Fatalf("snapshot at %d: %v", k, err)
						}
						mr, err := monitor.Restore(bytes.NewReader(snap.Bytes()))
						if err != nil {
							t.Fatalf("restore: %v", err)
						}
						if mr.Predicate() != spec.Pred || mr.WindowK() != spec.K {
							t.Fatalf("seed %d %v %v k=%d: restored predicate %v/%d",
								seed, pol, spec, k, mr.Predicate(), mr.WindowK())
						}
						mr.StepBatch(events[k:])
						got := predOutcome{
							outcome: outcome{reports: mr.Reports(), stats: mr.RAStats(), events: mr.Events()},
							win:     mr.WindowStats(),
						}
						if !got.outcome.equal(want.outcome) || got.win != want.win {
							t.Fatalf("seed %d %v %v %s k=%d: sequential resume diverged\ngot  %+v\nwant %+v",
								seed, pol, spec, g.name, k, got, want)
						}
						checks++
						// The second snapshot composes: byte-identical to the
						// unsplit snapshot at the end of the stream.
						var resnap bytes.Buffer
						if err := mr.Snapshot(&resnap); err != nil {
							t.Fatal(err)
						}
						munsplit := newMon()
						munsplit.StepBatch(events)
						var unsplit bytes.Buffer
						if err := munsplit.Snapshot(&unsplit); err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(resnap.Bytes(), unsplit.Bytes()) {
							t.Fatalf("seed %d %v %v %s k=%d: resumed snapshot not byte-identical to unsplit (%d vs %d bytes)",
								seed, pol, spec, g.name, k, resnap.Len(), unsplit.Len())
						}
						for _, shards := range []int{1, 2, 4, 8} {
							s, err := monitor.ReadSnapshot(bytes.NewReader(snap.Bytes()))
							if err != nil {
								t.Fatal(err)
							}
							pl := s.Pipeline(monitor.PipelineConfig{Shards: shards})
							pl.StepBatch(events[k:])
							preports := pl.Finish()
							pg := predOutcome{
								outcome: outcome{reports: preports, stats: pl.RAStats(), events: pl.Events()},
								win:     pl.WindowStats(),
							}
							if !pg.outcome.equal(want.outcome) || pg.win != want.win {
								t.Fatalf("seed %d %v %v %s k=%d shards=%d: pipeline resume diverged\ngot  %+v\nwant %+v",
									seed, pol, spec, g.name, k, shards, pg, want)
							}
							checks++
						}
					}
				}
			}
		}
	}
	t.Logf("predictive split-resume parity held (%d split×config checks)", checks)
}

// TestShortWindowBounded is the bounded-memory claim of PredShort at
// test scale: on a long stream the peak live candidate count never
// exceeds k plus one GC interval of slack (entries expire at same-loc
// accesses and GC sweeps), however long the stream runs — and pruning
// actually happens.
func TestShortWindowBounded(t *testing.T) {
	cfg := progsynth.ScaledConfig{
		Threads: 6, Iters: 2_000, OpsPerIter: 5,
		NonAtomic: 12, Atomics: 2, RAs: 2,
		WritePct: 45, SyncPct: 20, MaxConst: 3,
	}
	p := progsynth.Scaled(11, cfg)
	tb := monitor.NewTable(p)
	events, _, err := schedgen.Generate(p, tb, schedgen.Options{
		Policy: schedgen.Bursty, Seed: 7, MaxEvents: 40_000, StaleReadPct: 30,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const k, gc = 64, 256
	m := monitor.New(tb.Threads(), tb.Decls())
	m.SetGCInterval(gc)
	m.SetPredicate(monitor.PredShort, k)
	m.StepBatch(events)
	ws := m.WindowStats()
	if ws.Peak == 0 || ws.Pruned == 0 {
		t.Fatalf("degenerate fixture: window stats %+v", ws)
	}
	if ws.Peak > k+gc {
		t.Fatalf("window peak %d exceeds k+gc = %d on a %d-event stream", ws.Peak, k+gc, len(events))
	}
	if ws.Live > ws.Peak {
		t.Fatalf("inconsistent window stats %+v", ws)
	}
}

// TestSnapshotV1Golden pins backward compatibility of the snapshot
// codec: a version-1 snapshot written by the pre-predict encoder (a
// committed fixture) still restores, reports no static filter and the
// default predicate, and finishes its stream to the exact unsplit
// outcome. The fixture's generator parameters are reproduced here;
// regenerating the events keeps the test self-contained.
func TestSnapshotV1Golden(t *testing.T) {
	cfg := progsynth.ScaledConfig{
		Threads: 6, Iters: 40, OpsPerIter: 5,
		NonAtomic: 8, Atomics: 2, RAs: 2,
		WritePct: 45, SyncPct: 30, MaxConst: 3,
	}
	p := progsynth.Scaled(3, cfg)
	tb := monitor.NewTable(p)
	events, _, err := schedgen.Generate(p, tb, schedgen.Options{
		Policy: schedgen.Bursty, Seed: 51, MaxEvents: 260, StaleReadPct: 30, EmitHalts: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile("testdata/snapshot-v1.golden")
	if err != nil {
		t.Fatal(err)
	}
	s, err := monitor.ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("v1 golden no longer decodes: %v", err)
	}
	if s.StaticFiltered() {
		t.Fatal("v1 golden reports a static filter (v1 cannot record one)")
	}
	m := s.Monitor()
	if m.Predicate() != monitor.PredHB || m.WindowK() != 0 {
		t.Fatalf("v1 golden restored predicate %v/%d, want hb/0", m.Predicate(), m.WindowK())
	}
	half := len(events) / 2
	if m.Events() != uint64(half) {
		t.Fatalf("v1 golden at event %d, want %d — generator drifted from the fixture", m.Events(), half)
	}
	m.StepBatch(events[half:])
	g := gcMode{name: "gc16", interval: 16}
	want := runSeq(tb.Threads(), tb.Decls(), events, g)
	got := outcome{reports: m.Reports(), stats: m.RAStats(), events: m.Events()}
	if !got.equal(want) {
		t.Fatalf("v1 golden resume diverged\ngot  %+v\nwant %+v", got, want)
	}
	// Future versions stay rejected rather than misread. The version
	// byte directly follows the 4-byte "LDCK" magic.
	bad := bytes.Clone(data)
	if bad[4] != 1 {
		t.Fatalf("golden version byte is %d, want 1", bad[4])
	}
	bad[4] = 99
	if _, err := monitor.ReadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Fatal("version-99 snapshot was accepted")
	}
}
