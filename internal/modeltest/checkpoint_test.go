package modeltest

// The metamorphic split-resume harness: the headline proof of the
// checkpoint subsystem. For every schedgen stream and every split point
// k in a grid, running the monitor to k, snapshotting, restoring and
// finishing the stream must be observationally IDENTICAL to the run
// that never stopped — same reports, same RA retention statistics, same
// event count — across the full {shards} × {GC mode} matrix, including
// a double split (a snapshot of a restored monitor), cross-config
// resume (checkpoint under one GC regime, resume under another), and
// cross-mode resume (sequential checkpoint resumed sharded and vice
// versa). This is the strongest test of the bounded-state invariants:
// the snapshot serialises exactly the live state, so if the windowed GC
// or epoch compression ever dropped state that still mattered, some
// split point would expose it as a report or stats divergence.

import (
	"bytes"
	"testing"

	"localdrf/internal/monitor"
	"localdrf/internal/progsynth"
	"localdrf/internal/race"
	"localdrf/internal/schedgen"
)

// gcMode is one GC configuration applied uniformly to sequential
// monitors and pipeline front-ends.
type gcMode struct {
	name     string
	interval uint64 // fixed interval when > 0
	amin     uint64 // adaptive bounds when amax > 0
	amax     uint64
}

var gcModes = []gcMode{
	{name: "gc16", interval: 16},
	{name: "default"},
	{name: "adaptive", amin: 16, amax: 4096},
}

func (g gcMode) applyMonitor(m *monitor.Monitor) {
	switch {
	case g.amax > 0:
		m.SetAdaptiveGC(g.amin, g.amax)
	case g.interval > 0:
		m.SetGCInterval(g.interval)
	}
}

func (g gcMode) pipelineConfig(shards int) monitor.PipelineConfig {
	return monitor.PipelineConfig{
		Shards:        shards,
		GCInterval:    g.interval,
		AdaptiveGCMin: g.amin,
		AdaptiveGCMax: g.amax,
	}
}

// outcome is the observable state a split must preserve exactly.
type outcome struct {
	reports []race.Report
	stats   monitor.RAStats
	events  uint64
}

func (o outcome) equal(p outcome) bool {
	return race.ReportsEqual(o.reports, p.reports) && o.stats == p.stats && o.events == p.events
}

// runSeq monitors events sequentially under g and returns the outcome.
func runSeq(nthreads int, decls []monitor.LocDecl, events []monitor.Event, g gcMode) outcome {
	m := monitor.New(nthreads, decls)
	g.applyMonitor(m)
	m.StepBatch(events)
	return outcome{reports: m.Reports(), stats: m.RAStats(), events: m.Events()}
}

// snapshotSeq runs a sequential monitor to k under g and snapshots it.
func snapshotSeq(t *testing.T, nthreads int, decls []monitor.LocDecl, events []monitor.Event, k int, g gcMode) []byte {
	t.Helper()
	m := monitor.New(nthreads, decls)
	g.applyMonitor(m)
	m.StepBatch(events[:k])
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot at %d: %v", k, err)
	}
	return buf.Bytes()
}

// resumeSeq restores a snapshot into a sequential monitor, finishes the
// stream and returns the outcome.
func resumeSeq(t *testing.T, snap []byte, rest []monitor.Event) outcome {
	t.Helper()
	m, err := monitor.Restore(bytes.NewReader(snap))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	m.StepBatch(rest)
	return outcome{reports: m.Reports(), stats: m.RAStats(), events: m.Events()}
}

// resumePipeline restores a snapshot into a cfg-shard pipeline (zero GC
// fields: continue with the snapshot's recorded GC state), finishes the
// stream and returns the outcome.
func resumePipeline(t *testing.T, snap []byte, rest []monitor.Event, shards int, rebalance bool) outcome {
	t.Helper()
	s, err := monitor.ReadSnapshot(bytes.NewReader(snap))
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	p := s.Pipeline(monitor.PipelineConfig{Shards: shards, Rebalance: rebalance})
	p.StepBatch(rest)
	reports := p.Finish()
	return outcome{reports: reports, stats: p.RAStats(), events: p.Events()}
}

// splitGrid returns the split points exercised for a stream of length n:
// the ends, near-ends, and interior points that do not align with GC
// intervals or batch boundaries.
func splitGrid(n int) []int {
	grid := []int{0, 1, n / 5, n / 2, 4 * n / 5, n - 1, n}
	out := grid[:0]
	seen := -1
	for _, k := range grid {
		if k < 0 || k > n || k == seen {
			continue
		}
		out = append(out, k)
		seen = k
	}
	return out
}

// TestSplitResumeParity is the full metamorphic sweep: 210 schedgen
// streams (70 seeds × 3 policies, stale reads, halts on a third of the
// seeds, Zipf location skew on every tenth seed) × every grid split
// point × {1,2,4,8} shards × rebalance on/off × {GC-16, default,
// adaptive} — run-to-k → snapshot → restore → finish must reproduce the
// unsplit outcome exactly. Sequential checkpoints resume into pipelines
// at every shard count (the shards=1 row is the degenerate-path
// regression), which also makes every row a cross-mode resume proof.
func TestSplitResumeParity(t *testing.T) {
	if testing.Short() {
		t.Skip("split-resume sweep skipped in -short mode")
	}
	cfg := progsynth.ScaledConfig{
		Threads: 6, Iters: 40, OpsPerIter: 5,
		NonAtomic: 8, Atomics: 2, RAs: 2,
		WritePct: 45, SyncPct: 30, MaxConst: 3,
	}
	streams, checks := 0, 0
	for seed := int64(0); seed < 70; seed++ {
		p := progsynth.Scaled(seed, cfg)
		tb := monitor.NewTable(p)
		var skew float64
		if seed%10 == 0 {
			skew = 1.3
		}
		for _, pol := range []schedgen.Policy{schedgen.Fair, schedgen.Unfair, schedgen.Bursty} {
			events, _, err := schedgen.Generate(p, tb, schedgen.Options{
				Policy: pol, Seed: seed * 17, MaxEvents: 260, StaleReadPct: 30,
				LocSkew: skew, EmitHalts: seed%3 == 0,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			streams++
			for _, g := range gcModes {
				want := runSeq(tb.Threads(), tb.Decls(), events, g)
				for _, k := range splitGrid(len(events)) {
					snap := snapshotSeq(t, tb.Threads(), tb.Decls(), events, k, g)
					if got := resumeSeq(t, snap, events[k:]); !got.equal(want) {
						t.Fatalf("seed %d %v %s k=%d: sequential resume diverged\ngot  %+v\nwant %+v",
							seed, pol, g.name, k, got, want)
					}
					checks++
					for _, shards := range []int{1, 2, 4, 8} {
						for _, reb := range []bool{false, true} {
							if got := resumePipeline(t, snap, events[k:], shards, reb); !got.equal(want) {
								t.Fatalf("seed %d %v %s k=%d shards=%d rebalance=%v: pipeline resume diverged\ngot  %+v\nwant %+v",
									seed, pol, g.name, k, shards, reb, got, want)
							}
							checks++
						}
					}
				}
			}
		}
	}
	t.Logf("split-resume parity held on %d schedgen streams (%d split×config checks)", streams, checks)
}

// TestSplitResumePipelineOrigin closes the other direction of the
// cross-mode square: checkpoints TAKEN BY a pipeline (quiesce-drain-
// snapshot, at every shard count) resume sequentially and as pipelines,
// reproducing the unsplit outcome — and the pipeline keeps running
// correctly after the mid-stream snapshot it served.
func TestSplitResumePipelineOrigin(t *testing.T) {
	if testing.Short() {
		t.Skip("split-resume sweep skipped in -short mode")
	}
	cfg := progsynth.ScaledConfig{
		Threads: 6, Iters: 40, OpsPerIter: 5,
		NonAtomic: 8, Atomics: 2, RAs: 2,
		WritePct: 45, SyncPct: 30, MaxConst: 3,
	}
	for seed := int64(0); seed < 12; seed++ {
		p := progsynth.Scaled(seed, cfg)
		tb := monitor.NewTable(p)
		for _, pol := range []schedgen.Policy{schedgen.Fair, schedgen.Bursty} {
			events, _, err := schedgen.Generate(p, tb, schedgen.Options{
				Policy: pol, Seed: seed * 17, MaxEvents: 260, StaleReadPct: 30,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range gcModes {
				want := runSeq(tb.Threads(), tb.Decls(), events, g)
				k := len(events) / 2
				for _, shards := range []int{1, 2, 4, 8} {
					pl := monitor.NewPipeline(tb.Threads(), tb.Decls(), g.pipelineConfig(shards))
					pl.StepBatch(events[:k])
					var buf bytes.Buffer
					if err := pl.Snapshot(&buf); err != nil {
						t.Fatal(err)
					}
					// The snapshotted pipeline itself finishes unharmed.
					pl.StepBatch(events[k:])
					cont := outcome{reports: pl.Finish(), stats: pl.RAStats(), events: pl.Events()}
					if !cont.equal(want) {
						t.Fatalf("seed %d %v %s shards=%d: pipeline diverged after serving a snapshot", seed, pol, g.name, shards)
					}
					if got := resumeSeq(t, buf.Bytes(), events[k:]); !got.equal(want) {
						t.Fatalf("seed %d %v %s shards=%d: pipeline→sequential resume diverged", seed, pol, g.name, shards)
					}
					if got := resumePipeline(t, buf.Bytes(), events[k:], 3, shards%2 == 0); !got.equal(want) {
						t.Fatalf("seed %d %v %s shards=%d: pipeline→pipeline(3) resume diverged", seed, pol, g.name, shards)
					}
				}
			}
		}
	}
}

// TestDoubleSplitResume: a snapshot OF A RESTORED monitor is as good as
// the first — run to k1, snapshot, restore, run to k2, snapshot again,
// restore again, finish; and the second snapshot must be byte-identical
// to the one an unsplit run writes at k2 (the codec is canonical, so
// resume composes indefinitely).
func TestDoubleSplitResume(t *testing.T) {
	if testing.Short() {
		t.Skip("split-resume sweep skipped in -short mode")
	}
	cfg := progsynth.ScaledConfig{
		Threads: 6, Iters: 40, OpsPerIter: 5,
		NonAtomic: 8, Atomics: 2, RAs: 2,
		WritePct: 45, SyncPct: 30, MaxConst: 3,
	}
	for seed := int64(0); seed < 24; seed++ {
		p := progsynth.Scaled(seed, cfg)
		tb := monitor.NewTable(p)
		for _, pol := range []schedgen.Policy{schedgen.Fair, schedgen.Unfair, schedgen.Bursty} {
			events, _, err := schedgen.Generate(p, tb, schedgen.Options{
				Policy: pol, Seed: seed * 17, MaxEvents: 260, StaleReadPct: 30,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			k1, k2 := len(events)/3, 2*len(events)/3
			for _, g := range gcModes {
				want := runSeq(tb.Threads(), tb.Decls(), events, g)
				snap1 := snapshotSeq(t, tb.Threads(), tb.Decls(), events, k1, g)
				m, err := monitor.Restore(bytes.NewReader(snap1))
				if err != nil {
					t.Fatal(err)
				}
				m.StepBatch(events[k1:k2])
				var snap2 bytes.Buffer
				if err := m.Snapshot(&snap2); err != nil {
					t.Fatal(err)
				}
				unsplitAtK2 := snapshotSeq(t, tb.Threads(), tb.Decls(), events, k2, g)
				if !bytes.Equal(snap2.Bytes(), unsplitAtK2) {
					t.Fatalf("seed %d %v %s: second snapshot at k2=%d not byte-identical to the unsplit snapshot",
						seed, pol, g.name, k2)
				}
				if got := resumeSeq(t, snap2.Bytes(), events[k2:]); !got.equal(want) {
					t.Fatalf("seed %d %v %s: double-split resume diverged", seed, pol, g.name)
				}
				if got := resumePipeline(t, snap2.Bytes(), events[k2:], 4, true); !got.equal(want) {
					t.Fatalf("seed %d %v %s: double-split pipeline resume diverged", seed, pol, g.name)
				}
			}
		}
	}
}

// TestCrossConfigResume: a checkpoint taken under one GC regime resumes
// under another — snapshot under fixed GC-16, resume under adaptive GC
// (and the reverse) — and the REPORT set still matches the unsplit run
// exactly. (Retention telemetry legitimately differs across regimes, so
// only reports are compared; the no-op-join invariant is what makes the
// report set interval-schedule-independent.)
func TestCrossConfigResume(t *testing.T) {
	if testing.Short() {
		t.Skip("split-resume sweep skipped in -short mode")
	}
	cfg := progsynth.ScaledConfig{
		Threads: 6, Iters: 40, OpsPerIter: 5,
		NonAtomic: 8, Atomics: 2, RAs: 2,
		WritePct: 45, SyncPct: 30, MaxConst: 3,
	}
	for seed := int64(0); seed < 24; seed++ {
		p := progsynth.Scaled(seed, cfg)
		tb := monitor.NewTable(p)
		for _, pol := range []schedgen.Policy{schedgen.Fair, schedgen.Unfair, schedgen.Bursty} {
			events, _, err := schedgen.Generate(p, tb, schedgen.Options{
				Policy: pol, Seed: seed * 17, MaxEvents: 260, StaleReadPct: 30,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := runSeq(tb.Threads(), tb.Decls(), events, gcMode{})
			k := len(events) / 2
			pairs := []struct{ at, resume gcMode }{
				{gcModes[0], gcModes[2]}, // GC-16 → adaptive
				{gcModes[2], gcModes[0]}, // adaptive → GC-16
				{gcModes[1], gcModes[0]}, // default → GC-16
			}
			for _, pair := range pairs {
				snap := snapshotSeq(t, tb.Threads(), tb.Decls(), events, k, pair.at)
				m, err := monitor.Restore(bytes.NewReader(snap))
				if err != nil {
					t.Fatal(err)
				}
				pair.resume.applyMonitor(m)
				m.StepBatch(events[k:])
				if !race.ReportsEqual(m.Reports(), want.reports) {
					t.Fatalf("seed %d %v %s→%s: cross-config resume changed the report set",
						seed, pol, pair.at.name, pair.resume.name)
				}
				// And sharded: restore into a pipeline that overrides the GC
				// regime at resume time.
				s, err := monitor.ReadSnapshot(bytes.NewReader(snap))
				if err != nil {
					t.Fatal(err)
				}
				pl := s.Pipeline(pair.resume.pipelineConfig(4))
				pl.StepBatch(events[k:])
				if got := pl.Finish(); !race.ReportsEqual(got, want.reports) {
					t.Fatalf("seed %d %v %s→%s shards=4: cross-config pipeline resume changed the report set",
						seed, pol, pair.at.name, pair.resume.name)
				}
			}
		}
	}
}

// TestRebalanceSnapshotParity: checkpoints and the skew-adaptive router
// compose. A long Zipf-skewed stream is fed through a rebalancing
// pipeline; after live migrations have happened, a mid-stream snapshot
// (aligned to a GC-sweep barrier — the only points where migrations
// occur) must be byte-identical to the snapshot the unsplit sequential
// monitor writes at the same position: migrations relocate per-location
// state between back-ends but never change it, and the snapshot codec
// reassembles declaration order regardless of placement. The snapshot
// must then restore at every shard count, with rebalancing off or on,
// to the unsplit outcome — and the pipeline that served it finishes
// unharmed.
func TestRebalanceSnapshotParity(t *testing.T) {
	if testing.Short() {
		t.Skip("split-resume sweep skipped in -short mode")
	}
	cfg := progsynth.ScaledConfig{
		Threads: 6, Iters: 700, OpsPerIter: 5,
		NonAtomic: 8, Atomics: 2, RAs: 2,
		WritePct: 45, SyncPct: 30, MaxConst: 3,
	}
	g := gcMode{name: "gc64", interval: 64}
	for seed := int64(0); seed < 4; seed++ {
		p := progsynth.Scaled(seed, cfg)
		tb := monitor.NewTable(p)
		events, _, err := schedgen.Generate(p, tb, schedgen.Options{
			Policy: schedgen.Bursty, Seed: seed*17 + 1, MaxEvents: 20_000,
			StaleReadPct: 30, LocSkew: 1.5,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := runSeq(tb.Threads(), tb.Decls(), events, g)
		k := len(events) / 2 / 64 * 64
		pl := monitor.NewPipeline(tb.Threads(), tb.Decls(), monitor.PipelineConfig{
			Shards: 4, GCInterval: 64, Rebalance: true,
		})
		pl.StepBatch(events[:k])
		if pl.Migrations() == 0 {
			t.Fatalf("seed %d: no migrations before the snapshot point — fixture not skewed enough", seed)
		}
		var snap bytes.Buffer
		if err := pl.Snapshot(&snap); err != nil {
			t.Fatal(err)
		}
		if unsplit := snapshotSeq(t, tb.Threads(), tb.Decls(), events, k, g); !bytes.Equal(snap.Bytes(), unsplit) {
			t.Fatalf("seed %d k=%d: rebalancing-pipeline snapshot not byte-identical to the sequential snapshot", seed, k)
		}
		pl.StepBatch(events[k:])
		cont := outcome{reports: pl.Finish(), stats: pl.RAStats(), events: pl.Events()}
		if !cont.equal(want) {
			t.Fatalf("seed %d: rebalancing pipeline diverged after serving a snapshot", seed)
		}
		if got := resumeSeq(t, snap.Bytes(), events[k:]); !got.equal(want) {
			t.Fatalf("seed %d: sequential resume from rebalance-barrier snapshot diverged", seed)
		}
		for _, shards := range []int{1, 2, 3, 4, 8} {
			for _, reb := range []bool{false, true} {
				if got := resumePipeline(t, snap.Bytes(), events[k:], shards, reb); !got.equal(want) {
					t.Fatalf("seed %d shards=%d rebalance=%v: resume from rebalance-barrier snapshot diverged",
						seed, shards, reb)
				}
			}
		}
	}
}

// TestWireResumeParity: the end-to-end crash-resume story over the wire
// formats — encode a schedgen stream (v1 and v2), ingest to k through a
// TraceReader, checkpoint monitor + reader, then reopen the trace,
// Resume at the recorded byte offset and finish: reports, stats and
// event counts must equal the one-shot ingest. Split points are chosen
// to land mid-frame for v2 (pending events ride the snapshot).
func TestWireResumeParity(t *testing.T) {
	if testing.Short() {
		t.Skip("split-resume sweep skipped in -short mode")
	}
	// Short per-thread programs (Iters 4 ≈ 170 events total < MaxEvents),
	// so every thread RUNS TO COMPLETION and EmitHalts really emits halt
	// events — checkpoints on halt-carrying streams then land both before
	// and after halts, and (v2) mid-frame with a pending pre-halt access
	// of an already-decoded halt. A long-program config here would never
	// halt within the event budget and silently skip that coverage.
	cfg := progsynth.ScaledConfig{
		Threads: 6, Iters: 4, OpsPerIter: 5,
		NonAtomic: 8, Atomics: 2, RAs: 2,
		WritePct: 45, SyncPct: 30, MaxConst: 3,
	}
	for seed := int64(0); seed < 12; seed++ {
		p := progsynth.Scaled(seed, cfg)
		tb := monitor.NewTable(p)
		halts := seed%2 == 0
		for _, format := range []monitor.Format{monitor.Binary, monitor.BinaryV2} {
			if halts && format == monitor.Binary {
				continue // the frozen v1 grammar has no halt events
			}
			var wire bytes.Buffer
			n, completed, err := schedgen.Encode(&wire, p, tb, schedgen.Options{
				Policy: schedgen.Bursty, Seed: seed * 17, MaxEvents: 260, StaleReadPct: 30,
				EmitHalts: halts,
			}, format)
			if err != nil {
				t.Fatal(err)
			}
			if halts && !completed {
				t.Fatalf("seed %d: halt fixture did not run to completion — no halts emitted", seed)
			}
			ref, err := monitor.MonitorReader(bytes.NewReader(wire.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range splitGrid(n) {
				tr, err := monitor.NewTraceReader(bytes.NewReader(wire.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				m := tr.NewMonitor()
				for i := 0; i < k; i++ {
					e, ok, err := tr.Next()
					if err != nil || !ok {
						t.Fatalf("seed %d %v k=%d: short trace (i=%d ok=%v err=%v)", seed, format, k, i, ok, err)
					}
					m.Step(e)
				}
				rck, err := tr.Checkpoint()
				if err != nil {
					t.Fatal(err)
				}
				var snap bytes.Buffer
				if err := m.SnapshotWithReader(&snap, rck); err != nil {
					t.Fatal(err)
				}
				s, err := monitor.ReadSnapshot(bytes.NewReader(snap.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				rck2, ok := s.Reader()
				if !ok {
					t.Fatal("snapshot lost its reader continuation")
				}
				tr2, err := monitor.NewTraceReader(bytes.NewReader(wire.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				if err := tr2.Resume(rck2); err != nil {
					t.Fatalf("seed %d %v k=%d: %v", seed, format, k, err)
				}
				m2 := s.Monitor()
				if err := m2.FeedBatch(tr2); err != nil {
					t.Fatal(err)
				}
				if !race.ReportsEqual(m2.Reports(), ref.Reports()) ||
					m2.RAStats() != ref.RAStats() || m2.Events() != ref.Events() {
					t.Fatalf("seed %d %v k=%d: wire resume diverged\ngot  %v %+v %d\nwant %v %+v %d",
						seed, format, k, m2.Reports(), m2.RAStats(), m2.Events(),
						ref.Reports(), ref.RAStats(), ref.Events())
				}
			}
		}
	}
}
