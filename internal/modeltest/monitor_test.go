package modeltest

// Differential validation of the streaming race monitor: on any trace,
// the online vector-clock pass (internal/monitor) must report exactly
// the race set the exhaustive happens-before oracle (race.Races) reports.
// Three sweeps: every catalogued litmus program (including the N-thread
// IRIW/WRC family instances), ≥200 random progsynth programs, and
// schedgen-generated schedules of scaled programs — the streams the
// monitor exists for, which never pass through the explorer at all.

import (
	"bytes"
	"sync"
	"testing"

	"localdrf/internal/explore"
	"localdrf/internal/litmus"
	"localdrf/internal/monitor"
	"localdrf/internal/prog"
	"localdrf/internal/progsynth"
	"localdrf/internal/race"
	"localdrf/internal/schedgen"
)

// tracesPerProgram caps how many traces are compared per program; wide
// programs (IRIW+at+N4) have hundreds of thousands of traces and the
// prefix is ample coverage.
const tracesPerProgram = 4_000

// diffProgram runs monitor-vs-oracle on up to cap traces of p, returning
// the traces compared.
func diffProgram(t *testing.T, p *prog.Program, cap int) int {
	t.Helper()
	tb := monitor.NewTable(p)
	m := tb.NewMonitor()
	var buf []monitor.Event
	count := 0
	err := explore.Traces(p, explore.Options{}, 0, func(tr explore.Trace) bool {
		count++
		want := race.Races(tr)
		m.Reset()
		var err error
		buf, err = tb.Events(tr, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range buf {
			m.Step(e)
		}
		got := m.Reports()
		if !race.ReportsEqual(got, want) {
			t.Fatalf("%s: monitor diverged from race.Races on trace %v\nmonitor %v\noracle  %v",
				p.Name, tr, got, want)
		}
		return count < cap
	})
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return count
}

// TestMonitorMatchesRacesOnCorpus sweeps every catalogued litmus program.
func TestMonitorMatchesRacesOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cross-validation skipped in -short mode")
	}
	total := 0
	for _, tc := range litmus.Suite() {
		total += diffProgram(t, tc.Prog, tracesPerProgram)
	}
	t.Logf("monitor == race.Races on %d corpus traces", total)
}

// TestMonitorMatchesRacesOnRandom sweeps ≥200 random programs (the same
// generator envelope as the op/ax equivalence tests).
func TestMonitorMatchesRacesOnRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cross-validation skipped in -short mode")
	}
	const samples = 220
	total := 0
	for seed := int64(0); seed < samples; seed++ {
		p := progsynth.Random(seed, progsynth.Config{})
		total += diffProgram(t, p, 600)
	}
	t.Logf("monitor == race.Races on %d random-program traces", total)
}

// TestMonitorMatchesRacesOnSchedules closes the loop on generated
// schedules: 210 streams (70 seeds × 3 policies) of scaled programs,
// with stale reads, compared against the oracle on the synthesised
// transitions. Every tenth seed generates under a Zipf location skew
// (LocSkew 1.3), so ~20 of the streams concentrate their nonatomic
// traffic on a few hot locations — the regime the rebalancing router
// exists for. Every stream is checked twice — once with the default
// monitor and once with an aggressive GC interval, so the windowed RA
// collection and epoch handoffs are exercised on every stream and proved
// report-preserving — and the pipeline matrix runs with the
// skew-adaptive router both off and on. (Short streams: the oracle's
// transitive closure is cubic.)
func TestMonitorMatchesRacesOnSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cross-validation skipped in -short mode")
	}
	cfg := progsynth.ScaledConfig{
		Threads: 6, Iters: 40, OpsPerIter: 5,
		NonAtomic: 8, Atomics: 2, RAs: 2,
		WritePct: 45, SyncPct: 30, MaxConst: 3,
	}
	streams := 0
	for seed := int64(0); seed < 70; seed++ {
		p := progsynth.Scaled(seed, cfg)
		tb := monitor.NewTable(p)
		var skew float64
		if seed%10 == 0 {
			skew = 1.3
		}
		for _, pol := range []schedgen.Policy{schedgen.Fair, schedgen.Unfair, schedgen.Bursty} {
			events, _, err := schedgen.Generate(p, tb, schedgen.Options{
				Policy: pol, Seed: seed * 17, MaxEvents: 260, StaleReadPct: 30, LocSkew: skew,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			streams++
			m := tb.NewMonitor()
			for _, e := range events {
				m.Step(e)
			}
			got := m.Reports()
			want := race.Races(monitor.Transitions(events, tb.Decls()))
			if !race.ReportsEqual(got, want) {
				t.Fatalf("seed %d %v: monitor diverged on schedgen stream\nmonitor %v\noracle  %v",
					seed, pol, got, want)
			}
			// Aggressive windowed GC must not change the report set.
			mgc := tb.NewMonitor()
			mgc.SetGCInterval(16)
			for _, e := range events {
				mgc.Step(e)
			}
			if !race.ReportsEqual(mgc.Reports(), want) {
				t.Fatalf("seed %d %v: windowed monitor (GC interval 16) diverged", seed, pol)
			}
			// The adaptive interval is likewise report-preserving.
			mad := tb.NewMonitor()
			mad.SetAdaptiveGC(16, 4096)
			for _, e := range events {
				mad.Step(e)
			}
			if !race.ReportsEqual(mad.Reports(), want) {
				t.Fatalf("seed %d %v: adaptive-GC monitor diverged", seed, pol)
			}
			// The parallel pipeline must be byte-identical to the
			// sequential pass on EVERY stream, across the full
			// (shard count × batch size × GC interval) matrix.
			for _, shards := range []int{1, 2, 3, 4, 8} {
				for _, batch := range []int{1, 64, 4096} {
					for _, gc := range []uint64{16, 0} {
						for _, reb := range []bool{false, true} {
							got := monitor.PipelineRaces(tb.Threads(), tb.Decls(), events, monitor.PipelineConfig{
								Shards: shards, BatchSize: batch, GCInterval: gc, Rebalance: reb,
							})
							if !race.ReportsEqual(got, want) {
								t.Fatalf("seed %d %v shards=%d batch=%d gc=%d rebalance=%v: pipeline diverged",
									seed, pol, shards, batch, gc, reb)
							}
						}
					}
				}
			}
			if seed >= 8 {
				continue
			}
			// For a subset: the sharded entry point, halt-carrying
			// streams, and the wire-format round trips (v1 and v2).
			for _, shards := range []int{2, 3} {
				sharded, err := monitor.ShardedRaces(tb.Threads(), tb.Decls(), events, shards, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !race.ReportsEqual(sharded, want) {
					t.Fatalf("seed %d %v shards=%d: sharded mode diverged", seed, pol, shards)
				}
			}
			// Telemetry must be free: a pipeline serving concurrent
			// Obs().Snapshot() reads mid-stream, with exact Stats()
			// calls interleaved by the feeder, produces byte-identical
			// reports, RAStats, and checkpoint bytes to the plain
			// sequential monitor at the same GC interval.
			{
				pm := monitor.NewPipeline(tb.Threads(), tb.Decls(), monitor.PipelineConfig{
					Shards: 2, BatchSize: 64, GCInterval: 16, Rebalance: true,
				})
				stop := make(chan struct{})
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					reg := pm.Obs()
					for {
						select {
						case <-stop:
							return
						default:
							_ = reg.Snapshot()
						}
					}
				}()
				half := len(events) / 2
				pm.StepBatch(events[:half])
				_ = pm.Stats()
				pm.StepBatch(events[half:])
				var pb bytes.Buffer
				if err := pm.Snapshot(&pb); err != nil {
					t.Fatal(err)
				}
				close(stop)
				wg.Wait()
				if got := pm.Finish(); !race.ReportsEqual(got, want) {
					t.Fatalf("seed %d %v: metrics-read pipeline diverged", seed, pol)
				}
				if pm.RAStats() != mgc.RAStats() {
					t.Fatalf("seed %d %v: metrics-read pipeline RAStats %+v, want %+v",
						seed, pol, pm.RAStats(), mgc.RAStats())
				}
				var sb bytes.Buffer
				if err := mgc.Snapshot(&sb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(pb.Bytes(), sb.Bytes()) {
					t.Fatalf("seed %d %v: metrics-read pipeline snapshot differs from sequential (%d vs %d bytes)",
						seed, pol, pb.Len(), sb.Len())
				}
			}

			// Thread-retirement events never change the report set.
			haltEvents, _, err := schedgen.Generate(p, tb, schedgen.Options{
				Policy: pol, Seed: seed * 17, MaxEvents: 260, StaleReadPct: 30, LocSkew: skew, EmitHalts: true,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			mh := tb.NewMonitor()
			mh.SetGCInterval(16)
			for _, e := range haltEvents {
				mh.Step(e)
			}
			if !race.ReportsEqual(mh.Reports(), want) {
				t.Fatalf("seed %d %v: halt-carrying stream diverged", seed, pol)
			}
			for _, format := range []monitor.Format{monitor.Binary, monitor.BinaryV2} {
				var buf bytes.Buffer
				if _, _, err := schedgen.Encode(&buf, p, tb, schedgen.Options{
					Policy: pol, Seed: seed * 17, MaxEvents: 260, StaleReadPct: 30, LocSkew: skew,
				}, format); err != nil {
					t.Fatal(err)
				}
				data := buf.Bytes()
				decoded, err := monitor.ReadRaces(bytes.NewReader(data))
				if err != nil {
					t.Fatal(err)
				}
				if !race.ReportsEqual(decoded, want) {
					t.Fatalf("seed %d %v: %v wire round-trip diverged", seed, pol, format)
				}
				if format != monitor.BinaryV2 {
					continue
				}
				// The parallel front-end must round-trip the same trace
				// through a rebalancing pipeline at every parser count
				// (parsers=1 is the sequential-fallback regression).
				for _, parsers := range []int{1, 2, 4} {
					preports, _, err := monitor.ReadRacesParallel(bytes.NewReader(data), parsers,
						monitor.PipelineConfig{Shards: 2, Rebalance: true})
					if err != nil {
						t.Fatal(err)
					}
					if !race.ReportsEqual(preports, want) {
						t.Fatalf("seed %d %v parsers=%d: parallel wire round-trip diverged", seed, pol, parsers)
					}
				}
			}
		}
	}
	t.Logf("monitor == race.Races on %d schedgen streams (windowed/adaptive GC + pipeline matrix ± rebalance, ~1/10 Zipf-skewed)", streams)
}
