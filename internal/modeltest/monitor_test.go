package modeltest

// Differential validation of the streaming race monitor: on any trace,
// the online vector-clock pass (internal/monitor) must report exactly
// the race set the exhaustive happens-before oracle (race.Races) reports.
// Three sweeps: every catalogued litmus program (including the N-thread
// IRIW/WRC family instances), ≥200 random progsynth programs, and
// schedgen-generated schedules of scaled programs — the streams the
// monitor exists for, which never pass through the explorer at all.

import (
	"testing"

	"localdrf/internal/explore"
	"localdrf/internal/litmus"
	"localdrf/internal/monitor"
	"localdrf/internal/prog"
	"localdrf/internal/progsynth"
	"localdrf/internal/race"
	"localdrf/internal/schedgen"
)

// tracesPerProgram caps how many traces are compared per program; wide
// programs (IRIW+at+N4) have hundreds of thousands of traces and the
// prefix is ample coverage.
const tracesPerProgram = 4_000

// reportsEqual compares two canonical report slices.
func reportsEqual(a, b []race.Report) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffProgram runs monitor-vs-oracle on up to cap traces of p, returning
// the traces compared.
func diffProgram(t *testing.T, p *prog.Program, cap int) int {
	t.Helper()
	tb := monitor.NewTable(p)
	m := tb.NewMonitor()
	var buf []monitor.Event
	count := 0
	err := explore.Traces(p, explore.Options{}, 0, func(tr explore.Trace) bool {
		count++
		want := race.Races(tr)
		m.Reset()
		var err error
		buf, err = tb.Events(tr, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range buf {
			m.Step(e)
		}
		got := m.Reports()
		if !reportsEqual(got, want) {
			t.Fatalf("%s: monitor diverged from race.Races on trace %v\nmonitor %v\noracle  %v",
				p.Name, tr, got, want)
		}
		return count < cap
	})
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return count
}

// TestMonitorMatchesRacesOnCorpus sweeps every catalogued litmus program.
func TestMonitorMatchesRacesOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cross-validation skipped in -short mode")
	}
	total := 0
	for _, tc := range litmus.Suite() {
		total += diffProgram(t, tc.Prog, tracesPerProgram)
	}
	t.Logf("monitor == race.Races on %d corpus traces", total)
}

// TestMonitorMatchesRacesOnRandom sweeps ≥200 random programs (the same
// generator envelope as the op/ax equivalence tests).
func TestMonitorMatchesRacesOnRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cross-validation skipped in -short mode")
	}
	const samples = 220
	total := 0
	for seed := int64(0); seed < samples; seed++ {
		p := progsynth.Random(seed, progsynth.Config{})
		total += diffProgram(t, p, 600)
	}
	t.Logf("monitor == race.Races on %d random-program traces", total)
}

// TestMonitorMatchesRacesOnSchedules closes the loop on generated
// schedules: streams of scaled programs under every policy, with stale
// reads, compared against the oracle on the synthesised transitions.
// (Short streams: the oracle's transitive closure is cubic.)
func TestMonitorMatchesRacesOnSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cross-validation skipped in -short mode")
	}
	cfg := progsynth.ScaledConfig{
		Threads: 6, Iters: 40, OpsPerIter: 5,
		NonAtomic: 8, Atomics: 2, RAs: 2,
		WritePct: 45, SyncPct: 30, MaxConst: 3,
	}
	for seed := int64(0); seed < 8; seed++ {
		p := progsynth.Scaled(seed, cfg)
		tb := monitor.NewTable(p)
		for _, pol := range []schedgen.Policy{schedgen.Fair, schedgen.Unfair, schedgen.Bursty} {
			events, _, err := schedgen.Generate(p, tb, schedgen.Options{
				Policy: pol, Seed: seed * 17, MaxEvents: 350, StaleReadPct: 30,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			m := tb.NewMonitor()
			for _, e := range events {
				m.Step(e)
			}
			got := m.Reports()
			want := race.Races(monitor.Transitions(events, tb.Decls()))
			if !reportsEqual(got, want) {
				t.Fatalf("seed %d %v: monitor diverged on schedgen stream\nmonitor %v\noracle  %v",
					seed, pol, got, want)
			}
			// The sharded mode must agree too, at several shard counts.
			for _, shards := range []int{2, 3} {
				sharded, err := monitor.ShardedRaces(tb.Threads(), tb.Decls(), events, shards, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !reportsEqual(sharded, want) {
					t.Fatalf("seed %d %v shards=%d: sharded mode diverged", seed, pol, shards)
				}
			}
		}
	}
}
