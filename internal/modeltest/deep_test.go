package modeltest

// Deeper differential sweeps: larger random programs (3 threads, up to 4
// memory operations each, mixed atomic/RA/nonatomic locations) push the
// exhaustive engines much harder than the litmus shapes — state spaces
// here run to tens of thousands of canonical machine states.

import (
	"testing"

	"localdrf/internal/axiomatic"
	"localdrf/internal/explore"
	"localdrf/internal/prog"
	"localdrf/internal/progsynth"
	"localdrf/internal/race"
)

func deepConfig() progsynth.Config {
	return progsynth.Config{
		MaxThreads:     3,
		MaxOps:         4,
		AtomicLocs:     []prog.Loc{"A"},
		NonAtomicLocs:  []prog.Loc{"x", "y", "z"},
		MaxConst:       2,
		AllowBranches:  true,
		AllowRegStores: true,
	}
}

func TestDeepOpAxEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("deep sweep skipped in -short mode")
	}
	cfg := deepConfig()
	for seed := int64(9000); seed < 9040; seed++ {
		p := progsynth.Random(seed, cfg)
		op, err := explore.Outcomes(p, explore.Options{})
		if err != nil {
			t.Fatalf("seed %d: operational: %v", seed, err)
		}
		ax, err := axiomatic.Outcomes(p)
		if err != nil {
			t.Fatalf("seed %d: axiomatic: %v", seed, err)
		}
		if !op.Equal(ax) {
			t.Fatalf("seed %d: outcome sets differ\nprogram:\n%s\nop-only: %v\nax-only: %v",
				seed, p, op.Minus(ax), ax.Minus(op))
		}
	}
}

func TestDeepSCSubsetAndRaceConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("deep sweep skipped in -short mode")
	}
	cfg := deepConfig()
	for seed := int64(9100); seed < 9130; seed++ {
		p := progsynth.Random(seed, cfg)
		full, err := explore.Outcomes(p, explore.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sc, err := explore.Outcomes(p, explore.Options{SCOnly: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !sc.SubsetOf(full) || sc.Len() == 0 {
			t.Fatalf("seed %d: SC outcome anomaly", seed)
		}
		// Race reports must agree between SC-only and full searches on
		// which locations race under SC (full search may find more).
		scRaces, err := race.FindRaces(p, true, 600_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		allRaces, err := race.FindRaces(p, false, 600_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seen := map[race.Report]bool{}
		for _, r := range allRaces {
			seen[r] = true
		}
		for _, r := range scRaces {
			if !seen[r] {
				t.Fatalf("seed %d: race %v found under SC but not in the full search", seed, r)
			}
		}
		// And a race-free verdict under SC implies full ≡ SC outcomes
		// (thm. 14 at scale).
		if len(scRaces) == 0 && !full.Equal(sc) {
			t.Fatalf("seed %d: SC-race-free yet non-SC behaviours exist\n%s", seed, p)
		}
	}
}
