package modeltest

// Cross-validation of the §10 release-acquire extension: the operational
// (frontier-carrying messages) and axiomatic (rf-only hb edges on RA
// locations) formulations must agree, and the DRF theorems' boundary
// with RA must sit exactly where documented.

import (
	"strings"
	"testing"

	"localdrf/internal/axiomatic"
	"localdrf/internal/core"
	"localdrf/internal/explore"
	"localdrf/internal/prog"
	"localdrf/internal/progsynth"
	"localdrf/internal/race"
)

func raConfig() progsynth.Config {
	return progsynth.Config{
		MaxThreads:     3,
		MaxOps:         3,
		AtomicLocs:     nil,
		NonAtomicLocs:  []prog.Loc{"x"},
		MaxConst:       2,
		AllowBranches:  true,
		AllowRegStores: true,
	}
}

// Random programs mixing nonatomic and RA locations: the two semantics
// agree (the extension preserves the thm. 15/16 equivalence).
func TestRandomOpAxEquivalenceWithRA(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cross-validation skipped in -short mode")
	}
	cfg := raConfig()
	cfg.AtomicLocs = []prog.Loc{"R"} // declared below as RA via rebuild
	for seed := int64(500); seed < 640; seed++ {
		p := progsynth.Random(seed, cfg)
		// Re-declare the "atomic" pool location as release-acquire.
		p.Locs["R"] = prog.ReleaseAcquire
		op, err := explore.Outcomes(p, explore.Options{})
		if err != nil {
			t.Fatalf("seed %d: operational: %v", seed, err)
		}
		ax, err := axiomatic.Outcomes(p)
		if err != nil {
			t.Fatalf("seed %d: axiomatic: %v", seed, err)
		}
		if !op.Equal(ax) {
			t.Fatalf("seed %d: RA outcome sets differ\nprogram:\n%s\nop-only: %v\nax-only: %v",
				seed, p, op.Minus(ax), ax.Minus(op))
		}
	}
}

// The documented DRF boundary: store buffering over RA locations is
// race-free (RA accesses never race) yet exhibits non-SC behaviour, so
// the global DRF theorem does not extend verbatim to RA-synchronised
// programs — the same trade C++ makes for non-SC atomics.
func TestGlobalDRFBoundaryWithRA(t *testing.T) {
	p := prog.NewProgram("SB+ra").
		RAs("X", "Y").
		Thread("P0").StoreI("X", 1).Load("r0", "Y").Done().
		Thread("P1").StoreI("Y", 1).Load("r1", "X").Done().
		MustBuild()
	free, err := race.IsSCRaceFree(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !free {
		t.Fatal("RA accesses must not count as data races (def. 9)")
	}
	err = race.CheckGlobalDRF(p, 0)
	if err == nil {
		t.Fatal("SB over RA should exhibit non-SC behaviour; thm 14 covers SC atomics only")
	}
	if !strings.Contains(err.Error(), "non-SC trace") {
		t.Fatalf("unexpected failure mode: %v", err)
	}
}

// With the paper's SC atomics in the same program shape, thm 14 holds —
// the boundary is precisely the atomic flavour.
func TestGlobalDRFHoldsWithSCAtomics(t *testing.T) {
	p := prog.NewProgram("SB+at").
		Atomics("X", "Y").
		Thread("P0").StoreI("X", 1).Load("r0", "Y").Done().
		Thread("P1").StoreI("Y", 1).Load("r1", "X").Done().
		MustBuild()
	if err := race.CheckGlobalDRF(p, 0); err != nil {
		t.Fatal(err)
	}
}

// Local DRF for L restricted to the nonatomic locations survives the RA
// extension empirically: RA weak transitions fall outside L, and the
// frontier mechanism still protects L-sequential runs. (The paper
// conjectures this kind of robustness for promising-style extensions in
// §9.2; here it is checked exhaustively on small programs.)
func TestLocalDRFWithRASynchronisation(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cross-validation skipped in -short mode")
	}
	cfg := raConfig()
	cfg.AtomicLocs = []prog.Loc{"R"}
	cfg.MaxThreads = 2
	cfg.MaxOps = 2
	for seed := int64(700); seed < 730; seed++ {
		p := progsynth.Random(seed, cfg)
		p.Locs["R"] = prog.ReleaseAcquire
		L := race.NewLocSet("x")
		if err := race.CheckLocalDRFFrom(core.NewMachine(p), L, 2_000_000); err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, p)
		}
	}
}

// MP through an RA flag gives the data-visibility guarantee operationally
// and axiomatically, and the racy outcome structure matches the
// catalogue.
func TestRAMessagePassingBothModels(t *testing.T) {
	p := prog.NewProgram("MP+ra").
		Vars("x").
		RAs("F").
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").Load("r0", "F").Load("r1", "x").Done().
		MustBuild()
	for name, f := range map[string]func() (*explore.Set, error){
		"operational": func() (*explore.Set, error) { return explore.Outcomes(p, explore.Options{}) },
		"axiomatic":   func() (*explore.Set, error) { return axiomatic.Outcomes(p) },
	} {
		set, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if set.Exists(func(o explore.Outcome) bool {
			return o.Reg(1, "r0") == 1 && o.Reg(1, "r1") == 0
		}) {
			t.Errorf("%s: MP+ra violation allowed", name)
		}
	}
}
