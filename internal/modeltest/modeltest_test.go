// Package modeltest cross-validates the semantic engines on randomly
// generated programs: the empirical content of thms. 14, 15/16 at
// property-test scale.
package modeltest

import (
	"testing"

	"localdrf/internal/axiomatic"
	"localdrf/internal/core"
	"localdrf/internal/explore"
	"localdrf/internal/prog"
	"localdrf/internal/progsynth"
	"localdrf/internal/race"
)

const equivalenceSeeds = 250

// Thms. 15/16, empirically: for random programs, the operational and
// axiomatic models produce identical outcome sets.
func TestRandomOpAxEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cross-validation skipped in -short mode")
	}
	for seed := int64(0); seed < equivalenceSeeds; seed++ {
		p := progsynth.Random(seed, progsynth.Config{})
		op, err := explore.Outcomes(p, explore.Options{})
		if err != nil {
			t.Fatalf("seed %d (%s): operational: %v", seed, p.Name, err)
		}
		ax, err := axiomatic.Outcomes(p)
		if err != nil {
			t.Fatalf("seed %d (%s): axiomatic: %v", seed, p.Name, err)
		}
		if !op.Equal(ax) {
			t.Fatalf("seed %d: outcome sets differ\nprogram:\n%s\nop-only: %v\nax-only: %v",
				seed, p, op.Minus(ax), ax.Minus(op))
		}
	}
}

// Thm. 14, empirically: random programs that are race-free in all SC
// traces exhibit only SC behaviour.
func TestRandomGlobalDRF(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cross-validation skipped in -short mode")
	}
	checked := 0
	for seed := int64(0); seed < 200 && checked < 25; seed++ {
		p := progsynth.Random(seed, progsynth.Config{})
		free, err := race.IsSCRaceFree(p, 400_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !free {
			continue
		}
		checked++
		if err := race.CheckGlobalDRF(p, 400_000); err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, p)
		}
	}
	if checked == 0 {
		t.Fatal("generator produced no race-free programs; tune it")
	}
}

// Thm. 13, empirically: the local DRF conclusion holds from the initial
// state (always L-stable) of random programs, for both a singleton L and
// the full location set.
func TestRandomLocalDRFFromInitial(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cross-validation skipped in -short mode")
	}
	cfg := progsynth.Config{
		MaxThreads:    2,
		MaxOps:        2,
		AtomicLocs:    []prog.Loc{"A"},
		NonAtomicLocs: []prog.Loc{"x", "y"},
		MaxConst:      2,
	}
	for seed := int64(0); seed < 40; seed++ {
		p := progsynth.Random(seed, cfg)
		for _, L := range []race.LocSet{race.NewLocSet("x"), race.AllLocs(p)} {
			m := core.NewMachine(p)
			if err := race.CheckLocalDRFFrom(m, L, 2_000_000); err != nil {
				t.Fatalf("seed %d, L=%v: %v\nprogram:\n%s", seed, L, err, p)
			}
		}
	}
}

// Weak-transition bookkeeping sanity on random programs: SC outcome sets
// are always included in the full sets.
func TestRandomSCSubset(t *testing.T) {
	for seed := int64(300); seed < 340; seed++ {
		p := progsynth.Random(seed, progsynth.Config{})
		full, err := explore.Outcomes(p, explore.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sc, err := explore.Outcomes(p, explore.Options{SCOnly: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !sc.SubsetOf(full) {
			t.Fatalf("seed %d: SC outcomes not included in full outcomes\n%s", seed, p)
		}
		if sc.Len() == 0 {
			t.Fatalf("seed %d: no SC outcomes at all", seed)
		}
	}
}
