package predict

import (
	"bytes"
	"fmt"
	"testing"

	"localdrf/internal/monitor"
	"localdrf/internal/progsynth"
	"localdrf/internal/race"
	"localdrf/internal/schedgen"
)

func TestParse(t *testing.T) {
	good := []struct {
		in   string
		want Spec
	}{
		{"hb", Spec{Pred: monitor.PredHB}},
		{"syncp", Spec{Pred: monitor.PredSyncP}},
		{"short:1", Spec{Pred: monitor.PredShort, K: 1}},
		{"short:64", Spec{Pred: monitor.PredShort, K: 64}},
	}
	for _, tc := range good {
		got, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("Parse(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		if got.String() != tc.in {
			t.Fatalf("Parse(%q).String() = %q", tc.in, got.String())
		}
	}
	for _, in := range []string{"", "short", "short:", "short:0", "short:-3", "short:x", "sp", "HB", "hb "} {
		if _, err := Parse(in); err == nil {
			t.Fatalf("Parse(%q): want error", in)
		}
	}
}

// corpusEvents generates one deterministic synthetic trace: a scaled
// program with all three location kinds and a schedgen schedule.
func corpusEvents(t testing.TB, seed int64, pol schedgen.Policy, max int) (*monitor.Table, []monitor.Event) {
	cfg := progsynth.ScaledConfig{
		Threads: 4, Iters: 40, OpsPerIter: 5,
		NonAtomic: 6, Atomics: 2, RAs: 2,
		WritePct: 45, SyncPct: 30, MaxConst: 3,
	}
	p := progsynth.Scaled(seed, cfg)
	tb := monitor.NewTable(p)
	events, _, err := schedgen.Generate(p, tb, schedgen.Options{
		Policy: pol, Seed: seed*7 + 1, MaxEvents: max,
		StaleReadPct: 30, EmitHalts: seed%2 == 0,
	}, nil)
	if err != nil {
		t.Fatalf("schedgen: %v", err)
	}
	return tb, events
}

func monitorReports(tb *monitor.Table, spec Spec, events []monitor.Event) []race.Report {
	m := monitor.New(tb.Threads(), tb.Decls())
	m.SetGCInterval(32) // tight GC so collection/pruning is exercised
	spec.Apply(m)
	m.StepBatch(events)
	return m.Reports()
}

// TestReferenceMatchesMonitor differentially tests the package's slow
// all-pairs reference decider against the streaming monitor, for every
// predicate, over a mixed corpus of synthetic traces.
func TestReferenceMatchesMonitor(t *testing.T) {
	specs := []Spec{
		{Pred: monitor.PredHB},
		{Pred: monitor.PredSyncP},
		{Pred: monitor.PredShort, K: 1},
		{Pred: monitor.PredShort, K: 7},
		{Pred: monitor.PredShort, K: 64},
		{Pred: monitor.PredShort, K: 100_000},
	}
	for seed := int64(1); seed <= 6; seed++ {
		for _, pol := range []schedgen.Policy{schedgen.Fair, schedgen.Unfair, schedgen.Bursty} {
			tb, events := corpusEvents(t, seed, pol, 600)
			for _, spec := range specs {
				want := Races(spec, tb.Threads(), tb.Decls(), events)
				got := monitorReports(tb, spec, events)
				if !race.ReportsEqual(got, want) {
					t.Fatalf("seed %d %v %v: monitor %v, reference %v",
						seed, pol, spec, got, want)
				}
			}
		}
	}
}

// TestPredicateLattice checks the containments the definitions promise on
// every trace: hb ⊆ short:k ⊆ syncp, short monotone in k, and short with
// k ≥ the trace length equal to syncp.
func TestPredicateLattice(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		tb, events := corpusEvents(t, seed, schedgen.Fair, 500)
		th, decls := tb.Threads(), tb.Decls()
		hb := Races(Spec{Pred: monitor.PredHB}, th, decls, events)
		syncp := Races(Spec{Pred: monitor.PredSyncP}, th, decls, events)
		if !subset(hb, syncp) {
			t.Fatalf("seed %d: hb ⊄ syncp: %v vs %v", seed, hb, syncp)
		}
		prev := []race.Report(nil)
		for _, k := range []int{1, 4, 16, 128, len(events)} {
			short := Races(Spec{Pred: monitor.PredShort, K: k}, th, decls, events)
			if !subset(short, syncp) {
				t.Fatalf("seed %d k=%d: short ⊄ syncp", seed, k)
			}
			if !subset(prev, short) {
				t.Fatalf("seed %d k=%d: short not monotone in k", seed, k)
			}
			prev = short
		}
		full := Races(Spec{Pred: monitor.PredShort, K: len(events)}, th, decls, events)
		if !race.ReportsEqual(full, syncp) {
			t.Fatalf("seed %d: short:len != syncp: %v vs %v", seed, full, syncp)
		}
	}
}

func subset(a, b []race.Report) bool {
	in := make(map[race.Report]bool, len(b))
	for _, r := range b {
		in[r] = true
	}
	for _, r := range a {
		if !in[r] {
			return false
		}
	}
	return true
}

// FuzzPredict decodes an arbitrary wire-format trace and cross-checks
// the streaming monitor against the reference decider for the syncp and
// short:k predicates. Seeds are real corpus traces in both binary
// formats.
func FuzzPredict(f *testing.F) {
	for seed := int64(1); seed <= 3; seed++ {
		cfg := progsynth.ScaledConfig{
			Threads: 3, Iters: 20, OpsPerIter: 4,
			NonAtomic: 4, Atomics: 2, RAs: 1,
			WritePct: 50, SyncPct: 25, MaxConst: 2,
		}
		p := progsynth.Scaled(seed, cfg)
		tb := monitor.NewTable(p)
		for _, format := range []monitor.Format{monitor.Binary, monitor.BinaryV2} {
			var buf bytes.Buffer
			opt := schedgen.Options{
				Policy: schedgen.Bursty, Seed: seed, MaxEvents: 300,
				StaleReadPct: 25, EmitHalts: format == monitor.BinaryV2,
			}
			if _, _, err := schedgen.Encode(&buf, p, tb, opt, format); err != nil {
				f.Fatalf("encode: %v", err)
			}
			f.Add(buf.Bytes(), uint16(seed*13))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, kRaw uint16) {
		tr, err := monitor.NewTraceReaderLimits(bytes.NewReader(data), monitor.ReaderLimits{
			MaxHeaderBytes: 1 << 14, MaxFrameEvents: 1 << 12,
		})
		if err != nil {
			t.Skip()
		}
		hdr := tr.Header()
		if hdr.Threads > 8 || len(hdr.Decls) > 32 {
			t.Skip()
		}
		const maxEvents = 2048
		var events []monitor.Event
		for len(events) < maxEvents {
			batch, ok, err := tr.NextBatch(events)
			if err != nil {
				break // the validated prefix is still a legal trace
			}
			events = batch
			if !ok {
				break
			}
		}
		if len(events) > maxEvents {
			events = events[:maxEvents]
		}
		k := int(kRaw)%256 + 1
		for _, spec := range []Spec{
			{Pred: monitor.PredSyncP},
			{Pred: monitor.PredShort, K: k},
		} {
			want := Races(spec, hdr.Threads, hdr.Decls, events)
			m := monitor.New(hdr.Threads, hdr.Decls)
			m.SetGCInterval(64)
			spec.Apply(m)
			m.StepBatch(events)
			if got := m.Reports(); !race.ReportsEqual(got, want) {
				t.Fatalf("%v: monitor %v, reference %v", spec, got, want)
			}
		}
	})
}

// TestSpecStringFormat pins the flag spellings racemon documents.
func TestSpecStringFormat(t *testing.T) {
	if s := (Spec{Pred: monitor.PredShort, K: 64}).String(); s != "short:64" {
		t.Fatalf("short spec String() = %q", s)
	}
	if s := fmt.Sprint(Spec{Pred: monitor.PredSyncP}); s != "syncp" {
		t.Fatalf("syncp spec String() = %q", s)
	}
}
