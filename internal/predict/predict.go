// Package predict holds the specification side of the predictive race
// predicates: the racemon flag grammar (Parse/Spec) and slow reference
// deciders for every predicate the streaming monitor implements
// (internal/monitor, predict.go there).
//
// The reference deciders are deliberately dumb and structurally
// independent of the monitor: full vector clocks for every thread, no
// epoch compression, no release-acquire garbage collection (every
// published message is retained for the whole trace), full per-location
// access histories, and an all-pairs scan of every access against every
// earlier access (bounded to distance k under PredShort). They share no
// state-machine code with the monitor beyond the Event/Report types, so
// a differential run (modeltest, and FuzzPredict here) cross-checks two
// genuinely different implementations of the same definition:
//
//   - PredHB: join-at-every-sync-edge vector clocks — the paper's
//     defs. 9/10 over the observed trace.
//   - PredSyncP: the sync-preserving construction — only program order
//     and reads-from edges join. An SC-atomic write publishes its clock
//     without first joining the location's previous released clock
//     (write→write coherence is the order a sync-preserving reordering
//     may flip); atomic reads and RA reads join exactly the clock of the
//     write they read from.
//   - PredShort: PredSyncP restricted to access pairs at most k events
//     apart in the observed trace (distance measured in global stream
//     positions over all events, synchronisation included).
//
// Races deduplicates exactly as the monitor and race.Races do — by
// location, ordered thread pair (earlier access first) and access-kind
// pair — and sorts with race.SortReports, so its output is directly
// comparable with Monitor.Reports.
package predict

import (
	"fmt"
	"strconv"
	"strings"

	"localdrf/internal/monitor"
	"localdrf/internal/prog"
	"localdrf/internal/race"
)

// Spec is a parsed predicate selection: the predicate and, for
// monitor.PredShort, the event-distance bound K.
type Spec struct {
	Pred monitor.Predicate
	K    int
}

// Parse parses the racemon -predicate grammar: "hb", "syncp" or
// "short:k" with k ≥ 1.
func Parse(s string) (Spec, error) {
	switch {
	case s == "hb":
		return Spec{Pred: monitor.PredHB}, nil
	case s == "syncp":
		return Spec{Pred: monitor.PredSyncP}, nil
	case strings.HasPrefix(s, "short:"):
		k, err := strconv.Atoi(s[len("short:"):])
		if err != nil || k < 1 {
			return Spec{}, fmt.Errorf("predict: bad window in %q (want short:k with k ≥ 1)", s)
		}
		return Spec{Pred: monitor.PredShort, K: k}, nil
	case s == "short":
		return Spec{}, fmt.Errorf("predict: %q needs a window (short:k)", s)
	default:
		return Spec{}, fmt.Errorf("predict: unknown predicate %q (want hb, syncp or short:k)", s)
	}
}

// String returns the flag spelling Parse accepts.
func (s Spec) String() string {
	if s.Pred == monitor.PredShort {
		return "short:" + strconv.Itoa(s.K)
	}
	return s.Pred.String()
}

// Apply configures a fresh monitor (or pipeline front-end) for the
// predicate. It is a no-op for the default PredHB.
func (s Spec) Apply(m *monitor.Monitor) {
	if s.Pred != monitor.PredHB {
		m.SetPredicate(s.Pred, s.K)
	}
}

// refAccess is one recorded nonatomic access in the reference decider's
// full history: its global stream position, the accessor's own clock
// component at the access, and the access identity.
type refAccess struct {
	gidx  uint64
	epoch uint64
	t     int32
	write bool
}

// tsKey canonicalises an RA timestamp for map lookup (normalised
// rational, mirroring the wire contract that equal timestamps identify
// the reads-from edge).
type tsKey struct{ num, den int64 }

// Races decides the predicate over one observed trace by brute force:
// full vector clocks, full histories, all-pairs checks, no compression
// and no garbage collection. Events must satisfy the same validity
// contract Monitor.Step requires (the wire decoder and Table establish
// it). Memory is O(events) — this is the oracle, not the detector.
func Races(spec Spec, nthreads int, decls []monitor.LocDecl, events []monitor.Event) []race.Report {
	clocks := make([][]uint64, nthreads)
	for t := range clocks {
		clocks[t] = make([]uint64, nthreads)
	}
	at := make([][]uint64, len(decls))
	ra := make([]map[tsKey][]uint64, len(decls))
	hist := make([][]refAccess, len(decls))
	for l, d := range decls {
		switch d.Kind {
		case prog.Atomic:
			at[l] = make([]uint64, nthreads)
		case prog.ReleaseAcquire:
			ra[l] = make(map[tsKey][]uint64)
		}
	}
	seen := make(map[race.Report]bool)
	var gidx uint64
	for _, e := range events {
		gidx++
		t := int(e.Thread)
		c := clocks[t]
		c[t]++
		switch e.Kind {
		case monitor.ReadNA, monitor.WriteNA:
			write := e.Kind == monitor.WriteNA
			for _, a := range hist[e.Loc] {
				if spec.Pred == monitor.PredShort && gidx-a.gidx > uint64(spec.K) {
					continue
				}
				if a.t != e.Thread && (a.write || write) && a.epoch > c[a.t] {
					seen[race.Report{
						Loc:     decls[e.Loc].Name,
						ThreadI: int(a.t),
						ThreadJ: t,
						WriteI:  a.write,
						WriteJ:  write,
					}] = true
				}
			}
			hist[e.Loc] = append(hist[e.Loc], refAccess{gidx: gidx, epoch: c[t], t: e.Thread, write: write})
		case monitor.ReadAT:
			join(c, at[e.Loc])
		case monitor.WriteAT:
			if spec.Pred == monitor.PredHB {
				join(c, at[e.Loc])
			}
			copy(at[e.Loc], c)
		case monitor.ReadRA:
			num, den := e.Time.Fraction()
			if vc, ok := ra[e.Loc][tsKey{num, den}]; ok {
				join(c, vc)
			}
		case monitor.WriteRA:
			vc := make([]uint64, nthreads)
			copy(vc, c)
			num, den := e.Time.Fraction()
			ra[e.Loc][tsKey{num, den}] = vc
		case monitor.KindHalt:
			// Halts are advisory retention hints; the reference retains
			// everything anyway.
		}
	}
	out := make([]race.Report, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	race.SortReports(out)
	return out
}

func join(c, vc []uint64) {
	for u, v := range vc {
		if v > c[u] {
			c[u] = v
		}
	}
}
