package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGaugeVec(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Add(3)
	c.Add(4)
	if got := c.Load(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	c.Store(100)
	if got := c.Load(); got != 100 {
		t.Fatalf("counter after Store = %d, want 100", got)
	}
	if r.Counter("events") != c {
		t.Fatalf("Counter is not get-or-create")
	}

	g := r.Gauge("interval")
	g.Set(-5)
	if got := g.Load(); got != -5 {
		t.Fatalf("gauge = %d, want -5", got)
	}

	v := r.Vec("loads", 3)
	v.Add(0, 10)
	v.Store(2, 32)
	if got := v.Sum(); got != 42 {
		t.Fatalf("vec sum = %d, want 42", got)
	}
	if got := v.Values(nil); len(got) != 3 || got[0] != 10 || got[1] != 0 || got[2] != 32 {
		t.Fatalf("vec values = %v, want [10 0 32]", got)
	}
	if r.Vec("loads", 99).Len() != 3 {
		t.Fatalf("Vec re-registration must keep the original size")
	}
}

func TestHistPowerOfTwoBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Hist("batch")
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1024} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["batch"]
	if s.Count != 8 || s.Sum != 0+1+2+3+4+7+8+1024 {
		t.Fatalf("hist count=%d sum=%d", s.Count, s.Sum)
	}
	// Buckets: 0→{0}, le=1→{1}, le=3→{2,3}, le=7→{4,7}, le=15→{8}, le=2047→{1024}.
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 7: 2, 15: 1, 2047: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %v", s.Buckets, want)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.N {
			t.Fatalf("bucket le=%d n=%d, want n=%d", b.Le, b.N, want[b.Le])
		}
	}
	if m := s.Mean(); m != float64(s.Sum)/8 {
		t.Fatalf("mean = %v", m)
	}
}

// TestSnapshotStableJSON: equal registry states must render to equal
// bytes (map keys marshal sorted), the property racemon's stats-parity
// checks rely on.
func TestSnapshotStableJSON(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b").Add(2)
		r.Counter("a").Add(1)
		r.Gauge("z").Set(9)
		r.Vec("v", 2).Store(1, 7)
		r.Hist("h").Observe(5)
		return r
	}
	j1, err := json.Marshal(build().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(build().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("snapshot JSON not stable:\n%s\n%s", j1, j2)
	}
	var decoded Snapshot
	if err := json.Unmarshal(j1, &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
}

func TestDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	g := r.Gauge("live")
	v := r.Vec("loads", 2)
	h := r.Hist("batch")
	c.Store(100)
	g.Set(5)
	v.Store(0, 10)
	h.Observe(4)
	prev := r.Snapshot()
	c.Store(250)
	g.Set(7)
	v.Store(0, 25)
	v.Store(1, 5)
	h.Observe(4)
	h.Observe(100)
	d := r.Snapshot().Delta(prev)
	if d.Counter("events") != 150 {
		t.Fatalf("delta counter = %d, want 150", d.Counter("events"))
	}
	if d.Gauge("live") != 7 {
		t.Fatalf("delta gauge = %d, want current value 7", d.Gauge("live"))
	}
	if dv := d.Vectors["loads"]; dv[0] != 15 || dv[1] != 5 {
		t.Fatalf("delta vec = %v, want [15 5]", dv)
	}
	dh := d.Histograms["batch"]
	if dh.Count != 2 || dh.Sum != 104 {
		t.Fatalf("delta hist count=%d sum=%d, want 2/104", dh.Count, dh.Sum)
	}
	// A counter that went backwards (reset) saturates at 0.
	c.Store(10)
	if got := r.Snapshot().Delta(prev).Counter("events"); got != 0 {
		t.Fatalf("reset delta = %d, want 0 (saturating)", got)
	}
}

// TestConcurrentSnapshot hammers a registry from writer and reader
// goroutines — meaningful under -race: every value crossing goroutines
// must be an atomic cell.
func TestConcurrentSnapshot(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("events")
			v := r.Vec("loads", 4)
			h := r.Hist("batch")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Add(1)
				v.Add(w, 2)
				h.Observe(uint64(i % 1000))
				r.Gauge("live").Set(int64(i))
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		s := r.Snapshot()
		if _, err := json.Marshal(s); err != nil {
			t.Errorf("marshal: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()
	s := r.Snapshot()
	if s.Counter("events") != r.Vec("loads", 4).Sum()/2 {
		t.Fatalf("events=%d, loads sum/2=%d — writers disagree", s.Counter("events"), r.Vec("loads", 4).Sum()/2)
	}
}
