// Package obs is the zero-dependency telemetry substrate of the
// streaming race monitor: counters, gauges, per-worker counter vectors
// and power-of-two-bucket histograms, collected into a Registry that
// renders a stable JSON snapshot.
//
// The package exists because the monitor's hot path has no time for
// conventional metrics plumbing: at ~45M events/sec the per-event budget
// is ~20ns, so even one uncontended atomic read-modify-write per event
// (several ns) would blow the ≤2% instrumentation bound the monitor
// promises. The design splits the cost accordingly:
//
//   - Writers that own their state single-threaded (the sequential
//     Monitor, the pipeline front-end) count in PLAIN fields on the hot
//     path — an ordinary add, fractions of a nanosecond — and publish
//     them into the registry's atomic cells at natural amortisation
//     points (GC sweeps, batch boundaries, quiesce barriers). Readers
//     therefore see values at bounded staleness (at most one publish
//     interval behind), never a torn or racy read.
//
//   - Concurrent writers (pipeline back-ends, parse workers) each own
//     one cell of a Vec — a padded per-worker array of atomic cells, so
//     writers never share a cache line — and update it once per batch or
//     frame, not per event. Reads aggregate or enumerate the cells.
//
//   - Histograms bucket by power of two (bits.Len64), so Observe is one
//     atomic add into a fixed array; they are meant for per-batch and
//     per-barrier quantities (batch sizes, quiesce latencies, snapshot
//     sizes), never per-event ones.
//
// Metrics must never feed back into the instrumented computation: a
// registry is write-only from the monitor's point of view, and the
// monitor's reports and snapshots are byte-identical with metrics
// published, read concurrently, or ignored (asserted by the differential
// and metamorphic harnesses in internal/modeltest).
//
// Snapshot is safe to call from any goroutine at any time — every value
// is an atomic load — and marshals to JSON with deterministic key order
// (Go maps marshal sorted). Snapshot.Delta subtracts a previous snapshot
// for rate computation, which is how racemon's /stats endpoint derives
// events/sec between polls.
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// pad is the cache-line padding wrapped around hot atomic cells so two
// cells touched by different goroutines never false-share. 64 bytes
// covers every CPU this repo targets; the atomic.Uint64 itself occupies
// the first word of the second line.
type pad [56]byte

// Counter is a monotonically increasing metric: a padded atomic cell.
// Single-owner writers should accumulate in a plain local and Store the
// running total at publish points; genuinely concurrent writers may Add.
type Counter struct {
	_ pad
	v atomic.Uint64
	_ pad
}

// Add increments the counter by n (atomic; safe from any goroutine).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Store publishes an absolute running total (the single-writer pattern:
// count in a plain field, Store it at amortisation points).
func (c *Counter) Store(v uint64) { c.v.Store(v) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a point-in-time signed value (occupancy, interval, imbalance).
type Gauge struct {
	_ pad
	v atomic.Int64
	_ pad
}

// Set publishes the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// cell is one padded element of a Vec.
type cell struct {
	_ pad
	v atomic.Uint64
	_ pad
}

// Vec is a fixed-size vector of padded atomic cells, one per worker
// (pipeline back-end, parse worker, ring): each writer owns exactly one
// index, so updates never contend, and readers enumerate or sum the
// cells. Rendered in snapshots as a JSON array in index order.
type Vec struct {
	cells []cell
}

// Add atomically adds n to cell i.
func (v *Vec) Add(i int, n uint64) { v.cells[i].v.Add(n) }

// Store atomically publishes cell i.
func (v *Vec) Store(i int, x uint64) { v.cells[i].v.Store(x) }

// Load returns cell i.
func (v *Vec) Load(i int) uint64 { return v.cells[i].v.Load() }

// Len returns the number of cells.
func (v *Vec) Len() int { return len(v.cells) }

// Sum returns the sum of all cells (each loaded atomically; the sum is
// not a consistent cut, which is fine for monotone per-worker counters).
func (v *Vec) Sum() uint64 {
	var s uint64
	for i := range v.cells {
		s += v.cells[i].v.Load()
	}
	return s
}

// Values appends the cells to dst in index order.
func (v *Vec) Values(dst []uint64) []uint64 {
	for i := range v.cells {
		dst = append(dst, v.cells[i].v.Load())
	}
	return dst
}

// histBuckets is the number of power-of-two histogram buckets: bucket k
// counts observations v with bits.Len64(v) == k, i.e. bucket 0 holds
// v == 0 and bucket k ≥ 1 holds 2^(k-1) ≤ v < 2^k.
const histBuckets = 65

// Hist is a power-of-two-bucket histogram for latencies, sizes and batch
// lengths. Observe is one atomic add plus one atomic add to the sum —
// cheap enough for per-batch and per-barrier quantities (NOT per-event).
type Hist struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// HistSnapshot is the rendered state of a Hist: total count and sum plus
// the non-empty buckets, each labelled with its inclusive upper bound
// (2^k - 1).
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one non-empty power-of-two bucket.
type HistBucket struct {
	// Le is the bucket's inclusive upper bound (2^k - 1; 0 for the
	// zero-value bucket).
	Le uint64 `json:"le"`
	// N is the number of observations in the bucket.
	N uint64 `json:"n"`
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

func (h *Hist) snapshot() HistSnapshot {
	// Load count LAST so the invariant "sum of rendered buckets ≥ Count"
	// can only err towards extra bucket entries, never a Count exceeding
	// the buckets, under concurrent Observes.
	var s HistSnapshot
	for k := range h.buckets {
		if n := h.buckets[k].Load(); n > 0 {
			le := uint64(0)
			if k > 0 {
				le = 1<<uint(k) - 1
			}
			s.Buckets = append(s.Buckets, HistBucket{Le: le, N: n})
		}
	}
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

// Registry is a named collection of metrics. Metric constructors are
// get-or-create by name and may be called from any goroutine (they lock);
// the returned cells are then updated lock-free. Snapshot reads every
// metric with atomic loads and is safe concurrently with all updates.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	vecs     map[string]*Vec
	hists    map[string]*Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		vecs:     make(map[string]*Vec),
		hists:    make(map[string]*Hist),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Vec returns the n-cell vector registered under name, creating it on
// first use. A vector's size is fixed at creation; a later call with a
// different n returns the existing vector unchanged.
func (r *Registry) Vec(name string, n int) *Vec {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.vecs[name]
	if !ok {
		v = &Vec{cells: make([]cell, n)}
		r.vecs[name] = v
	}
	return v
}

// Hist returns the histogram registered under name, creating it on first
// use.
func (r *Registry) Hist(name string) *Hist {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Hist{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is the rendered state of a registry at one instant: every
// metric read atomically, keyed by name. It marshals to JSON with
// deterministic (sorted) key order, so equal states render to equal
// bytes.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Vectors    map[string][]uint64     `json:"vectors,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot reads every registered metric (atomic loads; safe from any
// goroutine, concurrent with updates and registrations).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Load()
		}
	}
	if len(r.vecs) > 0 {
		s.Vectors = make(map[string][]uint64, len(r.vecs))
		for n, v := range r.vecs {
			s.Vectors[n] = v.Values(make([]uint64, 0, v.Len()))
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = h.snapshot()
		}
	}
	return s
}

// Counter returns the named counter value (0 when absent) — the
// convenient read path for tests and report assembly.
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns the named gauge value (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Delta returns s minus prev: counters, vectors and histogram
// counts/sums are subtracted pairwise (saturating at 0, so a reset
// between snapshots cannot render as an underflowed giant), gauges keep
// their current value (a gauge has no meaningful difference). Metrics
// absent from prev are carried over whole. The result is what happened
// BETWEEN the two snapshots — divide by the wall-clock interval for
// rates.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{Gauges: s.Gauges}
	if len(s.Counters) > 0 {
		d.Counters = make(map[string]uint64, len(s.Counters))
		for n, v := range s.Counters {
			d.Counters[n] = sub(v, prev.Counters[n])
		}
	}
	if len(s.Vectors) > 0 {
		d.Vectors = make(map[string][]uint64, len(s.Vectors))
		for n, v := range s.Vectors {
			pv := prev.Vectors[n]
			dv := make([]uint64, len(v))
			for i, x := range v {
				if i < len(pv) {
					dv[i] = sub(x, pv[i])
				} else {
					dv[i] = x
				}
			}
			d.Vectors[n] = dv
		}
	}
	if len(s.Histograms) > 0 {
		d.Histograms = make(map[string]HistSnapshot, len(s.Histograms))
		for n, h := range s.Histograms {
			d.Histograms[n] = h.delta(prev.Histograms[n])
		}
	}
	return d
}

func (h HistSnapshot) delta(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{Count: sub(h.Count, prev.Count), Sum: sub(h.Sum, prev.Sum)}
	pb := make(map[uint64]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		pb[b.Le] = b.N
	}
	for _, b := range h.Buckets {
		if n := sub(b.N, pb[b.Le]); n > 0 {
			d.Buckets = append(d.Buckets, HistBucket{Le: b.Le, N: n})
		}
	}
	return d
}

// Merge combines snapshots taken from separate registries into one.
// Metric names are expected to be disjoint (each subsystem prefixes its
// own); on a collision the later snapshot wins.
func Merge(snaps ...Snapshot) Snapshot {
	var m Snapshot
	for _, s := range snaps {
		for n, v := range s.Counters {
			if m.Counters == nil {
				m.Counters = make(map[string]uint64)
			}
			m.Counters[n] = v
		}
		for n, v := range s.Gauges {
			if m.Gauges == nil {
				m.Gauges = make(map[string]int64)
			}
			m.Gauges[n] = v
		}
		for n, v := range s.Vectors {
			if m.Vectors == nil {
				m.Vectors = make(map[string][]uint64)
			}
			m.Vectors[n] = v
		}
		for n, v := range s.Histograms {
			if m.Histograms == nil {
				m.Histograms = make(map[string]HistSnapshot)
			}
			m.Histograms[n] = v
		}
	}
	return m
}

func sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}
