package progsynth

// Scaled program generation — the workload lever the streaming monitor
// (internal/monitor) opens. Where Random stays litmus-sized so exhaustive
// checkers terminate, Scaled generates programs with many threads looping
// over many locations: a single schedule of such a program (produced by
// internal/schedgen) reaches millions of events, far beyond what trace
// enumeration can touch, while remaining a well-formed prog.Program that
// every layer of the stack understands.

import (
	"fmt"
	"math/rand"

	"localdrf/internal/prog"
)

// ScaledConfig tunes the scaled generator. The zero value is replaced by
// ScaledDefaults.
type ScaledConfig struct {
	// Threads is the exact thread count.
	Threads int
	// Iters is the per-thread loop iteration count; total memory events
	// are ≈ Threads × Iters × OpsPerIter when a schedule runs to
	// completion.
	Iters int
	// OpsPerIter is the number of memory operations in each loop body.
	OpsPerIter int
	// NonAtomic, Atomics and RAs size the location pools (x0…, A0…, R0…).
	NonAtomic int
	Atomics   int
	RAs       int
	// WritePct is the percentage of operations that are stores.
	WritePct int
	// SyncPct is the percentage of operations aimed at synchronising
	// locations (atomic or RA) rather than nonatomic ones.
	SyncPct int
	// MaxConst bounds stored immediates (1..MaxConst).
	MaxConst int
	// PrivateLocs adds, per thread, that many thread-private nonatomic
	// locations (p<t>n<k>), and PrivatePct redirects that percentage of
	// the nonatomic data operations to the accessing thread's own
	// private pool. Private locations are exactly what a static
	// race-freedom analysis (internal/staticrace) can certify — every
	// access site is in one thread — so workloads with a private share
	// give the monitor's static pre-filter real traffic to skip. Both
	// zero (the default) leaves generation byte-identical to a config
	// without the fields, so existing seeds, goldens and benches are
	// unaffected.
	PrivateLocs int
	PrivatePct  int
}

// ScaledDefaults is a workload shape that produces dense mixed traffic:
// mostly nonatomic accesses with enough synchronisation to build
// nontrivial happens-before structure.
func ScaledDefaults() ScaledConfig {
	return ScaledConfig{
		Threads:    8,
		Iters:      2_000,
		OpsPerIter: 8,
		NonAtomic:  48,
		Atomics:    8,
		RAs:        8,
		WritePct:   40,
		SyncPct:    20,
		MaxConst:   8,
	}
}

// EventsPerIteration is how many memory events one thread's loop body
// emits: the OpsPerIter random ops plus the two-op synchronisation
// heartbeat (present whenever the atomic pool is nonempty).
func (c ScaledConfig) EventsPerIteration() int {
	if c.Atomics > 0 {
		return c.OpsPerIter + 2
	}
	return c.OpsPerIter
}

// IterationsFor returns the Iters value that guarantees a schedule of at
// least the given event count before any thread halts: each thread emits
// Iters × EventsPerIteration memory events, and the ×2 slack absorbs
// scheduling skew (an unfair policy may drain one thread long before
// another). Every consumer that sizes a program for a target stream
// length must go through this, so the loop shape and the sizing can only
// change together.
func (c ScaledConfig) IterationsFor(events int) int {
	perIter := c.Threads * c.EventsPerIteration()
	if perIter <= 0 {
		return 1
	}
	return (events/perIter + 1) * 2
}

// Scaled generates a large looping program from the given seed. Equal
// seeds and configs yield equal programs. Each thread is
//
//	i := Iters
//	loop: <OpsPerIter random loads/stores> ; <heartbeat> ;
//	      i := i + (-1) ; if i goto loop
//
// with operations drawn over the shared location pools, so every pair of
// threads contends on both data and synchronisation locations. The
// heartbeat (when Atomics > 0) is a write of atomic A[t mod Atomics]
// followed by a read of A[t+1 mod Atomics]: a strongly connected ring
// that guarantees every thread keeps synchronising with every other, the
// precondition for frontiers to advance — and hence for windowed
// analyses like the monitor's RA message GC to reclaim anything.
func Scaled(seed int64, cfg ScaledConfig) *prog.Program {
	if cfg.Threads == 0 {
		cfg = ScaledDefaults()
	}
	r := rand.New(rand.NewSource(seed))
	b := prog.NewProgram(fmt.Sprintf("scaled-%d", seed))
	var na, at, ra []prog.Loc
	for i := 0; i < cfg.NonAtomic; i++ {
		na = append(na, prog.Loc(fmt.Sprintf("x%d", i)))
	}
	for i := 0; i < cfg.Atomics; i++ {
		at = append(at, prog.Loc(fmt.Sprintf("A%d", i)))
	}
	for i := 0; i < cfg.RAs; i++ {
		ra = append(ra, prog.Loc(fmt.Sprintf("R%d", i)))
	}
	b.Vars(na...)
	b.Atomics(at...)
	b.RAs(ra...)
	// Thread-private pools (empty unless PrivateLocs > 0).
	priv := make([][]prog.Loc, cfg.Threads)
	for ti := 0; ti < cfg.Threads; ti++ {
		for k := 0; k < cfg.PrivateLocs; k++ {
			l := prog.Loc(fmt.Sprintf("p%dn%d", ti, k))
			priv[ti] = append(priv[ti], l)
			b.Vars(l)
		}
	}
	sync := append(append([]prog.Loc{}, at...), ra...)

	for ti := 0; ti < cfg.Threads; ti++ {
		tb := b.Thread(fmt.Sprintf("P%d", ti))
		ctr := prog.Reg(fmt.Sprintf("i%d", ti))
		tb.Mov(ctr, prog.I(prog.Val(cfg.Iters)))
		tb.Label("loop")
		// A small register ring keeps the register file (and hence the
		// interpreter's map traffic) bounded regardless of Iters.
		regN := 0
		reg := func() prog.Reg {
			regN++
			return prog.Reg(fmt.Sprintf("t%dr%d", ti, regN%4))
		}
		for op := 0; op < cfg.OpsPerIter; op++ {
			pool := na
			if len(sync) > 0 && r.Intn(100) < cfg.SyncPct {
				pool = sync
			} else if len(priv[ti]) > 0 && cfg.PrivatePct > 0 && r.Intn(100) < cfg.PrivatePct {
				// Redirect a share of the data traffic to this thread's
				// private pool. The draw happens only when private pools
				// exist, so disabled configs consume the same random
				// sequence as before the fields existed.
				pool = priv[ti]
			}
			if len(pool) == 0 {
				pool = na
			}
			loc := pool[r.Intn(len(pool))]
			if r.Intn(100) < cfg.WritePct {
				tb.Store(loc, prog.I(prog.Val(1+r.Intn(cfg.MaxConst))))
			} else {
				tb.Load(reg(), loc)
			}
		}
		// Each iteration ends with a synchronisation heartbeat: write one
		// atomic of a ring, read the next (no randomness consumed, so the
		// random op mix above is independent of it). Purely random draws
		// from a wide sync pool leave most thread pairs never
		// synchronising at all — their compiled-in sync locations are
		// disjoint — which no real scaled program does, and which starves
		// every frontier-based analysis: thread clocks stay diagonal, so
		// the monitor's windowed RA collection can never prove a message
		// dead. The ring makes the sync graph strongly connected, so
		// frontiers advance and the live-message window stays bounded.
		if len(at) > 0 {
			tb.Store(at[ti%len(at)], prog.I(1))
			tb.Load(reg(), at[(ti+1)%len(at)])
		}
		tb.Add(ctr, prog.R(ctr), prog.I(-1))
		tb.JmpNZ(ctr, "loop")
		tb.Done()
	}
	return b.MustBuild()
}
