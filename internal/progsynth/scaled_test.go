package progsynth

import (
	"testing"

	"localdrf/internal/prog"
)

// TestScaledDeterministic: equal seeds and configs yield equal programs.
func TestScaledDeterministic(t *testing.T) {
	a := Scaled(5, ScaledConfig{})
	b := Scaled(5, ScaledConfig{})
	if a.String() != b.String() {
		t.Fatal("Scaled is nondeterministic")
	}
	if Scaled(6, ScaledConfig{}).String() == a.String() {
		t.Fatal("distinct seeds produced identical programs")
	}
}

// TestScaledShape: the generated program matches the configured scale and
// is structurally valid.
func TestScaledShape(t *testing.T) {
	cfg := ScaledConfig{
		Threads: 5, Iters: 10, OpsPerIter: 6,
		NonAtomic: 7, Atomics: 3, RAs: 2,
		WritePct: 50, SyncPct: 30, MaxConst: 4,
	}
	p := Scaled(9, cfg)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Threads) != cfg.Threads {
		t.Fatalf("got %d threads, want %d", len(p.Threads), cfg.Threads)
	}
	na, at, ra := 0, 0, 0
	for _, k := range p.Locs {
		switch k {
		case prog.Atomic:
			at++
		case prog.ReleaseAcquire:
			ra++
		default:
			na++
		}
	}
	if na != cfg.NonAtomic || at != cfg.Atomics || ra != cfg.RAs {
		t.Fatalf("location pools %d/%d/%d, want %d/%d/%d",
			na, at, ra, cfg.NonAtomic, cfg.Atomics, cfg.RAs)
	}
	// Each thread: Mov + OpsPerIter memory ops + the two-op heartbeat
	// + Add + JmpNZ.
	for ti, th := range p.Threads {
		if len(th.Code) != cfg.EventsPerIteration()+3 {
			t.Fatalf("thread %d has %d instructions, want %d", ti, len(th.Code), cfg.EventsPerIteration()+3)
		}
	}
}
