package progsynth

import (
	"fmt"
	"testing"

	"localdrf/internal/prog"
)

// TestScaledDeterministic: equal seeds and configs yield equal programs.
func TestScaledDeterministic(t *testing.T) {
	a := Scaled(5, ScaledConfig{})
	b := Scaled(5, ScaledConfig{})
	if a.String() != b.String() {
		t.Fatal("Scaled is nondeterministic")
	}
	if Scaled(6, ScaledConfig{}).String() == a.String() {
		t.Fatal("distinct seeds produced identical programs")
	}
}

// TestScaledShape: the generated program matches the configured scale and
// is structurally valid.
func TestScaledShape(t *testing.T) {
	cfg := ScaledConfig{
		Threads: 5, Iters: 10, OpsPerIter: 6,
		NonAtomic: 7, Atomics: 3, RAs: 2,
		WritePct: 50, SyncPct: 30, MaxConst: 4,
	}
	p := Scaled(9, cfg)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Threads) != cfg.Threads {
		t.Fatalf("got %d threads, want %d", len(p.Threads), cfg.Threads)
	}
	na, at, ra := 0, 0, 0
	for _, k := range p.Locs {
		switch k {
		case prog.Atomic:
			at++
		case prog.ReleaseAcquire:
			ra++
		default:
			na++
		}
	}
	if na != cfg.NonAtomic || at != cfg.Atomics || ra != cfg.RAs {
		t.Fatalf("location pools %d/%d/%d, want %d/%d/%d",
			na, at, ra, cfg.NonAtomic, cfg.Atomics, cfg.RAs)
	}
	// Each thread: Mov + OpsPerIter memory ops + the two-op heartbeat
	// + Add + JmpNZ.
	for ti, th := range p.Threads {
		if len(th.Code) != cfg.EventsPerIteration()+3 {
			t.Fatalf("thread %d has %d instructions, want %d", ti, len(th.Code), cfg.EventsPerIteration()+3)
		}
	}
}

// TestScaledPrivateDisabledIdentical: PrivatePct without PrivateLocs (and
// vice versa, on the instruction stream) must not perturb generation —
// the extra random draw is gated on a nonempty private pool, so existing
// seeds keep producing byte-identical programs.
func TestScaledPrivateDisabledIdentical(t *testing.T) {
	base := ScaledConfig{
		Threads: 4, Iters: 20, OpsPerIter: 6,
		NonAtomic: 8, Atomics: 2, RAs: 2,
		WritePct: 40, SyncPct: 25, MaxConst: 4,
	}
	withPct := base
	withPct.PrivatePct = 70
	if Scaled(11, base).String() != Scaled(11, withPct).String() {
		t.Fatal("PrivatePct with zero PrivateLocs changed generation")
	}
}

// TestScaledPrivateLocs: private pools are declared nonatomic, accessed
// only by their own thread, and actually receive traffic.
func TestScaledPrivateLocs(t *testing.T) {
	cfg := ScaledConfig{
		Threads: 3, Iters: 5, OpsPerIter: 8,
		NonAtomic: 4, Atomics: 2,
		WritePct: 50, SyncPct: 20, MaxConst: 3,
		PrivateLocs: 2, PrivatePct: 60,
	}
	p := Scaled(13, cfg)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Which thread touches each location?
	touched := map[prog.Loc]map[int]bool{}
	for ti, th := range p.Threads {
		for _, in := range th.Code {
			switch i := in.(type) {
			case prog.Store:
				if touched[i.Dst] == nil {
					touched[i.Dst] = map[int]bool{}
				}
				touched[i.Dst][ti] = true
			case prog.Load:
				if touched[i.Src] == nil {
					touched[i.Src] = map[int]bool{}
				}
				touched[i.Src][ti] = true
			}
		}
	}
	sawPrivate := false
	for ti := 0; ti < cfg.Threads; ti++ {
		for k := 0; k < cfg.PrivateLocs; k++ {
			l := prog.Loc(fmt.Sprintf("p%dn%d", ti, k))
			if got := p.Kind(l); got != prog.NonAtomic {
				t.Fatalf("%s declared %v, want nonatomic", l, got)
			}
			for u := range touched[l] {
				if u != ti {
					t.Fatalf("private location %s accessed by thread %d", l, u)
				}
			}
			if len(touched[l]) > 0 {
				sawPrivate = true
			}
		}
	}
	if !sawPrivate {
		t.Fatal("no private location received any traffic at PrivatePct=60")
	}
}
