package progsynth

import (
	"testing"

	"localdrf/internal/prog"
)

func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Random(seed, Config{})
		b := Random(seed, Config{})
		if a.String() != b.String() {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	distinct := map[string]bool{}
	for seed := int64(0); seed < 30; seed++ {
		distinct[Random(seed, Config{}).String()] = true
	}
	if len(distinct) < 20 {
		t.Errorf("only %d distinct programs from 30 seeds", len(distinct))
	}
}

func TestValidPrograms(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := Random(seed, Config{})
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(p.Threads) < 2 {
			t.Fatalf("seed %d: %d threads", seed, len(p.Threads))
		}
	}
}

func TestCoverage(t *testing.T) {
	// Across a few hundred seeds the generator must produce loads,
	// stores, register stores, branches, and both atomicity kinds.
	var loads, stores, regStores, branches, atomicOps int
	for seed := int64(0); seed < 300; seed++ {
		p := Random(seed, Config{})
		for _, th := range p.Threads {
			for _, in := range th.Code {
				switch i := in.(type) {
				case prog.Load:
					loads++
					if p.IsAtomic(i.Src) {
						atomicOps++
					}
				case prog.Store:
					stores++
					if i.Src.IsReg {
						regStores++
					}
					if p.IsAtomic(i.Dst) {
						atomicOps++
					}
				case prog.JmpZ:
					branches++
				}
			}
		}
	}
	for name, n := range map[string]int{
		"loads": loads, "stores": stores, "register stores": regStores,
		"branches": branches, "atomic accesses": atomicOps,
	} {
		if n == 0 {
			t.Errorf("generator never produced %s", name)
		}
	}
}

func TestConfigRespected(t *testing.T) {
	cfg := Config{
		MaxThreads:    2,
		MaxOps:        2,
		AtomicLocs:    []prog.Loc{"A"},
		NonAtomicLocs: []prog.Loc{"x"},
		MaxConst:      1,
	}
	for seed := int64(0); seed < 50; seed++ {
		p := Random(seed, cfg)
		if len(p.Threads) > 2 {
			t.Fatalf("seed %d: %d threads > max 2", seed, len(p.Threads))
		}
		for _, th := range p.Threads {
			mem := 0
			for _, in := range th.Code {
				switch in.(type) {
				case prog.Load, prog.Store:
					mem++
				}
			}
			if mem > 3 { // a branch-guarded store adds at most one extra
				t.Fatalf("seed %d: %d memory ops", seed, mem)
			}
		}
	}
}
