// Package progsynth generates small random programs for property-based
// testing of the semantic equivalences (operational ≡ axiomatic, thm.
// 15/16), the DRF theorems, and compilation soundness (thms. 19/20).
//
// Programs are kept litmus-sized (2–3 threads, a few operations each,
// loop-free) so the exhaustive checkers stay fast; within that envelope
// the generator covers the interesting structure: mixed atomic/nonatomic
// locations, stores of constants and of read values, and control
// dependencies on read values.
package progsynth

import (
	"fmt"
	"math/rand"

	"localdrf/internal/prog"
)

// Config tunes the generator. The zero value is replaced by Defaults.
type Config struct {
	// MaxThreads is the number of threads (2..MaxThreads used).
	MaxThreads int
	// MaxOps is the maximum memory operations per thread.
	MaxOps int
	// AtomicLocs and NonAtomicLocs name the location pools.
	AtomicLocs    []prog.Loc
	NonAtomicLocs []prog.Loc
	// MaxConst bounds immediate values (1..MaxConst).
	MaxConst int
	// AllowBranches enables control dependencies on read values.
	AllowBranches bool
	// AllowRegStores enables storing previously-read values.
	AllowRegStores bool
}

// Defaults is a configuration small enough for exhaustive model checking
// yet rich enough to exercise all four memory-operation rules.
func Defaults() Config {
	return Config{
		MaxThreads:     3,
		MaxOps:         3,
		AtomicLocs:     []prog.Loc{"A"},
		NonAtomicLocs:  []prog.Loc{"x", "y"},
		MaxConst:       2,
		AllowBranches:  true,
		AllowRegStores: true,
	}
}

// Random generates a program from the given seed. Equal seeds yield equal
// programs.
func Random(seed int64, cfg Config) *prog.Program {
	if cfg.MaxThreads == 0 {
		cfg = Defaults()
	}
	r := rand.New(rand.NewSource(seed))
	b := prog.NewProgram(fmt.Sprintf("rand-%d", seed))
	b.Vars(cfg.NonAtomicLocs...)
	b.Atomics(cfg.AtomicLocs...)
	locs := append(append([]prog.Loc{}, cfg.NonAtomicLocs...), cfg.AtomicLocs...)

	nThreads := 2 + r.Intn(cfg.MaxThreads-1)
	for ti := 0; ti < nThreads; ti++ {
		tb := b.Thread(fmt.Sprintf("P%d", ti))
		nOps := 1 + r.Intn(cfg.MaxOps)
		var readRegs []prog.Reg
		regN := 0
		for op := 0; op < nOps; op++ {
			loc := locs[r.Intn(len(locs))]
			switch {
			case cfg.AllowBranches && len(readRegs) > 0 && r.Intn(5) == 0:
				// A store guarded by a control dependency on a previous
				// read: skipped when the read value was zero.
				label := fmt.Sprintf("L%d", op)
				tb.JmpZ(readRegs[r.Intn(len(readRegs))], label)
				tb.Store(loc, prog.I(prog.Val(1+r.Intn(cfg.MaxConst))))
				tb.Label(label)
			case r.Intn(2) == 0:
				reg := prog.Reg(fmt.Sprintf("t%dr%d", ti, regN))
				regN++
				tb.Load(reg, loc)
				readRegs = append(readRegs, reg)
			case cfg.AllowRegStores && len(readRegs) > 0 && r.Intn(3) == 0:
				tb.StoreR(loc, readRegs[r.Intn(len(readRegs))])
			default:
				tb.Store(loc, prog.I(prog.Val(1+r.Intn(cfg.MaxConst))))
			}
		}
		tb.Done()
	}
	return b.MustBuild()
}
