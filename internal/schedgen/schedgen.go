// Package schedgen generates long concrete schedules — single
// interleaved executions — of multi-threaded programs, as streams of
// monitor events.
//
// The exhaustive explorers (internal/explore) enumerate *every* trace of
// a program, which bounds them to litmus-sized inputs. This package takes
// the opposite point in the design space: one schedule, chosen by a
// scheduling policy, executed by a mutable single-pass interpreter with
// no machine cloning — so schedules over scaled-up programs
// (progsynth.Scaled) reach 10⁶+ events in well under a second, the
// workload the streaming race monitor (internal/monitor) exists for.
//
// Fidelity note: the generator interprets programs with a plain store
// (per-location write histories of bounded depth) and, optionally, stale
// reads that return non-latest history entries. The streams are therefore
// *plausible* schedules, not certified traces of the operational model —
// the frontier side conditions of fig. 1 are not enforced. That is
// deliberate and harmless for the monitor contract: happens-before
// (def. 8) and data races (defs. 9/10) are pure functions of the event
// stream (threads, locations, kinds, and RA reads-from timestamps), so
// monitor-versus-race.Races agreement is meaningful on any stream; the
// differential tests check it both on schedgen streams and on genuine
// machine traces from the exhaustive explorer.
package schedgen

import (
	"fmt"
	"io"
	"math"
	"sort"

	"localdrf/internal/monitor"
	"localdrf/internal/prog"
	"localdrf/internal/ts"
)

// rng is a tiny xorshift64* generator. Schedule generation draws one or
// two random numbers per event, and at 10⁷ events/sec the standard
// library generator's rejection sampling is a measurable slice of the
// fused generate-and-monitor pipeline. Streams remain deterministic per
// seed and stable across platforms — all the Options contract promises.
type rng struct{ s uint64 }

func newRNG(seed int64) *rng {
	// SplitMix64 scramble, so nearby seeds yield unrelated streams; the
	// xorshift state must be nonzero.
	z := uint64(seed) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	return &rng{s: z}
}

func (g *rng) next() uint64 {
	s := g.s
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	g.s = s
	return s * 0x2545F4914F6CDD1D
}

// intn returns a uniform-ish int in [0,n); the modulo bias is immaterial
// at the small n drawn here.
func (g *rng) intn(n int) int { return int(g.next() % uint64(n)) }

// skewIndex maps a uniform draw u ∈ [0,1] to a rank along a normalised
// CDF. The result must be clamped: the last CDF entry is 1.0 only up to
// rounding (the normalising division can leave it at 0.99999…), so a
// draw above it — u very close to, or exactly, 1 — lands past the end
// of the search and would otherwise index out of range.
func skewIndex(cdf []float64, u float64) int {
	i := sort.SearchFloat64s(cdf, u)
	if i >= len(cdf) {
		i = len(cdf) - 1
	}
	return i
}

// Policy selects which runnable thread performs the next event.
type Policy int

const (
	// Fair picks uniformly among runnable threads.
	Fair Policy = iota
	// Unfair weights low-indexed threads geometrically (thread 0 runs
	// about twice as often as thread 1, and so on) — starvation-shaped
	// schedules.
	Unfair
	// Bursty keeps scheduling the same thread for geometrically
	// distributed burst lengths (mean ≈ 64 events) before switching —
	// the cache-friendly shape real schedulers produce, and the one the
	// monitor's same-thread fast path is built for.
	Bursty
)

func (p Policy) String() string {
	switch p {
	case Unfair:
		return "unfair"
	case Bursty:
		return "bursty"
	default:
		return "fair"
	}
}

// ParsePolicy parses "fair", "unfair" or "bursty".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fair":
		return Fair, nil
	case "unfair":
		return Unfair, nil
	case "bursty":
		return Bursty, nil
	}
	return Fair, fmt.Errorf("schedgen: unknown policy %q (want fair|unfair|bursty)", s)
}

// Options configures schedule generation.
type Options struct {
	Policy Policy
	// Seed makes schedules reproducible: equal (program, Options) yield
	// equal streams.
	Seed int64
	// MaxEvents stops the schedule after this many events even if the
	// program has not halted (0 means run to completion — only sensible
	// for terminating programs).
	MaxEvents int
	// StaleReadPct is the percentage of nonatomic and release-acquire
	// reads that return a random non-latest history entry (a weak read in
	// the def. 6 sense) instead of the latest write. Stale RA reads
	// exercise the monitor's per-message reads-from joins.
	StaleReadPct int
	// HistoryDepth bounds how many recent writes per location are kept
	// for stale reads (0 means 4). Memory stays O(locations × depth)
	// regardless of schedule length.
	HistoryDepth int
	// BurstMean is the mean burst length for the Bursty policy (0 means
	// 64).
	BurstMean int
	// EmitHalts appends a monitor.KindHalt event when a thread runs to
	// completion, telling downstream windowed analyses (the monitor's RA
	// GC) that the thread's frontier can be treated as +∞. Halt events
	// count toward MaxEvents and the emitted total. Off by default so
	// existing streams stay byte-identical; halts never change the
	// monitor's report set, only retention.
	EmitHalts bool
	// LocSkew, when > 0, redirects every nonatomic access to a location
	// drawn per-event from a Zipf distribution with this exponent over
	// the declared nonatomic locations (rank r has weight 1/(r+1)^s, rank
	// 0 being the first nonatomic declaration — so low dense indices run
	// hot). Skewed streams exercise the sharded pipeline's hot-location
	// paths and its rebalancing router; under the package's plausible-
	// schedule contract the redirection is harmless — reads still return
	// entries of the (redirected) location's own history, and the race
	// oracle and monitor agree on any stream. 0 (the default) leaves
	// streams byte-identical to previous releases; enabling it costs one
	// extra random draw per nonatomic event.
	LocSkew float64
}

// cell is the bounded write history of one location: a ring of the most
// recent writes, each with a per-location integer timestamp. Index 0 of a
// fresh cell is the initial write (value 0 at time 0, §3.1).
type cell struct {
	times [8]int64
	vals  [8]prog.Val
	n     int   // live entries (≤ depth)
	head  int   // ring index of the latest write
	next  int64 // timestamp for the next write
	depth int
}

func newCell(depth int) cell {
	c := cell{n: 1, next: 1, depth: depth}
	return c // entry 0: time 0, value 0
}

func (c *cell) push(v prog.Val) int64 {
	t := c.next
	c.next++
	c.head = (c.head + 1) % c.depth
	c.times[c.head] = t
	c.vals[c.head] = v
	if c.n < c.depth {
		c.n++
	}
	return t
}

// latest returns the newest entry.
func (c *cell) latest() (int64, prog.Val) { return c.times[c.head], c.vals[c.head] }

// at returns the entry i steps behind the newest (0 ≤ i < n).
func (c *cell) at(i int) (int64, prog.Val) {
	j := (c.head - i%c.n + c.depth) % c.depth
	return c.times[j], c.vals[j]
}

// Generate executes p under the given options and appends the resulting
// event stream to dst (pass nil to allocate). It returns the stream and
// whether the program ran to completion before MaxEvents. For workloads
// that should never materialise the schedule, use Stream (push) or
// Encode (write the wire format) instead.
func Generate(p *prog.Program, tb *monitor.Table, opt Options, dst []monitor.Event) ([]monitor.Event, bool, error) {
	if opt.MaxEvents > 0 {
		// The budget covers the total slice length, pre-existing entries
		// included (buffer-reuse callers pass dst[:0]).
		if len(dst) >= opt.MaxEvents {
			return dst, false, nil
		}
		opt.MaxEvents -= len(dst)
	}
	completed, err := Stream(p, tb, opt, func(e monitor.Event) error {
		dst = append(dst, e)
		return nil
	})
	return dst, completed, err
}

// Encode generates a schedule and writes it to w in the wire format
// (monitor.Binary or monitor.Text) without ever materialising the event
// slice — generate-and-encode in O(locations + threads) live memory. It
// returns the number of events written and whether the program ran to
// completion before MaxEvents.
func Encode(w io.Writer, p *prog.Program, tb *monitor.Table, opt Options, format monitor.Format) (int, bool, error) {
	tw, err := monitor.NewTraceWriter(w, monitor.Header{Threads: tb.Threads(), Decls: tb.Decls()}, format)
	if err != nil {
		return 0, false, err
	}
	n := 0
	completed, err := Stream(p, tb, opt, func(e monitor.Event) error {
		n++
		return tw.Write(e)
	})
	if err != nil {
		return n, false, err
	}
	return n, completed, tw.Flush()
}

// StreamBatch is Stream with batched delivery: events accumulate in one
// reused buffer of the given size (≤ 0 means 4096) and emit receives
// each full batch plus the final partial one. This is the fused
// generate-and-monitor feeding path for consumers with a batch entry
// point (monitor.Monitor.StepBatch, monitor.Pipeline.StepBatch) — one
// callback per batch instead of one per event. The buffer is only valid
// for the duration of the callback.
func StreamBatch(p *prog.Program, tb *monitor.Table, opt Options, batch int, emit func([]monitor.Event) error) (bool, error) {
	if batch <= 0 {
		batch = 4096
	}
	buf := make([]monitor.Event, 0, batch)
	completed, err := Stream(p, tb, opt, func(e monitor.Event) error {
		buf = append(buf, e)
		if len(buf) == batch {
			err := emit(buf)
			buf = buf[:0]
			return err
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	if len(buf) > 0 {
		if err := emit(buf); err != nil {
			return false, err
		}
	}
	return completed, nil
}

// Stream executes p under the given options, pushing each event to emit
// as it is produced — the generate-and-feed core that Generate, Encode
// and StreamBatch wrap, and that cmd/racemon's -stream mode feeds
// straight into a monitor without buffering the schedule. Generation
// stops early if emit returns an error (which is returned as-is). The
// boolean result reports whether the program ran to completion before
// MaxEvents.
func Stream(p *prog.Program, tb *monitor.Table, opt Options, emit func(monitor.Event) error) (bool, error) {
	depth := opt.HistoryDepth
	if depth <= 0 {
		depth = 4
	}
	if depth > 8 {
		depth = 8
	}
	burst := opt.BurstMean
	if burst <= 0 {
		burst = 64
	}
	r := newRNG(opt.Seed)

	// Dense location state, indexed like the monitor's events.
	decls := tb.Decls()
	cells := make([]cell, len(decls)) // NA and RA histories
	atVals := make([]prog.Val, len(decls))
	for i := range cells {
		cells[i] = newCell(depth)
	}

	// locAt[t][pc] is the dense location index of the Load/Store at that
	// program counter (-1 elsewhere), precomputed so the per-event hot
	// path never hashes a location name.
	locAt := make([][]int32, len(p.Threads))
	for ti := range p.Threads {
		code := p.Threads[ti].Code
		locAt[ti] = make([]int32, len(code))
		for pc, in := range code {
			locAt[ti][pc] = -1
			var name prog.Loc
			switch op := in.(type) {
			case prog.Load:
				name = op.Src
			case prog.Store:
				name = op.Dst
			default:
				continue
			}
			loc, ok := tb.LocIndex(name)
			if !ok {
				return false, fmt.Errorf("schedgen: undeclared location %q", name)
			}
			locAt[ti][pc] = loc
		}
	}

	// Zipf redirection table for LocSkew: the nonatomic locations in
	// dense-index order (rank order) and the normalised CDF of their
	// 1/(rank+1)^s weights. One binary search per nonatomic event.
	var skewLocs []int32
	var skewCDF []float64
	if opt.LocSkew > 0 {
		for i, d := range decls {
			if d.Kind == prog.NonAtomic {
				skewLocs = append(skewLocs, int32(i))
			}
		}
		if len(skewLocs) > 1 {
			skewCDF = make([]float64, len(skewLocs))
			sum := 0.0
			for i := range skewLocs {
				sum += 1 / math.Pow(float64(i+1), opt.LocSkew)
				skewCDF[i] = sum
			}
			for i := range skewCDF {
				skewCDF[i] /= sum
			}
		} else {
			skewLocs = nil // nothing to skew toward
		}
	}

	// Mutable thread states.
	states := make([]prog.ThreadState, len(p.Threads))
	for i := range states {
		states[i] = prog.NewThreadState()
	}
	runnable := make([]int, 0, len(p.Threads))
	for i := range p.Threads {
		runnable = append(runnable, i)
	}

	drop := func(t int) {
		for i, u := range runnable {
			if u == t {
				runnable = append(runnable[:i], runnable[i+1:]...)
				return
			}
		}
	}

	// pick chooses the next thread to run under the policy.
	cur := -1 // current bursty thread
	pick := func() int {
		switch opt.Policy {
		case Unfair:
			// Geometric preference for low indices: walk the runnable
			// list, taking each with probability 1/2.
			for _, t := range runnable {
				if r.intn(2) == 0 {
					return t
				}
			}
			return runnable[len(runnable)-1]
		case Bursty:
			if cur >= 0 && r.intn(burst) != 0 {
				for _, t := range runnable {
					if t == cur {
						return t
					}
				}
			}
			cur = runnable[r.intn(len(runnable))]
			return cur
		default:
			return runnable[r.intn(len(runnable))]
		}
	}

	emitted := 0
	for len(runnable) > 0 {
		if opt.MaxEvents > 0 && emitted >= opt.MaxEvents {
			return false, nil
		}
		t := pick()
		st := &states[t]
		code := p.Threads[t].Code
		pend, err := prog.StepSilentInPlace(code, st, prog.MaxSilentStepsHint)
		if err != nil {
			return false, fmt.Errorf("schedgen: thread %d: %w", t, err)
		}
		if pend.Kind == prog.OpHalted {
			drop(t)
			if cur == t {
				cur = -1
			}
			if opt.EmitHalts {
				emitted++
				if err := emit(monitor.Event{Thread: int32(t), Kind: monitor.KindHalt}); err != nil {
					return false, err
				}
			}
			continue
		}
		// StepSilentInPlace leaves PC at the pending Load/Store.
		loc := locAt[t][st.PC]
		if skewLocs != nil && decls[loc].Kind == prog.NonAtomic {
			// Redirect the access along the Zipf CDF. The top 53 bits of
			// one xorshift draw give a uniform float in [0,1) — platform-
			// stable, so skewed streams stay deterministic per seed.
			u := float64(r.next()>>11) / (1 << 53)
			loc = skewLocs[skewIndex(skewCDF, u)]
		}
		ev := monitor.Event{Thread: int32(t), Loc: loc}
		kind := decls[loc].Kind
		if pend.Kind == prog.OpRead {
			var v prog.Val
			switch kind {
			case prog.Atomic:
				ev.Kind = monitor.ReadAT
				v = atVals[loc]
			case prog.ReleaseAcquire, prog.NonAtomic:
				c := &cells[loc]
				tm, val := c.latest()
				if opt.StaleReadPct > 0 && c.n > 1 && r.intn(100) < opt.StaleReadPct {
					tm, val = c.at(1 + r.intn(c.n-1))
				}
				v = val
				if kind == prog.ReleaseAcquire {
					ev.Kind = monitor.ReadRA
					ev.Time = ts.FromInt(tm)
				} else {
					ev.Kind = monitor.ReadNA
					ev.Time = ts.FromInt(tm)
				}
			}
			st.Regs[pend.Dst] = v
			st.PC++
		} else {
			switch kind {
			case prog.Atomic:
				ev.Kind = monitor.WriteAT
				atVals[loc] = pend.Val
			case prog.ReleaseAcquire:
				ev.Kind = monitor.WriteRA
				ev.Time = ts.FromInt(cells[loc].push(pend.Val))
			default:
				ev.Kind = monitor.WriteNA
				ev.Time = ts.FromInt(cells[loc].push(pend.Val))
			}
			st.PC++
		}
		emitted++
		if err := emit(ev); err != nil {
			return false, err
		}
	}
	return true, nil
}
