package schedgen

import (
	"bytes"
	"math"
	"testing"

	"localdrf/internal/monitor"
	"localdrf/internal/prog"
	"localdrf/internal/progsynth"
	"localdrf/internal/race"
)

func smallCfg() progsynth.ScaledConfig {
	return progsynth.ScaledConfig{
		Threads:    4,
		Iters:      50,
		OpsPerIter: 4,
		NonAtomic:  6,
		Atomics:    2,
		RAs:        2,
		WritePct:   40,
		SyncPct:    25,
		MaxConst:   4,
	}
}

// TestDeterministic: equal (program, options) produce equal streams.
func TestDeterministic(t *testing.T) {
	p := progsynth.Scaled(1, smallCfg())
	tb := monitor.NewTable(p)
	for _, pol := range []Policy{Fair, Unfair, Bursty} {
		opt := Options{Policy: pol, Seed: 42, StaleReadPct: 20}
		a, doneA, err := Generate(p, tb, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, doneB, err := Generate(p, tb, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if doneA != doneB || len(a) != len(b) {
			t.Fatalf("%v: nondeterministic shape", pol)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: streams diverge at event %d: %v vs %v", pol, i, a[i], b[i])
			}
		}
	}
}

// TestRunsToCompletion: a terminating program generates exactly
// Threads × Iters × EventsPerIteration events and reports completion.
func TestRunsToCompletion(t *testing.T) {
	cfg := smallCfg()
	p := progsynth.Scaled(2, cfg)
	tb := monitor.NewTable(p)
	events, done, err := Generate(p, tb, Options{Policy: Fair, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("terminating program did not complete")
	}
	want := cfg.Threads * cfg.Iters * cfg.EventsPerIteration()
	if len(events) != want {
		t.Fatalf("got %d events, want %d", len(events), want)
	}
}

// TestMaxEventsStops: MaxEvents truncates the schedule.
func TestMaxEventsStops(t *testing.T) {
	p := progsynth.Scaled(3, smallCfg())
	tb := monitor.NewTable(p)
	events, done, err := Generate(p, tb, Options{Policy: Bursty, Seed: 9, MaxEvents: 123}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done || len(events) != 123 {
		t.Fatalf("got %d events (done=%v), want 123 truncated", len(events), done)
	}
}

// TestMonitorMatchesOracleOnStreams closes the loop on schedgen's own
// output: for short streams under every policy, the streaming monitor and
// the exhaustive race.Races oracle (run on the synthesised bare
// transitions) must agree exactly. Longer streams are covered by the
// monitor's internal consistency tests; the oracle is O(n³).
func TestMonitorMatchesOracleOnStreams(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		p := progsynth.Scaled(seed, smallCfg())
		tb := monitor.NewTable(p)
		for _, pol := range []Policy{Fair, Unfair, Bursty} {
			events, _, err := Generate(p, tb, Options{
				Policy: pol, Seed: seed * 31, MaxEvents: 400, StaleReadPct: 25,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			m := monitor.New(tb.Threads(), tb.Decls())
			for _, e := range events {
				m.Step(e)
			}
			got := m.Reports()
			want := race.Races(monitor.Transitions(events, tb.Decls()))
			if len(got) != len(want) {
				t.Fatalf("seed %d %v: monitor %v, oracle %v", seed, pol, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d %v: monitor %v, oracle %v", seed, pol, got, want)
				}
			}
		}
	}
}

// TestStreamMatchesGenerate: the push generator emits exactly the events
// Generate materialises — same order, same truncation semantics.
func TestStreamMatchesGenerate(t *testing.T) {
	p := progsynth.Scaled(5, smallCfg())
	tb := monitor.NewTable(p)
	for _, max := range []int{0, 123} {
		opt := Options{Policy: Bursty, Seed: 13, MaxEvents: max, StaleReadPct: 20}
		want, wantDone, err := Generate(p, tb, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		var got []monitor.Event
		gotDone, err := Stream(p, tb, opt, func(e monitor.Event) error {
			got = append(got, e)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if gotDone != wantDone || len(got) != len(want) {
			t.Fatalf("max=%d: stream shape (%d, %v) vs generate (%d, %v)",
				max, len(got), gotDone, len(want), wantDone)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("max=%d: streams diverge at event %d", max, i)
			}
		}
	}
}

// TestEncodeRoundTrip: generate-and-encode (never materialising the
// slice), then decode-and-monitor — the reports must equal monitoring
// the materialised stream directly, in both wire formats.
func TestEncodeRoundTrip(t *testing.T) {
	p := progsynth.Scaled(8, smallCfg())
	tb := monitor.NewTable(p)
	opt := Options{Policy: Unfair, Seed: 21, MaxEvents: 4_000, StaleReadPct: 25}
	events, _, err := Generate(p, tb, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := monitor.New(tb.Threads(), tb.Decls())
	for _, e := range events {
		m.Step(e)
	}
	want := m.Reports()
	for _, format := range []monitor.Format{monitor.Binary, monitor.Text} {
		var buf bytes.Buffer
		n, _, err := Encode(&buf, p, tb, opt, format)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(events) {
			t.Fatalf("%v: encoded %d events, generated %d", format, n, len(events))
		}
		got, err := monitor.ReadRaces(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !race.ReportsEqual(got, want) {
			t.Fatalf("%v: decoded reports %v, want %v", format, got, want)
		}
	}
}

// TestBurstiness sanity-checks that the bursty policy actually produces
// long same-thread runs compared to fair scheduling.
func TestBurstiness(t *testing.T) {
	p := progsynth.Scaled(4, smallCfg())
	tb := monitor.NewTable(p)
	switches := func(events []monitor.Event) int {
		n := 0
		for i := 1; i < len(events); i++ {
			if events[i].Thread != events[i-1].Thread {
				n++
			}
		}
		return n
	}
	fair, _, err := Generate(p, tb, Options{Policy: Fair, Seed: 5, MaxEvents: 3000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bursty, _, err := Generate(p, tb, Options{Policy: Bursty, Seed: 5, MaxEvents: 3000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if switches(bursty)*4 > switches(fair) {
		t.Fatalf("bursty not bursty enough: %d switches vs fair %d", switches(bursty), switches(fair))
	}
}

// TestStaleReadsAppear: with StaleReadPct set, some reads return
// non-latest entries (observable as RA reads of non-latest timestamps).
func TestStaleReadsAppear(t *testing.T) {
	cfg := smallCfg()
	cfg.SyncPct = 60 // plenty of RA traffic
	p := progsynth.Scaled(6, cfg)
	tb := monitor.NewTable(p)
	events, _, err := Generate(p, tb, Options{Policy: Fair, Seed: 11, MaxEvents: 5000, StaleReadPct: 40}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lastWrite := map[int32]monitor.Event{}
	stale := 0
	for _, e := range events {
		switch e.Kind {
		case monitor.WriteRA:
			lastWrite[e.Loc] = e
		case monitor.ReadRA:
			if w, ok := lastWrite[e.Loc]; ok && !e.Time.Equal(w.Time) {
				stale++
			}
		}
	}
	if stale == 0 {
		t.Fatal("no stale RA reads observed")
	}
}

// BenchmarkGenerateBursty measures schedule generation throughput (the
// producer side of the racemon pipeline).
func BenchmarkGenerateBursty(b *testing.B) {
	cfg := progsynth.ScaledDefaults()
	cfg.Iters = cfg.IterationsFor(1_000_000)
	p := progsynth.Scaled(1, cfg)
	tb := monitor.NewTable(p)
	var buf []monitor.Event
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, _, err = Generate(p, tb, Options{Policy: Bursty, Seed: 3, MaxEvents: 1_000_000, StaleReadPct: 10}, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// TestEmitHalts: with EmitHalts a completed run carries exactly one halt
// per thread (each after that thread's last access), the monitor's
// report set is unchanged, and the non-halt prefix ordering is identical
// to the halt-free stream.
func TestEmitHalts(t *testing.T) {
	cfg := smallCfg()
	p := progsynth.Scaled(3, cfg)
	tb := monitor.NewTable(p)
	opt := Options{Policy: Unfair, Seed: 9, StaleReadPct: 20}
	plain, doneP, err := Generate(p, tb, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt.EmitHalts = true
	halted, doneH, err := Generate(p, tb, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !doneP || !doneH {
		t.Fatal("terminating program did not complete")
	}
	if len(halted) != len(plain)+cfg.Threads {
		t.Fatalf("halted stream has %d events, want %d + %d halts", len(halted), len(plain), cfg.Threads)
	}
	seen := make([]bool, cfg.Threads)
	i := 0
	for _, e := range halted {
		if e.Kind == monitor.KindHalt {
			if seen[e.Thread] {
				t.Fatalf("thread %d halted twice", e.Thread)
			}
			seen[e.Thread] = true
			continue
		}
		if seen[e.Thread] {
			t.Fatalf("thread %d has events after its halt", e.Thread)
		}
		if e != plain[i] {
			t.Fatalf("non-halt event %d differs: %v vs %v", i, e, plain[i])
		}
		i++
	}
	if i != len(plain) {
		t.Fatalf("halted stream carries %d non-halt events, want %d", i, len(plain))
	}
	mp := tb.NewMonitor()
	mp.StepBatch(plain)
	mh := tb.NewMonitor()
	mh.StepBatch(halted)
	if !race.ReportsEqual(mp.Reports(), mh.Reports()) {
		t.Fatal("halt events changed the monitor's report set")
	}
}

// TestStreamBatchMatchesStream: batched delivery carries exactly the
// per-event stream, at batch sizes that do and do not divide the length.
func TestStreamBatchMatchesStream(t *testing.T) {
	p := progsynth.Scaled(5, smallCfg())
	tb := monitor.NewTable(p)
	opt := Options{Policy: Bursty, Seed: 11, StaleReadPct: 10, EmitHalts: true}
	var want []monitor.Event
	doneW, err := Stream(p, tb, opt, func(e monitor.Event) error {
		want = append(want, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 7, 4096} {
		var got []monitor.Event
		batches := 0
		doneB, err := StreamBatch(p, tb, opt, batch, func(evs []monitor.Event) error {
			got = append(got, evs...)
			batches++
			if len(evs) > batch {
				t.Fatalf("batch of %d exceeds requested size %d", len(evs), batch)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if doneB != doneW || len(got) != len(want) {
			t.Fatalf("batch=%d: shape mismatch (%d events vs %d, done %v vs %v)",
				batch, len(got), len(want), doneB, doneW)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d: event %d differs", batch, i)
			}
		}
		if wantBatches := (len(want) + batch - 1) / batch; batches != wantBatches {
			t.Fatalf("batch=%d: %d callbacks, want %d", batch, batches, wantBatches)
		}
	}
}

// TestWireV2SmallerThanV1 is the wire-format acceptance bar: on the
// schedgen smoke stream (the CI racemon workload), the delta-compressed
// v2 encoding is at least 1.5× smaller than v1, and both decode to the
// same report set.
func TestWireV2SmallerThanV1(t *testing.T) {
	cfg := progsynth.ScaledDefaults()
	cfg.Iters = cfg.IterationsFor(250_000)
	p := progsynth.Scaled(1, cfg)
	tb := monitor.NewTable(p)
	opt := Options{Policy: Bursty, Seed: 1, MaxEvents: 250_000, StaleReadPct: 10}
	var v1, v2 bytes.Buffer
	if _, _, err := Encode(&v1, p, tb, opt, monitor.Binary); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Encode(&v2, p, tb, opt, monitor.BinaryV2); err != nil {
		t.Fatal(err)
	}
	ratio := float64(v1.Len()) / float64(v2.Len())
	t.Logf("v1=%d bytes, v2=%d bytes, ratio=%.3f", v1.Len(), v2.Len(), ratio)
	if ratio < 1.5 {
		t.Fatalf("v2 is only %.3f× smaller than v1, want ≥ 1.5×", ratio)
	}
	r1, err := monitor.ReadRaces(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := monitor.ReadRaces(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !race.ReportsEqual(r1, r2) {
		t.Fatal("v1 and v2 decoded streams report different races")
	}
}

// TestLocSkew: skewed streams are deterministic, leave the unskewed
// stream byte-identical when disabled, concentrate nonatomic traffic on
// the low-rank locations, and keep monitor/oracle agreement.
func TestLocSkew(t *testing.T) {
	cfg := smallCfg()
	cfg.NonAtomic = 12
	p := progsynth.Scaled(7, cfg)
	tb := monitor.NewTable(p)
	base := Options{Policy: Fair, Seed: 33, MaxEvents: 8000, StaleReadPct: 20}

	plain, _, err := Generate(p, tb, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	zero := base
	zero.LocSkew = 0
	again, _, err := Generate(p, tb, zero, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(plain) {
		t.Fatalf("LocSkew=0 changed the stream length: %d vs %d", len(again), len(plain))
	}
	for i := range plain {
		if again[i] != plain[i] {
			t.Fatalf("LocSkew=0 changed the stream at event %d", i)
		}
	}

	skew := base
	skew.LocSkew = 1.4
	a, _, err := Generate(p, tb, skew, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(p, tb, skew, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("skewed stream nondeterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("skewed streams diverge at event %d", i)
		}
	}

	// Concentration: the hottest nonatomic location must carry well over
	// the uniform share of nonatomic traffic.
	decls := tb.Decls()
	counts := map[int32]int{}
	naTotal, naLocs := 0, 0
	for _, d := range decls {
		if d.Kind == prog.NonAtomic {
			naLocs++
		}
	}
	for _, e := range a {
		if e.Kind == monitor.ReadNA || e.Kind == monitor.WriteNA {
			if decls[e.Loc].Kind != prog.NonAtomic {
				t.Fatalf("nonatomic event redirected to non-NA location %d", e.Loc)
			}
			counts[e.Loc]++
			naTotal++
		}
	}
	hot := 0
	for _, n := range counts {
		if n > hot {
			hot = n
		}
	}
	if hot*naLocs < 2*naTotal {
		t.Fatalf("hottest location carries %d/%d NA events over %d locations — no skew visible",
			hot, naTotal, naLocs)
	}

	m := tb.NewMonitor()
	m.StepBatch(a[:400])
	want := race.Races(monitor.Transitions(a[:400], decls))
	if !race.ReportsEqual(m.Reports(), want) {
		t.Fatalf("skewed stream: monitor %v, oracle %v", m.Reports(), want)
	}
}

// TestSkewIndexBoundary is the property test for the Zipf CDF lookup:
// across a sweep of skew exponents and table sizes, skewIndex must stay
// in range and order-correct for adversarial draws — exactly 1.0,
// 1.0 minus one ulp, every CDF entry and its neighbourhoods — and the
// hazard the clamp guards (a normalised CDF whose last entry rounds
// below 1.0, pushing the binary search past the end) must actually
// occur somewhere in the sweep.
func TestSkewIndexBoundary(t *testing.T) {
	for _, s := range []float64{0.2, 0.7, 1.0, 1.3, 1.5, 2.0, 3.7} {
		for _, n := range []int{2, 3, 5, 7, 12, 64, 257} {
			cdf := make([]float64, n)
			sum := 0.0
			for i := range cdf {
				sum += 1 / math.Pow(float64(i+1), s)
				cdf[i] = sum
			}
			for i := range cdf {
				cdf[i] /= sum
			}
			draws := []float64{0, math.Nextafter(1, 0), 1.0}
			for _, c := range cdf {
				draws = append(draws, c, math.Nextafter(c, 0), math.Nextafter(c, 2))
			}
			for _, u := range draws {
				i := skewIndex(cdf, u)
				if i < 0 || i >= n {
					t.Fatalf("s=%v n=%d u=%v: index %d out of range", s, n, u, i)
				}
				// Order-correctness: the chosen rank's CDF covers u, and
				// no earlier rank does (except at the clamped top).
				if cdf[i] < u && i != n-1 {
					t.Fatalf("s=%v n=%d u=%v: rank %d has cdf %v < u", s, n, u, i, cdf[i])
				}
				if i > 0 && cdf[i-1] >= u {
					t.Fatalf("s=%v n=%d u=%v: earlier rank %d already covers u", s, n, u, i-1)
				}
			}
		}
	}
	// The generator's own normalisation ends on an exact x/x division,
	// so ITS tail is exactly 1.0 — but the helper must also survive a
	// CDF whose tail rounded below 1.0 (any normalisation that does not
	// end on a self-division can produce one): a draw at or above such
	// a tail lands past the binary search and must clamp to the last
	// rank instead of indexing out of range.
	tail := []float64{0.5, 0.9, math.Nextafter(1, 0)}
	for _, u := range []float64{math.Nextafter(1, 0), 1.0} {
		if i := skewIndex(tail, u); i != len(tail)-1 {
			t.Fatalf("rounded-tail CDF, u=%v: rank %d, want %d", u, i, len(tail)-1)
		}
	}
}
