package schedgen

import (
	"bytes"
	"testing"

	"localdrf/internal/monitor"
	"localdrf/internal/progsynth"
	"localdrf/internal/race"
)

func smallCfg() progsynth.ScaledConfig {
	return progsynth.ScaledConfig{
		Threads:    4,
		Iters:      50,
		OpsPerIter: 4,
		NonAtomic:  6,
		Atomics:    2,
		RAs:        2,
		WritePct:   40,
		SyncPct:    25,
		MaxConst:   4,
	}
}

// TestDeterministic: equal (program, options) produce equal streams.
func TestDeterministic(t *testing.T) {
	p := progsynth.Scaled(1, smallCfg())
	tb := monitor.NewTable(p)
	for _, pol := range []Policy{Fair, Unfair, Bursty} {
		opt := Options{Policy: pol, Seed: 42, StaleReadPct: 20}
		a, doneA, err := Generate(p, tb, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, doneB, err := Generate(p, tb, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if doneA != doneB || len(a) != len(b) {
			t.Fatalf("%v: nondeterministic shape", pol)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: streams diverge at event %d: %v vs %v", pol, i, a[i], b[i])
			}
		}
	}
}

// TestRunsToCompletion: a terminating program generates exactly
// Threads × Iters × EventsPerIteration events and reports completion.
func TestRunsToCompletion(t *testing.T) {
	cfg := smallCfg()
	p := progsynth.Scaled(2, cfg)
	tb := monitor.NewTable(p)
	events, done, err := Generate(p, tb, Options{Policy: Fair, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("terminating program did not complete")
	}
	want := cfg.Threads * cfg.Iters * cfg.EventsPerIteration()
	if len(events) != want {
		t.Fatalf("got %d events, want %d", len(events), want)
	}
}

// TestMaxEventsStops: MaxEvents truncates the schedule.
func TestMaxEventsStops(t *testing.T) {
	p := progsynth.Scaled(3, smallCfg())
	tb := monitor.NewTable(p)
	events, done, err := Generate(p, tb, Options{Policy: Bursty, Seed: 9, MaxEvents: 123}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done || len(events) != 123 {
		t.Fatalf("got %d events (done=%v), want 123 truncated", len(events), done)
	}
}

// TestMonitorMatchesOracleOnStreams closes the loop on schedgen's own
// output: for short streams under every policy, the streaming monitor and
// the exhaustive race.Races oracle (run on the synthesised bare
// transitions) must agree exactly. Longer streams are covered by the
// monitor's internal consistency tests; the oracle is O(n³).
func TestMonitorMatchesOracleOnStreams(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		p := progsynth.Scaled(seed, smallCfg())
		tb := monitor.NewTable(p)
		for _, pol := range []Policy{Fair, Unfair, Bursty} {
			events, _, err := Generate(p, tb, Options{
				Policy: pol, Seed: seed * 31, MaxEvents: 400, StaleReadPct: 25,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			m := monitor.New(tb.Threads(), tb.Decls())
			for _, e := range events {
				m.Step(e)
			}
			got := m.Reports()
			want := race.Races(monitor.Transitions(events, tb.Decls()))
			if len(got) != len(want) {
				t.Fatalf("seed %d %v: monitor %v, oracle %v", seed, pol, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d %v: monitor %v, oracle %v", seed, pol, got, want)
				}
			}
		}
	}
}

// TestStreamMatchesGenerate: the push generator emits exactly the events
// Generate materialises — same order, same truncation semantics.
func TestStreamMatchesGenerate(t *testing.T) {
	p := progsynth.Scaled(5, smallCfg())
	tb := monitor.NewTable(p)
	for _, max := range []int{0, 123} {
		opt := Options{Policy: Bursty, Seed: 13, MaxEvents: max, StaleReadPct: 20}
		want, wantDone, err := Generate(p, tb, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		var got []monitor.Event
		gotDone, err := Stream(p, tb, opt, func(e monitor.Event) error {
			got = append(got, e)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if gotDone != wantDone || len(got) != len(want) {
			t.Fatalf("max=%d: stream shape (%d, %v) vs generate (%d, %v)",
				max, len(got), gotDone, len(want), wantDone)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("max=%d: streams diverge at event %d", max, i)
			}
		}
	}
}

// TestEncodeRoundTrip: generate-and-encode (never materialising the
// slice), then decode-and-monitor — the reports must equal monitoring
// the materialised stream directly, in both wire formats.
func TestEncodeRoundTrip(t *testing.T) {
	p := progsynth.Scaled(8, smallCfg())
	tb := monitor.NewTable(p)
	opt := Options{Policy: Unfair, Seed: 21, MaxEvents: 4_000, StaleReadPct: 25}
	events, _, err := Generate(p, tb, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := monitor.New(tb.Threads(), tb.Decls())
	for _, e := range events {
		m.Step(e)
	}
	want := m.Reports()
	for _, format := range []monitor.Format{monitor.Binary, monitor.Text} {
		var buf bytes.Buffer
		n, _, err := Encode(&buf, p, tb, opt, format)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(events) {
			t.Fatalf("%v: encoded %d events, generated %d", format, n, len(events))
		}
		got, err := monitor.ReadRaces(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !race.ReportsEqual(got, want) {
			t.Fatalf("%v: decoded reports %v, want %v", format, got, want)
		}
	}
}

// TestBurstiness sanity-checks that the bursty policy actually produces
// long same-thread runs compared to fair scheduling.
func TestBurstiness(t *testing.T) {
	p := progsynth.Scaled(4, smallCfg())
	tb := monitor.NewTable(p)
	switches := func(events []monitor.Event) int {
		n := 0
		for i := 1; i < len(events); i++ {
			if events[i].Thread != events[i-1].Thread {
				n++
			}
		}
		return n
	}
	fair, _, err := Generate(p, tb, Options{Policy: Fair, Seed: 5, MaxEvents: 3000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bursty, _, err := Generate(p, tb, Options{Policy: Bursty, Seed: 5, MaxEvents: 3000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if switches(bursty)*4 > switches(fair) {
		t.Fatalf("bursty not bursty enough: %d switches vs fair %d", switches(bursty), switches(fair))
	}
}

// TestStaleReadsAppear: with StaleReadPct set, some reads return
// non-latest entries (observable as RA reads of non-latest timestamps).
func TestStaleReadsAppear(t *testing.T) {
	cfg := smallCfg()
	cfg.SyncPct = 60 // plenty of RA traffic
	p := progsynth.Scaled(6, cfg)
	tb := monitor.NewTable(p)
	events, _, err := Generate(p, tb, Options{Policy: Fair, Seed: 11, MaxEvents: 5000, StaleReadPct: 40}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lastWrite := map[int32]monitor.Event{}
	stale := 0
	for _, e := range events {
		switch e.Kind {
		case monitor.WriteRA:
			lastWrite[e.Loc] = e
		case monitor.ReadRA:
			if w, ok := lastWrite[e.Loc]; ok && !e.Time.Equal(w.Time) {
				stale++
			}
		}
	}
	if stale == 0 {
		t.Fatal("no stale RA reads observed")
	}
}

// BenchmarkGenerateBursty measures schedule generation throughput (the
// producer side of the racemon pipeline).
func BenchmarkGenerateBursty(b *testing.B) {
	cfg := progsynth.ScaledDefaults()
	cfg.Iters = cfg.IterationsFor(1_000_000)
	p := progsynth.Scaled(1, cfg)
	tb := monitor.NewTable(p)
	var buf []monitor.Event
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, _, err = Generate(p, tb, Options{Policy: Bursty, Seed: 3, MaxEvents: 1_000_000, StaleReadPct: 10}, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}
