package staticrace

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"localdrf/internal/explore"
	"localdrf/internal/litmus"
	"localdrf/internal/prog"
	"localdrf/internal/race"
)

var update = flag.Bool("update", false, "rewrite the litmus golden report")

// maxTraces caps the exhaustive oracle per program, matching the
// modeltest harnesses.
const maxTraces = 4000

func verdictOf(rep *Report, l prog.Loc) string {
	for _, m := range rep.MayRace {
		if m == l {
			return "may-race"
		}
	}
	for _, c := range rep.Certified {
		if c == l {
			return "certified"
		}
	}
	return "unknown"
}

// TestGuardedHandoffCertified: the S shape — a data write published
// through an atomic flag, the consumer's conflicting write guarded by
// reading the flag — is exactly what certOrder exists for.
func TestGuardedHandoffCertified(t *testing.T) {
	s, ok := litmus.Get("S")
	if !ok {
		t.Fatal("litmus test S missing")
	}
	rep := Analyze(s.Prog)
	if v := verdictOf(rep, "x"); v != "certified" {
		t.Fatalf("S: x = %s, want certified (report: %s)", v, rep)
	}
	if !rep.RaceFree("x") {
		t.Fatal("S: RaceFree(x) = false for a certified location")
	}
	if !rep.RaceFree("F") {
		t.Fatal("S: RaceFree(F) = false for an atomic location")
	}
}

// TestUnguardedMayRace: the unguarded MP read and the fully nonatomic
// MP+na must stay in the may-race set.
func TestUnguardedMayRace(t *testing.T) {
	for _, tc := range []struct {
		name string
		locs []prog.Loc
	}{
		{"MP", []prog.Loc{"x"}},
		{"MP+na", []prog.Loc{"f", "x"}},
		{"SB", []prog.Loc{"x", "y"}},
	} {
		lt, ok := litmus.Get(tc.name)
		if !ok {
			t.Fatalf("litmus test %s missing", tc.name)
		}
		rep := Analyze(lt.Prog)
		for _, l := range tc.locs {
			if v := verdictOf(rep, l); v != "may-race" {
				t.Errorf("%s: %s = %s, want may-race", tc.name, l, v)
			}
			if rep.RaceFree(l) {
				t.Errorf("%s: RaceFree(%s) = true for a may-race location", tc.name, l)
			}
		}
	}
}

// TestCheapRules: single-thread and read-only locations certify without
// any happens-before reasoning; unknown locations are never certified.
func TestCheapRules(t *testing.T) {
	p := prog.NewProgram("cheap").
		Vars("priv", "ro", "hot").
		Thread("P0").StoreI("priv", 1).Load("a", "priv").Load("b", "ro").StoreI("hot", 1).Done().
		Thread("P1").Load("c", "ro").Load("d", "hot").Done().
		MustBuild()
	rep := Analyze(p)
	for l, want := range map[prog.Loc]string{"priv": "single-thread", "ro": "read-only"} {
		if v := verdictOf(rep, l); v != "certified" {
			t.Errorf("%s = %s, want certified", l, v)
		} else if rep.Reasons[l] != want {
			t.Errorf("%s reason = %q, want %q", l, rep.Reasons[l], want)
		}
	}
	if v := verdictOf(rep, "hot"); v != "may-race" {
		t.Errorf("hot = %s, want may-race", v)
	}
	if rep.RaceFree("nonexistent") {
		t.Error("RaceFree of an undeclared location must be false")
	}
}

// TestSpinLoopCertified: the guard works through a spin loop — the
// dominance/reachability side conditions must hold up under cycles.
func TestSpinLoopCertified(t *testing.T) {
	p := prog.NewProgram("spin").
		Vars("d").
		Atomics("F").
		Thread("P0").StoreI("d", 42).StoreI("F", 1).Done().
		Thread("P1").
		Label("loop").
		Load("r", "F").
		JmpZ("r", "loop").
		Load("v", "d").
		Done().
		MustBuild()
	rep := Analyze(p)
	if v := verdictOf(rep, "d"); v != "certified" {
		t.Fatalf("spin: d = %s, want certified (report: %s)", v, rep)
	}
}

// TestGuardedHandoffRACertified: the S shape with a release-acquire
// flag. The RA happens-before edge is narrower than the SC one (a write
// synchronises only with the reads that read from it), so the certified
// verdict is cross-checked against the dynamic oracle here rather than
// trusted to the SC argument.
func TestGuardedHandoffRACertified(t *testing.T) {
	p := prog.NewProgram("S+ra").
		Vars("d").
		RAs("F").
		Thread("P0").StoreI("d", 42).StoreI("F", 1).Done().
		Thread("P1").
		Load("r", "F").
		JmpZ("r", "skip").
		StoreI("d", 7).
		Label("skip").
		Done().
		MustBuild()
	rep := Analyze(p)
	if v := verdictOf(rep, "d"); v != "certified" {
		t.Fatalf("S+ra: d = %s, want certified (report: %s)", v, rep)
	}
	if dyn := dynRaces(t, p, maxTraces); len(dyn) != 0 {
		t.Fatalf("S+ra: certified program has dynamic races: %v", dyn)
	}
}

// TestWriteAfterGuardNotCertified: a producer that can re-write the data
// *after* raising the flag breaks the ordering argument — the analysis
// must notice that the data write does not dominate, or is reachable
// from, the flag write.
func TestWriteAfterGuardNotCertified(t *testing.T) {
	p := prog.NewProgram("after").
		Vars("d").
		Atomics("F").
		Thread("P0").StoreI("F", 1).StoreI("d", 42).Done(). // flag first: racy
		Thread("P1").
		Load("r", "F").
		JmpZ("r", "skip").
		Load("v", "d").
		Label("skip").
		Done().
		MustBuild()
	rep := Analyze(p)
	if v := verdictOf(rep, "d"); v != "may-race" {
		t.Fatalf("after: d = %s, want may-race (report: %s)", v, rep)
	}
}

// TestForeignFlagWriterNotCertified: if another thread can also write
// the flag value the guard tests for, seeing the flag proves nothing
// about the data writer's progress.
func TestForeignFlagWriterNotCertified(t *testing.T) {
	p := prog.NewProgram("foreign").
		Vars("d").
		Atomics("F").
		Thread("P0").StoreI("d", 42).StoreI("F", 1).Done().
		Thread("P1").StoreI("F", 1).Done(). // second flag writer
		Thread("P2").
		Load("r", "F").
		JmpZ("r", "skip").
		Load("v", "d").
		Label("skip").
		Done().
		MustBuild()
	rep := Analyze(p)
	if v := verdictOf(rep, "d"); v != "may-race" {
		t.Fatalf("foreign: d = %s, want may-race (report: %s)", v, rep)
	}
}

// dynRaces is the exhaustive dynamic oracle with a graceful trace cap:
// the deduplicated union of race.Races over up to cap traces of p.
// (race.FindRaces errors past its budget; capping only shrinks the
// dynamic set, which is the safe direction for a soundness check.)
func dynRaces(t *testing.T, p *prog.Program, cap int) []race.Report {
	t.Helper()
	set := map[race.Report]bool{}
	count := 0
	err := explore.Traces(p, explore.Options{}, 0, func(tr explore.Trace) bool {
		count++
		for _, r := range race.Races(tr) {
			set[r] = true
		}
		return count < cap
	})
	if err != nil {
		t.Fatalf("%s: explore: %v", p.Name, err)
	}
	out := make([]race.Report, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	race.SortReports(out)
	return out
}

// checkSoundness asserts that every dynamically found race is covered
// by the static report, at location level and at pair level. Returns
// the number of dynamically racy locations (for precision metrics).
func checkSoundness(t *testing.T, name string, p *prog.Program, rep *Report) int {
	t.Helper()
	dyn := dynRaces(t, p, maxTraces)
	mayRace := map[prog.Loc]bool{}
	for _, l := range rep.MayRace {
		mayRace[l] = true
	}
	dynLocs := map[prog.Loc]bool{}
	for _, d := range dyn {
		dynLocs[d.Loc] = true
		if !mayRace[d.Loc] {
			t.Errorf("%s: SOUNDNESS MISS: dynamic race %v on statically certified location", name, d)
			continue
		}
		// Pair-level coverage: some uncertified pair must match the
		// report's location, thread set and access kinds.
		covered := false
		for _, pr := range rep.Pairs {
			if pr.Certified || pr.A.Loc != d.Loc {
				continue
			}
			if pairMatches(pr, d) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("%s: SOUNDNESS MISS: dynamic race %v has no uncertified static pair", name, d)
		}
	}
	return len(dynLocs)
}

// pairMatches reports whether the unordered static pair covers the
// dynamic report (whose I/J order is trace order, not thread order).
func pairMatches(pr Pair, d race.Report) bool {
	if pr.A.Thread == d.ThreadI && pr.B.Thread == d.ThreadJ &&
		pr.A.Write == d.WriteI && pr.B.Write == d.WriteJ {
		return true
	}
	return pr.A.Thread == d.ThreadJ && pr.B.Thread == d.ThreadI &&
		pr.A.Write == d.WriteJ && pr.B.Write == d.WriteI
}

// TestSoundOnLitmusSuite is the package-local half of the soundness
// obligation (the modeltest harness runs the full corpus, including
// progsynth): on every litmus program, static may-race ⊇ dynamic races.
func TestSoundOnLitmusSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive oracle in -short mode")
	}
	staticLocs, dynLocs := 0, 0
	for _, lt := range litmus.Suite() {
		rep := Analyze(lt.Prog)
		dynLocs += checkSoundness(t, lt.Name, lt.Prog, rep)
		staticLocs += len(rep.MayRace)
	}
	if staticLocs < dynLocs {
		t.Fatalf("static may-race locations (%d) < dynamic racy locations (%d)", staticLocs, dynLocs)
	}
	t.Logf("litmus precision: %d dynamically racy / %d static may-race locations", dynLocs, staticLocs)
}

// TestLitmusGolden pins the exact per-program verdicts on the litmus
// corpus so precision regressions (a location flipping to may-race) are
// visible in review, not just soundness violations.
func TestLitmusGolden(t *testing.T) {
	var b strings.Builder
	for _, lt := range litmus.Suite() {
		fmt.Fprintf(&b, "%s: %s\n", lt.Name, Analyze(lt.Prog))
	}
	got := b.String()
	path := filepath.Join("testdata", "litmus.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("litmus static report drifted from golden (run with -update to accept):\n got:\n%s\nwant:\n%s", got, want)
	}
}
