package staticrace

import (
	"testing"

	"localdrf/internal/explore"
	"localdrf/internal/prog"
	"localdrf/internal/progsynth"
	"localdrf/internal/race"
)

// fuzzTraceCap bounds the dynamic oracle per fuzz execution. Capping
// only shrinks the dynamic race set, which is the safe direction: the
// property stays "static ⊇ observed dynamic".
const fuzzTraceCap = 400

// FuzzStaticSoundness fuzzes the headline soundness obligation: on a
// randomly generated program, every race the exhaustive dynamic oracle
// finds must be covered by an uncertified static pair. The seeds pin the
// litmus-corpus envelope (2–3 threads, mixed atomic/nonatomic pools,
// control dependencies, register stores) that TestSoundOnLitmusSuite
// checks exhaustively; the fuzzer then walks the generator space around
// it.
func FuzzStaticSoundness(f *testing.F) {
	f.Add(int64(0), uint8(3), uint8(3), uint8(2), true, true)
	f.Add(int64(1), uint8(2), uint8(4), uint8(1), true, false)
	f.Add(int64(42), uint8(3), uint8(2), uint8(3), false, true)
	f.Add(int64(7), uint8(3), uint8(4), uint8(2), true, true)
	f.Add(int64(99), uint8(2), uint8(3), uint8(2), false, false)
	f.Fuzz(func(t *testing.T, seed int64, nThreads, nOps, maxConst uint8, branches, regStores bool) {
		cfg := progsynth.Config{
			MaxThreads:     2 + int(nThreads)%2, // 2..3: the exhaustive oracle must stay fast
			MaxOps:         1 + int(nOps)%4,
			AtomicLocs:     []prog.Loc{"A"},
			NonAtomicLocs:  []prog.Loc{"x", "y"},
			MaxConst:       1 + int(maxConst)%3,
			AllowBranches:  branches,
			AllowRegStores: regStores,
		}
		p := progsynth.Random(seed, cfg)
		rep := Analyze(p)
		mayRace := map[prog.Loc]bool{}
		for _, l := range rep.MayRace {
			mayRace[l] = true
		}
		count := 0
		err := explore.Traces(p, explore.Options{}, 0, func(tr explore.Trace) bool {
			count++
			for _, d := range race.Races(tr) {
				if !mayRace[d.Loc] {
					t.Fatalf("%s: SOUNDNESS MISS: dynamic race %v on certified location\nprogram:\n%s\nreport: %s",
						p.Name, d, p, rep)
				}
				covered := false
				for _, pr := range rep.Pairs {
					if !pr.Certified && pr.A.Loc == d.Loc && pairMatches(pr, d) {
						covered = true
						break
					}
				}
				if !covered {
					t.Fatalf("%s: SOUNDNESS MISS: dynamic race %v has no uncertified static pair\nprogram:\n%s\nreport: %s",
						p.Name, d, p, rep)
				}
			}
			return count < fuzzTraceCap
		})
		if err != nil {
			t.Fatalf("%s: explore: %v", p.Name, err)
		}
	})
}
