package staticrace

// The abstract interpretation underlying the may-race analysis: a
// flow-sensitive forward analysis per thread over a whole-program
// abstract store fixpoint.
//
// Abstract domains:
//
//   - vset: a small explicit value set, capped at maxVals elements, with
//     an explicit ⊤ ("any value"). Register contents and per-location
//     abstract stores are vsets.
//
//   - locVals: for every location ℓ, an over-approximation of every
//     value any trace can hold at ℓ — the union of V0 with the abstract
//     operand sets of every (abstractly reachable) store to ℓ, iterated
//     to fixpoint. Because the operational model lets a load return any
//     value some trace wrote (weak or not), a load's result set is
//     exactly locVals of its source: the abstraction is sound for every
//     interleaving and every weak behaviour at once, which is what lets
//     the downstream certification quantify over all traces.
//
//   - provenance: a register that still holds the unmodified result of a
//     load of a synchronising (atomic or RA) location carries that
//     location as provenance. Mov preserves it; any arithmetic destroys
//     it. Provenance is what lets a branch refine a *fact* about the
//     load rather than merely about the register.
//
//   - facts: must-information of the form "on every path reaching this
//     point, some program-order-earlier load of synchronising location A
//     returned a value in V". Facts are created by branch refinement:
//     after `if r` (r with provenance A) the taken edge knows the load
//     returned a nonzero value of r's set. They are the hinge of the
//     happens-before argument in certOrder (staticrace.go).
//
// Joins at control-flow merges: register sets union pointwise (missing
// registers are {0}: registers start zeroed), provenance intersects
// (kept only when both paths agree), facts intersect on keys and union
// on value sets ("some earlier load returned a value in V₁∪V₂" holds on
// either path). All three are conservative in the certification-safe
// direction — joining can only lose precision, never soundness.
//
// Branch edges are followed only when abstractly feasible (the
// condition's set contains a nonzero value / zero respectively), so the
// per-pc states also yield an over-approximate reachability: a pc with
// no abstract state is never executed in any trace.
//
// Termination: all domains are finite (vsets are capped, registers and
// locations are drawn from the program text) and every join moves up a
// finite lattice, so both the per-thread worklists and the outer
// locVals fixpoint terminate.

import (
	"sort"

	"localdrf/internal/prog"
)

// maxVals caps explicit value sets; larger sets widen to ⊤.
const maxVals = 8

// vset is an abstract value set: ⊤ or an explicit sorted set.
type vset struct {
	top  bool
	vals []prog.Val // sorted, no duplicates, len ≤ maxVals
}

var topSet = vset{top: true}

func single(v prog.Val) vset { return vset{vals: []prog.Val{v}} }

func (s vset) contains(v prog.Val) bool {
	if s.top {
		return true
	}
	for _, x := range s.vals {
		if x == v {
			return true
		}
	}
	return false
}

// empty reports whether the set denotes no value at all (an infeasible
// state component).
func (s vset) empty() bool { return !s.top && len(s.vals) == 0 }

func (s vset) equal(o vset) bool {
	if s.top || o.top {
		return s.top == o.top
	}
	if len(s.vals) != len(o.vals) {
		return false
	}
	for i, v := range s.vals {
		if o.vals[i] != v {
			return false
		}
	}
	return true
}

// union returns s ∪ o, widening to ⊤ past the cap.
func (s vset) union(o vset) vset {
	if s.top || o.top {
		return topSet
	}
	merged := make([]prog.Val, 0, len(s.vals)+len(o.vals))
	merged = append(merged, s.vals...)
	for _, v := range o.vals {
		if !s.contains(v) {
			merged = append(merged, v)
		}
	}
	if len(merged) > maxVals {
		return topSet
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	return vset{vals: merged}
}

// intersects reports whether s ∩ o is nonempty. ⊤ intersects anything
// nonempty (the value domain is unbounded).
func (s vset) intersects(o vset) bool {
	if s.empty() || o.empty() {
		return false
	}
	if s.top || o.top {
		return true
	}
	for _, v := range s.vals {
		if o.contains(v) {
			return true
		}
	}
	return false
}

// withoutZero returns s \ {0} — the branch-taken refinement of JmpNZ.
func (s vset) withoutZero() vset {
	if s.top {
		return topSet
	}
	out := make([]prog.Val, 0, len(s.vals))
	for _, v := range s.vals {
		if v != 0 {
			out = append(out, v)
		}
	}
	return vset{vals: out}
}

// arith lifts a binary operator pointwise over two sets.
func arith(a, b vset, f func(x, y prog.Val) prog.Val) vset {
	if a.top || b.top {
		return topSet
	}
	out := vset{}
	for _, x := range a.vals {
		for _, y := range b.vals {
			out = out.union(single(f(x, y)))
			if out.top {
				return out
			}
		}
	}
	return out
}

// cmpEq abstracts A == B over sets: {1} when both are the same
// singleton, {0} when the sets are disjoint, {0,1} otherwise.
func cmpEq(a, b vset) vset {
	if !a.top && !b.top && len(a.vals) == 1 && len(b.vals) == 1 && a.vals[0] == b.vals[0] {
		return single(1)
	}
	if !a.intersects(b) {
		return single(0)
	}
	return vset{vals: []prog.Val{0, 1}}
}

// absState is the flow-sensitive per-pc state of one thread. States are
// treated as immutable: transfer functions clone before updating.
type absState struct {
	regs  map[prog.Reg]vset     // missing key = {0} (registers start zeroed)
	prov  map[prog.Reg]prog.Loc // sync-location provenance of a pure loaded value
	facts map[prog.Loc]vset     // "some earlier load of ℓ returned a value in V"
}

func newAbsState() *absState {
	return &absState{
		regs:  map[prog.Reg]vset{},
		prov:  map[prog.Reg]prog.Loc{},
		facts: map[prog.Loc]vset{},
	}
}

func (s *absState) clone() *absState {
	ns := &absState{
		regs:  make(map[prog.Reg]vset, len(s.regs)),
		prov:  make(map[prog.Reg]prog.Loc, len(s.prov)),
		facts: make(map[prog.Loc]vset, len(s.facts)),
	}
	for k, v := range s.regs {
		ns.regs[k] = v
	}
	for k, v := range s.prov {
		ns.prov[k] = v
	}
	for k, v := range s.facts {
		ns.facts[k] = v
	}
	return ns
}

// reg returns the abstract value of a register ({0} when never written).
func (s *absState) reg(r prog.Reg) vset {
	if v, ok := s.regs[r]; ok {
		return v
	}
	return single(0)
}

// operand evaluates an operand in this state.
func (s *absState) operand(o prog.Operand) vset {
	if o.IsReg {
		return s.reg(o.Reg)
	}
	return single(o.Imm)
}

// factUsable reports whether a fact's value set can carry the
// certification argument: it must exclude the initial value 0 (a read
// returning 0 may have read no write at all) and be finite.
func factUsable(v vset) bool { return !v.top && !v.contains(0) }

// addFact records "an earlier load of l returned a value in v", keeping
// the more useful of the new and any existing fact (each is individually
// sound, so choosing either — by usability, then by size — is sound).
func (s *absState) addFact(l prog.Loc, v vset) {
	old, ok := s.facts[l]
	if !ok {
		s.facts[l] = v
		return
	}
	if factUsable(v) != factUsable(old) {
		if factUsable(v) {
			s.facts[l] = v
		}
		return
	}
	if !v.top && (old.top || len(v.vals) < len(old.vals)) {
		s.facts[l] = v
	}
}

// join returns the least upper bound of two states (b may be nil,
// meaning "unreached": join is then a clone of a).
func joinStates(a, b *absState) *absState {
	if b == nil {
		return a.clone()
	}
	out := newAbsState()
	seen := map[prog.Reg]bool{}
	for r, va := range a.regs {
		out.regs[r] = va.union(b.reg(r))
		seen[r] = true
	}
	for r, vb := range b.regs {
		if !seen[r] {
			out.regs[r] = vb.union(a.reg(r))
		}
	}
	for r, la := range a.prov {
		if lb, ok := b.prov[r]; ok && la == lb {
			out.prov[r] = la
		}
	}
	for l, va := range a.facts {
		if vb, ok := b.facts[l]; ok {
			out.facts[l] = va.union(vb)
		}
	}
	return out
}

func vsetMapEqual[K comparable](a, b map[K]vset) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || !va.equal(vb) {
			return false
		}
	}
	return true
}

func (s *absState) equal(o *absState) bool {
	if !vsetMapEqual(s.regs, o.regs) || !vsetMapEqual(s.facts, o.facts) {
		return false
	}
	if len(s.prov) != len(o.prov) {
		return false
	}
	for r, l := range s.prov {
		if o.prov[r] != l {
			return false
		}
	}
	return true
}

// edge is one abstractly feasible control-flow step.
type edge struct {
	to    int
	state *absState
}

// threadAbs is the completed analysis of one thread: the in-state of
// every pc (nil = abstractly unreachable), over code of length n with
// node n the halt state.
type threadAbs struct {
	code []prog.Instr
	in   []*absState // len(code)+1
}

// transfer computes the feasible out-edges of node n under in-state s.
func transfer(p *prog.Program, lv map[prog.Loc]vset, code []prog.Instr, n int, s *absState) []edge {
	switch i := code[n].(type) {
	case prog.Load:
		ns := s.clone()
		ns.regs[i.Dst] = lv[i.Src]
		if p.IsSync(i.Src) {
			ns.prov[i.Dst] = i.Src
		} else {
			delete(ns.prov, i.Dst)
		}
		return []edge{{n + 1, ns}}
	case prog.Store:
		return []edge{{n + 1, s}}
	case prog.Mov:
		ns := s.clone()
		ns.regs[i.Dst] = s.operand(i.Src)
		if i.Src.IsReg {
			if l, ok := s.prov[i.Src.Reg]; ok {
				ns.prov[i.Dst] = l
			} else {
				delete(ns.prov, i.Dst)
			}
		} else {
			delete(ns.prov, i.Dst)
		}
		return []edge{{n + 1, ns}}
	case prog.Add:
		ns := s.clone()
		ns.regs[i.Dst] = arith(s.operand(i.A), s.operand(i.B), func(x, y prog.Val) prog.Val { return x + y })
		delete(ns.prov, i.Dst)
		return []edge{{n + 1, ns}}
	case prog.Mul:
		ns := s.clone()
		ns.regs[i.Dst] = arith(s.operand(i.A), s.operand(i.B), func(x, y prog.Val) prog.Val { return x * y })
		delete(ns.prov, i.Dst)
		return []edge{{n + 1, ns}}
	case prog.CmpEq:
		ns := s.clone()
		ns.regs[i.Dst] = cmpEq(s.operand(i.A), s.operand(i.B))
		delete(ns.prov, i.Dst)
		return []edge{{n + 1, ns}}
	case prog.Jmp:
		return []edge{{i.Target, s}}
	case prog.JmpNZ:
		return branchEdges(s, i.Cond, i.Target, n+1)
	case prog.JmpZ:
		return branchEdges(s, i.Cond, n+1, i.Target)
	default: // Nop
		return []edge{{n + 1, s}}
	}
}

// branchEdges builds the nonzero-edge (to nz) and zero-edge (to z) of a
// conditional branch on cond, refining the register — and, when the
// register has provenance, recording the refined fact about the load
// that produced it.
func branchEdges(s *absState, cond prog.Reg, nz, z int) []edge {
	cv := s.reg(cond)
	var out []edge
	if nzSet := cv.withoutZero(); !nzSet.empty() {
		ns := s.clone()
		ns.regs[cond] = nzSet
		if l, ok := s.prov[cond]; ok {
			ns.addFact(l, nzSet)
		}
		out = append(out, edge{nz, ns})
	}
	if cv.contains(0) {
		ns := s.clone()
		ns.regs[cond] = single(0)
		// The zero fact (ℓ ∋ 0) can never certify — skip recording it.
		out = append(out, edge{z, ns})
	}
	return out
}

// analyzeThread runs the worklist to fixpoint for one thread under the
// current whole-program store approximation.
func analyzeThread(p *prog.Program, lv map[prog.Loc]vset, code []prog.Instr) *threadAbs {
	ta := &threadAbs{code: code, in: make([]*absState, len(code)+1)}
	ta.in[0] = newAbsState()
	work := []int{0}
	inWork := make([]bool, len(code)+1)
	inWork[0] = true
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[n] = false
		if n >= len(code) {
			continue // halt node: no successors
		}
		for _, e := range transfer(p, lv, code, n, ta.in[n]) {
			merged := joinStates(e.state, ta.in[e.to])
			if ta.in[e.to] != nil && merged.equal(ta.in[e.to]) {
				continue
			}
			ta.in[e.to] = merged
			if !inWork[e.to] {
				work = append(work, e.to)
				inWork[e.to] = true
			}
		}
	}
	return ta
}

// analyzeProgram iterates the per-thread analyses with the global
// abstract store to fixpoint and returns the final per-thread results
// plus locVals.
func analyzeProgram(p *prog.Program) ([]*threadAbs, map[prog.Loc]vset) {
	lv := make(map[prog.Loc]vset, len(p.Locs))
	for l := range p.Locs {
		lv[l] = single(prog.V0)
	}
	var threads []*threadAbs
	for {
		threads = threads[:0]
		next := make(map[prog.Loc]vset, len(lv))
		for l, v := range lv {
			next[l] = v
		}
		for _, t := range p.Threads {
			ta := analyzeThread(p, lv, t.Code)
			threads = append(threads, ta)
			for pc, in := range ta.in {
				if in == nil || pc >= len(t.Code) {
					continue
				}
				if st, ok := t.Code[pc].(prog.Store); ok {
					next[st.Dst] = next[st.Dst].union(in.operand(st.Src))
				}
			}
		}
		same := true
		for l, v := range next {
			if !v.equal(lv[l]) {
				same = false
				break
			}
		}
		lv = next
		if same {
			return threads, lv
		}
	}
}
