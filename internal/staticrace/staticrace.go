// Package staticrace is a sound static may-race analysis over
// prog.Program: it over-approximates, across *all* interleavings and
// weak behaviours at once, the set of nonatomic locations that can
// participate in a data race (defs. 9/10 of the paper), and emits a
// local-DRF certificate for the rest.
//
// Soundness is the contract: if the analysis certifies a location, no
// trace of the program contains a race on it. The reverse direction is
// deliberately approximate — a may-race verdict is permission to worry,
// not proof of a race. The modeltest harness proves the contract
// empirically by diffing against the exhaustive dynamic oracle
// (race.FindRaces over every interleaving) on the full litmus +
// progsynth corpus, and the fuzz target extends the diff to arbitrary
// generated programs.
//
// # How certification works
//
// The analysis (absint.go) computes, per thread and program point, an
// abstract state with register value sets, load provenance, and
// must-facts of the form "every path here performed an earlier load of
// synchronising location A that returned a value in V". Sites are the
// (thread, pc) instruction instances that survive abstract
// reachability. A location is certified by discharging every
// cross-thread conflicting pair of its sites; a pair (a, b) is
// discharged by certOrder, the static image of the paper's def. 8
// happens-before:
//
//	There is a fact (A, V) at b with 0 ∉ V, V finite, such that every
//	reachable store to A whose abstract value set meets V (i) is in
//	a's thread, (ii) is dominated by a, and (iii) cannot reach a.
//
// Then in any trace: every instance of b is preceded (po) by a load R
// of A returning some v ∈ V; v ≠ 0, so R read a write instance W of a
// qualifying store site; dominance and unreachability order every
// instance of a po-before every instance of W; and W synchronises with
// R — an SC-atomic write happens-before every later same-location
// access, and an RA read joins exactly the message it read. Chaining
// a →po W →sync R →po b orders every (a, b) instance pair, so the pair
// never races. The same argument with a and b swapped discharges the
// other direction; cheaper rules certify locations whose reachable
// sites are single-threaded or read-only.
//
// The certificate licenses two consumers: the streaming monitor skips
// race-checking state for certified locations (monitor.StaticFilter —
// reports provably unchanged), and internal/opt accepts the certificate
// as the side condition relaxing the poRW reordering constraint
// (opt.CanSwapCert).
package staticrace

import (
	"fmt"
	"sort"
	"strings"

	"localdrf/internal/prog"
)

// Site is one nonatomic access instruction that the analysis considers
// reachable in some trace.
type Site struct {
	Thread int
	PC     int
	Loc    prog.Loc
	Write  bool
}

func (s Site) String() string {
	op := "read"
	if s.Write {
		op = "write"
	}
	return fmt.Sprintf("T%d@%d %s %s", s.Thread, s.PC, op, s.Loc)
}

// Pair is one cross-thread conflicting site pair of a nonatomic
// location, with the analysis' verdict for it.
type Pair struct {
	A, B      Site // A.Thread < B.Thread
	Certified bool
	// Reason says how the pair was discharged ("ordered via A" /
	// "guard unreachable") or why not ("unordered").
	Reason string
}

// Report is the result of Analyze: the partition of the program's
// nonatomic locations into may-race and certified race-free, the
// per-pair evidence, and the RaceFree certificate consumed by
// monitor.StaticFilter and opt.CanSwapCert.
type Report struct {
	// MayRace lists the nonatomic locations that could race in some
	// interleaving (sorted). Sound over-approximation: every location
	// the dynamic oracle ever reports is in this set.
	MayRace []prog.Loc
	// Certified lists the nonatomic locations proven race-free
	// (sorted); Reasons[l] names the rule that certified l.
	Certified []prog.Loc
	Reasons   map[prog.Loc]string
	// Pairs holds every cross-thread conflicting site pair examined,
	// with its verdict — the granularity at which soundness is tested.
	Pairs []Pair

	raceFree map[prog.Loc]bool
	sync     map[prog.Loc]bool
}

// RaceFree reports whether the certificate proves l free of data
// races in every trace. Synchronising locations are trivially race-free
// (def. 9 concerns nonatomic locations only); unknown locations are not
// certified.
func (r *Report) RaceFree(l prog.Loc) bool { return r.raceFree[l] || r.sync[l] }

// String renders the per-location verdicts compactly:
// "x=certified(single-thread) y=may-race".
func (r *Report) String() string {
	verdict := map[prog.Loc]string{}
	for _, l := range r.MayRace {
		verdict[l] = "may-race"
	}
	for _, l := range r.Certified {
		verdict[l] = "certified(" + r.Reasons[l] + ")"
	}
	locs := make([]prog.Loc, 0, len(verdict))
	for l := range verdict {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	parts := make([]string, 0, len(locs))
	for _, l := range locs {
		parts = append(parts, string(l)+"="+verdict[l])
	}
	if len(parts) == 0 {
		return "(no nonatomic locations)"
	}
	return strings.Join(parts, " ")
}

// writeSite is one reachable store to a synchronising location, with
// the abstract set of values it can store.
type writeSite struct {
	thread int
	pc     int
	vals   vset
}

// analysis bundles the abstract results with the syntactic CFG facts
// (dominance, reachability) certification quantifies over.
type analysis struct {
	p       *prog.Program
	threads []*threadAbs
	// dom[t][b] is the set of nodes dominating node b in thread t's
	// syntactic CFG (every execution reaching b passed through them).
	dom [][]map[int]bool
	// reach[t][a][b]: thread t's CFG has a path from a to b (a ≠ b
	// counts only real paths; reach[a][a] true only via a cycle).
	reach [][][]bool
	// syncWrites[A] lists every reachable store site to sync location A.
	syncWrites map[prog.Loc][]writeSite
}

// Analyze runs the static may-race analysis on p.
func Analyze(p *prog.Program) *Report {
	threads, _ := analyzeProgram(p)
	a := &analysis{p: p, threads: threads, syncWrites: map[prog.Loc][]writeSite{}}
	for ti, t := range p.Threads {
		succs := cfgSuccs(t.Code)
		a.dom = append(a.dom, dominators(succs))
		a.reach = append(a.reach, reachability(succs))
		for pc, in := range threads[ti].in {
			if in == nil || pc >= len(t.Code) {
				continue
			}
			if st, ok := t.Code[pc].(prog.Store); ok && p.IsSync(st.Dst) {
				a.syncWrites[st.Dst] = append(a.syncWrites[st.Dst],
					writeSite{thread: ti, pc: pc, vals: in.operand(st.Src)})
			}
		}
	}

	// Reachable nonatomic sites, grouped by location.
	sites := map[prog.Loc][]Site{}
	for ti, t := range p.Threads {
		for pc, in := range t.Code {
			if threads[ti].in[pc] == nil {
				continue
			}
			switch i := in.(type) {
			case prog.Load:
				if !p.IsSync(i.Src) {
					sites[i.Src] = append(sites[i.Src], Site{Thread: ti, PC: pc, Loc: i.Src})
				}
			case prog.Store:
				if !p.IsSync(i.Dst) {
					sites[i.Dst] = append(sites[i.Dst], Site{Thread: ti, PC: pc, Loc: i.Dst, Write: true})
				}
			}
		}
	}

	rep := &Report{
		Reasons:  map[prog.Loc]string{},
		raceFree: map[prog.Loc]bool{},
		sync:     map[prog.Loc]bool{},
	}
	for l, k := range p.Locs {
		if k != prog.NonAtomic {
			rep.sync[l] = true
		}
	}
	for _, l := range p.NonAtomicLocs() {
		if p.IsSync(l) {
			continue // NonAtomicLocs includes RA locations; races are NA-only
		}
		reason, pairs := a.certifyLoc(sites[l])
		rep.Pairs = append(rep.Pairs, pairs...)
		if reason != "" {
			rep.Certified = append(rep.Certified, l)
			rep.Reasons[l] = reason
			rep.raceFree[l] = true
		} else {
			rep.MayRace = append(rep.MayRace, l)
		}
	}
	return rep
}

// certifyLoc certifies one nonatomic location from its reachable sites.
// It returns the certification reason ("" = may-race) and the examined
// cross-thread conflicting pairs.
func (a *analysis) certifyLoc(sites []Site) (string, []Pair) {
	if len(sites) == 0 {
		return "unused", nil
	}
	oneThread, anyWrite := true, false
	for _, s := range sites {
		if s.Thread != sites[0].Thread {
			oneThread = false
		}
		if s.Write {
			anyWrite = true
		}
	}
	if oneThread {
		return "single-thread", nil
	}
	if !anyWrite {
		return "read-only", nil
	}
	var pairs []Pair
	allCertified := true
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			x, y := sites[i], sites[j]
			if x.Thread == y.Thread || (!x.Write && !y.Write) {
				continue // program order / non-conflicting
			}
			if y.Thread < x.Thread {
				x, y = y, x
			}
			pr := Pair{A: x, B: y}
			if ok, why := a.certOrder(x, y); ok {
				pr.Certified, pr.Reason = true, why
			} else if ok, why := a.certOrder(y, x); ok {
				pr.Certified, pr.Reason = true, why
			} else {
				pr.Reason = "unordered"
				allCertified = false
			}
			pairs = append(pairs, pr)
		}
	}
	if allCertified {
		return "pairwise-ordered", pairs
	}
	return "", pairs
}

// certOrder tries to prove that every instance of site a happens-before
// every instance of site b (a, b in different threads) via a
// synchronising location, using the facts available at b. See the
// package comment for the full argument.
func (a *analysis) certOrder(sa, sb Site) (bool, string) {
	in := a.threads[sb.Thread].in[sb.PC]
	if in == nil {
		return true, "guard unreachable"
	}
	for A, V := range in.facts {
		if !a.p.IsSync(A) || !factUsable(V) {
			continue
		}
		ok := true
		qualifying := 0
		for _, w := range a.syncWrites[A] {
			if !w.vals.intersects(V) {
				continue
			}
			qualifying++
			if w.thread != sa.Thread ||
				!a.dom[sa.Thread][w.pc][sa.PC] ||
				a.reach[sa.Thread][w.pc][sa.PC] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if qualifying == 0 {
			// No store can produce a value in V and 0 ∉ V: no trace ever
			// satisfies the guard, so b never executes.
			return true, fmt.Sprintf("guard on %s unsatisfiable", A)
		}
		return true, fmt.Sprintf("ordered via %s", A)
	}
	return false, ""
}

// cfgSuccs builds the syntactic successor lists of a thread's code over
// nodes 0..len(code), node len(code) being the halt state.
func cfgSuccs(code []prog.Instr) [][]int {
	succs := make([][]int, len(code)+1)
	for pc, in := range code {
		switch i := in.(type) {
		case prog.Jmp:
			succs[pc] = []int{i.Target}
		case prog.JmpNZ:
			succs[pc] = branchSuccs(i.Target, pc+1)
		case prog.JmpZ:
			succs[pc] = branchSuccs(i.Target, pc+1)
		default:
			succs[pc] = []int{pc + 1}
		}
	}
	return succs
}

func branchSuccs(target, fall int) []int {
	if target == fall {
		return []int{fall}
	}
	return []int{target, fall}
}

// dominators computes, per node, the set of nodes that lie on every
// path from the entry (node 0) — the standard iterative dataflow over
// the syntactic CFG. Nodes unreachable from the entry keep a nil set
// (certification never consults them). Syntactic dominance is sound
// here: every execution follows a syntactic path, so if a dominates b
// syntactically then a has executed before any execution of b.
func dominators(succs [][]int) []map[int]bool {
	n := len(succs)
	preds := make([][]int, n)
	order := []int{} // reverse-postorder-ish: BFS from entry
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range succs[u] {
			preds[v] = append(preds[v], u)
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	dom := make([]map[int]bool, n)
	dom[0] = map[int]bool{0: true}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == 0 {
				continue
			}
			var merged map[int]bool
			for _, p := range preds[b] {
				if dom[p] == nil {
					continue
				}
				if merged == nil {
					merged = map[int]bool{}
					for d := range dom[p] {
						merged[d] = true
					}
					continue
				}
				for d := range merged {
					if !dom[p][d] {
						delete(merged, d)
					}
				}
			}
			if merged == nil {
				continue
			}
			merged[b] = true
			if dom[b] == nil || len(merged) != len(dom[b]) || !subset(merged, dom[b]) {
				dom[b] = merged
				changed = true
			}
		}
	}
	return dom
}

func subset(a, b map[int]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// reachability computes r[a][b] = the CFG has a nonempty path a → b.
func reachability(succs [][]int) [][]bool {
	n := len(succs)
	r := make([][]bool, n)
	for a := 0; a < n; a++ {
		r[a] = make([]bool, n)
		queue := append([]int{}, succs[a]...)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if r[a][u] {
				continue
			}
			r[a][u] = true
			queue = append(queue, succs[u]...)
		}
	}
	return r
}
