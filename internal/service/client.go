package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// Client streams one trace session to a racemond server, riding through
// disconnects, server restarts and busy shedding with bounded
// exponential backoff. Resume needs no client-side state: every attempt
// replays the trace from byte 0 (Source returns a fresh reader) and the
// server discards up to its newest checkpoint — so the client is
// trivially correct and the durability problem lives entirely on the
// server, where the checkpoints are.
type Client struct {
	// Addr is the server's host:port.
	Addr string
	// Session names the session; retries must reuse the name (that IS
	// the resume key).
	Session string
	// Source returns a fresh reader over the complete trace bytes —
	// called once per attempt.
	Source func() (io.Reader, error)
	// Attempts bounds connection attempts, including the first
	// (default 10).
	Attempts int
	// Backoff is the initial retry delay (default 50ms), doubled per
	// retry up to MaxBackoff (default 2s). A server busy reply raises
	// the next delay to at least its retry-after hint.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// DialTimeout bounds each dial (default 5s); RespTimeout bounds
	// waiting for the handshake reply and the final done line
	// (default 60s).
	DialTimeout time.Duration
	RespTimeout time.Duration
	// ChunkSize is the CRC-chunk payload size (default 64 KiB).
	ChunkSize int
	// WrapConn, when non-nil, wraps each attempt's connection — the
	// chaos harness's injection point (attempt counts from 0, so a
	// fault plan can hit the first attempt and spare the retries).
	WrapConn func(attempt int, conn net.Conn) net.Conn
	// Sleep replaces time.Sleep in tests (nil = real sleep).
	Sleep func(time.Duration)
}

func (c *Client) withDefaults() Client {
	out := *c
	if out.Attempts == 0 {
		out.Attempts = 10
	}
	if out.Backoff == 0 {
		out.Backoff = 50 * time.Millisecond
	}
	if out.MaxBackoff == 0 {
		out.MaxBackoff = 2 * time.Second
	}
	if out.DialTimeout == 0 {
		out.DialTimeout = 5 * time.Second
	}
	if out.RespTimeout == 0 {
		out.RespTimeout = 60 * time.Second
	}
	if out.ChunkSize == 0 {
		out.ChunkSize = 64 << 10
	}
	if out.Sleep == nil {
		out.Sleep = time.Sleep
	}
	return out
}

// errFatal marks protocol/config errors no retry can fix.
type errFatal struct{ err error }

func (e errFatal) Error() string { return e.err.Error() }
func (e errFatal) Unwrap() error { return e.err }

// Run streams the session to completion and returns the server's final
// result. Retryable failures (dial errors, disconnects, busy shedding,
// mid-stream errors) are retried with backoff up to Attempts; protocol
// errors ("err" handshake replies) are fatal.
func (c *Client) Run() (*SessionResult, error) {
	cc := c.withDefaults()
	backoff := cc.Backoff
	// hint is a server retry-after that raises the NEXT delay only; the
	// exponential series keeps doubling on its own track. (Folding the
	// hint into backoff itself would ratchet the series: one generous
	// hint would become the base every later delay doubles from.)
	var hint time.Duration
	var lastErr error
	for attempt := 0; attempt < cc.Attempts; attempt++ {
		if attempt > 0 {
			delay := backoff
			if hint > delay {
				delay = hint
			}
			hint = 0
			cc.Sleep(delay)
			if backoff *= 2; backoff > cc.MaxBackoff {
				backoff = cc.MaxBackoff
			}
		}
		res, retryAfter, err := cc.attempt(attempt)
		if err == nil {
			return res, nil
		}
		var fatal errFatal
		if errors.As(err, &fatal) {
			return nil, fatal.err
		}
		hint = retryAfter
		lastErr = err
	}
	return nil, fmt.Errorf("service: session %s failed after %d attempts: %w", cc.Session, cc.Attempts, lastErr)
}

// attempt runs one connection attempt: handshake, stream, result.
func (cc *Client) attempt(attempt int) (*SessionResult, time.Duration, error) {
	raw, err := net.DialTimeout("tcp", cc.Addr, cc.DialTimeout)
	if err != nil {
		return nil, 0, err
	}
	conn := raw
	if cc.WrapConn != nil {
		conn = cc.WrapConn(attempt, raw)
	}
	defer conn.Close()

	if _, err := fmt.Fprintf(conn, "%s %d session %s\n", protoMagic, protoVersion, cc.Session); err != nil {
		return nil, 0, err
	}
	br := bufio.NewReader(conn)
	raw.SetReadDeadline(time.Now().Add(cc.RespTimeout))
	line, err := readLine(br)
	if err != nil {
		return nil, 0, err
	}
	switch verb, rest, _ := strings.Cut(line, " "); verb {
	case "ok":
		// rest is the server's recovered event count — informative only.
		_ = rest
	case "busy":
		return nil, parseRetryAfter(rest), fmt.Errorf("service: server busy (%s)", rest)
	case "err":
		return nil, 0, errFatal{fmt.Errorf("service: server rejected session: %s", rest)}
	default:
		return nil, 0, errFatal{fmt.Errorf("service: bad handshake reply %q", line)}
	}

	src, err := cc.Source()
	if err != nil {
		return nil, 0, errFatal{fmt.Errorf("service: trace source: %w", err)}
	}
	raw.SetReadDeadline(time.Time{})
	// Plain read/write loop rather than io.Copy: Copy would delegate to
	// the source's WriteTo and stream the whole trace as one giant
	// chunk, defeating ChunkSize's purpose (granular frames, so server
	// progress and fault positions interleave at chunk resolution).
	cw := &chunkWriter{w: conn}
	buf := make([]byte, cc.ChunkSize)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			if _, werr := cw.Write(buf[:n]); werr != nil {
				return nil, 0, werr
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return nil, 0, errFatal{fmt.Errorf("service: trace source: %w", rerr)}
		}
	}
	if err := cw.End(); err != nil {
		return nil, 0, err
	}

	raw.SetReadDeadline(time.Now().Add(cc.RespTimeout))
	line, err = readLine(br)
	if err != nil {
		return nil, 0, err
	}
	verb, rest, _ := strings.Cut(line, " ")
	switch verb {
	case "done":
		var res SessionResult
		if err := json.Unmarshal([]byte(rest), &res); err != nil {
			return nil, 0, errFatal{fmt.Errorf("service: bad done payload: %w", err)}
		}
		return &res, 0, nil
	case "err":
		// Mid-stream server-side failure (corruption detected, timeout):
		// the session reverts to its newest checkpoint; retry resumes it.
		return nil, 0, fmt.Errorf("service: ingest failed server-side: %s", rest)
	default:
		return nil, 0, fmt.Errorf("service: bad final reply %q", line)
	}
}

// parseRetryAfter extracts the millisecond hint from "retry-after <ms>".
func parseRetryAfter(rest string) time.Duration {
	f := strings.Fields(rest)
	if len(f) == 2 && f[0] == "retry-after" {
		if ms, err := strconv.Atoi(f[1]); err == nil && ms >= 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	return 0
}
