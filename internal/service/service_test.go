package service

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"localdrf/internal/faultinject"
	"localdrf/internal/monitor"
	"localdrf/internal/progsynth"
	"localdrf/internal/schedgen"
)

// genTrace builds a deterministic wire-v2 trace: the same generator
// stack racemon uses, so service ingest is tested on realistic streams
// (RA edges, atomics, stale reads, races).
func genTrace(t testing.TB, seed int64, events int) []byte {
	t.Helper()
	cfg := progsynth.ScaledDefaults()
	cfg.Threads = 6
	cfg.NonAtomic = 24
	cfg.Atomics = 6
	cfg.RAs = 6
	cfg.Iters = cfg.IterationsFor(events)
	p := progsynth.Scaled(seed, cfg)
	tb := monitor.NewTable(p)
	var buf bytes.Buffer
	opts := schedgen.Options{Policy: schedgen.Bursty, Seed: seed, MaxEvents: events, StaleReadPct: 10}
	if _, _, err := schedgen.Encode(&buf, tb.Program(), tb, opts, monitor.BinaryV2); err != nil {
		t.Fatalf("generate trace: %v", err)
	}
	return buf.Bytes()
}

// referenceResult monitors the trace bytes with a plain sequential
// monitor — the ground truth every service journey must match
// byte-identically (canonical JSON, journey fields excluded).
func referenceResult(t testing.TB, session string, trace []byte) SessionResult {
	t.Helper()
	tr, err := monitor.NewTraceReader(bytes.NewReader(trace))
	if err != nil {
		t.Fatalf("reference reader: %v", err)
	}
	m := tr.NewMonitor()
	var batch []monitor.Event
	for {
		b, more, err := tr.NextBatch(batch[:0])
		if err != nil {
			t.Fatalf("reference decode: %v", err)
		}
		if !more {
			break
		}
		m.StepBatch(b)
		batch = b
	}
	reports := m.Reports()
	st := m.RAStats()
	res := SessionResult{
		Session: session, Events: m.Events(), RaceCount: len(reports),
		Races:  make([]RaceJSON, 0, len(reports)),
		RALive: st.Live, RAPeak: st.Peak, RACollected: st.Collected,
	}
	for _, r := range reports {
		res.Races = append(res.Races, toRaceJSON(r))
	}
	return res
}

// startServer builds and serves a Server on a loopback port.
func startServer(t testing.TB, cfg Config) (*Server, string) {
	t.Helper()
	s := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

// runClient streams trace as one session and returns the result.
func runClient(t testing.TB, addr, session string, trace []byte, wrap func(int, net.Conn) net.Conn) *SessionResult {
	t.Helper()
	c := &Client{
		Addr: addr, Session: session,
		Source:   func() (io.Reader, error) { return bytes.NewReader(trace), nil },
		Attempts: 20, Backoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
		// Small chunks so server-side progress (and checkpoints) interleave
		// with injected fault positions at fine granularity.
		ChunkSize: 8 << 10,
		WrapConn:  wrap,
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("session %s: %v", session, err)
	}
	return res
}

// mustMatch asserts a journey produced the reference outcome.
func mustMatch(t testing.TB, got *SessionResult, want SessionResult) {
	t.Helper()
	if g, w := string(got.CanonicalJSON()), string(want.CanonicalJSON()); g != w {
		t.Fatalf("session outcome diverged from the uninterrupted reference\ngot  %s\nwant %s", g, w)
	}
}

// counter reads a service counter by name from the registry snapshot.
func counter(s *Server, name string) uint64 {
	return s.reg.Snapshot().Counters[name]
}

// TestServiceBasic: an unfaulted session completes and matches the
// sequential reference — through a sequential monitor and through a
// sharded pipeline.
func TestServiceBasic(t *testing.T) {
	trace := genTrace(t, 7, 60_000)
	want := referenceResult(t, "basic", trace)
	if want.RaceCount == 0 {
		t.Fatal("fixture trace has no races; not a useful test")
	}
	for _, shards := range []int{1, 4} {
		s, addr := startServer(t, Config{Shards: shards, CheckpointDir: t.TempDir(), CheckpointEvery: 10_000})
		res := runClient(t, addr, "basic", trace, nil)
		mustMatch(t, res, want)
		if res.Resumed != 0 {
			t.Fatalf("shards=%d: uninterrupted session reports %d resumes", shards, res.Resumed)
		}
		if got := counter(s, "service.sessions_completed"); got != 1 {
			t.Fatalf("shards=%d: sessions_completed = %d, want 1", shards, got)
		}
		s.Close()
	}
}

// TestServiceResumesAfterDisconnect: the first attempt's connection is
// cut mid-upload; the session reverts to its newest checkpoint and the
// retry resumes it to the identical outcome.
func TestServiceResumesAfterDisconnect(t *testing.T) {
	trace := genTrace(t, 11, 80_000)
	want := referenceResult(t, "cutme", trace)
	s, addr := startServer(t, Config{CheckpointDir: t.TempDir(), CheckpointEvery: 8_000})
	res := runClient(t, addr, "cutme", trace, func(attempt int, conn net.Conn) net.Conn {
		if attempt == 0 {
			return faultinject.WrapConn(conn, faultinject.ConnPlan{CutAfter: int64(len(trace) / 2)})
		}
		return conn
	})
	mustMatch(t, res, want)
	if res.Resumed < 1 {
		t.Fatal("cut session reports no resume")
	}
	if got := counter(s, "service.sessions_recovered"); got < 1 {
		t.Fatalf("sessions_recovered = %d, want >= 1", got)
	}
	if got := counter(s, "service.stream_truncated"); got < 1 {
		t.Fatalf("stream_truncated = %d, want >= 1", got)
	}
}

// TestServiceDetectsCorruption: a flipped byte mid-stream must be caught
// by the chunk CRC (never decoded), end the attempt server-side, and the
// clean retry must still converge on the reference outcome.
func TestServiceDetectsCorruption(t *testing.T) {
	trace := genTrace(t, 13, 60_000)
	want := referenceResult(t, "corrupt", trace)
	s, addr := startServer(t, Config{CheckpointDir: t.TempDir(), CheckpointEvery: 10_000})
	res := runClient(t, addr, "corrupt", trace, func(attempt int, conn net.Conn) net.Conn {
		if attempt == 0 {
			// Flip a byte well into the stream, then let the upload finish:
			// only the CRC layer can notice.
			return faultinject.WrapConn(conn, faultinject.ConnPlan{CorruptAt: int64(len(trace) * 2 / 3)})
		}
		return conn
	})
	mustMatch(t, res, want)
	if got := counter(s, "service.chunk_crc_errors"); got != 1 {
		t.Fatalf("chunk_crc_errors = %d, want 1", got)
	}
}

// TestServiceSheds: with the session cap occupied, a second session gets
// an explicit busy retry-after, and succeeds once the cap frees up.
func TestServiceSheds(t *testing.T) {
	trace := genTrace(t, 17, 20_000)
	s, addr := startServer(t, Config{MaxSessions: 1, RetryAfter: 10 * time.Millisecond})

	// Occupy the only slot with a raw half-open session.
	occupier, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(occupier, "racemond 1 session hog\n")
	okLine := make([]byte, 16)
	if _, err := occupier.Read(okLine); err != nil {
		t.Fatal(err)
	}

	c := &Client{
		Addr: addr, Session: "shedme",
		Source:   func() (io.Reader, error) { return bytes.NewReader(trace), nil },
		Attempts: 1,
	}
	if _, err := c.Run(); err == nil || !strings.Contains(err.Error(), "busy") {
		t.Fatalf("second session with cap 1: err = %v, want busy", err)
	}
	if got := counter(s, "service.sessions_rejected"); got != 1 {
		t.Fatalf("sessions_rejected = %d, want 1", got)
	}

	occupier.Close()
	// The slot frees once the server notices the disconnect; the bounded
	// retry loop must ride that out and complete.
	want := referenceResult(t, "shedme", trace)
	res := runClient(t, addr, "shedme", trace, nil)
	mustMatch(t, res, want)
}

// TestServiceSlowLoris: a client that stalls mid-upload is cut off by
// the per-read deadline rather than pinning a session slot forever.
func TestServiceSlowLoris(t *testing.T) {
	s, addr := startServer(t, Config{ReadTimeout: 100 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "racemond 1 session loris\n")
	br := make([]byte, 64)
	if _, err := conn.Read(br); err != nil { // ok line
		t.Fatal(err)
	}
	// Send a fragment of a chunk, then stall.
	trace := genTrace(t, 19, 5_000)
	cw := &chunkWriter{w: conn}
	if _, err := cw.Write(trace[:100]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for counter(s, "service.ingest_timeouts") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never timed out the stalled session")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The slot must be free again.
	deadline = time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := s.attachedN
		s.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled session still attached (%d)", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServiceCheckpointBackpressure: when checkpoint writes fail (full
// disk), the server goes degraded and sheds NEW admissions — it must not
// take on recovery obligations it cannot persist — and recovers as soon
// as a checkpoint write succeeds again.
func TestServiceCheckpointBackpressure(t *testing.T) {
	trace := genTrace(t, 23, 60_000)
	// Fail the first checkpoint sync, let later ones through.
	ffs := faultinject.NewFS(faultinject.OS(), faultinject.FSPlan{FailSyncNth: 1})
	s, addr := startServer(t, Config{
		CheckpointDir: t.TempDir(), CheckpointEvery: 10_000, FS: ffs,
		RetryAfter: 5 * time.Millisecond,
	})
	want := referenceResult(t, "degraded", trace)
	res := runClient(t, addr, "degraded", trace, nil)
	mustMatch(t, res, want) // a failed checkpoint must not corrupt the outcome
	if got := counter(s, "service.checkpoint_failures"); got != 1 {
		t.Fatalf("checkpoint_failures = %d, want 1", got)
	}
	if got := counter(s, "service.checkpoints"); got < 1 {
		t.Fatalf("checkpoints = %d, want >= 1 (degraded must clear on success)", got)
	}
	s.mu.Lock()
	deg := s.degraded
	s.mu.Unlock()
	if deg {
		t.Fatal("server still degraded after a successful checkpoint")
	}
}

// TestServiceRejectsBadHandshake: garbage and invalid session ids get an
// explicit protocol error.
func TestServiceRejectsBadHandshake(t *testing.T) {
	_, addr := startServer(t, Config{})
	for _, line := range []string{
		"GET / HTTP/1.1\n",
		"racemond 2 session x\n",
		"racemond 1 session ../escape\n",
		"racemond 1 session .hidden\n",
		"racemond 1 session " + strings.Repeat("a", 65) + "\n",
	} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		io.WriteString(conn, line)
		reply, _ := io.ReadAll(conn)
		conn.Close()
		if !strings.HasPrefix(string(reply), "err ") {
			t.Fatalf("handshake %q: reply %q, want err", strings.TrimSpace(line), reply)
		}
	}
}

// TestServiceStatsEndpoint: the aggregate view carries the session table
// and both metric namespaces; the per-session view serves the live
// registry; unknown sessions 404.
func TestServiceStatsEndpoint(t *testing.T) {
	trace := genTrace(t, 29, 30_000)
	s, addr := startServer(t, Config{})
	runClient(t, addr, "statsme", trace, nil)

	h := s.StatsHandler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	body := rec.Body.String()
	if rec.Code != 200 {
		t.Fatalf("GET /stats: %d", rec.Code)
	}
	for _, want := range []string{"service.sessions_completed", "uptime_ns", "sessions"} {
		if !strings.Contains(body, want) {
			t.Fatalf("GET /stats missing %q:\n%s", want, body)
		}
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stats?session=nosuch", nil))
	if rec.Code != 404 {
		t.Fatalf("GET /stats?session=nosuch: %d, want 404", rec.Code)
	}
}

// TestServiceIdleEviction: detached session bookkeeping is evicted after
// the idle timeout (the on-disk ring would survive; the table must not
// grow without bound).
func TestServiceIdleEviction(t *testing.T) {
	s, addr := startServer(t, Config{IdleTimeout: 100 * time.Millisecond, ReadTimeout: 50 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "racemond 1 session fleeting\n")
	buf := make([]byte, 16)
	conn.Read(buf)
	conn.Close() // abnormal end: session detaches, stays tracked
	deadline := time.Now().Add(5 * time.Second)
	for counter(s, "service.sessions_evicted") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
