package service

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"localdrf/internal/obs"
)

// The service's observability rides the existing obs/stats surface —
// one registry per session sink (the same monitor.*/pipeline.* cells
// racemon serves) plus the server's service.* registry, mounted under
// a single /stats endpoint. No second metrics path.

// sessionStats is one session's row in the /stats listing.
type sessionStats struct {
	Session  string `json:"session"`
	Attached bool   `json:"attached"`
	Events   uint64 `json:"events"`
	Resumed  int    `json:"resumed,omitempty"`
	IdleNs   int64  `json:"idle_ns,omitempty"`
}

// statsDoc is the aggregate /stats payload.
type statsDoc struct {
	UptimeNs int64          `json:"uptime_ns"`
	Sessions []sessionStats `json:"sessions"`
	// Service is the service.* registry snapshot; Monitors merges the
	// monitor.*/pipeline.* registries of every attached session (the
	// aggregate ingest view — counters sum across sessions).
	Service  obs.Snapshot `json:"service"`
	Monitors obs.Snapshot `json:"monitors"`
	// Rates are per-second counter rates since the previous scrape
	// (service.* and merged monitor cells together).
	Rates map[string]float64 `json:"rates,omitempty"`
}

// sessionDoc is the per-session /stats?session=ID payload.
type sessionDoc struct {
	sessionStats
	// Metrics is the session sink's registry snapshot — only while the
	// session is attached (a detached session's state lives in its
	// checkpoint ring, not in memory).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// statsSnapshot collects the aggregate view under the server lock.
func (s *Server) statsSnapshot() statsDoc {
	s.mu.Lock()
	regs := make([]*obs.Registry, 0, len(s.sessions))
	doc := statsDoc{UptimeNs: time.Since(s.start).Nanoseconds(), Sessions: []sessionStats{}}
	now := time.Now()
	for _, sess := range s.sessions {
		row := sessionStats{Session: sess.id, Attached: sess.attached, Events: sess.events, Resumed: sess.resumed}
		if !sess.attached {
			row.IdleNs = now.Sub(sess.lastSeen).Nanoseconds()
		}
		doc.Sessions = append(doc.Sessions, row)
		if sess.reg != nil {
			regs = append(regs, sess.reg)
		}
	}
	s.mu.Unlock()
	sort.Slice(doc.Sessions, func(i, j int) bool { return doc.Sessions[i].Session < doc.Sessions[j].Session })
	doc.Service = s.reg.Snapshot()
	snaps := make([]obs.Snapshot, 0, len(regs))
	for _, reg := range regs {
		snaps = append(snaps, reg.Snapshot())
	}
	doc.Monitors = obs.Merge(snaps...)
	return doc
}

// rates computes per-second counter rates against the previous scrape.
func (s *Server) rates(cur obs.Snapshot) map[string]float64 {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	now := time.Now()
	var out map[string]float64
	if !s.statsAt.IsZero() {
		if dt := now.Sub(s.statsAt).Seconds(); dt > 0 {
			delta := cur.Delta(s.statsPrev)
			out = make(map[string]float64, len(delta.Counters))
			for name, v := range delta.Counters {
				out[name] = float64(v) / dt
			}
		}
	}
	s.statsPrev, s.statsAt = cur, now
	return out
}

// StatsHandler serves the service's telemetry:
//
//	GET /stats              aggregate: session table, service.* cells,
//	                        merged per-session monitor cells, rates
//	GET /stats?session=ID   one session's row + its live registry
//
// Mount it (plus expvar/pprof if desired) on whatever mux the binary
// serves — cmd/racemond does.
func (s *Server) StatsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id := r.URL.Query().Get("session"); id != "" {
			s.mu.Lock()
			sess := s.sessions[id]
			var doc *sessionDoc
			if sess != nil {
				doc = &sessionDoc{sessionStats: sessionStats{
					Session: sess.id, Attached: sess.attached, Events: sess.events, Resumed: sess.resumed,
				}}
				if !sess.attached {
					doc.IdleNs = time.Since(sess.lastSeen).Nanoseconds()
				}
				reg := sess.reg
				s.mu.Unlock()
				if reg != nil {
					snap := reg.Snapshot()
					doc.Metrics = &snap
				}
			} else {
				s.mu.Unlock()
			}
			if doc == nil {
				http.Error(w, `{"error":"unknown session"}`, http.StatusNotFound)
				return
			}
			enc.Encode(doc)
			return
		}
		doc := s.statsSnapshot()
		doc.Rates = s.rates(obs.Merge(doc.Service, doc.Monitors))
		enc.Encode(doc)
	})
	return mux
}
