package service

// Hardening regressions: the retry-after backoff ratchet and the /stats
// concurrency guard.

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// busyServer accepts connections and sheds every one: the first with a
// retry-after hint, the rest with a bare busy. Returns the address.
func busyServer(t *testing.T, hintMS int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		first := true
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn, hinted bool) {
				defer c.Close()
				br := bufio.NewReader(c)
				if _, err := br.ReadString('\n'); err != nil {
					return
				}
				if hinted {
					fmt.Fprintf(c, "busy retry-after %d\n", hintMS)
				} else {
					fmt.Fprint(c, "busy\n")
				}
			}(conn, first)
			first = false
		}
	}()
	return ln.Addr().String()
}

// TestBackoffHintAppliesOnce: a server retry-after hint raises the next
// retry delay only; the exponential series keeps doubling from its own
// base. The regression this pins: folding the hint into the backoff
// variable made it the new base, so one generous hint (80ms against a
// 10ms base) turned the tail into 160ms, 320ms, ... instead of
// returning to the 20ms, 40ms series.
func TestBackoffHintAppliesOnce(t *testing.T) {
	addr := busyServer(t, 80)
	var delays []time.Duration
	c := &Client{
		Addr: addr, Session: "hint",
		Source:   func() (io.Reader, error) { return strings.NewReader(""), nil },
		Attempts: 4, Backoff: 10 * time.Millisecond, MaxBackoff: 10 * time.Second,
		Sleep: func(d time.Duration) { delays = append(delays, d) },
	}
	if _, err := c.Run(); err == nil {
		t.Fatal("all-busy server: want an error")
	}
	want := []time.Duration{80 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(delays) != len(want) {
		t.Fatalf("got %d delays %v, want %v", len(delays), delays, want)
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delay sequence %v, want %v (hint must not ratchet the series)", delays, want)
		}
	}
}

// TestStatsHandlerConcurrent hammers the /stats endpoint (aggregate —
// whose rate computation keeps cross-request scrape state — and the
// per-session view) from four goroutines while a session is live. Run
// under -race this pins the statsMu guard on the previous-scrape state;
// without it concurrent scrapes race on statsPrev/statsAt.
func TestStatsHandlerConcurrent(t *testing.T) {
	s, addr := startServer(t, Config{Shards: 2, CheckpointDir: t.TempDir(), CheckpointEvery: 5_000})
	// Hold a live attached session open for the duration of the hammer:
	// completed sessions are evicted, so the per-session view needs an
	// in-flight one.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "%s %d session hammer\n", protoMagic, protoVersion)
	if line, err := bufio.NewReader(conn).ReadString('\n'); err != nil || !strings.HasPrefix(line, "ok") {
		t.Fatalf("handshake: %q %v", line, err)
	}
	h := s.StatsHandler()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				url := "/stats"
				if (g+i)%2 == 1 {
					url = "/stats?session=hammer"
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
				if rec.Code != 200 {
					t.Errorf("goroutine %d: %s -> %d", g, url, rec.Code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
