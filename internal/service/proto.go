package service

// The racemond wire protocol, layered under the LDTR trace format:
//
//	client → server:  "racemond 1 session <id>\n"
//	server → client:  "ok <events>\n"            admitted; <events> is the
//	                                             server's recovered event
//	                                             count (0 = fresh session)
//	                  "busy retry-after <ms>\n"  shed (session cap reached,
//	                                             checkpoint backpressure, or
//	                                             the session is attached on
//	                                             another connection); retry
//	                  "err <message>\n"          protocol/config error; fatal
//	client → server:  CRC-framed trace bytes (see below), then one
//	                  zero-length END chunk
//	server → client:  "done <json>\n"            the final SessionResult
//	                  "err <message>\n"          ingest failed; reconnect and
//	                                             resume
//
// Trace bytes travel in checksummed chunks: uvarint length (1..maxChunk),
// 4 little-endian bytes of CRC-32C (Castagnoli), payload. A zero length
// is the END marker and carries no CRC. The chunk layer exists for fault
// containment, not framing economy: a torn TCP stream, a flipped byte or
// a truncated upload is detected HERE, before any byte reaches the trace
// decoder, so corruption and disconnection collapse into the same safe
// failure mode — drop the live session state and resume from the newest
// checkpoint. Without it, a flipped byte inside a v2 delta frame can
// decode into well-formed wrong events and poison every later
// checkpoint. Resume is count- and offset-based (the client replays its
// trace from byte 0 and the server discards up to the checkpoint's
// offset), so the chunk boundaries of a retry need not match the
// original — only the deframed byte stream must.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"
)

const (
	protoMagic   = "racemond"
	protoVersion = 1
	// maxChunk bounds one checksummed chunk; the client's chunker splits
	// larger writes.
	maxChunk = 1 << 20
	// maxLine bounds protocol lines (handshake and responses). The done
	// line carries the report JSON, so it is generous.
	maxLine = 1 << 20
	// maxSessionID bounds the session identifier.
	maxSessionID = 64
)

// castagnoli is the CRC-32C table (the polynomial with hardware support
// on both amd64 and arm64, so the chunk layer costs ~1 cycle/byte).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// validSessionID reports whether id is acceptable: 1..maxSessionID
// characters of [A-Za-z0-9._-], not starting with a dot (session ids
// name checkpoint directories; dot-prefixed names are reserved for the
// ring's temp files).
func validSessionID(id string) bool {
	if id == "" || len(id) > maxSessionID || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// readLine reads one \n-terminated protocol line, bounded by maxLine.
func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > maxLine {
		return "", fmt.Errorf("service: protocol line exceeds %d bytes", maxLine)
	}
	return strings.TrimSuffix(line, "\n"), nil
}

// parseHandshake validates "racemond 1 session <id>".
func parseHandshake(line string) (id string, err error) {
	f := strings.Fields(line)
	if len(f) != 4 || f[0] != protoMagic || f[2] != "session" {
		return "", fmt.Errorf("service: bad handshake %q (want %q)", line, protoMagic+" 1 session <id>")
	}
	if f[1] != strconv.Itoa(protoVersion) {
		return "", fmt.Errorf("service: unsupported protocol version %s (have %d)", f[1], protoVersion)
	}
	if !validSessionID(f[3]) {
		return "", fmt.Errorf("service: invalid session id %q (1..%d chars of [A-Za-z0-9._-], no leading dot)", f[3], maxSessionID)
	}
	return f[3], nil
}

// Chunk-layer errors, distinguished so the server can count what the
// fault actually was.
var (
	// ErrChunkCorrupt: a chunk's payload failed its CRC — bytes were
	// altered in flight.
	ErrChunkCorrupt = errors.New("service: chunk CRC mismatch (corrupt stream)")
	// ErrTruncated: the stream ended without the zero-length END chunk —
	// the peer disconnected mid-upload.
	ErrTruncated = errors.New("service: stream truncated before end-of-stream marker")
)

// chunkReader deframes and verifies the checksummed chunk stream,
// presenting the raw trace bytes as an io.Reader. It returns io.EOF
// only at a verified END marker; a disconnection surfaces as
// ErrTruncated and a checksum failure as ErrChunkCorrupt, so the trace
// decoder above can never consume damaged bytes.
type chunkReader struct {
	br    *bufio.Reader
	buf   []byte
	pos   int
	ended bool
	// err is sticky: once a chunk fails verification, every later Read
	// fails the same way and no byte of the damaged chunk is ever
	// delivered — a reader that retried past the error could otherwise
	// consume the poisoned payload.
	err error
}

func (cr *chunkReader) Read(p []byte) (int, error) {
	for cr.pos >= len(cr.buf) {
		if cr.err != nil {
			return 0, cr.err
		}
		if cr.ended {
			return 0, io.EOF
		}
		if err := cr.fill(); err != nil {
			cr.err = err
			cr.buf = nil
			return 0, err
		}
	}
	n := copy(p, cr.buf[cr.pos:])
	cr.pos += n
	return n, nil
}

// fill reads and verifies the next chunk (or the END marker).
func (cr *chunkReader) fill() error {
	length, err := binary.ReadUvarint(cr.br)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrTruncated
		}
		return err
	}
	if length == 0 {
		cr.ended = true
		return nil
	}
	if length > maxChunk {
		return fmt.Errorf("service: chunk length %d exceeds the limit %d", length, maxChunk)
	}
	var sum [4]byte
	if _, err := io.ReadFull(cr.br, sum[:]); err != nil {
		return ErrTruncated
	}
	if uint64(cap(cr.buf)) < length {
		cr.buf = make([]byte, length)
	}
	cr.buf = cr.buf[:length]
	if _, err := io.ReadFull(cr.br, cr.buf); err != nil {
		return ErrTruncated
	}
	if crc32.Checksum(cr.buf, castagnoli) != binary.LittleEndian.Uint32(sum[:]) {
		return ErrChunkCorrupt
	}
	cr.pos = 0
	return nil
}

// chunkWriter frames each Write as one checksummed chunk (splitting
// writes larger than maxChunk). End emits the END marker.
type chunkWriter struct {
	w   io.Writer
	hdr [binary.MaxVarintLen64 + 4]byte
}

func (cw *chunkWriter) Write(p []byte) (int, error) {
	written := 0
	for len(p) > 0 {
		part := p
		if len(part) > maxChunk {
			part = part[:maxChunk]
		}
		n := binary.PutUvarint(cw.hdr[:], uint64(len(part)))
		binary.LittleEndian.PutUint32(cw.hdr[n:], crc32.Checksum(part, castagnoli))
		if _, err := cw.w.Write(cw.hdr[:n+4]); err != nil {
			return written, err
		}
		n2, err := cw.w.Write(part)
		written += n2
		if err != nil {
			return written, err
		}
		p = p[len(part):]
	}
	return written, nil
}

func (cw *chunkWriter) End() error {
	_, err := cw.w.Write([]byte{0})
	return err
}

// RaceJSON is one deduplicated race report in the response (the same
// shape racemon's -json emits).
type RaceJSON struct {
	Loc     string `json:"loc"`
	ThreadI int    `json:"thread_i"`
	ThreadJ int    `json:"thread_j"`
	OpI     string `json:"op_i"`
	OpJ     string `json:"op_j"`
}

// SessionResult is the final "done" payload of one session: the
// deterministic outcome of monitoring the whole uploaded trace. For a
// given trace it is byte-identical no matter how many disconnections,
// corruptions or server restarts the session rode through — the chaos
// harness asserts exactly that.
type SessionResult struct {
	Session     string     `json:"session"`
	Events      uint64     `json:"events"`
	RaceCount   int        `json:"race_count"`
	Races       []RaceJSON `json:"races"`
	RALive      int        `json:"ra_live"`
	RAPeak      int        `json:"ra_peak"`
	RACollected uint64     `json:"ra_collected"`
	// Resumed counts how many times this session was re-attached after
	// its first admission (0 for an uninterrupted run). Excluded from
	// parity comparisons — it describes the journey, not the outcome.
	Resumed int `json:"resumed,omitempty"`
}

// canonical returns the result with journey-dependent fields cleared —
// the byte-comparable outcome.
func (r SessionResult) canonical() SessionResult {
	r.Resumed = 0
	return r
}

// CanonicalJSON renders the journey-independent part of the result as
// canonical JSON, the unit of the chaos harness's byte-identical
// comparison.
func (r SessionResult) CanonicalJSON() []byte {
	b, err := json.Marshal(r.canonical())
	if err != nil {
		panic("service: SessionResult marshal cannot fail: " + err.Error())
	}
	return b
}

// JSON renders the full result (journey fields included) — the payload
// of the server's done line.
func (r SessionResult) JSON() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		panic("service: SessionResult marshal cannot fail: " + err.Error())
	}
	return b
}
