package service

// The chaos harness: the PR's headline proof. Every fault schedule —
// disconnects mid-frame, corrupted bytes, torn checkpoint writes,
// SIGKILL-equivalent server restarts, combinations — must yield a final
// SessionResult byte-identical (canonical JSON: reports AND RAStats) to
// an uninterrupted run of the same trace. Faults are deterministic
// (exact byte offsets, exact operation ordinals), so a failure replays.

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"localdrf/internal/faultinject"
)

// chaosFault is one deterministic client-side fault schedule, as a
// function of the attempt number and the trace length.
type chaosFault struct {
	name string
	wrap func(trace []byte) func(int, net.Conn) net.Conn
}

var chaosFaults = []chaosFault{
	{"none", func(trace []byte) func(int, net.Conn) net.Conn {
		return nil
	}},
	{"disconnect-mid-frame", func(trace []byte) func(int, net.Conn) net.Conn {
		return func(attempt int, conn net.Conn) net.Conn {
			if attempt == 0 {
				return faultinject.WrapConn(conn, faultinject.ConnPlan{CutAfter: int64(len(trace) / 3)})
			}
			return conn
		}
	}},
	{"double-disconnect", func(trace []byte) func(int, net.Conn) net.Conn {
		return func(attempt int, conn net.Conn) net.Conn {
			switch attempt {
			case 0:
				return faultinject.WrapConn(conn, faultinject.ConnPlan{CutAfter: int64(len(trace) / 4)})
			case 1:
				// The second cut lands PAST the first, so the resumed
				// session makes progress and then fails again.
				return faultinject.WrapConn(conn, faultinject.ConnPlan{CutAfter: int64(3 * len(trace) / 4)})
			}
			return conn
		}
	}},
	{"corrupt-then-cut", func(trace []byte) func(int, net.Conn) net.Conn {
		return func(attempt int, conn net.Conn) net.Conn {
			if attempt == 0 {
				return faultinject.WrapConn(conn, faultinject.ConnPlan{
					CorruptAt: int64(2 * len(trace) / 5), CutAfter: int64(3 * len(trace) / 5),
				})
			}
			return conn
		}
	}},
	{"corrupt-stream-continues", func(trace []byte) func(int, net.Conn) net.Conn {
		return func(attempt int, conn net.Conn) net.Conn {
			if attempt == 0 {
				return faultinject.WrapConn(conn, faultinject.ConnPlan{CorruptAt: int64(len(trace) / 2)})
			}
			return conn
		}
	}},
}

// TestChaosParityMatrix: every fault schedule × shard count ×
// checkpoint interval converges on the byte-identical uninterrupted
// outcome — reports and RAStats both, via CanonicalJSON.
func TestChaosParityMatrix(t *testing.T) {
	trace := genTrace(t, 101, 40_000)
	want := referenceResult(t, "chaos", trace)
	if want.RaceCount == 0 {
		t.Fatal("fixture trace has no races; not a useful chaos fixture")
	}
	for _, shards := range []int{1, 2, 4} {
		for _, every := range []uint64{5_000, 17_000} {
			for _, fault := range chaosFaults {
				name := fmt.Sprintf("%s/shards=%d/ck=%d", fault.name, shards, every)
				t.Run(name, func(t *testing.T) {
					_, addr := startServer(t, Config{
						Shards: shards, CheckpointDir: t.TempDir(),
						CheckpointEvery: every, CheckpointRing: 3,
					})
					res := runClient(t, addr, "chaos", trace, fault.wrap(trace))
					mustMatch(t, res, want)
				})
			}
		}
	}
}

// crashableServer serves on a fixed address and can be killed (Close
// drops every live connection without any checkpoint — in-memory state
// vanishes exactly as under SIGKILL; only fsynced ring entries survive)
// and restarted on the same address with the same checkpoint directory.
type crashableServer struct {
	t    *testing.T
	cfg  Config
	addr string
	cur  *Server
}

func startCrashable(t *testing.T, cfg Config) *crashableServer {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cs := &crashableServer{t: t, cfg: cfg, addr: ln.Addr().String()}
	cs.cur = New(cfg)
	go cs.cur.Serve(ln)
	t.Cleanup(func() { cs.cur.Close() })
	return cs
}

// crash kills the running instance and boots a fresh one over the same
// checkpoint directory and address.
func (cs *crashableServer) crash() {
	cs.cur.Close()
	cs.cur = New(cs.cfg)
	// The address may need a moment to rebind after the old listener dies.
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		if ln, err = net.Listen("tcp", cs.addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		cs.t.Errorf("rebind %s: %v", cs.addr, err)
		return
	}
	go cs.cur.Serve(ln)
}

// slowClient streams a session with throttled writes so a crash landing
// mid-upload is deterministic-ish in coverage (the exact position varies,
// the OUTCOME must not).
func slowClient(addr, session string, trace []byte) *Client {
	return &Client{
		Addr: addr, Session: session,
		Source:   func() (io.Reader, error) { return bytes.NewReader(trace), nil },
		Attempts: 60, Backoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
		ChunkSize: 4 << 10,
		WrapConn: func(attempt int, conn net.Conn) net.Conn {
			return faultinject.WrapConn(conn, faultinject.ConnPlan{WriteDelay: time.Millisecond})
		},
	}
}

// TestChaosServerCrashRestart: the server is killed mid-ingest and
// restarted; the session recovers from its checkpoint ring and finishes
// with the uninterrupted outcome.
func TestChaosServerCrashRestart(t *testing.T) {
	trace := genTrace(t, 211, 50_000)
	want := referenceResult(t, "crashy", trace)
	cs := startCrashable(t, Config{CheckpointDir: t.TempDir(), CheckpointEvery: 4_000})

	done := make(chan struct{})
	var res *SessionResult
	var runErr error
	go func() {
		defer close(done)
		res, runErr = slowClient(cs.addr, "crashy", trace).Run()
	}()
	time.Sleep(80 * time.Millisecond) // mid-upload (~1ms per 4KiB chunk)
	cs.crash()
	<-done
	if runErr != nil {
		t.Fatalf("session did not survive the crash: %v", runErr)
	}
	mustMatch(t, res, want)
}

// TestChaosCrashWithTornCheckpoint: the crash interacts with the
// checkpoint ring's own failure mode — one checkpoint file write tears
// (half its bytes, then an error). The torn temp file must never become
// a ring entry, recovery must fall back to an intact generation, and the
// outcome must still match.
func TestChaosCrashWithTornCheckpoint(t *testing.T) {
	trace := genTrace(t, 307, 50_000)
	want := referenceResult(t, "torn", trace)
	ffs := faultinject.NewFS(faultinject.OS(), faultinject.FSPlan{TornNth: 3})
	cs := startCrashable(t, Config{CheckpointDir: t.TempDir(), CheckpointEvery: 4_000, FS: ffs,
		RetryAfter: 10 * time.Millisecond})

	done := make(chan struct{})
	var res *SessionResult
	var runErr error
	go func() {
		defer close(done)
		res, runErr = slowClient(cs.addr, "torn", trace).Run()
	}()
	time.Sleep(80 * time.Millisecond)
	cs.crash()
	<-done
	if runErr != nil {
		t.Fatalf("session did not survive crash + torn checkpoint: %v", runErr)
	}
	mustMatch(t, res, want)
}

// TestChaosMultiSessionCrash: several concurrent sessions, one server
// crash mid-flight — every session must converge on its own reference
// outcome, independently.
func TestChaosMultiSessionCrash(t *testing.T) {
	const n = 6
	traces := make([][]byte, n)
	wants := make([]SessionResult, n)
	for i := range traces {
		traces[i] = genTrace(t, 400+int64(i), 30_000)
		wants[i] = referenceResult(t, fmt.Sprintf("multi-%d", i), traces[i])
	}
	cs := startCrashable(t, Config{CheckpointDir: t.TempDir(), CheckpointEvery: 5_000})

	results := make([]*SessionResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range traces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = slowClient(cs.addr, fmt.Sprintf("multi-%d", i), traces[i]).Run()
		}(i)
	}
	time.Sleep(70 * time.Millisecond)
	cs.crash()
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Errorf("session multi-%d failed: %v", i, errs[i])
			continue
		}
		mustMatch(t, results[i], wants[i])
	}
}
