package service

// The per-session checkpoint ring: a directory of generation-numbered
// LDCK snapshot files, written crash-safely and recovered newest-first.
//
// Layout (under Config.CheckpointDir):
//
//	<dir>/<session-id>/ck-<generation>.ldck
//
// with <generation> a zero-padded hexadecimal counter, so lexical order
// is generation order. A write goes to ".tmp-<generation>" in the same
// directory, is fsynced, atomically renamed into place, and the
// directory is fsynced — a crash at ANY point leaves either the old
// ring intact (temp file never renamed; recovery ignores dot-prefixed
// names) or the new entry fully present. The newest ringSize entries
// are kept; older generations are pruned after each successful write.
//
// Recovery walks the generations newest-first and returns the first one
// whose snapshot decodes — the LDCK codec validates every section, so a
// torn, truncated or bit-flipped file fails closed and recovery falls
// back one generation at a time. An empty or absent ring recovers to
// "no state" (the session restarts from event 0, which is correct:
// the client replays its stream from byte 0 anyway).

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"localdrf/internal/faultinject"
	"localdrf/internal/monitor"
)

const ckSuffix = ".ldck"

// ckName renders the file name of one ring generation.
func ckName(gen uint64) string {
	return fmt.Sprintf("ck-%016x%s", gen, ckSuffix)
}

// ckGen parses a ring entry name; ok=false for anything else (temp
// files, strays).
func ckGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "ck-") || !strings.HasSuffix(name, ckSuffix) {
		return 0, false
	}
	gen, err := strconv.ParseUint(name[3:len(name)-len(ckSuffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// ckRing is one session's checkpoint ring. Methods are called from the
// single goroutine attached to the session.
type ckRing struct {
	fs   faultinject.FS
	dir  string
	size int
	gen  uint64 // next generation to write
}

func newRing(fs faultinject.FS, dir string, size int) *ckRing {
	if size < 1 {
		size = 1
	}
	return &ckRing{fs: fs, dir: dir, size: size}
}

// generations lists the ring's entry generations, ascending.
func (r *ckRing) generations() []uint64 {
	entries, err := r.fs.ReadDir(r.dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, e := range entries {
		if gen, ok := ckGen(e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// recover walks the ring newest-first and returns the first decodable
// snapshot (nil if the ring is empty or nothing decodes) plus the
// number of entries skipped as corrupt. It positions r.gen past every
// generation it saw, so the next write never collides with a stray.
func (r *ckRing) recover() (snap *monitor.Snapshot, skipped int, err error) {
	gens := r.generations()
	if len(gens) == 0 {
		return nil, 0, nil
	}
	r.gen = gens[len(gens)-1] + 1
	var lastErr error
	for i := len(gens) - 1; i >= 0; i-- {
		f, err := r.fs.Open(filepath.Join(r.dir, ckName(gens[i])))
		if err != nil {
			skipped++
			lastErr = err
			continue
		}
		snap, err := monitor.ReadSnapshot(f)
		f.Close()
		if err != nil {
			// Torn or corrupt entry: fall back one generation.
			skipped++
			lastErr = err
			continue
		}
		return snap, skipped, nil
	}
	return nil, skipped, fmt.Errorf("service: no decodable checkpoint among %d ring entries (last: %w)", len(gens), lastErr)
}

// write persists one snapshot as the next ring generation: temp file,
// fsync, atomic rename, directory fsync, prune. On any error the temp
// file is removed (best effort) and the ring is unchanged — the
// previous generations remain the recovery points.
func (r *ckRing) write(snap func(w io.Writer) error) error {
	if err := r.fs.MkdirAll(r.dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(r.dir, fmt.Sprintf(".tmp-%016x", r.gen))
	f, err := r.fs.Create(tmp)
	if err != nil {
		return err
	}
	err = snap(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		r.fs.Remove(tmp)
		return err
	}
	if err := r.fs.Rename(tmp, filepath.Join(r.dir, ckName(r.gen))); err != nil {
		r.fs.Remove(tmp)
		return err
	}
	if err := r.fs.SyncDir(r.dir); err != nil {
		return err
	}
	r.gen++
	r.prune()
	return nil
}

// prune removes all but the newest size generations (best effort).
func (r *ckRing) prune() {
	gens := r.generations()
	for len(gens) > r.size {
		r.fs.Remove(filepath.Join(r.dir, ckName(gens[0])))
		gens = gens[1:]
	}
}

// destroy removes the session's ring directory — called on clean
// session completion, when the durable state has served its purpose.
func (r *ckRing) destroy() {
	r.fs.RemoveAll(r.dir)
}

// sessionDirs lists the session ids that have checkpoint rings under
// dir (used by the stats endpoint after a restart, before sessions
// re-attach).
func sessionDirs(fs faultinject.FS, dir string) []string {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && validSessionID(e.Name()) {
			ids = append(ids, e.Name())
		}
	}
	return ids
}
