// Package service implements racemond: a long-running, fault-tolerant,
// multi-tenant race-monitoring server over the LDTR wire format, plus
// the resume-capable client that feeds it.
//
// Each TCP connection carries one session: a named trace stream
// monitored by its own sequential Monitor or sharded Pipeline. Sessions
// survive everything the transport and the process can do to them —
// disconnects, corrupted bytes, truncated uploads, slow clients,
// full disks, and SIGKILL of the server itself — because durable state
// lives in a per-session ring of LDCK checkpoint files (see ring.go)
// and the protocol's resume rule is radically simple: the client always
// replays its trace from byte 0, and the server discards up to the
// newest checkpoint's recorded offset (or skips by event count). The
// final report set and RAStats of a session are therefore
// byte-identical to an uninterrupted run, a property PR 5's metamorphic
// split-resume harness proves for the monitor core and this package's
// chaos harness proves end-to-end through injected faults.
//
// Failure rule: on ANY abnormal session end (transport error, CRC
// mismatch, decode error, ingest timeout) the live monitor state is
// DISCARDED, never checkpointed — the stream position of a failed
// session is untrustworthy by definition, and the newest ring entry is
// the last state proven consistent. Corruption thereby collapses into
// the disconnection case: detected by the chunk CRC before the decoder
// sees it, session reverts to the last checkpoint.
//
// Overload: admission is shed with an explicit "busy retry-after <ms>"
// when the active-session cap is reached or when checkpoint writes are
// failing (checkpoint backpressure: a service that cannot persist
// recovery points must not take on new recovery obligations). Attached
// sessions are bounded by per-read ingest deadlines (a slow-loris
// client times out and reverts to its last checkpoint) and detached
// session bookkeeping is evicted after an idle timeout.
package service

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"slices"
	"sync"
	"time"

	"localdrf/internal/faultinject"
	"localdrf/internal/monitor"
	"localdrf/internal/obs"
	"localdrf/internal/race"
)

// Config tunes a Server. The zero value serves with defaults: no
// checkpointing (sessions restart from event 0 on any failure),
// sequential monitors, 64 sessions, 10s ingest timeout.
type Config struct {
	// CheckpointDir is the root of the per-session checkpoint rings
	// ("" disables checkpointing; sessions then recover by full replay).
	CheckpointDir string
	// CheckpointEvery checkpoints a session after every N monitored
	// events (default 100000; requires CheckpointDir).
	CheckpointEvery uint64
	// CheckpointRing is how many snapshot generations each session
	// keeps (default 3). Recovery falls back entry by entry past
	// corrupt files, so more generations tolerate more torn writes.
	CheckpointRing int
	// MaxSessions caps concurrently attached sessions; excess
	// admissions are shed with "busy retry-after" (default 64).
	MaxSessions int
	// Shards > 1 monitors each session through a sharded Pipeline
	// instead of a sequential Monitor (default 1). Reports are
	// identical either way; shards trade per-session cores for
	// per-session throughput.
	Shards int
	// ReadTimeout bounds every read from a client connection — the
	// slow-loris defence (default 10s; 0 disables).
	ReadTimeout time.Duration
	// IdleTimeout evicts the in-memory bookkeeping of detached
	// sessions (default 5m). The on-disk ring survives eviction; a
	// later resume recovers from it.
	IdleTimeout time.Duration
	// RetryAfter is the backoff hint sent with "busy" rejections
	// (default 1s).
	RetryAfter time.Duration
	// Limits caps what an untrusted trace header/frame may demand
	// (zero value: 1 MiB header budget, format-cap frames).
	Limits monitor.ReaderLimits
	// FS is the filesystem the checkpoint rings write through
	// (default the real one; the chaos harness injects faults here).
	FS faultinject.FS
	// Logf, when non-nil, receives one line per notable session event.
	Logf func(format string, args ...any)
}

func (cfg Config) withDefaults() Config {
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 100_000
	}
	if cfg.CheckpointRing == 0 {
		cfg.CheckpointRing = 3
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 64
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 10 * time.Second
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Limits == (monitor.ReaderLimits{}) {
		cfg.Limits = monitor.ReaderLimits{MaxHeaderBytes: 1 << 20}
	}
	if cfg.FS == nil {
		cfg.FS = faultinject.OS()
	}
	return cfg
}

// session is the server's bookkeeping for one trace stream. Fields are
// guarded by Server.mu; at most one connection is attached at a time,
// and only the attached handler goroutine touches the session's sink.
type session struct {
	id        string
	attached  bool
	completed bool
	resumed   int    // re-attachments after the first admission
	events    uint64 // events monitored as of the last detach/checkpoint
	races     int    // race count as of completion
	lastSeen  time.Time
	reg       *obs.Registry // the attached sink's registry (nil when detached)
}

// svcCells caches the service-level metric cells (service.* namespace,
// alongside the monitor.*/pipeline.*/parse.* catalogues).
type svcCells struct {
	attached     *obs.Gauge   // service.sessions_attached: currently ingesting
	tracked      *obs.Gauge   // service.sessions_tracked: known to the in-memory table
	degraded     *obs.Gauge   // service.degraded: 1 while checkpoint writes fail (new admissions shed)
	started      *obs.Counter // service.sessions_started: admissions (first + re-attach)
	completed    *obs.Counter // service.sessions_completed: clean END + done reply
	rejected     *obs.Counter // service.sessions_rejected: busy replies
	recovered    *obs.Counter // service.sessions_recovered: attaches restored from a ring entry
	evicted      *obs.Counter // service.sessions_evicted: idle bookkeeping drops
	ingestErrs   *obs.Counter // service.ingest_errors: abnormal session ends
	crcErrs      *obs.Counter // service.chunk_crc_errors: corrupt chunks detected
	truncated    *obs.Counter // service.stream_truncated: disconnects mid-upload
	timeouts     *obs.Counter // service.ingest_timeouts: reads past ReadTimeout
	ckpts        *obs.Counter // service.checkpoints: ring entries written
	ckptFailures *obs.Counter // service.checkpoint_failures: ring writes failed
	ckptSkipped  *obs.Counter // service.checkpoint_corrupt_entries: ring entries skipped at recovery
	bytesIn      *obs.Counter // service.bytes_in: raw connection bytes read
}

func newSvcCells(reg *obs.Registry) svcCells {
	return svcCells{
		attached:     reg.Gauge("service.sessions_attached"),
		tracked:      reg.Gauge("service.sessions_tracked"),
		degraded:     reg.Gauge("service.degraded"),
		started:      reg.Counter("service.sessions_started"),
		completed:    reg.Counter("service.sessions_completed"),
		rejected:     reg.Counter("service.sessions_rejected"),
		recovered:    reg.Counter("service.sessions_recovered"),
		evicted:      reg.Counter("service.sessions_evicted"),
		ingestErrs:   reg.Counter("service.ingest_errors"),
		crcErrs:      reg.Counter("service.chunk_crc_errors"),
		truncated:    reg.Counter("service.stream_truncated"),
		timeouts:     reg.Counter("service.ingest_timeouts"),
		ckpts:        reg.Counter("service.checkpoints"),
		ckptFailures: reg.Counter("service.checkpoint_failures"),
		ckptSkipped:  reg.Counter("service.checkpoint_corrupt_entries"),
		bytesIn:      reg.Counter("service.bytes_in"),
	}
}

// Server is the racemond service. Create with New, start with Serve or
// ListenAndServe, stop with Close.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	c     svcCells
	start time.Time

	mu        sync.Mutex
	sessions  map[string]*session
	attachedN int
	degraded  bool
	closed    bool
	ln        net.Listener
	conns     map[net.Conn]struct{}

	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// stats-endpoint scrape state (rates since previous scrape).
	statsMu   sync.Mutex
	statsPrev obs.Snapshot
	statsAt   time.Time
}

// New builds a Server (not yet listening) and starts its idle-eviction
// janitor.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		c:        newSvcCells(reg),
		start:    time.Now(),
		sessions: make(map[string]*session),
		conns:    make(map[net.Conn]struct{}),
		quit:     make(chan struct{}),
	}
	s.wg.Add(1)
	go s.janitor()
	return s
}

// Obs returns the service-level metric registry (service.* cells).
// Per-session monitor registries are reachable via the stats handler.
func (s *Server) Obs() *obs.Registry { return s.reg }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address once Serve has been called (nil
// before).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts sessions on ln until Close. It returns nil after a
// clean Close, or the first accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("service: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return err
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Close stops accepting, closes every live connection (attached
// sessions end abnormally: live state dropped, ring state kept — the
// same rule as a crash, so a restart recovers them), and waits for the
// handler goroutines to exit.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.quit)
		s.mu.Lock()
		s.closed = true
		if s.ln != nil {
			s.ln.Close()
		}
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return nil
}

// janitor evicts the in-memory bookkeeping of sessions that have been
// detached longer than IdleTimeout. Their checkpoint rings stay on
// disk, so a late resume still recovers; only the table entry (and its
// tiny footprint) is reclaimed — the point is that abandoned sessions
// cannot grow the table without bound.
func (s *Server) janitor() {
	defer s.wg.Done()
	period := s.cfg.IdleTimeout / 4
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-tick.C:
			cutoff := time.Now().Add(-s.cfg.IdleTimeout)
			s.mu.Lock()
			for id, sess := range s.sessions {
				if !sess.attached && sess.lastSeen.Before(cutoff) {
					delete(s.sessions, id)
					s.c.evicted.Add(1)
				}
			}
			s.c.tracked.Set(int64(len(s.sessions)))
			s.mu.Unlock()
		}
	}
}

// admit reserves the session for this connection, or returns the
// shedding decision.
func (s *Server) admit(id string) (sess *session, retryAfter time.Duration, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, s.cfg.RetryAfter, false
	}
	if s.degraded {
		// Checkpoint backpressure: persisting is failing, so taking on
		// new recovery obligations would silently weaken durability.
		return nil, s.cfg.RetryAfter, false
	}
	sess = s.sessions[id]
	if sess != nil && sess.attached {
		// One connection per session. After a network partition the old
		// connection may linger until its read deadline fires; the
		// client retries past it.
		return nil, s.cfg.ReadTimeout, false
	}
	if s.attachedN >= s.cfg.MaxSessions {
		return nil, s.cfg.RetryAfter, false
	}
	if sess == nil {
		sess = &session{id: id}
		s.sessions[id] = sess
	} else {
		sess.resumed++
	}
	sess.attached = true
	sess.completed = false
	s.attachedN++
	s.c.started.Add(1)
	s.c.attached.Set(int64(s.attachedN))
	s.c.tracked.Set(int64(len(s.sessions)))
	return sess, 0, true
}

// detach releases the session; completed sessions leave the table.
func (s *Server) detach(sess *session, events uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess.attached = false
	sess.reg = nil
	sess.events = events
	sess.lastSeen = time.Now()
	s.attachedN--
	if sess.completed {
		delete(s.sessions, sess.id)
	}
	s.c.attached.Set(int64(s.attachedN))
	s.c.tracked.Set(int64(len(s.sessions)))
}

// noteCheckpoint records a checkpoint outcome and drives the degraded
// flag: one failure sheds new admissions until a write succeeds again.
func (s *Server) noteCheckpoint(sess *session, err error) {
	if err != nil {
		s.c.ckptFailures.Add(1)
		s.logf("session %s: checkpoint failed: %v (shedding new sessions)", sess.id, err)
	} else {
		s.c.ckpts.Add(1)
	}
	s.mu.Lock()
	s.degraded = err != nil
	s.mu.Unlock()
	if err != nil {
		s.c.degraded.Set(1)
	} else {
		s.c.degraded.Set(0)
	}
}

// deadlineReader arms a fresh read deadline before every read — the
// slow-loris bound: each read, not just the first, must make progress
// within ReadTimeout.
type deadlineReader struct {
	conn    net.Conn
	timeout time.Duration
	bytes   *obs.Counter
}

func (d *deadlineReader) Read(p []byte) (int, error) {
	if d.timeout > 0 {
		d.conn.SetReadDeadline(time.Now().Add(d.timeout))
	}
	n, err := d.conn.Read(p)
	d.bytes.Add(uint64(n))
	return n, err
}

// sink abstracts the session's monitoring target: a sequential Monitor
// or a sharded Pipeline.
type sink interface {
	StepBatch([]monitor.Event)
	Events() uint64
	RAStats() monitor.RAStats
	SnapshotWithReader(io.Writer, monitor.ReaderCheckpoint) error
	Obs() *obs.Registry
	finish() []race.Report
	abort()
}

type monitorSink struct{ *monitor.Monitor }

func (s monitorSink) finish() []race.Report { return s.Reports() }
func (s monitorSink) abort()                {}

type pipelineSink struct{ *monitor.Pipeline }

func (s pipelineSink) finish() []race.Report { return s.Finish() }
func (s pipelineSink) abort()                { s.Abort() }

// headerEqual reports whether a recovered snapshot and the incoming
// trace describe the same program shape.
func headerEqual(a, b monitor.Header) bool {
	return a.Threads == b.Threads && slices.Equal(a.Decls, b.Decls)
}

// handleConn runs one connection: handshake, admission, ingest.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(&deadlineReader{conn: conn, timeout: s.cfg.ReadTimeout, bytes: s.c.bytesIn}, 64<<10)
	line, err := readLine(br)
	if err != nil {
		return // nothing valid to answer
	}
	id, err := parseHandshake(line)
	if err != nil {
		fmt.Fprintf(conn, "err %v\n", err)
		return
	}
	sess, retryAfter, ok := s.admit(id)
	if !ok {
		s.c.rejected.Add(1)
		fmt.Fprintf(conn, "busy retry-after %d\n", retryAfter.Milliseconds())
		return
	}
	s.ingest(sess, conn, br)
}

// ingest runs the admitted session over this connection until clean
// completion or an abnormal end.
func (s *Server) ingest(sess *session, conn net.Conn, br *bufio.Reader) {
	var events uint64
	defer func() { s.detach(sess, events) }()

	// Recover durable state: newest decodable ring entry, falling back
	// past corrupt generations; an undecodable ring recovers to event 0
	// (sound — the client replays from byte 0).
	var ring *ckRing
	var snap *monitor.Snapshot
	if s.cfg.CheckpointDir != "" {
		ring = newRing(s.cfg.FS, filepath.Join(s.cfg.CheckpointDir, sess.id), s.cfg.CheckpointRing)
		var skipped int
		var err error
		snap, skipped, err = ring.recover()
		if skipped > 0 {
			s.c.ckptSkipped.Add(uint64(skipped))
		}
		if err != nil {
			s.logf("session %s: %v; restarting from event 0", sess.id, err)
			snap = nil
		}
	}

	// The snapshot's header is known before any trace bytes arrive, so
	// a recovered sink is built now and its event count rides on the ok
	// reply (purely informative; resume positioning is server-side).
	var sk sink
	if snap != nil {
		sk = s.newSink(snapSource{snap})
		events = sk.Events()
		s.c.recovered.Add(1)
		s.logf("session %s: recovered at event %d", sess.id, events)
	}
	if _, err := fmt.Fprintf(conn, "ok %d\n", events); err != nil {
		s.fail(sess, conn, sk, err)
		return
	}

	// The trace decoder reads through the CRC chunk layer: damaged or
	// truncated bytes surface as errors HERE, never as events.
	cr := &chunkReader{br: br}
	tr, err := monitor.NewTraceReaderLimits(cr, s.cfg.Limits)
	if err != nil {
		s.fail(sess, conn, sk, err)
		return
	}
	if snap != nil {
		if !headerEqual(snap.Header(), tr.Header()) {
			s.fail(sess, conn, sk, fmt.Errorf("service: resumed stream has a different header than the session's checkpoint"))
			return
		}
		if rck, hasRck := snap.Reader(); hasRck {
			err = tr.Resume(rck)
		} else {
			// Count-skip: a snapshot without a reader continuation still
			// resumes — decode and drop the already-monitored prefix.
			for skip := events; skip > 0 && err == nil; skip-- {
				var more bool
				if _, more, err = tr.Next(); err == nil && !more {
					err = fmt.Errorf("service: replayed stream ends inside the %d already-monitored events", events)
				}
			}
		}
		if err != nil {
			s.fail(sess, conn, sk, err)
			return
		}
	} else if sk == nil {
		sk = s.newSink(headerSource{tr.Header()})
	}
	s.mu.Lock()
	sess.reg = sk.Obs()
	s.mu.Unlock()

	nextCk := uint64(0)
	if ring != nil && s.cfg.CheckpointEvery > 0 {
		nextCk = (events/s.cfg.CheckpointEvery + 1) * s.cfg.CheckpointEvery
	}
	var buf []monitor.Event
	for {
		batch, more, err := tr.NextBatch(buf[:0])
		if err != nil {
			s.fail(sess, conn, sk, err)
			return
		}
		if !more {
			break
		}
		sk.StepBatch(batch)
		events = sk.Events()
		buf = batch
		if nextCk > 0 && events >= nextCk {
			rck, err := tr.Checkpoint()
			if err == nil {
				err = ring.write(func(w io.Writer) error { return sk.SnapshotWithReader(w, rck) })
			}
			s.noteCheckpoint(sess, err)
			nextCk = (events/s.cfg.CheckpointEvery + 1) * s.cfg.CheckpointEvery
		}
	}

	// Clean END marker: finalize and answer. The ring is destroyed only
	// after the done line is on the wire — a crash in between re-runs
	// the tail, which is idempotent (same trace, same result).
	reports := sk.finish()
	st := sk.RAStats()
	res := SessionResult{
		Session: sess.id, Events: sk.Events(), RaceCount: len(reports),
		Races:  make([]RaceJSON, 0, len(reports)),
		RALive: st.Live, RAPeak: st.Peak, RACollected: st.Collected,
		Resumed: sess.resumed,
	}
	for _, r := range reports {
		res.Races = append(res.Races, toRaceJSON(r))
	}
	events = res.Events
	if _, err := fmt.Fprintf(conn, "done %s\n", res.JSON()); err != nil {
		// The client never saw the result; it will resume and re-run the
		// tail. State stays recoverable.
		s.fail(sess, nil, nil, err)
		return
	}
	if ring != nil {
		ring.destroy()
	}
	s.mu.Lock()
	sess.completed = true
	sess.races = len(reports)
	s.mu.Unlock()
	s.c.completed.Add(1)
	s.logf("session %s: completed (%d events, %d races, resumed %d times)", sess.id, res.Events, res.RaceCount, sess.resumed)
}

// fail ends a session abnormally: classify, count, tear down the sink
// WITHOUT checkpointing (the live state past the last checkpoint is
// unproven), best-effort error reply.
func (s *Server) fail(sess *session, conn net.Conn, sk sink, err error) {
	s.c.ingestErrs.Add(1)
	switch {
	case errors.Is(err, ErrChunkCorrupt):
		s.c.crcErrs.Add(1)
	case errors.Is(err, ErrTruncated):
		s.c.truncated.Add(1)
	default:
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			s.c.timeouts.Add(1)
		}
	}
	if sk != nil {
		sk.abort()
	}
	s.logf("session %s: ingest failed: %v", sess.id, err)
	if conn != nil {
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		fmt.Fprintf(conn, "err %v\n", err)
	}
}

// sinkSource is what newSink needs to size a fresh or recovered sink.
type sinkSource interface {
	build(cfg Config) sink
}

type snapSource struct{ snap *monitor.Snapshot }

func (ss snapSource) build(cfg Config) sink {
	if cfg.Shards > 1 {
		return pipelineSink{ss.snap.Pipeline(monitor.PipelineConfig{Shards: cfg.Shards})}
	}
	return monitorSink{ss.snap.Monitor()}
}

type headerSource struct{ hdr monitor.Header }

func (hs headerSource) build(cfg Config) sink {
	if cfg.Shards > 1 {
		return pipelineSink{monitor.NewPipeline(hs.hdr.Threads, hs.hdr.Decls, monitor.PipelineConfig{Shards: cfg.Shards})}
	}
	return monitorSink{monitor.New(hs.hdr.Threads, hs.hdr.Decls)}
}

func (s *Server) newSink(src sinkSource) sink { return src.build(s.cfg) }

func toRaceJSON(r race.Report) RaceJSON {
	return RaceJSON{
		Loc: string(r.Loc), ThreadI: r.ThreadI, ThreadJ: r.ThreadJ,
		OpI: opName(r.WriteI), OpJ: opName(r.WriteJ),
	}
}

func opName(w bool) string {
	if w {
		return "write"
	}
	return "read"
}
