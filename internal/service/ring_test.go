package service

import (
	"os"
	"path/filepath"
	"testing"

	"localdrf/internal/faultinject"
	"localdrf/internal/monitor"
	"localdrf/internal/prog"
)

// testMonitor builds a tiny monitor advanced by n events, so ring
// entries with different recovery points are distinguishable by their
// restored event count.
func testMonitor(n int) *monitor.Monitor {
	m := monitor.New(2, []monitor.LocDecl{{Name: "x", Kind: prog.NonAtomic}})
	for i := 0; i < n; i++ {
		m.Step(monitor.Event{Thread: int32(i % 2), Loc: 0, Kind: monitor.WriteNA})
	}
	return m
}

// writeGen writes one ring generation capturing a monitor at n events.
func writeGen(t *testing.T, r *ckRing, n int) {
	t.Helper()
	if err := r.write(testMonitor(n).Snapshot); err != nil {
		t.Fatalf("ring write at %d events: %v", n, err)
	}
}

// recoveredEvents decodes the recovery result's event count.
func recoveredEvents(t *testing.T, snap *monitor.Snapshot) uint64 {
	t.Helper()
	if snap == nil {
		t.Fatal("recovery returned no snapshot")
	}
	return snap.Monitor().Events()
}

func newTestRing(t *testing.T, size int) *ckRing {
	return newRing(faultinject.OS(), filepath.Join(t.TempDir(), "sess"), size)
}

// TestRingEmpty: an empty (or absent) ring recovers to "no state" —
// the session restarts from event 0, which is sound because the client
// replays its trace from byte 0.
func TestRingEmpty(t *testing.T) {
	r := newTestRing(t, 3)
	snap, skipped, err := r.recover()
	if snap != nil || skipped != 0 || err != nil {
		t.Fatalf("empty ring: recover() = (%v, %d, %v), want (nil, 0, nil)", snap, skipped, err)
	}
	// A ring whose directory exists but holds no entries behaves the same.
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if snap, skipped, err = r.recover(); snap != nil || skipped != 0 || err != nil {
		t.Fatalf("empty dir: recover() = (%v, %d, %v), want (nil, 0, nil)", snap, skipped, err)
	}
}

// TestRingAllCorrupt: when every generation is damaged, recovery
// reports an error (the caller logs it and restarts from event 0) and
// positions the next write PAST the damaged generations so they are
// never silently overwritten-in-place.
func TestRingAllCorrupt(t *testing.T) {
	r := newTestRing(t, 3)
	writeGen(t, r, 100)
	writeGen(t, r, 200)
	// Damage both entries: one truncated to a prefix, one bit-flipped.
	for i, name := range []string{ckName(0), ckName(1)} {
		path := filepath.Join(r.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			data = data[:len(data)/3]
		} else {
			data[len(data)/2] ^= 0xFF
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r2 := newRing(faultinject.OS(), r.dir, 3)
	snap, skipped, err := r2.recover()
	if err == nil || snap != nil {
		t.Fatalf("all-corrupt ring: recover() = (%v, %v), want error", snap, err)
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2", skipped)
	}
	// The next write must open generation 2, not clobber the evidence.
	writeGen(t, r2, 300)
	if _, err := os.Stat(filepath.Join(r.dir, ckName(2))); err != nil {
		t.Fatalf("post-recovery write did not use the next generation: %v", err)
	}
}

// TestRingNewestTruncated: a crash mid-checkpoint leaves the newest
// entry truncated; recovery must fall back to the previous generation.
// (The LDCK codec validates every section, so the torn file fails
// closed rather than restoring partial state.)
func TestRingNewestTruncated(t *testing.T) {
	r := newTestRing(t, 3)
	writeGen(t, r, 100)
	writeGen(t, r, 250)
	newest := filepath.Join(r.dir, ckName(1))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the state sections, past the magic/header, emulating a
	// write torn by power loss that still renamed (e.g. fsync lied).
	if err := os.WriteFile(newest, data[:2*len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := newRing(faultinject.OS(), r.dir, 3)
	snap, skipped, err := r2.recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if got := recoveredEvents(t, snap); got != 100 {
		t.Fatalf("recovered at %d events, want 100 (previous generation)", got)
	}
}

// TestRingSkipsTwoGenerations: recovery walks back as far as it must —
// here the two newest entries are damaged and the oldest restores.
func TestRingSkipsTwoGenerations(t *testing.T) {
	r := newTestRing(t, 3)
	writeGen(t, r, 50)
	writeGen(t, r, 150)
	writeGen(t, r, 300)
	for _, name := range []string{ckName(1), ckName(2)} {
		path := filepath.Join(r.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x01 // damage the tail (checksummed state)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r2 := newRing(faultinject.OS(), r.dir, 3)
	snap, skipped, err := r2.recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2", skipped)
	}
	if got := recoveredEvents(t, snap); got != 50 {
		t.Fatalf("recovered at %d events, want 50 (two generations back)", got)
	}
}

// TestRingPruneAndStrays: the ring keeps only the newest K generations,
// ignores stray temp files (a crash between create and rename), and a
// failed write leaves the previous generations untouched.
func TestRingPruneAndStrays(t *testing.T) {
	r := newTestRing(t, 2)
	for i, n := range []int{10, 20, 30, 40} {
		writeGen(t, r, n)
		_ = i
	}
	gens := r.generations()
	if len(gens) != 2 || gens[0] != 2 || gens[1] != 3 {
		t.Fatalf("after prune: generations = %v, want [2 3]", gens)
	}
	// A stray temp file must not confuse recovery.
	if err := os.WriteFile(filepath.Join(r.dir, ".tmp-00000000000000ff"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := newRing(faultinject.OS(), r.dir, 2)
	snap, skipped, err := r2.recover()
	if err != nil || skipped != 0 {
		t.Fatalf("recover with stray temp: (skipped=%d, err=%v)", skipped, err)
	}
	if got := recoveredEvents(t, snap); got != 40 {
		t.Fatalf("recovered at %d events, want 40", got)
	}

	// Disk-full mid-write: the ring is unchanged and still recovers.
	ffs := faultinject.NewFS(faultinject.OS(), faultinject.FSPlan{WriteBudget: 16})
	r3 := newRing(ffs, r.dir, 2)
	if _, _, err := r3.recover(); err != nil {
		t.Fatal(err)
	}
	if err := r3.write(testMonitor(50).Snapshot); err == nil {
		t.Fatal("write through a full disk succeeded")
	}
	r4 := newRing(faultinject.OS(), r.dir, 2)
	snap, skipped, err = r4.recover()
	if err != nil || skipped != 0 {
		t.Fatalf("recover after failed write: (skipped=%d, err=%v)", skipped, err)
	}
	if got := recoveredEvents(t, snap); got != 40 {
		t.Fatalf("failed write damaged the ring: recovered at %d events, want 40", got)
	}
}
