package litmus

// Release-acquire litmus tests for the §10 extension. The verdicts
// encode what distinguishes RA from the paper's SC atomics: message
// passing still works (release/acquire synchronisation), but store
// buffering and IRIW relaxations become visible, and Dekker-style mutual
// exclusion is lost — exactly the C++ memory_order_acq_rel/-acquire/
// -release behaviour the paper cites as "strong enough to describe many
// parallel programming idioms, yet weak enough to be relatively cheaply
// implementable".

import (
	"localdrf/internal/prog"
)

// raSuite returns the release-acquire extension tests.
func raSuite() []Test {
	return []Test{
		mpRA(),
		sbRA(),
		iriwRA(),
		corrRA(),
	}
}

func mpRA() Test {
	return Test{
		Name:        "MP+ra",
		Description: "§10 extension: message passing through a release-acquire flag still works",
		Prog: prog.NewProgram("MP+ra").
			Vars("x").
			RAs("F").
			Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
			Thread("P1").Load("r0", "F").Load("r1", "x").Done().
			MustBuild(),
		Checks: []Check{
			{Name: "r0=1 ∧ r1=0", Pred: and(reg(1, "r0", 1), reg(1, "r1", 0)), Want: Forbidden,
				Note: "the acquire read joins the release write's frontier"},
			{Name: "r0=0 ∧ r1=0", Pred: and(reg(1, "r0", 0), reg(1, "r1", 0)), Want: Allowed},
		},
	}
}

func sbRA() Test {
	return Test{
		Name:        "SB+ra",
		Description: "§10 extension: store buffering is visible on RA locations (unlike SC atomics)",
		Prog: prog.NewProgram("SB+ra").
			RAs("X", "Y").
			Thread("P0").StoreI("X", 1).Load("r0", "Y").Done().
			Thread("P1").StoreI("Y", 1).Load("r1", "X").Done().
			MustBuild(),
		Checks: []Check{
			{Name: "r0=0 ∧ r1=0", Pred: and(reg(0, "r0", 0), reg(1, "r1", 0)), Want: Allowed,
				Note: "RA gives up Dekker-style exclusion; SB+at forbids this"},
		},
	}
}

func iriwRA() Test {
	return Test{
		Name:        "IRIW+ra",
		Description: "§10 extension: RA readers may disagree on the order of independent writes",
		Prog: prog.NewProgram("IRIW+ra").
			RAs("X", "Y").
			Thread("P0").StoreI("X", 1).Done().
			Thread("P1").StoreI("Y", 1).Done().
			Thread("P2").Load("r0", "X").Load("r1", "Y").Done().
			Thread("P3").Load("r2", "Y").Load("r3", "X").Done().
			MustBuild(),
		Checks: []Check{
			{Name: "r0=1 ∧ r1=0 ∧ r2=1 ∧ r3=0",
				Pred: and(reg(2, "r0", 1), reg(2, "r1", 0), reg(3, "r2", 1), reg(3, "r3", 0)),
				Want: Allowed, Note: "RA is not multi-copy atomic; IRIW+at forbids this"},
		},
	}
}

func corrRA() Test {
	return Test{
		Name:        "CoRR+ra",
		Description: "§10 extension: per-location coherence holds for RA (same-thread writes)",
		Prog: prog.NewProgram("CoRR+ra").
			RAs("X").
			Thread("P0").StoreI("X", 1).StoreI("X", 2).Done().
			Thread("P1").Load("r0", "X").Load("r1", "X").Done().
			MustBuild(),
		Checks: []Check{
			{Name: "r0=2 ∧ r1=1", Pred: and(reg(1, "r0", 2), reg(1, "r1", 1)), Want: Forbidden,
				Note: "unlike racy nonatomics (CoRR), RA reads advance the reader's frontier"},
			{Name: "r0=1 ∧ r1=2", Pred: and(reg(1, "r0", 1), reg(1, "r1", 2)), Want: Allowed},
		},
	}
}
