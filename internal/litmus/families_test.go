package litmus

import (
	"fmt"
	"testing"
)

// TestFamilyShapes: the generators scale the thread count as documented
// (IRIW: 2 writers + n readers; WRC: writer + (n-1) relays + reader).
func TestFamilyShapes(t *testing.T) {
	for n := 2; n <= 4; n++ {
		if got := len(IRIWFamily(n).Prog.Threads); got != n+2 {
			t.Errorf("IRIWFamily(%d): %d threads, want %d", n, got, n+2)
		}
		if got := len(WRCFamily(n).Prog.Threads); got != n+1 {
			t.Errorf("WRCFamily(%d): %d threads, want %d", n, got, n+1)
		}
	}
}

// TestFamiliesRegistered: the N ∈ {2,3,4} instances are in the corpus, so
// every suite sweep (engine equivalence, compilation soundness, monitor
// differential) exercises them.
func TestFamiliesRegistered(t *testing.T) {
	for n := 2; n <= 4; n++ {
		for _, name := range []string{
			fmt.Sprintf("IRIW+at+N%d", n),
			fmt.Sprintf("WRC+N%d", n),
		} {
			if _, ok := Get(name); !ok {
				t.Errorf("%s not registered in the corpus", name)
			}
		}
	}
}

// TestFamilyVerdicts verifies every family check against the operational
// model (also covered by the corpus-wide VerifyAll, but pinned here so a
// generator regression is reported against the family directly).
func TestFamilyVerdicts(t *testing.T) {
	for n := 2; n <= 4; n++ {
		for _, tc := range []Test{IRIWFamily(n), WRCFamily(n)} {
			if err := Verify(tc); err != nil {
				t.Errorf("N=%d: %v", n, err)
			}
		}
	}
}
