package litmus

// Parameterised litmus families: N-thread generalisations of IRIW and
// WRC. The classic shapes fix the thread count; these generators scale it,
// so corpus sweeps exercise programs wider than any hand-written test —
// the workloads the parallel exploration engine exists for (wider
// programs have factorially more interleavings) and extra coverage for
// the streaming monitor's differential tests.

import (
	"fmt"

	"localdrf/internal/prog"
)

// IRIWFamily is independent-reads-of-independent-writes with n reader
// threads (n ≥ 2): two writers store to atomic X and Y; even readers load
// X then Y, odd readers load Y then X. Under SC atomics all readers must
// agree on the write order, so the first even and first odd reader can
// never observe the two writes in opposite orders. n = 2 is the classic
// 4-thread IRIW.
func IRIWFamily(n int) Test {
	if n < 2 {
		panic(fmt.Sprintf("litmus: IRIWFamily needs ≥ 2 readers, got %d", n))
	}
	b := prog.NewProgram(fmt.Sprintf("IRIW+at+N%d", n)).
		Atomics("X", "Y").
		Thread("W0").StoreI("X", 1).Done().
		Thread("W1").StoreI("Y", 1).Done()
	for i := 0; i < n; i++ {
		first, second := prog.Loc("X"), prog.Loc("Y")
		if i%2 == 1 {
			first, second = second, first
		}
		b = b.Thread(fmt.Sprintf("R%d", i)).
			Load(prog.Reg(fmt.Sprintf("r%da", i)), first).
			Load(prog.Reg(fmt.Sprintf("r%db", i)), second).
			Done()
	}
	// Readers 0 (X then Y) and 1 (Y then X) disagreeing on the order:
	// reader 0 saw X=1, Y=0 while reader 1 saw Y=1, X=0.
	disagree := and(
		reg(2, "r0a", 1), reg(2, "r0b", 0),
		reg(3, "r1a", 1), reg(3, "r1b", 0),
	)
	return Test{
		Name: fmt.Sprintf("IRIW+at+N%d", n),
		Description: fmt.Sprintf(
			"independent reads of independent writes, %d readers: all readers agree on the order", n),
		Prog: b.MustBuild(),
		Checks: []Check{
			{Name: "readers 0/1 disagree", Pred: disagree, Want: Forbidden,
				Note: "SC atomics are multi-copy atomic however many readers watch"},
		},
	}
}

// WRCFamily is write-to-read causality with a relay chain of n hops
// (n ≥ 2): T0 stores nonatomic x; relay T1 reads x and, if it saw the
// write, raises atomic F1; relay Ti (2 ≤ i < n) forwards F(i-1) to Fi;
// the final thread reads F(n-1) and then x. As in the classic 3-thread
// WRC (n = 2), Read-NA does not advance the reader's frontier, so the
// chain never publishes x no matter how many synchronising hops it has —
// the final racy read may still be stale.
func WRCFamily(n int) Test {
	if n < 2 {
		panic(fmt.Sprintf("litmus: WRCFamily needs ≥ 2 hops, got %d", n))
	}
	b := prog.NewProgram(fmt.Sprintf("WRC+N%d", n)).Vars("x")
	var flags []prog.Loc
	for i := 1; i < n; i++ {
		flags = append(flags, prog.Loc(fmt.Sprintf("F%d", i)))
	}
	b = b.Atomics(flags...)
	b = b.Thread("P0").StoreI("x", 1).Done()
	// First relay: observes the nonatomic write, raises F1.
	b = b.Thread("P1").
		Load("r1", "x").
		JmpZ("r1", "skip1").
		StoreI(flags[0], 1).
		Label("skip1").
		Done()
	// Middle relays: forward F(i-1) to Fi.
	for i := 2; i < n; i++ {
		b = b.Thread(fmt.Sprintf("P%d", i)).
			Load(prog.Reg(fmt.Sprintf("r%d", i)), flags[i-2]).
			JmpZ(prog.Reg(fmt.Sprintf("r%d", i)), fmt.Sprintf("skip%d", i)).
			StoreI(flags[i-1], 1).
			Label(fmt.Sprintf("skip%d", i)).
			Done()
	}
	// Final reader: sees the last flag, then reads x.
	last := n
	b = b.Thread(fmt.Sprintf("P%d", last)).
		Load("rf", flags[len(flags)-1]).
		JmpZ("rf", "skipL").
		Load("rx", "x").
		Label("skipL").
		Done()
	return Test{
		Name: fmt.Sprintf("WRC+N%d", n),
		Description: fmt.Sprintf(
			"write-to-read causality through %d hops with a racy first leg: reads do not publish", n),
		Prog: b.MustBuild(),
		Checks: []Check{
			{Name: "rf=1 ∧ rx=0", Pred: and(reg(last, "rf", 1), reg(last, "rx", 0)), Want: Allowed,
				Note: "Read-NA leaves the frontier unchanged, so no chain length publishes x"},
			{Name: "rf=1 ∧ rx=1", Pred: and(reg(last, "rf", 1), reg(last, "rx", 1)), Want: Allowed},
		},
	}
}

// familySuite returns the registered family instances (N ∈ {2, 3, 4}).
func familySuite() []Test {
	var out []Test
	for _, n := range []int{2, 3, 4} {
		out = append(out, IRIWFamily(n), WRCFamily(n))
	}
	return out
}
