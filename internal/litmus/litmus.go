// Package litmus catalogues the paper's example programs and the classic
// litmus shapes, each with named outcome predicates and the verdict the
// paper's memory model assigns them. The suite drives cmd/litmus,
// cmd/experiments and the regression tests; the §2 examples additionally
// carry "miscompiled" variants that reproduce the C++/Java behaviours
// mechanically (via transformations that package opt rejects).
package litmus

import (
	"fmt"

	"localdrf/internal/engine"
	"localdrf/internal/explore"
	"localdrf/internal/prog"
)

// Verdict is the model's answer for one outcome predicate.
type Verdict int

const (
	// Forbidden: no execution may satisfy the predicate.
	Forbidden Verdict = iota
	// Allowed: some execution satisfies the predicate.
	Allowed
)

func (v Verdict) String() string {
	if v == Allowed {
		return "allowed"
	}
	return "forbidden"
}

// Check pairs an outcome predicate with the verdict under the paper's
// model (evaluated on the operational semantics).
type Check struct {
	Name string
	Pred func(explore.Outcome) bool
	Want Verdict
	// Note records which other models behave differently (informational).
	Note string
}

// Test is one litmus test.
type Test struct {
	Name        string
	Description string
	Prog        *prog.Program
	Checks      []Check
}

// Verify evaluates every check of a test against the operational model.
func Verify(t Test) error {
	return verify(t, explore.Options{})
}

func verify(t Test, opt explore.Options) error {
	set, err := explore.Outcomes(t.Prog, opt)
	if err != nil {
		return fmt.Errorf("litmus %s: %w", t.Name, err)
	}
	for _, c := range t.Checks {
		got := Forbidden
		if set.Exists(c.Pred) {
			got = Allowed
		}
		if got != c.Want {
			return fmt.Errorf("litmus %s: %s is %v, want %v (outcomes: %v)",
				t.Name, c.Name, got, c.Want, set.Keys())
		}
	}
	return nil
}

// VerifyAll verifies every catalogued test, fanning the corpus out across
// parallel workers on the engine's task runner (parallelism 0 means
// GOMAXPROCS). The first failure in suite order is returned. Each test's
// own exploration runs single-threaded — the corpus fan-out already
// saturates the cores, and nesting engine workers per test would
// oversubscribe them.
func VerifyAll(parallelism int) error {
	suite := Suite()
	return engine.ForEach(parallelism, len(suite), func(_, i int) error {
		return verify(suite[i], explore.Options{Parallelism: 1})
	})
}

// Get returns a test by name.
func Get(name string) (Test, bool) {
	for _, t := range Suite() {
		if t.Name == name {
			return t, true
		}
	}
	return Test{}, false
}

// Suite returns the full catalogue, including the §10 release-acquire
// extension tests and the N-thread IRIW/WRC family instances
// (N ∈ {2, 3, 4}; see families.go).
func Suite() []Test {
	base := []Test{
		storeBuffering(),
		storeBufferingAtomic(),
		messagePassing(),
		messagePassingRacy(),
		loadBuffering(),
		loadBufferingCtrl(),
		coherenceRacy(),
		iriw(),
		twoPlusTwoW(),
		example1(),
		example1Miscompiled(),
		example2(),
		example2Miscompiled(),
		example3(),
		section92(),
		wrc(),
		sShape(),
	}
	base = append(base, familySuite()...)
	return append(base, raSuite()...)
}

// wrc is write-to-read causality with a nonatomic first leg. A subtle
// consequence of Read-NA leaving the frontier unchanged (fig. 1c): a
// thread that merely *read* x does not publish x through a subsequent
// atomic write, so the chain T0 -x→ T1 -F→ T2 does not transfer
// visibility of x. Both semantics agree (the nonatomic rf edge is not in
// hb), and the racy read is exactly what local DRF flags.
func wrc() Test {
	return Test{
		Name:        "WRC",
		Description: "write-to-read causality with a racy first leg: reads do not publish",
		Prog: prog.NewProgram("WRC").
			Vars("x").
			Atomics("F").
			Thread("P0").StoreI("x", 1).Done().
			Thread("P1").
			Load("r1", "x").
			JmpZ("r1", "skip1").
			StoreI("F", 1).
			Label("skip1").
			Done().
			Thread("P2").
			Load("r2", "F").
			JmpZ("r2", "skip2").
			Load("r3", "x").
			Label("skip2").
			Done().
			MustBuild(),
		Checks: []Check{
			{Name: "r2=1 ∧ r3=0", Pred: and(reg(2, "r2", 1), reg(2, "r3", 0)), Want: Allowed,
				Note: "Read-NA does not advance the frontier, so P1's read of x is not released through F"},
		},
	}
}

// sShape is the classic S: after synchronising, a write to the raced
// location must take a later timestamp than the write it saw, so the
// final value is fixed.
func sShape() Test {
	return Test{
		Name:        "S",
		Description: "post-synchronisation write ordering: the consumer's write lands after the producer's",
		Prog: prog.NewProgram("S").
			Vars("x").
			Atomics("F").
			Thread("P0").StoreI("x", 2).StoreI("F", 1).Done().
			Thread("P1").
			Load("rF", "F").
			JmpZ("rF", "skip").
			StoreI("x", 1).
			Label("skip").
			Done().
			MustBuild(),
		Checks: []Check{
			{Name: "rF=1 ∧ x=2 finally", Pred: func(o explore.Outcome) bool {
				return o.Reg(1, "rF") == 1 && o.Mem["x"] == 2
			}, Want: Forbidden,
				Note: "Write-NA: the synchronised writer's timestamp must exceed its frontier"},
			{Name: "rF=0 ∧ x=1 finally", Pred: func(o explore.Outcome) bool {
				return o.Reg(1, "rF") == 0 && o.Mem["x"] == 1
			}, Want: Forbidden,
				Note: "the guarded write only executes after the flag was seen"},
		},
	}
}

func reg(t int, r prog.Reg, v prog.Val) func(explore.Outcome) bool {
	return func(o explore.Outcome) bool { return o.Reg(t, r) == v }
}

func and(ps ...func(explore.Outcome) bool) func(explore.Outcome) bool {
	return func(o explore.Outcome) bool {
		for _, p := range ps {
			if !p(o) {
				return false
			}
		}
		return true
	}
}

func storeBuffering() Test {
	return Test{
		Name:        "SB",
		Description: "store buffering on nonatomics: the TSO relaxation is allowed (nonatomics are free on x86)",
		Prog: prog.NewProgram("SB").
			Vars("x", "y").
			Thread("P0").StoreI("x", 1).Load("r0", "y").Done().
			Thread("P1").StoreI("y", 1).Load("r1", "x").Done().
			MustBuild(),
		Checks: []Check{
			{Name: "r0=0 ∧ r1=0", Pred: and(reg(0, "r0", 0), reg(1, "r1", 0)), Want: Allowed,
				Note: "the racy reads may both be stale"},
		},
	}
}

func storeBufferingAtomic() Test {
	return Test{
		Name:        "SB+at",
		Description: "store buffering on atomics: forbidden (atomics are sequentially consistent)",
		Prog: prog.NewProgram("SB+at").
			Atomics("X", "Y").
			Thread("P0").StoreI("X", 1).Load("r0", "Y").Done().
			Thread("P1").StoreI("Y", 1).Load("r1", "X").Done().
			MustBuild(),
		Checks: []Check{
			{Name: "r0=0 ∧ r1=0", Pred: and(reg(0, "r0", 0), reg(1, "r1", 0)), Want: Forbidden,
				Note: "this is why table 1 compiles atomic writes as xchg"},
		},
	}
}

func messagePassing() Test {
	return Test{
		Name:        "MP",
		Description: "message passing through an atomic flag: seeing the flag implies seeing the data",
		Prog: prog.NewProgram("MP").
			Vars("x").
			Atomics("F").
			Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
			Thread("P1").Load("r0", "F").Load("r1", "x").Done().
			MustBuild(),
		Checks: []Check{
			{Name: "r0=1 ∧ r1=0", Pred: and(reg(1, "r0", 1), reg(1, "r1", 0)), Want: Forbidden,
				Note: "frontier transfer through Write-AT/Read-AT"},
			{Name: "r0=0 ∧ r1=1", Pred: and(reg(1, "r0", 0), reg(1, "r1", 1)), Want: Allowed},
		},
	}
}

func messagePassingRacy() Test {
	return Test{
		Name:        "MP+na",
		Description: "message passing through a nonatomic flag: racy, the violation is observable",
		Prog: prog.NewProgram("MP+na").
			Vars("x", "f").
			Thread("P0").StoreI("x", 1).StoreI("f", 1).Done().
			Thread("P1").Load("r0", "f").Load("r1", "x").Done().
			MustBuild(),
		Checks: []Check{
			{Name: "r0=1 ∧ r1=0", Pred: and(reg(1, "r0", 1), reg(1, "r1", 0)), Want: Allowed,
				Note: "no synchronisation, the data race is unbounded"},
		},
	}
}

func loadBuffering() Test {
	return Test{
		Name:        "LB",
		Description: "load buffering (§9.1): forbidden — reads never see future writes",
		Prog: prog.NewProgram("LB").
			Vars("x", "y").
			Thread("P0").Load("r0", "x").StoreI("y", 1).Done().
			Thread("P1").Load("r1", "y").StoreI("x", 1).Done().
			MustBuild(),
		Checks: []Check{
			{Name: "r0=1 ∧ r1=1", Pred: and(reg(0, "r0", 1), reg(1, "r1", 1)), Want: Forbidden,
				Note: "allowed by ARMv8 hardware without BAL/FBS; banning it is the price of local DRF"},
		},
	}
}

func loadBufferingCtrl() Test {
	return Test{
		Name:        "LB+ctrl",
		Description: "load buffering with a control dependency: the out-of-thin-air shape (§9.1)",
		Prog: prog.NewProgram("LB+ctrl").
			Vars("x", "y").
			Thread("P0").
			Load("r0", "x").
			JmpZ("r0", "s0").
			StoreI("y", 1).
			Label("s0").
			Done().
			Thread("P1").
			Load("r1", "y").
			JmpZ("r1", "s1").
			StoreI("x", 1).
			Label("s1").
			Done().
			MustBuild(),
		Checks: []Check{
			{Name: "r0=1 ∧ r1=1", Pred: and(reg(0, "r0", 1), reg(1, "r1", 1)), Want: Forbidden,
				Note: "out-of-thin-air; forbidden even by hardware"},
		},
	}
}

func coherenceRacy() Test {
	return Test{
		Name:        "CoRR",
		Description: "weak coherence: racing reads may observe writes in different orders (§9.2)",
		Prog: prog.NewProgram("CoRR").
			Vars("x").
			Thread("P0").StoreI("x", 1).StoreI("x", 2).Done().
			Thread("P1").Load("r0", "x").Load("r1", "x").Done().
			MustBuild(),
		Checks: []Check{
			{Name: "r0=2 ∧ r1=1", Pred: and(reg(1, "r0", 2), reg(1, "r1", 1)), Want: Allowed,
				Note: "C++ relaxed atomics forbid this; allowing it is what keeps CSE valid"},
		},
	}
}

func iriw() Test {
	return Test{
		Name:        "IRIW+at",
		Description: "independent reads of independent writes on atomics: readers agree on the order",
		Prog: prog.NewProgram("IRIW+at").
			Atomics("X", "Y").
			Thread("P0").StoreI("X", 1).Done().
			Thread("P1").StoreI("Y", 1).Done().
			Thread("P2").Load("r0", "X").Load("r1", "Y").Done().
			Thread("P3").Load("r2", "Y").Load("r3", "X").Done().
			MustBuild(),
		Checks: []Check{
			{Name: "r0=1 ∧ r1=0 ∧ r2=1 ∧ r3=0",
				Pred: and(reg(2, "r0", 1), reg(2, "r1", 0), reg(3, "r2", 1), reg(3, "r3", 0)),
				Want: Forbidden},
		},
	}
}

func twoPlusTwoW() Test {
	return Test{
		Name:        "2+2W",
		Description: "two threads writing both locations in opposite orders",
		Prog: prog.NewProgram("2+2W").
			Vars("x", "y").
			Thread("P0").StoreI("x", 1).StoreI("y", 2).Done().
			Thread("P1").StoreI("y", 1).StoreI("x", 2).Done().
			MustBuild(),
		Checks: []Check{
			{Name: "x=1 ∧ y=1", Pred: func(o explore.Outcome) bool { return o.Mem["x"] == 1 && o.Mem["y"] == 1 },
				Want: Allowed, Note: "each thread's second write may take an earlier timestamp"},
		},
	}
}

// example1 is §2.1: b = a + 10 with a data race on the unrelated c.
// Bounding races in space: the race on c cannot corrupt b.
func example1() Test {
	return Test{
		Name:        "Example1",
		Description: "§2.1 bounding races in space: b = a+10 is immune to the race on c",
		Prog: prog.NewProgram("Example1").
			Vars("a", "b", "c").
			Thread("P0").
			Load("ra", "a").
			Add("t", prog.R("ra"), prog.I(10)).
			StoreR("c", "t").
			Load("ra2", "a").
			Add("t2", prog.R("ra2"), prog.I(10)).
			StoreR("b", "t2").
			Done().
			Thread("P1").StoreI("c", 1).Done().
			MustBuild(),
		Checks: []Check{
			{Name: "b ≠ a+10 (b≠10)", Pred: func(o explore.Outcome) bool { return o.Mem["b"] != 10 },
				Want: Forbidden, Note: "possible in C++ via rematerialisation from c"},
		},
	}
}

// example1Miscompiled applies the C++ rematerialisation by hand: the
// second read of a is replaced by a read of c (the compiler "knows" c
// holds a+10). The transformation is invalid in this model — and here is
// the outcome that proves it.
func example1Miscompiled() Test {
	return Test{
		Name:        "Example1+miscompiled",
		Description: "§2.1 the C++ rematerialisation: b reloaded from c, exposing the race",
		Prog: prog.NewProgram("Example1+miscompiled").
			Vars("a", "b", "c").
			Thread("P0").
			Load("ra", "a").
			Add("t", prog.R("ra"), prog.I(10)).
			StoreR("c", "t").
			Load("tc", "c"). // rematerialised: t reloaded from c
			StoreR("b", "tc").
			Done().
			Thread("P1").StoreI("c", 1).Done().
			MustBuild(),
		Checks: []Check{
			{Name: "b ≠ a+10 (b≠10)", Pred: func(o explore.Outcome) bool { return o.Mem["b"] != 10 },
				Want: Allowed, Note: "the race on c now corrupts b: races unbounded in space"},
		},
	}
}

// example2 is §2.2: two reads of a after synchronising on a flag, with a
// racy write of a in the past. Bounding races in time (past).
func example2() Test {
	return Test{
		Name:        "Example2",
		Description: "§2.2 bounding races in time: after the flag, both reads of a agree",
		Prog: prog.NewProgram("Example2").
			Vars("a").
			Atomics("FLAG").
			Thread("P0").StoreI("a", 1).StoreI("FLAG", 1).Done().
			Thread("P1").
			StoreI("a", 2).
			Load("f", "FLAG").
			Load("rb", "a").
			Load("rc", "a").
			Done().
			MustBuild(),
		Checks: []Check{
			{Name: "f=1 ∧ rb≠rc", Pred: func(o explore.Outcome) bool {
				return o.Reg(1, "f") == 1 && o.Reg(1, "rb") != o.Reg(1, "rc")
			}, Want: Forbidden, Note: "Java allows rb=1, rc=2 here (appendix D)"},
			{Name: "f=0 ∧ rb≠rc", Pred: func(o explore.Outcome) bool {
				return o.Reg(1, "f") == 0 && o.Reg(1, "rb") != o.Reg(1, "rc")
			}, Want: Allowed, Note: "without the synchronisation the race is still in progress"},
		},
	}
}

// example2Miscompiled forwards a=2 into the first read — the HotSpot
// optimisation that breaks Java. Moving the read of a above the atomic
// read of FLAG relaxes poat−, so package opt rejects the derivation; this
// variant shows what the outcome would be.
func example2Miscompiled() Test {
	return Test{
		Name:        "Example2+miscompiled",
		Description: "§2.2 the Java constant-forwarding: rb fixed to 2, races now unbounded in time",
		Prog: prog.NewProgram("Example2+miscompiled").
			Vars("a").
			Atomics("FLAG").
			Thread("P0").StoreI("a", 1).StoreI("FLAG", 1).Done().
			Thread("P1").
			StoreI("a", 2).
			Load("f", "FLAG").
			Mov("rb", prog.I(2)). // forwarded from a = 2 across the flag
			Load("rc", "a").
			Done().
			MustBuild(),
		Checks: []Check{
			{Name: "f=1 ∧ rb≠rc", Pred: func(o explore.Outcome) bool {
				return o.Reg(1, "f") == 1 && o.Reg(1, "rb") != o.Reg(1, "rc")
			}, Want: Allowed, Note: "the reads disagree although the race is in the past"},
		},
	}
}

// example3 is §2.3: a freshly initialised location read back before
// publication, with a racing write in the future. Bounding races in time
// (future): banning load buffering is exactly what protects it.
func example3() Test {
	return Test{
		Name:        "Example3",
		Description: "§2.2 bounding future races: r = cx reads 42 despite the later race",
		Prog: prog.NewProgram("Example3").
			Vars("cx", "g").
			Thread("P0").
			StoreI("cx", 42).
			Load("r", "cx").
			StoreI("g", 1). // publish after the read
			Done().
			Thread("P1").
			Load("rg", "g").
			JmpZ("rg", "skip").
			StoreI("cx", 7).
			Label("skip").
			Done().
			MustBuild(),
		Checks: []Check{
			{Name: "r ≠ 42", Pred: func(o explore.Outcome) bool { return o.Reg(0, "r") != 42 },
				Want: Forbidden, Note: "Java/ARM allow r=7 by reordering the read after the publish"},
		},
	}
}

// section92 is the §9.2 comparison with C++ SC atomics: if A ends at 2,
// the read of b happened before b = 1.
func section92() Test {
	return Test{
		Name:        "S9.2",
		Description: "§9.2 atomics stronger than C++ SC: A=2 afterwards implies x=0",
		Prog: prog.NewProgram("S9.2").
			Vars("b").
			Atomics("A").
			Thread("P0").Load("x", "b").StoreI("A", 1).Done().
			Thread("P1").StoreI("A", 2).StoreI("b", 1).Done().
			MustBuild(),
		Checks: []Check{
			{Name: "A=2 ∧ x=1", Pred: func(o explore.Outcome) bool {
				return o.Mem["A"] == 2 && o.Reg(0, "x") == 1
			}, Want: Forbidden, Note: "C++ permits this; it has no operational explanation"},
		},
	}
}
