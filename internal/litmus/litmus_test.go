package litmus

import (
	"testing"

	"localdrf/internal/axiomatic"
	"localdrf/internal/compile"
	"localdrf/internal/core"
	"localdrf/internal/explore"
	"localdrf/internal/hw/arm"
	"localdrf/internal/hw/x86"
	"localdrf/internal/race"
)

// Every catalogued verdict holds under the operational model.
func TestSuiteVerdicts(t *testing.T) {
	for _, tc := range Suite() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			if err := Verify(tc); err != nil {
				t.Error(err)
			}
		})
	}
}

// The axiomatic model agrees with every verdict too (thms. 15/16 at the
// suite level).
func TestSuiteVerdictsAxiomatic(t *testing.T) {
	for _, tc := range Suite() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			set, err := axiomatic.Outcomes(tc.Prog)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range tc.Checks {
				got := Forbidden
				if set.Exists(c.Pred) {
					got = Allowed
				}
				if got != c.Want {
					t.Errorf("%s: axiomatically %v, want %v", c.Name, got, c.Want)
				}
			}
		})
	}
}

// The sound compilation schemes preserve every Forbidden verdict on
// hardware (the Allowed ones need no preservation: soundness is about not
// adding behaviours).
func TestSuiteVerdictsOnHardware(t *testing.T) {
	if testing.Short() {
		t.Skip("hardware enumeration sweep skipped in -short mode")
	}
	for _, tc := range Suite() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			for _, s := range []compile.Scheme{compile.X86, compile.ARMBal, compile.ARMFbs} {
				consistent := arm.Consistent
				if !s.IsARM() {
					consistent = x86.Consistent
				}
				hp, err := compile.Lower(tc.Prog, s)
				if err != nil {
					t.Fatal(err)
				}
				set, err := compile.Outcomes(hp, consistent)
				if err != nil {
					t.Fatal(err)
				}
				for _, c := range tc.Checks {
					if c.Want != Forbidden {
						continue
					}
					if set.Exists(c.Pred) {
						t.Errorf("%s: %s admits forbidden outcome %s", s, tc.Name, c.Name)
					}
				}
			}
		})
	}
}

// The named examples carry the race structure the paper describes.
func TestExampleRaceStructure(t *testing.T) {
	ex1, _ := Get("Example1")
	reports, err := race.FindRaces(ex1.Prog, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Loc != "c" {
			t.Errorf("Example1 races on %s, want only c", r.Loc)
		}
	}
	if len(reports) == 0 {
		t.Error("Example1 should race on c")
	}

	ex2, _ := Get("Example2")
	reports, err = race.FindRaces(ex2.Prog, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Loc != "a" {
			t.Errorf("Example2 races on %s, want only a", r.Loc)
		}
	}
}

// §5's local-DRF reasoning, executed: for each example, the initial state
// is L-stable for the fragment's locations and the local DRF theorem
// holds from it.
func TestExamplesLocalDRF(t *testing.T) {
	cases := []struct {
		test string
		L    race.LocSet
	}{
		{"Example1", race.NewLocSet("a", "b")},
		{"Example2", race.NewLocSet("a")}, // a joins L once the flag is read
		{"Example3", race.NewLocSet("cx", "g")},
	}
	for _, c := range cases {
		tc, ok := Get(c.test)
		if !ok {
			t.Fatalf("missing test %s", c.test)
		}
		m := core.NewMachine(tc.Prog)
		if err := race.CheckLocalDRFFrom(m, c.L, 6_000_000); err != nil {
			t.Errorf("%s: %v", c.test, err)
		}
	}
}

func TestGet(t *testing.T) {
	if _, ok := Get("MP"); !ok {
		t.Error("Get(MP) failed")
	}
	if _, ok := Get("nonexistent"); ok {
		t.Error("Get(nonexistent) succeeded")
	}
}

func TestSuiteOutcomesNonEmpty(t *testing.T) {
	for _, tc := range Suite() {
		set, err := explore.Outcomes(tc.Prog, explore.Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		if set.Len() == 0 {
			t.Errorf("%s: empty outcome set", tc.Name)
		}
	}
}
