package opt

// Certificate-strengthened reordering: the LDRF theorem as a compiler
// licence.
//
// The §7.1 constraints are what a compiler may assume about an
// *arbitrary* context. The paper's local DRF theorem strengthens that:
// on a set of locations that is race-free, every execution behaves
// sequentially-consistently with interference-free nonatomic accesses —
// so, restricted to certified locations, transformations valid under SC
// become valid under the full model. Concretely, poRW (a read must not
// move after a later write) exists to preserve the value a *racy* read
// can observe: delaying the read past the write opens a window for a
// concurrent conflicting write to change what it returns. When both
// locations are certified race-free, no such concurrent write exists —
// every remote conflicting access is happens-before ordered with the
// access, and swapping two adjacent *nonatomic* instructions creates no
// synchronisation edge that could reorder it — so the read returns the
// same value at either position and the swap is behaviour-preserving.
//
// The other constraints are NOT discharged by a certificate: poat− and
// po−at order against synchronisation operations (whose frontier
// effects are visible regardless of races), pocon is same-location
// dataflow, and register dataflow is ordinary dependence. CanSwapCert
// therefore relaxes exactly the ReasonPoRW refusal, nothing else.
//
// A Certificate typically comes from the static analysis
// (staticrace.Analyze; *staticrace.Report implements the interface), a
// closed-world whole-program proof. That matches the licence's shape:
// race-freedom of the locations in *this* program, not in an arbitrary
// context.

import (
	"fmt"

	"localdrf/internal/prog"
)

// Certificate answers whether a location is proven race-free in every
// execution of the program under transformation. *staticrace.Report
// satisfies it.
type Certificate interface {
	RaceFree(prog.Loc) bool
}

// CanSwapCert is CanSwap with a local-DRF side condition: a swap refused
// only by poRW is permitted when the certificate proves both accessed
// locations race-free. All other refusals stand.
func CanSwapCert(a, b prog.Instr, isAtomic func(prog.Loc) bool, cert Certificate) (bool, string) {
	ok, reason := CanSwap(a, b, isAtomic)
	if ok || reason != ReasonPoRW || cert == nil {
		return ok, reason
	}
	aa, ab := accessOf(a), accessOf(b)
	if aa.loc == ab.loc {
		// CanSwap tests poRW before pocon, so a same-location read/write
		// pair surfaces as poRW — but pocon is dataflow, which no
		// certificate discharges.
		return false, reasonPocon
	}
	if cert.RaceFree(aa.loc) && cert.RaceFree(ab.loc) {
		return true, ""
	}
	return false, reason
}

// DeriveCert is Derive with swap steps validated by CanSwapCert: the
// derivation may use read-past-write swaps on certified locations, and
// is otherwise identical (peepholes gain nothing from a certificate —
// they are same-location rewrites, already justified operationally).
func DeriveCert(f Fragment, steps []Step, isAtomic func(prog.Loc) bool, cert Certificate) (Fragment, error) {
	cur := f.Clone()
	for n, s := range steps {
		switch s.Kind {
		case "swap":
			if s.I < 0 || s.I+1 >= len(cur) {
				return nil, fmt.Errorf("opt: step %d: swap index %d out of range", n, s.I)
			}
			ok, reason := CanSwapCert(cur[s.I], cur[s.I+1], isAtomic, cert)
			if !ok {
				return nil, fmt.Errorf("opt: step %d: cannot swap [%s] and [%s]: %s",
					n, cur[s.I], cur[s.I+1], reason)
			}
			cur[s.I], cur[s.I+1] = cur[s.I+1], cur[s.I]
		case "peephole":
			next, err := ApplyPeephole(cur, s.P, s.I, isAtomic)
			if err != nil {
				return nil, fmt.Errorf("opt: step %d: %w", n, err)
			}
			cur = next
		default:
			return nil, fmt.Errorf("opt: step %d: unknown kind %q", n, s.Kind)
		}
	}
	return cur, nil
}
