// Package opt implements the compiler-optimisation story of §7.1 of the
// paper: which instruction reorderings the memory model permits, the
// peephole transformations on adjacent same-location operations
// (redundant load, store forwarding, dead store), sequentialisation, and
// composite optimisations (CSE, LICM, DSE, constant propagation) derived
// from those primitives. A semantic validity checker (outcome-set
// inclusion under package explore) provides the ground truth the
// syntactic rules are tested against.
//
// The §7.1 constraints: an optimisation may not shrink
//
//	poat−  — nothing moves before a prior atomic operation,
//	po−at  — nothing moves after a subsequent atomic write,
//	poRW   — a read never moves after a subsequent write,
//	pocon  — conflicting (same-location, one-write) operations keep order,
//
// and, being a compiler, it must also respect ordinary register dataflow.
package opt

import (
	"fmt"

	"localdrf/internal/explore"
	"localdrf/internal/prog"
)

// Fragment is a straight-line instruction sequence of a single thread.
// (Control flow is deliberately excluded: the paper's §7.1 reasoning is
// about straight-line reordering; LICM is treated on unrolled loops.)
type Fragment []prog.Instr

// Clone copies the fragment.
func (f Fragment) Clone() Fragment {
	out := make(Fragment, len(f))
	copy(out, f)
	return out
}

func (f Fragment) String() string {
	s := ""
	for i, in := range f {
		if i > 0 {
			s += "; "
		}
		s += in.String()
	}
	return s
}

// access describes the memory behaviour of an instruction.
type access struct {
	isMem   bool
	isWrite bool
	loc     prog.Loc
}

func accessOf(in prog.Instr) access {
	switch i := in.(type) {
	case prog.Load:
		return access{isMem: true, isWrite: false, loc: i.Src}
	case prog.Store:
		return access{isMem: true, isWrite: true, loc: i.Dst}
	default:
		return access{}
	}
}

// regsRead returns the registers an instruction reads.
func regsRead(in prog.Instr) []prog.Reg {
	var out []prog.Reg
	add := func(o prog.Operand) {
		if o.IsReg {
			out = append(out, o.Reg)
		}
	}
	switch i := in.(type) {
	case prog.Store:
		add(i.Src)
	case prog.Mov:
		add(i.Src)
	case prog.Add:
		add(i.A)
		add(i.B)
	case prog.Mul:
		add(i.A)
		add(i.B)
	case prog.CmpEq:
		add(i.A)
		add(i.B)
	}
	return out
}

// regWritten returns the register an instruction defines, if any.
func regWritten(in prog.Instr) (prog.Reg, bool) {
	switch i := in.(type) {
	case prog.Load:
		return i.Dst, true
	case prog.Mov:
		return i.Dst, true
	case prog.Add:
		return i.Dst, true
	case prog.Mul:
		return i.Dst, true
	case prog.CmpEq:
		return i.Dst, true
	}
	return "", false
}

// ReasonPoRW is the CanSwap refusal reason for the poRW constraint —
// the only §7.1 constraint a race-freedom certificate can discharge
// (see CanSwapCert in cert.go), so its identity is part of the API.
const ReasonPoRW = "poRW: read before write"

// reasonPocon is the pocon refusal; CanSwapCert re-checks it after
// discharging poRW (CanSwap tests poRW first, so a same-location
// read/write pair reports poRW, not pocon).
const reasonPocon = "pocon: conflicting operations"

// CanSwap reports whether adjacent instructions a; b may be reordered to
// b; a under the memory model (§7.1) and ordinary dataflow. The returned
// reason names the violated constraint when the swap is forbidden.
func CanSwap(a, b prog.Instr, isAtomic func(prog.Loc) bool) (bool, string) {
	// Register dataflow.
	if wa, ok := regWritten(a); ok {
		for _, r := range regsRead(b) {
			if r == wa {
				return false, "dataflow: b reads a's result"
			}
		}
		if wb, ok := regWritten(b); ok && wa == wb {
			return false, "dataflow: both define the same register"
		}
	}
	if wb, ok := regWritten(b); ok {
		for _, r := range regsRead(a) {
			if r == wb {
				return false, "dataflow: a reads the register b defines"
			}
		}
	}
	aa, ab := accessOf(a), accessOf(b)
	if !aa.isMem || !ab.isMem {
		// Pure register computation reorders freely (subject to dataflow,
		// checked above).
		return true, ""
	}
	// poat−: operations must not be moved before prior atomic operations.
	if isAtomic(aa.loc) {
		return false, "poat−: a is an atomic operation"
	}
	// po−at: operations must not be moved after subsequent atomic writes.
	if isAtomic(ab.loc) && ab.isWrite {
		return false, "po−at: b is an atomic write"
	}
	// poRW: prior reads must not be moved after subsequent writes.
	if !aa.isWrite && ab.isWrite {
		return false, ReasonPoRW
	}
	// pocon: conflicting operations must not be reordered.
	if aa.loc == ab.loc && (aa.isWrite || ab.isWrite) {
		return false, reasonPocon
	}
	return true, ""
}

// Peephole identifies one of the §7.1 same-location transformations.
type Peephole int

const (
	// RedundantLoad: [r1 = a; r2 = a] ⇒ [r1 = a; r2 := r1].
	RedundantLoad Peephole = iota
	// StoreForwarding: [a = x; r1 = a] ⇒ [a = x; r1 := x].
	StoreForwarding
	// DeadStore: [a = x; a = y] ⇒ [a = y].
	DeadStore
)

func (p Peephole) String() string {
	switch p {
	case RedundantLoad:
		return "RL"
	case StoreForwarding:
		return "SF"
	case DeadStore:
		return "DS"
	default:
		return fmt.Sprintf("Peephole(%d)", int(p))
	}
}

// ApplyPeephole applies the peephole at position i (covering instructions
// i and i+1). The transformations are justified operationally in §7.1;
// they are valid for nonatomic locations only (atomic operations carry
// frontier side-effects that RL/SF/DS would lose).
func ApplyPeephole(f Fragment, p Peephole, i int, isAtomic func(prog.Loc) bool) (Fragment, error) {
	if i < 0 || i+1 >= len(f) {
		return nil, fmt.Errorf("opt: peephole index %d out of range", i)
	}
	switch p {
	case RedundantLoad:
		l1, ok1 := f[i].(prog.Load)
		l2, ok2 := f[i+1].(prog.Load)
		if !ok1 || !ok2 || l1.Src != l2.Src {
			return nil, fmt.Errorf("opt: RL needs two loads of one location at %d", i)
		}
		if isAtomic(l1.Src) {
			return nil, fmt.Errorf("opt: RL is not valid for atomic locations")
		}
		out := f.Clone()
		out[i+1] = prog.Mov{Dst: l2.Dst, Src: prog.R(l1.Dst)}
		return out, nil
	case StoreForwarding:
		st, ok1 := f[i].(prog.Store)
		ld, ok2 := f[i+1].(prog.Load)
		if !ok1 || !ok2 || st.Dst != ld.Src {
			return nil, fmt.Errorf("opt: SF needs a store then load of one location at %d", i)
		}
		if isAtomic(st.Dst) {
			return nil, fmt.Errorf("opt: SF is not valid for atomic locations")
		}
		out := f.Clone()
		out[i+1] = prog.Mov{Dst: ld.Dst, Src: st.Src}
		return out, nil
	case DeadStore:
		s1, ok1 := f[i].(prog.Store)
		s2, ok2 := f[i+1].(prog.Store)
		if !ok1 || !ok2 || s1.Dst != s2.Dst {
			return nil, fmt.Errorf("opt: DS needs two stores to one location at %d", i)
		}
		if isAtomic(s1.Dst) {
			return nil, fmt.Errorf("opt: DS is not valid for atomic locations")
		}
		out := make(Fragment, 0, len(f)-1)
		out = append(out, f[:i]...)
		out = append(out, f[i+1:]...)
		return out, nil
	default:
		return nil, fmt.Errorf("opt: unknown peephole %v", p)
	}
}

// Step is one primitive transformation in a derivation.
type Step struct {
	// Swap exchanges instructions I and I+1 when Kind is "swap";
	// otherwise the peephole P is applied at I.
	Kind string // "swap" or "peephole"
	I    int
	P    Peephole
}

// SwapStep and PeepholeStep build steps.
func SwapStep(i int) Step                 { return Step{Kind: "swap", I: i} }
func PeepholeStep(p Peephole, i int) Step { return Step{Kind: "peephole", I: i, P: p} }

// Derive applies a sequence of steps, validating each against the §7.1
// rules, and returns the transformed fragment. The first invalid step
// aborts the derivation with a descriptive error — this is how the
// paper's invalid redundant-store-elimination example is rejected.
func Derive(f Fragment, steps []Step, isAtomic func(prog.Loc) bool) (Fragment, error) {
	cur := f.Clone()
	for n, s := range steps {
		switch s.Kind {
		case "swap":
			if s.I < 0 || s.I+1 >= len(cur) {
				return nil, fmt.Errorf("opt: step %d: swap index %d out of range", n, s.I)
			}
			ok, reason := CanSwap(cur[s.I], cur[s.I+1], isAtomic)
			if !ok {
				return nil, fmt.Errorf("opt: step %d: cannot swap [%s] and [%s]: %s",
					n, cur[s.I], cur[s.I+1], reason)
			}
			cur[s.I], cur[s.I+1] = cur[s.I+1], cur[s.I]
		case "peephole":
			next, err := ApplyPeephole(cur, s.P, s.I, isAtomic)
			if err != nil {
				return nil, fmt.Errorf("opt: step %d: %w", n, err)
			}
			cur = next
		default:
			return nil, fmt.Errorf("opt: step %d: unknown kind %q", n, s.Kind)
		}
	}
	return cur, nil
}

// Sequentialise replaces two parallel threads with their sequential
// composition [P ∥ Q] ⇒ [P; Q]. Valid in this model (it only adds po
// edges; §7.1) though invalid in C++ and Java.
func Sequentialise(p *prog.Program, first, second int) (*prog.Program, error) {
	if first == second || first < 0 || second < 0 ||
		first >= len(p.Threads) || second >= len(p.Threads) {
		return nil, fmt.Errorf("opt: bad thread indices %d, %d", first, second)
	}
	// Control-flow targets are thread-relative; concatenation would skew
	// the second thread's targets, so restrict to straight-line threads.
	for _, ti := range []int{first, second} {
		for _, in := range p.Threads[ti].Code {
			switch in.(type) {
			case prog.Jmp, prog.JmpZ, prog.JmpNZ:
				return nil, fmt.Errorf("opt: sequentialisation requires straight-line threads")
			}
		}
	}
	out := &prog.Program{
		Name: p.Name + "+seq",
		Locs: map[prog.Loc]prog.LocKind{},
	}
	for l, k := range p.Locs {
		out.Locs[l] = k
	}
	merged := prog.Thread{
		Name: p.Threads[first].Name + ";" + p.Threads[second].Name,
		Code: append(append([]prog.Instr{}, p.Threads[first].Code...), p.Threads[second].Code...),
	}
	out.Threads = append(out.Threads, merged)
	for i, t := range p.Threads {
		if i != first && i != second {
			out.Threads = append(out.Threads, t)
		}
	}
	return out, nil
}

// ReplaceThread returns a copy of p with thread ti's code replaced — the
// way a per-thread fragment transformation is lifted to a whole program.
func ReplaceThread(p *prog.Program, ti int, code Fragment) *prog.Program {
	out := &prog.Program{Name: p.Name + "'", Locs: map[prog.Loc]prog.LocKind{}}
	for l, k := range p.Locs {
		out.Locs[l] = k
	}
	out.Threads = append(out.Threads, p.Threads...)
	out.Threads[ti] = prog.Thread{Name: p.Threads[ti].Name, Code: code}
	return out
}

// SemanticallyValid reports whether transformed introduces no behaviour
// the original forbids: outcomes(transformed) ⊆ outcomes(original) under
// the operational model. This is the ground truth that the syntactic
// rules above are validated against in tests. Register observability: the
// transformed program may use the original's registers differently (e.g.
// DS removes none, RL renames none), so callers compare on programs whose
// observable registers coincide.
func SemanticallyValid(original, transformed *prog.Program) (bool, []explore.Outcome, error) {
	before, err := explore.Outcomes(original, explore.Options{})
	if err != nil {
		return false, nil, err
	}
	after, err := explore.Outcomes(transformed, explore.Options{})
	if err != nil {
		return false, nil, err
	}
	if after.SubsetOf(before) {
		return true, nil, nil
	}
	return false, after.Minus(before), nil
}
