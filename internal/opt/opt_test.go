package opt

import (
	"strings"
	"testing"

	"localdrf/internal/explore"
	"localdrf/internal/prog"
)

func naOnly(prog.Loc) bool { return false }

func atomicSet(locs ...prog.Loc) func(prog.Loc) bool {
	s := map[prog.Loc]bool{}
	for _, l := range locs {
		s[l] = true
	}
	return func(l prog.Loc) bool { return s[l] }
}

func TestCanSwapMemoryModelRules(t *testing.T) {
	isAtomic := atomicSet("A")
	cases := []struct {
		name string
		a, b prog.Instr
		ok   bool
		why  string
	}{
		{"RR different locs", prog.Load{Dst: "r1", Src: "x"}, prog.Load{Dst: "r2", Src: "y"}, true, ""},
		{"RR same loc", prog.Load{Dst: "r1", Src: "x"}, prog.Load{Dst: "r2", Src: "x"}, true, ""},
		{"WW different locs", prog.Store{Dst: "x", Src: prog.I(1)}, prog.Store{Dst: "y", Src: prog.I(1)}, true, ""},
		{"WR different locs", prog.Store{Dst: "x", Src: prog.I(1)}, prog.Load{Dst: "r1", Src: "y"}, true, ""},
		{"RW forbidden (poRW)", prog.Load{Dst: "r1", Src: "x"}, prog.Store{Dst: "y", Src: prog.I(1)}, false, "poRW"},
		{"WW same loc (pocon)", prog.Store{Dst: "x", Src: prog.I(1)}, prog.Store{Dst: "x", Src: prog.I(2)}, false, "pocon"},
		{"WR same loc (pocon)", prog.Store{Dst: "x", Src: prog.I(1)}, prog.Load{Dst: "r1", Src: "x"}, false, "pocon"},
		{"after atomic (poat−)", prog.Load{Dst: "r1", Src: "A"}, prog.Load{Dst: "r2", Src: "y"}, false, "poat−"},
		{"before atomic write (po−at)", prog.Store{Dst: "x", Src: prog.I(1)}, prog.Store{Dst: "A", Src: prog.I(1)}, false, "po−at"},
		{"dataflow w→r", prog.Load{Dst: "r1", Src: "x"}, prog.Store{Dst: "y", Src: prog.R("r1")}, false, "dataflow"},
		{"ALU free", prog.Mov{Dst: "r1", Src: prog.I(1)}, prog.Mov{Dst: "r2", Src: prog.I(2)}, true, ""},
		{"ALU same dst", prog.Mov{Dst: "r1", Src: prog.I(1)}, prog.Mov{Dst: "r1", Src: prog.I(2)}, false, "dataflow"},
	}
	for _, c := range cases {
		ok, why := CanSwap(c.a, c.b, isAtomic)
		if ok != c.ok {
			t.Errorf("%s: CanSwap = %v (%s), want %v", c.name, ok, why, c.ok)
			continue
		}
		if !ok && !strings.Contains(why, c.why) {
			t.Errorf("%s: reason %q, want mention of %q", c.name, why, c.why)
		}
	}
}

// Note: a WR pair on distinct locations may swap (making a read earlier is
// fine); it is the RW direction that poRW forbids. An atomic *read* as the
// second element is also movable-before, unlike an atomic write.
func TestCanSwapAtomicReadSecond(t *testing.T) {
	isAtomic := atomicSet("A")
	ok, _ := CanSwap(prog.Store{Dst: "x", Src: prog.I(1)}, prog.Load{Dst: "r1", Src: "A"}, isAtomic)
	if !ok {
		t.Error("write;atomic-read should be swappable (po−at restricts atomic writes only)")
	}
}

func TestPeepholeRL(t *testing.T) {
	f := Fragment{
		prog.Load{Dst: "r1", Src: "a"},
		prog.Load{Dst: "r2", Src: "a"},
	}
	out, err := ApplyPeephole(f, RedundantLoad, 0, naOnly)
	if err != nil {
		t.Fatal(err)
	}
	mv, ok := out[1].(prog.Mov)
	if !ok || mv.Dst != "r2" || !mv.Src.IsReg || mv.Src.Reg != "r1" {
		t.Fatalf("RL result = %v", out)
	}
}

func TestPeepholeSF(t *testing.T) {
	f := Fragment{
		prog.Store{Dst: "a", Src: prog.I(7)},
		prog.Load{Dst: "r1", Src: "a"},
	}
	out, err := ApplyPeephole(f, StoreForwarding, 0, naOnly)
	if err != nil {
		t.Fatal(err)
	}
	mv, ok := out[1].(prog.Mov)
	if !ok || mv.Dst != "r1" || mv.Src.IsReg || mv.Src.Imm != 7 {
		t.Fatalf("SF result = %v", out)
	}
}

func TestPeepholeDS(t *testing.T) {
	f := Fragment{
		prog.Store{Dst: "a", Src: prog.I(1)},
		prog.Store{Dst: "a", Src: prog.I(2)},
	}
	out, err := ApplyPeephole(f, DeadStore, 0, naOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("DS result = %v", out)
	}
	st := out[0].(prog.Store)
	if st.Src.Imm != 2 {
		t.Fatalf("DS kept the wrong store: %v", out)
	}
}

func TestPeepholesRejectAtomics(t *testing.T) {
	isAtomic := atomicSet("A")
	if _, err := ApplyPeephole(Fragment{
		prog.Load{Dst: "r1", Src: "A"},
		prog.Load{Dst: "r2", Src: "A"},
	}, RedundantLoad, 0, isAtomic); err == nil {
		t.Error("RL must reject atomic locations (reads merge frontiers)")
	}
	if _, err := ApplyPeephole(Fragment{
		prog.Store{Dst: "A", Src: prog.I(1)},
		prog.Store{Dst: "A", Src: prog.I(2)},
	}, DeadStore, 0, isAtomic); err == nil {
		t.Error("DS must reject atomic locations")
	}
}

// Peephole soundness is justified operationally in §7.1; check it
// semantically: applying RL/SF/DS in a racy parallel context introduces
// no new outcomes.
func TestPeepholesSemanticallySound(t *testing.T) {
	base := func() *prog.Program {
		return prog.NewProgram("ctx").
			Vars("a", "b").
			Thread("P0").
			Load("r1", "a").
			Load("r2", "a").
			StoreI("b", 1).
			StoreI("b", 2).
			Done().
			Thread("P1").StoreI("a", 5).Load("r3", "b").Done().
			MustBuild()
	}
	p := base()
	frag := Fragment(p.Threads[0].Code)

	rl, err := ApplyPeephole(frag, RedundantLoad, 0, naOnly)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ApplyPeephole(frag, DeadStore, 2, naOnly)
	if err != nil {
		t.Fatal(err)
	}
	for name, tf := range map[string]Fragment{"RL": rl, "DS": ds} {
		ok, extra, err := SemanticallyValid(base(), ReplaceThread(base(), 0, tf))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%s introduced outcomes %v", name, extra)
		}
	}
}

// The paper's CSE derivation: [r1 = a; r2 = b; r3 = a] reorders the two
// a-loads together (poRR relaxation, permitted) and applies RL.
func TestDeriveCSE(t *testing.T) {
	f := Fragment{
		prog.Load{Dst: "r1", Src: "a"},
		prog.Load{Dst: "r2", Src: "b"},
		prog.Load{Dst: "r3", Src: "a"},
	}
	out, steps, err := DeriveCSE(f, naOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Fatalf("steps = %v, want swap+RL", steps)
	}
	if _, ok := out[1].(prog.Mov); !ok {
		t.Fatalf("CSE result = %v", out)
	}
	// Replaying the derivation through Derive gives the same fragment.
	replayed, err := Derive(f, steps, naOnly)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.String() != out.String() {
		t.Fatalf("replay mismatch: %v vs %v", replayed, out)
	}
}

// CSE across an atomic read must fail: the load cannot move above the
// atomic operation (poat−).
func TestCSEBlockedByAtomic(t *testing.T) {
	isAtomic := atomicSet("A")
	f := Fragment{
		prog.Load{Dst: "r1", Src: "a"},
		prog.Load{Dst: "r2", Src: "A"},
		prog.Load{Dst: "r3", Src: "a"},
	}
	if _, _, err := DeriveCSE(f, isAtomic); err == nil {
		t.Error("CSE across an atomic read should not derive")
	}
}

// The paper's DSE derivation: [a = 1; b = c; a = 2] ⇒ [b = c; a = 2].
func TestDeriveDSE(t *testing.T) {
	f := Fragment{
		prog.Store{Dst: "a", Src: prog.I(1)},
		prog.Load{Dst: "rc", Src: "c"},
		prog.Store{Dst: "b", Src: prog.R("rc")},
		prog.Store{Dst: "a", Src: prog.I(2)},
	}
	out, _, err := DeriveDSE(f, naOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("DSE result = %v", out)
	}
	// Semantic check in a racy context.
	mk := func(frag Fragment) *prog.Program {
		b := prog.NewProgram("dse-ctx").Vars("a", "b", "c")
		tb := b.Thread("P0")
		for _, in := range frag {
			switch i := in.(type) {
			case prog.Store:
				tb.Store(i.Dst, i.Src)
			case prog.Load:
				tb.Load(i.Dst, i.Src)
			}
		}
		tb.Done()
		b.Thread("P1").Load("r1", "a").StoreI("c", 1).Done()
		return b.MustBuild()
	}
	ok, extra, err := SemanticallyValid(mk(f), mk(out))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("DSE introduced outcomes %v", extra)
	}
}

// The paper's constant-propagation derivation:
// [a = 1; b = c; r = a] ⇒ [b = c; a = 1; r = 1].
func TestDeriveConstProp(t *testing.T) {
	f := Fragment{
		prog.Store{Dst: "a", Src: prog.I(1)},
		prog.Load{Dst: "rc", Src: "c"},
		prog.Store{Dst: "b", Src: prog.R("rc")},
		prog.Load{Dst: "r", Src: "a"},
	}
	out, _, err := DeriveConstProp(f, naOnly)
	if err != nil {
		t.Fatal(err)
	}
	last := out[len(out)-1]
	mv, ok := last.(prog.Mov)
	if !ok || mv.Src.IsReg || mv.Src.Imm != 1 {
		t.Fatalf("const-prop result = %v", out)
	}
}

// LICM on a two-iteration unrolled loop: the invariant load of c moves up
// (poRR/poWR relaxations, permitted) and merges via RL.
func TestLICMOnUnrolledLoop(t *testing.T) {
	f := Fragment{
		prog.Load{Dst: "tb1", Src: "b"},
		prog.Store{Dst: "a", Src: prog.R("tb1")},
		prog.Load{Dst: "tc1", Src: "c"},
		prog.Mul{Dst: "r1", A: prog.R("tc1"), B: prog.R("tc1")},
		prog.Load{Dst: "tb2", Src: "b"},
		prog.Store{Dst: "a", Src: prog.R("tb2")},
		prog.Load{Dst: "tc2", Src: "c"},
		prog.Mul{Dst: "r2", A: prog.R("tc2"), B: prog.R("tc2")},
	}
	out, steps, err := DeriveCSEAll(f, naOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("expected a nontrivial derivation")
	}
	// Both invariant loads (b and c) are merged; copies replace them.
	for _, loc := range []prog.Loc{"b", "c"} {
		loads := 0
		for _, in := range out {
			if l, ok := in.(prog.Load); ok && l.Src == loc {
				loads++
			}
		}
		if loads != 1 {
			t.Errorf("after LICM %d loads of %s remain, want 1: %v", loads, loc, out)
		}
	}
}

// Redundant store elimination is rejected: moving the store-back over the
// intervening read relaxes poRW.
func TestRSERejected(t *testing.T) {
	f := Fragment{
		prog.Load{Dst: "r1", Src: "a"},
		prog.Load{Dst: "rc", Src: "c"},
		prog.Store{Dst: "b", Src: prog.R("rc")},
		prog.Store{Dst: "a", Src: prog.R("r1")},
	}
	_, _, err := DeriveRSE(f, naOnly)
	if err == nil || !strings.Contains(err.Error(), "poRW") {
		t.Fatalf("RSE should be rejected with a poRW violation, got %v", err)
	}
}

// Why poRW matters semantically: swapping a read before a later write
// introduces genuinely new outcomes in an LB-with-control context.
func TestPoRWRelaxationIntroducesOutcomes(t *testing.T) {
	mk := func(code Fragment) *prog.Program {
		b := prog.NewProgram("porw-ctx").Vars("x", "y")
		tb := b.Thread("P0")
		for _, in := range code {
			switch i := in.(type) {
			case prog.Store:
				tb.Store(i.Dst, i.Src)
			case prog.Load:
				tb.Load(i.Dst, i.Src)
			}
		}
		tb.Done()
		b.Thread("P1").
			Load("ry", "y").
			JmpZ("ry", "skip").
			StoreI("x", 1).
			Label("skip").
			Done()
		return b.MustBuild()
	}
	original := Fragment{
		prog.Load{Dst: "r", Src: "x"},
		prog.Store{Dst: "y", Src: prog.I(1)},
	}
	swapped := Fragment{original[1], original[0]}
	ok, reason := CanSwap(original[0], original[1], naOnly)
	if ok {
		t.Fatalf("poRW swap should be syntactically forbidden (%s)", reason)
	}
	valid, extra, err := SemanticallyValid(mk(original), mk(swapped))
	if err != nil {
		t.Fatal(err)
	}
	if valid {
		t.Fatal("poRW relaxation should introduce new outcomes in the LB+ctrl context")
	}
	found := false
	for _, o := range extra {
		if o.Reg(0, "r") == 1 && o.Reg(1, "ry") == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected r=1, ry=1 among new outcomes, got %v", extra)
	}
}

// Valid reorderings are semantically sound in racy contexts: a WR swap on
// distinct locations introduces nothing.
func TestValidSwapSemanticallySound(t *testing.T) {
	mk := func(code Fragment) *prog.Program {
		b := prog.NewProgram("wr-ctx").Vars("x", "y")
		tb := b.Thread("P0")
		for _, in := range code {
			switch i := in.(type) {
			case prog.Store:
				tb.Store(i.Dst, i.Src)
			case prog.Load:
				tb.Load(i.Dst, i.Src)
			}
		}
		tb.Done()
		b.Thread("P1").StoreI("y", 2).Load("rx", "x").Done()
		return b.MustBuild()
	}
	original := Fragment{
		prog.Store{Dst: "x", Src: prog.I(1)},
		prog.Load{Dst: "r", Src: "y"},
	}
	swapped := Fragment{original[1], original[0]}
	if ok, _ := CanSwap(original[0], original[1], naOnly); !ok {
		t.Fatal("WR swap on distinct locations should be allowed")
	}
	valid, extra, err := SemanticallyValid(mk(original), mk(swapped))
	if err != nil {
		t.Fatal(err)
	}
	if !valid {
		t.Errorf("valid WR swap introduced outcomes %v", extra)
	}
}

// Sequentialisation [P ∥ Q] ⇒ [P; Q] is valid in this model (§7.1).
func TestSequentialisation(t *testing.T) {
	p := prog.NewProgram("par").
		Vars("x", "y").
		Thread("P0").StoreI("x", 1).Load("r0", "y").Done().
		Thread("P1").StoreI("y", 1).Load("r1", "x").Done().
		MustBuild()
	seq, err := Sequentialise(p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Threads) != 1 {
		t.Fatalf("threads = %d, want 1", len(seq.Threads))
	}
	// The sequentialised program's outcomes, re-expressed over the
	// two-thread register layout, are a subset of the original's.
	seqOut, err := explore.Outcomes(seq, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	origOut, err := explore.Outcomes(p, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok := seqOut.Forall(func(o explore.Outcome) bool {
		return origOut.Exists(func(q explore.Outcome) bool {
			return o.Reg(0, "r0") == q.Reg(0, "r0") && o.Reg(0, "r1") == q.Reg(1, "r1") &&
				o.Mem["x"] == q.Mem["x"] && o.Mem["y"] == q.Mem["y"]
		})
	})
	if !ok {
		t.Error("sequentialisation introduced outcomes")
	}
}

func TestSequentialiseRejectsBranches(t *testing.T) {
	p := prog.NewProgram("br").
		Vars("x").
		Thread("P0").Load("r0", "x").JmpZ("r0", "e").StoreI("x", 1).Label("e").Done().
		Thread("P1").StoreI("x", 2).Done().
		MustBuild()
	if _, err := Sequentialise(p, 0, 1); err == nil {
		t.Error("sequentialisation of branching threads should be rejected")
	}
}

func TestDeriveReportsInvalidStep(t *testing.T) {
	f := Fragment{
		prog.Load{Dst: "r1", Src: "x"},
		prog.Store{Dst: "y", Src: prog.I(1)},
	}
	_, err := Derive(f, []Step{SwapStep(0)}, naOnly)
	if err == nil || !strings.Contains(err.Error(), "poRW") {
		t.Fatalf("Derive should reject the poRW swap, got %v", err)
	}
}
