package opt

import (
	"fmt"

	"localdrf/internal/prog"
)

// This file derives the paper's composite optimisations (§7.1) — common
// subexpression elimination, dead-store elimination, constant propagation
// — automatically from the reordering and peephole primitives, validating
// every intermediate step. A derivation that would need a forbidden
// reordering (like redundant store elimination's poRW relaxation) simply
// fails to build.

// moveUp produces validated swap steps that move the instruction at index
// j upward until it sits at index target (target ≤ j), returning the
// steps and the resulting fragment.
func moveUp(f Fragment, j, target int, isAtomic func(prog.Loc) bool) ([]Step, Fragment, error) {
	cur := f.Clone()
	var steps []Step
	for pos := j; pos > target; pos-- {
		ok, reason := CanSwap(cur[pos-1], cur[pos], isAtomic)
		if !ok {
			return nil, nil, fmt.Errorf("opt: cannot move [%s] above [%s]: %s", cur[pos], cur[pos-1], reason)
		}
		steps = append(steps, SwapStep(pos-1))
		cur[pos-1], cur[pos] = cur[pos], cur[pos-1]
	}
	return steps, cur, nil
}

// moveDown produces validated swap steps that move the instruction at
// index i downward until it sits at index target (i ≤ target).
func moveDown(f Fragment, i, target int, isAtomic func(prog.Loc) bool) ([]Step, Fragment, error) {
	cur := f.Clone()
	var steps []Step
	for pos := i; pos < target; pos++ {
		ok, reason := CanSwap(cur[pos], cur[pos+1], isAtomic)
		if !ok {
			return nil, nil, fmt.Errorf("opt: cannot move [%s] below [%s]: %s", cur[pos], cur[pos+1], reason)
		}
		steps = append(steps, SwapStep(pos))
		cur[pos], cur[pos+1] = cur[pos+1], cur[pos]
	}
	return steps, cur, nil
}

// DeriveCSE eliminates the first redundant load it can justify: a later
// load of the same nonatomic location is moved up adjacent to an earlier
// one (relaxing poRR, which the model permits) and replaced by a register
// copy (peephole RL). Returns the transformed fragment and the derivation.
func DeriveCSE(f Fragment, isAtomic func(prog.Loc) bool) (Fragment, []Step, error) {
	for i := 0; i < len(f); i++ {
		li, ok := f[i].(prog.Load)
		if !ok || isAtomic(li.Src) {
			continue
		}
		for j := i + 1; j < len(f); j++ {
			lj, ok := f[j].(prog.Load)
			if !ok || lj.Src != li.Src {
				continue
			}
			steps, cur, err := moveUp(f, j, i+1, isAtomic)
			if err != nil {
				continue // some intervening instruction pins the load
			}
			rl := PeepholeStep(RedundantLoad, i)
			final, err := ApplyPeephole(cur, RedundantLoad, i, isAtomic)
			if err != nil {
				continue
			}
			return final, append(steps, rl), nil
		}
	}
	return nil, nil, fmt.Errorf("opt: no CSE opportunity")
}

// DeriveCSEAll applies DeriveCSE to a fixpoint, returning the fully
// load-merged fragment and the concatenated derivation.
func DeriveCSEAll(f Fragment, isAtomic func(prog.Loc) bool) (Fragment, []Step, error) {
	cur := f.Clone()
	var all []Step
	for {
		next, steps, err := DeriveCSE(cur, isAtomic)
		if err != nil {
			if len(all) == 0 {
				return nil, nil, err
			}
			return cur, all, nil
		}
		cur = next
		all = append(all, steps...)
	}
}

// DeriveDSE eliminates the first dead store it can justify: an earlier
// store to the same nonatomic location is moved down adjacent to a later
// one (relaxing poWW/poWR, permitted) and removed (peephole DS).
func DeriveDSE(f Fragment, isAtomic func(prog.Loc) bool) (Fragment, []Step, error) {
	for i := 0; i < len(f); i++ {
		si, ok := f[i].(prog.Store)
		if !ok || isAtomic(si.Dst) {
			continue
		}
		for j := i + 1; j < len(f); j++ {
			sj, ok := f[j].(prog.Store)
			if !ok || sj.Dst != si.Dst {
				continue
			}
			steps, cur, err := moveDown(f, i, j-1, isAtomic)
			if err != nil {
				break // something pins this store; try the next i
			}
			ds := PeepholeStep(DeadStore, j-1)
			final, err := ApplyPeephole(cur, DeadStore, j-1, isAtomic)
			if err != nil {
				break
			}
			return final, append(steps, ds), nil
		}
	}
	return nil, nil, fmt.Errorf("opt: no DSE opportunity")
}

// DeriveConstProp forwards the first constant store into a later load of
// the same nonatomic location: the store is moved down adjacent to the
// load (relaxing poWW/poWR, permitted) and the load becomes a constant
// move (peephole SF).
func DeriveConstProp(f Fragment, isAtomic func(prog.Loc) bool) (Fragment, []Step, error) {
	for i := 0; i < len(f); i++ {
		si, ok := f[i].(prog.Store)
		if !ok || si.Src.IsReg || isAtomic(si.Dst) {
			continue
		}
		for j := i + 1; j < len(f); j++ {
			lj, ok := f[j].(prog.Load)
			if !ok || lj.Src != si.Dst {
				continue
			}
			steps, cur, err := moveDown(f, i, j-1, isAtomic)
			if err != nil {
				break
			}
			sf := PeepholeStep(StoreForwarding, j-1)
			final, err := ApplyPeephole(cur, StoreForwarding, j-1, isAtomic)
			if err != nil {
				break
			}
			return final, append(steps, sf), nil
		}
	}
	return nil, nil, fmt.Errorf("opt: no constant-propagation opportunity")
}

// DeriveRSE attempts the paper's *invalid* redundant-store-elimination:
// [r1 = a; b = c; a = r1] ⇒ [r1 = a; a = r1; b = c] ⇒ [r1 = a; b = c].
// Building the derivation requires moving the store of a above the read
// of c, which relaxes poRW; Derive therefore always fails, and the error
// names the violated constraint. Exposed so tests and the experiments
// binary can demonstrate the rejection.
func DeriveRSE(f Fragment, isAtomic func(prog.Loc) bool) (Fragment, []Step, error) {
	for i := 0; i < len(f); i++ {
		ld, ok := f[i].(prog.Load)
		if !ok {
			continue
		}
		for j := i + 1; j < len(f); j++ {
			st, ok := f[j].(prog.Store)
			if !ok || st.Dst != ld.Src || !st.Src.IsReg || st.Src.Reg != ld.Dst {
				continue
			}
			// Move the store-back up adjacent to the load, then the pair
			// [r1 = a; a = r1] would be eliminated. The move must cross
			// every intervening instruction; any intervening read makes
			// the swap a poRW relaxation.
			_, _, err := moveUp(f, j, i+1, isAtomic)
			if err != nil {
				return nil, nil, fmt.Errorf("opt: redundant store elimination rejected: %w", err)
			}
			// (If nothing intervenes the store really is redundant:
			// store forwarding guarantees the value, and DS-style
			// removal is fine. That case is not the paper's example.)
			out := make(Fragment, 0, len(f)-1)
			out = append(out, f[:j]...)
			out = append(out, f[j+1:]...)
			return out, nil, nil
		}
	}
	return nil, nil, fmt.Errorf("opt: no RSE opportunity")
}
