package opt

import (
	"strings"
	"testing"

	"localdrf/internal/prog"
	"localdrf/internal/staticrace"
)

// certProg is the guarded-handoff shape: P1's read of x and write of y
// are adjacent, x is certified by the flag protocol and y is
// thread-private, so the read-past-write swap is licensed by the
// certificate but refused by the context-free rules.
func certProg() *prog.Program {
	return prog.NewProgram("cert-swap").
		Vars("x", "y").
		Atomics("F").
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").
		Load("g", "F").
		JmpZ("g", "skip").
		Load("r", "x").
		StoreI("y", 7).
		Label("skip").
		Done().
		MustBuild()
}

// TestCanSwapCertRelaxesPoRW: on the certified program the poRW refusal
// — and only it — is discharged.
func TestCanSwapCertRelaxesPoRW(t *testing.T) {
	p := certProg()
	rep := staticrace.Analyze(p)
	if !rep.RaceFree("x") || !rep.RaceFree("y") {
		t.Fatalf("precondition: x and y must certify (report: %s)", rep)
	}
	rd := prog.Load{Dst: "r", Src: "x"}
	wr := prog.Store{Dst: "y", Src: prog.I(7)}
	isAtomic := p.IsSync

	if ok, reason := CanSwap(rd, wr, isAtomic); ok || reason != ReasonPoRW {
		t.Fatalf("CanSwap = %v, %q; want poRW refusal", ok, reason)
	}
	if ok, reason := CanSwapCert(rd, wr, isAtomic, rep); !ok {
		t.Fatalf("CanSwapCert refused a certified swap: %s", reason)
	}
	// A nil certificate proves nothing.
	if ok, _ := CanSwapCert(rd, wr, isAtomic, nil); ok {
		t.Fatal("CanSwapCert permitted the swap with no certificate")
	}
	// Non-poRW refusals stand even under a certificate.
	if ok, reason := CanSwapCert(prog.Store{Dst: "F", Src: prog.I(1)}, wr, isAtomic, rep); ok || !strings.Contains(reason, "poat") {
		t.Fatalf("CanSwapCert = %v, %q; want poat− refusal to stand", ok, reason)
	}
	if ok, reason := CanSwapCert(rd, prog.Store{Dst: "x", Src: prog.I(2)}, isAtomic, rep); ok || !strings.Contains(reason, "pocon") {
		t.Fatalf("CanSwapCert = %v, %q; want pocon refusal to stand", ok, reason)
	}
}

// TestDeriveCertSemanticallyValid: the certificate-licensed derivation
// succeeds where Derive fails, and the transformed program introduces no
// new outcome — the LDRF licence checked against the operational ground
// truth.
func TestDeriveCertSemanticallyValid(t *testing.T) {
	p := certProg()
	rep := staticrace.Analyze(p)
	frag := Fragment(p.Threads[1].Code)
	steps := []Step{SwapStep(2)} // Load r,x <-> Store y,7

	if _, err := Derive(frag, steps, p.IsSync); err == nil {
		t.Fatal("Derive permitted the poRW swap without a certificate")
	}
	out, err := DeriveCert(frag, steps, p.IsSync, rep)
	if err != nil {
		t.Fatalf("DeriveCert: %v", err)
	}
	q := ReplaceThread(p, 1, out)
	ok, extra, err := SemanticallyValid(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("certified swap introduced new outcomes: %v", extra)
	}
}

// TestCanSwapCertRefusesRacy: on the unguarded variant the certificate
// proves nothing about x, so poRW stands.
func TestCanSwapCertRefusesRacy(t *testing.T) {
	p := prog.NewProgram("racy-swap").
		Vars("x", "y").
		Thread("P0").StoreI("x", 1).Done().
		Thread("P1").Load("r", "x").StoreI("y", 7).Done().
		MustBuild()
	rep := staticrace.Analyze(p)
	if rep.RaceFree("x") {
		t.Fatal("precondition: x must not certify in the racy program")
	}
	rd := prog.Load{Dst: "r", Src: "x"}
	wr := prog.Store{Dst: "y", Src: prog.I(7)}
	if ok, reason := CanSwapCert(rd, wr, p.IsSync, rep); ok || reason != ReasonPoRW {
		t.Fatalf("CanSwapCert = %v, %q; want poRW refusal on the racy program", ok, reason)
	}
}
