// Package faultinject provides deterministic fault-injection wrappers
// for the I/O boundaries of the race-monitoring service: the filesystem
// the checkpoint ring writes through, and the network connections trace
// bytes arrive on. The service takes these interfaces instead of
// calling os/net directly, so the chaos harness can schedule torn
// writes, disk-full, byte corruption, mid-frame disconnects and
// slow-loris stalls at exact, reproducible points — robustness becomes
// a testable property instead of an asserted one.
//
// Faults are configured by plans (FSPlan, ConnPlan) whose zero values
// are fully transparent. Every fault fires at a deterministic position
// (a byte offset, an operation ordinal), never at random, so a failing
// chaos schedule replays exactly.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// ---- Filesystem ----

// File is the writable handle the checkpoint ring needs: sequential
// writes, a durability barrier, close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the slice of the filesystem the service's checkpoint ring uses.
// OS() is the real implementation; NewFS wraps any FS with an FSPlan.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	Create(path string) (File, error)
	Rename(oldpath, newpath string) error
	Open(path string) (io.ReadCloser, error)
	ReadDir(path string) ([]os.DirEntry, error)
	Remove(path string) error
	RemoveAll(path string) error
	// SyncDir fsyncs a directory, making a preceding Rename durable.
	SyncDir(path string) error
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Create(path string) (File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Open(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }
func (osFS) Remove(path string) error                   { return os.Remove(path) }
func (osFS) RemoveAll(path string) error                { return os.RemoveAll(path) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ErrDiskFull is the error every Write and Sync returns once an
// FSPlan's WriteBudget is exhausted.
var ErrDiskFull = errors.New("faultinject: disk full")

// FSPlan schedules filesystem faults. The zero value injects nothing.
type FSPlan struct {
	// WriteBudget caps the total bytes written through the FS across
	// all files; once exceeded, every further Write and Sync fails with
	// ErrDiskFull (the classic ENOSPC shape: the write that crosses the
	// boundary partially succeeds, then everything fails). 0 = unlimited.
	WriteBudget int64
	// TornNth makes the Nth Create'd file (1-based) tear: each Write
	// stores only the first half of its bytes and then fails. Because
	// the checkpoint ring writes to a temp name and renames only after
	// a successful Sync, a torn temp file must never become a ring
	// entry — recovery exercises the older generations instead.
	TornNth int
	// FailSyncNth makes the Nth Sync call (1-based, across all files)
	// fail. A checkpoint whose content was written but not made durable
	// must be treated as failed.
	FailSyncNth int
}

// FaultFS wraps an FS with an FSPlan. Safe for concurrent use.
type FaultFS struct {
	inner FS
	plan  FSPlan

	mu      sync.Mutex
	written int64
	creates int
	syncs   int
}

// NewFS wraps inner with the plan's fault schedule.
func NewFS(inner FS, plan FSPlan) *FaultFS {
	return &FaultFS{inner: inner, plan: plan}
}

// Written returns the total bytes written through the wrapper so far.
func (f *FaultFS) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }
func (f *FaultFS) Rename(oldpath, newpath string) error         { return f.inner.Rename(oldpath, newpath) }
func (f *FaultFS) Open(path string) (io.ReadCloser, error)      { return f.inner.Open(path) }
func (f *FaultFS) ReadDir(path string) ([]os.DirEntry, error)   { return f.inner.ReadDir(path) }
func (f *FaultFS) Remove(path string) error                     { return f.inner.Remove(path) }
func (f *FaultFS) RemoveAll(path string) error                  { return f.inner.RemoveAll(path) }
func (f *FaultFS) SyncDir(path string) error                    { return f.inner.SyncDir(path) }

func (f *FaultFS) Create(path string) (File, error) {
	inner, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.creates++
	torn := f.plan.TornNth > 0 && f.creates == f.plan.TornNth
	f.mu.Unlock()
	return &faultFile{fs: f, inner: inner, torn: torn}, nil
}

type faultFile struct {
	fs    *FaultFS
	inner File
	torn  bool
}

func (ff *faultFile) Write(p []byte) (int, error) {
	fs := ff.fs
	if ff.torn {
		n, _ := ff.inner.Write(p[:len(p)/2])
		return n, fmt.Errorf("faultinject: torn write (%d of %d bytes)", n, len(p))
	}
	if fs.plan.WriteBudget > 0 {
		fs.mu.Lock()
		remaining := fs.plan.WriteBudget - fs.written
		if remaining <= 0 {
			fs.mu.Unlock()
			return 0, ErrDiskFull
		}
		take := int64(len(p))
		if take > remaining {
			take = remaining
		}
		fs.written += take
		fs.mu.Unlock()
		n, err := ff.inner.Write(p[:take])
		if err != nil {
			return n, err
		}
		if int(take) < len(p) {
			return n, ErrDiskFull
		}
		return n, nil
	}
	fs.mu.Lock()
	fs.written += int64(len(p))
	fs.mu.Unlock()
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	fs := ff.fs
	fs.mu.Lock()
	fs.syncs++
	failSync := fs.plan.FailSyncNth > 0 && fs.syncs == fs.plan.FailSyncNth
	full := fs.plan.WriteBudget > 0 && fs.written >= fs.plan.WriteBudget
	fs.mu.Unlock()
	if failSync {
		return fmt.Errorf("faultinject: sync failed")
	}
	if full {
		return ErrDiskFull
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }

// ---- Connections ----

// ConnPlan schedules faults on one connection's writes (the client side
// of the chaos harness, between the protocol framing and the socket).
// The zero value is transparent. Offsets count bytes written through
// the wrapped connection, so a fault lands at an exact position in the
// framed stream — including mid-frame.
type ConnPlan struct {
	// CutAfter closes the connection abruptly once this many bytes have
	// been written: the prefix is delivered, the write that crosses the
	// boundary fails, and the peer sees a mid-stream disconnect.
	// 0 = never.
	CutAfter int64
	// CorruptAt XOR-flips the byte at this write offset (bit pattern
	// 0xFF) before sending — wire corruption in flight. Offset 0 is
	// position zero is never corrupted; schedule > 0. Pair with a later
	// CutAfter to model a peer that corrupts and then dies; alone it
	// models a flaky link whose stream continues. 0 = never.
	CorruptAt int64
	// WriteDelay sleeps before every Write — a slow-loris client
	// trickling bytes against the server's ingest timeout. 0 = none.
	WriteDelay time.Duration
}

// Conn wraps a net.Conn with a ConnPlan. Only the write path is
// faulted; reads pass through.
type Conn struct {
	net.Conn
	plan    ConnPlan
	written int64
}

// WrapConn wraps c with the plan's fault schedule.
func WrapConn(c net.Conn, plan ConnPlan) *Conn {
	return &Conn{Conn: c, plan: plan}
}

func (c *Conn) Write(p []byte) (int, error) {
	if c.plan.WriteDelay > 0 {
		time.Sleep(c.plan.WriteDelay)
	}
	if c.plan.CutAfter > 0 && c.written >= c.plan.CutAfter {
		c.Conn.Close()
		return 0, fmt.Errorf("faultinject: connection cut after %d bytes", c.written)
	}
	// Deliver at most up to the cut point.
	limit := int64(len(p))
	cut := false
	if c.plan.CutAfter > 0 && c.written+limit > c.plan.CutAfter {
		limit = c.plan.CutAfter - c.written
		cut = true
	}
	buf := p[:limit]
	if at := c.plan.CorruptAt; at > 0 && at >= c.written && at < c.written+limit {
		// Copy before flipping: the caller's buffer must stay intact
		// (the client retries with the same bytes).
		tmp := make([]byte, len(buf))
		copy(tmp, buf)
		tmp[at-c.written] ^= 0xFF
		buf = tmp
	}
	n, err := c.Conn.Write(buf)
	c.written += int64(n)
	if err != nil {
		return n, err
	}
	if cut {
		c.Conn.Close()
		return n, fmt.Errorf("faultinject: connection cut after %d bytes", c.written)
	}
	return n, nil
}

// ---- Readers ----

// Reader wraps an io.Reader with read-side faults, for unit tests that
// feed a decoder directly (no socket): the stream is cut short at
// CutAfter bytes and/or the byte at CorruptAt is XOR-flipped.
type Reader struct {
	R         io.Reader
	CutAfter  int64 // 0 = never; bytes delivered before a synthetic error
	CorruptAt int64 // 0 = never; offset of the flipped byte
	read      int64
}

func (r *Reader) Read(p []byte) (int, error) {
	if r.CutAfter > 0 {
		if r.read >= r.CutAfter {
			return 0, fmt.Errorf("faultinject: stream cut after %d bytes", r.read)
		}
		if left := r.CutAfter - r.read; int64(len(p)) > left {
			p = p[:left]
		}
	}
	n, err := r.R.Read(p)
	if at := r.CorruptAt; at > 0 && at >= r.read && at < r.read+int64(n) {
		p[at-r.read] ^= 0xFF
	}
	r.read += int64(n)
	return n, err
}
