package sim

import (
	"math/rand"
	"testing"

	"localdrf/internal/workload"
)

func TestRunDeterministic(t *testing.T) {
	b, _ := workload.Get("minilight")
	r1 := Run(b, ThunderX(), SRA)
	r2 := Run(b, ThunderX(), SRA)
	if r1.Cycles != r2.Cycles {
		t.Fatalf("simulation not deterministic: %d vs %d", r1.Cycles, r2.Cycles)
	}
}

func TestBaselineNormalisesToOne(t *testing.T) {
	b, _ := workload.Get("kb")
	if n := Normalized(b, ThunderX(), Baseline); n != 1.0 {
		t.Fatalf("baseline normalised time = %v", n)
	}
}

// Fig. 5b: on AArch64, the averages land near the paper's +2.5% (BAL),
// +0.6% (FBS) and +85.3% (SRA), with FBS ≤ BAL ≪ SRA. The simulator is a
// substitute for real hardware, so we assert bands, not points.
func TestFig5bShape(t *testing.T) {
	arch := ThunderX()
	_, bal := SuiteNormalized(arch, BAL)
	_, fbs := SuiteNormalized(arch, FBS)
	_, sra := SuiteNormalized(arch, SRA)
	if !(fbs < bal) {
		t.Errorf("AArch64 ordering violated: FBS %.3f should undercut BAL %.3f", fbs, bal)
	}
	if bal < 1.005 || bal > 1.08 {
		t.Errorf("BAL average %.3f outside the plausible band [1.005, 1.08]", bal)
	}
	if fbs < 1.0 || fbs > 1.05 {
		t.Errorf("FBS average %.3f outside the plausible band [1.0, 1.05]", fbs)
	}
	if sra < 1.5 || sra > 2.4 {
		t.Errorf("SRA average %.3f outside the plausible band [1.5, 2.4]", sra)
	}
}

// Fig. 5c: on POWER the ordering changes — BAL stays cheap but FBS pays
// for lwsync (paper: +2.9%, +26.0%, +40.8%).
func TestFig5cShape(t *testing.T) {
	arch := Power()
	_, bal := SuiteNormalized(arch, BAL)
	_, fbs := SuiteNormalized(arch, FBS)
	_, sra := SuiteNormalized(arch, SRA)
	if !(bal < fbs && fbs < sra) {
		t.Errorf("POWER ordering violated: BAL %.3f < FBS %.3f < SRA %.3f expected", bal, fbs, sra)
	}
	if bal > 1.08 {
		t.Errorf("POWER BAL average %.3f too high", bal)
	}
	if fbs < 1.12 || fbs > 1.40 {
		t.Errorf("POWER FBS average %.3f outside band [1.12, 1.40]", fbs)
	}
	if sra < 1.25 || sra > 1.60 {
		t.Errorf("POWER SRA average %.3f outside band [1.25, 1.60]", sra)
	}
}

// §8.3: SRA on AArch64 hits the FP-heavy numerical benchmarks hardest
// (no FP ldar/stlr; dmb pairs instead).
func TestSRAHurtsNumericsMost(t *testing.T) {
	arch := ThunderX()
	per, avg := SuiteNormalized(arch, SRA)
	numeric := []string{"minilight", "lexifi-g2pp", "qr-decomposition", "fft"}
	sum := 0.0
	for _, n := range numeric {
		sum += per[n]
	}
	numericAvg := sum / float64(len(numeric))
	if numericAvg <= avg {
		t.Errorf("numeric SRA average %.3f should exceed suite average %.3f", numericAvg, avg)
	}
}

// §8.3's curiosity: growing an unluckily-aligned loop (BAL/FBS padding or
// plain nops) beats the baseline on `sequence`, and the nop-padding
// control produces the same effect — the speedup is an i-cache artefact,
// not a memory-model effect.
func TestPaddingAlignmentEffect(t *testing.T) {
	arch := ThunderX()
	b, ok := workload.Get("sequence")
	if !ok {
		t.Fatal("missing sequence benchmark")
	}
	bal := Normalized(b, arch, BAL)
	padded := Normalized(b, arch, BaselinePadded)
	if bal >= 1.0 {
		t.Errorf("sequence under BAL = %.4f, expected < 1 (alignment win)", bal)
	}
	if padded >= 1.0 {
		t.Errorf("sequence under nop padding = %.4f, expected the same alignment win", padded)
	}
}

// The alignment artefact must not drive the suite averages: most
// benchmarks are unaffected.
func TestAlignmentIsLocalised(t *testing.T) {
	arch := ThunderX()
	per, _ := SuiteNormalized(arch, BaselinePadded)
	below := 0
	for _, v := range per {
		if v < 0.999 {
			below++
		}
	}
	if below > 4 {
		t.Errorf("%d benchmarks sped up by pure padding; the artefact should be rare", below)
	}
}

// Decorations never help except via alignment: with padding excluded,
// each scheme's per-benchmark normalised time stays ≥ ~1.
func TestNoFreeLunch(t *testing.T) {
	arch := Power()
	per, _ := SuiteNormalized(arch, SRA)
	for name, v := range per {
		if v < 0.99 {
			t.Errorf("%s: SRA normalised %.4f < 1; decorations cannot speed up POWER", name, v)
		}
	}
}

func TestLowerClassesPerScheme(t *testing.T) {
	arch := ThunderX()
	// Immutable loads and initialising stores are bare in every scheme
	// (§8.1).
	for _, s := range []Scheme{Baseline, BAL, FBS, SRA} {
		if ops := lower(arch, s, workload.Access{Class: workload.ImmLoad}); len(ops) != 1 || ops[0] != ULoad {
			t.Errorf("%v: immutable load lowered to %v", s, ops)
		}
		if ops := lower(arch, s, workload.Access{Class: workload.InitStore}); len(ops) != 1 || ops[0] != UStore {
			t.Errorf("%v: initialising store lowered to %v", s, ops)
		}
	}
	// BAL decorates mutable loads only; FBS decorates assignments only.
	if ops := lower(arch, BAL, workload.Access{Class: workload.MutLoad}); len(ops) != 2 || ops[1] != UBranchDep {
		t.Errorf("BAL mutable load lowered to %v", ops)
	}
	if ops := lower(arch, BAL, workload.Access{Class: workload.Assign}); len(ops) != 1 {
		t.Errorf("BAL assignment lowered to %v", ops)
	}
	if ops := lower(arch, FBS, workload.Access{Class: workload.MutLoad}); len(ops) != 1 {
		t.Errorf("FBS mutable load lowered to %v", ops)
	}
	if ops := lower(arch, FBS, workload.Access{Class: workload.Assign}); len(ops) != 2 || ops[0] != UDmbLd {
		t.Errorf("FBS assignment lowered to %v", ops)
	}
	// SRA uses acquire/release for integer accesses, dmb pairs for FP.
	if ops := lower(arch, SRA, workload.Access{Class: workload.MutLoad}); len(ops) != 1 || ops[0] != ULoadAcq {
		t.Errorf("SRA int mutable load lowered to %v", ops)
	}
	if ops := lower(arch, SRA, workload.Access{Class: workload.MutLoad, FP: true}); len(ops) != 1 || ops[0] != UFPLoadSer {
		t.Errorf("SRA FP mutable load lowered to %v", ops)
	}
	// POWER uses the lwsync/isync sequences.
	power := Power()
	if ops := lower(power, FBS, workload.Access{Class: workload.Assign}); len(ops) != 2 || ops[0] != ULwsync {
		t.Errorf("POWER FBS assignment lowered to %v", ops)
	}
	if ops := lower(power, SRA, workload.Access{Class: workload.MutLoad}); len(ops) != 2 || ops[1] != UIsyncSeq {
		t.Errorf("POWER SRA mutable load lowered to %v", ops)
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	// A long run of stores cannot outpace the drain rate: cycles must
	// reflect the store buffer capacity.
	arch := ThunderX()
	c := &cpu{arch: arch, rng: newRng()}
	for i := 0; i < 1000; i++ {
		c.exec(UStore)
	}
	c.waitStores()
	min := int64(1000 * arch.StoreDrain)
	if c.cycle < min/2 {
		t.Errorf("1000 stores finished in %d cycles; drain rate not applied", c.cycle)
	}
}

func TestOutstandingLoadCap(t *testing.T) {
	arch := ThunderX()
	arch.MaxOutstanding = 2
	c := &cpu{arch: arch, rng: newRng()}
	for i := 0; i < 100; i++ {
		c.exec(ULoad)
	}
	if len(c.outstanding) > 2 {
		t.Errorf("outstanding loads = %d, cap is 2", len(c.outstanding))
	}
}

func newRng() *rand.Rand { return rand.New(rand.NewSource(42)) }
