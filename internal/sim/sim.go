// Package sim is the performance-evaluation substitute for §8 of the
// paper (see DESIGN.md, "Substitutions").
//
// The paper measures patched OCaml compilers on a Cavium ThunderX
// (AArch64) and a virtualised IBM POWER machine. Go cannot control the
// fences a real machine executes, so this package models the only
// variable the experiment manipulates: the extra instructions each
// compilation scheme wraps around each class of memory access, and what
// those extras stall on. The processor model is a deterministic in-order
// core with non-blocking loads (a bounded outstanding-load queue), a
// draining store buffer, and a fetch front-end sensitive to loop size —
// enough microarchitecture for every effect §8.3 discusses:
//
//   - BAL's branch costs an issue slot per mutable load;
//   - FBS's dmb ld waits on outstanding loads (usually none by the time a
//     store issues, hence FBS < BAL on AArch64);
//   - lwsync on POWER is a heavyweight ordering op, hence FBS ≫ BAL there;
//   - SRA's ldar/stlr serialise against both queues (ThunderX-style
//     conservative acquire/release), and its FP accesses need dmb pairs,
//     which is why the numerical benchmarks collapse;
//   - growing the loop body can *improve* unlucky baseline fetch
//     alignment, reproducing the paper's nop-padding observation.
//
// Absolute cycle counts are meaningless; results are reported as time
// normalised to the simulated baseline, exactly as fig. 5b/5c report.
package sim

import (
	"fmt"
	"math/rand"

	"localdrf/internal/workload"
)

// Arch is a processor profile.
type Arch struct {
	Name    string
	FreqGHz float64
	// Loads.
	LoadLatency    int     // L1 hit latency
	MissLatency    int     // cache miss latency
	HitRate        float64 // L1 hit rate of the synthetic workloads
	MaxOutstanding int     // non-blocking load queue depth
	// Store buffer.
	StoreBufCap int
	StoreDrain  int // cycles between drains of consecutive entries
	// Decoration costs.
	BranchCost  int // predicted dependent branch (BAL)
	DmbLdFixed  int // dmb ld, beyond waiting for outstanding loads
	DmbStFixed  int // dmb st, beyond waiting for the store buffer
	AcqFixed    int // ldar, beyond full serialisation (ThunderX-style)
	RelFixed    int // stlr, beyond store-buffer drain
	FPSerialize int // barrier adjacent to an FP access: exposed FP-pipe depth
	LwsyncFixed int // POWER lwsync ordering cost
	IsyncFixed  int // POWER isync pipeline restart
	CmpBrCost   int // POWER cmp+beq pair of the BAL equivalent
	// Front end.
	FetchBytes int // fetch-group size; loop bodies pay per group
	InstrBytes int // fixed instruction width
}

// ThunderX returns the AArch64 profile: a small in-order core with a
// conservative (fully serialising) ldar/stlr implementation — the
// documented behaviour of the Cavium part the paper measured, and the
// reason SRA averages +85% there.
func ThunderX() Arch {
	return Arch{
		Name:           "aarch64-thunderx",
		FreqGHz:        2.5,
		LoadLatency:    4,
		MissLatency:    60,
		HitRate:        0.97,
		MaxOutstanding: 8,
		StoreBufCap:    16,
		StoreDrain:     3,
		BranchCost:     2,
		DmbLdFixed:     1,
		DmbStFixed:     2,
		AcqFixed:       70,
		RelFixed:       35,
		FPSerialize:    55,
		LwsyncFixed:    0,
		IsyncFixed:     0,
		CmpBrCost:      0,
		FetchBytes:     16,
		InstrBytes:     4,
	}
}

// Power returns the PowerPC profile: faster clock, but lwsync is a
// heavyweight ordering operation on the old virtualised pSeries the paper
// used, and the acquire sequence (ld; cmp; beq; isync) serialises on the
// load result.
func Power() Arch {
	return Arch{
		Name:           "power-pseries",
		FreqGHz:        3.425,
		LoadLatency:    4,
		MissLatency:    80,
		HitRate:        0.97,
		MaxOutstanding: 8,
		StoreBufCap:    16,
		StoreDrain:     3,
		BranchCost:     1,
		DmbLdFixed:     0,
		DmbStFixed:     0,
		AcqFixed:       0,
		RelFixed:       0,
		FPSerialize:    0,
		LwsyncFixed:    70,
		IsyncFixed:     16,
		CmpBrCost:      2,
		FetchBytes:     16,
		InstrBytes:     4,
	}
}

// Scheme is a compilation scheme for nonatomic accesses (§8.2). Atomics
// are excluded: the paper leaves their evaluation to future work.
type Scheme int

const (
	// Baseline compiles loads and stores bare (trunk OCaml).
	Baseline Scheme = iota
	// BaselinePadded is the §8.3 control experiment: bare accesses padded
	// with nops to match BAL's instruction count.
	BaselinePadded
	// BAL is branch-after-load (table 2a; ld;cmp;beq on POWER).
	BAL
	// FBS is fence-before-store (table 2b; lwsync;st on POWER).
	FBS
	// SRA is strong release/acquire: ldar/stlr (AArch64, with dmb pairs
	// for FP); ld;cmp;beq;isync / lwsync;st (POWER).
	SRA
)

func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case BaselinePadded:
		return "baseline+nop"
	case BAL:
		return "BAL"
	case FBS:
		return "FBS"
	case SRA:
		return "SRA"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// MicroOp is one instruction of the simulated stream.
type MicroOp int

const (
	UAlu MicroOp = iota
	UNop
	ULoad       // plain load
	UStore      // plain store
	ULoadAcq    // ldar (serialising acquire load)
	UStoreRel   // stlr (store-buffer-draining release store)
	UDmbLd      // dmb ld
	UDmbSt      // dmb st
	UFPLoadSer  // FP load + adjacent dmb ld: the load is fully serialised
	UFPStoreSer // dmb st + FP store: the store buffer is drained first
	ULwsync     // POWER lwsync
	UIsyncSeq   // POWER cmp;beq;isync consuming the previous load
	UBranchDep  // BAL's cbz (predicted, costs an issue slot)
	UCmpBr      // POWER's cmp;beq pair (BAL equivalent)
)

// lower maps one access to its instruction sequence under (arch, scheme).
// Immutable loads and initialising stores are bare everywhere (§8.1).
func lower(arch Arch, s Scheme, a workload.Access) []MicroOp {
	isPower := arch.LwsyncFixed > 0
	switch a.Class {
	case workload.ImmLoad:
		return []MicroOp{ULoad}
	case workload.InitStore:
		return []MicroOp{UStore}
	case workload.MutLoad:
		switch s {
		case Baseline:
			return []MicroOp{ULoad}
		case BaselinePadded:
			return []MicroOp{ULoad, UNop}
		case BAL:
			if isPower {
				return []MicroOp{ULoad, UCmpBr}
			}
			return []MicroOp{ULoad, UBranchDep}
		case FBS:
			return []MicroOp{ULoad}
		case SRA:
			if isPower {
				return []MicroOp{ULoad, UIsyncSeq}
			}
			if a.FP {
				// No FP ldar: plain load with dmb ld immediately after
				// (§8.3). The barrier lands in the load's shadow, so the
				// whole FP-pipe latency is exposed per access.
				return []MicroOp{UFPLoadSer}
			}
			return []MicroOp{ULoadAcq}
		}
	case workload.Assign:
		switch s {
		case Baseline:
			return []MicroOp{UStore}
		case BaselinePadded:
			return []MicroOp{UStore, UNop}
		case BAL:
			return []MicroOp{UStore}
		case FBS:
			if isPower {
				return []MicroOp{ULwsync, UStore}
			}
			return []MicroOp{UDmbLd, UStore}
		case SRA:
			if isPower {
				return []MicroOp{ULwsync, UStore}
			}
			if a.FP {
				// No FP stlr: dmb st immediately before the store (§8.3).
				return []MicroOp{UFPStoreSer}
			}
			return []MicroOp{UStoreRel}
		}
	}
	return []MicroOp{UNop}
}

// cpu is the in-order core state.
type cpu struct {
	arch        Arch
	cycle       int64
	outstanding []int64 // completion times of in-flight loads
	sbuf        []int64 // drain times of store-buffer entries
	lastDrain   int64
	rng         *rand.Rand
}

func (c *cpu) issue(n int64) { c.cycle += n }

func (c *cpu) retireLoads() {
	keep := c.outstanding[:0]
	for _, t := range c.outstanding {
		if t > c.cycle {
			keep = append(keep, t)
		}
	}
	c.outstanding = keep
}

func (c *cpu) drainStores() {
	keep := c.sbuf[:0]
	for _, t := range c.sbuf {
		if t > c.cycle {
			keep = append(keep, t)
		}
	}
	c.sbuf = keep
}

func (c *cpu) waitLoads() {
	for _, t := range c.outstanding {
		if t > c.cycle {
			c.cycle = t
		}
	}
	c.outstanding = c.outstanding[:0]
}

func (c *cpu) waitStores() {
	for _, t := range c.sbuf {
		if t > c.cycle {
			c.cycle = t
		}
	}
	c.sbuf = c.sbuf[:0]
}

func (c *cpu) loadLatency() int64 {
	if c.rng.Float64() < c.arch.HitRate {
		return int64(c.arch.LoadLatency)
	}
	return int64(c.arch.MissLatency)
}

func (c *cpu) exec(op MicroOp) {
	c.retireLoads()
	c.drainStores()
	switch op {
	case UAlu, UNop:
		c.issue(1)
	case ULoad:
		if len(c.outstanding) >= c.arch.MaxOutstanding {
			// Wait for the oldest in-flight load.
			oldest := c.outstanding[0]
			if oldest > c.cycle {
				c.cycle = oldest
			}
			c.outstanding = c.outstanding[1:]
		}
		c.issue(1)
		c.outstanding = append(c.outstanding, c.cycle+c.loadLatency())
	case UStore:
		if len(c.sbuf) >= c.arch.StoreBufCap {
			oldest := c.sbuf[0]
			if oldest > c.cycle {
				c.cycle = oldest
			}
			c.sbuf = c.sbuf[1:]
		}
		c.issue(1)
		drainAt := c.cycle + int64(c.arch.StoreDrain)
		if drainAt < c.lastDrain+int64(c.arch.StoreDrain) {
			drainAt = c.lastDrain + int64(c.arch.StoreDrain)
		}
		c.lastDrain = drainAt
		c.sbuf = append(c.sbuf, drainAt)
	case ULoadAcq:
		// ThunderX-style conservative acquire: waits for everything,
		// completes before anything later issues.
		c.waitLoads()
		c.waitStores()
		c.issue(int64(c.arch.AcqFixed) + c.loadLatency())
	case UStoreRel:
		c.waitStores()
		c.issue(int64(c.arch.RelFixed) + 1)
	case UDmbLd:
		c.waitLoads()
		c.issue(int64(c.arch.DmbLdFixed))
	case UDmbSt:
		c.waitStores()
		c.issue(int64(c.arch.DmbStFixed))
	case UFPLoadSer:
		// ldr (FP); dmb ld — nothing later may issue until the load and
		// everything before it completes: the FP pipeline depth plus the
		// barrier is exposed on every such access.
		c.waitLoads()
		c.issue(1 + c.loadLatency() + int64(c.arch.FPSerialize) + int64(c.arch.DmbLdFixed))
	case UFPStoreSer:
		// dmb st; str (FP) — the store buffer must drain before the
		// store, and the FP store pays its pipeline depth.
		c.waitStores()
		c.issue(1 + int64(c.arch.FPSerialize)/2 + int64(c.arch.DmbStFixed))
		drainAt := c.cycle + int64(c.arch.StoreDrain)
		if drainAt < c.lastDrain+int64(c.arch.StoreDrain) {
			drainAt = c.lastDrain + int64(c.arch.StoreDrain)
		}
		c.lastDrain = drainAt
		c.sbuf = append(c.sbuf, drainAt)
	case ULwsync:
		// Orders prior reads and writes before later ones without a full
		// drain: wait on loads and pay the ordering cost.
		c.waitLoads()
		c.issue(int64(c.arch.LwsyncFixed))
	case UIsyncSeq:
		// cmp; beq; isync consuming the previous load: the branch cannot
		// resolve before the load completes, and isync restarts fetch.
		c.waitLoads()
		c.issue(int64(c.arch.IsyncFixed) + 2)
	case UBranchDep:
		c.issue(int64(c.arch.BranchCost))
	case UCmpBr:
		c.issue(int64(c.arch.CmpBrCost) + 1)
	}
}

// Result is one simulation run.
type Result struct {
	Benchmark string
	Arch      string
	Scheme    Scheme
	Cycles    int64
	Instrs    int64
}

// Iterations is the number of hot-loop iterations per run; results are
// ratios, so this only needs to be large enough to dwarf warm-up.
const Iterations = 2000

// Run simulates one benchmark under one scheme.
func Run(b workload.Benchmark, arch Arch, s Scheme) Result {
	body := b.Body()
	gap := b.AluGap(arch.FreqGHz)

	// Build one iteration's instruction stream.
	var stream []MicroOp
	for _, a := range body {
		for i := 0; i < gap; i++ {
			stream = append(stream, UAlu)
		}
		stream = append(stream, lower(arch, s, a)...)
	}
	for i := 0; i < b.HotLoopPad; i++ {
		stream = append(stream, UAlu)
	}

	// Front-end fetch tax: a per-iteration stall when the body's byte
	// size leaves a one-instruction straggler in the last fetch group
	// (the loop head then shares a fetch group with the loop tail,
	// costing a redirect every iteration) — the §8.3 alignment effect.
	// Growing the loop by a couple of instructions (BAL's branches,
	// FBS's fences, or plain nop padding) shifts the residue and removes
	// the tax, which is how a *decorated* scheme can beat the baseline.
	bodyBytes := len(stream) * arch.InstrBytes
	fetchTax := int64(0)
	if r := bodyBytes % arch.FetchBytes; r > 0 && r <= arch.InstrBytes {
		fetchTax = 8
	}

	c := &cpu{arch: arch, rng: rand.New(rand.NewSource(seedOf(b.Name)))}
	for it := 0; it < Iterations; it++ {
		for _, op := range stream {
			c.exec(op)
		}
		c.cycle += fetchTax
	}
	c.waitLoads()
	c.waitStores()
	return Result{
		Benchmark: b.Name,
		Arch:      arch.Name,
		Scheme:    s,
		Cycles:    c.cycle,
		Instrs:    int64(len(stream)) * Iterations,
	}
}

// Normalized returns time under s divided by time under Baseline — the
// quantity fig. 5b/5c plot.
func Normalized(b workload.Benchmark, arch Arch, s Scheme) float64 {
	base := Run(b, arch, Baseline)
	r := Run(b, arch, s)
	return float64(r.Cycles) / float64(base.Cycles)
}

// SuiteNormalized runs the whole fig. 5a suite under one scheme and
// returns per-benchmark normalised times plus the arithmetic mean, the
// statistic §8.3 quotes.
func SuiteNormalized(arch Arch, s Scheme) (map[string]float64, float64) {
	out := map[string]float64{}
	sum := 0.0
	suite := workload.Suite()
	for _, b := range suite {
		n := Normalized(b, arch, s)
		out[b.Name] = n
		sum += n
	}
	return out, sum / float64(len(suite))
}

func seedOf(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}
