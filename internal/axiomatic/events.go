// Package axiomatic implements the axiomatic semantics of §6 of the
// paper and the alternative characterisations of §7 (thms. 17 and 18).
//
// Program behaviour is a set of events E = (k, ℓ, ϕ) where k is (i, n) —
// the n-th event of thread i — or IWℓ, the initial write to ℓ. A candidate
// execution equips an event graph with po (program order), rf (reads-from)
// and co (coherence); a consistent execution additionally satisfies
// Causality (no cycles in hb ∪ rf ∪ frat), CoWW and CoWR.
//
// Enumeration is herd-style: each thread is executed locally with read
// values drawn from a fixpoint value domain (resolving control flow and
// computed store values), then rf and co are enumerated and the axioms
// checked. Theorems 15/16 (the operational and axiomatic models define
// the same behaviours) are validated empirically by comparing outcome
// sets with package explore.
package axiomatic

import (
	"fmt"
	"sort"

	"localdrf/internal/prog"
	"localdrf/internal/rel"
)

// Event is one node of the event graph.
type Event struct {
	// Thread is the executing thread index, or -1 for initial writes.
	Thread int
	// Seq is the event's position n in program order within its thread
	// (meaningless for initial writes).
	Seq int
	// Loc, IsWrite and Val describe the action ℓ:ϕ.
	Loc     prog.Loc
	IsWrite bool
	Val     prog.Val
	// Atomic records whether Loc is a (sequentially consistent) atomic
	// location; RA records whether it is release-acquire (§10
	// extension). At most one of the two is set.
	Atomic bool
	RA     bool
}

// IsInit reports whether the event is an initial write IWℓ.
func (e Event) IsInit() bool { return e.Thread < 0 }

func (e Event) String() string {
	k := "R"
	if e.IsWrite {
		k = "W"
	}
	if e.IsInit() {
		return fmt.Sprintf("IW%s=%d", e.Loc, e.Val)
	}
	return fmt.Sprintf("%s%s=%d@%d.%d", k, e.Loc, e.Val, e.Thread, e.Seq)
}

// Execution is a candidate execution: the event graph with po, rf and co,
// plus the final register files produced by the local executions (used to
// extract observable outcomes).
type Execution struct {
	Prog   *prog.Program
	Events []Event
	PO     rel.Rel
	RF     rel.Rel
	CO     rel.Rel
	Regs   []map[prog.Reg]prog.Val
}

// n returns the number of events.
func (x *Execution) n() int { return len(x.Events) }

// FR returns the from-reads relation fr = rf⁻¹ ; co (E1 fr E2 when E1
// reads a value later overwritten by E2).
func (x *Execution) FR() rel.Rel {
	return x.RF.Inverse().Compose(x.CO)
}

// restrictAtomic keeps only pairs whose (shared) location is atomic. The
// relations this is applied to (co, rf, fr) only relate same-location
// events.
func (x *Execution) restrictAtomic(r rel.Rel) rel.Rel {
	return r.Filter(func(i, j int) bool { return x.Events[i].Atomic })
}

// HBInit relates every initial write to every non-initial event.
func (x *Execution) HBInit() rel.Rel {
	r := rel.New(x.n())
	for i, e := range x.Events {
		if !e.IsInit() {
			continue
		}
		for j, f := range x.Events {
			if !f.IsInit() {
				r.Set(i, j)
			}
		}
	}
	return r
}

// restrictRA keeps only pairs on release-acquire locations.
func (x *Execution) restrictRA(r rel.Rel) rel.Rel {
	return r.Filter(func(i, j int) bool { return x.Events[i].RA })
}

// HB computes happens-before per §6: the smallest transitive relation
// containing initial-write edges, po, and same-atomic-location co and rf
// edges. For the §10 release-acquire extension, an RA location
// contributes only its rf edges (a release write synchronises exactly
// with the acquire reads that read from it), matching the operational
// frontier flow of ra.go.
func (x *Execution) HB() rel.Rel {
	base := x.HBInit().Union(x.PO)
	atomicCommunication := x.restrictAtomic(x.CO).Union(x.restrictAtomic(x.RF))
	raCommunication := x.restrictRA(x.RF)
	return base.Union(atomicCommunication, raCommunication).TransitiveClosure()
}

// Consistency axioms of §6. CheckConsistent returns nil for a consistent
// execution and a descriptive error otherwise.
func (x *Execution) CheckConsistent() error {
	hb := x.HB()
	fr := x.FR()
	frat := x.restrictAtomic(fr)
	// Causality: no cycles in hb ∪ rf ∪ frat.
	if !hb.Union(x.RF, frat).Acyclic() {
		return fmt.Errorf("axiomatic: causality violated (cycle in hb ∪ rf ∪ frat)")
	}
	// CoWW: no E1 hb E2 with E2 co E1.
	if !hb.Compose(x.CO).Irreflexive() {
		return fmt.Errorf("axiomatic: CoWW violated")
	}
	// CoWR: no E1 hb E2 with E2 fr E1.
	if !hb.Compose(fr).Irreflexive() {
		return fmt.Errorf("axiomatic: CoWR violated")
	}
	return nil
}

// Consistent reports whether the execution satisfies the §6 axioms.
func (x *Execution) Consistent() bool { return x.CheckConsistent() == nil }

// ---- §7 subrelations of program order and the recharacterisations ----

func (x *Execution) isAtomicEv(i int) bool { return x.Events[i].Atomic }
func (x *Execution) isWriteEv(i int) bool  { return x.Events[i].IsWrite }
func (x *Execution) isReadEv(i int) bool   { return !x.Events[i].IsWrite }
func (x *Execution) any(int) bool          { return true }

// POatL is poat−: pairs whose first event is an atomic read or write.
func (x *Execution) POatL() rel.Rel { return x.PO.Restrict(x.isAtomicEv, x.any) }

// POatR is po−at: pairs whose second event is an atomic write.
func (x *Execution) POatR() rel.Rel {
	return x.PO.Restrict(x.any, func(j int) bool { return x.isAtomicEv(j) && x.isWriteEv(j) })
}

// POatat is poat−at: atomic first event, atomic-write second event.
func (x *Execution) POatat() rel.Rel {
	return x.PO.Restrict(x.isAtomicEv, func(j int) bool { return x.isAtomicEv(j) && x.isWriteEv(j) })
}

// PORW is poRW: read before write (any locations).
func (x *Execution) PORW() rel.Rel { return x.PO.Restrict(x.isReadEv, x.isWriteEv) }

// POcon is pocon: same location, at least one write.
func (x *Execution) POcon() rel.Rel {
	return x.PO.Filter(func(i, j int) bool {
		return x.Events[i].Loc == x.Events[j].Loc && (x.isWriteEv(i) || x.isWriteEv(j))
	})
}

// external returns r \ po (the rfe/coe/fre split of §7).
func (x *Execution) external(r rel.Rel) rel.Rel { return r.Minus(x.PO) }

// HBCom computes
//
//	hbcom = po−at?; ((coeat ∪ rfeat); poat−at?)*; (coeat ∪ rfeat); poat−?
//
// The paper's display (§7) writes the po segments without the reflexive
// "?", but its own appendix proof of thm. 17 requires rfeat ∪ coeat ⊆
// hbcom (step (i)) and closes hbcom;hbcom ⊆ hbcom (step (ii)) in ways
// that only hold with the reflexive closures — the R? notation is
// introduced immediately before the theorem for exactly this use.
func (x *Execution) HBCom() rel.Rel {
	coeat := x.external(x.restrictAtomic(x.CO))
	rfeat := x.external(x.restrictAtomic(x.RF))
	comm := coeat.Union(rfeat)
	step := comm.Compose(x.POatat().ReflexiveClosure())
	starred := step.TransitiveClosure().ReflexiveClosure()
	return x.POatR().ReflexiveClosure().
		Compose(starred).
		Compose(comm).
		Compose(x.POatL().ReflexiveClosure())
}

// HBAlt is the thm. 17 characterisation hbinit ∪ hbcom ∪ po.
func (x *Execution) HBAlt() rel.Rel {
	return x.HBInit().Union(x.HBCom(), x.PO)
}

// hasRA reports whether the execution touches release-acquire locations;
// the §7 recharacterisations (thms. 17/18) are statements about the base
// model and are not checked on extended executions.
func (x *Execution) hasRA() bool {
	for _, e := range x.Events {
		if e.RA {
			return true
		}
	}
	return false
}

// CheckTheorem17 verifies hb = hbinit ∪ hbcom ∪ po on this candidate
// execution. Executions using the RA extension are outside the
// theorem's scope and pass vacuously.
func (x *Execution) CheckTheorem17() error {
	if x.hasRA() {
		return nil
	}
	if !x.HB().Equal(x.HBAlt()) {
		return fmt.Errorf("axiomatic: thm 17 failed: hb != hbinit ∪ hbcom ∪ po\nhb   = %v\nalt  = %v", x.HB(), x.HBAlt())
	}
	return nil
}

// ConsistentAlt is the thm. 18 characterisation: Causality as acyclicity
// of hbcom ∪ poat− ∪ po−at ∪ poRW ∪ rfe ∪ freat, and Coherence as
// irreflexivity of (hbinit ∪ hbcom ∪ pocon); (fr ∪ co).
func (x *Execution) ConsistentAlt() bool {
	hbcom := x.HBCom()
	rfe := x.external(x.RF)
	freat := x.external(x.restrictAtomic(x.FR()))
	causality := hbcom.Union(x.POatL(), x.POatR(), x.PORW(), rfe, freat)
	if !causality.Acyclic() {
		return false
	}
	coherence := x.HBInit().Union(hbcom, x.POcon()).Compose(x.FR().Union(x.CO))
	return coherence.Irreflexive()
}

// CheckTheorem18 verifies that the §6 axioms and the thm. 18 conditions
// agree on this candidate execution. Executions using the RA extension
// are outside the theorem's scope and pass vacuously.
func (x *Execution) CheckTheorem18() error {
	if x.hasRA() {
		return nil
	}
	if x.Consistent() != x.ConsistentAlt() {
		return fmt.Errorf("axiomatic: thm 18 failed: Consistent=%v ConsistentAlt=%v", x.Consistent(), x.ConsistentAlt())
	}
	return nil
}

// FinalMem returns the co-maximal write's value per location.
func (x *Execution) FinalMem() map[prog.Loc]prog.Val {
	out := map[prog.Loc]prog.Val{}
	for _, l := range x.Prog.SortedLocs() {
		best := -1
		for i, e := range x.Events {
			if e.Loc != l || !e.IsWrite {
				continue
			}
			if best == -1 || x.CO.Has(best, i) {
				best = i
			}
		}
		if best >= 0 {
			out[l] = x.Events[best].Val
		}
	}
	return out
}

// Describe renders the execution for diagnostics.
func (x *Execution) Describe() string {
	var b []byte
	for i, e := range x.Events {
		b = append(b, fmt.Sprintf("%2d: %s\n", i, e)...)
	}
	b = append(b, fmt.Sprintf("po=%v\nrf=%v\nco=%v\n", x.PO, x.RF, x.CO)...)
	return string(b)
}

// sortedVals returns a deterministic ordering of a value set.
func sortedVals(set map[prog.Val]bool) []prog.Val {
	out := make([]prog.Val, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
