package axiomatic

// The trace-to-execution mapping |Σ| of §6.1, used to state thms. 15/16:
// every operational trace induces a candidate execution
// (|Σ|, poΣ, rfΣ, coΣ), and thm. 15 says that execution is consistent.
// FromTrace constructs it:
//
//   - poΣ: trace order restricted to same-thread events;
//   - rfΣ: for atomic locations, the most recent write in trace order
//     (or the initial write); for nonatomic and release-acquire
//     locations, the unique write with the same timestamp (or the
//     initial write for timestamp 0);
//   - coΣ: for atomic locations, trace order of writes; for timestamped
//     locations, timestamp order — which §6.1 notes may disagree with
//     trace order.
//
// The tests apply FromTrace to every trace of the litmus programs and
// random programs and check consistency — the executable form of
// thm. 15 at trace granularity (outcome-set equality being the coarser
// check in package explore's tests).

import (
	"fmt"
	"sort"

	"localdrf/internal/explore"
	"localdrf/internal/prog"
	"localdrf/internal/rel"
	"localdrf/internal/ts"
)

// FromTrace builds the candidate execution |Σ| of a complete trace of p.
// The trace must come from package explore's exploration of p (its
// transitions carry the timestamps the construction needs).
func FromTrace(p *prog.Program, trace explore.Trace) (*Execution, error) {
	// Events: initial writes first (as in enumerate), then one event per
	// memory transition, numbered per thread.
	var events []Event
	initIdx := map[prog.Loc]int{}
	for _, l := range p.SortedLocs() {
		initIdx[l] = len(events)
		events = append(events, Event{
			Thread: -1, Loc: l, IsWrite: true, Val: prog.V0,
			Atomic: p.IsAtomic(l), RA: p.IsRA(l),
		})
	}
	perThreadSeq := map[int]int{}
	evOfTransition := make([]int, len(trace))
	for ti, tr := range trace {
		seq := perThreadSeq[tr.Thread]
		perThreadSeq[tr.Thread] = seq + 1
		evOfTransition[ti] = len(events)
		events = append(events, Event{
			Thread: tr.Thread, Seq: seq, Loc: tr.Loc, IsWrite: tr.IsWrite,
			Val: tr.Val, Atomic: p.IsAtomic(tr.Loc), RA: p.IsRA(tr.Loc),
		})
	}
	n := len(events)

	po := rel.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if events[i].Thread >= 0 && events[i].Thread == events[j].Thread && events[i].Seq < events[j].Seq {
				po.Set(i, j)
			}
		}
	}

	rf := rel.New(n)
	co := rel.New(n)

	// Atomic locations: rf from the most recent write in trace order; co
	// is trace order of writes (with the initial write first).
	for _, l := range p.AtomicLocs() {
		lastWrite := initIdx[l]
		var writes []int = []int{initIdx[l]}
		for ti, tr := range trace {
			if tr.Loc != l {
				continue
			}
			ev := evOfTransition[ti]
			if tr.IsWrite {
				writes = append(writes, ev)
				lastWrite = ev
			} else {
				rf.Set(lastWrite, ev)
			}
		}
		for a := 0; a < len(writes); a++ {
			for b := a + 1; b < len(writes); b++ {
				co.Set(writes[a], writes[b])
			}
		}
	}

	// Timestamped locations (nonatomic and RA): rf matches timestamps;
	// co orders writes by timestamp.
	type tsWrite struct {
		ev   int
		time ts.Time
	}
	for _, l := range append(p.NonAtomicLocs(), p.RALocs()...) {
		writes := []tsWrite{{ev: initIdx[l], time: ts.Zero}}
		for ti, tr := range trace {
			if tr.Loc != l || !tr.IsWrite {
				continue
			}
			writes = append(writes, tsWrite{ev: evOfTransition[ti], time: tr.Time})
		}
		for ti, tr := range trace {
			if tr.Loc != l || tr.IsWrite {
				continue
			}
			found := false
			for _, w := range writes {
				if w.time.Equal(tr.Time) {
					rf.Set(w.ev, evOfTransition[ti])
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("axiomatic: read of %s at %v has no matching write in trace", l, tr.Time)
			}
		}
		sort.Slice(writes, func(a, b int) bool { return writes[a].time.Less(writes[b].time) })
		for a := 0; a < len(writes); a++ {
			for b := a + 1; b < len(writes); b++ {
				co.Set(writes[a].ev, writes[b].ev)
			}
		}
	}

	return &Execution{Prog: p, Events: events, PO: po, RF: rf, CO: co}, nil
}

// CheckTheorem15 verifies, for every complete trace of p, that |Σ| is a
// consistent execution — the statement of thm. 15. maxTraces guards the
// enumeration (0 = unbounded).
func CheckTheorem15(p *prog.Program, maxTraces int) error {
	var failure error
	err := explore.Traces(p, explore.Options{}, maxTraces, func(tr explore.Trace) bool {
		x, err := FromTrace(p, tr)
		if err != nil {
			failure = err
			return false
		}
		if err := x.CheckConsistent(); err != nil {
			failure = fmt.Errorf("axiomatic: thm 15 failed on trace %v: %w\n%s", tr, err, x.Describe())
			return false
		}
		// On base-model traces, the §7 recharacterisations must agree
		// with the primary definitions as well.
		if err := x.CheckTheorem17(); err != nil {
			failure = err
			return false
		}
		if err := x.CheckTheorem18(); err != nil {
			failure = err
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return failure
}
