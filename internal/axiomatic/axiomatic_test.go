package axiomatic

import (
	"testing"

	"localdrf/internal/explore"
	"localdrf/internal/prog"
)

func axOutcomes(t *testing.T, p *prog.Program) *explore.Set {
	t.Helper()
	s, err := Outcomes(p)
	if err != nil {
		t.Fatalf("axiomatic.Outcomes(%s): %v", p.Name, err)
	}
	return s
}

func opOutcomes(t *testing.T, p *prog.Program) *explore.Set {
	t.Helper()
	s, err := explore.Outcomes(p, explore.Options{})
	if err != nil {
		t.Fatalf("explore.Outcomes(%s): %v", p.Name, err)
	}
	return s
}

// The empirical statement of thms. 15/16: the operational and axiomatic
// models produce identical outcome sets.
func assertEquivalent(t *testing.T, p *prog.Program) {
	t.Helper()
	op := opOutcomes(t, p)
	ax := axOutcomes(t, p)
	if !op.Equal(ax) {
		t.Errorf("%s: operational and axiomatic outcomes differ\nop-only: %v\nax-only: %v",
			p.Name, op.Minus(ax), ax.Minus(op))
	}
}

func TestEquivalenceSBna(t *testing.T) {
	assertEquivalent(t, prog.NewProgram("SB-na").
		Vars("x", "y").
		Thread("P0").StoreI("x", 1).Load("r0", "y").Done().
		Thread("P1").StoreI("y", 1).Load("r1", "x").Done().
		MustBuild())
}

func TestEquivalenceSBat(t *testing.T) {
	assertEquivalent(t, prog.NewProgram("SB-at").
		Atomics("X", "Y").
		Thread("P0").StoreI("X", 1).Load("r0", "Y").Done().
		Thread("P1").StoreI("Y", 1).Load("r1", "X").Done().
		MustBuild())
}

func TestEquivalenceMP(t *testing.T) {
	assertEquivalent(t, prog.NewProgram("MP").
		Vars("x").
		Atomics("F").
		Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
		Thread("P1").Load("r0", "F").Load("r1", "x").Done().
		MustBuild())
}

func TestEquivalenceLB(t *testing.T) {
	assertEquivalent(t, prog.NewProgram("LB").
		Vars("x", "y").
		Thread("P0").Load("r0", "x").StoreI("y", 1).Done().
		Thread("P1").Load("r1", "y").StoreI("x", 1).Done().
		MustBuild())
}

func TestEquivalenceCoRR(t *testing.T) {
	assertEquivalent(t, prog.NewProgram("CoRR").
		Vars("x").
		Thread("P0").StoreI("x", 1).StoreI("x", 2).Done().
		Thread("P1").Load("r0", "x").Load("r1", "x").Done().
		MustBuild())
}

func TestEquivalenceWW(t *testing.T) {
	assertEquivalent(t, prog.NewProgram("2+2W").
		Vars("x", "y").
		Thread("P0").StoreI("x", 1).StoreI("y", 2).Done().
		Thread("P1").StoreI("y", 1).StoreI("x", 2).Done().
		MustBuild())
}

func TestEquivalenceStoreRegister(t *testing.T) {
	// Stores of computed values exercise the value-domain fixpoint.
	assertEquivalent(t, prog.NewProgram("computed").
		Vars("x", "y").
		Thread("P0").Load("r0", "x").Add("r1", prog.R("r0"), prog.I(1)).StoreR("y", "r1").Done().
		Thread("P1").StoreI("x", 1).Done().
		MustBuild())
}

func TestEquivalenceBranching(t *testing.T) {
	assertEquivalent(t, prog.NewProgram("branch").
		Vars("x", "f").
		Thread("P0").StoreI("f", 1).Done().
		Thread("P1").
		Load("r0", "f").
		JmpZ("r0", "skip").
		StoreI("x", 7).
		Label("skip").
		Done().
		MustBuild())
}

// Causality forbids rf from a write that is hb-after the read: the §9.2
// C++-comparison shape. If the final value of A is 2 then x must be 0.
func TestSection92AtomicStrength(t *testing.T) {
	p := prog.NewProgram("s9.2").
		Vars("b").
		Atomics("A").
		Thread("P0").Load("x", "b").StoreI("A", 1).Done().
		Thread("P1").StoreI("A", 2).StoreI("b", 1).Done().
		MustBuild()
	ax := axOutcomes(t, p)
	bad := func(o explore.Outcome) bool {
		return o.Mem["A"] == 2 && o.Reg(0, "x") == 1
	}
	if ax.Exists(bad) {
		t.Error("A=2 ∧ x=1 must be forbidden (unlike C++ SC atomics)")
	}
	assertEquivalent(t, p)
}

func TestTheorems17And18OnCandidates(t *testing.T) {
	progs := []*prog.Program{
		prog.NewProgram("MP").
			Vars("x").
			Atomics("F").
			Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
			Thread("P1").Load("r0", "F").Load("r1", "x").Done().
			MustBuild(),
		prog.NewProgram("SB-at").
			Atomics("X", "Y").
			Thread("P0").StoreI("X", 1).Load("r0", "Y").Done().
			Thread("P1").StoreI("Y", 1).Load("r1", "X").Done().
			MustBuild(),
		prog.NewProgram("mix").
			Vars("x").
			Atomics("A").
			Thread("P0").StoreI("x", 1).StoreI("A", 1).Load("r0", "x").Done().
			Thread("P1").Load("r1", "A").StoreI("x", 2).Done().
			MustBuild(),
	}
	for _, p := range progs {
		count := 0
		err := EnumerateCandidates(p, func(x *Execution) bool {
			count++
			if err := x.CheckTheorem17(); err != nil {
				t.Fatalf("%s: %v\n%s", p.Name, err, x.Describe())
			}
			if err := x.CheckTheorem18(); err != nil {
				t.Fatalf("%s: %v\n%s", p.Name, err, x.Describe())
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if count == 0 {
			t.Fatalf("%s: no candidate executions enumerated", p.Name)
		}
	}
}

func TestConsistencyAxiomsDirectly(t *testing.T) {
	// Hand-built CoWW violation: two writes by one thread, co inverted.
	p := prog.NewProgram("coww").
		Vars("x").
		Thread("P0").StoreI("x", 1).StoreI("x", 2).Done().
		MustBuild()
	sawInverted := false
	err := EnumerateCandidates(p, func(x *Execution) bool {
		// Find the candidate where co orders W2 before W1 against po.
		var w1, w2 int = -1, -1
		for i, e := range x.Events {
			if e.IsWrite && !e.IsInit() {
				if e.Val == 1 {
					w1 = i
				} else {
					w2 = i
				}
			}
		}
		if x.CO.Has(w2, w1) {
			sawInverted = true
			if x.Consistent() {
				t.Error("co against po within a thread must violate CoWW")
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawInverted {
		t.Fatal("enumeration never produced the inverted-co candidate")
	}
}

func TestCoWRViolationFiltered(t *testing.T) {
	// A thread writes then reads the same location with no interference:
	// reading the initial value is a CoWR violation (the read's rf write
	// is co-before a write that happens-before the read).
	p := prog.NewProgram("cowr").
		Vars("x").
		Thread("P0").StoreI("x", 1).Load("r0", "x").Done().
		MustBuild()
	ax := axOutcomes(t, p)
	if ax.Exists(func(o explore.Outcome) bool { return o.Reg(0, "r0") == 0 }) {
		t.Error("reading own overwritten initial value must be inconsistent (CoWR)")
	}
	if !ax.Exists(func(o explore.Outcome) bool { return o.Reg(0, "r0") == 1 }) {
		t.Error("reading own write must be consistent")
	}
}

func TestValueDomainFixpoint(t *testing.T) {
	// r0 reads x (∈ {0,1}), stores r0+1 to y; the domain must grow to
	// include 2 so that the chained read of y can see it.
	p := prog.NewProgram("chain").
		Vars("x", "y").
		Thread("P0").StoreI("x", 1).Done().
		Thread("P1").Load("r0", "x").Add("r1", prog.R("r0"), prog.I(1)).StoreR("y", "r1").Done().
		Thread("P2").Load("r2", "y").Done().
		MustBuild()
	dom, err := valueDomain(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []prog.Val{0, 1, 2} {
		if !dom["y"][v] {
			t.Errorf("dom[y] = %v missing %d", dom.vals("y"), v)
		}
	}
	if dom["x"][2] {
		t.Errorf("dom[x] = %v should not contain 2 (never written to x)", dom.vals("x"))
	}
	assertEquivalent(t, p)
}

func TestInitialWritesPresent(t *testing.T) {
	p := prog.NewProgram("init").
		Vars("x").
		Thread("P0").Load("r0", "x").Done().
		MustBuild()
	err := Enumerate(p, func(x *Execution) bool {
		inits := 0
		for _, e := range x.Events {
			if e.IsInit() {
				inits++
			}
		}
		if inits != 1 {
			t.Fatalf("initial writes = %d, want 1", inits)
		}
		if x.Regs[0]["r0"] != 0 {
			t.Fatalf("read with only initial write = %d, want 0", x.Regs[0]["r0"])
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFinalMemMatchesCO(t *testing.T) {
	p := prog.NewProgram("fm").
		Vars("x").
		Thread("P0").StoreI("x", 1).Done().
		Thread("P1").StoreI("x", 2).Done().
		MustBuild()
	vals := map[prog.Val]bool{}
	err := Enumerate(p, func(x *Execution) bool {
		vals[x.FinalMem()["x"]] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !vals[1] || !vals[2] {
		t.Errorf("final values seen = %v, want both 1 and 2", vals)
	}
	if vals[0] {
		t.Error("initial value cannot be co-final once overwritten")
	}
}
