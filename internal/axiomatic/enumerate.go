package axiomatic

import (
	"fmt"

	"localdrf/internal/explore"
	"localdrf/internal/prog"
	"localdrf/internal/rel"
)

// localEvent is an event of a single thread's local execution, before
// global numbering.
type localEvent struct {
	loc     prog.Loc
	isWrite bool
	val     prog.Val
}

// localExec is one possible execution of a single thread: its events in
// program order and the resulting register file. Read values are guessed
// from the value domain; rf enumeration later validates the guesses.
type localExec struct {
	events []localEvent
	regs   map[prog.Reg]prog.Val
}

// maxEventsPerThread bounds local executions; the generation rules of
// fig. 2 would happily enumerate unbounded event sequences for looping
// threads, which the consistency check could never catch.
const maxEventsPerThread = 64

// Domain maps each location to the values a read of it may return.
type Domain map[prog.Loc]map[prog.Val]bool

func (d Domain) vals(l prog.Loc) []prog.Val { return sortedVals(d[l]) }

// valueDomain computes, per location, a finite over-approximation of the
// values a read may return: the initial value plus every value a store to
// that location can produce given reads drawn from the domain, iterated
// to a fixpoint. Keeping the domain per-location is essential: a global
// domain fails to converge on chains like y = x+1 (each round would grow
// the read values of x with values only ever written to y).
func valueDomain(p *prog.Program) (Domain, error) {
	dom := Domain{}
	for l := range p.Locs {
		dom[l] = map[prog.Val]bool{prog.V0: true}
	}
	for round := 0; round < 16; round++ {
		grew := false
		execs, err := allLocalExecs(p, dom)
		if err != nil {
			return nil, err
		}
		for _, perThread := range execs {
			for _, le := range perThread {
				for _, ev := range le.events {
					if ev.isWrite && !dom[ev.loc][ev.val] {
						dom[ev.loc][ev.val] = true
						grew = true
					}
				}
			}
		}
		if !grew {
			return dom, nil
		}
	}
	return nil, fmt.Errorf("axiomatic: value domain did not converge (unbounded value feedback loop?)")
}

// allLocalExecs enumerates the local executions of every thread given a
// read-value domain.
func allLocalExecs(p *prog.Program, dom Domain) ([][]localExec, error) {
	out := make([][]localExec, len(p.Threads))
	for i, t := range p.Threads {
		execs, err := threadExecs(t.Code, dom)
		if err != nil {
			return nil, fmt.Errorf("thread %s: %w", t.Name, err)
		}
		out[i] = execs
	}
	return out, nil
}

func threadExecs(code []prog.Instr, dom Domain) ([]localExec, error) {
	var out []localExec
	var walk func(st prog.ThreadState, events []localEvent) error
	walk = func(st prog.ThreadState, events []localEvent) error {
		if len(events) > maxEventsPerThread {
			return fmt.Errorf("axiomatic: more than %d events in one thread", maxEventsPerThread)
		}
		st2, pend, err := prog.StepSilent(code, st, prog.MaxSilentStepsHint)
		if err != nil {
			return err
		}
		switch pend.Kind {
		case prog.OpHalted:
			cp := make([]localEvent, len(events))
			copy(cp, events)
			out = append(out, localExec{events: cp, regs: st2.Regs})
			return nil
		case prog.OpWrite:
			ev := localEvent{loc: pend.Loc, isWrite: true, val: pend.Val}
			return walk(prog.ApplyWrite(st2), append(events, ev))
		case prog.OpRead:
			for _, v := range dom.vals(pend.Loc) {
				ev := localEvent{loc: pend.Loc, isWrite: false, val: v}
				if err := walk(prog.ApplyRead(st2, pend, v), append(events, ev)); err != nil {
					return err
				}
			}
			return nil
		}
		return fmt.Errorf("axiomatic: unknown pending op")
	}
	if err := walk(prog.NewThreadState(), nil); err != nil {
		return nil, err
	}
	return out, nil
}

// Enumerate yields every *consistent* execution of p, invoking visit for
// each. Candidate executions failing the axioms are filtered out. The
// visit callback may return false to stop early.
func Enumerate(p *prog.Program, visit func(*Execution) bool) error {
	return enumerate(p, false, visit)
}

// EnumerateCandidates yields every candidate execution (consistent or
// not) whose rf is value-coherent; used to validate thms. 17/18, which
// quantify over candidate executions.
func EnumerateCandidates(p *prog.Program, visit func(*Execution) bool) error {
	return enumerate(p, true, visit)
}

func enumerate(p *prog.Program, includeInconsistent bool, visit func(*Execution) bool) error {
	dom, err := valueDomain(p)
	if err != nil {
		return err
	}
	perThread, err := allLocalExecs(p, dom)
	if err != nil {
		return err
	}
	// Iterate over the product of thread-local executions.
	choice := make([]int, len(perThread))
	for {
		stop, err := enumerateGraphs(p, perThread, choice, includeInconsistent, visit)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
		// Advance the product counter.
		i := 0
		for ; i < len(choice); i++ {
			choice[i]++
			if choice[i] < len(perThread[i]) {
				break
			}
			choice[i] = 0
		}
		if i == len(choice) {
			return nil
		}
	}
}

// enumerateGraphs builds the event graph for one combination of local
// executions and enumerates rf and co assignments. Returns stop=true when
// the visitor aborts.
func enumerateGraphs(p *prog.Program, perThread [][]localExec, choice []int,
	includeInconsistent bool, visit func(*Execution) bool) (bool, error) {

	// Assemble events: initial writes first, then per-thread in order.
	var events []Event
	for _, l := range p.SortedLocs() {
		events = append(events, Event{
			Thread: -1, Loc: l, IsWrite: true, Val: prog.V0,
			Atomic: p.IsAtomic(l), RA: p.IsRA(l),
		})
	}
	var regs []map[prog.Reg]prog.Val
	for t := range perThread {
		le := perThread[t][choice[t]]
		for n, ev := range le.events {
			events = append(events, Event{
				Thread: t, Seq: n, Loc: ev.loc, IsWrite: ev.isWrite,
				Val: ev.val, Atomic: p.IsAtomic(ev.loc), RA: p.IsRA(ev.loc),
			})
		}
		regs = append(regs, le.regs)
	}
	n := len(events)
	po := rel.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if events[i].Thread >= 0 && events[i].Thread == events[j].Thread && events[i].Seq < events[j].Seq {
				po.Set(i, j)
			}
		}
	}

	// rf candidates per read: writes to the same location with the same
	// value (initial writes included).
	var reads []int
	rfCands := map[int][]int{}
	for i, e := range events {
		if e.IsWrite {
			continue
		}
		reads = append(reads, i)
		for j, w := range events {
			if w.IsWrite && w.Loc == e.Loc && w.Val == e.Val {
				rfCands[i] = append(rfCands[i], j)
			}
		}
		if len(rfCands[i]) == 0 {
			return false, nil // read value unjustifiable; prune this graph
		}
	}

	// co: per location, the initial write first, then a permutation of
	// the location's writes.
	writesByLoc := map[prog.Loc][]int{}
	initByLoc := map[prog.Loc]int{}
	for i, e := range events {
		if !e.IsWrite {
			continue
		}
		if e.IsInit() {
			initByLoc[e.Loc] = i
		} else {
			writesByLoc[e.Loc] = append(writesByLoc[e.Loc], i)
		}
	}
	locs := p.SortedLocs()

	// Enumerate rf assignments.
	rfChoice := make([]int, len(reads))
	for {
		rf := rel.New(n)
		for k, r := range reads {
			rf.Set(rfCands[r][rfChoice[k]], r)
		}
		// Enumerate co as a product of per-location permutations.
		stop, err := enumerateCO(p, events, locs, writesByLoc, initByLoc, po, rf, regs, includeInconsistent, visit)
		if err != nil || stop {
			return stop, err
		}
		// Advance rf counter.
		i := 0
		for ; i < len(rfChoice); i++ {
			rfChoice[i]++
			if rfChoice[i] < len(rfCands[reads[i]]) {
				break
			}
			rfChoice[i] = 0
		}
		if i == len(rfChoice) {
			return false, nil
		}
	}
}

func enumerateCO(p *prog.Program, events []Event, locs []prog.Loc,
	writesByLoc map[prog.Loc][]int, initByLoc map[prog.Loc]int,
	po, rf rel.Rel, regs []map[prog.Reg]prog.Val,
	includeInconsistent bool, visit func(*Execution) bool) (bool, error) {

	n := len(events)
	perLocOrders := make([][][]int, 0, len(locs))
	for _, l := range locs {
		perLocOrders = append(perLocOrders, permutations(writesByLoc[l]))
	}
	choice := make([]int, len(locs))
	for {
		co := rel.New(n)
		for li, l := range locs {
			order := perLocOrders[li][choice[li]]
			chain := append([]int{initByLoc[l]}, order...)
			for a := 0; a < len(chain); a++ {
				for b := a + 1; b < len(chain); b++ {
					co.Set(chain[a], chain[b])
				}
			}
		}
		x := &Execution{Prog: p, Events: events, PO: po, RF: rf, CO: co, Regs: regs}
		if includeInconsistent || x.Consistent() {
			if !visit(x) {
				return true, nil
			}
		}
		i := 0
		for ; i < len(choice); i++ {
			choice[i]++
			if choice[i] < len(perLocOrders[i]) {
				break
			}
			choice[i] = 0
		}
		if i == len(choice) {
			return false, nil
		}
	}
}

// permutations returns all orderings of xs (including the empty one for
// empty input).
func permutations(xs []int) [][]int {
	if len(xs) == 0 {
		return [][]int{{}}
	}
	var out [][]int
	var recur func(cur []int, rest []int)
	recur = func(cur, rest []int) {
		if len(rest) == 0 {
			cp := make([]int, len(cur))
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		for i := range rest {
			next := make([]int, 0, len(rest)-1)
			next = append(next, rest[:i]...)
			next = append(next, rest[i+1:]...)
			recur(append(cur, rest[i]), next)
		}
	}
	recur(nil, xs)
	return out
}

// Outcomes computes the outcome set of all consistent executions, in the
// same format as package explore, enabling the empirical equivalence
// check of thms. 15/16.
func Outcomes(p *prog.Program) (*explore.Set, error) {
	set := explore.NewSet()
	err := Enumerate(p, func(x *Execution) bool {
		o := explore.Outcome{Mem: x.FinalMem()}
		for _, regs := range x.Regs {
			m := map[prog.Reg]prog.Val{}
			for k, v := range regs {
				m[k] = v
			}
			o.Regs = append(o.Regs, m)
		}
		set.Add(o)
		return true
	})
	if err != nil {
		return nil, err
	}
	return set, nil
}
