package axiomatic

import (
	"testing"

	"localdrf/internal/explore"
	"localdrf/internal/prog"
	"localdrf/internal/progsynth"
)

// Thm. 15 at trace granularity: |Σ| is consistent for every trace of the
// core litmus shapes.
func TestTheorem15OnLitmusShapes(t *testing.T) {
	progs := []*prog.Program{
		prog.NewProgram("SB").
			Vars("x", "y").
			Thread("P0").StoreI("x", 1).Load("r0", "y").Done().
			Thread("P1").StoreI("y", 1).Load("r1", "x").Done().
			MustBuild(),
		prog.NewProgram("MP").
			Vars("x").
			Atomics("F").
			Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
			Thread("P1").Load("r0", "F").Load("r1", "x").Done().
			MustBuild(),
		prog.NewProgram("CoRR").
			Vars("x").
			Thread("P0").StoreI("x", 1).StoreI("x", 2).Done().
			Thread("P1").Load("r0", "x").Load("r1", "x").Done().
			MustBuild(),
		prog.NewProgram("MP+ra").
			Vars("x").
			RAs("F").
			Thread("P0").StoreI("x", 1).StoreI("F", 1).Done().
			Thread("P1").Load("r0", "F").Load("r1", "x").Done().
			MustBuild(),
	}
	for _, p := range progs {
		if err := CheckTheorem15(p, 0); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// Thm. 15 on random programs (including branches, register stores and
// mixed atomicity).
func TestTheorem15OnRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("trace sweep skipped in -short mode")
	}
	for seed := int64(100); seed < 170; seed++ {
		p := progsynth.Random(seed, progsynth.Config{})
		if err := CheckTheorem15(p, 50_000); err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, p)
		}
	}
}

// The construction details of §6.1: coΣ on nonatomic locations follows
// timestamps even when that disagrees with trace order.
func TestFromTraceCoFollowsTimestamps(t *testing.T) {
	p := prog.NewProgram("co-ts").
		Vars("x").
		Thread("P0").StoreI("x", 1).Done().
		Thread("P1").StoreI("x", 2).Done().
		MustBuild()
	sawInverted := false
	err := explore.Traces(p, explore.Options{}, 0, func(tr explore.Trace) bool {
		x, err := FromTrace(p, tr)
		if err != nil {
			t.Fatal(err)
		}
		// Identify the two non-initial writes in trace order.
		var first, second = -1, -1
		for i, e := range x.Events {
			if e.IsInit() || !e.IsWrite {
				continue
			}
			if first == -1 {
				first = i
			} else {
				second = i
			}
		}
		// Trace index order of events equals event index order here; if
		// the second write (in trace order) took the earlier timestamp,
		// co must invert.
		if tr[0].Time.Cmp(tr[1].Time) > 0 {
			sawInverted = true
			// Event order: first event corresponds to tr[0].
			if !x.CO.Has(second, first) {
				t.Fatal("co does not follow timestamps")
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawInverted {
		t.Fatal("exploration never produced a timestamp-inverted write pair")
	}
}

// rfΣ for atomic locations is "most recent write in trace order".
func TestFromTraceAtomicRF(t *testing.T) {
	p := prog.NewProgram("at-rf").
		Atomics("A").
		Thread("P0").StoreI("A", 1).Done().
		Thread("P1").Load("r0", "A").Done().
		MustBuild()
	err := explore.Traces(p, explore.Options{}, 0, func(tr explore.Trace) bool {
		x, err := FromTrace(p, tr)
		if err != nil {
			t.Fatal(err)
		}
		var rd, wr, iw = -1, -1, -1
		for i, e := range x.Events {
			switch {
			case e.IsInit():
				iw = i
			case e.IsWrite:
				wr = i
			default:
				rd = i
			}
		}
		wantSrc := iw
		// If the write came first in the trace and the read returned 1,
		// the write is the source.
		if tr[len(tr)-1].Thread == 1 && tr[len(tr)-1].Val == 1 {
			wantSrc = wr
		}
		if !x.RF.Has(wantSrc, rd) {
			t.Fatalf("rf wrong: want %d→%d in %v", wantSrc, rd, x.RF)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}
