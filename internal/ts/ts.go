// Package ts implements exact rational timestamps.
//
// The operational model of Dolan et al. (fig. 1) draws timestamps from Q:
// totally ordered but dense, so that a write may always be placed between
// any two existing writes (Write-NA only requires the new timestamp to be
// later than the writing thread's frontier, not later than every entry in
// the history). Exact rationals keep that density without floating-point
// surprises.
package ts

import (
	"fmt"
	"math"
)

// Time is a rational timestamp num/den, always kept in lowest terms with
// den > 0. The zero value is the timestamp 0, which the paper assigns to
// the initial write of every location.
type Time struct {
	num int64
	den int64
}

// Zero is the timestamp of the initial writes (§3.1).
var Zero = Time{0, 1}

// New returns the rational num/den. It panics if den is zero; timestamps
// are constructed by the library from small integers, so overflow of the
// normalised form indicates a bug rather than an input error.
func New(num, den int64) Time {
	if den == 0 {
		panic("ts: zero denominator")
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := gcd(abs(num), den)
	if g > 1 {
		num /= g
		den /= g
	}
	return Time{num, den}
}

// FromInt returns the integer timestamp n.
func FromInt(n int64) Time { return Time{n, 1} }

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// Num returns the normalised numerator.
func (t Time) Num() int64 { return t.norm().num }

// Fraction returns the normalised numerator and denominator in a single
// call — the hot-path accessor for code that needs both (one norm instead
// of the two that separate Num/Den calls perform).
func (t Time) Fraction() (num, den int64) {
	n := t.norm()
	return n.num, n.den
}

// Den returns the normalised denominator (always positive).
func (t Time) Den() int64 {
	n := t.norm()
	return n.den
}

// norm maps the zero value onto 0/1 so that methods work on uninitialised
// Times.
func (t Time) norm() Time {
	if t.den == 0 {
		return Time{0, 1}
	}
	return t
}

// Cmp compares two timestamps, returning -1, 0 or +1. Comparison is by
// cross-multiplication; the library only ever manufactures timestamps with
// small numerators and denominators (bounded by the number of writes in an
// execution), so the products stay far from overflow. A defensive check
// panics if that assumption is ever violated.
func (t Time) Cmp(u Time) int {
	a, b := t.norm(), u.norm()
	l := mulCheck(a.num, b.den)
	r := mulCheck(b.num, a.den)
	switch {
	case l < r:
		return -1
	case l > r:
		return 1
	default:
		return 0
	}
}

func mulCheck(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	c := a * b
	if c/b != a {
		panic("ts: timestamp overflow")
	}
	return c
}

// Less reports whether t < u.
func (t Time) Less(u Time) bool { return t.Cmp(u) < 0 }

// LessEq reports whether t <= u.
func (t Time) LessEq(u Time) bool { return t.Cmp(u) <= 0 }

// Equal reports whether t == u as rationals.
func (t Time) Equal(u Time) bool { return t.Cmp(u) == 0 }

// Max returns the later of t and u; it is the per-location operation of
// the frontier join F1 ⊔ F2 (fig. 1).
func (t Time) Max(u Time) Time {
	if t.Cmp(u) >= 0 {
		return t.norm()
	}
	return u.norm()
}

// Between returns a timestamp strictly between t and u, which must satisfy
// t < u. Density of Q guarantees existence; the midpoint is used.
func Between(t, u Time) Time {
	if !t.Less(u) {
		panic(fmt.Sprintf("ts: Between(%v, %v) requires t < u", t, u))
	}
	a, b := t.norm(), u.norm()
	// (a + b) / 2 = (a.num*b.den + b.num*a.den) / (2*a.den*b.den)
	num := mulCheck(a.num, b.den) + mulCheck(b.num, a.den)
	den := mulCheck(2, mulCheck(a.den, b.den))
	return New(num, den)
}

// After returns a timestamp strictly greater than t (t+1).
func After(t Time) Time {
	n := t.norm()
	return New(n.num+n.den, n.den)
}

// String renders the timestamp as "n" or "n/d".
func (t Time) String() string {
	n := t.norm()
	if n.den == 1 {
		return fmt.Sprintf("%d", n.num)
	}
	return fmt.Sprintf("%d/%d", n.num, n.den)
}

// Float returns a float64 approximation, for diagnostics only.
func (t Time) Float() float64 {
	n := t.norm()
	if n.den == 0 {
		return math.NaN()
	}
	return float64(n.num) / float64(n.den)
}
