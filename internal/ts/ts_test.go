package ts

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var z Time
	if !z.Equal(Zero) {
		t.Fatalf("zero value = %v, want 0", z)
	}
	if z.Num() != 0 || z.Den() != 1 {
		t.Fatalf("zero value num/den = %d/%d", z.Num(), z.Den())
	}
}

func TestNewNormalises(t *testing.T) {
	cases := []struct {
		num, den     int64
		wantN, wantD int64
	}{
		{1, 2, 1, 2},
		{2, 4, 1, 2},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{0, 5, 0, 1},
		{6, 3, 2, 1},
	}
	for _, c := range cases {
		got := New(c.num, c.den)
		if got.Num() != c.wantN || got.Den() != c.wantD {
			t.Errorf("New(%d,%d) = %d/%d, want %d/%d", c.num, c.den, got.Num(), got.Den(), c.wantN, c.wantD)
		}
	}
}

func TestNewPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1, 0) did not panic")
		}
	}()
	New(1, 0)
}

func TestCmp(t *testing.T) {
	cases := []struct {
		a, b Time
		want int
	}{
		{New(1, 2), New(2, 3), -1},
		{New(2, 3), New(1, 2), 1},
		{New(1, 2), New(2, 4), 0},
		{New(-1, 2), New(1, 2), -1},
		{Zero, New(1, 1000), -1},
		{FromInt(3), FromInt(3), 0},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBetween(t *testing.T) {
	a, b := New(1, 3), New(1, 2)
	m := Between(a, b)
	if !a.Less(m) || !m.Less(b) {
		t.Fatalf("Between(%v, %v) = %v not strictly inside", a, b, m)
	}
}

func TestBetweenPanicsWhenNotLess(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Between(1, 1) did not panic")
		}
	}()
	Between(FromInt(1), FromInt(1))
}

func TestAfter(t *testing.T) {
	for _, v := range []Time{Zero, New(7, 3), New(-5, 2)} {
		if !v.Less(After(v)) {
			t.Errorf("After(%v) = %v not greater", v, After(v))
		}
	}
}

func TestMax(t *testing.T) {
	a, b := New(1, 3), New(1, 2)
	if got := a.Max(b); !got.Equal(b) {
		t.Errorf("Max(%v,%v) = %v, want %v", a, b, got, b)
	}
	if got := b.Max(a); !got.Equal(b) {
		t.Errorf("Max(%v,%v) = %v, want %v", b, a, got, b)
	}
}

func TestString(t *testing.T) {
	if s := FromInt(4).String(); s != "4" {
		t.Errorf("String() = %q, want 4", s)
	}
	if s := New(3, 2).String(); s != "3/2" {
		t.Errorf("String() = %q, want 3/2", s)
	}
}

// randTime generates small rationals so that Between chains stay in range.
func randTime(r *rand.Rand) Time {
	return New(r.Int63n(41)-20, r.Int63n(12)+1)
}

func TestQuickOrderTotal(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(an, bn int16, ad, bd uint8) bool {
		a := New(int64(an), int64(ad)+1)
		b := New(int64(bn), int64(bd)+1)
		c := a.Cmp(b)
		// Antisymmetry and consistency of derived predicates.
		if c != -b.Cmp(a) {
			return false
		}
		if a.Less(b) != (c < 0) || a.LessEq(b) != (c <= 0) || a.Equal(b) != (c == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickBetweenDense(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := randTime(r), randTime(r)
		if a.Equal(b) {
			continue
		}
		if b.Less(a) {
			a, b = b, a
		}
		m := Between(a, b)
		if !a.Less(m) || !m.Less(b) {
			t.Fatalf("Between(%v,%v) = %v outside interval", a, b, m)
		}
	}
}

func TestQuickMaxIsJoin(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(an, bn, cn int16) bool {
		a, b, c := FromInt(int64(an)), FromInt(int64(bn)), FromInt(int64(cn))
		// Commutative, associative, idempotent, upper bound.
		if !a.Max(b).Equal(b.Max(a)) {
			return false
		}
		if !a.Max(b.Max(c)).Equal(a.Max(b).Max(c)) {
			return false
		}
		if !a.Max(a).Equal(a) {
			return false
		}
		j := a.Max(b)
		return a.LessEq(j) && b.LessEq(j)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Deep Between chains are what exploration produces when writes keep landing
// in the same gap; check density survives many iterations.
func TestBetweenChain(t *testing.T) {
	lo, hi := Zero, FromInt(1)
	for i := 0; i < 40; i++ {
		m := Between(lo, hi)
		if !lo.Less(m) || !m.Less(hi) {
			t.Fatalf("chain step %d: %v not in (%v,%v)", i, m, lo, hi)
		}
		hi = m
	}
}

// Fraction must agree with Num/Den (one normalisation instead of two —
// the RA-message map-key hot path in internal/monitor).
func TestFraction(t *testing.T) {
	for _, tc := range []Time{Zero, {}, FromInt(7), New(-6, 4), New(3, -9), New(10, 2)} {
		num, den := tc.Fraction()
		if num != tc.Num() || den != tc.Den() {
			t.Fatalf("Fraction(%v) = %d/%d, want %d/%d", tc, num, den, tc.Num(), tc.Den())
		}
		if den <= 0 {
			t.Fatalf("Fraction(%v): non-positive denominator %d", tc, den)
		}
	}
}

// BenchmarkFraction pins the point of the single-norm accessor against
// the separate Num/Den pair it replaced.
func BenchmarkFraction(b *testing.B) {
	t := New(35, 14)
	b.Run("fraction", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			num, den := t.Fraction()
			_, _ = num, den
		}
	})
	b.Run("num-den", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			num, den := t.Num(), t.Den()
			_, _ = num, den
		}
	})
}
