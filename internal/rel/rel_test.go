package rel

import (
	"math/rand"
	"testing"
)

func fromPairs(n int, pairs ...[2]int) Rel {
	r := New(n)
	for _, p := range pairs {
		r.Set(p[0], p[1])
	}
	return r
}

func TestSetHasUnset(t *testing.T) {
	r := New(3)
	if r.Has(0, 1) {
		t.Fatal("empty relation has pair")
	}
	r.Set(0, 1)
	if !r.Has(0, 1) {
		t.Fatal("Set did not add pair")
	}
	r.Unset(0, 1)
	if r.Has(0, 1) {
		t.Fatal("Unset did not remove pair")
	}
}

func TestUnionIntersectMinus(t *testing.T) {
	a := fromPairs(3, [2]int{0, 1}, [2]int{1, 2})
	b := fromPairs(3, [2]int{1, 2}, [2]int{2, 0})
	u := a.Union(b)
	for _, p := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if !u.Has(p[0], p[1]) {
			t.Errorf("union missing %v", p)
		}
	}
	i := a.Intersect(b)
	if !i.Equal(fromPairs(3, [2]int{1, 2})) {
		t.Errorf("intersect = %v", i)
	}
	m := a.Minus(b)
	if !m.Equal(fromPairs(3, [2]int{0, 1})) {
		t.Errorf("minus = %v", m)
	}
}

func TestCompose(t *testing.T) {
	a := fromPairs(4, [2]int{0, 1}, [2]int{2, 3})
	b := fromPairs(4, [2]int{1, 2})
	c := a.Compose(b)
	if !c.Equal(fromPairs(4, [2]int{0, 2})) {
		t.Errorf("compose = %v, want {0→2}", c)
	}
}

func TestComposeWithIdentity(t *testing.T) {
	a := fromPairs(3, [2]int{0, 2}, [2]int{1, 0})
	id := Identity(3)
	if !a.Compose(id).Equal(a) || !id.Compose(a).Equal(a) {
		t.Error("identity is not neutral for composition")
	}
}

func TestInverse(t *testing.T) {
	a := fromPairs(3, [2]int{0, 1}, [2]int{1, 2})
	inv := a.Inverse()
	if !inv.Equal(fromPairs(3, [2]int{1, 0}, [2]int{2, 1})) {
		t.Errorf("inverse = %v", inv)
	}
	if !inv.Inverse().Equal(a) {
		t.Error("double inverse is not identity")
	}
}

func TestTransitiveClosure(t *testing.T) {
	a := fromPairs(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})
	c := a.TransitiveClosure()
	want := fromPairs(4,
		[2]int{0, 1}, [2]int{0, 2}, [2]int{0, 3},
		[2]int{1, 2}, [2]int{1, 3}, [2]int{2, 3})
	if !c.Equal(want) {
		t.Errorf("closure = %v, want %v", c, want)
	}
}

func TestAcyclic(t *testing.T) {
	chain := fromPairs(3, [2]int{0, 1}, [2]int{1, 2})
	if !chain.Acyclic() {
		t.Error("chain reported cyclic")
	}
	loop := fromPairs(3, [2]int{0, 1}, [2]int{1, 0})
	if loop.Acyclic() {
		t.Error("2-cycle reported acyclic")
	}
	self := fromPairs(3, [2]int{2, 2})
	if self.Acyclic() {
		t.Error("self-loop reported acyclic")
	}
}

func TestIrreflexive(t *testing.T) {
	if !New(3).Irreflexive() {
		t.Error("empty relation not irreflexive")
	}
	if Identity(3).Irreflexive() {
		t.Error("identity reported irreflexive")
	}
}

func TestRestrict(t *testing.T) {
	a := fromPairs(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})
	even := func(i int) bool { return i%2 == 0 }
	odd := func(i int) bool { return i%2 == 1 }
	r := a.Restrict(even, odd)
	if !r.Equal(fromPairs(4, [2]int{0, 1}, [2]int{2, 3})) {
		t.Errorf("restrict = %v", r)
	}
}

func TestTotalOn(t *testing.T) {
	writes := func(i int) bool { return i < 3 }
	total := fromPairs(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{0, 2})
	if !total.TotalOn(writes) {
		t.Error("strict total order rejected")
	}
	partial := fromPairs(4, [2]int{0, 1})
	if partial.TotalOn(writes) {
		t.Error("partial order accepted as total")
	}
	refl := total.Clone()
	refl.Set(1, 1)
	if refl.TotalOn(writes) {
		t.Error("reflexive order accepted as strict")
	}
}

func TestSubsetOf(t *testing.T) {
	a := fromPairs(3, [2]int{0, 1})
	b := fromPairs(3, [2]int{0, 1}, [2]int{1, 2})
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("SubsetOf wrong")
	}
}

func randRel(r *rand.Rand, n int, density float64) Rel {
	out := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Float64() < density {
				out.Set(i, j)
			}
		}
	}
	return out
}

// Property: transitive closure is idempotent and contains the original.
func TestClosureProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := randRel(r, 6, 0.2)
		c := a.TransitiveClosure()
		if !a.SubsetOf(c) {
			t.Fatal("closure does not contain original")
		}
		if !c.TransitiveClosure().Equal(c) {
			t.Fatal("closure not idempotent")
		}
		// Closure is transitive: c;c ⊆ c.
		if !c.Compose(c).SubsetOf(c) {
			t.Fatal("closure not transitive")
		}
	}
}

// Property: R1?;R2 = (R1;R2) ∪ R2, the identity stated in §7 of the paper.
func TestPaperIdentityReflexiveCompose(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		r1 := randRel(r, 5, 0.25)
		r2 := randRel(r, 5, 0.25)
		left := r1.ReflexiveClosure().Compose(r2)
		right := r1.Compose(r2).Union(r2)
		if !left.Equal(right) {
			t.Fatalf("R1?;R2 != (R1;R2) ∪ R2 for R1=%v R2=%v", r1, r2)
		}
	}
}

// Property: acyclicity is equivalent to existence of a topological order.
func TestAcyclicMatchesTopoSort(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		a := randRel(r, 6, 0.15)
		want := topoSortable(a)
		if got := a.Acyclic(); got != want {
			t.Fatalf("Acyclic = %v, topo-sortable = %v for %v", got, want, a)
		}
	}
}

func topoSortable(a Rel) bool {
	n := a.Size()
	indeg := make([]int, n)
	for _, p := range a.Pairs() {
		indeg[p[1]]++
	}
	removed := make([]bool, n)
	for count := 0; count < n; count++ {
		found := -1
		for i := 0; i < n; i++ {
			if !removed[i] && indeg[i] == 0 {
				found = i
				break
			}
		}
		if found == -1 {
			return false
		}
		removed[found] = true
		for j := 0; j < n; j++ {
			if a.Has(found, j) {
				indeg[j]--
			}
		}
	}
	return true
}
