// Package rel implements finite binary relations over event indices.
//
// The axiomatic semantics (§6–7 of the paper) is phrased entirely in terms
// of binary relations on events — po, rf, co, fr, hb and the hardware
// relations ghb and ob — combined with union, composition, transitive
// closure and acyclicity checks. Executions are small (litmus-test sized),
// so a dense boolean-matrix representation is simplest and fast enough.
package rel

import "strings"

// Rel is a binary relation over {0, …, n-1}.
type Rel struct {
	n int
	m []bool // m[i*n+j] == true iff i R j
}

// New returns the empty relation over n elements.
func New(n int) Rel {
	return Rel{n: n, m: make([]bool, n*n)}
}

// Identity returns the identity relation over n elements.
func Identity(n int) Rel {
	r := New(n)
	for i := 0; i < n; i++ {
		r.Set(i, i)
	}
	return r
}

// Size returns the number of elements the relation is defined over.
func (r Rel) Size() int { return r.n }

// Set adds the pair (i, j).
func (r Rel) Set(i, j int) { r.m[i*r.n+j] = true }

// Unset removes the pair (i, j).
func (r Rel) Unset(i, j int) { r.m[i*r.n+j] = false }

// Has reports whether i R j.
func (r Rel) Has(i, j int) bool { return r.m[i*r.n+j] }

// Clone returns an independent copy of r.
func (r Rel) Clone() Rel {
	c := New(r.n)
	copy(c.m, r.m)
	return c
}

// Union returns r ∪ s. Both must be over the same element count.
func (r Rel) Union(ss ...Rel) Rel {
	out := r.Clone()
	for _, s := range ss {
		if s.n != r.n {
			panic("rel: size mismatch in Union")
		}
		for k, v := range s.m {
			if v {
				out.m[k] = true
			}
		}
	}
	return out
}

// Intersect returns r ∩ s.
func (r Rel) Intersect(s Rel) Rel {
	if s.n != r.n {
		panic("rel: size mismatch in Intersect")
	}
	out := New(r.n)
	for k := range r.m {
		out.m[k] = r.m[k] && s.m[k]
	}
	return out
}

// Minus returns r \ s.
func (r Rel) Minus(s Rel) Rel {
	if s.n != r.n {
		panic("rel: size mismatch in Minus")
	}
	out := New(r.n)
	for k := range r.m {
		out.m[k] = r.m[k] && !s.m[k]
	}
	return out
}

// Compose returns the relational composition r ; s
// (i (r;s) j iff ∃k. i r k ∧ k s j), the paper's R1;R2 notation.
func (r Rel) Compose(s Rel) Rel {
	if s.n != r.n {
		panic("rel: size mismatch in Compose")
	}
	out := New(r.n)
	for i := 0; i < r.n; i++ {
		for k := 0; k < r.n; k++ {
			if !r.Has(i, k) {
				continue
			}
			for j := 0; j < r.n; j++ {
				if s.Has(k, j) {
					out.Set(i, j)
				}
			}
		}
	}
	return out
}

// Inverse returns R⁻¹, the transpose.
func (r Rel) Inverse() Rel {
	out := New(r.n)
	for i := 0; i < r.n; i++ {
		for j := 0; j < r.n; j++ {
			if r.Has(i, j) {
				out.Set(j, i)
			}
		}
	}
	return out
}

// TransitiveClosure returns R⁺ via Floyd–Warshall.
func (r Rel) TransitiveClosure() Rel {
	out := r.Clone()
	for k := 0; k < r.n; k++ {
		for i := 0; i < r.n; i++ {
			if !out.Has(i, k) {
				continue
			}
			for j := 0; j < r.n; j++ {
				if out.Has(k, j) {
					out.Set(i, j)
				}
			}
		}
	}
	return out
}

// ReflexiveClosure returns R? = R ∪ 1.
func (r Rel) ReflexiveClosure() Rel {
	return r.Union(Identity(r.n))
}

// Irreflexive reports whether no element relates to itself.
func (r Rel) Irreflexive() bool {
	for i := 0; i < r.n; i++ {
		if r.Has(i, i) {
			return false
		}
	}
	return true
}

// Acyclic reports whether the relation, viewed as a directed graph, has no
// cycles (equivalently, its transitive closure is irreflexive).
func (r Rel) Acyclic() bool {
	return r.TransitiveClosure().Irreflexive()
}

// Empty reports whether the relation has no pairs.
func (r Rel) Empty() bool {
	for _, v := range r.m {
		if v {
			return false
		}
	}
	return true
}

// Restrict keeps only pairs (i, j) with from(i) and to(j). It implements
// the paper's set-product intersections such as po ∩ (W × WA).
func (r Rel) Restrict(from, to func(int) bool) Rel {
	out := New(r.n)
	for i := 0; i < r.n; i++ {
		if !from(i) {
			continue
		}
		for j := 0; j < r.n; j++ {
			if r.Has(i, j) && to(j) {
				out.Set(i, j)
			}
		}
	}
	return out
}

// Filter keeps only pairs satisfying keep.
func (r Rel) Filter(keep func(i, j int) bool) Rel {
	out := New(r.n)
	for i := 0; i < r.n; i++ {
		for j := 0; j < r.n; j++ {
			if r.Has(i, j) && keep(i, j) {
				out.Set(i, j)
			}
		}
	}
	return out
}

// Pairs returns all pairs in the relation in row-major order.
func (r Rel) Pairs() [][2]int {
	var out [][2]int
	for i := 0; i < r.n; i++ {
		for j := 0; j < r.n; j++ {
			if r.Has(i, j) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// Equal reports whether two relations contain exactly the same pairs.
func (r Rel) Equal(s Rel) bool {
	if r.n != s.n {
		return false
	}
	for k := range r.m {
		if r.m[k] != s.m[k] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every pair of r is in s.
func (r Rel) SubsetOf(s Rel) bool {
	if r.n != s.n {
		return false
	}
	for k := range r.m {
		if r.m[k] && !s.m[k] {
			return false
		}
	}
	return true
}

// TotalOn reports whether r is a strict total order on the elements
// selected by in: irreflexive, and any two distinct selected elements are
// related one way or the other. Used for the co axiom on writes per
// location.
func (r Rel) TotalOn(in func(int) bool) bool {
	for i := 0; i < r.n; i++ {
		if !in(i) {
			continue
		}
		if r.Has(i, i) {
			return false
		}
		for j := 0; j < r.n; j++ {
			if i == j || !in(j) {
				continue
			}
			if !r.Has(i, j) && !r.Has(j, i) {
				return false
			}
		}
	}
	return true
}

// String renders the pairs, for test failure messages.
func (r Rel) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, p := range r.Pairs() {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(itoa(p[0]))
		b.WriteString("→")
		b.WriteString(itoa(p[1]))
	}
	b.WriteByte('}')
	return b.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
