package monitor

// Tests for the telemetry layer (obs.go): published values must agree
// with the typed accessors, stats reads must be race-free against a
// live pipeline (run under `go test -race`; CI does), and the
// instrumentation must never perturb reports or snapshot bytes.

import (
	"bytes"
	"sync"
	"testing"

	"localdrf/internal/race"
)

// kindCounterNames mirrors kindNames for reading snapshots back.
var kindCounterNames = []string{
	"read_na", "write_na", "read_at", "write_at", "read_ra", "write_ra", "halt",
}

func TestMonitorStats(t *testing.T) {
	decls, events := raWorkload(6, 16, 50_000, 17)
	m := New(6, decls)
	m.SetGCInterval(512)
	m.StepBatch(events)
	s := m.Stats()

	if got := s.Counter("monitor.events"); got != uint64(len(events)) {
		t.Fatalf("monitor.events = %d, want %d", got, len(events))
	}
	var kindSum uint64
	for _, k := range kindCounterNames {
		kindSum += s.Counter("monitor.events." + k)
	}
	if kindSum != uint64(len(events)) {
		t.Fatalf("per-kind counters sum to %d, want %d", kindSum, len(events))
	}
	if got := s.Counter("monitor.races"); got != uint64(m.RaceCount()) {
		t.Fatalf("monitor.races = %d, want %d", got, m.RaceCount())
	}
	sweeps := s.Counter("monitor.gc.sweeps")
	if sweeps == 0 {
		t.Fatalf("no GC sweeps recorded over %d events at interval 512", len(events))
	}
	if p, u := s.Counter("monitor.gc.sweeps_productive"), s.Counter("monitor.gc.sweeps_unproductive"); p+u != sweeps {
		t.Fatalf("productive %d + unproductive %d != sweeps %d", p, u, sweeps)
	}
	rs := m.RAStats()
	if s.Gauge("monitor.ra.live") != int64(rs.Live) ||
		s.Gauge("monitor.ra.peak") != int64(rs.Peak) ||
		s.Counter("monitor.ra.collected") != rs.Collected {
		t.Fatalf("RA cells (%d/%d/%d) disagree with RAStats %+v",
			s.Gauge("monitor.ra.live"), s.Gauge("monitor.ra.peak"), s.Counter("monitor.ra.collected"), rs)
	}
	if got := s.Gauge("monitor.escalated_vectors"); got != int64(m.EscalatedVectors()) {
		t.Fatalf("monitor.escalated_vectors = %d, want %d", got, m.EscalatedVectors())
	}
	if s.Counter("monitor.escalations")-s.Counter("monitor.demotions") != uint64(m.EscalatedVectors()) {
		t.Fatalf("escalations %d - demotions %d != live %d",
			s.Counter("monitor.escalations"), s.Counter("monitor.demotions"), m.EscalatedVectors())
	}
	if got := s.Gauge("monitor.gc.interval"); got != 512 {
		t.Fatalf("monitor.gc.interval = %d, want 512", got)
	}

	m.Reset()
	s = m.Obs().Snapshot()
	if s.Counter("monitor.events") != 0 || s.Counter("monitor.races") != 0 || s.Gauge("monitor.ra.live") != 0 {
		t.Fatalf("Reset did not republish zeroed cells: %+v", s.Counters)
	}
}

func TestPipelineStats(t *testing.T) {
	decls, events := raWorkload(6, 16, 60_000, 23)
	var naCount uint64
	for _, e := range events {
		if e.Kind == ReadNA || e.Kind == WriteNA {
			naCount++
		}
	}
	p := NewPipeline(6, decls, PipelineConfig{Shards: 4, BatchSize: 256, GCInterval: 128, Rebalance: true})
	p.StepBatch(events)
	s := p.Stats()

	if got := s.Counter("monitor.events"); got != uint64(len(events)) {
		t.Fatalf("monitor.events = %d, want %d", got, len(events))
	}
	if got := s.Counter("pipeline.routed_records"); got != naCount {
		t.Fatalf("pipeline.routed_records = %d, want %d", got, naCount)
	}
	var backSum uint64
	for _, v := range s.Vectors["pipeline.backend_records"] {
		backSum += v
	}
	if backSum != naCount {
		t.Fatalf("backend_records sum = %d, want %d (vec %v)", backSum, naCount, s.Vectors["pipeline.backend_records"])
	}
	// Stats quiesced, so every enqueued record was flushed: the batch
	// histogram's mass is exactly the record total.
	bh := s.Histograms["pipeline.batch_records"]
	wantRecs := naCount + s.Counter("pipeline.delta_records") + s.Counter("pipeline.min_records")
	if bh.Count == 0 || bh.Sum != wantRecs {
		t.Fatalf("batch hist count=%d sum=%d, want sum %d", bh.Count, bh.Sum, wantRecs)
	}
	if s.Counter("pipeline.quiesces") == 0 {
		t.Fatalf("no quiesces recorded (Stats itself quiesces)")
	}
	if got, want := s.Counter("pipeline.migrations"), p.Migrations(); got != want {
		t.Fatalf("pipeline.migrations = %d, Migrations() = %d", got, want)
	}
	loads := p.BackendLoads()
	var loadSum uint64
	for _, v := range loads {
		loadSum += v
	}
	if loadSum != naCount {
		t.Fatalf("BackendLoads sum = %d, want %d", loadSum, naCount)
	}

	p.Finish()
	s = p.Stats()
	if got := s.Counter("monitor.races"); got != uint64(p.RaceCount()) {
		t.Fatalf("monitor.races = %d after Finish, want %d", got, p.RaceCount())
	}
	var raceSum uint64
	for _, v := range s.Vectors["pipeline.backend_races"] {
		raceSum += v
	}
	if raceSum != uint64(p.RaceCount()) {
		t.Fatalf("backend_races sum = %d, want %d", raceSum, p.RaceCount())
	}
}

// TestStatsReadsRaceFreeUnderIngest hammers Obs().Snapshot() from
// reader goroutines while the feeder ingests and interleaves exact
// Stats() calls — the /stats endpoint's access pattern. Meaningful
// under -race; also asserts reader-observed counters are monotonic and
// that the reports are unperturbed.
func TestStatsReadsRaceFreeUnderIngest(t *testing.T) {
	decls, events := raWorkload(6, 16, 120_000, 41)
	ref := New(6, decls)
	ref.StepBatch(events)
	want := ref.Reports()

	p := NewPipeline(6, decls, PipelineConfig{Shards: 4, BatchSize: 64, GCInterval: 64, Rebalance: true})
	reg := p.Obs()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := reg.Snapshot()
				if ev := s.Counter("monitor.events"); ev < prev {
					t.Errorf("monitor.events went backwards: %d after %d", ev, prev)
					return
				} else {
					prev = ev
				}
			}
		}()
	}
	for i := 0; i < len(events); {
		n := 1 + (i*13)%4999
		if i+n > len(events) {
			n = len(events) - i
		}
		p.StepBatch(events[i : i+n])
		i += n
		if i%30_000 < n {
			if s := p.Stats(); s.Counter("monitor.events") != uint64(i) {
				t.Fatalf("mid-stream Stats events = %d, want %d", s.Counter("monitor.events"), i)
			}
		}
	}
	close(stop)
	wg.Wait()
	if got := p.Finish(); !race.ReportsEqual(got, want) {
		t.Fatalf("reports perturbed by concurrent stats reads:\ngot  %v\nwant %v", got, want)
	}
}

// TestSnapshotMetrics: the codec histograms record exact sizes.
func TestSnapshotMetrics(t *testing.T) {
	decls, events := raWorkload(5, 12, 20_000, 7)
	m := New(5, decls)
	m.StepBatch(events)
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if h := s.Histograms["monitor.snapshot.encode_bytes"]; h.Count != 1 || h.Sum != uint64(buf.Len()) {
		t.Fatalf("encode_bytes count=%d sum=%d, want 1/%d", h.Count, h.Sum, buf.Len())
	}
	if h := s.Histograms["monitor.snapshot.encode_ns"]; h.Count != 1 {
		t.Fatalf("encode_ns count=%d, want 1", h.Count)
	}
	m2, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s2 := m2.Stats()
	if h := s2.Histograms["monitor.snapshot.decode_bytes"]; h.Count != 1 || h.Sum != uint64(buf.Len()) {
		t.Fatalf("decode_bytes count=%d sum=%d, want 1/%d", h.Count, h.Sum, buf.Len())
	}
	if !race.ReportsEqual(m2.Reports(), m.Reports()) {
		t.Fatalf("restored reports diverged")
	}
}
