package monitor

// The bridge between the exhaustive world (explore.Trace, slices of full
// machine transitions) and the streaming world (Event): a Table maps a
// program's locations to dense indices once, and then converts traces to
// event streams with no per-trace allocation beyond the destination
// slice. This is what the differential tests use to run the monitor on
// every enumerated trace of the litmus corpus and of random programs.

import (
	"fmt"

	"localdrf/internal/core"
	"localdrf/internal/explore"
	"localdrf/internal/prog"
	"localdrf/internal/race"
)

// Table is the dense location indexing of one program, shared by every
// monitor run over that program's traces.
type Table struct {
	prog  *prog.Program
	index map[prog.Loc]int32
	decls []LocDecl
}

// NewTable builds the location table of p (locations in SortedLocs order,
// so indices are deterministic).
func NewTable(p *prog.Program) *Table {
	tb := &Table{prog: p, index: map[prog.Loc]int32{}}
	for _, l := range p.SortedLocs() {
		tb.index[l] = int32(len(tb.decls))
		tb.decls = append(tb.decls, LocDecl{Name: l, Kind: p.Kind(l)})
	}
	return tb
}

// Decls returns the location declarations (index order).
func (tb *Table) Decls() []LocDecl { return tb.decls }

// Program returns the program the table was built from.
func (tb *Table) Program() *prog.Program { return tb.prog }

// Threads returns the thread count of the table's program.
func (tb *Table) Threads() int { return len(tb.prog.Threads) }

// LocIndex returns the dense index of a location.
func (tb *Table) LocIndex(l prog.Loc) (int32, bool) {
	i, ok := tb.index[l]
	return i, ok
}

// EventOf converts one machine transition to its streaming form.
func (tb *Table) EventOf(t core.Transition) (Event, error) {
	loc, ok := tb.index[t.Loc]
	if !ok {
		return Event{}, fmt.Errorf("monitor: transition on undeclared location %q", t.Loc)
	}
	var k Kind
	switch {
	case t.RA:
		k = ReadRA
		if t.IsWrite {
			k = WriteRA
		}
	case t.Atomic:
		k = ReadAT
		if t.IsWrite {
			k = WriteAT
		}
	default:
		k = ReadNA
		if t.IsWrite {
			k = WriteNA
		}
	}
	return Event{Thread: int32(t.Thread), Loc: loc, Kind: k, Time: t.Time}, nil
}

// Events appends the streaming form of tr to dst (pass dst[:0] to reuse a
// buffer across traces).
func (tb *Table) Events(tr explore.Trace, dst []Event) ([]Event, error) {
	for _, t := range tr {
		e, err := tb.EventOf(t)
		if err != nil {
			return dst, err
		}
		dst = append(dst, e)
	}
	return dst, nil
}

// Transitions converts an event stream to bare transitions (thread,
// location, kinds, RA timestamp — no machine states). Happens-before and
// races are pure functions of exactly these fields, so this lets the
// exhaustive oracle race.Races be evaluated on streams that never came
// from the explorer (schedgen schedules) — the other direction of the
// differential tests.
func Transitions(events []Event, decls []LocDecl) explore.Trace {
	tr := make(explore.Trace, 0, len(events))
	for _, e := range events {
		t := core.Transition{Thread: int(e.Thread), Loc: decls[e.Loc].Name, Time: e.Time}
		switch e.Kind {
		case WriteNA:
			t.IsWrite = true
		case ReadAT:
			t.Atomic = true
		case WriteAT:
			t.Atomic, t.IsWrite = true, true
		case ReadRA:
			t.RA, t.Atomic = true, true
		case WriteRA:
			t.RA, t.Atomic, t.IsWrite = true, true, true
		}
		tr = append(tr, t)
	}
	return tr
}

// NewMonitor returns a monitor sized for the table's program.
func (tb *Table) NewMonitor() *Monitor { return New(tb.Threads(), tb.decls) }

// Races runs a fresh monitor over one trace and returns the deduplicated
// reports — the streaming counterpart of race.Races(tr), with which it
// must agree exactly.
func (tb *Table) Races(tr explore.Trace) ([]race.Report, error) {
	m := tb.NewMonitor()
	for _, t := range tr {
		e, err := tb.EventOf(t)
		if err != nil {
			return nil, err
		}
		m.Step(e)
	}
	return m.Reports(), nil
}
