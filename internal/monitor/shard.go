package monitor

// Sharded parallel monitoring — the slice-level entry point over the
// two-stage pipeline of pipeline.go. Historical note: this mode used to
// replay the whole stream once per shard so every shard could rebuild
// the synchronisation clocks itself, which made total work O(shards ×
// events); it is now a thin wrapper that runs the single-pass sync
// front-end and location-partitioned race back-ends, so adding shards
// adds back-end parallelism without re-reading the stream.

import (
	"localdrf/internal/prog"
	"localdrf/internal/race"
)

// ShardedRaces monitors one event stream with nonatomic locations
// partitioned across shards race back-ends (location l belongs to
// back-end l % shards), fed by a single synchronisation front-end pass
// over the stream. The shard count is clamped to the number of nonatomic
// locations and, when parallelism > 0, to parallelism. The report set is
// identical to a sequential pass at any shard count. Options that a
// sequential New+SetGCInterval+Step run would honour are honoured here
// too — see ShardedRacesConfig, of which this is the default-config
// shorthand.
func ShardedRaces(nthreads int, decls []LocDecl, events []Event, shards, parallelism int) ([]race.Report, error) {
	return ShardedRacesConfig(nthreads, decls, events, shards, parallelism, PipelineConfig{})
}

// ShardedRacesConfig is ShardedRaces with explicit pipeline tuning
// (batch size, queue depth, GC interval). cfg.Shards is overridden by
// the shards argument. Every configured option is honoured at every
// shard count — including the degenerate single-shard case, which runs
// the same front-end/back-end split rather than a differently-configured
// private monitor.
func ShardedRacesConfig(nthreads int, decls []LocDecl, events []Event, shards, parallelism int, cfg PipelineConfig) ([]race.Report, error) {
	naCount := 0
	for _, d := range decls {
		if d.Kind == prog.NonAtomic {
			naCount++
		}
	}
	if shards > naCount {
		shards = naCount
	}
	if parallelism > 0 && shards > parallelism {
		shards = parallelism
	}
	if shards < 1 {
		shards = 1
	}
	cfg.Shards = shards
	return PipelineRaces(nthreads, decls, events, cfg), nil
}
