package monitor

// Sharded-by-location parallel monitoring, built on the exploration
// engine's task runner. Race checking is independent per nonatomic
// location, but the happens-before clocks depend on *all* synchronisation
// events — so each shard runs a full monitor over the whole stream,
// processing every atomic/RA event (cheap clock joins) while checking and
// updating only the nonatomic locations of its own shard (the O(threads)
// scans, which dominate). Reports are merged as a set and sorted, so the
// result is identical to a single unsharded pass at any shard count and
// parallelism.

import (
	"localdrf/internal/engine"
	"localdrf/internal/race"
)

// ShardedRaces monitors one event stream with nonatomic locations
// partitioned across shards workers (location l belongs to shard
// l % shards). shards ≤ 1 degenerates to a single sequential pass;
// parallelism 0 means one worker per shard.
func ShardedRaces(nthreads int, decls []LocDecl, events []Event, shards, parallelism int) ([]race.Report, error) {
	if shards <= 1 {
		m := New(nthreads, decls)
		for _, e := range events {
			m.Step(e)
		}
		return m.Reports(), nil
	}
	if parallelism <= 0 || parallelism > shards {
		parallelism = shards
	}
	monitors := make([]*Monitor, shards)
	err := engine.ForEach(parallelism, shards, func(_, i int) error {
		m := New(nthreads, decls)
		m.setShard(i, shards)
		for _, e := range events {
			m.Step(e)
		}
		monitors[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Shards partition the nonatomic locations, so the per-shard report
	// sets are disjoint and concatenation is the set union.
	var out []race.Report
	for _, m := range monitors {
		out = append(out, m.Reports()...)
	}
	race.SortReports(out)
	return out, nil
}
