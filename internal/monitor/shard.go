package monitor

// Sharded-by-location parallel monitoring, built on the exploration
// engine's task runner. Race checking is independent per nonatomic
// location, but the happens-before clocks depend on *all* synchronisation
// events — so each shard runs a full monitor over the whole stream,
// processing every atomic/RA event (cheap clock joins) while checking and
// updating only the nonatomic locations of its own shard (the per-access
// history checks, which dominate). Reports are merged as a set and
// sorted, so the result is identical to a single unsharded pass at any
// shard count and parallelism.

import (
	"localdrf/internal/engine"
	"localdrf/internal/prog"
	"localdrf/internal/race"
)

// ShardedRaces monitors one event stream with nonatomic locations
// partitioned across shards workers (location l belongs to shard
// l % shards). The shard count is clamped to the number of nonatomic
// locations, and shards that end up owning none (possible even after
// clamping, since the partition is by location index modulo) are skipped
// rather than spawning full-stream replay workers that could never
// report anything. shards ≤ 1 (after clamping) degenerates to a single
// sequential pass; parallelism 0 means one worker per live shard.
func ShardedRaces(nthreads int, decls []LocDecl, events []Event, shards, parallelism int) ([]race.Report, error) {
	naCount := 0
	for _, d := range decls {
		if d.Kind == prog.NonAtomic {
			naCount++
		}
	}
	if shards > naCount {
		shards = naCount
	}
	if shards <= 1 {
		m := New(nthreads, decls)
		for _, e := range events {
			m.Step(e)
		}
		return m.Reports(), nil
	}
	// Only shards that own at least one nonatomic location get a worker.
	occupied := make([]bool, shards)
	for l, d := range decls {
		if d.Kind == prog.NonAtomic {
			occupied[l%shards] = true
		}
	}
	live := make([]int, 0, shards)
	for s, ok := range occupied {
		if ok {
			live = append(live, s)
		}
	}
	if parallelism <= 0 || parallelism > len(live) {
		parallelism = len(live)
	}
	monitors := make([]*Monitor, len(live))
	err := engine.ForEach(parallelism, len(live), func(_, i int) error {
		m := New(nthreads, decls)
		m.setShard(live[i], shards)
		for _, e := range events {
			m.Step(e)
		}
		monitors[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Shards partition the nonatomic locations, so the per-shard report
	// sets are disjoint and concatenation is the set union.
	var out []race.Report
	for _, m := range monitors {
		out = append(out, m.Reports()...)
	}
	race.SortReports(out)
	return out, nil
}
