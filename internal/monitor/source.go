package monitor

// Streaming ingestion: the pull side of the monitor. A Source yields
// events one at a time, so a trace can be monitored without ever
// materialising it — the wire-format TraceReader and the schedgen
// generator both feed monitors this way. The push side is simply
// Monitor.Step.

import "localdrf/internal/race"

// Source is a pull-based stream of monitor events. Next returns the next
// event and ok=true, ok=false at the end of the stream, or an error
// (after which the stream must not be read further).
type Source interface {
	Next() (e Event, ok bool, err error)
}

// Feed consumes src to the end of the stream, stepping the monitor on
// every event. On a source error, monitoring stops and the error is
// returned; the reports accumulated so far remain readable.
func (m *Monitor) Feed(src Source) error {
	return feedEvents(src, m.Step)
}

// SliceSource adapts an in-memory event slice to the Source interface.
type SliceSource struct {
	Events []Event
	next   int
}

// Next yields the next slice element.
func (s *SliceSource) Next() (Event, bool, error) {
	if s.next >= len(s.Events) {
		return Event{}, false, nil
	}
	e := s.Events[s.next]
	s.next++
	return e, true, nil
}

// SourceRaces runs a fresh monitor over a source in one bounded-memory
// pass and returns the deduplicated reports.
func SourceRaces(nthreads int, decls []LocDecl, src Source) ([]race.Report, error) {
	m := New(nthreads, decls)
	if err := m.Feed(src); err != nil {
		return nil, err
	}
	return m.Reports(), nil
}
