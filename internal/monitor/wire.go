package monitor

// The raw-trace wire format: a versioned, self-describing encoding of an
// event stream, so executions that never ran inside this process (or
// this binary) can be monitored. Three interchangeable encodings share
// one logical format; the decoder sniffs which it was handed.
//
// Binary v1 (magic "LDTR", then version byte 1) — one record per event,
// no inter-event state, no thread-retirement events:
//
//	"LDTR" <version=1>
//	uvarint threads
//	uvarint nlocs
//	nlocs × ( uvarint len, len name bytes, kind byte 0=na 1=at 2=ra )
//	events until EOF:
//	    kind byte (0..5, the Kind enumeration)
//	    uvarint thread
//	    uvarint loc
//	    RA kinds only: varint num, uvarint den   (the message timestamp)
//
// Binary v2 (magic "LDTR", then version byte 2) — the delta-compressed
// batch format: the same header as v1, followed by self-delimiting
// FRAMES instead of a flat event list. Each frame is
//
//	uvarint payloadLen            (bytes that follow, ≤ 1 MiB)
//	payload:
//	    uvarint count             (events in this frame, ≥ 1, ≤ 65536)
//	    count × event
//
// and each event is one tag byte plus optional varint fields:
//
//	tag bits 0..2: kind (0..6; 6 = KindHalt, the thread retirement)
//	tag bit  3:    thread flag — 0: same thread as the previous event;
//	               1: zigzag varint (thread − prevThread) follows
//	tag bits 4..7: location field (non-halt kinds only) —
//	               0..14: loc = prevLoc[thread] + (field − 7);
//	               15:    zigzag varint delta follows.
//	               Halt events carry no location; the field must be 0.
//	RA kinds append the timestamp as
//	    zigzag varint (num − prevNum[loc]), uvarint den.
//
// prevThread starts at 0 and tracks the previous event's thread;
// prevLoc[t] (per thread, start 0) tracks thread t's previous location —
// threads iterate over their own working sets, so per-thread deltas are
// small even when the interleaving jumps around; prevNum[l] (per
// location, start 0) tracks the last timestamp numerator, which grows by
// small increments under the program semantics. Encoder and decoder
// carry this context ACROSS frames; frames delimit I/O and batch
// decoding (TraceReader.NextBatch yields a frame at a time), not
// context. On the schedgen reference stream v2 is ≥ 1.5× smaller than
// v1 (most events fit in 2 bytes: tag + one loc-delta byte; v1 needs at
// least 3).
//
// Text (first line "ldtrace 1"; '#' starts a comment, blank lines are
// skipped):
//
//	ldtrace 1
//	threads 2
//	loc x na
//	loc R ra
//	0 w x
//	0 w R 1
//	1 r R 1
//	1 r x
//	0 halt
//
// Event lines are "<thread> r|w <locname> [<time>]" or "<thread> halt";
// the location's declared kind selects the event flavour, and the
// timestamp ("num" or "num/den") is required exactly for release-acquire
// events.
//
// Version negotiation: the decoder accepts v1 and v2 binary traces (and
// text) transparently; the encoder writes whichever the caller asked
// for. KindHalt exists only in v2 and text — the v1 grammar is frozen,
// so writing a halt event to a v1 binary writer is an error and a kind
// byte of 6 in a v1 trace is rejected. A halt is a promise that the
// thread performs no further events — the monitor's +∞ frontier
// treatment is only sound under it — so both encoder and decoder track
// halted threads and reject any later event of a halted thread
// (including a second halt).
//
// The decoder VALIDATES everything it hands to the monitor — thread and
// location bounds (including after delta reconstruction), kind bytes,
// kind-versus-declaration consistency, timestamp well-formedness, frame
// sizes — and returns errors for malformed input instead of letting
// Monitor.Step index out of bounds. Timestamps of non-RA events are not
// preserved (the monitor ignores them).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"
	"strconv"
	"strings"
	"unicode"

	"localdrf/internal/prog"
	"localdrf/internal/race"
	"localdrf/internal/ts"
)

// Format selects a trace encoding.
type Format int

const (
	// Binary is the per-event varint encoding (magic "LDTR", version 1).
	Binary Format = iota
	// Text is the line-oriented human-readable encoding.
	Text
	// BinaryV2 is the delta-compressed framed encoding (magic "LDTR",
	// version 2): smaller on the wire and decodable a frame (batch) at a
	// time. The decoder accepts v1 and v2 interchangeably.
	BinaryV2
)

// String names the format ("binary", "text" or "binary-v2").
func (f Format) String() string {
	switch f {
	case Text:
		return "text"
	case BinaryV2:
		return "binary-v2"
	}
	return "binary"
}

// ParseFormat parses "binary", "text", or "binary-v2" (alias "v2").
func ParseFormat(s string) (Format, error) {
	switch s {
	case "binary":
		return Binary, nil
	case "text":
		return Text, nil
	case "binary-v2", "v2":
		return BinaryV2, nil
	}
	return Binary, fmt.Errorf("monitor: unknown trace format %q (want binary|text|binary-v2)", s)
}

const (
	binaryMagic  = "LDTR"
	textMagic    = "ldtrace"
	wireVersion  = 1
	wireVersion2 = 2

	// Frame limits of the v2 format: a frame payload is bounded so a
	// hostile length prefix cannot demand an arbitrary allocation, and
	// the event count is bounded so count × minimum-event-size must fit
	// the payload.
	maxFrameBytes      = 1 << 20
	maxFrameEvents     = 1 << 16
	defaultFrameEvents = 4096

	// Format limits, enforced by both encoder and decoder. They exist so
	// a malformed or hostile header cannot make the decoder (or the
	// monitor allocated from it) balloon: the monitor's clock state is
	// O(threads²) and its location state O(locations).
	maxWireThreads = 1 << 10
	maxWireLocs    = 1 << 16
	maxWireName    = 1 << 12
	// maxWireCells bounds threads × locations jointly: the monitor
	// eagerly allocates an O(threads) clock vector per atomic location,
	// so the per-dimension limits alone would let a tiny hostile header
	// demand half a gigabyte before the first event is read.
	maxWireCells = 1 << 22
)

// Header is the self-description of a wire-format trace: the thread
// count and the dense location declarations the events index into.
type Header struct {
	Threads int
	Decls   []LocDecl
}

// validateHeader checks the format limits and per-declaration sanity
// shared by encoder and decoder.
func validateHeader(hdr Header) error {
	if hdr.Threads < 1 || hdr.Threads > maxWireThreads {
		return fmt.Errorf("monitor: trace header: thread count %d out of range [1,%d]", hdr.Threads, maxWireThreads)
	}
	if len(hdr.Decls) > maxWireLocs {
		return fmt.Errorf("monitor: trace header: %d locations exceeds the limit %d", len(hdr.Decls), maxWireLocs)
	}
	if hdr.Threads*len(hdr.Decls) > maxWireCells {
		return fmt.Errorf("monitor: trace header: %d threads × %d locations exceeds the limit %d cells",
			hdr.Threads, len(hdr.Decls), maxWireCells)
	}
	seen := make(map[prog.Loc]bool, len(hdr.Decls))
	for i, d := range hdr.Decls {
		if len(d.Name) == 0 || len(d.Name) > maxWireName {
			return fmt.Errorf("monitor: trace header: location %d has invalid name length %d", i, len(d.Name))
		}
		// Reject anything the text decoder's tokenizer (strings.Fields,
		// i.e. unicode.IsSpace) or comment stripping would mangle, so
		// every accepted header round-trips in both formats.
		if strings.IndexFunc(string(d.Name), func(r rune) bool {
			return unicode.IsSpace(r) || unicode.IsControl(r) || r == '#'
		}) >= 0 {
			return fmt.Errorf("monitor: trace header: location name %q contains whitespace, control characters or '#'", d.Name)
		}
		if d.Kind != prog.NonAtomic && d.Kind != prog.Atomic && d.Kind != prog.ReleaseAcquire {
			return fmt.Errorf("monitor: trace header: location %q has unknown kind %d", d.Name, d.Kind)
		}
		if seen[d.Name] {
			return fmt.Errorf("monitor: trace header: duplicate location name %q", d.Name)
		}
		seen[d.Name] = true
	}
	return nil
}

// validateEvent checks an event against a header: bounds, kind validity,
// and kind-versus-declaration consistency (an RA event on a nonatomic
// location would corrupt the monitor's per-kind state). Halt events only
// need their thread in range — location and timestamp are ignored.
func validateEvent(hdr Header, e Event) error {
	if e.Thread < 0 || int(e.Thread) >= hdr.Threads {
		return fmt.Errorf("monitor: trace event: thread %d out of range [0,%d)", e.Thread, hdr.Threads)
	}
	if e.Kind == KindHalt {
		return nil
	}
	if e.Loc < 0 || int(e.Loc) >= len(hdr.Decls) {
		return fmt.Errorf("monitor: trace event: location index %d out of range [0,%d)", e.Loc, len(hdr.Decls))
	}
	if e.Kind > WriteRA {
		return fmt.Errorf("monitor: trace event: unknown kind %d", e.Kind)
	}
	want := hdr.Decls[e.Loc].Kind
	var got prog.LocKind
	switch e.Kind {
	case ReadNA, WriteNA:
		got = prog.NonAtomic
	case ReadAT, WriteAT:
		got = prog.Atomic
	default:
		got = prog.ReleaseAcquire
	}
	if got != want {
		return fmt.Errorf("monitor: trace event: %v access on location %q declared %v",
			got, hdr.Decls[e.Loc].Name, want)
	}
	return nil
}

// kindTag is the text-format tag of a location kind.
func kindTag(k prog.LocKind) string {
	switch k {
	case prog.Atomic:
		return "at"
	case prog.ReleaseAcquire:
		return "ra"
	default:
		return "na"
	}
}

// ---- Encoder ----

// TraceWriter encodes an event stream in the wire format. Create one
// with NewTraceWriter (which writes the header), call Write per event,
// and Flush when done.
type TraceWriter struct {
	w      *bufio.Writer
	hdr    Header
	format Format
	buf    [binary.MaxVarintLen64]byte
	// v2 frame state (see the package comment for the layout).
	frame      []byte
	count      int
	prevThread int32
	prevLoc    []int32
	prevNum    []int64
	// halted[t]: thread t wrote a KindHalt — later events are rejected
	// (the halt promise the monitor's GC relies on). Allocated on the
	// first halt.
	halted []bool
}

// checkHalt enforces the halt promise on a stream position: no event
// after a thread's halt, no double halt. Shared by the encoder and the
// decoders of every format that can carry halts.
func checkHalt(halted *[]bool, threads int, e Event) error {
	if e.Kind == KindHalt {
		if *halted == nil {
			*halted = make([]bool, threads)
		}
		if (*halted)[e.Thread] {
			return fmt.Errorf("monitor: trace event: thread %d halted twice", e.Thread)
		}
		(*halted)[e.Thread] = true
		return nil
	}
	if *halted != nil && (*halted)[e.Thread] {
		return fmt.Errorf("monitor: trace event: thread %d acts after its halt", e.Thread)
	}
	return nil
}

// NewTraceWriter validates the header, writes it to w in the chosen
// format, and returns the event encoder.
func NewTraceWriter(w io.Writer, hdr Header, format Format) (*TraceWriter, error) {
	if err := validateHeader(hdr); err != nil {
		return nil, err
	}
	tw := &TraceWriter{w: bufio.NewWriter(w), hdr: hdr, format: format}
	switch format {
	case Binary, BinaryV2:
		ver := byte(wireVersion)
		if format == BinaryV2 {
			ver = wireVersion2
			tw.prevLoc = make([]int32, hdr.Threads)
			tw.prevNum = make([]int64, len(hdr.Decls))
		}
		tw.w.WriteString(binaryMagic)
		tw.w.WriteByte(ver)
		tw.putUvarint(uint64(hdr.Threads))
		tw.putUvarint(uint64(len(hdr.Decls)))
		for _, d := range hdr.Decls {
			tw.putUvarint(uint64(len(d.Name)))
			tw.w.WriteString(string(d.Name))
			tw.w.WriteByte(byte(d.Kind))
		}
	case Text:
		fmt.Fprintf(tw.w, "%s %d\n", textMagic, wireVersion)
		fmt.Fprintf(tw.w, "threads %d\n", hdr.Threads)
		for _, d := range hdr.Decls {
			fmt.Fprintf(tw.w, "loc %s %s\n", d.Name, kindTag(d.Kind))
		}
	default:
		return nil, fmt.Errorf("monitor: unknown trace format %d", format)
	}
	if err := tw.w.Flush(); err != nil {
		return nil, err
	}
	return tw, nil
}

func (tw *TraceWriter) putUvarint(v uint64) {
	n := binary.PutUvarint(tw.buf[:], v)
	tw.w.Write(tw.buf[:n])
}

func (tw *TraceWriter) putVarint(v int64) {
	n := binary.PutVarint(tw.buf[:], v)
	tw.w.Write(tw.buf[:n])
}

// Write encodes one event. Invalid events (out-of-range indices, kind
// mismatching the declared location kind) are rejected, as are halt
// events in the frozen v1 binary grammar.
func (tw *TraceWriter) Write(e Event) error {
	if err := validateEvent(tw.hdr, e); err != nil {
		return err
	}
	if tw.format == Binary && e.Kind == KindHalt {
		return fmt.Errorf("monitor: trace event: halt events need the v2 binary or text format (v1 is frozen)")
	}
	if err := checkHalt(&tw.halted, tw.hdr.Threads, e); err != nil {
		return err
	}
	switch tw.format {
	case Binary:
		tw.w.WriteByte(byte(e.Kind))
		tw.putUvarint(uint64(e.Thread))
		tw.putUvarint(uint64(e.Loc))
		if e.Kind == ReadRA || e.Kind == WriteRA {
			num, den := e.Time.Fraction()
			tw.putVarint(num)
			tw.putUvarint(uint64(den))
		}
	case BinaryV2:
		tw.writeV2(e)
	case Text:
		if e.Kind == KindHalt {
			fmt.Fprintf(tw.w, "%d halt\n", e.Thread)
			break
		}
		op := "r"
		if e.Kind.IsWrite() {
			op = "w"
		}
		if e.Kind == ReadRA || e.Kind == WriteRA {
			fmt.Fprintf(tw.w, "%d %s %s %s\n", e.Thread, op, tw.hdr.Decls[e.Loc].Name, e.Time)
		} else {
			fmt.Fprintf(tw.w, "%d %s %s\n", e.Thread, op, tw.hdr.Decls[e.Loc].Name)
		}
	}
	// Buffered write errors surface on Flush (and on buffer drain).
	return nil
}

// writeV2 appends one delta-encoded event to the current frame, flushing
// the frame when it reaches its event budget.
func (tw *TraceWriter) writeV2(e Event) {
	tagPos := len(tw.frame)
	tw.frame = append(tw.frame, 0) // tag, patched below
	tag := byte(e.Kind)
	if e.Thread != tw.prevThread {
		tag |= 1 << 3
		tw.frame = appendVarint(tw.frame, int64(e.Thread)-int64(tw.prevThread))
		tw.prevThread = e.Thread
	}
	if e.Kind != KindHalt {
		d := int64(e.Loc) - int64(tw.prevLoc[e.Thread])
		if d >= -7 && d <= 7 {
			tag |= byte(d+7) << 4
		} else {
			tag |= 15 << 4
			tw.frame = appendVarint(tw.frame, d)
		}
		tw.prevLoc[e.Thread] = e.Loc
		if e.Kind == ReadRA || e.Kind == WriteRA {
			num, den := e.Time.Fraction()
			tw.frame = appendVarint(tw.frame, num-tw.prevNum[e.Loc])
			tw.frame = appendUvarint(tw.frame, uint64(den))
			tw.prevNum[e.Loc] = num
		}
	}
	tw.frame[tagPos] = tag
	tw.count++
	if tw.count >= defaultFrameEvents {
		tw.flushFrame()
	}
}

// flushFrame emits the buffered frame: payload length, event count,
// event bytes. A no-op on an empty frame.
func (tw *TraceWriter) flushFrame() {
	if tw.count == 0 {
		return
	}
	var cnt [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(cnt[:], uint64(tw.count))
	tw.putUvarint(uint64(n + len(tw.frame)))
	tw.w.Write(cnt[:n])
	tw.w.Write(tw.frame)
	tw.frame = tw.frame[:0]
	tw.count = 0
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

func appendVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutVarint(tmp[:], v)]...)
}

// Flush drains any buffered frame and the encoder's buffer to the
// underlying writer.
func (tw *TraceWriter) Flush() error {
	if tw.format == BinaryV2 {
		tw.flushFrame()
	}
	return tw.w.Flush()
}

// ---- Decoder ----

// TraceReader decodes a wire-format trace (either encoding, sniffed from
// the first bytes) and yields validated events via Next — it implements
// Source, so a reader can be fed straight into Monitor.Feed. Malformed
// input produces an error, never a panic, and never an event the monitor
// cannot safely consume.
type TraceReader struct {
	br *bufio.Reader
	// cr counts the bytes the binary decoders consume (ReadByte/Read pass
	// through to br) — the logical stream offset that Checkpoint records
	// and Resume discards up to. The text decoder reads br directly and
	// does not support checkpoints.
	cr   countReader
	hdr  Header
	text bool
	line int              // text mode: current line number, for errors
	loc  map[string]int32 // text mode: name → dense index
	// pending is the first event line, read ahead while scanning for the
	// end of the text header's loc section.
	pending    string
	hasPending bool
	// halted[t]: thread t's halt has been decoded — later events of t
	// are malformed (see checkHalt). Allocated on the first halt.
	halted []bool
	// v2 state: the delta context (carried across frames) and the
	// decoded-but-not-yet-yielded events of the current frame.
	v2         bool
	prevThread int32
	prevLoc    []int32
	prevNum    []int64
	frameBuf   []byte
	batch      []Event
	cur        int
	// lim tightens the format caps for untrusted peers (see ReaderLimits).
	lim ReaderLimits
}

// ReaderLimits tightens the decoder's allocation caps below the format
// limits, for readers fed by untrusted network peers. The format caps
// alone admit headers that are individually valid but collectively
// enormous: 65536 locations × 4 KiB names is ~270 MB of name bytes a
// hostile header can demand before validateHeader ever runs. A server
// decoding traces from the network sets limits matched to its tenancy
// budget; the zero value applies only the format caps (the historical
// behaviour, right for trusted local files).
type ReaderLimits struct {
	// MaxHeaderBytes caps the total header-declared size: the sum over
	// location declarations of name length + headerDeclOverhead bytes of
	// fixed per-declaration cost. Exceeding it is a validation error
	// raised before the oversized allocation happens. 0 = format caps
	// only.
	MaxHeaderBytes int
	// MaxFrameEvents caps the declared event count of one v2 frame
	// (the format cap is 65536). A frame declaring more events than
	// this is rejected before decoding. 0 = format cap only.
	MaxFrameEvents int
}

// headerDeclOverhead is the fixed per-declaration cost MaxHeaderBytes
// charges on top of the name bytes (LocDecl bookkeeping, dedup map
// entry), so a header of many empty-ish names still exhausts the budget
// proportionally to the monitor state it would allocate.
const headerDeclOverhead = 16

// countReader passes reads through to the buffered reader, counting the
// bytes consumed.
type countReader struct {
	br *bufio.Reader
	n  int64
}

func (c *countReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.n += int64(n)
	return n, err
}

// NewTraceReader sniffs the encoding of r, decodes and validates the
// header, and returns a reader positioned at the first event.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	return NewTraceReaderLimits(r, ReaderLimits{})
}

// NewTraceReaderLimits is NewTraceReader with tightened allocation caps
// for untrusted input (see ReaderLimits).
func NewTraceReaderLimits(r io.Reader, lim ReaderLimits) (*TraceReader, error) {
	if lim.MaxHeaderBytes < 0 || lim.MaxFrameEvents < 0 {
		return nil, fmt.Errorf("monitor: trace reader: negative ReaderLimits")
	}
	tr := &TraceReader{br: bufio.NewReader(r), lim: lim}
	tr.cr.br = tr.br
	magic, err := tr.br.Peek(len(binaryMagic))
	if err == nil && string(magic) == binaryMagic {
		if err := tr.readBinaryHeader(); err != nil {
			return nil, err
		}
		return tr, nil
	}
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF && len(magic) == 0 {
		// The source failed before yielding a byte (e.g. a verification
		// layer below rejected its first frame). Propagate the real error
		// instead of letting the text parser misread it as a bad header.
		return nil, fmt.Errorf("monitor: trace reader: %w", err)
	}
	tr.text = true
	if err := tr.readTextHeader(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Header returns the decoded trace header.
func (tr *TraceReader) Header() Header { return tr.hdr }

// NewMonitor returns a monitor sized for the trace's header.
func (tr *TraceReader) NewMonitor() *Monitor { return New(tr.hdr.Threads, tr.hdr.Decls) }

// Next decodes and validates the next event; ok=false at end of trace.
func (tr *TraceReader) Next() (Event, bool, error) {
	if tr.text {
		return tr.nextText()
	}
	if tr.v2 {
		if tr.cur >= len(tr.batch) {
			var ok bool
			var err error
			tr.batch, ok, err = tr.decodeFrame(tr.batch[:0])
			tr.cur = 0
			if err != nil || !ok {
				return Event{}, false, err
			}
		}
		e := tr.batch[tr.cur]
		tr.cur++
		return e, true, nil
	}
	return tr.nextBinary()
}

// NextBatch decodes and validates the next batch of events, appending to
// dst — for the v2 format a whole frame at a time (the natural batch
// boundary), for v1 and text a bounded run of single events. ok=false
// with nothing appended means the end of the trace. TraceReader thereby
// implements BatchSource, the preferred way to feed Monitor.FeedBatch or
// a Pipeline.
func (tr *TraceReader) NextBatch(dst []Event) ([]Event, bool, error) {
	if tr.v2 {
		if tr.cur < len(tr.batch) {
			dst = append(dst, tr.batch[tr.cur:]...)
			tr.cur = len(tr.batch)
			return dst, true, nil
		}
		return tr.decodeFrame(dst)
	}
	n := 0
	for ; n < defaultFrameEvents; n++ {
		e, ok, err := tr.Next()
		if err != nil {
			return dst, false, err
		}
		if !ok {
			break
		}
		dst = append(dst, e)
	}
	return dst, n > 0, nil
}

// readUvarintField reads a bounded uvarint, mapping EOF inside the field
// to ErrUnexpectedEOF.
func (tr *TraceReader) readUvarintField(what string, max uint64) (uint64, error) {
	v, err := binary.ReadUvarint(&tr.cr)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, fmt.Errorf("monitor: trace %s: %w", what, err)
	}
	if v > max {
		return 0, fmt.Errorf("monitor: trace %s: value %d exceeds the limit %d", what, v, max)
	}
	return v, nil
}

func (tr *TraceReader) readBinaryHeader() error {
	var magicVer [len(binaryMagic) + 1]byte
	if _, err := io.ReadFull(&tr.cr, magicVer[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("monitor: trace header: %w", err)
	}
	ver := magicVer[len(binaryMagic)]
	if ver != wireVersion && ver != wireVersion2 {
		return fmt.Errorf("monitor: trace header: unsupported version %d (have %d and %d)",
			ver, wireVersion, wireVersion2)
	}
	tr.v2 = ver == wireVersion2
	threads, err := tr.readUvarintField("header thread count", maxWireThreads)
	if err != nil {
		return err
	}
	nlocs, err := tr.readUvarintField("header location count", maxWireLocs)
	if err != nil {
		return err
	}
	hdr := Header{Threads: int(threads)}
	budget := tr.lim.MaxHeaderBytes
	for i := uint64(0); i < nlocs; i++ {
		nameLen, err := tr.readUvarintField("location name length", maxWireName)
		if err != nil {
			return err
		}
		if budget > 0 {
			// Charge the declaration against the caller's budget BEFORE
			// allocating the name, so a hostile header errors instead of
			// ballooning the decoder.
			if budget -= int(nameLen) + headerDeclOverhead; budget <= 0 {
				return fmt.Errorf("monitor: trace header: declared sizes exceed the reader's %d-byte header budget after %d locations",
					tr.lim.MaxHeaderBytes, i)
			}
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(&tr.cr, name); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("monitor: trace header: location name: %w", err)
		}
		kind, err := tr.cr.ReadByte()
		if err != nil {
			return fmt.Errorf("monitor: trace header: location kind: %w", io.ErrUnexpectedEOF)
		}
		hdr.Decls = append(hdr.Decls, LocDecl{Name: prog.Loc(name), Kind: prog.LocKind(kind)})
	}
	if err := validateHeader(hdr); err != nil {
		return err
	}
	tr.hdr = hdr
	if tr.v2 {
		tr.prevLoc = make([]int32, hdr.Threads)
		tr.prevNum = make([]int64, len(hdr.Decls))
	}
	return nil
}

// decodeFrame reads and decodes the next v2 frame, appending its
// validated events to dst. ok=false at a clean end of trace (EOF exactly
// at a frame boundary).
func (tr *TraceReader) decodeFrame(dst []Event) ([]Event, bool, error) {
	payloadLen, err := binary.ReadUvarint(&tr.cr)
	if err != nil {
		if err == io.EOF {
			return dst, false, nil // clean end of trace
		}
		return dst, false, fmt.Errorf("monitor: trace frame length: %w", err)
	}
	if payloadLen == 0 || payloadLen > maxFrameBytes {
		return dst, false, fmt.Errorf("monitor: trace frame: payload length %d out of range (1,%d]", payloadLen, maxFrameBytes)
	}
	if uint64(cap(tr.frameBuf)) < payloadLen {
		tr.frameBuf = make([]byte, payloadLen)
	}
	p := tr.frameBuf[:payloadLen]
	if _, err := io.ReadFull(&tr.cr, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return dst, false, fmt.Errorf("monitor: trace frame: %w", err)
	}
	count, n := binary.Uvarint(p)
	if n <= 0 || count == 0 || count > maxFrameEvents {
		return dst, false, fmt.Errorf("monitor: trace frame: bad event count")
	}
	if lim := tr.lim.MaxFrameEvents; lim > 0 && count > uint64(lim) {
		return dst, false, fmt.Errorf("monitor: trace frame: %d events exceeds the reader's per-frame limit %d", count, lim)
	}
	pos := n
	for i := uint64(0); i < count; i++ {
		e, next, err := tr.decodeV2Event(p, pos)
		if err != nil {
			return dst, false, err
		}
		pos = next
		dst = append(dst, e)
	}
	if pos != len(p) {
		return dst, false, fmt.Errorf("monitor: trace frame: %d trailing bytes after %d events", len(p)-pos, count)
	}
	return dst, true, nil
}

// decodeV2Event decodes one delta-encoded event at p[pos:], updating the
// cross-frame delta context, and returns the event and the next offset.
func (tr *TraceReader) decodeV2Event(p []byte, pos int) (Event, int, error) {
	if pos >= len(p) {
		return Event{}, 0, fmt.Errorf("monitor: trace frame: truncated event (missing tag)")
	}
	tag := p[pos]
	pos++
	e := Event{Kind: Kind(tag & 7)}
	if e.Kind > KindHalt {
		return Event{}, 0, fmt.Errorf("monitor: trace event: unknown kind %d", e.Kind)
	}
	thread := int64(tr.prevThread)
	if tag&(1<<3) != 0 {
		d, n := binary.Varint(p[pos:])
		if n <= 0 {
			return Event{}, 0, fmt.Errorf("monitor: trace event: bad thread delta varint")
		}
		pos += n
		thread += d
	}
	if thread < 0 || thread >= int64(tr.hdr.Threads) {
		return Event{}, 0, fmt.Errorf("monitor: trace event: thread %d out of range [0,%d)", thread, tr.hdr.Threads)
	}
	e.Thread = int32(thread)
	tr.prevThread = e.Thread
	locField := tag >> 4
	if e.Kind == KindHalt {
		if locField != 0 {
			return Event{}, 0, fmt.Errorf("monitor: trace event: halt with nonzero location field")
		}
		if err := checkHalt(&tr.halted, tr.hdr.Threads, e); err != nil {
			return Event{}, 0, err
		}
		return e, pos, nil
	}
	d := int64(locField) - 7
	if locField == 15 {
		var n int
		d, n = binary.Varint(p[pos:])
		if n <= 0 {
			return Event{}, 0, fmt.Errorf("monitor: trace event: bad location delta varint")
		}
		pos += n
	}
	loc := int64(tr.prevLoc[e.Thread]) + d
	if loc < 0 || loc >= int64(len(tr.hdr.Decls)) {
		return Event{}, 0, fmt.Errorf("monitor: trace event: location index %d out of range [0,%d)", loc, len(tr.hdr.Decls))
	}
	e.Loc = int32(loc)
	tr.prevLoc[e.Thread] = e.Loc
	if e.Kind == ReadRA || e.Kind == WriteRA {
		dnum, n := binary.Varint(p[pos:])
		if n <= 0 {
			return Event{}, 0, fmt.Errorf("monitor: trace event: bad timestamp delta varint")
		}
		pos += n
		den, n := binary.Uvarint(p[pos:])
		if n <= 0 {
			return Event{}, 0, fmt.Errorf("monitor: trace event: bad timestamp denominator varint")
		}
		pos += n
		if den == 0 || den > uint64(math.MaxInt64) {
			return Event{}, 0, fmt.Errorf("monitor: trace event timestamp: denominator %d out of range", den)
		}
		num := tr.prevNum[e.Loc] + dnum
		tr.prevNum[e.Loc] = num
		e.Time = ts.New(num, int64(den))
	}
	if err := validateEvent(tr.hdr, e); err != nil {
		return Event{}, 0, err
	}
	if err := checkHalt(&tr.halted, tr.hdr.Threads, e); err != nil {
		return Event{}, 0, err
	}
	return e, pos, nil
}

func (tr *TraceReader) nextBinary() (Event, bool, error) {
	kb, err := tr.cr.ReadByte()
	if err == io.EOF {
		return Event{}, false, nil // clean end of trace
	}
	if err != nil {
		return Event{}, false, err
	}
	e := Event{Kind: Kind(kb)}
	if e.Kind > WriteRA {
		// The v1 grammar is frozen at kinds 0..5 — halt markers exist
		// only in the v2 and text encodings.
		return Event{}, false, fmt.Errorf("monitor: trace event: unknown kind %d", e.Kind)
	}
	thread, err := tr.readUvarintField("event thread", uint64(math.MaxInt32))
	if err != nil {
		return Event{}, false, err
	}
	loc, err := tr.readUvarintField("event location", uint64(math.MaxInt32))
	if err != nil {
		return Event{}, false, err
	}
	e.Thread, e.Loc = int32(thread), int32(loc)
	if e.Kind == ReadRA || e.Kind == WriteRA {
		num, err := binary.ReadVarint(&tr.cr)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Event{}, false, fmt.Errorf("monitor: trace event timestamp: %w", err)
		}
		den, err := tr.readUvarintField("event timestamp denominator", uint64(math.MaxInt64))
		if err != nil {
			return Event{}, false, err
		}
		if den == 0 {
			return Event{}, false, fmt.Errorf("monitor: trace event timestamp: zero denominator")
		}
		e.Time = ts.New(num, int64(den))
	}
	if err := validateEvent(tr.hdr, e); err != nil {
		return Event{}, false, err
	}
	return e, true, nil
}

// readLine returns the next non-blank, non-comment text line, trimmed,
// with ok=false at EOF.
func (tr *TraceReader) readLine() (string, bool, error) {
	for {
		line, err := tr.br.ReadString('\n')
		if line == "" && err != nil {
			if err == io.EOF {
				return "", false, nil
			}
			return "", false, err
		}
		tr.line++
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			return line, true, nil
		}
		if err == io.EOF {
			return "", false, nil
		}
	}
}

func (tr *TraceReader) textErr(format string, args ...any) error {
	return fmt.Errorf("monitor: trace line %d: %s", tr.line, fmt.Sprintf(format, args...))
}

func (tr *TraceReader) readTextHeader() error {
	line, ok, err := tr.readLine()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("monitor: empty trace (no %q line)", textMagic)
	}
	f := strings.Fields(line)
	if len(f) != 2 || f[0] != textMagic {
		return tr.textErr("not a trace: want %q, got %q", textMagic+" 1", line)
	}
	if f[1] != strconv.Itoa(wireVersion) {
		return tr.textErr("unsupported version %s (have %d)", f[1], wireVersion)
	}
	line, ok, err = tr.readLine()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("monitor: trace header: missing threads line")
	}
	f = strings.Fields(line)
	if len(f) != 2 || f[0] != "threads" {
		return tr.textErr("want \"threads N\", got %q", line)
	}
	threads, err := strconv.Atoi(f[1])
	if err != nil {
		return tr.textErr("bad thread count %q", f[1])
	}
	hdr := Header{Threads: threads}
	tr.loc = map[string]int32{}
	budget := tr.lim.MaxHeaderBytes
	for {
		line, ok, err = tr.readLine()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if !strings.HasPrefix(line, "loc ") {
			// First event line: hand it back to Next.
			tr.pending, tr.hasPending = line, true
			break
		}
		f = strings.Fields(line)
		if len(f) != 3 {
			return tr.textErr("want \"loc NAME na|at|ra\", got %q", line)
		}
		var kind prog.LocKind
		switch f[2] {
		case "na":
			kind = prog.NonAtomic
		case "at":
			kind = prog.Atomic
		case "ra":
			kind = prog.ReleaseAcquire
		default:
			return tr.textErr("unknown location kind %q", f[2])
		}
		if len(hdr.Decls) >= maxWireLocs {
			return tr.textErr("more than %d locations", maxWireLocs)
		}
		if budget > 0 {
			if budget -= len(f[1]) + headerDeclOverhead; budget <= 0 {
				return tr.textErr("declared sizes exceed the reader's %d-byte header budget after %d locations",
					tr.lim.MaxHeaderBytes, len(hdr.Decls))
			}
		}
		tr.loc[f[1]] = int32(len(hdr.Decls))
		hdr.Decls = append(hdr.Decls, LocDecl{Name: prog.Loc(f[1]), Kind: kind})
	}
	if err := validateHeader(hdr); err != nil {
		return err
	}
	tr.hdr = hdr
	return nil
}

func (tr *TraceReader) nextText() (Event, bool, error) {
	var line string
	if tr.hasPending {
		line, tr.hasPending = tr.pending, false
	} else {
		var ok bool
		var err error
		line, ok, err = tr.readLine()
		if err != nil || !ok {
			return Event{}, false, err
		}
	}
	f := strings.Fields(line)
	if len(f) != 2 && len(f) != 3 && len(f) != 4 {
		return Event{}, false, tr.textErr("want \"THREAD r|w LOC [TIME]\" or \"THREAD halt\", got %q", line)
	}
	thread, err := strconv.Atoi(f[0])
	if err != nil || thread < 0 || thread >= tr.hdr.Threads {
		return Event{}, false, tr.textErr("thread %q out of range [0,%d)", f[0], tr.hdr.Threads)
	}
	if len(f) == 2 {
		if f[1] != "halt" {
			return Event{}, false, tr.textErr("want \"THREAD r|w LOC [TIME]\" or \"THREAD halt\", got %q", line)
		}
		e := Event{Thread: int32(thread), Kind: KindHalt}
		if err := checkHalt(&tr.halted, tr.hdr.Threads, e); err != nil {
			return Event{}, false, tr.textErr("%v", err)
		}
		return e, true, nil
	}
	var write bool
	switch f[1] {
	case "r":
	case "w":
		write = true
	default:
		return Event{}, false, tr.textErr("unknown op %q (want r|w)", f[1])
	}
	loc, ok := tr.loc[f[2]]
	if !ok {
		return Event{}, false, tr.textErr("undeclared location %q", f[2])
	}
	e := Event{Thread: int32(thread), Loc: loc}
	isRA := tr.hdr.Decls[loc].Kind == prog.ReleaseAcquire
	if isRA != (len(f) == 4) {
		if isRA {
			return Event{}, false, tr.textErr("release-acquire access to %q needs a timestamp", f[2])
		}
		return Event{}, false, tr.textErr("timestamp on non-release-acquire location %q", f[2])
	}
	if isRA {
		e.Time, err = parseTime(f[3])
		if err != nil {
			return Event{}, false, tr.textErr("bad timestamp %q: %v", f[3], err)
		}
	}
	switch tr.hdr.Decls[loc].Kind {
	case prog.Atomic:
		e.Kind = ReadAT
		if write {
			e.Kind = WriteAT
		}
	case prog.ReleaseAcquire:
		e.Kind = ReadRA
		if write {
			e.Kind = WriteRA
		}
	default:
		e.Kind = ReadNA
		if write {
			e.Kind = WriteNA
		}
	}
	if err := checkHalt(&tr.halted, tr.hdr.Threads, e); err != nil {
		return Event{}, false, tr.textErr("%v", err)
	}
	return e, true, nil
}

// parseTime parses "num" or "num/den" into a rational timestamp.
func parseTime(s string) (ts.Time, error) {
	numS, denS, frac := strings.Cut(s, "/")
	num, err := strconv.ParseInt(numS, 10, 64)
	if err != nil {
		return ts.Time{}, fmt.Errorf("bad numerator: %v", err)
	}
	den := int64(1)
	if frac {
		den, err = strconv.ParseInt(denS, 10, 64)
		if err != nil {
			return ts.Time{}, fmt.Errorf("bad denominator: %v", err)
		}
		if den <= 0 {
			return ts.Time{}, fmt.Errorf("denominator must be positive")
		}
	}
	return ts.New(num, den), nil
}

// ---- Checkpoint / resume ----

// ReaderCheckpoint is a resumable position in a binary wire-format
// trace: the byte offset of the next undecoded frame (v2) or event (v1),
// the v2 delta context carried across frames, the decoder's halted-
// thread set, and — for checkpoints taken mid-frame — the already-
// decoded events of the current frame that were not yet delivered.
// Obtain one with Checkpoint, persist it inside a snapshot
// (Monitor.SnapshotWithReader), and hand it to Resume on a fresh reader
// over the same trace.
type ReaderCheckpoint struct {
	// Offset is the number of logical trace bytes consumed: the header
	// plus every fully decoded frame (v2) or event (v1).
	Offset int64
	// V2 records which binary version the trace uses; Resume refuses a
	// checkpoint whose version does not match the reopened trace.
	V2 bool
	// PrevThread, PrevLoc, PrevNum are the v2 delta context as of Offset
	// (PrevLoc/PrevNum are nil for v1).
	PrevThread int32
	PrevLoc    []int32
	PrevNum    []int64
	// Halted is the decoder's halted-thread set (nil when no thread has
	// halted).
	Halted []bool
	// Pending holds the validated events of the current v2 frame that
	// were decoded but not yet delivered when the checkpoint was taken;
	// Resume yields them before decoding the frame at Offset.
	Pending []Event
}

// Checkpoint captures the reader's current position — valid at any event
// boundary, including mid-frame for v2 traces (the undelivered rest of
// the frame rides along as Pending). Only binary traces support
// checkpoints; the text format errors.
func (tr *TraceReader) Checkpoint() (ReaderCheckpoint, error) {
	if tr.text {
		return ReaderCheckpoint{}, fmt.Errorf("monitor: trace checkpoint: text traces are not resumable (use a binary format)")
	}
	ck := ReaderCheckpoint{Offset: tr.cr.n, V2: tr.v2, PrevThread: tr.prevThread}
	if tr.v2 {
		ck.PrevLoc = slices.Clone(tr.prevLoc)
		ck.PrevNum = slices.Clone(tr.prevNum)
		if tr.cur < len(tr.batch) {
			ck.Pending = slices.Clone(tr.batch[tr.cur:])
		}
	}
	if tr.halted != nil {
		ck.Halted = slices.Clone(tr.halted)
	}
	return ck, nil
}

// Resume fast-forwards a freshly created reader to a checkpoint taken
// over the same trace: it discards the stream up to ck.Offset, installs
// the delta context and halted set, and queues the checkpoint's pending
// events. It must be called before any event has been read, and the
// trace must be the same bytes the checkpoint was taken over — a
// different trace yields decode errors (or garbage events on a
// maliciously matched one; the offset is a position, not a fingerprint).
func (tr *TraceReader) Resume(ck ReaderCheckpoint) error {
	if tr.text {
		return fmt.Errorf("monitor: trace resume: text traces are not resumable")
	}
	if tr.v2 != ck.V2 {
		return fmt.Errorf("monitor: trace resume: checkpoint is for binary v%d, trace is v%d", wireVer(ck.V2), wireVer(tr.v2))
	}
	if len(tr.batch) > 0 || tr.halted != nil {
		return fmt.Errorf("monitor: trace resume: reader has already decoded events")
	}
	if err := ck.validate(tr.hdr); err != nil {
		return fmt.Errorf("monitor: trace resume: %w", err)
	}
	if ck.Offset < tr.cr.n {
		return fmt.Errorf("monitor: trace resume: offset %d lies inside the %d-byte header", ck.Offset, tr.cr.n)
	}
	if err := tr.discard(ck.Offset - tr.cr.n); err != nil {
		return fmt.Errorf("monitor: trace resume: %w", err)
	}
	tr.prevThread = ck.PrevThread
	if tr.v2 {
		copy(tr.prevLoc, ck.PrevLoc)
		copy(tr.prevNum, ck.PrevNum)
		if len(ck.Pending) > 0 {
			tr.batch = append(tr.batch[:0], ck.Pending...)
			tr.cur = 0
		}
	}
	if ck.Halted != nil {
		tr.halted = slices.Clone(ck.Halted)
	}
	return nil
}

func wireVer(v2 bool) int {
	if v2 {
		return wireVersion2
	}
	return wireVersion
}

// discard consumes exactly n bytes, erroring if the stream ends first.
func (tr *TraceReader) discard(n int64) error {
	for n > 0 {
		step := n
		if step > 1<<20 {
			step = 1 << 20
		}
		d, err := tr.br.Discard(int(step))
		tr.cr.n += int64(d)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("trace shorter than checkpoint offset: %w", err)
		}
		n -= int64(d)
	}
	return nil
}

// ---- Convenience entry points ----

// MonitorReader runs a fresh monitor over a wire-format trace stream in
// one bounded-memory pass and returns it (for Reports, RAStats, Events).
func MonitorReader(r io.Reader) (*Monitor, error) {
	tr, err := NewTraceReader(r)
	if err != nil {
		return nil, err
	}
	m := tr.NewMonitor()
	if err := m.Feed(tr); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadRaces monitors a wire-format trace from r and returns the
// deduplicated race reports.
func ReadRaces(r io.Reader) ([]race.Report, error) {
	m, err := MonitorReader(r)
	if err != nil {
		return nil, err
	}
	return m.Reports(), nil
}
