package monitor

// Static pre-filtering: a sound static race-freedom certificate
// (internal/staticrace) lets the monitor skip the def. 9/10 checker work
// for nonatomic locations proven race-free in every trace — their
// accesses can never produce a report, so not checking them changes
// nothing except the work done. All synchronisation bookkeeping
// (program-order increments, event counts, RA retention, GC cadence) is
// untouched: a filtered run's RAStats and GC schedule are identical to
// an unfiltered one, and its reports are identical by the certificate's
// soundness — both proven in the modeltest differential matrix.
//
// The filter is configuration, like the GC interval: it survives Reset,
// and the mask itself is not serialised into snapshots — a restored
// monitor or pipeline applies it again via SetStaticFilter /
// PipelineConfig.StaticFilter. Since snapshot v2 the header does record
// *whether* a filter was active (Snapshot.StaticFiltered), so a resumer
// that cannot rebuild the mask can at least warn instead of silently
// monitoring a filtered prefix unfiltered.
// Filtered locations keep empty checker state, so a filtered sequential
// monitor and a filtered pipeline still snapshot byte-identically at
// the same stream position.

import "localdrf/internal/prog"

// SetStaticFilter installs a per-location skip mask: events on
// nonatomic locations with skip[loc] true bypass the race checker. nil
// clears the filter. The mask must come from a sound certificate
// (staticrace.Report.RaceFree via StaticFilter) — skipping a location
// that can race loses reports. Masking a synchronising location has no
// effect (its clock work always runs). The mask length must equal the
// declaration count.
func (m *Monitor) SetStaticFilter(skip []bool) {
	if skip != nil && len(skip) != len(m.decls) {
		panic("monitor: static filter mask length != declaration count")
	}
	m.staticSkip = skip
}

// StaticFilter builds the skip mask for decls from a race-freedom
// certificate: exactly the nonatomic locations the certificate proves
// race-free are marked. Returns nil (no filtering) when the certificate
// proves nothing, so the unfiltered hot path stays branch-free.
func StaticFilter(decls []LocDecl, raceFree func(prog.Loc) bool) []bool {
	mask := make([]bool, len(decls))
	any := false
	for i, d := range decls {
		if d.Kind == prog.NonAtomic && raceFree(d.Name) {
			mask[i] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	return mask
}

// FilteredLocs counts the locations a mask skips (telemetry for CLIs
// and benches).
func FilteredLocs(mask []bool) int {
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	return n
}
