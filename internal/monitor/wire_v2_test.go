package monitor

import (
	"bytes"
	"testing"

	"localdrf/internal/prog"
	"localdrf/internal/race"
	"localdrf/internal/ts"
)

// haltWorkload is wireWorkload plus thread retirements — the shapes only
// v2 and text can carry.
func haltWorkload() (Header, []Event) {
	hdr, events := wireWorkload()
	events = append(events,
		Event{Thread: 0, Kind: KindHalt},
		Event{Thread: 2, Loc: 0, Kind: WriteNA},
		Event{Thread: 2, Kind: KindHalt},
	)
	return hdr, events
}

// TestWireV2RoundTrip: encode → decode through the delta-compressed v2
// format reproduces the header and every event (including halts and RA
// timestamps) exactly, via both Next and NextBatch.
func TestWireV2RoundTrip(t *testing.T) {
	hdr, events := haltWorkload()
	data := encodeAll(t, hdr, events, BinaryV2)
	for _, batched := range []bool{false, true} {
		tr, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		got := tr.Header()
		if got.Threads != hdr.Threads || len(got.Decls) != len(hdr.Decls) {
			t.Fatalf("header mismatch: %+v vs %+v", got, hdr)
		}
		var decoded []Event
		if batched {
			for {
				var ok bool
				decoded, ok, err = tr.NextBatch(decoded)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
			}
		} else {
			for {
				e, ok, err := tr.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				decoded = append(decoded, e)
			}
		}
		if len(decoded) != len(events) {
			t.Fatalf("batched=%v: decoded %d events, want %d", batched, len(decoded), len(events))
		}
		for i, want := range events {
			e := decoded[i]
			if e.Thread != want.Thread || e.Kind != want.Kind {
				t.Fatalf("batched=%v: event %d: got %+v, want %+v", batched, i, e, want)
			}
			if want.Kind != KindHalt && e.Loc != want.Loc {
				t.Fatalf("batched=%v: event %d: loc %d, want %d", batched, i, e.Loc, want.Loc)
			}
			if (want.Kind == ReadRA || want.Kind == WriteRA) && !e.Time.Equal(want.Time) {
				t.Fatalf("batched=%v: event %d: timestamp %v, want %v", batched, i, e.Time, want.Time)
			}
		}
	}
}

// TestWireV2FrameBoundaries: streams longer than one frame round-trip
// across the frame boundary (the delta context persists between frames).
func TestWireV2FrameBoundaries(t *testing.T) {
	decls, events := syntheticWorkload(4, 16, 3*defaultFrameEvents+17, 5)
	hdr := Header{Threads: 4, Decls: decls}
	data := encodeAll(t, hdr, events, BinaryV2)
	tr, err := NewTraceReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var decoded []Event
	batches := 0
	for {
		before := len(decoded)
		var ok bool
		decoded, ok, err = tr.NextBatch(decoded)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(decoded) == before {
			t.Fatal("NextBatch returned ok with no events")
		}
		batches++
	}
	if batches != 4 {
		t.Fatalf("got %d batches, want 4 (3 full frames + remainder)", batches)
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(events))
	}
	for i := range events {
		if decoded[i].Thread != events[i].Thread || decoded[i].Loc != events[i].Loc || decoded[i].Kind != events[i].Kind {
			t.Fatalf("event %d: got %+v, want %+v", i, decoded[i], events[i])
		}
	}
}

// TestWireV2MonitorParity: monitoring the v2-decoded stream (per event
// and per batch) reports exactly what the original slice reports.
func TestWireV2MonitorParity(t *testing.T) {
	hdr, events := haltWorkload()
	direct := New(hdr.Threads, hdr.Decls)
	direct.StepBatch(events)
	want := direct.Reports()
	if len(want) == 0 {
		t.Fatal("workload produced no races; not a useful fixture")
	}
	data := encodeAll(t, hdr, events, BinaryV2)
	got, err := ReadRaces(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !race.ReportsEqual(got, want) {
		t.Fatalf("v2 decoded reports %v, want %v", got, want)
	}
	tr, err := NewTraceReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	m := tr.NewMonitor()
	if err := m.FeedBatch(tr); err != nil {
		t.Fatal(err)
	}
	if !race.ReportsEqual(m.Reports(), want) {
		t.Fatalf("v2 FeedBatch reports %v, want %v", m.Reports(), want)
	}
}

// TestWireV2SemanticsMatchV1: a halt-free stream encodes to both
// versions and decodes to identical event sequences — v2 is a pure
// compression of v1's semantics.
func TestWireV2SemanticsMatchV1(t *testing.T) {
	hdr, events := wireWorkload()
	decode := func(data []byte) []Event {
		tr, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var out []Event
		for {
			e, ok, err := tr.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return out
			}
			out = append(out, e)
		}
	}
	v1 := decode(encodeAll(t, hdr, events, Binary))
	v2 := decode(encodeAll(t, hdr, events, BinaryV2))
	if len(v1) != len(v2) {
		t.Fatalf("v1 decoded %d events, v2 %d", len(v1), len(v2))
	}
	for i := range v1 {
		if v1[i].Thread != v2[i].Thread || v1[i].Loc != v2[i].Loc || v1[i].Kind != v2[i].Kind || !v1[i].Time.Equal(v2[i].Time) {
			t.Fatalf("event %d: v1 %+v, v2 %+v", i, v1[i], v2[i])
		}
	}
}

// TestWireV2Rejects: the v2 decoder errors (never panics) on every
// malformed-frame class, and the frozen v1 grammar rejects what only v2
// can carry.
func TestWireV2Rejects(t *testing.T) {
	hdr, events := haltWorkload()
	v2 := encodeAll(t, hdr, events, BinaryV2)
	hdrOnly := encodeAll(t, hdr, nil, BinaryV2)

	// Header downgrade v2 → v1: same bytes with the version byte flipped
	// claim to be a v1 trace; the frames are then parsed as v1 events and
	// must produce an error, not a panic or bogus events.
	downgrade := append([]byte{}, v2...)
	downgrade[4] = 1

	cases := []struct {
		name string
		data []byte
	}{
		{"downgraded v2 frames parsed as v1", downgrade},
		{"future version", func() []byte {
			b := append([]byte{}, v2...)
			b[4] = 3
			return b
		}()},
		{"truncated frame payload", v2[:len(v2)-1]},
		{"truncated frame length", append(append([]byte{}, hdrOnly...), 0xff)},
		{"zero-length frame", append(append([]byte{}, hdrOnly...), 0x00)},
		{"oversized frame length", append(append([]byte{}, hdrOnly...), 0xff, 0xff, 0xff, 0xff, 0x7f)},
		{"zero event count", append(append([]byte{}, hdrOnly...), 0x01, 0x00)},
		{"event count exceeding payload", append(append([]byte{}, hdrOnly...), 0x02, 0xff, 0x7f)},
		{"trailing bytes after events", append(append([]byte{}, hdrOnly...),
			// payload: count=1, one NA-write event (tag only), junk byte.
			0x03, 0x01, byte(WriteNA)|7<<4, 0xAA)},
		{"unterminated varint", append(append([]byte{}, hdrOnly...),
			// count=1, tag with explicit loc delta, then 0x80s forever.
			0x0c, 0x01, byte(WriteNA)|15<<4, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80)},
		{"thread delta out of range", append(append([]byte{}, hdrOnly...),
			// count=1, tag with thread delta −1 from prevThread 0.
			0x04, 0x01, byte(WriteNA)|1<<3|7<<4, 0x01)},
		{"loc delta out of range", append(append([]byte{}, hdrOnly...),
			// count=1, tag loc field 0 → delta −7 from prevLoc 0.
			0x03, 0x01, byte(WriteNA)|0<<4)},
		{"halt with nonzero loc field", append(append([]byte{}, hdrOnly...),
			0x03, 0x01, byte(KindHalt)|7<<4)},
		{"kind 7", append(append([]byte{}, hdrOnly...), 0x03, 0x01, 7|7<<4)},
		{"event after halt", append(append([]byte{}, hdrOnly...),
			// count=2: halt t0, then a WriteNA by t0 — breaks the halt
			// promise the monitor's +∞ frontier treatment relies on.
			0x03, 0x02, byte(KindHalt), byte(WriteNA)|7<<4)},
		{"double halt", append(append([]byte{}, hdrOnly...),
			0x03, 0x02, byte(KindHalt), byte(KindHalt))},
		{"text event after halt", []byte("ldtrace 1\nthreads 2\nloc x na\n0 halt\n0 w x\n")},
		{"text double halt", []byte("ldtrace 1\nthreads 2\nloc x na\n0 halt\n0 halt\n")},
		{"zero timestamp denominator", append(append([]byte{}, hdrOnly...),
			// count=1, ReadRA on loc 2 ("R"): loc delta +2, dnum 1, den 0.
			0x05, 0x01, byte(ReadRA)|15<<4, 0x04, 0x02, 0x00)},
	}
	for _, tc := range cases {
		if _, err := ReadRaces(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s: decoder accepted malformed input", tc.name)
		}
	}

	// The frozen v1 side of negotiation: a halt event cannot be written
	// to a v1 binary trace, and a kind byte of 6 in a v1 body is
	// rejected.
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, hdr, Binary)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(Event{Thread: 0, Kind: KindHalt}); err == nil {
		t.Error("v1 writer accepted a halt event")
	}
	v1hdr := encodeAll(t, hdr, nil, Binary)
	bogus := append(append([]byte{}, v1hdr...), byte(KindHalt), 0x00, 0x00)
	if _, err := ReadRaces(bytes.NewReader(bogus)); err == nil {
		t.Error("v1 decoder accepted kind byte 6")
	}

	// The encoder enforces the halt promise too, in every halt-capable
	// format: no event after a thread's halt, no double halt.
	for _, format := range []Format{BinaryV2, Text} {
		var hbuf bytes.Buffer
		htw, err := NewTraceWriter(&hbuf, hdr, format)
		if err != nil {
			t.Fatal(err)
		}
		if err := htw.Write(Event{Thread: 1, Kind: KindHalt}); err != nil {
			t.Fatalf("%v: first halt rejected: %v", format, err)
		}
		if err := htw.Write(Event{Thread: 1, Loc: 0, Kind: WriteNA}); err == nil {
			t.Errorf("%v writer accepted an event after the thread's halt", format)
		}
		if err := htw.Write(Event{Thread: 1, Kind: KindHalt}); err == nil {
			t.Errorf("%v writer accepted a double halt", format)
		}
		if err := htw.Write(Event{Thread: 0, Loc: 0, Kind: WriteNA}); err != nil {
			t.Errorf("%v writer rejected an unrelated thread after a halt: %v", format, err)
		}
	}
}

// TestWireV2TextHalt: the text format round-trips halt lines.
func TestWireV2TextHalt(t *testing.T) {
	hdr, events := haltWorkload()
	data := encodeAll(t, hdr, events, Text)
	tr, err := NewTraceReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	halts := 0
	for {
		e, ok, err := tr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if e.Kind == KindHalt {
			halts++
		}
	}
	if halts != 2 {
		t.Fatalf("decoded %d halt events, want 2", halts)
	}
}

// TestWireV2TimestampDeltas: timestamps with denominators and negative
// deltas survive the per-location delta chain.
func TestWireV2TimestampDeltas(t *testing.T) {
	hdr := Header{Threads: 2, Decls: []LocDecl{{Name: "R", Kind: prog.ReleaseAcquire}}}
	events := []Event{
		{Thread: 0, Loc: 0, Kind: WriteRA, Time: ts.New(5, 3)},
		{Thread: 1, Loc: 0, Kind: ReadRA, Time: ts.New(5, 3)},
		{Thread: 0, Loc: 0, Kind: WriteRA, Time: ts.New(-2, 7)},
		{Thread: 1, Loc: 0, Kind: ReadRA, Time: ts.New(-2, 7)},
		{Thread: 0, Loc: 0, Kind: WriteRA, Time: ts.New(1000000, 1)},
	}
	data := encodeAll(t, hdr, events, BinaryV2)
	tr, err := NewTraceReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range events {
		e, ok, err := tr.Next()
		if err != nil || !ok {
			t.Fatalf("event %d: ok=%v err=%v", i, ok, err)
		}
		if !e.Time.Equal(want.Time) {
			t.Fatalf("event %d: timestamp %v, want %v", i, e.Time, want.Time)
		}
	}
}
