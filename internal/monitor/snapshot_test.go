package monitor

import (
	"bytes"
	"fmt"
	"testing"

	"localdrf/internal/prog"
	"localdrf/internal/race"
	"localdrf/internal/ts"
)

// finish runs the remaining events through a monitor and returns its
// final observable state.
func finish(m *Monitor, events []Event) ([]race.Report, RAStats, uint64) {
	m.StepBatch(events)
	return m.Reports(), m.RAStats(), m.Events()
}

// TestSnapshotRoundTrip is the core metamorphic bar at unit scale:
// run-to-k → snapshot → restore → finish must equal the unsplit run
// exactly (reports, RA stats, event count), and a snapshot taken by the
// restored monitor at the end must be byte-identical to one taken by the
// unsplit monitor — the codec is canonical and lossless.
func TestSnapshotRoundTrip(t *testing.T) {
	decls, events := raWorkload(5, 12, 40_000, 17)
	for _, interval := range []uint64{16, 0} {
		ref := New(5, decls)
		if interval > 0 {
			ref.SetGCInterval(interval)
		}
		wantReports, wantStats, wantEvents := finish(ref, events)
		if len(wantReports) == 0 {
			t.Fatal("workload produced no races; not a useful fixture")
		}
		var refSnap bytes.Buffer
		if err := ref.Snapshot(&refSnap); err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{0, 1, 777, 20_000, 39_999, 40_000} {
			m := New(5, decls)
			if interval > 0 {
				m.SetGCInterval(interval)
			}
			m.StepBatch(events[:k])
			var buf bytes.Buffer
			if err := m.Snapshot(&buf); err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			restored, err := Restore(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			got, stats, n := finish(restored, events[k:])
			if !race.ReportsEqual(got, wantReports) {
				t.Fatalf("interval=%d k=%d: reports diverged\ngot  %v\nwant %v", interval, k, got, wantReports)
			}
			if stats != wantStats {
				t.Fatalf("interval=%d k=%d: RA stats %+v, want %+v", interval, k, stats, wantStats)
			}
			if n != wantEvents {
				t.Fatalf("interval=%d k=%d: events %d, want %d", interval, k, n, wantEvents)
			}
			var endSnap bytes.Buffer
			if err := restored.Snapshot(&endSnap); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(endSnap.Bytes(), refSnap.Bytes()) {
				t.Fatalf("interval=%d k=%d: snapshot after restore+finish is not byte-identical to the unsplit snapshot (%d vs %d bytes)",
					interval, k, endSnap.Len(), refSnap.Len())
			}
		}
	}
}

// TestSnapshotDecodeEncodeIdentity: encode(decode(snapshot)) returns the
// input bytes — no state is invented or dropped by either direction.
func TestSnapshotDecodeEncodeIdentity(t *testing.T) {
	decls, events := raWorkload(6, 16, 25_000, 29)
	m := New(6, decls)
	m.SetGCInterval(64)
	m.StepBatch(events)
	var a bytes.Buffer
	if err := m.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := restored.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("decode∘encode changed the snapshot (%d vs %d bytes)", a.Len(), b.Len())
	}
}

// TestSnapshotHaltedThreads: the halt set survives the round trip (the
// +∞ frontier treatment must keep holding after a resume).
func TestSnapshotHaltedThreads(t *testing.T) {
	decls, events := haltRAStream(true)
	k := len(events) / 2
	ref := New(4, decls)
	ref.SetGCInterval(64)
	wantReports, wantStats, _ := finish(ref, events)

	m := New(4, decls)
	m.SetGCInterval(64)
	m.StepBatch(events[:k])
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, stats, _ := finish(restored, events[k:])
	if !race.ReportsEqual(got, wantReports) {
		t.Fatalf("reports diverged: got %v, want %v", got, wantReports)
	}
	if stats != wantStats {
		t.Fatalf("RA stats %+v, want %+v (halt set lost?)", stats, wantStats)
	}
}

// TestSnapshotAdaptiveGC: the adaptive controller's full state (current
// interval, bounds, next sweep) survives the round trip, so the restored
// run sweeps at exactly the positions the unsplit run would.
func TestSnapshotAdaptiveGC(t *testing.T) {
	decls, events := raWorkload(5, 12, 40_000, 17)
	ref := New(5, decls)
	ref.SetAdaptiveGC(16, 4096)
	wantReports, wantStats, _ := finish(ref, events)
	for _, k := range []int{500, 20_000} {
		m := New(5, decls)
		m.SetAdaptiveGC(16, 4096)
		m.StepBatch(events[:k])
		var buf bytes.Buffer
		if err := m.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := Restore(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got, stats, _ := finish(restored, events[k:])
		if !race.ReportsEqual(got, wantReports) {
			t.Fatalf("k=%d: reports diverged", k)
		}
		if stats != wantStats {
			t.Fatalf("k=%d: RA stats %+v, want %+v (adaptive state lost?)", k, stats, wantStats)
		}
	}
}

// TestPipelineSnapshotByteParity: a pipeline snapshot is byte-identical
// to the sequential monitor's at the same stream position and GC
// configuration, at any shard count and at a mid-stream quiesce — the
// property that makes cross-mode resume sound.
func TestPipelineSnapshotByteParity(t *testing.T) {
	decls, events := raWorkload(5, 12, 40_000, 17)
	for _, k := range []int{0, 12_345, 40_000} {
		seq := New(5, decls)
		seq.SetGCInterval(64)
		seq.StepBatch(events[:k])
		var want bytes.Buffer
		if err := seq.Snapshot(&want); err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 3, 8} {
			p := NewPipeline(5, decls, PipelineConfig{Shards: shards, GCInterval: 64})
			p.StepBatch(events[:k])
			var got bytes.Buffer
			if err := p.Snapshot(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("k=%d shards=%d: pipeline snapshot differs from sequential (%d vs %d bytes)",
					k, shards, got.Len(), want.Len())
			}
			// The pipeline stays feedable after a snapshot: finishing the
			// stream must match the unsplit sequential run.
			p.StepBatch(events[k:])
			ref := New(5, decls)
			ref.SetGCInterval(64)
			wantReports, wantStats, _ := finish(ref, events)
			if got := p.Finish(); !race.ReportsEqual(got, wantReports) {
				t.Fatalf("k=%d shards=%d: pipeline diverged after mid-stream snapshot", k, shards)
			}
			if p.RAStats() != wantStats {
				t.Fatalf("k=%d shards=%d: RA stats %+v, want %+v", k, shards, p.RAStats(), wantStats)
			}
		}
	}
}

// TestSnapshotCrossModeResume: a sequential checkpoint resumes as a
// pipeline at any shard count (the restored per-location state must be
// routed to the owning back-end — including the degenerate single-shard
// path), and a pipeline checkpoint resumes sequentially.
func TestSnapshotCrossModeResume(t *testing.T) {
	decls, events := raWorkload(5, 12, 40_000, 17)
	k := 17_000
	ref := New(5, decls)
	ref.SetGCInterval(64)
	wantReports, wantStats, _ := finish(ref, events)

	// Sequential → pipeline, every shard count incl. the degenerate 1.
	m := New(5, decls)
	m.SetGCInterval(64)
	m.StepBatch(events[:k])
	var seqSnap bytes.Buffer
	if err := m.Snapshot(&seqSnap); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 1, 2, 4, 8} {
		s, err := ReadSnapshot(bytes.NewReader(seqSnap.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		p := s.Pipeline(PipelineConfig{Shards: shards})
		p.StepBatch(events[k:])
		if got := p.Finish(); !race.ReportsEqual(got, wantReports) {
			t.Fatalf("shards=%d: sequential→pipeline resume diverged\ngot  %v\nwant %v", shards, got, wantReports)
		}
		if p.RAStats() != wantStats {
			t.Fatalf("shards=%d: RA stats %+v, want %+v", shards, p.RAStats(), wantStats)
		}
	}

	// Pipeline → sequential.
	p := NewPipeline(5, decls, PipelineConfig{Shards: 3, GCInterval: 64})
	p.StepBatch(events[:k])
	var plSnap bytes.Buffer
	if err := p.Snapshot(&plSnap); err != nil {
		t.Fatal(err)
	}
	p.Abort()
	restored, err := Restore(bytes.NewReader(plSnap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, stats, _ := finish(restored, events[k:])
	if !race.ReportsEqual(got, wantReports) {
		t.Fatalf("pipeline→sequential resume diverged")
	}
	if stats != wantStats {
		t.Fatalf("pipeline→sequential RA stats %+v, want %+v", stats, wantStats)
	}
}

// encodeStream encodes a header and events in the given format.
func encodeStream(t *testing.T, hdr Header, events []Event, format Format) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, hdr, format)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := tw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReaderCheckpointResume: ingest k events from a binary trace, save
// monitor + reader continuation, then reopen the trace, Resume at the
// recorded offset and finish — reports and stats must equal a one-shot
// ingest. Covers v1 (per-event offsets) and v2 (frame offsets with
// mid-frame pending events), at split points inside and at frame
// boundaries.
func TestReaderCheckpointResume(t *testing.T) {
	decls, events := raWorkload(5, 12, 10_000, 17)
	hdr := Header{Threads: 5, Decls: decls}
	for _, format := range []Format{Binary, BinaryV2} {
		data := encodeStream(t, hdr, events, format)
		want, err := ReadRaces(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		refM, err := MonitorReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{0, 1, 3000, 4096, 5000, 8192, 9_999, 10_000} {
			tr, err := NewTraceReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			m := tr.NewMonitor()
			for i := 0; i < k; i++ {
				e, ok, err := tr.Next()
				if err != nil || !ok {
					t.Fatalf("%v k=%d i=%d: next: ok=%v err=%v", format, k, i, ok, err)
				}
				m.Step(e)
			}
			rck, err := tr.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := m.SnapshotWithReader(&buf, rck); err != nil {
				t.Fatal(err)
			}
			s, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			rck2, ok := s.Reader()
			if !ok {
				t.Fatal("snapshot lost the reader continuation")
			}
			tr2, err := NewTraceReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if err := tr2.Resume(rck2); err != nil {
				t.Fatalf("%v k=%d: resume: %v", format, k, err)
			}
			m2 := s.Monitor()
			if err := m2.FeedBatch(tr2); err != nil {
				t.Fatalf("%v k=%d: feed: %v", format, k, err)
			}
			if got := m2.Reports(); !race.ReportsEqual(got, want) {
				t.Fatalf("%v k=%d: resumed ingest diverged\ngot  %v\nwant %v", format, k, got, want)
			}
			if m2.RAStats() != refM.RAStats() {
				t.Fatalf("%v k=%d: RA stats %+v, want %+v", format, k, m2.RAStats(), refM.RAStats())
			}
			if m2.Events() != uint64(len(events)) {
				t.Fatalf("%v k=%d: events %d, want %d", format, k, m2.Events(), len(events))
			}
		}
	}
}

// TestReaderCheckpointMidFrameHalt is the regression bar for the
// decode-versus-delivery halt-set confusion: a v2 frame's halts are in
// the reader's halted set as soon as the FRAME is decoded, so a
// checkpoint taken before the halting thread's earlier accesses have
// been delivered carries both those accesses (Pending) and the halt
// (Halted) — which is consistent, must snapshot without error, and must
// resume to the same result as an unbroken ingest.
func TestReaderCheckpointMidFrameHalt(t *testing.T) {
	decls := []LocDecl{{Name: "x", Kind: prog.NonAtomic}}
	hdr := Header{Threads: 3, Decls: decls}
	// One frame: t1 acts, then halts, with t0 racing around it.
	events := []Event{
		{Thread: 0, Loc: 0, Kind: WriteNA},
		{Thread: 1, Loc: 0, Kind: ReadNA},
		{Thread: 1, Kind: KindHalt},
		{Thread: 2, Loc: 0, Kind: WriteNA},
		{Thread: 2, Kind: KindHalt},
		{Thread: 0, Loc: 0, Kind: ReadNA},
	}
	data := encodeStream(t, hdr, events, BinaryV2)
	ref, err := MonitorReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Every split lands mid-frame (the whole stream is one frame), so
	// each checkpoint with k < len carries pending events — including,
	// for k ≤ 2, a pending pre-halt access of a thread whose halt is
	// already in the decoder's halted set.
	for k := 0; k <= len(events); k++ {
		tr, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		m := tr.NewMonitor()
		for i := 0; i < k; i++ {
			e, ok, err := tr.Next()
			if err != nil || !ok {
				t.Fatalf("k=%d i=%d: ok=%v err=%v", k, i, ok, err)
			}
			m.Step(e)
		}
		rck, err := tr.Checkpoint()
		if err != nil {
			t.Fatalf("k=%d: checkpoint: %v", k, err)
		}
		var buf bytes.Buffer
		if err := m.SnapshotWithReader(&buf, rck); err != nil {
			t.Fatalf("k=%d: snapshot rejected a legitimate mid-frame halt checkpoint: %v", k, err)
		}
		s, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		rck2, _ := s.Reader()
		tr2, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if err := tr2.Resume(rck2); err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		m2 := s.Monitor()
		if err := m2.FeedBatch(tr2); err != nil {
			t.Fatalf("k=%d: feed: %v", k, err)
		}
		if !race.ReportsEqual(m2.Reports(), ref.Reports()) || m2.Events() != ref.Events() {
			t.Fatalf("k=%d: resumed halt stream diverged: %v (%d events) vs %v (%d events)",
				k, m2.Reports(), m2.Events(), ref.Reports(), ref.Events())
		}
	}
}

// TestReaderCheckpointText: the text format refuses checkpoints instead
// of producing a bogus offset.
func TestReaderCheckpointText(t *testing.T) {
	data := []byte("ldtrace 1\nthreads 1\nloc x na\n0 w x\n")
	tr, err := NewTraceReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Checkpoint(); err == nil {
		t.Fatal("text trace produced a checkpoint")
	}
	if err := tr.Resume(ReaderCheckpoint{}); err == nil {
		t.Fatal("text trace accepted a resume")
	}
}

// TestReaderResumeValidation: version mismatches, in-header offsets and
// over-long offsets are rejected.
func TestReaderResumeValidation(t *testing.T) {
	decls, events := raWorkload(3, 6, 200, 7)
	hdr := Header{Threads: 3, Decls: decls}
	v1 := encodeStream(t, hdr, events, Binary)
	v2 := encodeStream(t, hdr, events, BinaryV2)

	trV1, _ := NewTraceReader(bytes.NewReader(v1))
	ckV1, err := trV1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	trV2, _ := NewTraceReader(bytes.NewReader(v2))
	if err := trV2.Resume(ckV1); err == nil {
		t.Fatal("v2 reader accepted a v1 checkpoint")
	}
	tr, _ := NewTraceReader(bytes.NewReader(v1))
	if err := tr.Resume(ReaderCheckpoint{Offset: 1}); err == nil {
		t.Fatal("offset inside the header accepted")
	}
	tr, _ = NewTraceReader(bytes.NewReader(v1))
	if err := tr.Resume(ReaderCheckpoint{Offset: int64(len(v1)) + 100}); err == nil {
		t.Fatal("offset beyond the trace accepted")
	}
}

// snapSection frames one section for hand-built malformed snapshots.
func snapSection(tag byte, payload []byte) []byte {
	out := []byte{tag}
	out = appendUvarint(out, uint64(len(payload)))
	return append(out, payload...)
}

// minimalSnapshot hand-builds a valid 1-thread, 1-NA-location snapshot,
// with hooks to corrupt individual sections.
func minimalSnapshot(mutate func(sections map[byte][]byte)) []byte {
	sections := map[byte][]byte{}
	var h []byte
	h = appendUvarint(h, 1) // threads
	h = appendUvarint(h, 1) // nlocs
	h = appendUvarint(h, 1) // name len
	h = append(h, 'x')
	h = append(h, byte(prog.NonAtomic))
	sections[snapTagHeader] = h
	var sy []byte
	sy = appendUvarint(sy, 10)   // events
	sy = appendUvarint(sy, 4096) // gcEvery
	sy = appendUvarint(sy, 4106) // nextGC
	sy = appendUvarint(sy, 0)    // adaptMin
	sy = appendUvarint(sy, 0)    // adaptMax
	sy = appendUvarint(sy, 0)    // raPeak
	sy = appendUvarint(sy, 0)    // raCollected
	sy = append(sy, 0)           // halted bitset
	sections[snapTagSync] = sy
	var cl []byte
	cl = appendUvarint(cl, 10) // clocks[0][0]
	cl = appendUvarint(cl, 3)  // minClock[0]
	sections[snapTagClocks] = cl
	sections[snapTagAtomic] = []byte{}
	sections[snapTagRA] = []byte{}
	var na []byte
	na = append(na, 0)         // flags
	na = appendVarint(na, 0)   // wT = thread 0
	na = appendUvarint(na, 10) // wC
	na = appendVarint(na, -1)  // rT = noEpoch
	na = appendUvarint(na, 0)  // rC
	na = appendVarint(na, 0)   // lastT
	sections[snapTagNA] = na
	if mutate != nil {
		mutate(sections)
	}
	out := []byte(snapMagic)
	out = append(out, snapVersion)
	for _, tag := range []byte{snapTagHeader, snapTagSync, snapTagClocks, snapTagAtomic, snapTagRA, snapTagNA} {
		if p, ok := sections[tag]; ok {
			out = append(out, snapSection(tag, p)...)
		}
	}
	if p, ok := sections[snapTagReader]; ok {
		out = append(out, snapSection(snapTagReader, p)...)
	}
	return append(out, snapSection(snapTagEnd, nil)...)
}

// TestRestoreValidates: the decoder errors — never panics — on the
// format's failure shapes: truncation anywhere, clock-count mismatches,
// escalated epochs without vectors, out-of-range fields, bad masks, and
// reader continuations that break the halt promise.
func TestRestoreValidates(t *testing.T) {
	valid := minimalSnapshot(nil)
	if _, err := ReadSnapshot(bytes.NewReader(valid)); err != nil {
		t.Fatalf("hand-built snapshot rejected: %v", err)
	}
	// Every truncation must error cleanly.
	for i := 0; i < len(valid); i++ {
		if _, err := ReadSnapshot(bytes.NewReader(valid[:i])); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	cases := []struct {
		name   string
		mutate func(s map[byte][]byte)
	}{
		{"clock count short", func(s map[byte][]byte) {
			var cl []byte
			cl = appendUvarint(cl, 10) // missing minClock entry
			s[snapTagClocks] = cl
		}},
		{"clock section trailing bytes", func(s map[byte][]byte) {
			s[snapTagClocks] = appendUvarint(s[snapTagClocks], 99)
		}},
		{"escalated write without vector", func(s map[byte][]byte) {
			var na []byte
			na = append(na, 0)
			na = appendVarint(na, -2) // escalated
			na = appendUvarint(na, 10)
			na = appendVarint(na, -1)
			na = appendUvarint(na, 0)
			na = appendVarint(na, 0)
			s[snapTagNA] = na
		}},
		{"epoch thread out of range", func(s map[byte][]byte) {
			var na []byte
			na = append(na, 0)
			na = appendVarint(na, 7) // thread 7 of 1
			na = appendUvarint(na, 10)
			na = appendVarint(na, -1)
			na = appendUvarint(na, 0)
			na = appendVarint(na, 0)
			s[snapTagNA] = na
		}},
		{"bad mask bits", func(s map[byte][]byte) {
			var na []byte
			na = append(na, 4) // reported flag
			na = appendVarint(na, 0)
			na = appendUvarint(na, 10)
			na = appendVarint(na, -1)
			na = appendUvarint(na, 0)
			na = appendVarint(na, 0)
			na = append(na, 0xF0) // mask byte with unknown bits
			s[snapTagNA] = na
		}},
		{"gcEvery zero", func(s map[byte][]byte) {
			var sy []byte
			sy = appendUvarint(sy, 10)
			sy = appendUvarint(sy, 0) // gcEvery 0
			sy = appendUvarint(sy, 4106)
			sy = appendUvarint(sy, 0)
			sy = appendUvarint(sy, 0)
			sy = appendUvarint(sy, 0)
			sy = appendUvarint(sy, 0)
			sy = append(sy, 0)
			s[snapTagSync] = sy
		}},
		{"halted bitset ghost bits", func(s map[byte][]byte) {
			sy := bytes.Clone(s[snapTagSync])
			sy[len(sy)-1] = 0x80 // bit 7 of a 1-thread set
			s[snapTagSync] = sy
		}},
		{"missing section", func(s map[byte][]byte) {
			delete(s, snapTagRA)
		}},
		{"reader post-halt pending", func(s map[byte][]byte) {
			var rd []byte
			rd = appendUvarint(rd, 100)   // offset
			rd = append(rd, 1)            // v2
			rd = appendVarint(rd, 0)      // prevThread
			rd = appendVarint(rd, 0)      // prevLoc[0]
			rd = appendVarint(rd, 0)      // prevNum[0]
			rd = append(rd, 1)            // halted: thread 0
			rd = appendUvarint(rd, 1)     // one pending event
			rd = append(rd, byte(ReadNA)) // … of the halted thread
			rd = appendUvarint(rd, 0)
			rd = appendUvarint(rd, 0)
			s[snapTagReader] = rd
		}},
		{"reader pending kind mismatch", func(s map[byte][]byte) {
			var rd []byte
			rd = appendUvarint(rd, 100)
			rd = append(rd, 1)
			rd = appendVarint(rd, 0)
			rd = appendVarint(rd, 0)
			rd = appendVarint(rd, 0)
			rd = append(rd, 0)
			rd = appendUvarint(rd, 1)
			rd = append(rd, byte(ReadRA)) // RA access on an NA location
			rd = appendUvarint(rd, 0)
			rd = appendUvarint(rd, 0)
			rd = appendVarint(rd, 1)
			rd = appendUvarint(rd, 1)
			s[snapTagReader] = rd
		}},
	}
	for _, tc := range cases {
		data := minimalSnapshot(tc.mutate)
		if _, err := ReadSnapshot(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Bad magic / version.
	if _, err := ReadSnapshot(bytes.NewReader([]byte("LDTR\x01"))); err == nil {
		t.Error("wire magic accepted as snapshot")
	}
	bad := bytes.Clone(valid)
	bad[4] = 9
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Error("unknown version accepted")
	}
}

// TestSnapshotSizeBounded is the boundedness property made measurable:
// across a 1M-event stream the windowed monitor's snapshot stays flat —
// O(locations + threads² + live RA) — while an unbounded-GC control's
// snapshot grows with the retained message count.
func TestSnapshotSizeBounded(t *testing.T) {
	decls, events := raWorkload(8, 16, 1_000_000, 23)
	bounded := New(8, decls)
	bounded.SetGCInterval(256) // small window: the live RA wobble stays
	// a fraction of the fixed O(locations + threads²) state
	control := New(8, decls)
	control.SetGCInterval(1 << 62) // never sweeps: retains every message
	const every = 100_000
	var boundedSizes, controlSizes []int
	snapLen := func(m *Monitor) int {
		var buf bytes.Buffer
		if err := m.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	for i := 0; i < len(events); i += every {
		bounded.StepBatch(events[i : i+every])
		control.StepBatch(events[i : i+every])
		boundedSizes = append(boundedSizes, snapLen(bounded))
		controlSizes = append(controlSizes, snapLen(control))
	}
	// Flat: once the per-location state has saturated (first checkpoint),
	// the bounded snapshot may wobble with the live RA window but must
	// not trend with the stream length.
	min, max := boundedSizes[0], boundedSizes[0]
	for _, s := range boundedSizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max > 2*min {
		t.Fatalf("bounded snapshot not flat: sizes %v (max %d > 2×min %d)", boundedSizes, max, min)
	}
	// Growing: the control must gain at least a message's worth per
	// checkpoint and dwarf the bounded snapshot by the end.
	for i := 1; i < len(controlSizes); i++ {
		if controlSizes[i] <= controlSizes[i-1] {
			t.Fatalf("unbounded control stopped growing at checkpoint %d: %v", i, controlSizes)
		}
	}
	last := len(boundedSizes) - 1
	if controlSizes[last] < 10*boundedSizes[last] {
		t.Fatalf("control %d bytes not ≫ bounded %d bytes — fixture lost its point",
			controlSizes[last], boundedSizes[last])
	}
	t.Logf("snapshot bytes at 100k-event checkpoints: bounded %v, unbounded control %v", boundedSizes, controlSizes)
}

// TestSnapshotChunkedSections: states whose per-location payload sums
// past the ~1 MiB chunk size split across repeated sections, and
// whatever Snapshot writes, ReadSnapshot accepts — the regression bar
// for the encoder/decoder asymmetry where a wide monitor (hundreds of
// threads, many raced locations, or an unbounded-GC RA backlog) wrote a
// single section larger than the decoder's payload cap, making a
// successfully written checkpoint unresumable.
func TestSnapshotChunkedSections(t *testing.T) {
	const threads = 256
	var decls []LocDecl
	for i := 0; i < 40; i++ {
		decls = append(decls, LocDecl{Name: prog.Loc(fmt.Sprintf("n%d", i)), Kind: prog.NonAtomic})
	}
	decls = append(decls, LocDecl{Name: "R", Kind: prog.ReleaseAcquire})
	raLoc := int32(len(decls) - 1)
	m := New(threads, decls)
	m.SetGCInterval(1 << 62) // retain every RA message
	// Race every NA location across two threads: each allocates a
	// threads² = 64 KiB dedup mask, so the NA section alone spans
	// multiple chunks.
	for l := int32(0); l < raLoc; l++ {
		m.Step(Event{Thread: int32(l) % threads, Loc: l, Kind: WriteNA})
		m.Step(Event{Thread: (int32(l) + 1) % threads, Loc: l, Kind: WriteNA})
	}
	// And a deep RA backlog so the RA section chunks too.
	for i := int64(1); i <= 2_000; i++ {
		m.Step(Event{Thread: int32(i) % threads, Loc: raLoc, Kind: WriteRA, Time: ts.FromInt(i)})
	}
	var a bytes.Buffer
	if err := m.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if a.Len() < 3*snapChunk {
		t.Fatalf("fixture too small to chunk: %d bytes", a.Len())
	}
	restored, err := Restore(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("decoder rejected the encoder's own output: %v", err)
	}
	var b bytes.Buffer
	if err := restored.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("chunked snapshot not canonical (%d vs %d bytes)", a.Len(), b.Len())
	}
	if restored.RaceCount() != m.RaceCount() || restored.RAStats() != m.RAStats() {
		t.Fatalf("chunked restore lost state: races %d/%d, stats %+v/%+v",
			restored.RaceCount(), m.RaceCount(), restored.RAStats(), m.RAStats())
	}
}

// FuzzRestore: the snapshot decoder must never panic, and any snapshot
// it accepts must restore a monitor that can consume further events and
// produce reports without crashing. Seeded with genuine snapshots at
// several split points (sequential and mid-ingestion with reader
// continuations) plus corruption shapes.
func FuzzRestore(f *testing.F) {
	decls, events := raWorkload(4, 8, 2_000, 17)
	hdr := Header{Threads: 4, Decls: decls}
	snapAt := func(k int) []byte {
		m := New(4, decls)
		m.SetGCInterval(32)
		m.StepBatch(events[:k])
		var buf bytes.Buffer
		if err := m.Snapshot(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(snapAt(0))
	f.Add(snapAt(700))
	f.Add(snapAt(2_000))
	// A mid-ingestion snapshot with a v2 reader continuation (pending
	// events included: 700 lands mid-frame at the default frame size).
	var wireBuf bytes.Buffer
	tw, err := NewTraceWriter(&wireBuf, hdr, BinaryV2)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range events {
		if err := tw.Write(e); err != nil {
			f.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		f.Fatal(err)
	}
	tr, err := NewTraceReader(bytes.NewReader(wireBuf.Bytes()))
	if err != nil {
		f.Fatal(err)
	}
	m := tr.NewMonitor()
	for i := 0; i < 700; i++ {
		e, _, err := tr.Next()
		if err != nil {
			f.Fatal(err)
		}
		m.Step(e)
	}
	rck, err := tr.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	var withReader bytes.Buffer
	if err := m.SnapshotWithReader(&withReader, rck); err != nil {
		f.Fatal(err)
	}
	f.Add(withReader.Bytes())
	base := snapAt(700)
	f.Add(base[:len(base)-3]) // truncated
	f.Add(func() []byte {     // corrupted mid-section
		b := bytes.Clone(base)
		b[len(b)/2] ^= 0xFF
		return b
	}())
	f.Add([]byte("LDCK\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		h := s.Header()
		// Cap the restored shape: the limits admit sizes that are fine for
		// real monitors but too slow to exercise per fuzz exec.
		if h.Threads > 64 || len(h.Decls) > 1024 {
			return
		}
		if rck, ok := s.Reader(); ok {
			// Accepted continuations must satisfy their own invariants.
			if err := rck.validate(h); err != nil {
				t.Fatalf("accepted reader continuation fails validation: %v", err)
			}
		}
		rm := s.Monitor()
		// The restored monitor must consume arbitrary in-bounds events
		// without panicking.
		for i, d := range h.Decls {
			var k Kind
			switch d.Kind {
			case prog.Atomic:
				k = WriteAT
			case prog.ReleaseAcquire:
				k = WriteRA
			default:
				k = WriteNA
			}
			rm.Step(Event{Thread: int32(i % h.Threads), Loc: int32(i), Kind: k, Time: ts.FromInt(int64(i))})
			rm.Step(Event{Thread: int32((i + 1) % h.Threads), Loc: int32(i), Kind: k - 1, Time: ts.FromInt(int64(i))})
		}
		_ = rm.Reports()
		_ = rm.RAStats()
	})
}

// TestSnapshotRejectsInvalidHeader: a monitor built over declarations
// the wire header cannot carry (here: a name with a space) cannot be
// snapshotted — the error is reported, not deferred to restore time.
func TestSnapshotRejectsInvalidHeader(t *testing.T) {
	m := New(1, []LocDecl{{Name: prog.Loc("a b"), Kind: prog.NonAtomic}})
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err == nil {
		t.Fatal("snapshot accepted an unencodable location name")
	}
}

// TestSnapshotConsumedPanics pins the single-use contract of a decoded
// snapshot: the second hand-over panics with a clear message (API
// misuse, not input-driven — malformed input always errors instead).
func TestSnapshotConsumedPanics(t *testing.T) {
	decls := []LocDecl{{Name: "x", Kind: prog.NonAtomic}}
	m := New(1, decls)
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Monitor()
	defer func() {
		if recover() == nil {
			t.Fatal("second Monitor() did not panic")
		}
	}()
	_ = s.Monitor()
}
