package monitor

// Telemetry for the streaming monitor and the parallel pipeline, built
// on internal/obs. The design constraint is the hot path: the sequential
// monitor spends ~25ns per event, so even one atomic RMW per event
// (~5ns) would be a double-digit regression. The instrumentation
// therefore splits in two:
//
//   - Hot paths tally into PLAIN single-writer fields (Monitor.kinds,
//     Pipeline.routed, checker.escalations, …) — an ordinary increment,
//     well under a nanosecond, invisible in the benchmarks.
//
//   - At natural barriers — GC sweeps (every ≤ gcEvery events), batch
//     flushes, quiesce acks — the owner publishes the tallies into the
//     registry's padded atomic cells (publishObs). Concurrent readers
//     (racemon's /stats handler) touch ONLY the atomic cells via
//     Registry.Snapshot, so a live endpoint is race-free and costs the
//     hot path nothing; the price is bounded staleness of one GC window
//     or batch.
//
// Two read paths follow from that split:
//
//   - Monitor.Stats / Pipeline.Stats publish pending tallies first and
//     return exact values, but must be called from the feeding
//     goroutine (the pipeline form quiesces, like BackendLoads).
//   - Monitor.Obs / Pipeline.Obs expose the registry itself; Snapshot
//     on it is safe from ANY goroutine at any time and reflects the
//     last publication.
//
// Metric names (stable; racemon's /stats and -json "stats" serve them):
//
//	monitor.events                   counter  events consumed
//	monitor.events.<kind>            counter  per-kind breakdown (read_na, write_na,
//	                                          read_at, write_at, read_ra, write_ra, halt)
//	monitor.races                    counter  distinct races reported
//	monitor.gc.sweeps                counter  frontier refreshes
//	monitor.gc.sweeps_productive     counter  sweeps that reclaimed ≥ 1 RA message
//	monitor.gc.sweeps_unproductive   counter  sweeps that reclaimed none
//	monitor.gc.interval              gauge    current interval (adapts under SetAdaptiveGC)
//	monitor.ra.live / .peak          gauge    retained RA messages now / high-water
//	monitor.ra.collected             counter  RA messages reclaimed
//	monitor.escalations              counter  epoch→vector transitions
//	monitor.demotions                counter  vector→epoch compactions
//	monitor.escalated_vectors        gauge    sides currently escalated
//	monitor.snapshot.encode_bytes/_ns  hist   checkpoint sizes and latency
//	monitor.snapshot.decode_bytes/_ns  hist   restore sizes and latency
//
//	predict.predicate                gauge    active predicate (0 hb, 1 syncp, 2 short;
//	                                          registered only when non-default)
//	predict.window_k                 gauge    PredShort distance bound
//	predict.window_live              gauge    short-race window entries held
//	predict.window_peak              gauge    high-water mark of window entries
//	predict.window_races             counter  races the window checker reported
//	predict.pruned                   counter  expired window entries dropped
//
//	pipeline.routed_records          counter  NA records routed to back-ends
//	pipeline.delta_records           counter  clock-delta records broadcast
//	pipeline.min_records             counter  frontier + barrier records broadcast
//	pipeline.batch_records           hist     flushed batch sizes (count = batches)
//	pipeline.quiesces                counter  quiesce barriers
//	pipeline.quiesce_ns              hist     quiesce latency
//	pipeline.migrations              counter  rebalancer location moves
//	pipeline.load_imbalance_permille gauge    1000·max/mean back-end traffic at last sweep
//	pipeline.ring_occupancy          vec      batches queued per back-end ring (sampled)
//	pipeline.ring_stalls/.ring_idles counter  producer-full / consumer-empty blocks
//	pipeline.backend_records         vec      NA records applied per back-end
//	pipeline.backend_escalated       vec      escalated sides per back-end
//	pipeline.backend_races           vec      races found per back-end
//
//	parse.frames / parse.bytes       vec      frames / payload bytes per parse worker
//	parse.sequencer_wait_ns          counter  time NextBatch blocked on out-of-order frames
//
// The registry also backs racemon's /debug/vars and the periodic
// progress line; see cmd/racemon.

import (
	"localdrf/internal/obs"
)

// kindNames indexes Kind for the per-kind event counters.
var kindNames = [...]string{
	ReadNA:   "read_na",
	WriteNA:  "write_na",
	ReadAT:   "read_at",
	WriteAT:  "write_at",
	ReadRA:   "read_ra",
	WriteRA:  "write_ra",
	KindHalt: "halt",
}

// monCells is a monitor's pre-resolved registry cells — looked up once
// at construction so publishObs is a straight run of atomic stores.
type monCells struct {
	events       *obs.Counter
	kinds        [len(kindNames)]*obs.Counter
	races        *obs.Counter
	gcSweeps     *obs.Counter
	gcProd       *obs.Counter
	gcUnprod     *obs.Counter
	gcInterval   *obs.Gauge
	raLive       *obs.Gauge
	raPeak       *obs.Gauge
	raCollected  *obs.Counter
	escalations  *obs.Counter
	demotions    *obs.Counter
	escalated    *obs.Gauge
	snapEncBytes *obs.Hist
	snapEncNs    *obs.Hist
	snapDecBytes *obs.Hist
	snapDecNs    *obs.Hist
	// pc holds the predict.* cells, registered lazily by SetPredicate so
	// default-predicate monitors expose no dead predict metrics.
	pc *predCells
}

// predCells is the predictive-checker cell bundle (see predict.go).
type predCells struct {
	predicate *obs.Gauge
	windowK   *obs.Gauge
	winLive   *obs.Gauge
	winPeak   *obs.Gauge
	winRaces  *obs.Counter
	winPruned *obs.Counter
}

// ensurePredCells registers the predict.* cells on first use (the hot
// path publishes through them only when a predictive predicate is
// active).
func (m *Monitor) ensurePredCells() {
	if m.mo.pc != nil {
		return
	}
	m.mo.pc = &predCells{
		predicate: m.reg.Gauge("predict.predicate"),
		windowK:   m.reg.Gauge("predict.window_k"),
		winLive:   m.reg.Gauge("predict.window_live"),
		winPeak:   m.reg.Gauge("predict.window_peak"),
		winRaces:  m.reg.Counter("predict.window_races"),
		winPruned: m.reg.Counter("predict.pruned"),
	}
}

func newMonCells(reg *obs.Registry) monCells {
	mc := monCells{
		events:       reg.Counter("monitor.events"),
		races:        reg.Counter("monitor.races"),
		gcSweeps:     reg.Counter("monitor.gc.sweeps"),
		gcProd:       reg.Counter("monitor.gc.sweeps_productive"),
		gcUnprod:     reg.Counter("monitor.gc.sweeps_unproductive"),
		gcInterval:   reg.Gauge("monitor.gc.interval"),
		raLive:       reg.Gauge("monitor.ra.live"),
		raPeak:       reg.Gauge("monitor.ra.peak"),
		raCollected:  reg.Counter("monitor.ra.collected"),
		escalations:  reg.Counter("monitor.escalations"),
		demotions:    reg.Counter("monitor.demotions"),
		escalated:    reg.Gauge("monitor.escalated_vectors"),
		snapEncBytes: reg.Hist("monitor.snapshot.encode_bytes"),
		snapEncNs:    reg.Hist("monitor.snapshot.encode_ns"),
		snapDecBytes: reg.Hist("monitor.snapshot.decode_bytes"),
		snapDecNs:    reg.Hist("monitor.snapshot.decode_ns"),
	}
	for k, name := range kindNames {
		mc.kinds[k] = reg.Counter("monitor.events." + name)
	}
	return mc
}

// publishObs copies the monitor's plain tallies into the registry's
// atomic cells. Called at GC sweeps, Reset, and Stats — always from the
// goroutine that owns the monitor.
func (m *Monitor) publishObs() {
	mo := &m.mo
	mo.events.Store(m.events)
	for k := range kindNames {
		mo.kinds[k].Store(m.kinds[k])
	}
	mo.gcSweeps.Store(m.gcSweeps)
	mo.gcProd.Store(m.gcProductive)
	mo.gcUnprod.Store(m.gcSweeps - m.gcProductive)
	mo.gcInterval.Set(int64(m.gcEvery))
	mo.raLive.Set(int64(m.raLive))
	mo.raPeak.Set(int64(m.raPeak))
	mo.raCollected.Store(m.raCollected)
	if m.ck.na != nil {
		// A pipeline front-end owns no checker; the pipeline aggregates
		// its back-ends into these cells instead (Pipeline.publishObs).
		races := uint64(m.ck.races)
		if m.win != nil {
			races += uint64(m.win.races)
		}
		mo.races.Store(races)
		mo.escalations.Store(m.ck.escalations)
		mo.demotions.Store(m.ck.demotions)
		mo.escalated.Set(int64(m.ck.escalatedSides))
	}
	if mo.pc != nil {
		mo.pc.predicate.Set(int64(m.pred))
		mo.pc.windowK.Set(int64(m.windowK))
		if m.win != nil {
			mo.pc.winLive.Set(int64(m.win.live))
			mo.pc.winPeak.Set(int64(m.win.peak))
			mo.pc.winRaces.Store(uint64(m.win.races))
			mo.pc.winPruned.Store(m.win.pruned)
		}
	}
}

// Obs returns the monitor's metric registry. Registry.Snapshot on it is
// safe from any goroutine while the monitor runs; values lag the stream
// by at most one GC window (see Stats for exact values).
func (m *Monitor) Obs() *obs.Registry { return m.reg }

// Stats publishes all pending tallies and returns an exact metrics
// snapshot. Unlike Obs().Snapshot(), it must be called from the feeding
// goroutine (between Steps). RAStats remains the stable, typed subset.
func (m *Monitor) Stats() obs.Snapshot {
	m.publishObs()
	return m.reg.Snapshot()
}

// pipeCells is the pipeline's own cell bundle, registered in the
// front-end's registry so one snapshot covers both layers.
type pipeCells struct {
	routed     *obs.Counter
	delta      *obs.Counter
	minRecs    *obs.Counter
	batchHist  *obs.Hist
	quiesces   *obs.Counter
	quiesceNs  *obs.Hist
	migrations *obs.Counter
	imbalance  *obs.Gauge
	ringOcc    *obs.Vec
	ringStalls *obs.Counter
	ringIdles  *obs.Counter
	backRecs   *obs.Vec
	backEsc    *obs.Vec
	backRaces  *obs.Vec
}

func newPipeCells(reg *obs.Registry, shards int) pipeCells {
	return pipeCells{
		routed:     reg.Counter("pipeline.routed_records"),
		delta:      reg.Counter("pipeline.delta_records"),
		minRecs:    reg.Counter("pipeline.min_records"),
		batchHist:  reg.Hist("pipeline.batch_records"),
		quiesces:   reg.Counter("pipeline.quiesces"),
		quiesceNs:  reg.Hist("pipeline.quiesce_ns"),
		migrations: reg.Counter("pipeline.migrations"),
		imbalance:  reg.Gauge("pipeline.load_imbalance_permille"),
		ringOcc:    reg.Vec("pipeline.ring_occupancy", shards),
		ringStalls: reg.Counter("pipeline.ring_stalls"),
		ringIdles:  reg.Counter("pipeline.ring_idles"),
		backRecs:   reg.Vec("pipeline.backend_records", shards),
		backEsc:    reg.Vec("pipeline.backend_escalated", shards),
		backRaces:  reg.Vec("pipeline.backend_races", shards),
	}
}

// publishObs publishes the front-end-owned pipeline tallies and samples
// the ring telemetry. Called at GC sweeps and from Stats — always from
// the feeding goroutine (the back-ends publish their own vec entries at
// batch boundaries; see backend.publish).
func (p *Pipeline) publishObs() {
	po := &p.po
	po.routed.Store(p.routed)
	po.delta.Store(p.deltaRecs)
	po.minRecs.Store(p.minRecsSent)
	var stalls, idles uint64
	for s, ln := range p.lanes {
		po.ringOcc.Store(s, uint64(ln.q.Len()))
		st, id := ln.q.Stats()
		stalls += st
		idles += id
	}
	po.ringStalls.Store(stalls)
	po.ringIdles.Store(idles)
}

// Obs returns the pipeline's metric registry (shared with the
// front-end, so monitor.* and pipeline.* metrics appear together).
// Registry.Snapshot on it is safe from any goroutine while the pipeline
// runs; values lag by at most one GC window or in-flight batch.
func (p *Pipeline) Obs() *obs.Registry { return p.fe.reg }

// Stats quiesces a live pipeline, publishes every layer's pending
// tallies — including exact cross-back-end aggregates into the
// monitor.* cells — and returns the metrics snapshot. Must be called
// from the feeding goroutine (between Steps); after Finish it may be
// called from anywhere.
func (p *Pipeline) Stats() obs.Snapshot {
	if !p.done {
		p.quiesce()
	}
	// Behind the quiesce ack (or Finish's wg.Wait) the back-end checkers
	// are safe to read directly: aggregate them into the monitor.* cells
	// the sequential monitor fills itself, so a pipeline snapshot is a
	// superset of the sequential one.
	var races, esc int
	var escN, demN uint64
	for s, b := range p.backs {
		races += b.ck.races
		esc += b.ck.escalatedSides
		escN += b.ck.escalations
		demN += b.ck.demotions
		p.po.backRaces.Store(s, uint64(b.ck.races))
		p.po.backEsc.Store(s, uint64(b.ck.escalatedSides))
	}
	if p.fe.win != nil {
		races += p.fe.win.races
	}
	mo := &p.fe.mo
	mo.races.Store(uint64(races))
	mo.escalated.Set(int64(esc))
	mo.escalations.Store(escN)
	mo.demotions.Store(demN)
	p.fe.publishObs()
	p.publishObs()
	return p.fe.reg.Snapshot()
}
