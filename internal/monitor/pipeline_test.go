package monitor

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"localdrf/internal/prog"
	"localdrf/internal/race"
	"localdrf/internal/ts"
)

// mustNotLeakGoroutines runs fn and fails if the goroutine count has not
// returned to its starting level shortly after — the leak detector for
// the pipeline teardown paths. (Retries absorb exiting goroutines that
// have not been reaped yet.)
func mustNotLeakGoroutines(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPipelineMatrixMatchesSequential is the pipeline determinism bar on
// synthetic streams: byte-identical reports to the sequential monitor at
// every (shard count, batch size, GC interval) combination, on both an
// atomic-sync and an RA-heavy workload. (The schedgen-stream and corpus
// sweeps live in internal/modeltest.)
func TestPipelineMatrixMatchesSequential(t *testing.T) {
	workloads := []struct {
		name   string
		decls  []LocDecl
		events []Event
	}{
		{"atomic", nil, nil},
		{"ra", nil, nil},
	}
	workloads[0].decls, workloads[0].events = syntheticWorkload(6, 24, 30_000, 31)
	workloads[1].decls, workloads[1].events = raWorkload(5, 12, 30_000, 17)

	for _, w := range workloads {
		for _, interval := range []uint64{16, 0} {
			ref := New(6, w.decls)
			if interval > 0 {
				ref.SetGCInterval(interval)
			}
			ref.StepBatch(w.events)
			want := ref.Reports()
			if len(want) == 0 {
				t.Fatalf("%s: workload produced no races; not a useful fixture", w.name)
			}
			for _, shards := range []int{1, 2, 3, 4, 8} {
				for _, batch := range []int{1, 64, 4096} {
					got := PipelineRaces(6, w.decls, w.events, PipelineConfig{
						Shards: shards, BatchSize: batch, GCInterval: interval,
					})
					if !race.ReportsEqual(got, want) {
						t.Fatalf("%s shards=%d batch=%d gc=%d: pipeline diverged\ngot  %v\nwant %v",
							w.name, shards, batch, interval, got, want)
					}
				}
			}
		}
	}
}

// TestPipelineBackpressure: a tiny queue depth forces the front-end to
// block on full rings mid-stream; the result must not change.
func TestPipelineBackpressure(t *testing.T) {
	decls, events := syntheticWorkload(6, 24, 30_000, 31)
	want := PipelineRaces(6, decls, events, PipelineConfig{Shards: 1})
	got := PipelineRaces(6, decls, events, PipelineConfig{Shards: 4, BatchSize: 8, QueueDepth: 1})
	if !race.ReportsEqual(got, want) {
		t.Fatalf("backpressured pipeline diverged: got %v, want %v", got, want)
	}
}

// TestPipelineRaceStress hammers the pipeline with many back-ends over a
// mixed stream with heavy synchronisation traffic — the test exists to
// run under `go test -race` (CI does), where the checker mirrors, the
// delta side channel and the SPSC rings are all data-race-checked.
func TestPipelineRaceStress(t *testing.T) {
	decls, events := raWorkload(8, 24, 120_000, 41)
	ref := New(8, decls)
	ref.StepBatch(events)
	want := ref.Reports()
	for _, cfg := range []PipelineConfig{
		{Shards: 8, BatchSize: 64, QueueDepth: 2},
		{Shards: 4, BatchSize: 1024, GCInterval: 32},
		{Shards: 3, BatchSize: 1},
	} {
		p := NewPipeline(8, decls, cfg)
		// Feed in ragged batches so flushes land at odd positions.
		for i := 0; i < len(events); {
			n := 1 + (i*7)%997
			if i+n > len(events) {
				n = len(events) - i
			}
			p.StepBatch(events[i : i+n])
			i += n
		}
		if got := p.Finish(); !race.ReportsEqual(got, want) {
			t.Fatalf("%+v: pipeline diverged under stress", cfg)
		}
		if got := p.Finish(); !race.ReportsEqual(got, want) {
			t.Fatalf("%+v: Finish is not idempotent", cfg)
		}
		if p.Events() != uint64(len(events)) {
			t.Fatalf("%+v: Events() = %d, want %d", cfg, p.Events(), len(events))
		}
	}
}

// TestPipelineFeedSources: the pull-side entry points (Feed from a
// Source, FeedBatch from a BatchSource) agree with the push side.
func TestPipelineFeedSources(t *testing.T) {
	decls, events := syntheticWorkload(4, 12, 10_000, 7)
	want := PipelineRaces(4, decls, events, PipelineConfig{Shards: 2})
	p := NewPipeline(4, decls, PipelineConfig{Shards: 2})
	if err := p.Feed(&SliceSource{Events: events}); err != nil {
		t.Fatal(err)
	}
	if got := p.Finish(); !race.ReportsEqual(got, want) {
		t.Fatalf("Feed diverged: got %v, want %v", got, want)
	}
	p2 := NewPipeline(4, decls, PipelineConfig{Shards: 2})
	if err := p2.FeedBatch(&SliceSource{Events: events}); err != nil {
		t.Fatal(err)
	}
	if got := p2.Finish(); !race.ReportsEqual(got, want) {
		t.Fatalf("FeedBatch diverged: got %v, want %v", got, want)
	}
}

// TestPipelineAbortNoLeak: aborting a pipeline mid-stream — including
// while a feeder is concurrently blocked on a full ring — tears down
// every back-end goroutine. Runs under -race in CI, so the teardown
// paths (Close vs blocked Put, Close vs free-ring recycling) are
// data-race-checked too.
func TestPipelineAbortNoLeak(t *testing.T) {
	decls, events := raWorkload(6, 18, 60_000, 13)
	// Abort from the feeding goroutine at several positions.
	mustNotLeakGoroutines(t, func() {
		for _, k := range []int{0, 1, 30_000, 60_000} {
			p := NewPipeline(6, decls, PipelineConfig{Shards: 4, BatchSize: 16, QueueDepth: 1})
			p.StepBatch(events[:k])
			p.Abort()
			p.Abort() // idempotent
			if got := p.Finish(); got != nil {
				t.Fatalf("Finish after Abort returned reports: %v", got)
			}
		}
	})
	// Abort from another goroutine while the feeder is live (and likely
	// blocked: tiny batches, depth-1 rings, no consumer keeping up once
	// the abort lands). The feeder must unblock and run to completion.
	mustNotLeakGoroutines(t, func() {
		for i := 0; i < 20; i++ {
			p := NewPipeline(6, decls, PipelineConfig{Shards: 3, BatchSize: 4, QueueDepth: 1})
			fed := make(chan struct{})
			go func() {
				defer close(fed)
				for j := range events {
					p.Step(events[j])
				}
			}()
			time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
			p.Abort()
			<-fed
		}
	})
}

// haltRAStream builds a retire-heavy RA stream: writer threads publish a
// burst of RA messages, read each other once, and fall silent (halting
// when halts is true), while one reader thread keeps running. Without
// halts the silent writers pin the GC frontier forever; with halts their
// frontier entries become +∞ and the window can close.
func haltRAStream(halts bool) ([]LocDecl, []Event) {
	decls := []LocDecl{
		{Name: "R", Kind: prog.ReleaseAcquire},
		{Name: "x", Kind: prog.NonAtomic},
	}
	const writers = 3
	var events []Event
	tm := int64(0)
	for w := int32(0); w < writers; w++ {
		for i := 0; i < 50; i++ {
			tm++
			events = append(events, Event{Thread: w, Loc: 0, Kind: WriteRA, Time: ts.FromInt(tm)})
		}
		// Each writer acquires the latest message so far, so the writers
		// are pairwise synchronised up to their retirement point.
		events = append(events, Event{Thread: w, Loc: 0, Kind: ReadRA, Time: ts.FromInt(tm)})
		if halts {
			events = append(events, Event{Thread: w, Kind: KindHalt})
		}
	}
	// The long-lived reader keeps consuming the latest message and
	// touching data; everything it could learn from the retired writers
	// it has already learnt.
	for i := 0; i < 2000; i++ {
		events = append(events,
			Event{Thread: writers, Loc: 0, Kind: ReadRA, Time: ts.FromInt(tm)},
			Event{Thread: writers, Loc: 1, Kind: WriteNA})
	}
	return decls, events
}

// TestHaltUnpinsGC is the thread-retirement satellite's differential
// bar: on a retire-heavy stream, reports are unchanged by halt events
// while ra_collected strictly improves (and the live set drops to the
// window the surviving reader actually needs).
func TestHaltUnpinsGC(t *testing.T) {
	declsPlain, plain := haltRAStream(false)
	declsHalt, halted := haltRAStream(true)
	mPlain := New(4, declsPlain)
	mPlain.SetGCInterval(64)
	mPlain.StepBatch(plain)
	mHalt := New(4, declsHalt)
	mHalt.SetGCInterval(64)
	mHalt.StepBatch(halted)

	if !race.ReportsEqual(mPlain.Reports(), mHalt.Reports()) {
		t.Fatalf("halt events changed the report set:\nplain %v\nhalt  %v",
			mPlain.Reports(), mHalt.Reports())
	}
	sp, sh := mPlain.RAStats(), mHalt.RAStats()
	if sh.Collected <= sp.Collected {
		t.Fatalf("halts did not improve collection: collected %d (halt) vs %d (plain)",
			sh.Collected, sp.Collected)
	}
	if sh.Live >= sp.Live {
		t.Fatalf("halts did not shrink the live set: live %d (halt) vs %d (plain)",
			sh.Live, sp.Live)
	}
}

// TestHaltAllThreads: once every thread has halted the frontier is +∞
// everywhere and a sweep reclaims every retained message.
func TestHaltAllThreads(t *testing.T) {
	decls := []LocDecl{{Name: "R", Kind: prog.ReleaseAcquire}}
	m := New(2, decls)
	m.SetGCInterval(1 << 62) // no sweeps until we force one
	for i := int64(1); i <= 10; i++ {
		m.Step(Event{Thread: 0, Loc: 0, Kind: WriteRA, Time: ts.FromInt(i)})
	}
	m.Step(Event{Thread: 0, Kind: KindHalt})
	m.Step(Event{Thread: 1, Kind: KindHalt})
	m.SetGCInterval(1) // next event sweeps
	m.Step(Event{Thread: 1, Kind: KindHalt})
	if st := m.RAStats(); st.Live != 0 || st.Collected != 10 {
		t.Fatalf("all-halted sweep left live=%d collected=%d, want 0/10", st.Live, st.Collected)
	}
}

// TestHaltInPipeline: halt events flow through the pipeline front-end
// with the same retention effect and unchanged reports.
func TestHaltInPipeline(t *testing.T) {
	decls, events := haltRAStream(true)
	ref := New(4, decls)
	ref.SetGCInterval(64)
	ref.StepBatch(events)
	p := NewPipeline(4, decls, PipelineConfig{Shards: 2, GCInterval: 64})
	p.StepBatch(events)
	if got := p.Finish(); !race.ReportsEqual(got, ref.Reports()) {
		t.Fatalf("pipeline with halts diverged: got %v, want %v", got, ref.Reports())
	}
	if p.RAStats() != ref.RAStats() {
		t.Fatalf("pipeline RA stats %+v, want %+v", p.RAStats(), ref.RAStats())
	}
}

// TestAdaptiveGC: the live-pressure-driven interval keeps the report set
// identical at aggressive and lazy settings (the no-op-join invariant is
// schedule-independent), collects on RA-heavy streams, and stays inside
// its [min,max] bounds.
func TestAdaptiveGC(t *testing.T) {
	decls, events := raWorkload(5, 12, 40_000, 17)
	ref := New(5, decls)
	ref.StepBatch(events)
	want := ref.Reports()
	if len(want) == 0 {
		t.Fatal("workload produced no races; not a useful fixture")
	}
	for _, bounds := range [][2]uint64{
		{16, 64},          // aggressive: sweeps every few dozen events
		{4096, 1 << 20},   // lazy: may relax to a megaevent between sweeps
		{1, 1 << 62},      // unbounded range: adaptation alone drives it
		{1 << 20, 1 << 4}, // swapped bounds are normalised
	} {
		m := New(5, decls)
		m.SetAdaptiveGC(bounds[0], bounds[1])
		lo, hi := bounds[0], bounds[1]
		if lo > hi {
			lo, hi = hi, lo
		}
		m.StepBatch(events)
		if !race.ReportsEqual(m.Reports(), want) {
			t.Fatalf("adaptive GC %v diverged", bounds)
		}
		if m.gcEvery < lo || m.gcEvery > hi {
			t.Fatalf("adaptive GC %v: interval %d escaped [%d,%d]", bounds, m.gcEvery, lo, hi)
		}
		if st := m.RAStats(); st.Collected == 0 {
			t.Fatalf("adaptive GC %v collected nothing", bounds)
		}
	}
}

// TestAdaptiveGCAdapts: productive pressure tightens the interval;
// quiet streams and pinned frontiers (where sweeping cannot reclaim
// anything) relax it instead of spiralling into per-event sweeps.
func TestAdaptiveGCAdapts(t *testing.T) {
	decls := []LocDecl{
		{Name: "R", Kind: prog.ReleaseAcquire},
		{Name: "x", Kind: prog.NonAtomic},
	}
	// Productive pressure: thread 0 publishes a message almost every
	// event while thread 1 periodically acquires the latest, so each
	// sweep reclaims the consumed prefix and still finds a window's
	// worth of accumulated messages — the interval must tighten to the
	// floor.
	m := New(2, decls)
	m.SetAdaptiveGC(16, 4096)
	tm := int64(0)
	for i := 0; i < 20_000; i++ {
		if i%8 == 7 {
			m.Step(Event{Thread: 1, Loc: 0, Kind: ReadRA, Time: ts.FromInt(tm)})
			continue
		}
		tm++
		m.Step(Event{Thread: 0, Loc: 0, Kind: WriteRA, Time: ts.FromInt(tm)})
	}
	if m.gcEvery != 16 {
		t.Fatalf("productive pressure: interval %d, want the 16 floor", m.gcEvery)
	}
	if st := m.RAStats(); st.Collected == 0 {
		t.Fatal("productive pressure collected nothing")
	}
	// Quiet: pure nonatomic traffic retains nothing, so the interval
	// relaxes to the ceiling.
	q := New(2, decls)
	q.SetAdaptiveGC(16, 4096)
	for i := 0; i < 20_000; i++ {
		q.Step(Event{Thread: 0, Loc: 1, Kind: WriteNA})
	}
	if q.gcEvery != 4096 {
		t.Fatalf("quiet stream: interval %d, want the 4096 ceiling", q.gcEvery)
	}
	// Pinned frontier: two threads publish and never synchronise, so no
	// sweep can ever reclaim a message. The retention is semantically
	// required — tightening would only buy O(threads² + live) scans per
	// sweep — so the controller must back off to the ceiling, not chase
	// the growing live set down to the floor.
	pin := New(2, decls)
	pin.SetAdaptiveGC(16, 4096)
	tm = 0
	for i := 0; i < 20_000; i++ {
		tm++
		pin.Step(Event{Thread: int32(i % 2), Loc: 0, Kind: WriteRA, Time: ts.FromInt(tm)})
	}
	if pin.gcEvery != 4096 {
		t.Fatalf("pinned frontier: interval %d, want the 4096 ceiling", pin.gcEvery)
	}
	if st := pin.RAStats(); st.Collected != 0 {
		t.Fatalf("pinned frontier unexpectedly collected %d", st.Collected)
	}
	// SetGCInterval returns to fixed mode.
	q.SetGCInterval(128)
	if q.adaptMax != 0 || q.gcEvery != 128 {
		t.Fatal("SetGCInterval did not disable adaptive mode")
	}
}

// TestRebalanceBoundsHotShard: the static loc-mod-shards split has an
// adversarial worst case — a program whose nonatomic locations all sit
// at declaration indices ≡ 0 (mod shards) routes every access record to
// back-end 0. The skew-adaptive router must detect and repair that: by
// the end of the stream no back-end may carry more than 1.5× the mean
// record count (the rebalancer's own trigger threshold; only the short
// pre-first-sweep prefix is exempt, and it is noise at this stream
// length), while the static split demonstrably leaves every record on
// one back-end. Reports are identical in all configurations.
func TestRebalanceBoundsHotShard(t *testing.T) {
	const shards = 4
	// 16 nonatomic locations, every one at an index ≡ 0 (mod 4); the
	// filler slots are atomics, so the static router pins all
	// nonatomic traffic to back-end 0.
	decls := make([]LocDecl, 64)
	for i := range decls {
		k := prog.Atomic
		if i%shards == 0 {
			k = prog.NonAtomic
		}
		decls[i] = LocDecl{Name: prog.Loc(fmt.Sprintf("l%d", i)), Kind: k}
	}
	x := uint64(23)
	rnd := func(m int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(m))
	}
	events := make([]Event, 0, 200_000)
	for len(events) < cap(events) {
		t := int32(rnd(4))
		if rnd(10) == 0 {
			l := int32(rnd(16)*shards + 1 + rnd(shards-1)) // an atomic slot
			k := ReadAT
			if rnd(2) == 0 {
				k = WriteAT
			}
			events = append(events, Event{Thread: t, Loc: l, Kind: k})
			continue
		}
		l := int32(rnd(16) * shards) // a nonatomic slot: always ≡ 0 (mod shards)
		k := ReadNA
		if rnd(3) == 0 {
			k = WriteNA
		}
		events = append(events, Event{Thread: t, Loc: l, Kind: k})
	}

	ref := New(4, decls)
	ref.SetGCInterval(512)
	ref.StepBatch(events)
	want := ref.Reports()

	static := NewPipeline(4, decls, PipelineConfig{Shards: shards, GCInterval: 512})
	static.StepBatch(events)
	staticLoads := static.BackendLoads()
	if !race.ReportsEqual(static.Finish(), want) {
		t.Fatal("static pipeline diverged from sequential monitor")
	}
	for s := 1; s < shards; s++ {
		if staticLoads[s] != 0 {
			t.Fatalf("adversarial workload broke: back-end %d applied %d records under the static split (want 0)",
				s, staticLoads[s])
		}
	}

	reb := NewPipeline(4, decls, PipelineConfig{Shards: shards, GCInterval: 512, Rebalance: true})
	reb.StepBatch(events)
	loads := reb.BackendLoads()
	if reb.Migrations() == 0 {
		t.Fatal("rebalancer never migrated a location on the adversarial workload")
	}
	var total, max uint64
	for _, v := range loads {
		total += v
		if v > max {
			max = v
		}
	}
	if total != staticLoads[0] {
		t.Fatalf("rebalanced pipeline applied %d records, static applied %d", total, staticLoads[0])
	}
	avg := total / shards
	if bound := avg + avg/2; max > bound {
		t.Fatalf("hot back-end applied %d of %d records (loads %v); bound %d (1.5× mean)",
			max, total, loads, bound)
	}
	if !race.ReportsEqual(reb.Finish(), want) {
		t.Fatal("rebalanced pipeline diverged from sequential monitor")
	}
}

// TestHaltViaTableStream sanity-checks the Kind plumbing end to end: a
// halt for an out-of-range thread is rejected by event validation.
func TestHaltValidation(t *testing.T) {
	hdr := Header{Threads: 2, Decls: []LocDecl{{Name: "x", Kind: prog.NonAtomic}}}
	if err := validateEvent(hdr, Event{Thread: 1, Kind: KindHalt}); err != nil {
		t.Fatalf("valid halt rejected: %v", err)
	}
	if err := validateEvent(hdr, Event{Thread: 2, Kind: KindHalt}); err == nil {
		t.Fatal("halt with out-of-range thread accepted")
	}
	if err := validateEvent(hdr, Event{Thread: 0, Kind: Kind(7)}); err == nil {
		t.Fatal("kind 7 accepted")
	}
}

// BenchmarkPipeline4Bursty measures the pipeline at 4 back-ends on the
// bursty reference workload (compare BenchmarkMonitorBursty for the
// sequential bound; real speedups need GOMAXPROCS ≥ shards+1).
func BenchmarkPipeline4Bursty(b *testing.B) {
	decls, events := burstyWorkload(8, 64, 1_000_000, 97)
	b.SetBytes(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPipeline(8, decls, PipelineConfig{Shards: 4})
		p.StepBatch(events)
		p.Finish()
	}
}

// TestPipelineAbortContract pins the teardown contract documented on
// Abort: idempotent from any goroutine (including concurrently with
// itself), safe after Snapshot and after Finish, safe while a feeder is
// blocked on a full ring, and afterwards Finish returns nil while
// Snapshot fails. Regression test for the quiesce-vs-Abort deadlock
// (the barrier must only wait for acks whose nil batch was accepted
// before the rings closed).
func TestPipelineAbortContract(t *testing.T) {
	decls, events := raWorkload(6, 18, 40_000, 29)

	t.Run("after-snapshot", func(t *testing.T) {
		mustNotLeakGoroutines(t, func() {
			p := NewPipeline(6, decls, PipelineConfig{Shards: 4, BatchSize: 16})
			p.StepBatch(events[:20_000])
			var snap bytes.Buffer
			if err := p.Snapshot(&snap); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			p.Abort()
			if got := p.Finish(); got != nil {
				t.Fatalf("Finish after Abort returned reports: %v", got)
			}
			if err := p.Snapshot(&snap); err == nil || !strings.Contains(err.Error(), "abort") {
				t.Fatalf("Snapshot after Abort: err = %v, want abort error", err)
			}
			// The snapshot taken before the abort must still restore.
			s, err := ReadSnapshot(bytes.NewReader(snap.Bytes()))
			if err != nil {
				t.Fatalf("pre-abort snapshot unreadable: %v", err)
			}
			if got := s.Monitor().Events(); got != 20_000 {
				t.Fatalf("pre-abort snapshot events = %d, want 20000", got)
			}
		})
	})

	t.Run("concurrent-double-abort", func(t *testing.T) {
		mustNotLeakGoroutines(t, func() {
			for i := 0; i < 50; i++ {
				p := NewPipeline(6, decls, PipelineConfig{Shards: 3, BatchSize: 4, QueueDepth: 1})
				var feeders sync.WaitGroup
				feeders.Add(1)
				go func() {
					defer feeders.Done()
					p.StepBatch(events) // likely blocks on a full ring mid-way
				}()
				var wg sync.WaitGroup
				for a := 0; a < 3; a++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						p.Abort()
					}()
				}
				wg.Wait() // every Abort call returned ⇒ back-ends gone
				feeders.Wait()
				if got := p.Finish(); got != nil {
					t.Fatalf("Finish after concurrent aborts returned reports: %v", got)
				}
			}
		})
	})

	t.Run("after-finish", func(t *testing.T) {
		mustNotLeakGoroutines(t, func() {
			p := NewPipeline(6, decls, PipelineConfig{Shards: 4})
			p.StepBatch(events)
			want := p.Finish()
			p.Abort() // must be a harmless no-op on a finished pipeline
			if got := p.Finish(); !race.ReportsEqual(got, want) {
				t.Fatalf("Finish changed after post-Finish Abort: got %v, want %v", got, want)
			}
		})
	})

	t.Run("quiesce-accessor-after-abort", func(t *testing.T) {
		mustNotLeakGoroutines(t, func() {
			p := NewPipeline(6, decls, PipelineConfig{Shards: 4, BatchSize: 16})
			p.StepBatch(events[:10_000])
			p.Abort()
			// BackendLoads quiesces; after an abort the barrier must not
			// wait on back-ends that will never acknowledge.
			_ = p.BackendLoads()
			_ = p.EscalatedVectors()
			if p.Events() != 10_000 {
				t.Fatalf("Events after abort = %d, want 10000", p.Events())
			}
		})
	})
}
