package monitor

// The two-stage parallel pipeline: one synchronisation front-end, many
// location-partitioned race back-ends.
//
// The race checks of defs. 9/10 are independent per nonatomic location,
// but the happens-before clocks of def. 8 depend on *all*
// synchronisation events. The previous parallel mode resolved that
// tension by replaying the whole stream once per shard — O(shards ×
// events) total work, so parallelism made monitoring slower below ~6
// cores. The pipeline resolves it by splitting the two concerns:
//
//   - The front-end (the caller's goroutine, via Step/StepBatch/Feed)
//     consumes the stream exactly once. It performs every clock
//     operation: program-order increments, SC-atomic and RA reads-from
//     joins, RA message publication, windowed RA GC, and halt
//     bookkeeping. Nonatomic accesses need no clock work beyond the
//     program-order increment — the front-end only *routes* them.
//
//   - Each back-end owns the nonatomic locations with loc % shards ==
//     its index, and receives exactly two kinds of records, in stream
//     order: its own shard's nonatomic accesses (thread, location, kind,
//     and the access's own clock component), and the compact clock-delta
//     side channel — whenever a join raises entries of some thread's
//     clock, the changed (thread, index, value) triples are broadcast,
//     and each GC sweep broadcasts the refreshed minimum frontier.
//     Replaying the deltas keeps a back-end's mirror of the clocks
//     exactly equal to the front-end's at every routed access, so the
//     checker (the same code the sequential Monitor runs) makes
//     bit-identical decisions.
//
// Records move in batches over bounded SPSC rings (engine.BatchQueue,
// one per back-end, plus a reverse ring recycling spent buffers), so the
// hot path costs an append — no per-event channel send, no event-slice
// materialisation, natural backpressure, O(shards × batch × depth) fixed
// buffer memory. Total work is O(events) front-end + O(events/shards ×
// check cost + sync deltas) per back-end, instead of O(shards × events).
//
// Determinism: the merged report set is byte-identical to the sequential
// monitor's at any shard count, batch size and GC interval. Each
// location's accesses reach its owning back-end in stream order with
// clock values equal to the sequential monitor's (joins only change the
// joining thread's entries, which the delta channel replays in stream
// position; an access's own component rides on its record), and the
// dedup bitmasks partition by location, so the union of the back-end
// report sets is exactly the sequential set.

import (
	"fmt"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"localdrf/internal/engine"
	"localdrf/internal/obs"
	"localdrf/internal/race"
)

// Default pipeline tuning. A batch of 4096 records (64 KiB) amortises
// the ring hand-off to a fraction of a nanosecond per event; a depth of
// 8 batches per back-end lets the front-end run ahead of a momentarily
// stalled back-end without unbounded buffering.
const (
	defaultPipelineBatch = 4096
	defaultPipelineDepth = 8
)

// PipelineConfig tunes a Pipeline. The zero value means: one back-end,
// default batch size and queue depth, default GC interval.
type PipelineConfig struct {
	// Shards is the number of race back-ends (location l is owned by
	// back-end l % Shards). Values < 1 mean 1.
	Shards int
	// BatchSize is the number of records per flushed batch.
	BatchSize int
	// QueueDepth is the number of batches buffered per back-end before
	// the front-end blocks (backpressure).
	QueueDepth int
	// GCInterval is the front-end's RA GC interval in events (0 = the
	// monitor default). The report set is identical at any interval.
	GCInterval uint64
	// AdaptiveGCMin/AdaptiveGCMax enable the live-pressure-driven GC
	// interval between the two bounds (see Monitor.SetAdaptiveGC) when
	// AdaptiveGCMax > 0; they take precedence over GCInterval. As with
	// every interval schedule, the report set is unchanged.
	AdaptiveGCMin, AdaptiveGCMax uint64
	// Rebalance enables the skew-adaptive router: the front-end counts
	// nonatomic records per location and, at GC-sweep barriers where one
	// back-end carries more than ~1.5× the mean traffic, quiesces the
	// rings and migrates the hottest locations to the least-loaded
	// back-end (the location's epoch/vector state moves wholesale while
	// nothing is in flight). The static loc-mod-shards split degenerates
	// under skewed traffic — one back-end can receive nearly every
	// record; see TestRebalanceBoundsHotShard. Reports, retention
	// statistics and snapshots are identical with or without rebalancing
	// at every configuration.
	Rebalance bool
	// StaticFilter, when non-nil, marks nonatomic locations a sound
	// static certificate (internal/staticrace) proved race-free; their
	// accesses are not routed to the back-ends at all (see
	// staticfilter.go for the soundness contract). Length must equal the
	// declaration count. Reports, RAStats and snapshots are identical
	// with or without a sound filter.
	StaticFilter []bool
	// Predicate selects the race definition (see Monitor.SetPredicate
	// and predict.go): PredHB (default), PredSyncP, or PredShort with
	// WindowK. Under PredShort nonatomic accesses are checked against
	// the front-end's bounded candidate window instead of being routed
	// to the back-ends (the distance bound needs the global event index,
	// which only the front-end has). Ignored by Snapshot.Pipeline — the
	// checkpointed predicate is authoritative on resume.
	Predicate Predicate
	// WindowK is the event-distance bound of PredShort (ignored for the
	// other predicates).
	WindowK int
}

func (cfg PipelineConfig) withDefaults() PipelineConfig {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = defaultPipelineBatch
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = defaultPipelineDepth
	}
	return cfg
}

// Record op codes, packed into pipeRec.tk's low 3 bits. The NA access
// ops deliberately equal the Kind values so routing is a mask, not a
// translation.
const (
	opReadNA  = uint32(ReadNA)  // NA read: loc, thread, aux = own clock
	opWriteNA = uint32(WriteNA) // NA write: likewise
	opClock   = uint32(2)       // clock delta: clocks[thread][loc] = aux
	opMin     = uint32(3)       // frontier: minClock[loc] = aux
	opCompact = uint32(4)       // GC barrier: demote collapsible vectors
)

// pipeRec is one routed record: 16 bytes, so a 4096-record batch is one
// 64 KiB block scanned linearly by the back-end.
type pipeRec struct {
	aux uint64 // NA access: the thread's own clock component; else value
	loc int32  // NA access: the owner's dense location index; clock/min: the clock index updated
	tk  uint32 // thread<<3 | op
}

// lane is the front-end's buffered view of one back-end's input ring.
type lane struct {
	q    *engine.BatchQueue[[]pipeRec]
	free *engine.BatchQueue[[]pipeRec]
	cur  []pipeRec
	size int
	hist *obs.Hist // flushed batch sizes (its count is the batch count)
}

func (ln *lane) put(r pipeRec) {
	ln.cur = append(ln.cur, r)
	if len(ln.cur) >= ln.size {
		ln.flush()
	}
}

func (ln *lane) flush() {
	if len(ln.cur) == 0 {
		return
	}
	ln.hist.Observe(uint64(len(ln.cur)))
	ln.q.Put(ln.cur)
	b, ok := ln.free.Get()
	if !ok {
		// Free ring closed (cannot happen before Finish) — allocate.
		b = make([]pipeRec, 0, ln.size)
	}
	ln.cur = b[:0]
}

// backend consumes one ring of record batches with its own checker over
// a mirrored copy of the thread clocks. The checker's na array holds
// only the back-end's owned locations, densely (checker index
// loc / shards — the front-end routes record loc fields pre-translated),
// so per-location state costs O(locations) across ALL back-ends, not
// O(shards × locations).
type backend struct {
	ck   checker
	in   *engine.BatchQueue[[]pipeRec]
	free *engine.BatchQueue[[]pipeRec]
	// ack carries the quiesce barrier's acknowledgements: the front-end
	// enqueues a nil batch after flushing, and the back-end answers once
	// every earlier record has been applied (see Pipeline.quiesce).
	ack chan struct{}
	// id/po: this back-end's slots in the pipeline's metric vectors. The
	// applied-record count lives ONLY in the published cell (no shadow
	// field): the run loop tallies a plain local and publishes it at
	// batch boundaries — and, crucially, at the quiesce barrier before
	// the ack, so BackendLoads reads exact values behind a quiesce.
	id int
	po *pipeCells
}

func (b *backend) run() {
	ck := &b.ck
	var applied uint64
	publish := func() {
		b.po.backRecs.Store(b.id, applied)
		b.po.backEsc.Store(b.id, uint64(ck.escalatedSides))
		b.po.backRaces.Store(b.id, uint64(ck.races))
	}
	defer publish()
	for {
		batch, ok := b.in.Get()
		if !ok {
			return
		}
		if batch == nil {
			// Quiesce barrier: everything enqueued before it has been
			// applied to this back-end's state.
			publish()
			b.ack <- struct{}{}
			continue
		}
		for i := range batch {
			r := &batch[i]
			t := int32(r.tk >> 3)
			switch r.tk & 7 {
			case opReadNA:
				c := ck.clocks[t]
				c[t] = r.aux
				ck.readNA(&ck.na[r.loc], t, c)
				applied++
			case opWriteNA:
				c := ck.clocks[t]
				c[t] = r.aux
				ck.writeNA(&ck.na[r.loc], t, c)
				applied++
			case opClock:
				ck.clocks[t][r.loc] = r.aux
			case opMin:
				ck.minClock[r.loc] = r.aux
			default: // opCompact
				// GC barrier marker, sent after the frontier refresh: demote
				// collapsible vectors at the same stream position the
				// sequential monitor does.
				ck.compactAll()
			}
		}
		publish()
		b.free.Put(batch)
	}
}

// Pipeline is the push side of the two-stage parallel monitor: create
// one with NewPipeline, feed it the stream in trace order (Step,
// StepBatch, Feed, FeedBatch — from the single front-end goroutine),
// then call Finish to drain the back-ends and merge the reports. After
// Finish the pipeline must not be fed again.
type Pipeline struct {
	fe     *Monitor // front-end: clocks, atomics, RA messages, GC; built checker-free by newSync
	shards int
	owner  []int32 // owner[loc]: back-end index (initially loc % shards; rebalancing remaps)
	dense  []int32 // dense[loc]: index in the owner's checker (initially loc / shards)
	// backLocs[s][d] is the declaration index stored at back-end s's dense
	// slot d — the inverse of owner/dense, needed for the swap-remove when
	// a location migrates away.
	backLocs [][]int32
	lanes    []*lane
	backs    []*backend
	wg       sync.WaitGroup
	changed  []int32 // scratch for joinTrack
	done     bool
	reports  []race.Report
	races    int
	// Teardown state (see the contract on Abort). aborted is the single
	// CAS that elects the tearing-down goroutine; tornDown is closed once
	// every back-end has exited, so late Abort calls can wait instead of
	// double-closing. ackWait[s] records, per quiesce, whether lane s
	// accepted the nil barrier batch — an abort can close the rings
	// between the Put and the ack, and the barrier must then not wait for
	// acknowledgements that will never come.
	aborted  atomic.Bool
	tornDown chan struct{}
	ackWait  []bool
	// staticSkip mirrors cfg.StaticFilter (see PipelineConfig).
	staticSkip []bool
	// Skew-adaptive routing state (nil/zero unless cfg.Rebalance).
	rebalance bool
	traffic   []uint32 // NA records per location, halved each sweep (recency-biased)
	loads     []uint64 // scratch: per-back-end traffic at a sweep
	// Observability (obs.go): front-end-owned plain tallies, published
	// into po's cells at GC sweeps / Stats. Migration counts live only
	// in po.migrations (written by the feeder during quiesces).
	po          pipeCells
	routed      uint64 // NA records routed
	deltaRecs   uint64 // opClock records enqueued across all lanes
	minRecsSent uint64 // opMin + opCompact records enqueued
}

// NewPipeline starts cfg.Shards race back-end goroutines for a stream of
// nthreads threads over the given locations.
func NewPipeline(nthreads int, decls []LocDecl, cfg PipelineConfig) *Pipeline {
	cfg = cfg.withDefaults()
	fe := newSync(nthreads, decls)
	applyGC(fe, cfg)
	if cfg.Predicate != PredHB {
		fe.SetPredicate(cfg.Predicate, cfg.WindowK)
	}
	return newPipelineFrom(fe, cfg)
}

// applyGC applies a pipeline config's GC settings to the front-end.
func applyGC(fe *Monitor, cfg PipelineConfig) {
	switch {
	case cfg.AdaptiveGCMax > 0:
		fe.SetAdaptiveGC(cfg.AdaptiveGCMin, cfg.AdaptiveGCMax)
	case cfg.GCInterval > 0:
		fe.SetGCInterval(cfg.GCInterval)
	}
}

// newPipelineFrom builds the lanes and back-ends around an existing
// front-end — either a fresh checker-free sync monitor (NewPipeline) or
// a fully restored monitor (Snapshot.Pipeline), whose per-location race
// state is moved out to the owning back-ends and whose clocks seed every
// back-end mirror. cfg must already have defaults applied.
func newPipelineFrom(fe *Monitor, cfg PipelineConfig) *Pipeline {
	nthreads, decls := fe.nthreads, fe.decls
	p := &Pipeline{
		fe:       fe,
		shards:   cfg.Shards,
		owner:    make([]int32, len(decls)),
		dense:    make([]int32, len(decls)),
		backLocs: make([][]int32, cfg.Shards),
		lanes:    make([]*lane, cfg.Shards),
		backs:    make([]*backend, cfg.Shards),
		changed:  make([]int32, 0, nthreads),
		tornDown: make(chan struct{}),
		ackWait:  make([]bool, cfg.Shards),
	}
	if cfg.StaticFilter != nil {
		if len(cfg.StaticFilter) != len(decls) {
			panic("monitor: pipeline static filter mask length != declaration count")
		}
		p.staticSkip = cfg.StaticFilter
	}
	p.po = newPipeCells(fe.reg, cfg.Shards)
	for l := range p.owner {
		s := l % cfg.Shards
		p.owner[l] = int32(s)
		p.dense[l] = int32(l / cfg.Shards)
		p.backLocs[s] = append(p.backLocs[s], int32(l))
	}
	if cfg.Rebalance {
		p.rebalance = true
		p.traffic = make([]uint32, len(decls))
		p.loads = make([]uint64, cfg.Shards)
	}
	for s := 0; s < cfg.Shards; s++ {
		free := engine.NewBatchQueue[[]pipeRec](cfg.QueueDepth + 2)
		for i := 0; i < cfg.QueueDepth+2; i++ {
			free.Put(make([]pipeRec, 0, cfg.BatchSize))
		}
		ln := &lane{
			q:    engine.NewBatchQueue[[]pipeRec](cfg.QueueDepth),
			free: free,
			size: cfg.BatchSize,
			hist: p.po.batchHist,
		}
		ln.cur, _ = free.Get()
		p.lanes[s] = ln
		// Mirrors start equal to the front-end's clocks — all zeros for a
		// fresh pipeline, the checkpointed clocks for a restored one (the
		// same values a backlog of delta records would have replayed).
		clocks := make([][]uint64, nthreads)
		minClock := make([]uint64, nthreads)
		for t := range clocks {
			clocks[t] = make([]uint64, nthreads)
			copy(clocks[t], fe.clocks[t])
		}
		copy(minClock, fe.minClock)
		// Owned locations of shard s: s, s+shards, s+2·shards, …
		owned := 0
		if s < len(decls) {
			owned = (len(decls) - s + cfg.Shards - 1) / cfg.Shards
		}
		b := &backend{
			ck:   newChecker(nthreads, owned, clocks, minClock),
			in:   ln.q,
			free: free,
			ack:  make(chan struct{}, 1),
			id:   s,
			po:   &p.po,
		}
		p.backs[s] = b
	}
	if fe.ck.na != nil {
		// Restored front-end: move each location's race-checking state to
		// the back-end owning it (its dense slot), crediting the races its
		// dedup masks already record, and strip the front-end's checker —
		// the sync half must not retain it.
		for l := range fe.ck.na {
			b := p.backs[p.owner[l]]
			st := fe.ck.na[l]
			b.ck.na[p.dense[l]] = st
			for _, mask := range st.reported {
				b.ck.races += bits.OnesCount8(mask)
			}
			if st.wT == escalated {
				b.ck.escalatedSides++
			}
			if st.rT == escalated {
				b.ck.escalatedSides++
			}
		}
		fe.ck = checker{}
	}
	for _, b := range p.backs {
		b := b
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			b.run()
		}()
	}
	return p
}

// Step consumes the next event of the trace: clock work on the
// front-end, nonatomic accesses routed to their owning back-end.
func (p *Pipeline) Step(e Event) {
	m := p.fe
	m.events++
	m.kinds[e.Kind]++
	t := int(e.Thread)
	c := m.clocks[t]
	c[t]++
	if m.events >= m.nextGC {
		m.gc()
		p.broadcastMin()
		if p.rebalance {
			p.maybeRebalance()
		}
		// m.gc published the front-end cells; sample the pipeline's own
		// (ring occupancy, stall counts, record totals) at the same cadence.
		p.publishObs()
	}
	switch e.Kind {
	case ReadNA, WriteNA:
		if p.staticSkip != nil && p.staticSkip[e.Loc] {
			return
		}
		if m.win != nil {
			// PredShort: the access is checked in the front-end's bounded
			// window at its global stream index — nothing is routed.
			m.win.access(e.Loc, e.Thread, e.Kind == WriteNA, c, m.events)
			return
		}
		p.routed++
		if p.rebalance {
			p.traffic[e.Loc]++
		}
		p.lanes[p.owner[e.Loc]].put(pipeRec{
			aux: c[t],
			loc: p.dense[e.Loc], // the back-end's own dense index
			tk:  uint32(e.Thread)<<3 | uint32(e.Kind),
		})
	case ReadAT:
		p.changed = joinTrack(c, m.at[e.Loc], p.changed[:0])
		p.broadcastClock(e.Thread, c)
	case WriteAT:
		la := m.at[e.Loc]
		if m.pred == PredHB {
			p.changed = joinTrack(c, la, p.changed[:0])
			copy(la, c)
			p.broadcastClock(e.Thread, c)
		} else {
			// Predictive predicates: publish without joining the previous
			// released clock (see Monitor.Step). No entry of c was raised,
			// so there is no delta to broadcast.
			copy(la, c)
		}
	case ReadRA:
		if msg, ok := m.ra[e.Loc][timeKey(e.Time)]; ok {
			p.changed = joinTrack(c, msg.vc, p.changed[:0])
			p.broadcastClock(e.Thread, c)
		}
	case WriteRA:
		m.publishRA(e.Loc, e.Time, e.Thread, c)
	case KindHalt:
		m.halted[t] = true
	}
}

// StepBatch consumes a batch of events — the preferred feeding
// granularity (no per-event call through an interface).
func (p *Pipeline) StepBatch(events []Event) {
	for i := range events {
		p.Step(events[i])
	}
}

// Feed consumes src to the end of the stream. On a source error the
// error is returned and the pipeline remains finishable.
func (p *Pipeline) Feed(src Source) error {
	return feedEvents(src, p.Step)
}

// FeedBatch consumes a batched source to the end of the stream.
func (p *Pipeline) FeedBatch(src BatchSource) error {
	return feedBatches(src, p.StepBatch)
}

// broadcastClock sends the entries of thread t's clock raised by the
// last join (p.changed) to every back-end, in stream position.
func (p *Pipeline) broadcastClock(t int32, c []uint64) {
	for _, u := range p.changed {
		r := pipeRec{aux: c[u], loc: u, tk: uint32(t)<<3 | opClock}
		for _, ln := range p.lanes {
			ln.put(r)
		}
	}
	p.deltaRecs += uint64(len(p.changed)) * uint64(len(p.lanes))
}

// broadcastMin sends the refreshed minimum frontier to every back-end —
// the epoch-overwrite criterion must flip at the same stream position
// everywhere — followed by the GC-barrier marker that triggers the
// back-ends' compaction sweep over the completed frontier.
func (p *Pipeline) broadcastMin() {
	for u, v := range p.fe.minClock {
		r := pipeRec{aux: v, loc: int32(u), tk: opMin}
		for _, ln := range p.lanes {
			ln.put(r)
		}
	}
	for _, ln := range p.lanes {
		ln.put(pipeRec{tk: opCompact})
	}
	p.minRecsSent += uint64(len(p.fe.minClock)+1) * uint64(len(p.lanes))
}

// Finish flushes the remaining batches, waits for the back-ends to
// drain, and returns the merged, canonically sorted report set.
// Idempotent; the pipeline must not be fed afterwards.
func (p *Pipeline) Finish() []race.Report {
	if p.done {
		return p.reports
	}
	p.done = true
	if p.aborted.Load() {
		// Aborted pipelines have dropped in-flight batches; there is no
		// coherent report set to merge (see Abort).
		<-p.tornDown
		return nil
	}
	for _, ln := range p.lanes {
		ln.flush()
		ln.q.Close()
	}
	p.wg.Wait()
	var out []race.Report
	for l := range p.fe.decls {
		out = p.backs[p.owner[l]].ck.appendReports(out, p.dense[l], p.fe.decls[l].Name)
	}
	for _, b := range p.backs {
		p.races += b.ck.races
	}
	if p.fe.win != nil {
		out = p.fe.win.appendReports(out, p.fe.decls)
		p.races += p.fe.win.races
	}
	race.SortReports(out)
	p.reports = out
	return out
}

// quiesce drains the pipeline without ending it: every record routed so
// far is applied before this returns, and feeding may continue after.
// The barrier is a nil batch through each lane's ring (the flush path
// never emits one), acknowledged by the back-end once everything before
// it has been applied. A concurrent Abort closes the rings; a Put that
// observed the close returns false and the back-end will never see that
// barrier, so the barrier only waits on acks whose Put succeeded (a
// successful Put is always drained and acknowledged — Get keeps
// delivering queued items after Close).
func (p *Pipeline) quiesce() {
	start := time.Now()
	for s, ln := range p.lanes {
		ln.flush()
		p.ackWait[s] = ln.q.Put(nil)
	}
	for s, b := range p.backs {
		if p.ackWait[s] {
			<-b.ack
		}
	}
	p.po.quiesces.Add(1)
	p.po.quiesceNs.Observe(uint64(time.Since(start)))
}

// maxMigrationsPerSweep caps the rebalancer's work at one barrier so a
// pathological traffic pattern cannot turn a GC sweep into an unbounded
// repartitioning pass.
const maxMigrationsPerSweep = 32

// maybeRebalance runs at a GC-sweep barrier when rebalancing is enabled:
// if the recency-weighted traffic of the most-loaded back-end exceeds
// ~1.5× the mean, the rings are quiesced (so nothing is in flight) and
// the hottest locations migrate greedily from the most- to the
// least-loaded back-end until the imbalance closes or the per-sweep cap
// is hit. A migration moves the location's naState wholesale between the
// two checkers — the same checking code then sees the same state at the
// same stream positions, so reports and snapshots are unchanged by
// construction. Traffic counters are halved afterwards, biasing future
// decisions toward recent behaviour (a phase change re-triggers).
func (p *Pipeline) maybeRebalance() {
	if p.shards < 2 {
		return
	}
	loads := p.loads
	clear(loads)
	var total uint64
	for l, n := range p.traffic {
		loads[p.owner[l]] += uint64(n)
		total += uint64(n)
	}
	avg := total / uint64(p.shards)
	hi, _ := loadExtremes(loads)
	if avg > 0 {
		p.po.imbalance.Set(int64(loads[hi] * 1000 / avg))
	}
	if total == 0 || loads[hi] <= avg+avg/2 {
		p.decayTraffic()
		return
	}
	p.quiesce()
	for moves := 0; moves < maxMigrationsPerSweep; moves++ {
		hi, lo := loadExtremes(loads)
		gap := loads[hi] - loads[lo]
		if loads[hi] <= avg+avg/2 || gap < 2 {
			break
		}
		// The hottest location of the overloaded back-end whose move
		// strictly narrows the gap (moving more than the gap would just
		// swap which back-end is hot).
		best, bestN := int32(-1), uint32(0)
		for _, l := range p.backLocs[hi] {
			if n := p.traffic[l]; n > bestN && uint64(n) < gap {
				best, bestN = l, n
			}
		}
		if best < 0 {
			break
		}
		p.moveLoc(best, int32(hi), int32(lo))
		loads[hi] -= uint64(bestN)
		loads[lo] += uint64(bestN)
	}
	p.decayTraffic()
}

// loadExtremes returns the indices of the most- and least-loaded
// back-ends.
func loadExtremes(loads []uint64) (hi, lo int) {
	for s, v := range loads {
		if v > loads[hi] {
			hi = s
		}
		if v < loads[lo] {
			lo = s
		}
	}
	return hi, lo
}

// decayTraffic halves every traffic counter — exponential decay, so the
// router tracks the recent window rather than the whole stream.
func (p *Pipeline) decayTraffic() {
	for l := range p.traffic {
		p.traffic[l] >>= 1
	}
}

// moveLoc migrates declaration index l from back-end a to back-end b.
// Must only be called while the rings are quiesced: the two checkers'
// state is mutated from the feeding goroutine, ordered against the
// back-end goroutines by the quiesce ack (before) and the next ring Put
// (after). The vacated dense slot is filled by swap-remove, and the race
// count and escalation telemetry ride along with the moved state.
func (p *Pipeline) moveLoc(l, a, b int32) {
	cka, ckb := &p.backs[a].ck, &p.backs[b].ck
	d := p.dense[l]
	st := cka.na[d]
	last := int32(len(cka.na) - 1)
	if d != last {
		cka.na[d] = cka.na[last]
		moved := p.backLocs[a][last]
		p.backLocs[a][d] = moved
		p.dense[moved] = d
	}
	cka.na = cka.na[:last]
	p.backLocs[a] = p.backLocs[a][:last]
	p.owner[l] = b
	p.dense[l] = int32(len(ckb.na))
	ckb.na = append(ckb.na, st)
	p.backLocs[b] = append(p.backLocs[b], l)
	if st.reported != nil {
		n := 0
		for _, mask := range st.reported {
			n += bits.OnesCount8(mask)
		}
		cka.races -= n
		ckb.races += n
	}
	if st.wT == escalated {
		cka.escalatedSides--
		ckb.escalatedSides++
	}
	if st.rT == escalated {
		cka.escalatedSides--
		ckb.escalatedSides++
	}
	p.po.migrations.Add(1)
}

// BackendLoads returns the number of nonatomic access records each
// back-end has applied so far — the balance the skew-adaptive router
// maintains. It quiesces a live pipeline so in-flight batches are
// counted; the values are read from the pipeline.backend_records metric
// vector, which each back-end publishes exactly at the barrier.
func (p *Pipeline) BackendLoads() []uint64 {
	if !p.done {
		p.quiesce()
	}
	return p.po.backRecs.Values(nil)
}

// Migrations returns how many location migrations the rebalancer has
// performed (the pipeline.migrations metric).
func (p *Pipeline) Migrations() uint64 { return p.po.migrations.Load() }

// EscalatedVectors returns the number of per-thread access vectors
// currently escalated across all back-ends (see Monitor.EscalatedVectors).
// It quiesces a live pipeline first.
func (p *Pipeline) EscalatedVectors() int {
	if !p.done {
		p.quiesce()
	}
	n := 0
	for _, b := range p.backs {
		n += b.ck.escalatedSides
	}
	return n
}

// Snapshot serialises the pipeline's complete state to w after a
// quiesce-drain: the front-end's synchronisation state plus every
// back-end's per-location race state, reassembled in declaration order —
// byte-identical to the snapshot a sequential Monitor would write at the
// same stream position and GC configuration, so a pipeline checkpoint
// can be resumed sequentially, at a different shard count, or not at
// all. Must be called from the feeding goroutine (between Steps); the
// pipeline remains feedable afterwards.
func (p *Pipeline) Snapshot(w io.Writer) error {
	return p.snapshotWith(w, nil)
}

// SnapshotWithReader is Snapshot plus a trace-reader continuation (see
// Monitor.SnapshotWithReader).
func (p *Pipeline) SnapshotWithReader(w io.Writer, ck ReaderCheckpoint) error {
	return p.snapshotWith(w, &ck)
}

func (p *Pipeline) snapshotWith(w io.Writer, rck *ReaderCheckpoint) error {
	if p.aborted.Load() {
		return fmt.Errorf("monitor: pipeline snapshot: pipeline aborted")
	}
	if p.done {
		return fmt.Errorf("monitor: pipeline snapshot: pipeline already finished")
	}
	p.quiesce()
	return snapshotTo(w, p.fe, func(l int32) *naState {
		return &p.backs[p.owner[l]].ck.na[p.dense[l]]
	}, rck, p.staticSkip != nil)
}

// Abort tears the pipeline down mid-stream without draining: the rings
// are closed, in-flight batches are dropped, and every back-end
// goroutine has exited when Abort returns.
//
// Teardown contract:
//
//   - Abort is idempotent and safe to call from any goroutine, any
//     number of times, concurrently with itself: one caller wins a CAS
//     and tears the rings down; every other caller blocks until the
//     back-ends have exited, so all Abort calls return with the same
//     postcondition (no pipeline goroutines remain).
//   - Abort is safe while the feeder is blocked in Step/StepBatch on a
//     full ring (the blocked Put unblocks and its records are
//     discarded), and while the feeder is inside a quiesce barrier
//     (Snapshot, BackendLoads, a GC sweep): the barrier only waits for
//     acknowledgements whose nil batch was accepted before the rings
//     closed, so it cannot wait forever.
//   - Abort is safe after Snapshot and after Finish have returned
//     (after Finish it is a no-op: the rings are already closed —
//     Close is idempotent — and the WaitGroup is settled).
//   - After an abort: Finish returns nil (in-flight batches were
//     dropped, so no coherent report set exists), Snapshot returns an
//     error, and further Steps are silently discarded. Events() remains
//     readable from the feeder.
//   - The one prohibited overlap: Abort must not race with a
//     *concurrently executing* Finish or Snapshot — those drain state
//     that Abort is tearing down, and the snapshot bytes/report set
//     would be torn. Call sites that can race an abort against a
//     drain (e.g. a server tearing down a session) must order the two
//     themselves; calling Abort once either has returned is always
//     safe.
func (p *Pipeline) Abort() {
	if !p.aborted.CompareAndSwap(false, true) {
		<-p.tornDown
		return
	}
	for _, ln := range p.lanes {
		ln.q.Close()
		ln.free.Close()
	}
	p.wg.Wait()
	close(p.tornDown)
}

// Events returns the number of events consumed so far.
func (p *Pipeline) Events() uint64 { return p.fe.events }

// RaceCount returns the number of distinct races found (valid after
// Finish).
func (p *Pipeline) RaceCount() int { return p.races }

// RAStats returns the front-end's RA retention statistics — identical to
// the sequential monitor's on the same stream and GC interval.
func (p *Pipeline) RAStats() RAStats { return p.fe.RAStats() }

// Predicate returns the race predicate the pipeline decides.
func (p *Pipeline) Predicate() Predicate { return p.fe.pred }

// WindowK returns the short-race distance bound (0 unless the
// pipeline decides PredShort).
func (p *Pipeline) WindowK() int { return p.fe.WindowK() }

// WindowStats returns the short-race window telemetry (zero unless the
// pipeline runs PredShort) — identical to the sequential monitor's on
// the same stream, because the window lives in the front-end and its
// prune schedule is a function of the stream alone.
func (p *Pipeline) WindowStats() WindowStats { return p.fe.WindowStats() }

// PipelineRaces monitors a materialised event stream through a pipeline
// and returns the deduplicated reports — byte-identical to a sequential
// New+Step pass at any configuration.
func PipelineRaces(nthreads int, decls []LocDecl, events []Event, cfg PipelineConfig) []race.Report {
	p := NewPipeline(nthreads, decls, cfg)
	p.StepBatch(events)
	return p.Finish()
}
