package monitor

import (
	"fmt"
	"testing"

	"localdrf/internal/explore"
	"localdrf/internal/litmus"
	"localdrf/internal/prog"
	"localdrf/internal/race"
	"localdrf/internal/ts"
)

// eq compares two report slices (both in SortReports order).
func eq(a, b []race.Report) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// run feeds events to a fresh monitor and returns its reports.
func run(t *testing.T, nthreads int, decls []LocDecl, events []Event) []race.Report {
	t.Helper()
	m := New(nthreads, decls)
	for _, e := range events {
		m.Step(e)
	}
	return m.Reports()
}

// TestUnorderedConflict is the MP+na shape: write x, write f || read f,
// read x with no synchronisation — every cross-thread pair races.
func TestUnorderedConflict(t *testing.T) {
	decls := []LocDecl{{Name: "x", Kind: prog.NonAtomic}, {Name: "f", Kind: prog.NonAtomic}}
	events := []Event{
		{Thread: 0, Loc: 0, Kind: WriteNA},
		{Thread: 0, Loc: 1, Kind: WriteNA},
		{Thread: 1, Loc: 1, Kind: ReadNA},
		{Thread: 1, Loc: 0, Kind: ReadNA},
	}
	got := run(t, 2, decls, events)
	want := []race.Report{
		{Loc: "f", ThreadI: 0, ThreadJ: 1, WriteI: true, WriteJ: false},
		{Loc: "x", ThreadI: 0, ThreadJ: 1, WriteI: true, WriteJ: false},
	}
	if !eq(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestAtomicOrdering is the MP shape on a particular trace: the atomic
// flag write happens before the flag read, so the data accesses are
// ordered and race-free.
func TestAtomicOrdering(t *testing.T) {
	decls := []LocDecl{{Name: "x", Kind: prog.NonAtomic}, {Name: "F", Kind: prog.Atomic}}
	events := []Event{
		{Thread: 0, Loc: 0, Kind: WriteNA},
		{Thread: 0, Loc: 1, Kind: WriteAT},
		{Thread: 1, Loc: 1, Kind: ReadAT},
		{Thread: 1, Loc: 0, Kind: ReadNA},
	}
	if got := run(t, 2, decls, events); len(got) != 0 {
		t.Fatalf("synchronised trace reported races: %v", got)
	}
	// The interleaving where the read of F precedes the write of F gets
	// no edge (atomic reads synchronise with nothing afterwards), so the
	// x accesses race.
	racy := []Event{
		{Thread: 1, Loc: 1, Kind: ReadAT},
		{Thread: 0, Loc: 0, Kind: WriteNA},
		{Thread: 0, Loc: 1, Kind: WriteAT},
		{Thread: 1, Loc: 0, Kind: ReadNA},
	}
	got := run(t, 2, decls, racy)
	want := []race.Report{{Loc: "x", ThreadI: 0, ThreadJ: 1, WriteI: true, WriteJ: false}}
	if !eq(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestAtomicWriteWriteEdge: atomic writes order later atomic writes (and
// transitively the data accesses around them), but atomic *reads* order
// nothing.
func TestAtomicWriteWriteEdge(t *testing.T) {
	decls := []LocDecl{{Name: "x", Kind: prog.NonAtomic}, {Name: "A", Kind: prog.Atomic}}
	events := []Event{
		{Thread: 0, Loc: 0, Kind: WriteNA},
		{Thread: 0, Loc: 1, Kind: WriteAT},
		{Thread: 1, Loc: 1, Kind: WriteAT}, // W→W edge: T1 now sees T0's x write
		{Thread: 1, Loc: 0, Kind: WriteNA},
	}
	if got := run(t, 2, decls, events); len(got) != 0 {
		t.Fatalf("write-write atomic edge not honoured: %v", got)
	}
}

// TestRAReadsFrom: an RA read synchronises with exactly the write it
// reads from (same timestamp), not with other RA writes.
func TestRAReadsFrom(t *testing.T) {
	decls := []LocDecl{{Name: "x", Kind: prog.NonAtomic}, {Name: "R", Kind: prog.ReleaseAcquire}}
	t1, t2 := ts.FromInt(1), ts.FromInt(2)
	// T0: x=1; R=@1. T1: reads R@1 (acquires), reads x — ordered.
	sync := []Event{
		{Thread: 0, Loc: 0, Kind: WriteNA},
		{Thread: 0, Loc: 1, Kind: WriteRA, Time: t1},
		{Thread: 1, Loc: 1, Kind: ReadRA, Time: t1},
		{Thread: 1, Loc: 0, Kind: ReadNA},
	}
	if got := run(t, 2, decls, sync); len(got) != 0 {
		t.Fatalf("RA reads-from edge not honoured: %v", got)
	}
	// T1 reads a different message (@2 written by T2 before T0's write
	// published anything): no edge from T0, so the x accesses race.
	stale := []Event{
		{Thread: 2, Loc: 1, Kind: WriteRA, Time: t2},
		{Thread: 0, Loc: 0, Kind: WriteNA},
		{Thread: 0, Loc: 1, Kind: WriteRA, Time: t1},
		{Thread: 1, Loc: 1, Kind: ReadRA, Time: t2},
		{Thread: 1, Loc: 0, Kind: ReadNA},
	}
	got := run(t, 3, decls, stale)
	want := []race.Report{{Loc: "x", ThreadI: 0, ThreadJ: 1, WriteI: true, WriteJ: false}}
	if !eq(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestSameThreadNeverRaces: a thread's own accesses are ordered by
// program order, including across long same-thread bursts (the fast
// path).
func TestSameThreadNeverRaces(t *testing.T) {
	decls := []LocDecl{{Name: "x", Kind: prog.NonAtomic}}
	var events []Event
	for i := 0; i < 1000; i++ {
		k := ReadNA
		if i%3 == 0 {
			k = WriteNA
		}
		events = append(events, Event{Thread: 0, Loc: 0, Kind: k})
	}
	if got := run(t, 1, decls, events); len(got) != 0 {
		t.Fatalf("same-thread accesses reported racing: %v", got)
	}
}

// TestFastPathKindEscalation guards the subtle fast-path case: a read by
// t that races with u must not let a subsequent *write* by t skip the
// rescan — the write forms a differently-kinded report with the same u.
func TestFastPathKindEscalation(t *testing.T) {
	decls := []LocDecl{{Name: "x", Kind: prog.NonAtomic}}
	events := []Event{
		{Thread: 0, Loc: 0, Kind: WriteNA},
		{Thread: 1, Loc: 0, Kind: ReadNA},  // races: (0 w, 1 r)
		{Thread: 1, Loc: 0, Kind: WriteNA}, // races: (0 w, 1 w) — needs rescan
	}
	got := run(t, 2, decls, events)
	want := []race.Report{
		{Loc: "x", ThreadI: 0, ThreadJ: 1, WriteI: true, WriteJ: false},
		{Loc: "x", ThreadI: 0, ThreadJ: 1, WriteI: true, WriteJ: true},
	}
	if !eq(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestDifferentialOnLitmusTraces cross-checks the monitor against the
// exhaustive oracle on genuine machine traces of a few racy litmus
// programs (the corpus-wide sweep lives in internal/modeltest).
func TestDifferentialOnLitmusTraces(t *testing.T) {
	for _, name := range []string{"MP+na", "CoRR", "Example1", "WRC", "2+2W"} {
		tc, ok := litmus.Get(name)
		if !ok {
			t.Fatalf("missing litmus test %s", name)
		}
		tb := NewTable(tc.Prog)
		m := tb.NewMonitor()
		var buf []Event
		traces := 0
		err := explore.Traces(tc.Prog, explore.Options{}, 0, func(tr explore.Trace) bool {
			traces++
			want := race.Races(tr)
			m.Reset()
			var err error
			buf, err = tb.Events(tr, buf[:0])
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range buf {
				m.Step(e)
			}
			got := m.Reports()
			if !eq(got, want) {
				t.Fatalf("%s trace %v:\nmonitor %v\noracle  %v", name, tr, got, want)
			}
			return traces < 3000
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestShardedMatchesUnsharded: the sharded parallel mode returns exactly
// the single-pass report set at any shard count.
func TestShardedMatchesUnsharded(t *testing.T) {
	decls, events := syntheticWorkload(6, 24, 30_000, 31)
	want, err := ShardedRaces(6, decls, events, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("synthetic workload produced no races; not a useful fixture")
	}
	for _, shards := range []int{2, 3, 4, 8} {
		got, err := ShardedRaces(6, decls, events, shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !eq(got, want) {
			t.Fatalf("shards=%d: got %d reports, want %d\ngot  %v\nwant %v",
				shards, len(got), len(want), got, want)
		}
	}
}

// syntheticWorkload builds a mixed random event stream directly (no
// interpreter): nthreads threads over nlocs locations, 3/4 nonatomic and
// 1/4 atomic, with a deterministic xorshift driver.
func syntheticWorkload(nthreads, nlocs, n int, seed uint64) ([]LocDecl, []Event) {
	decls := make([]LocDecl, nlocs)
	for i := range decls {
		k := prog.NonAtomic
		if i%4 == 3 {
			k = prog.Atomic
		}
		decls[i] = LocDecl{Name: prog.Loc(fmt.Sprintf("l%d", i)), Kind: k}
	}
	x := seed
	rnd := func(m int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(m))
	}
	events := make([]Event, 0, n)
	for len(events) < n {
		t, l := rnd(nthreads), rnd(nlocs)
		var k Kind
		if decls[l].Kind == prog.Atomic {
			k = ReadAT
			if rnd(2) == 0 {
				k = WriteAT
			}
		} else {
			k = ReadNA
			if rnd(3) == 0 {
				k = WriteNA
			}
		}
		events = append(events, Event{Thread: int32(t), Loc: int32(l), Kind: k})
	}
	return decls, events
}

// TestShardedClampAndSkip: shard counts larger than the nonatomic
// location count are clamped, and shards owning no nonatomic location
// are skipped — in both cases the report set is identical to the
// unsharded pass.
func TestShardedClampAndSkip(t *testing.T) {
	// Only two NA locations, both ≡ 0 (mod 2): after clamping 8 → 2
	// shards, shard 1 owns nothing and must be skipped, not replayed.
	decls := []LocDecl{
		{Name: "a", Kind: prog.NonAtomic},
		{Name: "A", Kind: prog.Atomic},
		{Name: "b", Kind: prog.NonAtomic},
		{Name: "B", Kind: prog.Atomic},
	}
	var events []Event
	x := uint64(11)
	rnd := func(m int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(m))
	}
	for i := 0; i < 10_000; i++ {
		l := rnd(4)
		var k Kind
		if decls[l].Kind == prog.Atomic {
			k = ReadAT
			if rnd(2) == 0 {
				k = WriteAT
			}
		} else {
			k = ReadNA
			if rnd(3) == 0 {
				k = WriteNA
			}
		}
		events = append(events, Event{Thread: int32(rnd(4)), Loc: int32(l), Kind: k})
	}
	want, err := ShardedRaces(4, decls, events, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("workload produced no races; not a useful fixture")
	}
	for _, shards := range []int{2, 3, 8, 64} {
		got, err := ShardedRaces(4, decls, events, shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !race.ReportsEqual(got, want) {
			t.Fatalf("shards=%d: got %v, want %v", shards, got, want)
		}
	}
}

// TestRAGCBoundsLive: on a long RA stream whose readers keep up with the
// writer, the windowed GC keeps the live message set bounded by the GC
// window, while a monitor that never sweeps retains every message — and
// both report identically.
func TestRAGCBoundsLive(t *testing.T) {
	decls := []LocDecl{{Name: "R", Kind: prog.ReleaseAcquire}}
	const threads, writes = 4, 5_000
	windowed := New(threads, decls)
	windowed.SetGCInterval(128)
	unbounded := New(threads, decls)
	unbounded.SetGCInterval(1 << 62) // never sweeps within the test
	step := func(e Event) {
		windowed.Step(e)
		unbounded.Step(e)
	}
	for i := int64(1); i <= writes; i++ {
		step(Event{Thread: 0, Loc: 0, Kind: WriteRA, Time: ts.FromInt(i)})
		for u := int32(1); u < threads; u++ {
			step(Event{Thread: u, Loc: 0, Kind: ReadRA, Time: ts.FromInt(i)})
		}
	}
	w, u := windowed.RAStats(), unbounded.RAStats()
	if u.Live != writes || u.Collected != 0 {
		t.Fatalf("unbounded monitor: live=%d collected=%d, want %d/0", u.Live, u.Collected, writes)
	}
	if w.Collected == 0 {
		t.Fatal("windowed monitor collected nothing")
	}
	if w.Peak > 256 {
		t.Fatalf("windowed peak %d exceeds the GC window bound", w.Peak)
	}
	if w.Live+int(w.Collected) != writes {
		t.Fatalf("live %d + collected %d ≠ %d writes", w.Live, w.Collected, writes)
	}
	if !race.ReportsEqual(windowed.Reports(), unbounded.Reports()) {
		t.Fatal("windowed and unbounded monitors diverged")
	}
}

// TestGCReportParity: on a racy mixed stream with stale RA reads (reads
// of long-dead messages included), aggressive GC intervals change
// nothing about the report set — dead messages' joins are no-ops.
func TestGCReportParity(t *testing.T) {
	decls, events := raWorkload(5, 12, 40_000, 17)
	ref := New(5, decls)
	ref.SetGCInterval(1 << 62)
	for _, e := range events {
		ref.Step(e)
	}
	want := ref.Reports()
	if len(want) == 0 {
		t.Fatal("workload produced no races; not a useful fixture")
	}
	for _, interval := range []uint64{1, 7, 64, 1024} {
		m := New(5, decls)
		m.SetGCInterval(interval)
		for _, e := range events {
			m.Step(e)
		}
		if !race.ReportsEqual(m.Reports(), want) {
			t.Fatalf("gc interval %d diverged", interval)
		}
		if st := m.RAStats(); st.Collected == 0 {
			t.Fatalf("gc interval %d collected nothing", interval)
		}
	}
}

// raWorkload synthesises a stream mixing NA, atomic and RA locations,
// with RA reads picking random (often stale, possibly collected)
// timestamps — the adversarial shape for the windowed GC.
func raWorkload(nthreads, nlocs, n int, seed uint64) ([]LocDecl, []Event) {
	decls := make([]LocDecl, nlocs)
	for i := range decls {
		k := prog.NonAtomic
		switch i % 4 {
		case 1:
			k = prog.Atomic
		case 3:
			k = prog.ReleaseAcquire
		}
		decls[i] = LocDecl{Name: prog.Loc(fmt.Sprintf("l%d", i)), Kind: k}
	}
	x := seed
	rnd := func(m int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(m))
	}
	lastTime := make([]int64, nlocs)
	events := make([]Event, 0, n)
	for len(events) < n {
		t, l := rnd(nthreads), rnd(nlocs)
		e := Event{Thread: int32(t), Loc: int32(l)}
		switch decls[l].Kind {
		case prog.Atomic:
			e.Kind = ReadAT
			if rnd(2) == 0 {
				e.Kind = WriteAT
			}
		case prog.ReleaseAcquire:
			if rnd(2) == 0 && lastTime[l] > 0 {
				e.Kind = ReadRA
				// Read anywhere in history: latest, stale, maybe GC'd.
				e.Time = ts.FromInt(1 + int64(rnd(int(lastTime[l]))))
			} else {
				lastTime[l]++
				e.Kind = WriteRA
				e.Time = ts.FromInt(lastTime[l])
			}
		default:
			e.Kind = ReadNA
			if rnd(3) == 0 {
				e.Kind = WriteNA
			}
		}
		events = append(events, e)
	}
	return decls, events
}

// TestShardedHonoursConfig: the satellite regression — every path of
// the sharded entry point, *including* the degenerate single-shard
// case, must honour a configured GC interval exactly as a sequential
// New+SetGCInterval+Step run does. Reports alone cannot detect the bug
// (they are interval-invariant by design), so the test compares the RA
// retention statistics, which differ per interval.
func TestShardedHonoursConfig(t *testing.T) {
	decls, events := raWorkload(5, 12, 40_000, 17)
	for _, interval := range []uint64{16, 0 /* default */} {
		ref := New(5, decls)
		if interval > 0 {
			ref.SetGCInterval(interval)
		}
		for _, e := range events {
			ref.Step(e)
		}
		for _, shards := range []int{1, 2, 4} {
			p := NewPipeline(5, decls, PipelineConfig{Shards: shards, GCInterval: interval})
			p.StepBatch(events)
			got := p.Finish()
			if !race.ReportsEqual(got, ref.Reports()) {
				t.Fatalf("interval=%d shards=%d: reports diverged", interval, shards)
			}
			if p.RAStats() != ref.RAStats() {
				t.Fatalf("interval=%d shards=%d: RA stats %+v, want %+v (GC interval not honoured)",
					interval, shards, p.RAStats(), ref.RAStats())
			}
		}
	}
}

// TestEpochEscalation pins the representation transitions: single-thread
// histories stay in the epoch form, a second concurrent accessor
// escalates, and a frontier-passed handoff does not.
func TestEpochEscalation(t *testing.T) {
	decls := []LocDecl{{Name: "x", Kind: prog.NonAtomic}, {Name: "A", Kind: prog.Atomic}}
	m := New(2, decls)
	m.SetGCInterval(1) // refresh the frontier every event
	// Same-thread burst: epoch, no vectors.
	for i := 0; i < 100; i++ {
		m.Step(Event{Thread: 0, Loc: 0, Kind: WriteNA})
	}
	if ls := &m.ck.na[0]; ls.wT != 0 || ls.writes != nil {
		t.Fatalf("single-thread history escalated: wT=%d", ls.wT)
	}
	// Ordered handoff via the atomic: frontier passes T0's epoch, so T1's
	// write overwrites it in place.
	m.Step(Event{Thread: 0, Loc: 1, Kind: WriteAT})
	m.Step(Event{Thread: 1, Loc: 1, Kind: WriteAT}) // joins T0's clock
	m.Step(Event{Thread: 1, Loc: 1, Kind: WriteAT}) // next event: GC refreshes frontier
	m.Step(Event{Thread: 1, Loc: 0, Kind: WriteNA})
	if ls := &m.ck.na[0]; ls.wT != 1 || ls.writes != nil {
		t.Fatalf("frontier-passed handoff escalated: wT=%d", ls.wT)
	}
	if m.RaceCount() != 0 {
		t.Fatalf("ordered handoff reported races: %v", m.Reports())
	}
	// A genuinely concurrent write escalates and reports.
	m2 := New(2, decls)
	m2.Step(Event{Thread: 0, Loc: 0, Kind: WriteNA})
	m2.Step(Event{Thread: 1, Loc: 0, Kind: WriteNA})
	if ls := &m2.ck.na[0]; ls.wT != escalated || ls.writes == nil {
		t.Fatalf("concurrent write did not escalate: wT=%d", ls.wT)
	}
	if m2.RaceCount() != 1 {
		t.Fatalf("concurrent writes: %d races, want 1", m2.RaceCount())
	}
}

// TestResetReuse: a Reset monitor behaves exactly like a fresh one.
func TestResetReuse(t *testing.T) {
	decls, events := syntheticWorkload(4, 12, 5_000, 7)
	m := New(4, decls)
	for _, e := range events {
		m.Step(e)
	}
	first := m.Reports()
	m.Reset()
	if m.RaceCount() != 0 || m.Events() != 0 {
		t.Fatal("Reset did not clear state")
	}
	for _, e := range events {
		m.Step(e)
	}
	if !eq(m.Reports(), first) {
		t.Fatalf("reused monitor diverged: %v vs %v", m.Reports(), first)
	}
}

// BenchmarkMonitorBursty measures single-core monitoring throughput on a
// bursty synthetic stream — the headline events/sec figure
// (cmd/experiments -run bench-monitor records it in BENCH_monitor.json).
func BenchmarkMonitorBursty(b *testing.B) {
	decls, events := burstyWorkload(8, 64, 1_000_000, 97)
	m := New(8, decls)
	b.SetBytes(1) // report events/sec as MB/s (1 "byte" = 1 event)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		for _, e := range events {
			m.Step(e)
		}
	}
}

// BenchmarkMonitorRAHeavy measures the release-acquire hot path: message
// publication (clock snapshot + map insert via timeKey), reads-from
// joins, and the windowed GC sweeps.
func BenchmarkMonitorRAHeavy(b *testing.B) {
	decls, events := raWorkload(8, 16, 1_000_000, 23)
	m := New(8, decls)
	b.SetBytes(1) // report events/sec as MB/s (1 "byte" = 1 event)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		for _, e := range events {
			m.Step(e)
		}
	}
}

// burstyWorkload synthesises a stream with long same-thread bursts and a
// sprinkle of atomic synchronisation — the monitor's target workload.
func burstyWorkload(nthreads, nlocs, n int, seed uint64) ([]LocDecl, []Event) {
	decls := make([]LocDecl, nlocs)
	for i := range decls {
		k := prog.NonAtomic
		if i%8 == 7 {
			k = prog.Atomic
		}
		decls[i] = LocDecl{Name: prog.Loc(fmt.Sprintf("l%d", i)), Kind: k}
	}
	x := seed
	rnd := func(m int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(m))
	}
	events := make([]Event, 0, n)
	for len(events) < n {
		t := rnd(nthreads)
		span := 32 + rnd(64)
		for s := 0; s < span && len(events) < n; s++ {
			l := rnd(nlocs)
			var k Kind
			if decls[l].Kind == prog.Atomic {
				k = ReadAT
				if rnd(4) == 0 {
					k = WriteAT
				}
			} else {
				k = ReadNA
				if rnd(3) == 0 {
					k = WriteNA
				}
			}
			events = append(events, Event{Thread: int32(t), Loc: int32(l), Kind: k})
		}
	}
	return decls, events
}
