package monitor

import (
	"fmt"
	"testing"

	"localdrf/internal/explore"
	"localdrf/internal/litmus"
	"localdrf/internal/prog"
	"localdrf/internal/race"
	"localdrf/internal/ts"
)

// eq compares two report slices (both in SortReports order).
func eq(a, b []race.Report) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// run feeds events to a fresh monitor and returns its reports.
func run(t *testing.T, nthreads int, decls []LocDecl, events []Event) []race.Report {
	t.Helper()
	m := New(nthreads, decls)
	for _, e := range events {
		m.Step(e)
	}
	return m.Reports()
}

// TestUnorderedConflict is the MP+na shape: write x, write f || read f,
// read x with no synchronisation — every cross-thread pair races.
func TestUnorderedConflict(t *testing.T) {
	decls := []LocDecl{{Name: "x", Kind: prog.NonAtomic}, {Name: "f", Kind: prog.NonAtomic}}
	events := []Event{
		{Thread: 0, Loc: 0, Kind: WriteNA},
		{Thread: 0, Loc: 1, Kind: WriteNA},
		{Thread: 1, Loc: 1, Kind: ReadNA},
		{Thread: 1, Loc: 0, Kind: ReadNA},
	}
	got := run(t, 2, decls, events)
	want := []race.Report{
		{Loc: "f", ThreadI: 0, ThreadJ: 1, WriteI: true, WriteJ: false},
		{Loc: "x", ThreadI: 0, ThreadJ: 1, WriteI: true, WriteJ: false},
	}
	if !eq(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestAtomicOrdering is the MP shape on a particular trace: the atomic
// flag write happens before the flag read, so the data accesses are
// ordered and race-free.
func TestAtomicOrdering(t *testing.T) {
	decls := []LocDecl{{Name: "x", Kind: prog.NonAtomic}, {Name: "F", Kind: prog.Atomic}}
	events := []Event{
		{Thread: 0, Loc: 0, Kind: WriteNA},
		{Thread: 0, Loc: 1, Kind: WriteAT},
		{Thread: 1, Loc: 1, Kind: ReadAT},
		{Thread: 1, Loc: 0, Kind: ReadNA},
	}
	if got := run(t, 2, decls, events); len(got) != 0 {
		t.Fatalf("synchronised trace reported races: %v", got)
	}
	// The interleaving where the read of F precedes the write of F gets
	// no edge (atomic reads synchronise with nothing afterwards), so the
	// x accesses race.
	racy := []Event{
		{Thread: 1, Loc: 1, Kind: ReadAT},
		{Thread: 0, Loc: 0, Kind: WriteNA},
		{Thread: 0, Loc: 1, Kind: WriteAT},
		{Thread: 1, Loc: 0, Kind: ReadNA},
	}
	got := run(t, 2, decls, racy)
	want := []race.Report{{Loc: "x", ThreadI: 0, ThreadJ: 1, WriteI: true, WriteJ: false}}
	if !eq(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestAtomicWriteWriteEdge: atomic writes order later atomic writes (and
// transitively the data accesses around them), but atomic *reads* order
// nothing.
func TestAtomicWriteWriteEdge(t *testing.T) {
	decls := []LocDecl{{Name: "x", Kind: prog.NonAtomic}, {Name: "A", Kind: prog.Atomic}}
	events := []Event{
		{Thread: 0, Loc: 0, Kind: WriteNA},
		{Thread: 0, Loc: 1, Kind: WriteAT},
		{Thread: 1, Loc: 1, Kind: WriteAT}, // W→W edge: T1 now sees T0's x write
		{Thread: 1, Loc: 0, Kind: WriteNA},
	}
	if got := run(t, 2, decls, events); len(got) != 0 {
		t.Fatalf("write-write atomic edge not honoured: %v", got)
	}
}

// TestRAReadsFrom: an RA read synchronises with exactly the write it
// reads from (same timestamp), not with other RA writes.
func TestRAReadsFrom(t *testing.T) {
	decls := []LocDecl{{Name: "x", Kind: prog.NonAtomic}, {Name: "R", Kind: prog.ReleaseAcquire}}
	t1, t2 := ts.FromInt(1), ts.FromInt(2)
	// T0: x=1; R=@1. T1: reads R@1 (acquires), reads x — ordered.
	sync := []Event{
		{Thread: 0, Loc: 0, Kind: WriteNA},
		{Thread: 0, Loc: 1, Kind: WriteRA, Time: t1},
		{Thread: 1, Loc: 1, Kind: ReadRA, Time: t1},
		{Thread: 1, Loc: 0, Kind: ReadNA},
	}
	if got := run(t, 2, decls, sync); len(got) != 0 {
		t.Fatalf("RA reads-from edge not honoured: %v", got)
	}
	// T1 reads a different message (@2 written by T2 before T0's write
	// published anything): no edge from T0, so the x accesses race.
	stale := []Event{
		{Thread: 2, Loc: 1, Kind: WriteRA, Time: t2},
		{Thread: 0, Loc: 0, Kind: WriteNA},
		{Thread: 0, Loc: 1, Kind: WriteRA, Time: t1},
		{Thread: 1, Loc: 1, Kind: ReadRA, Time: t2},
		{Thread: 1, Loc: 0, Kind: ReadNA},
	}
	got := run(t, 3, decls, stale)
	want := []race.Report{{Loc: "x", ThreadI: 0, ThreadJ: 1, WriteI: true, WriteJ: false}}
	if !eq(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestSameThreadNeverRaces: a thread's own accesses are ordered by
// program order, including across long same-thread bursts (the fast
// path).
func TestSameThreadNeverRaces(t *testing.T) {
	decls := []LocDecl{{Name: "x", Kind: prog.NonAtomic}}
	var events []Event
	for i := 0; i < 1000; i++ {
		k := ReadNA
		if i%3 == 0 {
			k = WriteNA
		}
		events = append(events, Event{Thread: 0, Loc: 0, Kind: k})
	}
	if got := run(t, 1, decls, events); len(got) != 0 {
		t.Fatalf("same-thread accesses reported racing: %v", got)
	}
}

// TestFastPathKindEscalation guards the subtle fast-path case: a read by
// t that races with u must not let a subsequent *write* by t skip the
// rescan — the write forms a differently-kinded report with the same u.
func TestFastPathKindEscalation(t *testing.T) {
	decls := []LocDecl{{Name: "x", Kind: prog.NonAtomic}}
	events := []Event{
		{Thread: 0, Loc: 0, Kind: WriteNA},
		{Thread: 1, Loc: 0, Kind: ReadNA},  // races: (0 w, 1 r)
		{Thread: 1, Loc: 0, Kind: WriteNA}, // races: (0 w, 1 w) — needs rescan
	}
	got := run(t, 2, decls, events)
	want := []race.Report{
		{Loc: "x", ThreadI: 0, ThreadJ: 1, WriteI: true, WriteJ: false},
		{Loc: "x", ThreadI: 0, ThreadJ: 1, WriteI: true, WriteJ: true},
	}
	if !eq(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestDifferentialOnLitmusTraces cross-checks the monitor against the
// exhaustive oracle on genuine machine traces of a few racy litmus
// programs (the corpus-wide sweep lives in internal/modeltest).
func TestDifferentialOnLitmusTraces(t *testing.T) {
	for _, name := range []string{"MP+na", "CoRR", "Example1", "WRC", "2+2W"} {
		tc, ok := litmus.Get(name)
		if !ok {
			t.Fatalf("missing litmus test %s", name)
		}
		tb := NewTable(tc.Prog)
		m := tb.NewMonitor()
		var buf []Event
		traces := 0
		err := explore.Traces(tc.Prog, explore.Options{}, 0, func(tr explore.Trace) bool {
			traces++
			want := race.Races(tr)
			m.Reset()
			var err error
			buf, err = tb.Events(tr, buf[:0])
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range buf {
				m.Step(e)
			}
			got := m.Reports()
			if !eq(got, want) {
				t.Fatalf("%s trace %v:\nmonitor %v\noracle  %v", name, tr, got, want)
			}
			return traces < 3000
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestShardedMatchesUnsharded: the sharded parallel mode returns exactly
// the single-pass report set at any shard count.
func TestShardedMatchesUnsharded(t *testing.T) {
	decls, events := syntheticWorkload(6, 24, 30_000, 31)
	want, err := ShardedRaces(6, decls, events, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("synthetic workload produced no races; not a useful fixture")
	}
	for _, shards := range []int{2, 3, 4, 8} {
		got, err := ShardedRaces(6, decls, events, shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !eq(got, want) {
			t.Fatalf("shards=%d: got %d reports, want %d\ngot  %v\nwant %v",
				shards, len(got), len(want), got, want)
		}
	}
}

// syntheticWorkload builds a mixed random event stream directly (no
// interpreter): nthreads threads over nlocs locations, 3/4 nonatomic and
// 1/4 atomic, with a deterministic xorshift driver.
func syntheticWorkload(nthreads, nlocs, n int, seed uint64) ([]LocDecl, []Event) {
	decls := make([]LocDecl, nlocs)
	for i := range decls {
		k := prog.NonAtomic
		if i%4 == 3 {
			k = prog.Atomic
		}
		decls[i] = LocDecl{Name: prog.Loc(fmt.Sprintf("l%d", i)), Kind: k}
	}
	x := seed
	rnd := func(m int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(m))
	}
	events := make([]Event, 0, n)
	for len(events) < n {
		t, l := rnd(nthreads), rnd(nlocs)
		var k Kind
		if decls[l].Kind == prog.Atomic {
			k = ReadAT
			if rnd(2) == 0 {
				k = WriteAT
			}
		} else {
			k = ReadNA
			if rnd(3) == 0 {
				k = WriteNA
			}
		}
		events = append(events, Event{Thread: int32(t), Loc: int32(l), Kind: k})
	}
	return decls, events
}

// TestResetReuse: a Reset monitor behaves exactly like a fresh one.
func TestResetReuse(t *testing.T) {
	decls, events := syntheticWorkload(4, 12, 5_000, 7)
	m := New(4, decls)
	for _, e := range events {
		m.Step(e)
	}
	first := m.Reports()
	m.Reset()
	if m.RaceCount() != 0 || m.Events() != 0 {
		t.Fatal("Reset did not clear state")
	}
	for _, e := range events {
		m.Step(e)
	}
	if !eq(m.Reports(), first) {
		t.Fatalf("reused monitor diverged: %v vs %v", m.Reports(), first)
	}
}

// BenchmarkMonitorBursty measures single-core monitoring throughput on a
// bursty synthetic stream — the headline events/sec figure
// (cmd/experiments -run bench-monitor records it in BENCH_monitor.json).
func BenchmarkMonitorBursty(b *testing.B) {
	decls, events := burstyWorkload(8, 64, 1_000_000, 97)
	m := New(8, decls)
	b.SetBytes(1) // report events/sec as MB/s (1 "byte" = 1 event)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		for _, e := range events {
			m.Step(e)
		}
	}
}

// burstyWorkload synthesises a stream with long same-thread bursts and a
// sprinkle of atomic synchronisation — the monitor's target workload.
func burstyWorkload(nthreads, nlocs, n int, seed uint64) ([]LocDecl, []Event) {
	decls := make([]LocDecl, nlocs)
	for i := range decls {
		k := prog.NonAtomic
		if i%8 == 7 {
			k = prog.Atomic
		}
		decls[i] = LocDecl{Name: prog.Loc(fmt.Sprintf("l%d", i)), Kind: k}
	}
	x := seed
	rnd := func(m int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(m))
	}
	events := make([]Event, 0, n)
	for len(events) < n {
		t := rnd(nthreads)
		span := 32 + rnd(64)
		for s := 0; s < span && len(events) < n; s++ {
			l := rnd(nlocs)
			var k Kind
			if decls[l].Kind == prog.Atomic {
				k = ReadAT
				if rnd(4) == 0 {
					k = WriteAT
				}
			} else {
				k = ReadNA
				if rnd(3) == 0 {
					k = WriteNA
				}
			}
			events = append(events, Event{Thread: int32(t), Loc: int32(l), Kind: k})
		}
	}
	return decls, events
}
