package monitor

// Parallel wire pre-parse: N workers decode v2 frames concurrently, one
// ordering sequencer consumes them in stream order.
//
// The v2 format's frames are self-delimiting (a length prefix, then a
// counted batch of tag+varint events), so the expensive byte work —
// tag dispatch, varint decoding, structural validation — needs nothing
// from neighbouring frames and parallelises perfectly. What does NOT
// parallelise naively is the delta context: thread ids, locations and
// RA timestamps are encoded relative to prevThread / prevLoc[thread] /
// prevNum[loc], which thread through the whole stream. Decoding is
// therefore split in two:
//
//   - parse (context-free, parallel): each worker turns its frame's
//     bytes into relative events — kind, thread delta, location delta,
//     timestamp delta — catching every malformation that is visible
//     without context (bad varints, unknown kinds, trailing bytes).
//
//   - resolve (context-bearing, pipelined): a small HANDOFF RECORD
//     carrying the delta context (prevThread, prevLoc, prevNum, and the
//     halted-thread set for the halt-promise check) travels from the
//     worker of frame i to the worker of frame i+1 through a ring of
//     channels. On receiving it a worker rebases its already-parsed
//     relative events to absolute ones, validates bounds and
//     kind-versus-declaration consistency, and passes the updated
//     context on. Resolution is a few adds and compares per event, so
//     the chain's serial section is a fraction of the decode cost — the
//     varint crunching it waits on ran in parallel.
//
// Frames are dispatched to workers round-robin and collected round-robin
// (engine.FanRing), so the sequencer observes frames — and therefore
// events, errors, and halt violations — in exactly the order the
// sequential TraceReader would produce them. The sequencer side is
// ParallelTraceReader.NextBatch, a drop-in BatchSource: feed it to a
// Monitor for sequential checking or to a Pipeline, whose sync front-end
// then receives pre-decoded batches and spends its serial budget only on
// clock joins and routing.
//
// Memory is bounded: payload and event buffers recycle through free
// queues sized to the ring depths, exactly like the pipeline's record
// batches. v1 and text traces (and parsers < 2) fall back to the
// sequential TraceReader transparently. Checkpoint/resume is not
// supported through the parallel reader — take checkpoints with the
// sequential reader (racemon does this automatically).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"localdrf/internal/engine"
	"localdrf/internal/obs"
	"localdrf/internal/race"
	"localdrf/internal/ts"
)

const (
	// parseRingDepth is the per-worker depth of the job and result rings:
	// enough for a worker to decode one frame while its previous result
	// waits for collection, without unbounded run-ahead.
	parseRingDepth = 2
	// maxParsers caps the worker count a caller can request.
	maxParsers = 128
)

// errParseAborted marks the results of frames after the first failing
// one. The sequencer consumes results in stream order and stops at the
// first error, so this sentinel is never surfaced to callers.
var errParseAborted = errors.New("monitor: trace parse aborted by earlier frame error")

// parseJob is one raw frame on its way to a worker. A job with err set
// carries a producer-side read error to the sequencer in stream order.
type parseJob struct {
	payload []byte
	err     error
}

// parsedFrame is one decoded frame on its way to the sequencer.
type parsedFrame struct {
	events []Event
	err    error
}

// parseCtx is the handoff record chained from each frame's worker to the
// next frame's worker: the v2 delta context and the halted-thread set as
// of the frame boundary. Exactly one frame owns it at a time, so it is
// mutated in place. poisoned marks the chain dead after a frame fails to
// resolve (its successors cannot be decoded meaningfully).
type parseCtx struct {
	prevThread int32
	prevLoc    []int32
	prevNum    []int64
	halted     []bool
	poisoned   bool
}

// relEvent is one structurally parsed but unresolved event: everything
// the tag and varints say, relative to a context this worker does not
// yet hold.
type relEvent struct {
	dThread int64 // thread delta (when hasDT)
	dLoc    int64 // location delta
	dNum    int64 // RA timestamp numerator delta
	den     uint64
	kind    Kind
	hasDT   bool
}

// ParallelTraceReader decodes a wire-format trace with parsers worker
// goroutines and yields validated events in stream order — a drop-in
// BatchSource with the same event sequence, validation and error
// behaviour as the sequential TraceReader. Create one with
// NewParallelTraceReader and Close it when done (NextBatch closes
// automatically at end of trace or on error; Close is then a no-op).
type ParallelTraceReader struct {
	seq *TraceReader // non-nil: sequential fallback (v1, text, parsers < 2)

	hdr         Header
	in          *engine.FanRing[parseJob]
	out         *engine.FanRing[parsedFrame]
	payloadFree *engine.BatchQueue[[]byte]
	eventsFree  *engine.BatchQueue[[]Event]
	ctxCh       []chan *parseCtx
	wg          sync.WaitGroup
	closed      bool
	done        bool
	err         error
	// Optional telemetry (NewParallelTraceReaderObs): per-worker frame
	// and payload-byte vectors, plus the time the sequencer spent
	// blocked waiting for the next in-order frame. Workers publish one
	// atomic add per frame — amortised over up to 64k events — so the
	// decode hot path is untouched. All nil when not attached.
	obsFrames *obs.Vec
	obsBytes  *obs.Vec
	obsWaitNs *obs.Counter
}

// NewParallelTraceReader sniffs and validates the trace header of r and
// starts parsers decode workers. Traces that are not binary v2 — and
// parsers < 2 — are handled by a sequential TraceReader behind the same
// interface.
func NewParallelTraceReader(r io.Reader, parsers int) (*ParallelTraceReader, error) {
	return NewParallelTraceReaderObs(r, parsers, nil)
}

// NewParallelTraceReaderObs is NewParallelTraceReader with decode
// telemetry registered in reg (parse.frames, parse.bytes,
// parse.sequencer_wait_ns — typically the registry of the monitor or
// pipeline consuming the events, so one snapshot covers the whole
// ingest path). A nil reg, or the sequential fallback, records nothing.
func NewParallelTraceReaderObs(r io.Reader, parsers int, reg *obs.Registry) (*ParallelTraceReader, error) {
	tr, err := NewTraceReader(r)
	if err != nil {
		return nil, err
	}
	if parsers < 2 || !tr.v2 {
		return &ParallelTraceReader{seq: tr, hdr: tr.hdr}, nil
	}
	if parsers > maxParsers {
		parsers = maxParsers
	}
	nbuf := parsers*2*parseRingDepth + 2
	pr := &ParallelTraceReader{
		hdr:         tr.hdr,
		in:          engine.NewFanRing[parseJob](parsers, parseRingDepth),
		out:         engine.NewFanRing[parsedFrame](parsers, parseRingDepth),
		payloadFree: engine.NewBatchQueue[[]byte](nbuf),
		eventsFree:  engine.NewBatchQueue[[]Event](nbuf),
		ctxCh:       make([]chan *parseCtx, parsers),
	}
	if reg != nil {
		pr.obsFrames = reg.Vec("parse.frames", parsers)
		pr.obsBytes = reg.Vec("parse.bytes", parsers)
		pr.obsWaitNs = reg.Counter("parse.sequencer_wait_ns")
	}
	for i := 0; i < nbuf; i++ {
		pr.payloadFree.Put(nil)
		pr.eventsFree.Put(nil)
	}
	for i := range pr.ctxCh {
		// Capacity 1 suffices: the chain strictly alternates one send to a
		// worker's channel with that worker's receive (context i+1 cannot
		// be produced before context i was consumed).
		pr.ctxCh[i] = make(chan *parseCtx, 1)
	}
	pr.ctxCh[0] <- &parseCtx{
		prevLoc: make([]int32, tr.hdr.Threads),
		prevNum: make([]int64, len(tr.hdr.Decls)),
	}
	pr.wg.Add(parsers + 1)
	go pr.produce(tr)
	for i := 0; i < parsers; i++ {
		go pr.work(i)
	}
	return pr, nil
}

// Header returns the decoded trace header.
func (pr *ParallelTraceReader) Header() Header { return pr.hdr }

// NewMonitor returns a monitor sized for the trace's header.
func (pr *ParallelTraceReader) NewMonitor() *Monitor { return New(pr.hdr.Threads, pr.hdr.Decls) }

// NextBatch appends the next frame's events to dst, in stream order.
// ok=false with nothing appended means the end of the trace.
func (pr *ParallelTraceReader) NextBatch(dst []Event) ([]Event, bool, error) {
	if pr.seq != nil {
		return pr.seq.NextBatch(dst)
	}
	if pr.err != nil {
		return dst, false, pr.err
	}
	if pr.done {
		return dst, false, nil
	}
	var start time.Time
	if pr.obsWaitNs != nil {
		start = time.Now()
	}
	res, ok := pr.out.Collect()
	if pr.obsWaitNs != nil {
		pr.obsWaitNs.Add(uint64(time.Since(start)))
	}
	if !ok {
		pr.done = true
		pr.Close()
		return dst, false, nil
	}
	if res.err != nil {
		pr.err = res.err
		pr.Close()
		return dst, false, res.err
	}
	dst = append(dst, res.events...)
	pr.eventsFree.Put(res.events[:0])
	return dst, true, nil
}

// Close tears the worker fleet down (idempotent, no-op for the
// sequential fallback). After a clean end of trace or an error it
// returns immediately; called mid-stream it interrupts the workers at
// their next queue operation.
func (pr *ParallelTraceReader) Close() {
	if pr.seq != nil || pr.closed {
		return
	}
	pr.closed = true
	pr.in.Close()
	pr.out.Close()
	pr.payloadFree.Close()
	pr.eventsFree.Close()
	pr.wg.Wait()
}

// produce reads raw self-delimiting frames off the trace and dispatches
// them to the workers round-robin. Read errors are dispatched as jobs so
// the sequencer surfaces them in stream position.
func (pr *ParallelTraceReader) produce(tr *TraceReader) {
	defer pr.wg.Done()
	defer pr.in.Close()
	for {
		payloadLen, err := binary.ReadUvarint(&tr.cr)
		if err != nil {
			if err != io.EOF {
				pr.in.Dispatch(parseJob{err: fmt.Errorf("monitor: trace frame length: %w", err)})
			}
			return // clean end of trace
		}
		if payloadLen == 0 || payloadLen > maxFrameBytes {
			pr.in.Dispatch(parseJob{err: fmt.Errorf("monitor: trace frame: payload length %d out of range (1,%d]", payloadLen, maxFrameBytes)})
			return
		}
		buf, ok := pr.payloadFree.Get()
		if !ok {
			return
		}
		if uint64(cap(buf)) < payloadLen {
			buf = make([]byte, payloadLen)
		}
		buf = buf[:payloadLen]
		if _, err := io.ReadFull(&tr.cr, buf); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			pr.in.Dispatch(parseJob{err: fmt.Errorf("monitor: trace frame: %w", err)})
			return
		}
		if !pr.in.Dispatch(parseJob{payload: buf}) {
			return
		}
	}
}

// work is one decode worker: structural parse without the context, then
// resolve once the handoff record arrives, then pass the context on.
// The context is forwarded before the result is enqueued, so an aborted
// sequencer can never strand a successor waiting on the chain.
func (pr *ParallelTraceReader) work(id int) {
	defer pr.wg.Done()
	myIn, myOut := pr.in.Worker(id), pr.out.Worker(id)
	defer myOut.Close()
	next := pr.ctxCh[(id+1)%len(pr.ctxCh)]
	var rel []relEvent
	for {
		job, ok := myIn.Get()
		if !ok {
			return
		}
		if pr.obsFrames != nil && job.payload != nil {
			pr.obsFrames.Add(id, 1)
			pr.obsBytes.Add(id, uint64(len(job.payload)))
		}
		var structErr error
		if job.err == nil {
			rel, structErr = parseRelFrame(job.payload, rel[:0])
		}
		ctx := <-pr.ctxCh[id]
		var res parsedFrame
		switch {
		case ctx.poisoned:
			res.err = errParseAborted
		case job.err != nil:
			res.err = job.err
			ctx.poisoned = true
		case structErr != nil:
			res.err = structErr
			ctx.poisoned = true
		default:
			res.events, res.err = pr.resolve(rel, ctx)
			if res.err != nil {
				ctx.poisoned = true
				if res.events != nil {
					pr.eventsFree.Put(res.events[:0])
					res.events = nil
				}
			}
		}
		next <- ctx
		if job.payload != nil {
			pr.payloadFree.Put(job.payload[:0])
		}
		if !myOut.Put(res) {
			return
		}
	}
}

// parseRelFrame structurally parses one frame payload into relative
// events, validating everything visible without the delta context.
func parseRelFrame(p []byte, rel []relEvent) ([]relEvent, error) {
	count, n := binary.Uvarint(p)
	if n <= 0 || count == 0 || count > maxFrameEvents {
		return rel, fmt.Errorf("monitor: trace frame: bad event count")
	}
	pos := n
	for i := uint64(0); i < count; i++ {
		if pos >= len(p) {
			return rel, fmt.Errorf("monitor: trace frame: truncated event (missing tag)")
		}
		tag := p[pos]
		pos++
		r := relEvent{kind: Kind(tag & 7)}
		if r.kind > KindHalt {
			return rel, fmt.Errorf("monitor: trace event: unknown kind %d", r.kind)
		}
		if tag&(1<<3) != 0 {
			d, n := binary.Varint(p[pos:])
			if n <= 0 {
				return rel, fmt.Errorf("monitor: trace event: bad thread delta varint")
			}
			pos += n
			r.hasDT, r.dThread = true, d
		}
		locField := tag >> 4
		if r.kind == KindHalt {
			if locField != 0 {
				return rel, fmt.Errorf("monitor: trace event: halt with nonzero location field")
			}
			rel = append(rel, r)
			continue
		}
		r.dLoc = int64(locField) - 7
		if locField == 15 {
			d, n := binary.Varint(p[pos:])
			if n <= 0 {
				return rel, fmt.Errorf("monitor: trace event: bad location delta varint")
			}
			pos += n
			r.dLoc = d
		}
		if r.kind == ReadRA || r.kind == WriteRA {
			dnum, n := binary.Varint(p[pos:])
			if n <= 0 {
				return rel, fmt.Errorf("monitor: trace event: bad timestamp delta varint")
			}
			pos += n
			den, n := binary.Uvarint(p[pos:])
			if n <= 0 {
				return rel, fmt.Errorf("monitor: trace event: bad timestamp denominator varint")
			}
			pos += n
			r.dNum, r.den = dnum, den
		}
		rel = append(rel, r)
	}
	if pos != len(p) {
		return rel, fmt.Errorf("monitor: trace frame: %d trailing bytes after %d events", len(p)-pos, count)
	}
	return rel, nil
}

// resolve rebases a frame's relative events onto the handoff context,
// performing the context-dependent half of validation (bounds,
// kind-versus-declaration, timestamp range, the halt promise) — the
// exact checks TraceReader.decodeV2Event performs, at the exact stream
// positions.
func (pr *ParallelTraceReader) resolve(rel []relEvent, ctx *parseCtx) ([]Event, error) {
	buf, ok := pr.eventsFree.Get()
	if !ok {
		buf = make([]Event, 0, len(rel))
	}
	hdr := pr.hdr
	for i := range rel {
		r := &rel[i]
		e := Event{Kind: r.kind}
		thread := int64(ctx.prevThread)
		if r.hasDT {
			thread += r.dThread
		}
		if thread < 0 || thread >= int64(hdr.Threads) {
			return buf, fmt.Errorf("monitor: trace event: thread %d out of range [0,%d)", thread, hdr.Threads)
		}
		e.Thread = int32(thread)
		ctx.prevThread = e.Thread
		if r.kind != KindHalt {
			loc := int64(ctx.prevLoc[e.Thread]) + r.dLoc
			if loc < 0 || loc >= int64(len(hdr.Decls)) {
				return buf, fmt.Errorf("monitor: trace event: location index %d out of range [0,%d)", loc, len(hdr.Decls))
			}
			e.Loc = int32(loc)
			ctx.prevLoc[e.Thread] = e.Loc
			if r.kind == ReadRA || r.kind == WriteRA {
				if r.den == 0 || r.den > uint64(math.MaxInt64) {
					return buf, fmt.Errorf("monitor: trace event timestamp: denominator %d out of range", r.den)
				}
				num := ctx.prevNum[e.Loc] + r.dNum
				ctx.prevNum[e.Loc] = num
				e.Time = ts.New(num, int64(r.den))
			}
			if err := validateEvent(hdr, e); err != nil {
				return buf, err
			}
		}
		if err := checkHalt(&ctx.halted, hdr.Threads, e); err != nil {
			return buf, err
		}
		buf = append(buf, e)
	}
	return buf, nil
}

// MonitorReaderParallel is MonitorReader with parallel frame pre-parse:
// it runs a fresh sequential monitor over the trace, with decoding
// spread across parsers workers.
func MonitorReaderParallel(r io.Reader, parsers int) (*Monitor, error) {
	pr, err := NewParallelTraceReader(r, parsers)
	if err != nil {
		return nil, err
	}
	defer pr.Close()
	m := pr.NewMonitor()
	if err := m.FeedBatch(pr); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadRacesParallel monitors a wire-format trace with the fully parallel
// front-end — parsers decode workers feeding the pipeline's sync
// sequencer, race checking split across cfg.Shards back-ends — and
// returns the deduplicated reports and retention statistics,
// byte-identical to a sequential ReadRaces pass.
func ReadRacesParallel(r io.Reader, parsers int, cfg PipelineConfig) ([]race.Report, RAStats, error) {
	pr, err := NewParallelTraceReader(r, parsers)
	if err != nil {
		return nil, RAStats{}, err
	}
	defer pr.Close()
	p := NewPipeline(pr.hdr.Threads, pr.hdr.Decls, cfg)
	if err := p.FeedBatch(pr); err != nil {
		p.Abort()
		return nil, RAStats{}, err
	}
	reports := p.Finish()
	return reports, p.RAStats(), nil
}
