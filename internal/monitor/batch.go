package monitor

// Batched ingestion: the per-event Source interface costs an interface
// call per event, which at tens of millions of events per second is a
// measurable slice of the fused generate-and-monitor path. A BatchSource
// amortises that to one call per batch; the wire-format v2 decoder
// (whose frames are natural batches), schedgen's batched streaming, and
// the parallel pipeline all move events this way.

// BatchSource is a pull-based stream of monitor events delivered in
// batches. NextBatch appends the next batch to dst (pass a reusable
// buffer, typically dst[:0] of the previous result) and returns the
// extended slice; ok=false at the end of the stream, or an error (after
// which the stream must not be read further).
type BatchSource interface {
	NextBatch(dst []Event) ([]Event, bool, error)
}

// StepBatch consumes a batch of events in order — equivalent to calling
// Step on each, without the per-event call overhead of Feed.
func (m *Monitor) StepBatch(events []Event) {
	for i := range events {
		m.Step(events[i])
	}
}

// FeedBatch consumes src to the end of the stream, stepping the monitor
// on every event of every batch. On a source error, monitoring stops and
// the error is returned; the reports accumulated so far remain readable.
func (m *Monitor) FeedBatch(src BatchSource) error {
	return feedBatches(src, m.StepBatch)
}

// feedBatches drains a batched source into step, reusing one buffer —
// the shared pump behind Monitor.FeedBatch and Pipeline.FeedBatch.
func feedBatches(src BatchSource, step func([]Event)) error {
	buf := make([]Event, 0, defaultPipelineBatch)
	for {
		batch, ok, err := src.NextBatch(buf[:0])
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		step(batch)
		buf = batch
	}
}

// feedEvents drains a per-event source into step — the shared pump
// behind Monitor.Feed and Pipeline.Feed.
func feedEvents(src Source, step func(Event)) error {
	for {
		e, ok, err := src.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		step(e)
	}
}

// NextBatch yields up to cap(dst) (at least one batch's worth of)
// remaining slice elements — SliceSource implements BatchSource too.
func (s *SliceSource) NextBatch(dst []Event) ([]Event, bool, error) {
	if s.next >= len(s.Events) {
		return dst, false, nil
	}
	n := cap(dst) - len(dst)
	if n < 1 {
		n = defaultPipelineBatch
	}
	if rest := len(s.Events) - s.next; n > rest {
		n = rest
	}
	dst = append(dst, s.Events[s.next:s.next+n]...)
	s.next += n
	return dst, true, nil
}
