package monitor

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"localdrf/internal/prog"
	"localdrf/internal/race"
	"localdrf/internal/ts"
)

// wireWorkload is a small mixed stream over NA, atomic and RA locations,
// racy enough that round-trip report comparison is meaningful.
func wireWorkload() (Header, []Event) {
	hdr := Header{
		Threads: 3,
		Decls: []LocDecl{
			{Name: "x", Kind: prog.NonAtomic},
			{Name: "F", Kind: prog.Atomic},
			{Name: "R", Kind: prog.ReleaseAcquire},
		},
	}
	events := []Event{
		{Thread: 0, Loc: 0, Kind: WriteNA},
		{Thread: 0, Loc: 2, Kind: WriteRA, Time: ts.New(1, 2)},
		{Thread: 1, Loc: 2, Kind: ReadRA, Time: ts.New(1, 2)},
		{Thread: 1, Loc: 0, Kind: ReadNA}, // ordered via the RA edge
		{Thread: 2, Loc: 0, Kind: ReadNA}, // races with T0's write
		{Thread: 2, Loc: 1, Kind: WriteAT},
		{Thread: 0, Loc: 1, Kind: ReadAT},
		{Thread: 2, Loc: 0, Kind: WriteNA},                    // races with T0's write
		{Thread: 1, Loc: 2, Kind: ReadRA, Time: ts.New(7, 1)}, // dangling reads-from: no edge
	}
	return hdr, events
}

// encodeAll writes a header and events in the given format.
func encodeAll(t *testing.T, hdr Header, events []Event, format Format) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, hdr, format)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := tw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWireRoundTrip: encode → decode reproduces the header and events
// exactly (modulo the timestamps of non-RA events, which the format does
// not carry and the monitor ignores), in both formats.
func TestWireRoundTrip(t *testing.T) {
	hdr, events := wireWorkload()
	for _, format := range []Format{Binary, Text} {
		data := encodeAll(t, hdr, events, format)
		tr, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		got := tr.Header()
		if got.Threads != hdr.Threads || len(got.Decls) != len(hdr.Decls) {
			t.Fatalf("%v: header mismatch: %+v vs %+v", format, got, hdr)
		}
		for i := range hdr.Decls {
			if got.Decls[i] != hdr.Decls[i] {
				t.Fatalf("%v: decl %d mismatch: %+v vs %+v", format, i, got.Decls[i], hdr.Decls[i])
			}
		}
		for i, want := range events {
			e, ok, err := tr.Next()
			if err != nil || !ok {
				t.Fatalf("%v: event %d: ok=%v err=%v", format, i, ok, err)
			}
			if e.Thread != want.Thread || e.Loc != want.Loc || e.Kind != want.Kind {
				t.Fatalf("%v: event %d: got %+v, want %+v", format, i, e, want)
			}
			if (want.Kind == ReadRA || want.Kind == WriteRA) && !e.Time.Equal(want.Time) {
				t.Fatalf("%v: event %d: timestamp %v, want %v", format, i, e.Time, want.Time)
			}
		}
		if _, ok, err := tr.Next(); ok || err != nil {
			t.Fatalf("%v: expected clean end of trace, got ok=%v err=%v", format, ok, err)
		}
	}
}

// TestWireMonitorParity: monitoring the decoded stream reports exactly
// what monitoring the original slice reports.
func TestWireMonitorParity(t *testing.T) {
	hdr, events := wireWorkload()
	direct := New(hdr.Threads, hdr.Decls)
	for _, e := range events {
		direct.Step(e)
	}
	want := direct.Reports()
	if len(want) == 0 {
		t.Fatal("workload produced no races; not a useful fixture")
	}
	for _, format := range []Format{Binary, Text} {
		data := encodeAll(t, hdr, events, format)
		got, err := ReadRaces(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		if !race.ReportsEqual(got, want) {
			t.Fatalf("%v: decoded reports %v, want %v", format, got, want)
		}
	}
}

// TestWireTextComments: comments and blank lines are skipped.
func TestWireTextComments(t *testing.T) {
	src := `ldtrace 1
# a comment
threads 2

loc x na
0 w x   # trailing comment
1 r x
`
	reports, err := ReadRaces(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("got %v, want one write/read race on x", reports)
	}
}

// TestWireDecoderRejects: every malformed-input class errors instead of
// panicking or silently yielding events the monitor would crash on.
func TestWireDecoderRejects(t *testing.T) {
	hdr, events := wireWorkload()
	bin := encodeAll(t, hdr, events, Binary)
	txt := encodeAll(t, hdr, events, Text)

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated binary magic", bin[:2]},
		{"truncated binary header", bin[:6]},
		{"truncated binary event", bin[:len(bin)-1]},
		{"bad binary version", append([]byte("LDTR\x07"), bin[5:]...)},
		{"binary junk after header", func() []byte {
			h := encodeAll(t, hdr, nil, Binary)
			return append(h, 0xEE, 0x01, 0x02)
		}()},
		{"text junk", []byte("not a trace\n")},
		{"text bad version", []byte("ldtrace 9\nthreads 1\n")},
		{"text missing threads", []byte("ldtrace 1\nloc x na\n")},
		{"text zero threads", []byte("ldtrace 1\nthreads 0\n")},
		{"text dup loc", []byte("ldtrace 1\nthreads 1\nloc x na\nloc x at\n")},
		{"text unknown kind", []byte("ldtrace 1\nthreads 1\nloc x xx\n")},
		{"text thread out of range", []byte("ldtrace 1\nthreads 2\nloc x na\n2 w x\n")},
		{"text undeclared loc", []byte("ldtrace 1\nthreads 2\nloc x na\n0 w y\n")},
		{"text bad op", []byte("ldtrace 1\nthreads 2\nloc x na\n0 q x\n")},
		{"text missing RA time", []byte("ldtrace 1\nthreads 2\nloc R ra\n0 w R\n")},
		{"text time on NA", []byte("ldtrace 1\nthreads 2\nloc x na\n0 w x 3\n")},
		{"text zero denominator", []byte("ldtrace 1\nthreads 2\nloc R ra\n0 w R 1/0\n")},
		{"text malformed time", []byte("ldtrace 1\nthreads 2\nloc R ra\n0 w R one\n")},
		{"truncated text event", append(append([]byte{}, txt...), []byte("0 w\n")...)},
		{"hostile threads×locations product", hostileHeader()},
	}
	for _, tc := range cases {
		if _, err := ReadRaces(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s: decoder accepted malformed input", tc.name)
		}
	}
}

// hostileHeader hand-crafts a small binary header whose per-dimension
// sizes are legal but whose threads × locations product would make the
// monitor eagerly allocate hundreds of megabytes of atomic clock
// vectors. The decoder must reject it before any monitor exists.
func hostileHeader() []byte {
	var buf bytes.Buffer
	buf.WriteString("LDTR")
	buf.WriteByte(1)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	const threads, locs = 1 << 10, 1 << 14 // product 2× over maxWireCells
	put(threads)
	put(locs)
	for i := 0; i < locs; i++ {
		name := fmt.Sprintf("l%d", i)
		put(uint64(len(name)))
		buf.WriteString(name)
		buf.WriteByte(1) // atomic: the kind with the eager O(threads) vector
	}
	return buf.Bytes()
}

// TestWireWriterRejects: the encoder validates events against the header
// so malformed traces cannot be produced in the first place.
func TestWireWriterRejects(t *testing.T) {
	hdr, _ := wireWorkload()
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, hdr, Binary)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Event{
		{Thread: 3, Loc: 0, Kind: WriteNA},                      // thread out of range
		{Thread: 0, Loc: 9, Kind: WriteNA},                      // loc out of range
		{Thread: 0, Loc: 0, Kind: WriteRA, Time: ts.FromInt(1)}, // RA access on NA loc
		{Thread: 0, Loc: 2, Kind: WriteNA},                      // NA access on RA loc
		{Thread: 0, Loc: 0, Kind: Kind(42)},                     // unknown kind
	}
	for _, e := range bad {
		if err := tw.Write(e); err == nil {
			t.Errorf("writer accepted invalid event %+v", e)
		}
	}
	if _, err := NewTraceWriter(&buf, Header{Threads: 0}, Binary); err == nil {
		t.Error("writer accepted zero-thread header")
	}
	if _, err := NewTraceWriter(&buf, Header{
		Threads: 1, Decls: []LocDecl{{Name: "a b", Kind: prog.NonAtomic}},
	}, Text); err == nil {
		t.Error("writer accepted location name with whitespace")
	}
}

// FuzzTraceReader: the decoder must never panic, and every event it does
// yield must be safe for the monitor to consume. Seeds cover all three
// formats (v1, v2 framed, text) and a few corruption shapes, including a
// v2→v1 version-byte downgrade; the fuzz body exercises both the
// per-event and the batch decoding paths.
func FuzzTraceReader(f *testing.F) {
	hdr, events := wireWorkload()
	events = append(events, Event{Thread: 0, Kind: KindHalt}) // v2/text only
	bin := encodeAllFuzz(f, hdr, events[:len(events)-1], Binary)
	txt := encodeAllFuzz(f, hdr, events, Text)
	v2 := encodeAllFuzz(f, hdr, events, BinaryV2)
	f.Add(bin)
	f.Add(txt)
	f.Add(v2)
	f.Add(bin[:9])
	f.Add(v2[:len(v2)-3]) // truncated mid-frame
	f.Add(func() []byte { // v2 frames under a v1 version byte
		b := append([]byte{}, v2...)
		b[4] = 1
		return b
	}())
	f.Add(func() []byte { // v1 events under a v2 version byte
		b := append([]byte{}, bin...)
		b[4] = 2
		return b
	}())
	f.Add([]byte("LDTR\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte("LDTR\x02\x02\x01\x01x\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte("ldtrace 1\nthreads 3\nloc R ra\n0 w R -5/3\n0 halt\n"))
	f.Add([]byte{})
	f.Add(hostileHeader()) // must trip the budget path under limits below
	f.Fuzz(func(t *testing.T, data []byte) {
		// A limits-constrained reader must never panic either — and tight
		// limits mean it rejects hostile shapes early, so draining it is
		// cheap regardless of what the header declares.
		if tr, err := NewTraceReaderLimits(bytes.NewReader(data),
			ReaderLimits{MaxHeaderBytes: 1 << 12, MaxFrameEvents: 256}); err == nil {
			for i := 0; i < 1<<16; i++ {
				if _, ok, err := tr.Next(); err != nil || !ok {
					break
				}
			}
		}
		for _, batched := range []bool{false, true} {
			tr, err := NewTraceReader(bytes.NewReader(data))
			if err != nil {
				return
			}
			h := tr.Header()
			// Cap the monitored shape: the monitor's clock state is
			// O(threads²) and the decoder's limits allow sizes that are fine
			// for real traces but too slow to allocate per fuzz exec.
			feed := h.Threads <= 64 && len(h.Decls) <= 1024
			var m *Monitor
			if feed {
				m = New(h.Threads, h.Decls)
				m.SetGCInterval(64)
			}
			var batch []Event
			for i := 0; i < 1<<16; i++ {
				if batched {
					var ok bool
					batch, ok, err = tr.NextBatch(batch[:0])
					if err != nil || !ok {
						break
					}
					for _, e := range batch {
						if verr := validateEvent(h, e); verr != nil {
							t.Fatalf("batch decoder yielded invalid event %+v: %v", e, verr)
						}
					}
					if feed {
						m.StepBatch(batch)
					}
					continue
				}
				e, ok, err := tr.Next()
				if err != nil || !ok {
					break
				}
				if verr := validateEvent(h, e); verr != nil {
					t.Fatalf("decoder yielded invalid event %+v: %v", e, verr)
				}
				if feed {
					m.Step(e)
				}
			}
			if feed {
				_ = m.Reports()
			}
		}
	})
}

// encodeAllFuzz is encodeAll for fuzz seed construction (f.Fatal on error).
func encodeAllFuzz(f *testing.F, hdr Header, events []Event, format Format) []byte {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, hdr, format)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range events {
		if err := tw.Write(e); err != nil {
			f.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceReaderLimits: ReaderLimits turns "individually legal,
// collectively enormous" header declarations and oversized v2 frame
// counts into validation errors raised before the allocation they
// describe — the ingest hardening a server decoding untrusted network
// traces relies on. Generous limits must change nothing.
func TestTraceReaderLimits(t *testing.T) {
	hdr, events := wireWorkload()
	v2 := encodeAll(t, hdr, events, BinaryV2)

	t.Run("negative", func(t *testing.T) {
		if _, err := NewTraceReaderLimits(bytes.NewReader(v2), ReaderLimits{MaxHeaderBytes: -1}); err == nil {
			t.Error("negative MaxHeaderBytes accepted")
		}
		if _, err := NewTraceReaderLimits(bytes.NewReader(v2), ReaderLimits{MaxFrameEvents: -1}); err == nil {
			t.Error("negative MaxFrameEvents accepted")
		}
	})

	t.Run("hostile-binary-header", func(t *testing.T) {
		// hostileHeader declares 2^14 locations; a 4 KiB budget must
		// reject it within the first ~256 declarations, long before the
		// format's own threads×locations check would fire.
		_, err := NewTraceReaderLimits(bytes.NewReader(hostileHeader()), ReaderLimits{MaxHeaderBytes: 4096})
		if err == nil || !strings.Contains(err.Error(), "header budget") {
			t.Fatalf("hostile header: err = %v, want header-budget error", err)
		}
	})

	t.Run("hostile-text-header", func(t *testing.T) {
		var b strings.Builder
		b.WriteString("ldtrace 1\nthreads 2\n")
		for i := 0; i < 64; i++ {
			fmt.Fprintf(&b, "loc %s%d na\n", strings.Repeat("n", 100), i)
		}
		_, err := NewTraceReaderLimits(strings.NewReader(b.String()), ReaderLimits{MaxHeaderBytes: 1024})
		if err == nil || !strings.Contains(err.Error(), "header budget") {
			t.Fatalf("hostile text header: err = %v, want header-budget error", err)
		}
	})

	t.Run("frame-event-cap", func(t *testing.T) {
		// Build a v2 trace whose single frame carries well over 16 events.
		var long []Event
		for i := 0; i < 200; i++ {
			long = append(long, Event{Thread: int32(i % hdr.Threads), Loc: 0, Kind: WriteNA})
		}
		data := encodeAll(t, hdr, long, BinaryV2)
		tr, err := NewTraceReaderLimits(bytes.NewReader(data), ReaderLimits{MaxFrameEvents: 16})
		if err != nil {
			t.Fatalf("header: %v", err)
		}
		_, _, err = tr.NextBatch(nil)
		if err == nil || !strings.Contains(err.Error(), "per-frame limit") {
			t.Fatalf("oversized frame: err = %v, want per-frame-limit error", err)
		}
	})

	t.Run("generous-limits-identical", func(t *testing.T) {
		lim := ReaderLimits{MaxHeaderBytes: 1 << 20, MaxFrameEvents: maxFrameEvents}
		for _, format := range []Format{Binary, BinaryV2, Text} {
			data := encodeAll(t, hdr, events, format)
			ref, err := NewTraceReader(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%v: reference reader: %v", format, err)
			}
			ltd, err := NewTraceReaderLimits(bytes.NewReader(data), lim)
			if err != nil {
				t.Fatalf("%v: limited reader: %v", format, err)
			}
			for {
				we, wok, werr := ref.Next()
				ge, gok, gerr := ltd.Next()
				if wok != gok || (werr == nil) != (gerr == nil) || we != ge {
					t.Fatalf("%v: limited reader diverged: (%+v,%v,%v) vs (%+v,%v,%v)",
						format, ge, gok, gerr, we, wok, werr)
				}
				if !wok || werr != nil {
					break
				}
			}
		}
	})
}
