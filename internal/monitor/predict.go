package monitor

// Predictive race detection: the second checker family behind the same
// Source/pipeline plumbing. The default predicate (PredHB) decides the
// paper's defs. 9/10 over the observed trace exactly. The two predictive
// predicates report races exposed by feasible reorderings the observed
// schedule did not take:
//
//   - PredSyncP (sync-preserving races, after Kulkarni/Mathur/
//     Pavlogiannis): two conflicting accesses race if SOME correct
//     reordering of the observed trace that preserves each variable's
//     reads-from choices makes them adjacent-concurrent. The monitor
//     decides it with SP clocks: the same vector-clock pass, but only
//     program order and reads-from edges perform joins. Concretely, an
//     SC-atomic write STILL publishes its clock (so later reads of that
//     write join it — the reads-from edge) but does NOT join the
//     previous released clock of the location first: write→write
//     coherence order is exactly the ordering a sync-preserving
//     reordering may flip. RA reads-from joins are kept (they ARE rf
//     edges). The SP relation is a subset of happens-before, so every
//     HB-unordered conflicting pair stays SP-unordered: reported ⊇ the
//     plain HB reports on the same trace, and every extra report
//     corresponds to a feasible reordering (proven against the
//     brute-force enumeration oracle in internal/modeltest).
//
//   - PredShort (distance-k short races, after Zhang): SP clocks plus a
//     candidate bound — only access pairs within k events of each other
//     in the observed trace are considered. Per nonatomic location the
//     monitor keeps a FIFO window of the accesses from the last k
//     events; an access is checked against exactly the live window
//     entries (same epoch comparison the HB checker uses, over SP
//     clocks), so state is O(min(accesses, locations × k)) regardless
//     of stream length, composing with the windowed RA GC: the whole
//     monitor stays bounded on 10⁶+-event streams. short:k reports are
//     a subset of the PredSyncP reports (the window only removes
//     candidates), and with k ≥ the stream length they are equal.
//
// The epoch/escalation/demotion machinery, the dedup bitmasks, the
// windowed RA GC and the snapshot codec are all predicate-agnostic:
// their proofs use only generic properties of join-only vector-clock
// systems (a clock entry c[w] = i dominates thread w's clock at its
// i-th event), which hold for the SP construction exactly as for HB.
// The sequential monitor and the pipeline therefore run the predictive
// predicates through the unchanged checker seam; under PredShort the
// window lives in the synchronisation half (nonatomic accesses are not
// routed to back-ends — the window needs the global event index, which
// only the front-end has), and its state serialises in the snapshot's
// predict section so split/resume stays byte-identical.

import (
	"localdrf/internal/race"
)

// Predicate selects the race definition a monitor decides. The zero
// value is the observed-trace happens-before predicate.
type Predicate uint8

const (
	// PredHB is the default: defs. 9/10 over the observed trace.
	PredHB Predicate = iota
	// PredSyncP reports sync-preserving predictable races (a superset
	// of PredHB on every trace).
	PredSyncP
	// PredShort reports sync-preserving races whose accesses lie within
	// a configured distance k of each other in the observed trace (a
	// subset of PredSyncP with bounded candidate state).
	PredShort
)

// String returns the racemon flag spelling of the predicate.
func (p Predicate) String() string {
	switch p {
	case PredHB:
		return "hb"
	case PredSyncP:
		return "syncp"
	case PredShort:
		return "short"
	default:
		return "unknown"
	}
}

// SetPredicate selects the race predicate the monitor decides. k is the
// event-distance bound of PredShort (ignored for the others). Must be
// called before any event is consumed; like the GC interval it is
// configuration, but unlike the GC interval it is recorded in snapshots
// (a resumed monitor continues under the checkpointed predicate, which
// is authoritative). Panics on a started monitor, on PredShort with
// k < 1, and on an unknown predicate.
func (m *Monitor) SetPredicate(p Predicate, k int) {
	if m.events != 0 {
		panic("monitor: SetPredicate after events were consumed")
	}
	switch p {
	case PredHB:
		m.pred, m.windowK, m.win = PredHB, 0, nil
	case PredSyncP:
		m.pred, m.windowK, m.win = PredSyncP, 0, nil
	case PredShort:
		if k < 1 {
			panic("monitor: PredShort requires a window k ≥ 1")
		}
		m.pred, m.windowK = PredShort, uint64(k)
		m.win = newWindow(m.nthreads, len(m.decls), uint64(k))
	default:
		panic("monitor: unknown predicate")
	}
	if p != PredHB {
		m.ensurePredCells()
	}
}

// Predicate returns the predicate the monitor decides.
func (m *Monitor) Predicate() Predicate { return m.pred }

// WindowK returns the PredShort distance bound (0 unless PredShort).
func (m *Monitor) WindowK() int { return int(m.windowK) }

// WindowStats is the short-race window telemetry: the candidate-pair
// state the distance bound keeps live.
type WindowStats struct {
	// Live is the number of window entries currently held (including
	// expired entries not yet visited by a prune pass).
	Live int
	// Peak is the high-water mark of Live since the last Reset — the
	// bounded-memory claim of PredShort, measured.
	Peak int
	// Pruned is how many expired entries the window has dropped.
	Pruned uint64
	// Races is how many distinct races the window checker reported.
	Races int
}

// WindowStats returns the short-race window telemetry (zero unless the
// monitor runs PredShort).
func (m *Monitor) WindowStats() WindowStats {
	if m.win == nil {
		return WindowStats{}
	}
	return WindowStats{Live: m.win.live, Peak: m.win.peak, Pruned: m.win.pruned, Races: m.win.races}
}

// winEntry is one retained access in a location's distance-k window.
type winEntry struct {
	// gidx is the global stream index of the access (Monitor.events at
	// the time) — the distance bound compares these.
	gidx uint64
	// epoch is the accessor's own clock component at the access: the
	// same thread@clock word the epoch representation uses, compared
	// against the later access's clock entry for the thread.
	epoch uint64
	t     int32
	write bool
}

// winLoc is one nonatomic location's window state: a FIFO of live
// entries (entries[head:]) and the same dedup bitmask layout the HB
// checker uses, so reports merge and sort identically.
type winLoc struct {
	head     int
	entries  []winEntry
	reported []uint8
}

// window is the distance-k candidate store of PredShort. Pruning is
// lazy — an accessed location drops its expired prefix first, and every
// GC sweep prunes all locations — so the prune schedule is a
// deterministic function of the event stream alone: sequential runs,
// pipelines at any shard count and split/resume runs hold identical
// window state (and telemetry) at every stream position.
type window struct {
	nthreads int
	k        uint64
	locs     []winLoc
	races    int
	live     int
	peak     int
	pruned   uint64
}

func newWindow(nthreads, nlocs int, k uint64) *window {
	return &window{nthreads: nthreads, k: k, locs: make([]winLoc, nlocs)}
}

// access checks one nonatomic access against the location's live window
// and appends it. c is the accessor's (SP) clock, gidx the global
// stream index of the access.
func (w *window) access(loc, t int32, write bool, c []uint64, gidx uint64) {
	wl := &w.locs[loc]
	w.pruneLoc(wl, gidx)
	for i := wl.head; i < len(wl.entries); i++ {
		e := &wl.entries[i]
		if e.t != t && (e.write || write) && e.epoch > c[e.t] {
			w.report(wl, e.t, t, e.write, write)
		}
	}
	wl.entries = append(wl.entries, winEntry{gidx: gidx, epoch: c[t], t: t, write: write})
	w.live++
	if w.live > w.peak {
		w.peak = w.live
	}
}

// pruneLoc drops the expired prefix of one location's FIFO (entries
// more than k events behind gidx) and compacts the backing slice once
// the dead prefix dominates it.
func (w *window) pruneLoc(wl *winLoc, gidx uint64) {
	for wl.head < len(wl.entries) && gidx-wl.entries[wl.head].gidx > w.k {
		wl.head++
		w.live--
		w.pruned++
	}
	if wl.head == len(wl.entries) {
		wl.entries = wl.entries[:0]
		wl.head = 0
	} else if wl.head > 32 && wl.head > len(wl.entries)/2 {
		n := copy(wl.entries, wl.entries[wl.head:])
		wl.entries = wl.entries[:n]
		wl.head = 0
	}
}

// pruneAll prunes every location — called at GC sweeps, so expired
// entries on quiet locations are dropped at deterministic stream
// positions rather than held until the next access.
func (w *window) pruneAll(gidx uint64) {
	for l := range w.locs {
		w.pruneLoc(&w.locs[l], gidx)
	}
}

// report records one window race in the location's dedup bitmask —
// identical semantics to checker.report.
func (w *window) report(wl *winLoc, u, t int32, wi, wj bool) {
	if wl.reported == nil {
		wl.reported = make([]uint8, w.nthreads*w.nthreads)
	}
	bit := reportBit(wi, wj)
	if p := &wl.reported[int(u)*w.nthreads+int(t)]; *p&bit == 0 {
		*p |= bit
		w.races++
	}
}

// appendReports decodes the window's dedup bitmasks into reports —
// the same decoding checker.appendReports performs.
func (w *window) appendReports(out []race.Report, decls []LocDecl) []race.Report {
	for l := range w.locs {
		wl := &w.locs[l]
		if wl.reported == nil {
			continue
		}
		for i, mask := range wl.reported {
			if mask == 0 {
				continue
			}
			u, t := i/w.nthreads, i%w.nthreads
			for b := uint8(0); b < 4; b++ {
				if mask&(1<<b) != 0 {
					out = append(out, race.Report{
						Loc:     decls[l].Name,
						ThreadI: u,
						ThreadJ: t,
						WriteI:  b&2 != 0,
						WriteJ:  b&1 != 0,
					})
				}
			}
		}
	}
	return out
}

// reset clears the window state (entries, masks, telemetry), reusing
// allocations; the k bound is configuration and survives.
func (w *window) reset() {
	for l := range w.locs {
		wl := &w.locs[l]
		wl.entries = wl.entries[:0]
		wl.head = 0
		if wl.reported != nil {
			clear(wl.reported)
		}
	}
	w.races, w.live, w.peak = 0, 0, 0
	w.pruned = 0
}
