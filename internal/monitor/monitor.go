// Package monitor is an online, single-pass data-race monitor over a
// *single observed trace* — the streaming counterpart of the exhaustive
// trace enumeration in internal/race.
//
// The exhaustive checkers decide the paper's definitions by enumerating
// every trace of a program, which caps them at litmus-sized inputs. This
// package makes the same definitions executable at scale: given one trace
// of machine transitions (millions of events, e.g. produced by
// internal/schedgen or ingested from the raw-trace wire format of
// wire.go), it computes the happens-before relation of def. 8
// incrementally with vector clocks and reports every conflicting
// unordered pair (defs. 9/10), deduplicated exactly as
// race.Races/race.FindRaces deduplicate — by location, thread pair and
// access kinds.
//
// # Algorithm
//
// Each thread t carries a vector clock C_t with C_t[u] = the largest
// event index of thread u that happens-before t's next event. The three
// synchronisation edge families of def. 8 become clock joins:
//
//   - program order: C_t[t] is incremented at every event of t;
//   - SC atomics: each atomic location A carries the released clock L_A
//     of its latest write (which transitively includes all earlier
//     writes); an atomic write joins L_A into C_t and stores C_t back, an
//     atomic read only joins (def. 8 orders atomic writes before later
//     reads and writes, but reads before nothing);
//   - release-acquire: each RA message (timestamp) carries the clock its
//     writer published; an RA read joins the clock of exactly the message
//     it reads from (same location, same timestamp — the §10 reads-from
//     edge), and RA writes synchronise with nothing else.
//
// Nonatomic accesses induce no edges. For each nonatomic location the
// monitor keeps the last read and last write per thread: access j by
// thread t races with some earlier access of thread u iff it races with
// u's *latest* earlier access of that kind (program order makes earlier
// ones ordered whenever the latest is), so per-thread last-access records
// identify the full deduplicated report set, not merely race existence.
//
// # Bounded memory: epochs and windowed RA GC
//
// Two representations keep the live state bounded on long streams.
//
// Epochs: a nonatomic location starts in the FastTrack-style epoch
// representation — its last write (and last read) is a single
// thread@clock word, allocation-free, covering the overwhelmingly common
// case of a location accessed by one thread at a time. The epoch is
// *escalated* to a full per-thread vector only when a second thread
// accesses the location while the previous epoch is still racy-reachable
// (some thread's frontier has not yet passed it). When the cached minimum
// frontier proves the old epoch dead — every thread already
// happens-after it, so it can never appear in another race — the epoch is
// overwritten in place instead, and ordered cross-thread handoffs stay in
// the compact form forever. Escalation preserves the live entries, so the
// report set is bit-for-bit the one the full-vector monitor computes.
//
// Windowed RA GC: release-acquire messages are retained only while some
// thread could still gain an edge from them. The monitor periodically
// (every GC interval; see SetGCInterval) recomputes the pointwise minimum
// of all thread clocks and deletes every message whose writer event index
// lies below that frontier: by the vector-clock characterisation of
// happens-before, once min_u C_u[w] ≥ k every current and future clock
// already dominates the clock published by thread w's k-th event, so the
// reads-from join is a no-op and dropping the message cannot change any
// report. Retention statistics (live, peak, collected) are exposed via
// RAStats. Under the program semantics' freshness constraint threads read
// monotonically newer messages, so the live set tracks the spread between
// the fastest and slowest thread — a window — rather than the trace
// length. The criterion is exact, not heuristic, which has a flip side:
// a declared thread that goes silent (never synchronising again) holds
// the frontier down forever, because it could still legitimately read
// any message it has not passed — retention is then semantically
// required, and bounding it would need an explicit thread-retirement
// signal in the event stream.
//
// Complexity: O(events × threads) time worst case, O(1) amortised per
// event on single-thread and ordered-handoff locations. Space is
// O(locations + threads²) until histories actually race or interleave:
// per-location vectors (O(threads)) and report bitmasks (O(threads²))
// are allocated lazily on first escalation / first race, and live RA
// messages are windowed as above instead of accumulating O(messages).
package monitor

import (
	"localdrf/internal/prog"
	"localdrf/internal/race"
	"localdrf/internal/ts"
)

// Kind classifies an event: the cross product of read/write and the
// location flavour (nonatomic, SC atomic, release-acquire).
type Kind uint8

const (
	// ReadNA is a nonatomic read.
	ReadNA Kind = iota
	// WriteNA is a nonatomic write.
	WriteNA
	// ReadAT is an SC-atomic read.
	ReadAT
	// WriteAT is an SC-atomic write.
	WriteAT
	// ReadRA is a release-acquire read.
	ReadRA
	// WriteRA is a release-acquire write.
	WriteRA
)

// IsWrite reports whether the kind is a write.
func (k Kind) IsWrite() bool { return k == WriteNA || k == WriteAT || k == WriteRA }

// Event is one trace transition in streaming form: thread and location as
// dense indices (see Table for the mapping from programs), the access
// kind, and — for release-acquire events only — the message timestamp
// that identifies the reads-from edge.
type Event struct {
	Thread int32
	Loc    int32
	Kind   Kind
	// Time is the RA message timestamp (Read-RA joins the clock of the
	// write with the equal timestamp). Ignored for NA and AT events, and
	// not preserved for them by the wire format.
	Time ts.Time
}

// LocDecl declares one location of the monitored program: its name (used
// in reports) and kind. The slice index is the Event.Loc index.
type LocDecl struct {
	Name prog.Loc
	Kind prog.LocKind
}

// tsKey is the canonical map key of an RA timestamp (normalised rational,
// so equal timestamps collide regardless of representation).
type tsKey struct{ num, den int64 }

func timeKey(t ts.Time) tsKey {
	num, den := t.Fraction() // one normalisation for both components
	return tsKey{num, den}
}

// raMsg is one retained release-acquire message: the clock its writer
// published and the writer thread (whose entry vc[writer] is the write
// event's own index — the GC criterion).
type raMsg struct {
	vc     []uint64
	writer int32
}

// Sentinel values of naState.wT / naState.rT.
const (
	// noEpoch: no live access of that kind yet.
	noEpoch int32 = -1
	// escalated: the per-thread vector (writes/reads) is authoritative.
	escalated int32 = -2
)

// naState is the race-checking state of one nonatomic location. It
// starts in the compact epoch representation (wT/wC, rT/rC) and
// escalates each side independently to a per-thread vector the first
// time two threads' accesses of that kind are simultaneously live.
type naState struct {
	// wT/wC: the thread and clock of the last write while at most one
	// write is live (the epoch). wT is noEpoch before the first write and
	// escalated once writes has been materialised. rT/rC likewise for the
	// last read.
	wT, rT int32
	wC, rC uint64
	// writes[u] / reads[u] hold the event index of thread u's last write /
	// read of this location (0 = none) once escalated. An access by t
	// races with u's last access iff the stored index exceeds C_t[u].
	writes []uint64
	reads  []uint64
	// reported[u*threads+t] is a 4-bit set of the access-kind pairs
	// (earlier kind, later kind) already reported for the thread pair
	// (u earlier, t later) on this location — the dedup set kept as flat
	// bitmasks so the racy-location hot path never touches a hash map.
	// Allocated on the first race at this location.
	reported []uint8
	// lastT is the thread of the last access (-1 initially); while the
	// same thread keeps accessing the location, the escalated scans can
	// be skipped once they have come up clean (the vectors cannot have
	// changed and C_t only grows). wClean / rClean record that the last
	// scan of the corresponding vector by lastT found no unordered entry.
	lastT  int32
	wClean bool
	rClean bool
}

// reportBit is the in-mask index of an access-kind pair.
func reportBit(wi, wj bool) uint8 {
	b := uint8(0)
	if wi {
		b |= 2
	}
	if wj {
		b |= 1
	}
	return 1 << b
}

// defaultGCInterval is how often (in events) the minimum-clock frontier
// is refreshed and dead RA messages are collected. Between refreshes the
// live RA set can grow by at most the interval's worth of writes, so the
// bound is a window, not the trace length; the refresh itself is
// O(threads² + live messages), amortised to a fraction of an event.
const defaultGCInterval = 4096

// Monitor is the streaming race detector. Create one with New, feed it
// events in trace order with Step (or Feed, from a Source), and collect
// the deduplicated reports with Reports. A Monitor is not safe for
// concurrent use; the sharded parallel mode (ShardedRaces) runs one
// Monitor per shard.
type Monitor struct {
	decls    []LocDecl
	nthreads int
	clocks   [][]uint64 // clocks[t][u]: thread t's vector clock
	na       []naState  // indexed by location; inert for non-NA locations
	at       [][]uint64 // released clock L_A per atomic location
	ra       []map[tsKey]raMsg
	// minClock caches the pointwise minimum of all thread clocks as of
	// the last GC sweep. Stale entries are only ever too small, so every
	// use (RA GC, epoch overwrite) stays conservative and safe.
	minClock []uint64
	gcEvery  uint64
	nextGC   uint64
	// RA retention statistics.
	raLive      int
	raPeak      int
	raCollected uint64
	// shard/shards restrict nonatomic race checking to locations with
	// loc % shards == shard; synchronisation events are always processed
	// (every shard needs the full clocks). 0/1 means "all locations".
	shard, shards int32
	races         int
	events        uint64
}

// New returns a monitor for nthreads threads over the given locations.
func New(nthreads int, decls []LocDecl) *Monitor {
	m := &Monitor{
		decls:    decls,
		nthreads: nthreads,
		clocks:   make([][]uint64, nthreads),
		na:       make([]naState, len(decls)),
		at:       make([][]uint64, len(decls)),
		ra:       make([]map[tsKey]raMsg, len(decls)),
		minClock: make([]uint64, nthreads),
		gcEvery:  defaultGCInterval,
		nextGC:   defaultGCInterval,
		shards:   1,
	}
	for t := range m.clocks {
		m.clocks[t] = make([]uint64, nthreads)
	}
	for l, d := range decls {
		switch d.Kind {
		case prog.Atomic:
			m.at[l] = make([]uint64, nthreads)
		case prog.ReleaseAcquire:
			m.ra[l] = make(map[tsKey]raMsg)
		}
		// Every location starts in the empty epoch state; the per-thread
		// vectors and dedup bitmasks are allocated only if the location's
		// history ever escalates / races.
		m.na[l] = naState{wT: noEpoch, rT: noEpoch, lastT: -1}
	}
	return m
}

// Reset clears all monitoring state (clocks, per-location epochs and
// vectors, RA messages and statistics, reports, and the shard filter) so
// the monitor can be reused for another trace of the same program shape
// without reallocating. A reused sharded monitor reverts to the
// unsharded default.
func (m *Monitor) Reset() {
	for _, c := range m.clocks {
		clear(c)
	}
	for l := range m.na {
		ls := &m.na[l]
		ls.wT, ls.rT = noEpoch, noEpoch
		ls.wC, ls.rC = 0, 0
		ls.lastT = -1
		ls.wClean, ls.rClean = false, false
		if ls.writes != nil {
			clear(ls.writes)
		}
		if ls.reads != nil {
			clear(ls.reads)
		}
		if ls.reported != nil {
			clear(ls.reported)
		}
	}
	for _, la := range m.at {
		if la != nil {
			clear(la)
		}
	}
	for l, mm := range m.ra {
		if len(mm) > 0 {
			m.ra[l] = make(map[tsKey]raMsg)
		}
	}
	clear(m.minClock)
	m.raLive, m.raPeak, m.raCollected = 0, 0, 0
	m.nextGC = m.gcEvery
	m.shard, m.shards = 0, 1
	m.races = 0
	m.events = 0
}

// SetGCInterval sets the frontier-refresh / RA-collection period in
// events (0 restores the default). Smaller intervals bound the live RA
// set more tightly at the cost of more frequent O(threads² + live)
// sweeps; the report set is identical at any interval.
func (m *Monitor) SetGCInterval(events uint64) {
	if events == 0 {
		events = defaultGCInterval
	}
	m.gcEvery = events
	m.nextGC = m.events + events
}

// RAStats is the release-acquire retention telemetry of a monitor run.
type RAStats struct {
	// Live is the number of RA messages currently retained.
	Live int
	// Peak is the high-water mark of Live since the last Reset.
	Peak int
	// Collected is how many dead messages the windowed GC reclaimed.
	Collected uint64
}

// RAStats returns the RA message retention statistics.
func (m *Monitor) RAStats() RAStats {
	return RAStats{Live: m.raLive, Peak: m.raPeak, Collected: m.raCollected}
}

// setShard restricts nonatomic race checking to locations l with
// l % shards == shard (see ShardedRaces).
func (m *Monitor) setShard(shard, shards int) {
	m.shard, m.shards = int32(shard), int32(shards)
}

// Events returns the number of events consumed since the last Reset.
func (m *Monitor) Events() uint64 { return m.events }

// RaceCount returns the number of distinct races reported so far.
func (m *Monitor) RaceCount() int { return m.races }

// Step consumes the next event of the trace. Events must be in bounds
// (thread < nthreads, loc < len(decls), kind matching the declared
// location kind); the wire-format decoder validates ingested traces, and
// Table guarantees it for converted machine traces.
func (m *Monitor) Step(e Event) {
	m.events++
	t := int(e.Thread)
	c := m.clocks[t]
	c[t]++
	if m.events >= m.nextGC {
		m.gc()
	}
	switch e.Kind {
	case ReadNA:
		if m.shards > 1 && e.Loc%m.shards != m.shard {
			return
		}
		m.readNA(&m.na[e.Loc], e.Thread, c)
	case WriteNA:
		if m.shards > 1 && e.Loc%m.shards != m.shard {
			return
		}
		m.writeNA(&m.na[e.Loc], e.Thread, c)
	case ReadAT:
		join(c, m.at[e.Loc])
	case WriteAT:
		la := m.at[e.Loc]
		join(c, la)
		copy(la, c)
	case ReadRA:
		if msg, ok := m.ra[e.Loc][timeKey(e.Time)]; ok {
			join(c, msg.vc)
		}
	case WriteRA:
		vc := make([]uint64, len(c))
		copy(vc, c)
		mm := m.ra[e.Loc]
		k := timeKey(e.Time)
		if _, dup := mm[k]; !dup {
			m.raLive++
			if m.raLive > m.raPeak {
				m.raPeak = m.raLive
			}
		}
		mm[k] = raMsg{vc: vc, writer: e.Thread}
	}
}

// readNA checks a nonatomic read by thread t against the write history
// and records it as the thread's last read.
func (m *Monitor) readNA(ls *naState, t int32, c []uint64) {
	if ls.lastT != t {
		ls.lastT = t
		ls.wClean, ls.rClean = false, false
	}
	switch ls.wT {
	case noEpoch, t:
		// No foreign write live: nothing to race with.
	case escalated:
		if !ls.wClean {
			ls.wClean = m.scanWrites(ls, t, c, false)
		}
	default:
		if ls.wC > c[ls.wT] {
			m.report(ls, ls.wT, t, true, false)
		}
	}
	switch ls.rT {
	case noEpoch, t:
		ls.rT, ls.rC = t, c[t]
	case escalated:
		ls.reads[t] = c[t]
	default:
		if m.minClock[ls.rT] >= ls.rC {
			// Every thread's frontier has passed the old read epoch: it
			// can never race again, so overwriting it loses no report.
			ls.rT, ls.rC = t, c[t]
		} else {
			m.escalateReads(ls)
			ls.reads[t] = c[t]
		}
	}
}

// writeNA checks a nonatomic write by thread t against both histories and
// records it as the thread's last write.
func (m *Monitor) writeNA(ls *naState, t int32, c []uint64) {
	if ls.lastT != t {
		ls.lastT = t
		ls.wClean, ls.rClean = false, false
	}
	switch ls.wT {
	case noEpoch, t:
	case escalated:
		if !ls.wClean {
			ls.wClean = m.scanWrites(ls, t, c, true)
		}
	default:
		if ls.wC > c[ls.wT] {
			m.report(ls, ls.wT, t, true, true)
		}
	}
	switch ls.rT {
	case noEpoch, t:
	case escalated:
		if !ls.rClean {
			ls.rClean = m.scanReads(ls, t, c)
		}
	default:
		if ls.rC > c[ls.rT] {
			m.report(ls, ls.rT, t, false, true)
		}
	}
	switch ls.wT {
	case noEpoch, t:
		ls.wT, ls.wC = t, c[t]
	case escalated:
		ls.writes[t] = c[t]
	default:
		if m.minClock[ls.wT] >= ls.wC {
			ls.wT, ls.wC = t, c[t]
		} else {
			m.escalateWrites(ls)
			ls.writes[t] = c[t]
		}
	}
}

// escalateWrites materialises the per-thread write vector from the
// current epoch. The slice is reused across Reset cycles.
func (m *Monitor) escalateWrites(ls *naState) {
	if ls.writes == nil {
		ls.writes = make([]uint64, m.nthreads)
	}
	ls.writes[ls.wT] = ls.wC
	ls.wT = escalated
	ls.wClean = false
}

// escalateReads materialises the per-thread read vector from the current
// epoch.
func (m *Monitor) escalateReads(ls *naState) {
	if ls.reads == nil {
		ls.reads = make([]uint64, m.nthreads)
	}
	ls.reads[ls.rT] = ls.rC
	ls.rT = escalated
	ls.rClean = false
}

// report records one race (u's access earlier, t's later) in the
// location's dedup bitmask, allocating the mask on first use.
func (m *Monitor) report(ls *naState, u, t int32, wi, wj bool) {
	if ls.reported == nil {
		ls.reported = make([]uint8, m.nthreads*m.nthreads)
	}
	bit := reportBit(wi, wj)
	if p := &ls.reported[int(u)*m.nthreads+int(t)]; *p&bit == 0 {
		*p |= bit
		m.races++
	}
}

// gc refreshes the cached minimum-clock frontier and deletes every RA
// message no thread can gain an edge from any more: once
// min_u C_u[w] ≥ vc[w] for the message's writer w, every current and
// future clock already dominates vc (vector clocks characterise
// happens-before), so the reads-from join is a no-op forever and the
// message is dead weight. It also schedules the next sweep.
func (m *Monitor) gc() {
	m.nextGC = m.events + m.gcEvery
	if m.nthreads == 0 {
		return
	}
	min := m.minClock
	copy(min, m.clocks[0])
	for _, c := range m.clocks[1:] {
		for u, v := range c {
			if v < min[u] {
				min[u] = v
			}
		}
	}
	for _, mm := range m.ra {
		for k, msg := range mm {
			if msg.vc[msg.writer] <= min[msg.writer] {
				delete(mm, k)
				m.raLive--
				m.raCollected++
			}
		}
	}
}

// scanWrites checks the current access of thread t (a read, or a write
// when isWrite) against the last write of every other thread, reporting
// each unordered pair. It returns whether the vector was clean (no
// unordered entry) — the condition under which the scan may be skipped
// for subsequent same-thread accesses.
func (m *Monitor) scanWrites(ls *naState, t int32, c []uint64, isWrite bool) bool {
	clean := true
	for u, w := range ls.writes {
		// u == t cannot trigger: the thread's own entry is always below
		// its (just incremented) clock component.
		if w > c[u] {
			clean = false
			m.report(ls, int32(u), t, true, isWrite)
		}
	}
	return clean
}

// scanReads checks a write by thread t against the last read of every
// other thread (read/write races with the read first in the trace).
func (m *Monitor) scanReads(ls *naState, t int32, c []uint64) bool {
	clean := true
	for u, r := range ls.reads {
		if r > c[u] {
			clean = false
			m.report(ls, int32(u), t, false, true)
		}
	}
	return clean
}

// join merges vc into c pointwise (c ⊔= vc).
func join(c, vc []uint64) {
	for u, v := range vc {
		if v > c[u] {
			c[u] = v
		}
	}
}

// Reports returns the distinct races observed, in the canonical order of
// race.SortReports — directly comparable with race.Races on the same
// trace.
func (m *Monitor) Reports() []race.Report {
	out := make([]race.Report, 0, m.races)
	for l := range m.na {
		out = m.appendReports(out, int32(l))
	}
	race.SortReports(out)
	return out
}

// appendReports decodes the dedup bitmasks of one location into reports.
func (m *Monitor) appendReports(out []race.Report, loc int32) []race.Report {
	ls := &m.na[loc]
	if ls.reported == nil {
		return out
	}
	for i, mask := range ls.reported {
		if mask == 0 {
			continue
		}
		u, t := i/m.nthreads, i%m.nthreads
		for b := uint8(0); b < 4; b++ {
			if mask&(1<<b) != 0 {
				out = append(out, race.Report{
					Loc:     m.decls[loc].Name,
					ThreadI: u,
					ThreadJ: t,
					WriteI:  b&2 != 0,
					WriteJ:  b&1 != 0,
				})
			}
		}
	}
	return out
}
