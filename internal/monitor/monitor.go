// Package monitor is an online, single-pass data-race monitor over a
// *single observed trace* — the streaming counterpart of the exhaustive
// trace enumeration in internal/race.
//
// The exhaustive checkers decide the paper's definitions by enumerating
// every trace of a program, which caps them at litmus-sized inputs. This
// package makes the same definitions executable at scale: given one trace
// of machine transitions (millions of events, e.g. produced by
// internal/schedgen or ingested from the raw-trace wire format of
// wire.go), it computes the happens-before relation of def. 8
// incrementally with vector clocks and reports every conflicting
// unordered pair (defs. 9/10), deduplicated exactly as
// race.Races/race.FindRaces deduplicate — by location, thread pair and
// access kinds.
//
// # Algorithm
//
// Each thread t carries a vector clock C_t with C_t[u] = the largest
// event index of thread u that happens-before t's next event. The three
// synchronisation edge families of def. 8 become clock joins:
//
//   - program order: C_t[t] is incremented at every event of t;
//   - SC atomics: each atomic location A carries the released clock L_A
//     of its latest write (which transitively includes all earlier
//     writes); an atomic write joins L_A into C_t and stores C_t back, an
//     atomic read only joins (def. 8 orders atomic writes before later
//     reads and writes, but reads before nothing);
//   - release-acquire: each RA message (timestamp) carries the clock its
//     writer published; an RA read joins the clock of exactly the message
//     it reads from (same location, same timestamp — the §10 reads-from
//     edge), and RA writes synchronise with nothing else.
//
// Nonatomic accesses induce no edges. For each nonatomic location the
// monitor keeps the last read and last write per thread: access j by
// thread t races with some earlier access of thread u iff it races with
// u's *latest* earlier access of that kind (program order makes earlier
// ones ordered whenever the latest is), so per-thread last-access records
// identify the full deduplicated report set, not merely race existence.
// That per-location check logic lives in the checker type, which is
// shared verbatim between the sequential Monitor and the parallel
// pipeline's race back-ends (pipeline.go) — the two paths cannot
// diverge, because they run the same code.
//
// # Bounded memory: epochs and windowed RA GC
//
// Two representations keep the live state bounded on long streams.
//
// Epochs: a nonatomic location starts in the FastTrack-style epoch
// representation — its last write (and last read) is a single
// thread@clock word, allocation-free, covering the overwhelmingly common
// case of a location accessed by one thread at a time. The epoch is
// *escalated* to a full per-thread vector only when a second thread
// accesses the location while the previous epoch is still racy-reachable
// (some thread's frontier has not yet passed it). When the cached minimum
// frontier proves the old epoch dead — every thread already
// happens-after it, so it can never appear in another race — the epoch is
// overwritten in place instead, and ordered cross-thread handoffs stay in
// the compact form forever. Escalation preserves the live entries, so the
// report set is bit-for-bit the one the full-vector monitor computes.
//
// Windowed RA GC: release-acquire messages are retained only while some
// thread could still gain an edge from them. The monitor periodically
// (every GC interval; see SetGCInterval and SetAdaptiveGC) recomputes the
// pointwise minimum of all thread clocks and deletes every message whose
// writer event index lies below that frontier: by the vector-clock
// characterisation of happens-before, once min_u C_u[w] ≥ k every current
// and future clock already dominates the clock published by thread w's
// k-th event, so the reads-from join is a no-op and dropping the message
// cannot change any report. Retention statistics (live, peak, collected)
// are exposed via RAStats, and live counts are tracked per location so
// sweeps skip locations with nothing retained. Under the program
// semantics' freshness constraint threads read monotonically newer
// messages, so the live set tracks the spread between the fastest and
// slowest thread — a window — rather than the trace length. The criterion
// is exact, not heuristic, with one escape hatch for its flip side: a
// declared thread that goes silent would hold the frontier down forever
// (it could still legitimately read any message it has not passed), so
// the event stream may carry an explicit thread-retirement event
// (KindHalt) after which the thread's frontier entry is treated as +∞ —
// a halted thread performs no further accesses, so no message needs to
// be retained on its behalf and no future race can involve it as the
// later access.
//
// Complexity: O(events × threads) time worst case, O(1) amortised per
// event on single-thread and ordered-handoff locations. Space is
// O(locations + threads²) until histories actually race or interleave:
// per-location vectors (O(threads)) and report bitmasks (O(threads²))
// are allocated lazily on first escalation / first race, and live RA
// messages are windowed as above instead of accumulating O(messages).
//
// Because the live state is bounded, it is also cheaply serialisable:
// Snapshot/Restore (snapshot.go) checkpoint a monitor — or a quiesced
// Pipeline — at any event index and resume it with byte-identical
// reports and retention statistics, optionally carrying a TraceReader
// continuation (byte offset + v2 delta context) so interrupted trace
// ingestion seeks instead of re-decoding.
//
// # Predictive detection
//
// The happens-before predicate above is sound but tied to the observed
// interleaving: a race the schedule happened to order through an
// incidental sync edge goes unreported. SetPredicate switches the
// monitor (and, via PipelineConfig, the pipeline) to predictive
// predicates that also report races exposed by feasible reorderings of
// the observed trace:
//
//   - PredSyncP decides sync-preserving races: the ordering relation
//     keeps only program order and the reads-from joins, dropping the
//     write-side release join, so any pair orderable only through an
//     incidental release chain is reported. Every report corresponds
//     to a sync-preserving correct reordering of the trace, and the
//     set is a superset of the PredHB set on every trace.
//   - PredShort (distance k) restricts PredSyncP to access pairs at
//     most k events apart in the observed trace, replacing per-thread
//     last-access records with a per-location candidate window of at
//     most k live entries — bounded memory regardless of how many
//     threads touch a location, at the price of missing long-range
//     pairs. Its reports are a subset of PredSyncP's; window telemetry
//     (live, peak, pruned) is exposed via WindowStats and published to
//     the obs registry as predict.* gauges at GC barriers.
//
// The predicates run through the same checker seam, shard-parallel
// pipeline, and snapshot codec as PredHB — reports are identical at
// any shard count, and a checkpoint records its predicate (snapshot v2
// carries the window state), which is authoritative on restore. See
// predict.go for the construction and internal/predict for the
// reference decider and the flag syntax ("hb", "syncp", "short:k")
// racemon exposes.
package monitor

import (
	"localdrf/internal/obs"
	"localdrf/internal/prog"
	"localdrf/internal/race"
	"localdrf/internal/ts"
)

// Kind classifies an event: the cross product of read/write and the
// location flavour (nonatomic, SC atomic, release-acquire), plus the
// thread-retirement marker.
type Kind uint8

const (
	// ReadNA is a nonatomic read.
	ReadNA Kind = iota
	// WriteNA is a nonatomic write.
	WriteNA
	// ReadAT is an SC-atomic read.
	ReadAT
	// WriteAT is an SC-atomic write.
	WriteAT
	// ReadRA is a release-acquire read.
	ReadRA
	// WriteRA is a release-acquire write.
	WriteRA
	// KindHalt retires a thread: it performs no further events. The
	// monitor then treats the thread's frontier entry as +∞ when
	// computing the windowed-GC minimum, so a finished thread stops
	// pinning the live RA-message window (and dead epochs it has not
	// explicitly passed can be overwritten — it will never be the later
	// access of a race). Halt events are advisory: removing them from a
	// stream never changes the report set, only retention. Event.Loc and
	// Event.Time are ignored.
	KindHalt
)

// IsWrite reports whether the kind is a write.
func (k Kind) IsWrite() bool { return k == WriteNA || k == WriteAT || k == WriteRA }

// Event is one trace transition in streaming form: thread and location as
// dense indices (see Table for the mapping from programs), the access
// kind, and — for release-acquire events only — the message timestamp
// that identifies the reads-from edge.
type Event struct {
	Thread int32
	Loc    int32
	Kind   Kind
	// Time is the RA message timestamp (Read-RA joins the clock of the
	// write with the equal timestamp). Ignored for NA and AT events, and
	// not preserved for them by the wire format.
	Time ts.Time
}

// LocDecl declares one location of the monitored program: its name (used
// in reports) and kind. The slice index is the Event.Loc index.
type LocDecl struct {
	Name prog.Loc
	Kind prog.LocKind
}

// tsKey is the canonical map key of an RA timestamp (normalised rational,
// so equal timestamps collide regardless of representation).
type tsKey struct{ num, den int64 }

func timeKey(t ts.Time) tsKey {
	num, den := t.Fraction() // one normalisation for both components
	return tsKey{num, den}
}

// raMsg is one retained release-acquire message: the clock its writer
// published and the writer thread (whose entry vc[writer] is the write
// event's own index — the GC criterion).
type raMsg struct {
	vc     []uint64
	writer int32
}

// Sentinel values of naState.wT / naState.rT.
const (
	// noEpoch: no live access of that kind yet.
	noEpoch int32 = -1
	// escalated: the per-thread vector (writes/reads) is authoritative.
	escalated int32 = -2
)

// naState is the race-checking state of one nonatomic location. It
// starts in the compact epoch representation (wT/wC, rT/rC) and
// escalates each side independently to a per-thread vector the first
// time two threads' accesses of that kind are simultaneously live.
type naState struct {
	// wT/wC: the thread and clock of the last write while at most one
	// write is live (the epoch). wT is noEpoch before the first write and
	// escalated once writes has been materialised. rT/rC likewise for the
	// last read.
	wT, rT int32
	wC, rC uint64
	// writes[u] / reads[u] hold the event index of thread u's last write /
	// read of this location (0 = none) once escalated. An access by t
	// races with u's last access iff the stored index exceeds C_t[u].
	writes []uint64
	reads  []uint64
	// reported[u*threads+t] is a 4-bit set of the access-kind pairs
	// (earlier kind, later kind) already reported for the thread pair
	// (u earlier, t later) on this location — the dedup set kept as flat
	// bitmasks so the racy-location hot path never touches a hash map.
	// Allocated on the first race at this location.
	reported []uint8
	// lastT is the thread of the last access (-1 initially); while the
	// same thread keeps accessing the location, the escalated scans can
	// be skipped once they have come up clean (the vectors cannot have
	// changed and C_t only grows). wClean / rClean record that the last
	// scan of the corresponding vector by lastT found no unordered entry.
	lastT  int32
	wClean bool
	rClean bool
}

// reportBit is the in-mask index of an access-kind pair.
func reportBit(wi, wj bool) uint8 {
	b := uint8(0)
	if wi {
		b |= 2
	}
	if wj {
		b |= 1
	}
	return 1 << b
}

// defaultGCInterval is how often (in events) the minimum-clock frontier
// is refreshed and dead RA messages are collected. Between refreshes the
// live RA set can grow by at most the interval's worth of writes, so the
// bound is a window, not the trace length; the refresh itself is
// O(threads² + live messages), amortised to a fraction of an event.
const defaultGCInterval = 4096

// checker is the nonatomic race-checking half of the monitor: the
// per-location epoch/vector histories, the dedup bitmasks, and the scan
// logic. It reads — never writes — the thread clocks and the cached
// minimum frontier it is given. The sequential Monitor embeds one
// checker over its own clocks; each pipeline back-end owns a checker
// over its mirrored copy of the clocks (updated by the front-end's delta
// side channel), so both execute literally the same checking code and
// produce bit-identical report state.
type checker struct {
	nthreads int
	// clocks[t] is thread t's vector clock as of the current stream
	// position (the Monitor's own clocks, or a back-end's mirror).
	clocks [][]uint64
	// minClock is the cached pointwise minimum of all live thread clocks
	// as of the last GC sweep. Stale entries are only ever too small, so
	// every use (epoch overwrite) stays conservative and safe.
	minClock []uint64
	na       []naState
	races    int
	// escalatedSides counts the per-thread vectors currently escalated
	// (write and read sides counted separately) — compaction telemetry,
	// and the fast-path skip for sweeps with nothing to demote.
	escalatedSides int
	// escalations / demotions count the lifetime transitions behind
	// escalatedSides (plain fields; published via obs.go).
	escalations uint64
	demotions   uint64
}

func newChecker(nthreads int, nlocs int, clocks [][]uint64, minClock []uint64) checker {
	ck := checker{
		nthreads: nthreads,
		clocks:   clocks,
		minClock: minClock,
		na:       make([]naState, nlocs),
	}
	for l := range ck.na {
		// Every location starts in the empty epoch state; the per-thread
		// vectors and dedup bitmasks are allocated only if the location's
		// history ever escalates / races.
		ck.na[l] = naState{wT: noEpoch, rT: noEpoch, lastT: -1}
	}
	return ck
}

// reset clears the per-location histories and the race count, reusing
// escalated vectors and bitmasks.
func (ck *checker) reset() {
	for l := range ck.na {
		ls := &ck.na[l]
		ls.wT, ls.rT = noEpoch, noEpoch
		ls.wC, ls.rC = 0, 0
		ls.lastT = -1
		ls.wClean, ls.rClean = false, false
		if ls.writes != nil {
			clear(ls.writes)
		}
		if ls.reads != nil {
			clear(ls.reads)
		}
		if ls.reported != nil {
			clear(ls.reported)
		}
	}
	ck.races = 0
	ck.escalatedSides = 0
	ck.escalations, ck.demotions = 0, 0
}

// compactAll demotes escalated per-thread vectors back to epochs wherever
// the cached minimum frontier proves at most one entry still live: a
// vector entry w with min_t C_t[u] ≥ w is already ordered before every
// thread's next access, so it can never be the earlier half of a future
// race and dropping it is exact — the same argument that lets epochs be
// overwritten in place. Demotion strictly shrinks the live state (and the
// snapshot encoding, which serialises vectors only while escalated).
// It runs at every GC sweep, in the sequential monitor and the pipeline
// back-ends alike, so the two paths demote at identical stream positions
// and snapshots stay byte-identical across configurations.
func (ck *checker) compactAll() {
	if ck.escalatedSides == 0 {
		return
	}
	for l := range ck.na {
		ls := &ck.na[l]
		if ls.wT == escalated {
			if t, c, ok := ck.demote(ls.writes); ok {
				ls.wT, ls.wC = t, c
				clear(ls.writes)
				ls.wClean = false
				ck.escalatedSides--
				ck.demotions++
			}
		}
		if ls.rT == escalated {
			if t, c, ok := ck.demote(ls.reads); ok {
				ls.rT, ls.rC = t, c
				clear(ls.reads)
				ls.rClean = false
				ck.escalatedSides--
				ck.demotions++
			}
		}
	}
}

// demote scans one escalated vector for entries still above the minimum
// frontier. With zero live entries the side collapses to the empty epoch
// (noEpoch); with exactly one it collapses to that entry's epoch; with
// two or more the vector must stay (ok=false).
func (ck *checker) demote(v []uint64) (int32, uint64, bool) {
	liveT, liveC := noEpoch, uint64(0)
	for u, w := range v {
		if w > ck.minClock[u] {
			if liveT != noEpoch {
				return 0, 0, false
			}
			liveT, liveC = int32(u), w
		}
	}
	return liveT, liveC, true
}

// Monitor is the streaming race detector. Create one with New, feed it
// events in trace order with Step (or Feed/FeedBatch, from a Source),
// and collect the deduplicated reports with Reports. A Monitor is not
// safe for concurrent use; the parallel mode (Pipeline, ShardedRaces)
// splits the work between a synchronisation front-end and per-location
// race back-ends instead.
type Monitor struct {
	decls    []LocDecl
	nthreads int
	clocks   [][]uint64 // clocks[t][u]: thread t's vector clock
	ck       checker    // nonatomic race checking over clocks/minClock
	// staticSkip, when non-nil, marks nonatomic locations a sound static
	// certificate proved race-free; their events bypass the checker (see
	// staticfilter.go). Configuration like gcEvery: kept across Reset.
	// The mask itself is never serialised into snapshots, but a snapshot
	// records THAT a filter was active, so a resume without one can warn
	// (see the predict section in snapshot.go).
	staticSkip []bool
	// pred is the race predicate decided (predict.go); windowK and win
	// carry the PredShort distance bound and candidate window. Unlike
	// other configuration, the predicate is serialised into snapshots
	// and the checkpointed value is authoritative on resume.
	pred    Predicate
	windowK uint64
	win     *window
	at      [][]uint64 // released clock L_A per atomic location
	ra      []map[tsKey]raMsg
	// minClock caches the pointwise minimum of all live thread clocks as
	// of the last GC sweep (halted threads count as +∞). Stale entries
	// are only ever too small, so every use (RA GC, epoch overwrite)
	// stays conservative and safe.
	minClock []uint64
	// halted[t] is set by a KindHalt event: thread t performs no further
	// events, so the GC frontier treats its clock as +∞.
	halted  []bool
	gcEvery uint64
	nextGC  uint64
	// adaptMin/adaptMax bound the live-pressure-driven GC interval
	// adaptation (0 = fixed interval; see SetAdaptiveGC).
	adaptMin, adaptMax uint64
	// RA retention statistics (aggregate and per location).
	raLive      int
	raPeak      int
	raCollected uint64
	raLiveLoc   []int
	events      uint64
	// Observability (obs.go): plain single-writer tallies, published
	// into reg's atomic cells at GC sweeps / Reset / Stats so the hot
	// path never performs an atomic operation.
	reg          *obs.Registry
	mo           monCells
	kinds        [len(kindNames)]uint64
	gcSweeps     uint64
	gcProductive uint64
}

// New returns a monitor for nthreads threads over the given locations.
func New(nthreads int, decls []LocDecl) *Monitor {
	m := newSync(nthreads, decls)
	m.ck = newChecker(nthreads, len(decls), m.clocks, m.minClock)
	return m
}

// newSync builds the synchronisation half of a monitor — clocks, atomic
// released clocks, RA retention, GC bookkeeping — without the nonatomic
// checker. The pipeline front-end runs on exactly this (its nonatomic
// accesses are routed to the back-ends' checkers instead), so it does
// not pay an O(locations) checker it would never touch.
func newSync(nthreads int, decls []LocDecl) *Monitor {
	m := &Monitor{
		decls:     decls,
		nthreads:  nthreads,
		clocks:    make([][]uint64, nthreads),
		at:        make([][]uint64, len(decls)),
		ra:        make([]map[tsKey]raMsg, len(decls)),
		minClock:  make([]uint64, nthreads),
		halted:    make([]bool, nthreads),
		raLiveLoc: make([]int, len(decls)),
		gcEvery:   defaultGCInterval,
		nextGC:    defaultGCInterval,
		reg:       obs.NewRegistry(),
	}
	m.mo = newMonCells(m.reg)
	for t := range m.clocks {
		m.clocks[t] = make([]uint64, nthreads)
	}
	for l, d := range decls {
		switch d.Kind {
		case prog.Atomic:
			m.at[l] = make([]uint64, nthreads)
		case prog.ReleaseAcquire:
			m.ra[l] = make(map[tsKey]raMsg)
		}
	}
	return m
}

// Reset clears all monitoring state (clocks, per-location epochs and
// vectors, RA messages and statistics, halted threads, and reports) so
// the monitor can be reused for another trace of the same program shape
// without reallocating. The GC interval configuration is kept.
func (m *Monitor) Reset() {
	for _, c := range m.clocks {
		clear(c)
	}
	m.ck.reset()
	for _, la := range m.at {
		if la != nil {
			clear(la)
		}
	}
	for l, mm := range m.ra {
		if len(mm) > 0 {
			m.ra[l] = make(map[tsKey]raMsg)
		}
	}
	if m.win != nil {
		m.win.reset()
	}
	clear(m.minClock)
	clear(m.halted)
	clear(m.raLiveLoc)
	m.raLive, m.raPeak, m.raCollected = 0, 0, 0
	m.nextGC = m.gcEvery
	m.events = 0
	clear(m.kinds[:])
	m.gcSweeps, m.gcProductive = 0, 0
	m.publishObs()
}

// SetGCInterval sets the frontier-refresh / RA-collection period in
// events (0 restores the default) and disables adaptive mode. Smaller
// intervals bound the live RA set more tightly at the cost of more
// frequent O(threads² + live) sweeps; the report set is identical at any
// interval.
func (m *Monitor) SetGCInterval(events uint64) {
	if events == 0 {
		events = defaultGCInterval
	}
	m.gcEvery = events
	m.adaptMin, m.adaptMax = 0, 0
	m.nextGC = m.events + events
}

// SetAdaptiveGC lets the GC interval float between min and max, driven
// by live-message pressure: after a sweep that reclaimed something
// while many messages had accumulated relative to the window, the
// interval halves (sweeping sooner caps the peak); after a sweep that
// reclaimed nothing — a quiet stream, or a frontier pinned by a silent
// thread, where sweeping more often provably cannot help — it doubles.
// Streams with collectable RA churn are swept aggressively while
// unproductive sweeping backs off instead of spiralling into a
// per-event O(threads² + live) scan. Because the collection criterion
// is exact — a swept message's join is provably a no-op forever — the
// report set is identical under ANY interval schedule, adaptive or
// fixed (differentially tested); only retention telemetry varies. min
// and max are clamped to ≥ 1; min > max is normalised by swapping.
func (m *Monitor) SetAdaptiveGC(min, max uint64) {
	if min == 0 {
		min = 1
	}
	if max == 0 {
		max = defaultGCInterval
	}
	if min > max {
		min, max = max, min
	}
	m.adaptMin, m.adaptMax = min, max
	m.gcEvery = clampU64(m.gcEvery, min, max)
	m.nextGC = m.events + m.gcEvery
}

func clampU64(v, lo, hi uint64) uint64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// RAStats is the release-acquire retention telemetry of a monitor run.
type RAStats struct {
	// Live is the number of RA messages currently retained.
	Live int
	// Peak is the high-water mark of Live since the last Reset.
	Peak int
	// Collected is how many dead messages the windowed GC reclaimed.
	Collected uint64
}

// RAStats returns the RA message retention statistics.
func (m *Monitor) RAStats() RAStats {
	return RAStats{Live: m.raLive, Peak: m.raPeak, Collected: m.raCollected}
}

// Events returns the number of events consumed since the last Reset.
func (m *Monitor) Events() uint64 { return m.events }

// EscalatedVectors returns the number of per-thread access vectors
// currently escalated (write and read sides counted separately) — the
// live-state pressure the GC-time compaction pass works against.
func (m *Monitor) EscalatedVectors() int { return m.ck.escalatedSides }

// RaceCount returns the number of distinct races reported so far.
func (m *Monitor) RaceCount() int {
	n := m.ck.races
	if m.win != nil {
		n += m.win.races
	}
	return n
}

// Step consumes the next event of the trace. Events must be in bounds
// (thread < nthreads, loc < len(decls), kind matching the declared
// location kind); the wire-format decoder validates ingested traces, and
// Table guarantees it for converted machine traces.
func (m *Monitor) Step(e Event) {
	m.events++
	m.kinds[e.Kind]++
	t := int(e.Thread)
	c := m.clocks[t]
	c[t]++
	if m.events >= m.nextGC {
		m.gc()
	}
	switch e.Kind {
	case ReadNA:
		if m.staticSkip == nil || !m.staticSkip[e.Loc] {
			if m.win != nil {
				m.win.access(e.Loc, e.Thread, false, c, m.events)
			} else {
				m.ck.readNA(&m.ck.na[e.Loc], e.Thread, c)
			}
		}
	case WriteNA:
		if m.staticSkip == nil || !m.staticSkip[e.Loc] {
			if m.win != nil {
				m.win.access(e.Loc, e.Thread, true, c, m.events)
			} else {
				m.ck.writeNA(&m.ck.na[e.Loc], e.Thread, c)
			}
		}
	case ReadAT:
		join(c, m.at[e.Loc])
	case WriteAT:
		la := m.at[e.Loc]
		if m.pred == PredHB {
			// Under the predictive predicates the write still PUBLISHES
			// its clock (the reads-from edge to later readers) but does
			// not join the previous released clock: write→write coherence
			// is exactly what a sync-preserving reordering may flip.
			join(c, la)
		}
		copy(la, c)
	case ReadRA:
		if msg, ok := m.ra[e.Loc][timeKey(e.Time)]; ok {
			join(c, msg.vc)
		}
	case WriteRA:
		m.publishRA(e.Loc, e.Time, e.Thread, c)
	case KindHalt:
		m.halted[t] = true
	}
}

// publishRA snapshots the writer's clock as a retained RA message — the
// WriteRA effect, shared by the sequential Step and the pipeline
// front-end.
func (m *Monitor) publishRA(loc int32, tm ts.Time, writer int32, c []uint64) {
	vc := make([]uint64, len(c))
	copy(vc, c)
	mm := m.ra[loc]
	k := timeKey(tm)
	if _, dup := mm[k]; !dup {
		m.raLive++
		m.raLiveLoc[loc]++
		if m.raLive > m.raPeak {
			m.raPeak = m.raLive
		}
	}
	mm[k] = raMsg{vc: vc, writer: writer}
}

// readNA checks a nonatomic read by thread t against the write history
// and records it as the thread's last read.
func (ck *checker) readNA(ls *naState, t int32, c []uint64) {
	if ls.lastT != t {
		ls.lastT = t
		ls.wClean, ls.rClean = false, false
	}
	switch ls.wT {
	case noEpoch, t:
		// No foreign write live: nothing to race with.
	case escalated:
		if !ls.wClean {
			ls.wClean = ck.scanWrites(ls, t, c, false)
		}
	default:
		if ls.wC > c[ls.wT] {
			ck.report(ls, ls.wT, t, true, false)
		}
	}
	switch ls.rT {
	case noEpoch, t:
		ls.rT, ls.rC = t, c[t]
	case escalated:
		ls.reads[t] = c[t]
	default:
		if ck.minClock[ls.rT] >= ls.rC {
			// Every thread's frontier has passed the old read epoch: it
			// can never race again, so overwriting it loses no report.
			ls.rT, ls.rC = t, c[t]
		} else {
			ck.escalateReads(ls)
			ls.reads[t] = c[t]
		}
	}
}

// writeNA checks a nonatomic write by thread t against both histories and
// records it as the thread's last write.
func (ck *checker) writeNA(ls *naState, t int32, c []uint64) {
	if ls.lastT != t {
		ls.lastT = t
		ls.wClean, ls.rClean = false, false
	}
	switch ls.wT {
	case noEpoch, t:
	case escalated:
		if !ls.wClean {
			ls.wClean = ck.scanWrites(ls, t, c, true)
		}
	default:
		if ls.wC > c[ls.wT] {
			ck.report(ls, ls.wT, t, true, true)
		}
	}
	switch ls.rT {
	case noEpoch, t:
	case escalated:
		if !ls.rClean {
			ls.rClean = ck.scanReads(ls, t, c)
		}
	default:
		if ls.rC > c[ls.rT] {
			ck.report(ls, ls.rT, t, false, true)
		}
	}
	switch ls.wT {
	case noEpoch, t:
		ls.wT, ls.wC = t, c[t]
	case escalated:
		ls.writes[t] = c[t]
	default:
		if ck.minClock[ls.wT] >= ls.wC {
			ls.wT, ls.wC = t, c[t]
		} else {
			ck.escalateWrites(ls)
			ls.writes[t] = c[t]
		}
	}
}

// escalateWrites materialises the per-thread write vector from the
// current epoch. The slice is reused across Reset cycles.
func (ck *checker) escalateWrites(ls *naState) {
	if ls.writes == nil {
		ls.writes = make([]uint64, ck.nthreads)
	}
	ls.writes[ls.wT] = ls.wC
	ls.wT = escalated
	ls.wClean = false
	ck.escalatedSides++
	ck.escalations++
}

// escalateReads materialises the per-thread read vector from the current
// epoch.
func (ck *checker) escalateReads(ls *naState) {
	if ls.reads == nil {
		ls.reads = make([]uint64, ck.nthreads)
	}
	ls.reads[ls.rT] = ls.rC
	ls.rT = escalated
	ls.rClean = false
	ck.escalatedSides++
	ck.escalations++
}

// report records one race (u's access earlier, t's later) in the
// location's dedup bitmask, allocating the mask on first use.
func (ck *checker) report(ls *naState, u, t int32, wi, wj bool) {
	if ls.reported == nil {
		ls.reported = make([]uint8, ck.nthreads*ck.nthreads)
	}
	bit := reportBit(wi, wj)
	if p := &ls.reported[int(u)*ck.nthreads+int(t)]; *p&bit == 0 {
		*p |= bit
		ck.races++
	}
}

// gc refreshes the cached minimum-clock frontier and deletes every RA
// message no thread can gain an edge from any more: once
// min_u C_u[w] ≥ vc[w] for the message's writer w, every current and
// future clock already dominates vc (vector clocks characterise
// happens-before), so the reads-from join is a no-op forever and the
// message is dead weight. Halted threads are excluded from the minimum
// (+∞): they perform no further reads, so nothing is retained for them.
// It also schedules the next sweep, adapting the interval to live
// pressure when SetAdaptiveGC is active.
func (m *Monitor) gc() {
	m.gcSweeps++
	if m.nthreads == 0 {
		m.nextGC = m.events + m.gcEvery
		return
	}
	min := m.minClock
	live := false
	for t, c := range m.clocks {
		if m.halted[t] {
			continue
		}
		if !live {
			copy(min, c)
			live = true
			continue
		}
		for u, v := range c {
			if v < min[u] {
				min[u] = v
			}
		}
	}
	if !live {
		// Every thread has halted: the frontier is +∞ everywhere and all
		// retained messages are dead.
		for u := range min {
			min[u] = ^uint64(0)
		}
	}
	// The refreshed frontier may prove escalated vectors collapsible —
	// demote them while it is exact (the pipeline front-end owns no
	// checker; its back-ends compact at the same barrier, in-band).
	m.ck.compactAll()
	if m.win != nil {
		// Prune the short-race windows at the same barrier, so quiet
		// locations drop expired candidates at deterministic positions.
		m.win.pruneAll(m.events)
	}
	preLive := uint64(m.raLive) // the pressure that built up this window
	var collected uint64
	for l, mm := range m.ra {
		if m.raLiveLoc[l] == 0 {
			continue
		}
		for k, msg := range mm {
			if msg.vc[msg.writer] <= min[msg.writer] {
				delete(mm, k)
				m.raLive--
				m.raLiveLoc[l]--
				collected++
			}
		}
	}
	m.raCollected += collected
	if collected > 0 {
		m.gcProductive++
	}
	if m.adaptMax > 0 {
		switch {
		case collected == 0:
			// Unproductive sweep: nothing was reclaimable — either the
			// stream is quiet or the frontier is pinned. Sweeping more
			// often cannot reclaim more, so back off.
			m.gcEvery = clampU64(m.gcEvery*2, m.adaptMin, m.adaptMax)
		case preLive > m.gcEvery/2:
			// Reclaimable messages piled up across half a window:
			// tighten to cap the peak.
			m.gcEvery = clampU64(m.gcEvery/2, m.adaptMin, m.adaptMax)
		case preLive*8 < m.gcEvery:
			// The window is far wider than the live set needs.
			m.gcEvery = clampU64(m.gcEvery*2, m.adaptMin, m.adaptMax)
		}
	}
	m.nextGC = m.events + m.gcEvery
	// The sweep is the hot path's publication point: a handful of atomic
	// stores per window keeps the live endpoint at most one window stale.
	m.publishObs()
}

// scanWrites checks the current access of thread t (a read, or a write
// when isWrite) against the last write of every other thread, reporting
// each unordered pair. It returns whether the vector was clean (no
// unordered entry) — the condition under which the scan may be skipped
// for subsequent same-thread accesses.
func (ck *checker) scanWrites(ls *naState, t int32, c []uint64, isWrite bool) bool {
	clean := true
	for u, w := range ls.writes {
		// u == t cannot trigger: the thread's own entry is always below
		// its (just incremented) clock component.
		if w > c[u] {
			clean = false
			ck.report(ls, int32(u), t, true, isWrite)
		}
	}
	return clean
}

// scanReads checks a write by thread t against the last read of every
// other thread (read/write races with the read first in the trace).
func (ck *checker) scanReads(ls *naState, t int32, c []uint64) bool {
	clean := true
	for u, r := range ls.reads {
		if r > c[u] {
			clean = false
			ck.report(ls, int32(u), t, false, true)
		}
	}
	return clean
}

// join merges vc into c pointwise (c ⊔= vc).
func join(c, vc []uint64) {
	for u, v := range vc {
		if v > c[u] {
			c[u] = v
		}
	}
}

// joinTrack is join with change tracking: every index of c that the join
// raised is appended to changed — the pipeline front-end's clock-delta
// side channel.
func joinTrack(c, vc []uint64, changed []int32) []int32 {
	for u, v := range vc {
		if v > c[u] {
			c[u] = v
			changed = append(changed, int32(u))
		}
	}
	return changed
}

// Reports returns the distinct races observed, in the canonical order of
// race.SortReports — directly comparable with race.Races on the same
// trace.
func (m *Monitor) Reports() []race.Report {
	out := make([]race.Report, 0, m.RaceCount())
	for l := range m.ck.na {
		out = m.ck.appendReports(out, int32(l), m.decls[l].Name)
	}
	if m.win != nil {
		// Under PredShort nonatomic accesses go to the window, not the
		// checker, so the two report sources never overlap.
		out = m.win.appendReports(out, m.decls)
	}
	race.SortReports(out)
	return out
}

// appendReports decodes the dedup bitmasks of the checker's idx-th
// location into reports under the given location name. (The checker's
// index space need not be the declaration index space: pipeline
// back-ends store only their owned locations densely.)
func (ck *checker) appendReports(out []race.Report, idx int32, name prog.Loc) []race.Report {
	ls := &ck.na[idx]
	if ls.reported == nil {
		return out
	}
	for i, mask := range ls.reported {
		if mask == 0 {
			continue
		}
		u, t := i/ck.nthreads, i%ck.nthreads
		for b := uint8(0); b < 4; b++ {
			if mask&(1<<b) != 0 {
				out = append(out, race.Report{
					Loc:     name,
					ThreadI: u,
					ThreadJ: t,
					WriteI:  b&2 != 0,
					WriteJ:  b&1 != 0,
				})
			}
		}
	}
	return out
}
